package pdms

import (
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin the stale-generation cache fix: Query/ReformulateCQ used
// to snapshot the generation under one RLock, release it, and compute
// under a second RLock — an Extend/AddFact interleaved between the two
// stored a post-mutation result under the pre-mutation cache key. The
// testHookPostKey hook fires right after the cache key is stamped; the
// tests use it to launch a mutation at exactly that moment and give it
// generous time to (incorrectly) complete. With the fix the key stamp and
// the computation share one lock section, so the mutation must block and
// the first result must reflect the pre-mutation state.

// armRaceHook installs testHookPostKey so that its first firing runs
// mutate in the background and then waits long enough for the mutation to
// finish were it not excluded by the lock. It returns a channel closed
// when the mutation completes.
func armRaceHook(t *testing.T, mutate func()) <-chan struct{} {
	t.Helper()
	done := make(chan struct{})
	var fired atomic.Bool
	testHookPostKey = func() {
		if !fired.CompareAndSwap(false, true) {
			return
		}
		go func() {
			defer close(done)
			mutate()
		}()
		// Buggy code has released the lock here: the mutation completes
		// during this sleep and the subsequent computation sees its
		// effects. Fixed code holds the lock: the mutation stays blocked.
		time.Sleep(50 * time.Millisecond)
	}
	t.Cleanup(func() { testHookPostKey = nil })
	return done
}

func TestQueryGenSnapshotExcludesInterleavedMutation(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
fact A.r("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	done := armRaceHook(t, func() {
		if err := net.AddFact("A.r", "2"); err != nil {
			t.Error(err)
		}
	})
	rows, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("pre-mutation query saw %d rows, want 1 (AddFact interleaved with the generation snapshot)", len(rows))
	}
	<-done
	testHookPostKey = nil
	// The new generation must recompute — and must not be served the
	// answer the racing reader cached.
	rows, err = net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("post-mutation query saw %d rows, want 2", len(rows))
	}
}

// TestUnrelatedMutationAtWorstMomentKeepsKeysDisjoint aims the same
// worst-case interleaving at the *per-relation* generation-vector keys: an
// AddFact to B.s fired right after a query over A:R stamps its key. The
// mutation must not leak into the A:R entry (its genvector omits B.s), the
// entry must stay valid afterwards (hit on re-query — the whole point of
// per-relation keys), and B:S queries must see the new fact.
func TestUnrelatedMutationAtWorstMomentKeepsKeysDisjoint(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
storage B.s(x) in B:S(x)
fact A.r("1")
fact B.s("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	done := armRaceHook(t, func() {
		if err := net.AddFact("B.s", "2"); err != nil {
			t.Error(err)
		}
	})
	rows, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("A:R rows = %v", rows)
	}
	<-done
	testHookPostKey = nil
	st0 := net.CacheStats()
	rows, err = net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("A:R rows after unrelated mutation = %v", rows)
	}
	if st1 := net.CacheStats(); st1.Hits != st0.Hits+1 {
		t.Fatalf("unrelated B.s mutation invalidated the A:R entry: %+v -> %+v", st0, st1)
	}
	rows, err = net.Query(`q(x) :- B:S(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("B:S rows = %v, want 2", rows)
	}
}

func TestReformulateGenSnapshotExcludesInterleavedExtend(t *testing.T) {
	net, err := Load(`storage A.r(x) in A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	done := armRaceHook(t, func() {
		if err := net.Extend(`storage B.s(x) in A:R(x)`); err != nil {
			t.Error(err)
		}
	})
	ref, err := net.Reformulate(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ref.Rewriting.Len(); got != 1 {
		t.Fatalf("pre-Extend rewriting has %d disjuncts, want 1 (Extend interleaved with the generation snapshot)", got)
	}
	<-done
	testHookPostKey = nil
	ref, err = net.Reformulate(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ref.Rewriting.Len(); got != 2 {
		t.Fatalf("post-Extend rewriting has %d disjuncts, want 2", got)
	}
}
