package pdms

import (
	"fmt"
	"testing"
)

// benchNetwork builds a moderately-sized network: one mediated relation
// backed by several stores with a few hundred facts.
func benchNetwork(b *testing.B) *Network {
	b.Helper()
	spec := ""
	for s := 0; s < 4; s++ {
		spec += fmt.Sprintf("storage P%d.r(x, y) in A:R(x, y)\n", s)
	}
	spec += "include A:R(x, y) in B:S(x, y)\n"
	net, err := Load(spec)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		for i := 0; i < 100; i++ {
			if err := net.AddFact(fmt.Sprintf("P%d.r", s),
				fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i%10)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return net
}

// BenchmarkQueryCached measures the steady-state hot path: identical
// queries served from the generation-keyed answer cache.
func BenchmarkQueryCached(b *testing.B) {
	net := benchNetwork(b)
	const q = `q(x) :- B:S(x, "v3")`
	if _, err := net.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryUncached measures the same query with the cache defeated
// by a mutation per iteration — reformulation cache still hits (the spec
// is unchanged) but execution reruns through the engine.
func BenchmarkQueryUncached(b *testing.B) {
	net := benchNetwork(b)
	const q = `q(x) :- B:S(x, "v3")`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.AddFact("P0.r", fmt.Sprintf("extra%d", i), "v3"); err != nil {
			b.Fatal(err)
		}
		if _, err := net.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryUnderMutation is the hit-rate-under-mutation headline: a
// sustained mixed workload where every iteration mutates relation W.w and
// queries a *disjoint* relation A-family query. With the old whole-network
// generation counter every AddFact invalidated everything (hit rate ~0 on
// this workload); with per-relation generation vectors the A-family
// answers survive the W.w mutations (hit rate ~1). The hit-rate/op metric
// makes the difference machine-readable.
func BenchmarkQueryUnderMutation(b *testing.B) {
	load := func(b *testing.B) *Network {
		net := benchNetwork(b)
		if err := net.Extend(`storage W.w(x) in W:Log(x)`); err != nil {
			b.Fatal(err)
		}
		return net
	}
	const q = `q(x) :- B:S(x, "v3")`

	b.Run("mutate-unrelated", func(b *testing.B) {
		net := load(b)
		if _, err := net.Query(q); err != nil {
			b.Fatal(err)
		}
		st0 := net.CacheStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := net.AddFact("W.w", fmt.Sprintf("log%d", i)); err != nil {
				b.Fatal(err)
			}
			if _, err := net.Query(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportHitRate(b, net.CacheStats(), st0)
	})
	b.Run("mutate-touched", func(b *testing.B) {
		net := load(b)
		if _, err := net.Query(q); err != nil {
			b.Fatal(err)
		}
		st0 := net.CacheStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := net.AddFact("P0.r", fmt.Sprintf("extra%d", i), "v9"); err != nil {
				b.Fatal(err)
			}
			if _, err := net.Query(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportHitRate(b, net.CacheStats(), st0)
	})
}

// reportHitRate reports the answer-cache hit rate and invalidation count
// between two stat snapshots, normalized per benchmark op.
func reportHitRate(b *testing.B, st, base QueryCacheStats) {
	hits, misses := st.Hits-base.Hits, st.Misses-base.Misses
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
	}
	b.ReportMetric(float64(st.Invalidations-base.Invalidations)/float64(b.N), "invalidations/op")
}
