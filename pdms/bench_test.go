package pdms

import (
	"fmt"
	"testing"
)

// benchNetwork builds a moderately-sized network: one mediated relation
// backed by several stores with a few hundred facts.
func benchNetwork(b *testing.B) *Network {
	b.Helper()
	spec := ""
	for s := 0; s < 4; s++ {
		spec += fmt.Sprintf("storage P%d.r(x, y) in A:R(x, y)\n", s)
	}
	spec += "include A:R(x, y) in B:S(x, y)\n"
	net, err := Load(spec)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		for i := 0; i < 100; i++ {
			if err := net.AddFact(fmt.Sprintf("P%d.r", s),
				fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i%10)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return net
}

// BenchmarkQueryCached measures the steady-state hot path: identical
// queries served from the generation-keyed answer cache.
func BenchmarkQueryCached(b *testing.B) {
	net := benchNetwork(b)
	const q = `q(x) :- B:S(x, "v3")`
	if _, err := net.Query(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryUncached measures the same query with the cache defeated
// by a mutation per iteration — reformulation cache still hits (the spec
// is unchanged) but execution reruns through the engine.
func BenchmarkQueryUncached(b *testing.B) {
	net := benchNetwork(b)
	const q = `q(x) :- B:S(x, "v3")`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.AddFact("P0.r", fmt.Sprintf("extra%d", i), "v3"); err != nil {
			b.Fatal(err)
		}
		if _, err := net.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
