package pdms

import (
	"strings"
	"testing"

	"repro/internal/ppl"
)

const quickSpec = `
storage FH.doc(s, l) in FH:Doctor(s, l)
define H:Doctor(s, l) :- FH:Doctor(s, l)
fact FH.doc("d1", "er")
fact FH.doc("d2", "icu")
`

func TestLoadAndQuery(t *testing.T) {
	net, err := Load(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := net.Query(`q(s) :- H:Doctor(s, l)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("answers = %v", ans)
	}
}

func TestQueryMatchesCertainAnswers(t *testing.T) {
	net, err := Load(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	q := `q(s, l) :- H:Doctor(s, l)`
	fast, err := net.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := net.CertainAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(oracle) {
		t.Fatalf("fast = %v oracle = %v", fast, oracle)
	}
	for i := range fast {
		if !fast[i].Equal(oracle[i]) {
			t.Fatalf("fast = %v oracle = %v", fast, oracle)
		}
	}
}

func TestExtendAdHoc(t *testing.T) {
	// The ECC joins after the fact (Example 1.1): new peer, new mapping,
	// queries over the new peer immediately reach old data.
	net, err := Load(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Extend(`include H:Doctor(s, l) in ECC:Medic(s, l)`); err != nil {
		t.Fatal(err)
	}
	// H:Doctor ⊆ ECC:Medic, so doctors are certainly medics.
	ans, err := net.Query(`q(s) :- ECC:Medic(s, l)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("answers after extension = %v", ans)
	}
}

func TestAddFact(t *testing.T) {
	net, err := Load(`storage A.r(x) in A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddFact("A.r", "v"); err != nil {
		t.Fatal(err)
	}
	if err := net.AddFact("A:R", "v"); err == nil {
		t.Fatal("fact into peer relation accepted")
	}
	if err := net.AddFact("Nope.n", "v"); err == nil {
		t.Fatal("fact into unknown relation accepted")
	}
	ans, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil || len(ans) != 1 {
		t.Fatalf("ans = %v err = %v", ans, err)
	}
}

func TestReformulateExposesStatsAndClass(t *testing.T) {
	net, err := Load(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := net.Reformulate(`q(s) :- H:Doctor(s, l)`)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rewriting.Len() != 1 {
		t.Fatalf("rewriting = %v", ref.Rewriting)
	}
	if ref.Stats.Nodes() == 0 {
		t.Fatal("stats empty")
	}
	if ref.Classification.Class != ppl.PTime {
		t.Fatalf("classification = %v", ref.Classification)
	}
}

func TestClassifyAPI(t *testing.T) {
	net, err := Load(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := net.Classify(`q(s) :- H:Doctor(s, l), s != "d1"`)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Class != ppl.CoNP {
		t.Fatalf("comparison in query should be co-NP, got %v", cl)
	}
}

func TestLoadError(t *testing.T) {
	if _, err := Load(`bogus statement`); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, err := Load(`fact A.r("x"`); err == nil {
		t.Fatal("syntax error not surfaced")
	}
}

func TestQueryErrors(t *testing.T) {
	net, err := Load(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Query(`not a query`); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := net.Query(`q(x) :- Un:Known(x)`); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestOptionsMaxRewritings(t *testing.T) {
	spec := `
storage S.a(x) in A:R(x)
storage S.b(x) in A:R(x)
storage S.c(x) in A:R(x)
`
	net, err := LoadWithOptions(spec, Options{MaxRewritings: 1, KeepRedundant: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := net.Reformulate(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rewriting.Len() != 1 {
		t.Fatalf("rewriting = %v", ref.Rewriting)
	}
}

func TestStats(t *testing.T) {
	net, err := Load(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.StorageDescrs != 1 || st.Definitional != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExtendConflictRejected(t *testing.T) {
	net, err := Load(`storage A.r(x) in A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	err = net.Extend(`storage A.r(x, y) in A:R2(x, y)`)
	if err == nil || !strings.Contains(err.Error(), "redeclared") {
		t.Fatalf("err = %v", err)
	}
}
