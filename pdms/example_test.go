package pdms_test

import (
	"fmt"
	"log"

	"repro/pdms"
)

// Example demonstrates the three-statement quick start: a storage
// description, a definitional mapping, and a fact.
func Example() {
	net, err := pdms.Load(`
		storage FH.doc(sid, loc) in FH:Doctor(sid, loc)
		define  H:Doctor(sid, loc) :- FH:Doctor(sid, loc)
		fact    FH.doc("d07", "er")
	`)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := net.Query(`q(sid) :- H:Doctor(sid, "er")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans)
	// Output: [(d07)]
}

// ExampleNetwork_Reformulate shows inspecting the rewriting rather than
// executing it.
func ExampleNetwork_Reformulate() {
	net, err := pdms.Load(`
		storage FH.doc(sid, loc) in FH:Doctor(sid, loc)
		define  H:Doctor(sid, loc) :- FH:Doctor(sid, loc)
	`)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := net.Reformulate(`q(sid) :- H:Doctor(sid, loc)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ref.Rewriting.Len(), "rewriting over stored relations")
	fmt.Println(ref.Classification.Class)
	// Output:
	// 1 rewriting over stored relations
	// PTIME
}

// ExampleNetwork_Extend shows ad hoc extensibility: a new peer joins a
// running network with one statement and immediately sees existing data.
func ExampleNetwork_Extend() {
	net, err := pdms.Load(`
		storage FH.doc(sid, loc) in FH:Doctor(sid, loc)
		define  H:Doctor(sid, loc) :- FH:Doctor(sid, loc)
		fact    FH.doc("d07", "er")
	`)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Extend(`include H:Doctor(s, l) in ECC:Medic(s, l)`); err != nil {
		log.Fatal(err)
	}
	ans, err := net.Query(`q(s) :- ECC:Medic(s, l)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans)
	// Output: [(d07)]
}
