package pdms

import (
	"os"
	"testing"
)

// TestFigure1Network loads the condensed Figure 1 network from testdata and
// verifies the paper's Example 1.1 claim: after the ECC joins, queries over
// it transitively reach every stored relation.
func TestFigure1Network(t *testing.T) {
	src, err := os.ReadFile("../testdata/emergency.ppl")
	if err != nil {
		t.Fatal(err)
	}
	net, err := Load(string(src))
	if err != nil {
		t.Fatal(err)
	}

	// The dispatch center sees doctors (via H ← FH) and EMTs (via FS ← PFD).
	rows, err := net.Query(`q(p, c) :- NineDC:SkilledPerson(p, c)`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"d07": "Doctor", "d12": "Doctor", "f1": "EMT"}
	if len(rows) != len(want) {
		t.Fatalf("9DC rows = %v", rows)
	}
	for _, r := range rows {
		if want[r[0]] != r[1] {
			t.Fatalf("unexpected row %v", r)
		}
	}

	// The ECC, joined by a single inclusion, sees the same people
	// transitively (four mapping hops to FH.doc: ECC ← 9DC ← H ← FH).
	eccRows, err := net.Query(`q(p, c) :- ECC:SkilledPerson(p, c, w)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(eccRows) != len(rows) {
		t.Fatalf("ECC rows = %v, want same people as 9DC %v", eccRows, rows)
	}

	// And the reformulation agrees with the chase oracle.
	oracle, err := net.CertainAnswers(`q(p, c) :- ECC:SkilledPerson(p, c, w)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) != len(eccRows) {
		t.Fatalf("oracle %v vs reformulation %v", oracle, eccRows)
	}

	// LAV side: Lakeview's critical beds surface through H.
	beds, err := net.Query(`q(b) :- H:CritBed(b, h, r)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(beds) != 1 || beds[0][0] != "c1" {
		t.Fatalf("beds = %v", beds)
	}

	// Join across the hidden Patient relation is preserved.
	joined, err := net.Query(`q(b, p) :- H:CritBed(b, h, r), H:Patient(p, b, s)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 1 || joined[0][1] != "p9" {
		t.Fatalf("joined = %v", joined)
	}
}

// TestFigure2Spec runs the Figure 2 testdata end to end through the public
// API, checking both queries in the file parse and answer.
func TestFigure2Spec(t *testing.T) {
	src, err := os.ReadFile("../testdata/figure2.ppl")
	if err != nil {
		t.Fatal(err)
	}
	net, err := Load(string(src))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := net.Query(`q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), FS:Skill(f2, s)`)
	if err != nil {
		t.Fatal(err)
	}
	// albert/betty cross pairs plus the reflexive certain answers (see
	// core.TestFigure2EmergencyExample for the detailed argument).
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
}
