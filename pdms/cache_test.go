package pdms

import (
	"reflect"
	"testing"
)

// TestAnswerCacheHit verifies repeated queries are served from the answer
// cache (no re-reformulation, no re-execution).
func TestAnswerCacheHit(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
fact A.r("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	first, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	again, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("cached answer differs: %v vs %v", first, again)
	}
	st := net.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("expected an answer-cache hit, stats %+v", st)
	}
	// Alpha-equivalent query (renamed variable) shares the cache entry.
	renamed, err := net.Query(`q(y) :- A:R(y)`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, renamed) {
		t.Fatalf("alpha-equivalent query differs: %v vs %v", first, renamed)
	}
	if st2 := net.CacheStats(); st2.Hits != st.Hits+1 {
		t.Fatalf("alpha-equivalent query missed the cache: %+v -> %+v", st, st2)
	}
}

// TestAddFactInvalidatesAnswers is the acceptance check for the
// mutation-invalidated answer cache: a query, then AddFact, then the same
// query must reflect the new fact.
func TestAddFactInvalidatesAnswers(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
fact A.r("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// Warm the cache a second time, then mutate.
	if _, err := net.Query(`q(x) :- A:R(x)`); err != nil {
		t.Fatal(err)
	}
	if err := net.AddFact("A.r", "2"); err != nil {
		t.Fatal(err)
	}
	rows, err = net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("after AddFact rows = %v, want 2 (stale cached answer served?)", rows)
	}
}

// TestUnrelatedAddFactKeepsCacheHit is the acceptance regression for
// per-relation generation keying: an AddFact to relation B.s must leave
// the cached answer for a query whose rewriting only mentions A.r valid —
// the re-issued query hits the cache — while queries touching B.s see the
// new fact.
func TestUnrelatedAddFactKeepsCacheHit(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
storage B.s(x) in B:S(x)
fact A.r("1")
fact B.s("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	first, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	st0 := net.CacheStats()
	if err := net.AddFact("B.s", "2"); err != nil {
		t.Fatal(err)
	}
	again, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("answer changed across an unrelated mutation: %v vs %v", first, again)
	}
	st1 := net.CacheStats()
	if st1.Hits != st0.Hits+1 {
		t.Fatalf("unrelated AddFact invalidated the cached answer: %+v -> %+v", st0, st1)
	}
	if st1.Invalidations != st0.Invalidations+1 {
		t.Fatalf("AddFact did not count as an invalidation event: %+v -> %+v", st0, st1)
	}
	// The mutated relation's own queries must of course see the new fact.
	rows, err := net.Query(`q(x) :- B:S(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("B:S rows = %v, want 2", rows)
	}
}

// TestAddFactInvalidatesOnlyTouchedRelation drives the same property
// through a union rewriting: a query over U:All (rewriting mentions both
// A.r and D.w) must be invalidated by a mutation of either, while a query
// over A:R alone survives a D.w mutation.
func TestAddFactInvalidatesOnlyTouchedRelation(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
storage D.w(x) in D:W(x)
include A:R(x) in U:All(x)
include D:W(x) in U:All(x)
fact A.r("a1")
fact D.w("d1")
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Query(`q(x) :- A:R(x)`); err != nil {
		t.Fatal(err)
	}
	union, err := net.Query(`q(x) :- U:All(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(union) != 2 {
		t.Fatalf("union rows = %v", union)
	}
	st0 := net.CacheStats()
	if err := net.AddFact("D.w", "d2"); err != nil {
		t.Fatal(err)
	}
	// A:R query survives the D.w mutation (hit)...
	if _, err := net.Query(`q(x) :- A:R(x)`); err != nil {
		t.Fatal(err)
	}
	st1 := net.CacheStats()
	if st1.Hits != st0.Hits+1 {
		t.Fatalf("A:R answer lost to a D.w mutation: %+v -> %+v", st0, st1)
	}
	// ...while the union query, whose rewriting mentions D.w, recomputes.
	union, err = net.Query(`q(x) :- U:All(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(union) != 3 {
		t.Fatalf("union rows after mutation = %v, want 3 (stale union served?)", union)
	}
	if st2 := net.CacheStats(); st2.Hits != st1.Hits {
		t.Fatalf("union query was served stale from the cache: %+v -> %+v", st1, st2)
	}
}

// TestExtendInvalidatesAnswers verifies Extend invalidates both the answer
// cache and the reformulation cache: a new mapping and a new fact must be
// visible to a query whose answer (and rewriting) was cached before.
func TestExtendInvalidatesAnswers(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
include A:R(x) in B:S(x)
fact A.r("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := net.Query(`q(x) :- B:S(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// Extend with a second storage path into B:S plus a fact in it: the
	// cached rewriting for the query cannot cover C.s, so serving either
	// cache stale would lose the new answer.
	err = net.Extend(`
storage C.s(x) in B:S(x)
fact C.s("2")
`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err = net.Query(`q(x) :- B:S(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("after Extend rows = %v, want 2 (stale cached rewriting or answer?)", rows)
	}
}

// TestFailedExtendStillInvalidates: an Extend that errors partway may have
// already merged declarations or mappings (the merge is not transactional),
// so the caches are invalidated even on failure — belt and braces. The
// network must stay consistent and serve fresh answers afterwards.
func TestFailedExtendStillInvalidates(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
fact A.r("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Query(`q(x) :- A:R(x)`); err != nil {
		t.Fatal(err)
	}
	err = net.Extend(`
storage C.s(x) in A:R(x)
stored A.r(x, y)
`)
	if err == nil {
		t.Fatal("conflicting Extend accepted")
	}
	// Whatever partially merged, subsequent mutations and queries must not
	// be answered from pre-Extend cache entries.
	if err := net.AddFact("A.r", "2"); err != nil {
		t.Fatal(err)
	}
	rows, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2 (stale cache after failed Extend)", rows)
	}
}
