package pdms

import (
	"reflect"
	"testing"
)

// TestAnswerCacheHit verifies repeated queries are served from the answer
// cache (no re-reformulation, no re-execution).
func TestAnswerCacheHit(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
fact A.r("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	first, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	again, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("cached answer differs: %v vs %v", first, again)
	}
	st := net.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("expected an answer-cache hit, stats %+v", st)
	}
	// Alpha-equivalent query (renamed variable) shares the cache entry.
	renamed, err := net.Query(`q(y) :- A:R(y)`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, renamed) {
		t.Fatalf("alpha-equivalent query differs: %v vs %v", first, renamed)
	}
	if st2 := net.CacheStats(); st2.Hits != st.Hits+1 {
		t.Fatalf("alpha-equivalent query missed the cache: %+v -> %+v", st, st2)
	}
}

// TestAddFactInvalidatesAnswers is the acceptance check for the
// mutation-invalidated answer cache: a query, then AddFact, then the same
// query must reflect the new fact.
func TestAddFactInvalidatesAnswers(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
fact A.r("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// Warm the cache a second time, then mutate.
	if _, err := net.Query(`q(x) :- A:R(x)`); err != nil {
		t.Fatal(err)
	}
	if err := net.AddFact("A.r", "2"); err != nil {
		t.Fatal(err)
	}
	rows, err = net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("after AddFact rows = %v, want 2 (stale cached answer served?)", rows)
	}
}

// TestExtendInvalidatesAnswers verifies Extend invalidates both the answer
// cache and the reformulation cache: a new mapping and a new fact must be
// visible to a query whose answer (and rewriting) was cached before.
func TestExtendInvalidatesAnswers(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
include A:R(x) in B:S(x)
fact A.r("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := net.Query(`q(x) :- B:S(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// Extend with a second storage path into B:S plus a fact in it: the
	// cached rewriting for the query cannot cover C.s, so serving either
	// cache stale would lose the new answer.
	err = net.Extend(`
storage C.s(x) in B:S(x)
fact C.s("2")
`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err = net.Query(`q(x) :- B:S(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("after Extend rows = %v, want 2 (stale cached rewriting or answer?)", rows)
	}
}

// TestFailedExtendStillInvalidates: an Extend that errors partway may have
// already merged declarations or mappings (the merge is not transactional),
// so the caches are invalidated even on failure — belt and braces. The
// network must stay consistent and serve fresh answers afterwards.
func TestFailedExtendStillInvalidates(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
fact A.r("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Query(`q(x) :- A:R(x)`); err != nil {
		t.Fatal(err)
	}
	err = net.Extend(`
storage C.s(x) in A:R(x)
stored A.r(x, y)
`)
	if err == nil {
		t.Fatal("conflicting Extend accepted")
	}
	// Whatever partially merged, subsequent mutations and queries must not
	// be answered from pre-Extend cache entries.
	if err := net.AddFact("A.r", "2"); err != nil {
		t.Fatal(err)
	}
	rows, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2 (stale cache after failed Extend)", rows)
	}
}
