package pdms

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentQueryAndMutation exercises the Network's lock discipline:
// concurrent queries, fact insertions and extensions must not race (run
// with -race) and queries must always see a consistent specification.
func TestConcurrentQueryAndMutation(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
include A:R(x) in B:S(x)
fact A.r("seed")
`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if i%2 == 0 {
					if err := net.AddFact("A.r", fmt.Sprintf("v%d_%d", i, j)); err != nil {
						errs <- err
						return
					}
				} else {
					rows, err := net.Query(`q(x) :- B:S(x)`)
					if err != nil {
						errs <- err
						return
					}
					if len(rows) == 0 {
						errs <- fmt.Errorf("lost the seed fact")
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final state: 1 seed + 4 writers × 20 facts.
	rows, err := net.Query(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 81 {
		t.Fatalf("rows = %d, want 81", len(rows))
	}
}

// TestConcurrentExtend verifies Extend is serialized against queries.
func TestConcurrentExtend(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
fact A.r("1")
`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			_ = net.Extend(fmt.Sprintf(`include A:R(x) in Peer%d:S(x)`, i))
		}(i)
		go func() {
			defer wg.Done()
			_, _ = net.Query(`q(x) :- A:R(x)`)
		}()
	}
	wg.Wait()
	st := net.Stats()
	if st.Inclusions != 4 {
		t.Fatalf("inclusions = %d, want 4", st.Inclusions)
	}
}
