// Package pdms is the public API of the peer data management system: build
// a network of peers, schemas, semantic mappings and stored data — either
// programmatically or from the textual PPL format — then pose conjunctive
// queries at any peer, reformulate them onto stored relations (Halevy, Ives,
// Suciu, Tatarinov: "Schema Mediation in Peer Data Management Systems",
// ICDE 2003), and execute them.
//
// Quick start:
//
//	net, err := pdms.Load(`
//	    storage FH.doc(s, l) in FH:Doctor(s, l)
//	    define H:Doctor(s, l) :- FH:Doctor(s, l)
//	    fact FH.doc("d1", "er")
//	`)
//	ans, err := net.Query(`q(s) :- H:Doctor(s, l)`)
package pdms

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/ppl"
	"repro/internal/rel"
	"repro/internal/store"
)

// answerCacheSize and reformCacheSize bound the per-network LRU caches;
// traceRingSize bounds the tracer's buffer of recent query traces.
const (
	answerCacheSize = 512
	reformCacheSize = 256
	traceRingSize   = 64
)

// Network is a PDMS instance: the specification plus stored data.
// Construct with New or Load. Queries, reformulations and mutations
// (Extend, AddFact) may be issued concurrently; mutations take a write
// lock, reads share a read lock.
//
// Queries execute through an indexed engine (internal/engine) and their
// answers are cached in an LRU keyed by the canonicalized query, the spec
// generation, and the *generation vector* of exactly the stored relations
// the query's rewriting touches (each relation's rel.Instance.Gen insert
// counter). An AddFact on relation R therefore invalidates only cached
// answers whose rewriting mentions R — answers for disjoint queries keep
// hitting across the mutation — while Extend (which can change every
// rewriting) bumps the spec generation and so invalidates everything.
// Cached results are shared — callers must not mutate returned answer
// slices.
type Network struct {
	mu   sync.RWMutex
	spec *ppl.PDMS     // guarded by mu (Extend swaps it; queries read it)
	data *rel.Instance // guarded by mu (all mutation goes through AddFact)
	opts Options
	eng  *engine.Engine
	// specGen counts spec mutations (Extend); it keys the reformulation
	// cache and is one component of every answer-cache key. Data mutations
	// never bump it (AddFact cannot change reformulations) — they advance
	// the mutated relation's own insert counter instead, which answer keys
	// embed per relation. Stale keys simply never match and age out of the
	// LRUs. Guarded by mu.
	specGen uint64
	// invalidations counts generation-bumping mutation events (AddFact
	// that inserted a new tuple, every Extend) for observability; written
	// under the write lock, read under either lock. Guarded by mu.
	invalidations uint64
	answers       *engine.LRU
	reforms       *engine.LRU
	// tracer samples Query/QueryVia traces (off until its sampling knob is
	// set); queryHist times every query regardless of sampling.
	tracer    *obs.Tracer
	queryHist *obs.Histogram
	// dstore is the durable segment journal (nil for in-memory networks).
	// Set once during construction, before the network is shared; writes
	// flow through the instance's append hooks, so no extra locking here.
	dstore *store.Dir
}

func newNetwork(spec *ppl.PDMS, data *rel.Instance, opts Options) *Network {
	return &Network{
		spec:      spec,
		data:      data,
		opts:      opts,
		eng:       engine.New(data),
		answers:   engine.NewLRU(answerCacheSize),
		reforms:   engine.NewLRU(reformCacheSize),
		tracer:    obs.NewTracer(traceRingSize),
		queryHist: obs.NewHistogram(),
	}
}

// Options tunes reformulation. The zero value enables every optimization
// from Section 4.3 of the paper and extracts all rewritings.
type Options struct {
	// MaxNodes caps rule-goal tree size (0 = default 2,000,000).
	MaxNodes int
	// MaxRewritings caps the number of conjunctive rewritings (0 = all).
	MaxRewritings int
	// DisableMemo, DisablePruning, DisablePriority switch off the
	// corresponding Section 4.3 optimizations (for ablation studies).
	DisableMemo     bool
	DisablePruning  bool
	DisablePriority bool
	// DisableSubsumePruning switches off the deep-topology rule-goal-subtree
	// pruning (hopeless-predicate and duplicate-description expansion
	// pruning; core prune.go) — for pruned-vs-unpruned differential testing.
	DisableSubsumePruning bool
	// KeepRedundant keeps rewritings subsumed by others.
	KeepRedundant bool
	// Shards is the hash-partition count for stored relations (0 = one
	// shard per CPU, rel.DefaultShards; 1 = the unsharded layout). Sharded
	// relations let the engine fan scans and probes out across a bounded
	// worker pool; answers are identical for every setting.
	Shards int
	// DataDir makes stored relations durable: inserts are journaled to
	// append-only segment files under this directory (internal/store) and
	// construction replays existing segments into a bit-identical instance
	// before applying anything else. Durable networks must be built with
	// Open, Load or LoadWithOptions (New panics — it cannot report replay
	// errors) and closed with Close so buffered frames reach disk. Empty
	// keeps the network purely in memory.
	DataDir string
}

func (o Options) core() core.Options {
	return core.Options{
		MaxNodes:        o.MaxNodes,
		MaxRewritings:   o.MaxRewritings,
		NoMemo:          o.DisableMemo,
		NoPruneUnsat:    o.DisablePruning,
		NoPriority:      o.DisablePriority,
		NoPruneSubsumed: o.DisableSubsumePruning,
		KeepRedundant:   o.KeepRedundant,
	}
}

// New returns an empty network with the given options. New cannot report
// segment-replay errors, so it panics when opts.DataDir is set — durable
// networks are built with Open (or Load/LoadWithOptions).
func New(opts Options) *Network {
	if opts.DataDir != "" {
		panic("pdms: use Open for durable networks (New cannot report replay errors)")
	}
	return newNetwork(ppl.New(), rel.NewInstanceSharded(opts.Shards), opts)
}

// Open returns an empty-spec network whose stored relations are durable
// under opts.DataDir: existing segments are replayed into the instance and
// every later insert is journaled. The spec itself is not persisted —
// callers re-apply it (Extend) after Open; only re-added *facts* are
// deduplicated against the recovered data.
func Open(opts Options) (*Network, error) {
	if opts.DataDir == "" {
		return nil, fmt.Errorf("pdms: Open requires Options.DataDir")
	}
	data, dstore, err := openDurable(opts)
	if err != nil {
		return nil, err
	}
	n := newNetwork(ppl.New(), data, opts)
	n.dstore = dstore
	return n, nil
}

// openDurable opens the segment directory, replays it, and attaches the
// journal hooks so subsequent inserts are logged.
func openDurable(opts Options) (*rel.Instance, *store.Dir, error) {
	dstore, err := store.Open(opts.DataDir, store.Options{})
	if err != nil {
		return nil, nil, err
	}
	data, _, err := dstore.Recover(opts.Shards)
	if err != nil {
		return nil, nil, err
	}
	dstore.Attach(data)
	return data, dstore, nil
}

// Load parses a PPL specification (schema declarations, mappings, storage
// descriptions and facts) into a fresh network with default options.
func Load(src string) (*Network, error) {
	return LoadWithOptions(src, Options{})
}

// LoadWithOptions is Load with explicit options. With Options.DataDir set,
// the on-disk segments are replayed first and the specification's facts are
// merged (and journaled) on top — loading the same spec over the same
// directory is idempotent for its facts.
func LoadWithOptions(src string, opts Options) (*Network, error) {
	res, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	data := res.Data
	var dstore *store.Dir
	if opts.DataDir != "" {
		recovered, ds, err := openDurable(opts)
		if err != nil {
			return nil, err
		}
		for _, pred := range data.Relations() {
			for _, t := range data.Relation(pred).Tuples() {
				if _, err := recovered.Add(pred, t); err != nil {
					return nil, fmt.Errorf("pdms: journaling %s: %w", pred, err)
				}
			}
		}
		data, dstore = recovered, ds
	} else if opts.Shards > 0 && opts.Shards != rel.DefaultShards() {
		// The parser loads into a default-sharded instance; repartition
		// only when the caller asked for a different layout (a one-time
		// O(rows) load cost, pointless when the counts already match).
		data = rel.Reshard(data, opts.Shards)
	}
	n := newNetwork(res.PDMS, data, opts)
	n.dstore = dstore
	return n, nil
}

// Close flushes and fsyncs the durable journal (a no-op for in-memory
// networks). The network must not be mutated afterwards.
func (n *Network) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dstore == nil {
		return nil
	}
	return n.dstore.Close()
}

// Extend parses additional PPL statements into an existing network — the
// paper's ad hoc extensibility: new peers, mappings and data can join at
// any time (Example 1.1's Earthquake Command Center scenario).
func (n *Network) Extend(src string) error {
	res, err := parser.Parse(src)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	// Invalidate caches even when the merge fails partway: declarations or
	// mappings may already have been applied, and serving pre-Extend cached
	// answers against a partially-extended spec would be stale. Bumping the
	// spec generation invalidates every answer key, not just the touched
	// relations' — a new mapping can change which relations a rewriting
	// mentions.
	defer func() {
		n.specGen++
		n.invalidations++
	}()
	// Merge declarations, mappings, storage and data.
	for _, name := range res.PDMS.RelationNames() {
		if err := n.spec.DeclareRelation(*res.PDMS.Relation(name)); err != nil {
			return err
		}
	}
	for _, m := range res.PDMS.Mappings() {
		m.ID = "" // re-assign in this network's ID space
		if err := n.spec.AddMapping(m); err != nil {
			return err
		}
	}
	for _, s := range res.PDMS.Storages() {
		s.ID = ""
		if err := n.spec.AddStorage(s); err != nil {
			return err
		}
	}
	for _, pred := range res.Data.Relations() {
		for _, t := range res.Data.Relation(pred).Tuples() {
			if _, err := n.data.Add(pred, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// Spec exposes the underlying PPL specification (read-only use intended).
//
//lint:ignore lockcheck deliberate read-only escape hatch: the pointer is swapped atomically-enough under Extend's lock and callers are documented not to mutate through it
func (n *Network) Spec() *ppl.PDMS { return n.spec }

// Data exposes the stored-relation instance. Read-only: mutating it
// directly bypasses the Network's lock (and the per-relation insert
// counters that answer-cache keys are built from are only read safely
// under it), so cached answers could be served stale. All mutation must go
// through AddFact or Extend.
//
//lint:ignore lockcheck deliberate read-only escape hatch: the instance pointer never changes after construction; the doc comment above warns against mutating through it
func (n *Network) Data() *rel.Instance { return n.data }

// AddFact inserts a tuple into a stored relation. The insert advances that
// relation's generation counter, invalidating exactly the cached answers
// whose rewriting mentions it; cached answers for queries over other
// relations survive. A duplicate insert is a no-op and keeps the whole
// cache warm.
func (n *Network) AddFact(stored string, values ...string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.spec.IsStored(stored) {
		return fmt.Errorf("pdms: %q is not a declared stored relation", stored)
	}
	added, err := n.data.Add(stored, rel.Tuple(values))
	if err == nil && added {
		n.invalidations++
	}
	return err
}

// Answer is a query result row.
type Answer = rel.Tuple

// Reformulation is the outcome of reformulating one query.
type Reformulation struct {
	// Rewriting is the union of conjunctive queries over stored relations.
	Rewriting lang.UCQ
	// Stats reports rule-goal tree metrics.
	Stats core.Stats
	// Classification is the Theorem 3.1–3.3 complexity classification; the
	// rewriting is complete (all certain answers) exactly when this is
	// PTIME.
	Classification ppl.Classification
}

// Reformulate reformulates a textual query ("q(x) :- H:Doctor(x, l)") into
// a union of conjunctive queries over stored relations.
func (n *Network) Reformulate(query string) (*Reformulation, error) {
	q, err := parser.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return n.ReformulateCQ(q)
}

// testHookPostKey, when non-nil, runs right after Query/ReformulateCQ
// computes its generation-stamped cache key, while the read lock is held.
// The cache-race regression tests use it to try to interleave a mutation
// at the worst possible moment: because the key snapshot and the
// computation now share one lock section, the mutation must block until
// the computation (and its cache Put) finish.
var testHookPostKey func()

// ReformulateCQ is Reformulate for an already-parsed query. Results are
// cached per canonicalized query until the specification changes (Extend);
// the returned struct is the caller's, but its slices are shared — treat
// the rewriting as read-only.
func (n *Network) ReformulateCQ(q lang.CQ) (*Reformulation, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.reformulateCQLocked(q, nil)
}

// reformulateCQLocked is ReformulateCQ with n.mu already held (any mode).
// The generation snapshot, the cache probe, the computation and the cache
// store all happen inside one lock section: an Extend cannot interleave,
// so an entry keyed with generation g always reflects generation-g state
// (the old code snapshotted the generation under a separate RLock and
// could store a post-Extend rewriting under the pre-Extend key).
func (n *Network) reformulateCQLocked(q lang.CQ, sp *obs.Span) (*Reformulation, error) {
	key := fmt.Sprintf("%d|%s", n.specGen, q.Canonical())
	if testHookPostKey != nil {
		testHookPostKey()
	}
	if v, ok := n.reforms.Get(key); ok {
		ref := v.(Reformulation)
		sp.Set("cached", "true")
		sp.SetInt("rewritings", int64(ref.Rewriting.Len()))
		return &ref, nil
	}
	copts := n.opts.core()
	copts.Trace = sp
	r, err := core.New(n.spec, copts)
	if err != nil {
		return nil, err
	}
	out, err := r.Reformulate(q)
	if err != nil {
		return nil, err
	}
	ref := Reformulation{
		Rewriting:      out.UCQ,
		Stats:          out.Stats,
		Classification: out.Classification,
	}
	sp.SetInt("rewritings", int64(ref.Rewriting.Len()))
	n.reforms.Put(key, ref)
	return &ref, nil
}

// answerKeyLocked builds the answer-cache key for q given its
// reformulation, with n.mu held (any mode): the spec generation, then the
// generation vector of exactly the stored relations the rewriting
// mentions (sorted, so disjunct order cannot split cache entries), then
// the canonicalized query. A mutation of relation R changes the key of
// every query whose rewriting touches R — and only those — while old keys
// never match again and age out of the LRU.
func (n *Network) answerKeyLocked(q lang.CQ, ref *Reformulation) string {
	seen := map[string]bool{}
	var preds []string
	for _, d := range ref.Rewriting.Disjuncts {
		for _, p := range d.Preds() {
			if !seen[p] {
				seen[p] = true
				preds = append(preds, p)
			}
		}
	}
	sort.Strings(preds)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", n.specGen)
	for _, p := range preds {
		fmt.Fprintf(&sb, "|%s=%d", p, n.data.Gen(p))
	}
	sb.WriteByte('|')
	sb.WriteString(q.Canonical())
	return sb.String()
}

// Query reformulates and executes a textual query over the stored data,
// returning the certain answers (all of them when the specification is in
// the tractable fragment). Execution runs through the indexed engine;
// answers are cached under the generation vector of the relations the
// rewriting touches and served until one of *those* relations (or the
// specification) mutates. Callers must not mutate the returned slice.
func (n *Network) Query(query string) ([]Answer, error) {
	return n.query(query, n.tracer.StartTrace("query", obs.Attr{K: "q", V: query}))
}

// query is Query under an optional (possibly nil) trace root, which it
// always ends; the caller renders it afterwards if it wants the tree.
func (n *Network) query(query string, root *obs.Span) ([]Answer, error) {
	defer root.End()
	start := time.Now()
	defer func() { n.queryHist.Observe(time.Since(start)) }()
	q, err := parser.ParseQuery(query)
	if err != nil {
		root.SetErr(err)
		return nil, err
	}
	// The reformulation, the generation-vector snapshot, the cache probe,
	// the evaluation and the cache store share one read-lock section, so no
	// mutation can interleave: an entry keyed with generation vector v
	// always holds the vector-v answer. (The old code released the lock
	// between the snapshot and the computation; an interleaved
	// Extend/AddFact then stored a post-mutation answer under the
	// pre-mutation key, which concurrent old-generation readers hit.)
	n.mu.RLock()
	defer n.mu.RUnlock()
	rs := root.Child("reformulate")
	ref, err := n.reformulateCQLocked(q, rs)
	rs.SetErr(err)
	rs.End()
	if err != nil {
		return nil, err
	}
	key := n.answerKeyLocked(q, ref)
	if testHookPostKey != nil {
		testHookPostKey()
	}
	if v, ok := n.answers.Get(key); ok {
		root.Set("answer_cache", "hit")
		return v.([]Answer), nil
	}
	es := root.Child("eval")
	rows, err := n.eng.EvalUCQSpan(ref.Rewriting, es)
	es.SetErr(err)
	es.End()
	if err != nil {
		return nil, err
	}
	out := make([]Answer, len(rows))
	for i, t := range rows {
		out[i] = Answer(t)
	}
	n.answers.Put(key, out)
	return out, nil
}

// Explain runs query with tracing forced (regardless of the sampling
// knob) and returns the rendered trace tree alongside the answers: the
// reformulation's rule-goal expansion, planning, and evaluation stages,
// with timings.
func (n *Network) Explain(query string) (string, []Answer, error) {
	root := n.tracer.ForceTrace("query", obs.Attr{K: "q", V: query})
	ans, err := n.query(query, root)
	if err != nil {
		return root.Render(), nil, err
	}
	return root.Render(), ans, nil
}

// UCQEvaluator executes a reformulated union of conjunctive queries over
// stored relations. Both the local indexed engine (*engine.Engine) and the
// distributed *netpeer.Executor implement it.
type UCQEvaluator interface {
	EvalUCQ(u lang.UCQ) ([]rel.Tuple, error)
}

// QueryVia reformulates query at this network and executes the rewriting
// through exec — typically a *netpeer.Executor, so the stored relations
// may live on remote peers instead of in this network's local instance
// (the full paper pipeline: pose at a peer, reformulate, execute across
// the network). Reformulations are cached as usual; answers are not,
// because remote data is outside the local generation counters — caching
// on the distributed path is the executor's job (its bind-fragment cache
// revalidates against the serving peers' per-relation generations).
func (n *Network) QueryVia(query string, exec UCQEvaluator) ([]Answer, error) {
	return n.queryVia(query, exec, n.tracer.StartTrace("query", obs.Attr{K: "q", V: query}))
}

// SpanUCQEvaluator is a UCQEvaluator that can attach its execution spans
// (per-disjunct evaluation, bind-join batches, remote work) under a trace
// span. *engine.Engine and *netpeer.Executor implement it.
type SpanUCQEvaluator interface {
	UCQEvaluator
	EvalUCQSpan(u lang.UCQ, sp *obs.Span) ([]rel.Tuple, error)
}

// queryVia is QueryVia under an optional trace root (see query).
func (n *Network) queryVia(query string, exec UCQEvaluator, root *obs.Span) ([]Answer, error) {
	defer root.End()
	start := time.Now()
	defer func() { n.queryHist.Observe(time.Since(start)) }()
	q, err := parser.ParseQuery(query)
	if err != nil {
		root.SetErr(err)
		return nil, err
	}
	n.mu.RLock()
	rs := root.Child("reformulate")
	ref, err := n.reformulateCQLocked(q, rs)
	rs.SetErr(err)
	rs.End()
	n.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	es := root.Child("eval")
	var rows []rel.Tuple
	if se, ok := exec.(SpanUCQEvaluator); ok && es != nil {
		rows, err = se.EvalUCQSpan(ref.Rewriting, es)
	} else {
		rows, err = exec.EvalUCQ(ref.Rewriting)
	}
	es.SetErr(err)
	es.End()
	if err != nil {
		return nil, err
	}
	out := make([]Answer, len(rows))
	for i, t := range rows {
		out[i] = Answer(t)
	}
	return out, nil
}

// ExplainVia runs query through exec with tracing forced and returns the
// rendered trace tree — for a *netpeer.Executor this shows the stitched
// cross-peer span tree, with each serving peer's spans grafted under the
// bind-join batches that produced them — alongside the answers.
func (n *Network) ExplainVia(query string, exec UCQEvaluator) (string, []Answer, error) {
	root := n.tracer.ForceTrace("query", obs.Attr{K: "q", V: query})
	ans, err := n.queryVia(query, exec, root)
	if err != nil {
		return root.Render(), nil, err
	}
	return root.Render(), ans, nil
}

// Tracer exposes the network's query tracer: set its sampling knob to
// start collecting traces, and read recent ones from it (cmd/peerd mounts
// them at /debug/traces).
func (n *Network) Tracer() *obs.Tracer { return n.tracer }

// RegisterMetrics registers this network's counters into reg: the answer
// and reformulation cache counters as the "pdms" group, the query latency
// histogram as "pdms.query_seconds", and the embedded engine's counters as
// the "engine" group.
func (n *Network) RegisterMetrics(reg *obs.Registry) {
	n.eng.RegisterMetrics(reg)
	if n.dstore != nil {
		store.RegisterMetrics(reg, n.dstore)
	}
	reg.RegisterHistogram("pdms.query_seconds", n.queryHist)
	reg.RegisterGroup("pdms", func(em *obs.Emitter) {
		cs := n.CacheStats()
		em.Counter("answer_cache.hits", cs.Hits)
		em.Counter("answer_cache.misses", cs.Misses)
		em.Counter("invalidations", cs.Invalidations)
		rs := n.reforms.Stats()
		em.Counter("reform_cache.hits", rs.Hits)
		em.Counter("reform_cache.misses", rs.Misses)
	})
}

// QueryCacheStats reports cumulative answer-cache counters.
type QueryCacheStats struct {
	// Hits and Misses count answer-cache probes. With per-relation
	// generation keys, a miss happens on a cold query, after a mutation of
	// a relation the query's rewriting touches, or after any Extend.
	Hits, Misses uint64
	// Invalidations counts generation-bumping mutation events: AddFact
	// calls that inserted a new tuple plus every Extend. Each one changed
	// the keys of the cached answers touching the mutated relation(s) —
	// duplicate inserts bump nothing and leave the cache warm.
	Invalidations uint64
}

// CacheStats returns cumulative answer-cache counters.
func (n *Network) CacheStats() QueryCacheStats {
	n.mu.RLock()
	inv := n.invalidations
	n.mu.RUnlock()
	st := n.answers.Stats()
	return QueryCacheStats{Hits: st.Hits, Misses: st.Misses, Invalidations: inv}
}

// CertainAnswers computes certain answers directly via the chase oracle
// (test/validation path; exponentially slower than Query on large data but
// independent of the reformulation algorithm). Only supported on
// specifications in the tractable fragment.
func (n *Network) CertainAnswers(query string) ([]Answer, error) {
	q, err := parser.ParseQuery(query)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	rows, err := chase.CertainAnswers(n.spec, n.data, q, chase.Options{})
	if err != nil {
		return nil, err
	}
	out := make([]Answer, len(rows))
	for i, t := range rows {
		out[i] = Answer(t)
	}
	return out, nil
}

// Classify reports the data complexity of certain-answer computation for
// this network and query per Theorems 3.1–3.3.
func (n *Network) Classify(query string) (ppl.Classification, error) {
	q, err := parser.ParseQuery(query)
	if err != nil {
		return ppl.Classification{}, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.spec.Classify(q), nil
}

// Stats summarizes the specification.
func (n *Network) Stats() ppl.Stats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.spec.Stats()
}
