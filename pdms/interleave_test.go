package pdms

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/lang"
	"repro/internal/rel"
)

// The randomized mutation-interleaving harness. Mutators insert facts
// (AddFact, and Extend carrying fact statements) while queriers pose
// queries; every answer is checked against a *linearizability envelope*
// built from two shadow ledgers:
//
//   - done:   facts whose mutation had returned before the query started
//   - issued: facts whose mutation had been called by the time it returned
//
// All mutations are inserts and CQ/UCQ evaluation is monotone, so any
// answer consistent with *some* generation vector between the query's
// start and end must satisfy
//
//	eval(rewriting, done) ⊆ answer ⊆ eval(rewriting, issued)
//
// evaluated by the naive oracle (package rel) over the shadow instances.
// An answer outside the envelope means a cache key mixed generations —
// e.g. a stale per-relation entry served across an invalidating mutation,
// or a post-mutation answer stored under a pre-mutation key.

// shadowLedger tracks issued/done facts per stored relation.
type shadowLedger struct {
	mu     sync.Mutex
	issued map[string][]rel.Tuple
	done   map[string][]rel.Tuple
}

func newShadowLedger() *shadowLedger {
	return &shadowLedger{issued: map[string][]rel.Tuple{}, done: map[string][]rel.Tuple{}}
}

// seed records a fact present before the run starts (issued and done).
func (s *shadowLedger) seed(pred string, t rel.Tuple) {
	s.issued[pred] = append(s.issued[pred], t)
	s.done[pred] = append(s.done[pred], t)
}

// around wraps one fact insertion: issue before, complete after.
func (s *shadowLedger) around(pred string, t rel.Tuple, insert func() error) error {
	s.mu.Lock()
	s.issued[pred] = append(s.issued[pred], t)
	s.mu.Unlock()
	if err := insert(); err != nil {
		return err
	}
	s.mu.Lock()
	s.done[pred] = append(s.done[pred], t)
	s.mu.Unlock()
	return nil
}

// snapshot builds instances from the current done and issued ledgers under
// one lock section, so the pair is itself consistent.
func (s *shadowLedger) snapshot() (done, issued *rel.Instance) {
	s.mu.Lock()
	defer s.mu.Unlock()
	build := func(m map[string][]rel.Tuple) *rel.Instance {
		ins := rel.NewInstance()
		for pred, ts := range m {
			for _, t := range ts {
				if _, err := ins.Add(pred, t); err != nil {
					panic(err)
				}
			}
		}
		return ins
	}
	return build(s.done), build(s.issued)
}

// snapshotDone returns only the done-side instance (taken before a query).
func (s *shadowLedger) snapshotDone() *rel.Instance {
	done, _ := s.snapshot()
	return done
}

// snapshotIssued returns only the issued-side instance (taken after).
func (s *shadowLedger) snapshotIssued() *rel.Instance {
	_, issued := s.snapshot()
	return issued
}

// tupleSet keys an answer list for subset checks.
func tupleSet(ts []rel.Tuple) map[string]bool {
	m := make(map[string]bool, len(ts))
	for _, t := range ts {
		m[t.Key()] = true
	}
	return m
}

func answersToTuples(as []Answer) []rel.Tuple {
	out := make([]rel.Tuple, len(as))
	for i, a := range as {
		out[i] = rel.Tuple(a)
	}
	return out
}

// checkEnvelope asserts lo ⊆ got ⊆ hi.
func checkEnvelope(t *testing.T, what string, got, lo, hi []rel.Tuple) {
	t.Helper()
	gotSet, hiSet := tupleSet(got), tupleSet(hi)
	for _, want := range lo {
		if !gotSet[want.Key()] {
			t.Errorf("%s: answer lost tuple %v completed before the query started (stale cache entry served?)", what, want)
			return
		}
	}
	for _, g := range got {
		if !hiSet[g.Key()] {
			t.Errorf("%s: answer contains %v, which no issued mutation can explain (cache key mixed generations?)", what, g)
			return
		}
	}
}

func TestRandomizedMutationInterleaving(t *testing.T) {
	net, err := Load(`
storage A.r(x) in A:R(x)
storage B.s(x, y) in B:S(x, y)
storage C.t(y) in C:T(y)
storage D.w(x) in D:W(x)
include A:R(x) in U:All(x)
include D:W(x) in U:All(x)
fact A.r("seedA")
fact B.s("seedB", "j0")
fact C.t("j0")
fact D.w("seedD")
`)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newShadowLedger()
	ledger.seed("A.r", rel.Tuple{"seedA"})
	ledger.seed("B.s", rel.Tuple{"seedB", "j0"})
	ledger.seed("C.t", rel.Tuple{"j0"})
	ledger.seed("D.w", rel.Tuple{"seedD"})

	// The tested queries and their rewritings over stored relations,
	// reformulated once up front. The concurrent Extends below only add
	// facts and relations unreachable from these queries, so the
	// rewritings stay valid for the whole run.
	queries := []struct {
		name string
		text string
		rw   lang.UCQ
	}{
		{name: "scan", text: `q(x) :- A:R(x)`},
		{name: "join", text: `q(x, y) :- B:S(x, y), C:T(y)`},
		{name: "union", text: `q(x) :- U:All(x)`},
	}
	for i := range queries {
		ref, err := net.Reformulate(queries[i].text)
		if err != nil {
			t.Fatal(err)
		}
		queries[i].rw = ref.Rewriting
	}

	const mutators, queriers, iters = 4, 4, 30
	var wg sync.WaitGroup
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + m)))
			for i := 0; i < iters; i++ {
				var err error
				switch rng.Intn(6) {
				case 0:
					v := fmt.Sprintf("a%d_%d", m, i)
					err = ledger.around("A.r", rel.Tuple{v}, func() error {
						return net.AddFact("A.r", v)
					})
				case 1:
					x, y := fmt.Sprintf("b%d_%d", m, i), fmt.Sprintf("j%d", rng.Intn(4))
					err = ledger.around("B.s", rel.Tuple{x, y}, func() error {
						return net.AddFact("B.s", x, y)
					})
				case 2:
					// Small domain: duplicate inserts are deliberate (they
					// must not bump any generation nor corrupt the ledger).
					y := fmt.Sprintf("j%d", rng.Intn(4))
					err = ledger.around("C.t", rel.Tuple{y}, func() error {
						return net.AddFact("C.t", y)
					})
				case 3:
					v := fmt.Sprintf("d%d_%d", m, i)
					err = ledger.around("D.w", rel.Tuple{v}, func() error {
						return net.AddFact("D.w", v)
					})
				case 4:
					// Extend carrying a fact: same ledger discipline.
					v := fmt.Sprintf("e%d_%d", m, i)
					err = ledger.around("A.r", rel.Tuple{v}, func() error {
						return net.Extend(fmt.Sprintf("fact A.r(%q)", v))
					})
				default:
					// Extend with a fresh, unreachable peer: churns the spec
					// generation (invalidating everything) without touching
					// the tested rewritings.
					err = net.Extend(fmt.Sprintf(`storage Z%d_%d.z(x) in Z%d_%d:Z(x)`, m, i, m, i))
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(m)
	}
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + g)))
			for i := 0; i < iters; i++ {
				qi := queries[rng.Intn(len(queries))]
				done := ledger.snapshotDone()
				ans, err := net.Query(qi.text)
				if err != nil {
					t.Error(err)
					return
				}
				issued := ledger.snapshotIssued()
				lo, err := rel.EvalUCQ(qi.rw, done)
				if err != nil {
					t.Error(err)
					return
				}
				hi, err := rel.EvalUCQ(qi.rw, issued)
				if err != nil {
					t.Error(err)
					return
				}
				checkEnvelope(t, qi.name, answersToTuples(ans), lo, hi)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: every answer must now exactly equal the oracle's.
	final := ledger.snapshotIssued()
	for _, qi := range queries {
		want, err := rel.EvalUCQ(qi.rw, final)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := net.Query(qi.text)
		if err != nil {
			t.Fatal(err)
		}
		got := answersToTuples(ans)
		if len(got) != len(want) {
			t.Fatalf("%s: quiesced answer has %d rows, oracle %d", qi.name, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s: quiesced answer diverges at %d: %v vs %v", qi.name, i, got[i], want[i])
			}
		}
	}

	// Deterministic epilogue for the stats: a repeated query with no
	// intervening mutation must hit, and the run must have recorded
	// generation-bumping mutations.
	st0 := net.CacheStats()
	if _, err := net.Query(queries[0].text); err != nil {
		t.Fatal(err)
	}
	st1 := net.CacheStats()
	if st1.Hits != st0.Hits+1 {
		t.Fatalf("quiesced repeat query did not hit: %+v -> %+v", st0, st1)
	}
	if st1.Invalidations == 0 {
		t.Fatal("no invalidations recorded across a mutating run")
	}
}
