package pdms_test

import (
	"testing"

	"repro/internal/netpeer"
	"repro/internal/rel"
	"repro/pdms"
)

// TestQueryViaNetworkExecutor runs the full paper pipeline end to end:
// pose a query at a mediator network holding only the specification,
// reformulate it onto stored relations, and execute the rewriting across
// two TCP peer servers through the bind-join executor.
func TestQueryViaNetworkExecutor(t *testing.T) {
	net, err := pdms.Load(`
storage H1.doc(s, l) in H:Doctor(s, l)
storage H2.doc(s, l) in H:Doctor(s, l)
storage FD.medic(s, l) in FS:Medic(s, l)
define DC:OnCall(d, m, s) :- H:Doctor(d, s), FS:Medic(m, s)
`)
	if err != nil {
		t.Fatal(err)
	}

	startPeer := func(facts map[string][]rel.Tuple) string {
		data := rel.NewInstance()
		for pred, ts := range facts {
			for _, tu := range ts {
				if _, err := data.Add(pred, tu); err != nil {
					t.Fatal(err)
				}
			}
		}
		srv := netpeer.NewServer(data)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return addr
	}
	addr1 := startPeer(map[string][]rel.Tuple{
		"H1.doc": {{"d07", "day"}, {"d12", "night"}},
		"H2.doc": {{"d31", "day"}},
	})
	addr2 := startPeer(map[string][]rel.Tuple{
		"FD.medic": {{"m1", "day"}, {"m2", "night"}},
	})

	ex := netpeer.NewExecutor()
	defer ex.Close()
	for _, a := range []string{addr1, addr2} {
		if err := ex.Discover(a); err != nil {
			t.Fatal(err)
		}
	}

	// Cross-peer bind-join per disjunct: doctors live on peer 1, medics on
	// peer 2.
	rows, err := net.QueryVia(`q(d, m) :- DC:OnCall(d, m, "day")`, ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r[1] != "m1" {
			t.Fatalf("rows = %v", rows)
		}
	}

	// The same rewriting executed against a local engine oracle must
	// agree: QueryVia with the network's own data as the evaluator.
	local, err := pdms.Load(`
storage H1.doc(s, l) in H:Doctor(s, l)
storage H2.doc(s, l) in H:Doctor(s, l)
storage FD.medic(s, l) in FS:Medic(s, l)
define DC:OnCall(d, m, s) :- H:Doctor(d, s), FS:Medic(m, s)
fact H1.doc("d07", "day")
fact H1.doc("d12", "night")
fact H2.doc("d31", "day")
fact FD.medic("m1", "day")
fact FD.medic("m2", "night")
`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Query(`q(d, m) :- DC:OnCall(d, m, "day")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(rows) {
		t.Fatalf("distributed %v vs local %v", rows, want)
	}
	for i := range want {
		if !rel.Tuple(want[i]).Equal(rel.Tuple(rows[i])) {
			t.Fatalf("distributed %v vs local %v", rows, want)
		}
	}
}
