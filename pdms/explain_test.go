package pdms_test

import (
	"strings"
	"testing"

	"repro/internal/netpeer"
	"repro/internal/obs"
	"repro/internal/rel"
	"repro/pdms"
)

// TestExplainLocal renders a forced trace of one local query: mediator
// reformulation (with its rule-goal nodes), planning and evaluation must
// all appear, and the answers must match a plain Query.
func TestExplainLocal(t *testing.T) {
	net, err := pdms.Load(`
storage FH.doc(s, l) in FH:Doctor(s, l)
define H:Doctor(s, l) :- FH:Doctor(s, l)
fact FH.doc("d1", "er")
fact FH.doc("d2", "icu")
`)
	if err != nil {
		t.Fatal(err)
	}
	q := `q(s) :- H:Doctor(s, l)`
	text, ans, err := net.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := net.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != len(plain) {
		t.Fatalf("Explain answers %v != Query answers %v", ans, plain)
	}
	for _, want := range []string{"trace ", "reformulate", "goal", "eval", "plan"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Explain output missing %q:\n%s", want, text)
		}
	}
	// The rendered tree mirrors the rule-goal tree: the posed goal node
	// carries its predicate.
	if !strings.Contains(text, "pred=H:Doctor") {
		t.Fatalf("Explain output missing the goal node's predicate:\n%s", text)
	}
	// Explain keeps the trace in the network's ring for /debug/traces.
	if net.Tracer().Recorded() == 0 {
		t.Fatal("Explain did not record the trace")
	}
}

// TestRegisterMetrics runs a query, then checks one registry snapshot
// carries the network's cache counters, its query-latency histogram and
// the embedded engine's counters under their dotted names.
func TestRegisterMetrics(t *testing.T) {
	net, err := pdms.Load(`
storage FH.doc(s, l) in FH:Doctor(s, l)
define H:Doctor(s, l) :- FH:Doctor(s, l)
fact FH.doc("d1", "er")
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Query(`q(s) :- H:Doctor(s, l)`); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	net.RegisterMetrics(reg)
	snap := reg.Snapshot()
	if snap.Counters["pdms.answer_cache.misses"] == 0 {
		t.Fatalf("pdms.answer_cache.misses not reported: %v", snap.Counters)
	}
	for _, key := range []string{"pdms.answer_cache.hits", "pdms.invalidations",
		"pdms.reform_cache.hits", "pdms.reform_cache.misses", "engine.scans"} {
		if _, ok := snap.Counters[key]; !ok {
			t.Fatalf("%s missing from snapshot: %v", key, snap.Counters)
		}
	}
	h, ok := snap.Histograms["pdms.query_seconds"]
	if !ok || h.Count == 0 {
		t.Fatalf("pdms.query_seconds histogram missing or empty: %+v", snap.Histograms)
	}
}

// TestNewEmptyNetwork covers the programmatic constructor and the spec /
// data accessors: an empty network extends into a queryable one.
func TestNewEmptyNetwork(t *testing.T) {
	net := pdms.New(pdms.Options{})
	if net.Spec() == nil || net.Data() == nil {
		t.Fatal("empty network has nil spec or data")
	}
	if err := net.Extend(`
storage FH.doc(s, l) in FH:Doctor(s, l)
fact FH.doc("d1", "er")
`); err != nil {
		t.Fatal(err)
	}
	ans, err := net.Query(`q(s) :- FH:Doctor(s, l)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 {
		t.Fatalf("answers = %v, want 1 row", ans)
	}
	if got := net.Data().Relation("FH.doc"); got == nil || len(got.Tuples()) != 1 {
		t.Fatalf("Data() does not expose the loaded relation")
	}
}

// TestExplainViaNetworkExecutor stitches a cross-peer trace end to end:
// the rendered tree must contain spans adopted from both serving peers,
// labeled with their addresses.
func TestExplainViaNetworkExecutor(t *testing.T) {
	net, err := pdms.Load(`
storage H1.doc(s, l) in H:Doctor(s, l)
storage FD.medic(s, l) in FS:Medic(s, l)
define DC:OnCall(d, m, s) :- H:Doctor(d, s), FS:Medic(m, s)
`)
	if err != nil {
		t.Fatal(err)
	}
	startPeer := func(facts map[string][]rel.Tuple) string {
		data := rel.NewInstance()
		for pred, ts := range facts {
			for _, tu := range ts {
				if _, err := data.Add(pred, tu); err != nil {
					t.Fatal(err)
				}
			}
		}
		srv := netpeer.NewServer(data)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return addr
	}
	addr1 := startPeer(map[string][]rel.Tuple{"H1.doc": {{"d07", "day"}, {"d12", "night"}}})
	addr2 := startPeer(map[string][]rel.Tuple{"FD.medic": {{"m1", "day"}}})
	ex := netpeer.NewExecutor()
	defer ex.Close()
	for _, a := range []string{addr1, addr2} {
		if err := ex.Discover(a); err != nil {
			t.Fatal(err)
		}
	}

	text, rows, err := net.ExplainVia(`q(d, m) :- DC:OnCall(d, m, "day")`, ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != "m1" {
		t.Fatalf("rows = %v", rows)
	}
	for _, want := range []string{
		"reformulate",
		"atom",
		"[peer " + addr1 + "]",
		"[peer " + addr2 + "]",
		"serve.",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("stitched trace missing %q:\n%s", want, text)
		}
	}
}
