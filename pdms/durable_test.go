package pdms

import (
	"strings"
	"testing"
)

const durableSpec = `
storage FH.doc(s, l) in FH:Doctor(s, l)
define H:Doctor(s, l) :- FH:Doctor(s, l)
fact FH.doc("d1", "er")
fact FH.doc("d2", "icu")
`

// TestDurableRoundTrip: facts added to a DataDir-backed network survive a
// close/reopen, spec facts merge idempotently over the recovered data, and
// queries over the recovered instance answer identically.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Shards: 4}
	n, err := LoadWithOptions(durableSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddFact("FH.doc", "d3", "ward"); err != nil {
		t.Fatal(err)
	}
	want, err := n.Query(`q(s) :- H:Doctor(s, l)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 3 {
		t.Fatalf("want 3 doctors, got %v", want)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	// Reload the same spec over the same directory: the recovered d3 and
	// the spec's (duplicate) d1/d2 must coexist without double-counting.
	n2, err := LoadWithOptions(durableSpec, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	got, err := n2.Query(`q(s) :- H:Doctor(s, l)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered network answers %v, want %v", got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("recovered network answers %v, want %v", got, want)
		}
	}
	if n2.Data().Relation("FH.doc").Len() != 3 {
		t.Fatalf("recovered relation has %d tuples, want 3", n2.Data().Relation("FH.doc").Len())
	}
}

// TestOpenRecoversFactsWithoutSpec: Open replays the journal into an
// empty-spec network; re-extending the spec makes the data queryable again.
func TestOpenRecoversFactsWithoutSpec(t *testing.T) {
	dir := t.TempDir()
	n, err := LoadWithOptions(durableSpec, Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	n2, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if n2.Data().Relation("FH.doc") == nil || n2.Data().Relation("FH.doc").Len() != 2 {
		t.Fatalf("Open did not recover the journaled facts: %v", n2.Data())
	}
	// The spec is not persisted: declare it again, then query.
	if err := n2.Extend("storage FH.doc(s, l) in FH:Doctor(s, l)\ndefine H:Doctor(s, l) :- FH:Doctor(s, l)"); err != nil {
		t.Fatal(err)
	}
	ans, err := n2.Query(`q(s) :- H:Doctor(s, l)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("recovered answers = %v", ans)
	}
}

// TestNewPanicsOnDataDir pins the documented misuse guard.
func TestNewPanicsOnDataDir(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("New accepted a DataDir")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "Open") {
			t.Fatalf("panic message does not point at Open: %v", r)
		}
	}()
	New(Options{DataDir: t.TempDir()})
}
