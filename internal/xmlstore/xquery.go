package xmlstore

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// FLWOR is a parsed query in the supported XQuery subset:
//
//	for $v in /path/steps
//	where $v/path = "const" (and $v/path != "c" | < | <= | > | >= ...)*
//	return $v/path1, $v/path2, ...
//
// Paths are chains of child steps with optional attribute tests
// [@name="value"] on any step. Return paths end implicitly in text()
// (element content) or @attr. Set-oriented semantics, exactly the paper's
// fragment: each FLWOR compiles to one conjunctive query over the shredded
// relations.
type FLWOR struct {
	Var    string
	In     Path
	Wheres []Where
	Return []Path
}

// Path is a sequence of child steps from the document root (for the `in`
// clause) or from the bound variable (for `where`/`return` paths).
type Path struct {
	Steps []Step
	// Attr selects an attribute of the final element instead of its text.
	Attr string
}

// Step is one child step: an element tag with optional attribute equality
// tests.
type Step struct {
	Tag   string
	Tests []AttrTest
}

// AttrTest is an attribute equality predicate [@name="value"].
type AttrTest struct {
	Name  string
	Value string
}

// Where is a comparison between a path's value and a constant.
type Where struct {
	Path Path
	Op   lang.CompOp
	Val  string
}

// ParseFLWOR parses the textual form.
func ParseFLWOR(src string) (*FLWOR, error) {
	s := strings.TrimSpace(src)
	if !strings.HasPrefix(s, "for ") {
		return nil, fmt.Errorf("xmlstore: query must start with 'for'")
	}
	s = s[4:]
	// for $v in PATH ...
	v, rest, err := parseVar(s)
	if err != nil {
		return nil, err
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "in ") {
		return nil, fmt.Errorf("xmlstore: expected 'in' after variable")
	}
	rest = strings.TrimSpace(rest[3:])
	retIdx := strings.Index(rest, "return ")
	if retIdx < 0 {
		return nil, fmt.Errorf("xmlstore: missing 'return'")
	}
	head := strings.TrimSpace(rest[:retIdx])
	retPart := strings.TrimSpace(rest[retIdx+len("return "):])

	q := &FLWOR{Var: v}
	whereIdx := strings.Index(head, "where ")
	inPart := head
	if whereIdx >= 0 {
		inPart = strings.TrimSpace(head[:whereIdx])
		wherePart := strings.TrimSpace(head[whereIdx+len("where "):])
		for _, clause := range strings.Split(wherePart, " and ") {
			w, err := parseWhere(strings.TrimSpace(clause), v)
			if err != nil {
				return nil, err
			}
			q.Wheres = append(q.Wheres, w)
		}
	}
	p, err := ParsePath(inPart)
	if err != nil {
		return nil, err
	}
	if p.Attr != "" {
		return nil, fmt.Errorf("xmlstore: 'in' path cannot select an attribute")
	}
	q.In = p
	for _, rp := range strings.Split(retPart, ",") {
		rp = strings.TrimSpace(rp)
		pp, err := parseVarPath(rp, v)
		if err != nil {
			return nil, err
		}
		q.Return = append(q.Return, pp)
	}
	if len(q.Return) == 0 {
		return nil, fmt.Errorf("xmlstore: empty return clause")
	}
	return q, nil
}

func parseVar(s string) (string, string, error) {
	if !strings.HasPrefix(s, "$") {
		return "", "", fmt.Errorf("xmlstore: expected variable after 'for'")
	}
	i := 1
	for i < len(s) && (isAlnum(s[i]) || s[i] == '_') {
		i++
	}
	if i == 1 {
		return "", "", fmt.Errorf("xmlstore: empty variable name")
	}
	return s[:i], s[i:], nil
}

func isAlnum(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// parseWhere parses `$v/path OP "const"`.
func parseWhere(s, v string) (Where, error) {
	ops := []struct {
		text string
		op   lang.CompOp
	}{
		{"!=", lang.OpNE}, {"<=", lang.OpLE}, {">=", lang.OpGE},
		{"=", lang.OpEQ}, {"<", lang.OpLT}, {">", lang.OpGT},
	}
	for _, o := range ops {
		if i := strings.Index(s, o.text); i > 0 {
			lhs := strings.TrimSpace(s[:i])
			rhs := strings.TrimSpace(s[i+len(o.text):])
			p, err := parseVarPath(lhs, v)
			if err != nil {
				return Where{}, err
			}
			val, err := unquote(rhs)
			if err != nil {
				return Where{}, err
			}
			return Where{Path: p, Op: o.op, Val: val}, nil
		}
	}
	return Where{}, fmt.Errorf("xmlstore: no comparison operator in %q", s)
}

func unquote(s string) (string, error) {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1], nil
	}
	// Bare numbers allowed.
	for i := 0; i < len(s); i++ {
		if !(s[i] >= '0' && s[i] <= '9' || s[i] == '.' || s[i] == '-') {
			return "", fmt.Errorf("xmlstore: expected quoted string or number, got %q", s)
		}
	}
	if s == "" {
		return "", fmt.Errorf("xmlstore: empty comparison value")
	}
	return s, nil
}

// parseVarPath parses `$v/step/step` or `$v/@attr` or `$v` relative paths.
func parseVarPath(s, v string) (Path, error) {
	if !strings.HasPrefix(s, v) {
		return Path{}, fmt.Errorf("xmlstore: path %q must start with %s", s, v)
	}
	rest := s[len(v):]
	if rest == "" {
		return Path{}, nil
	}
	if !strings.HasPrefix(rest, "/") {
		return Path{}, fmt.Errorf("xmlstore: expected '/' after %s in %q", v, s)
	}
	return ParsePath(rest)
}

// ParsePath parses /a/b[@k="v"]/c or .../@attr.
func ParsePath(s string) (Path, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "/") {
		return Path{}, fmt.Errorf("xmlstore: path must start with '/': %q", s)
	}
	var p Path
	for _, raw := range strings.Split(s[1:], "/") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return Path{}, fmt.Errorf("xmlstore: empty path step in %q", s)
		}
		if strings.HasPrefix(raw, "@") {
			if p.Attr != "" {
				return Path{}, fmt.Errorf("xmlstore: attribute step must be last in %q", s)
			}
			p.Attr = raw[1:]
			continue
		}
		if p.Attr != "" {
			return Path{}, fmt.Errorf("xmlstore: steps after attribute in %q", s)
		}
		step, err := parseStep(raw)
		if err != nil {
			return Path{}, err
		}
		p.Steps = append(p.Steps, step)
	}
	return p, nil
}

func parseStep(raw string) (Step, error) {
	var st Step
	name := raw
	for {
		open := strings.Index(name, "[")
		if open < 0 {
			break
		}
		closeIdx := strings.Index(name, "]")
		if closeIdx < open {
			return Step{}, fmt.Errorf("xmlstore: unbalanced predicate in %q", raw)
		}
		pred := name[open+1 : closeIdx]
		name = name[:open] + name[closeIdx+1:]
		if !strings.HasPrefix(pred, "@") {
			return Step{}, fmt.Errorf("xmlstore: only attribute predicates supported: %q", pred)
		}
		eq := strings.Index(pred, "=")
		if eq < 0 {
			return Step{}, fmt.Errorf("xmlstore: predicate needs '=': %q", pred)
		}
		val, err := unquote(strings.TrimSpace(pred[eq+1:]))
		if err != nil {
			return Step{}, err
		}
		st.Tests = append(st.Tests, AttrTest{
			Name:  strings.TrimSpace(pred[1:eq]),
			Value: val,
		})
	}
	st.Tag = strings.TrimSpace(name)
	if st.Tag == "" {
		return Step{}, fmt.Errorf("xmlstore: empty tag in step %q", raw)
	}
	return st, nil
}

// Compile translates the FLWOR into a conjunctive query over the shredded
// relations of the given prefix. The head predicate is headPred with one
// column per return path (the element text or attribute value).
func (q *FLWOR) Compile(prefix, headPred string) (lang.CQ, error) {
	c := &compiler{prefix: prefix, vs: lang.NewVarSupply("_n")}
	// The `for` path walks from the root.
	node := c.root()
	var err error
	node, err = c.walk(node, q.In.Steps)
	if err != nil {
		return lang.CQ{}, err
	}
	// Where clauses.
	for _, w := range q.Wheres {
		val, err := c.value(node, w.Path)
		if err != nil {
			return lang.CQ{}, err
		}
		c.cq.Comps = append(c.cq.Comps, lang.Comparison{Op: w.Op, L: val, R: lang.Const(w.Val)})
	}
	// Return columns.
	var head []lang.Term
	for _, rp := range q.Return {
		val, err := c.value(node, rp)
		if err != nil {
			return lang.CQ{}, err
		}
		head = append(head, val)
	}
	c.cq.Head = lang.Atom{Pred: headPred, Args: head}
	return c.cq, nil
}

type compiler struct {
	prefix string
	vs     *lang.VarSupply
	cq     lang.CQ
}

// root introduces the document-root variable (any element with no parent
// constraint; the root tag is matched by the first step).
func (c *compiler) root() lang.Term {
	return c.vs.FreshLike(lang.Var("root"))
}

// walk emits child/elem atoms for a sequence of steps starting at node.
// The first step binds the start node itself (the document element).
func (c *compiler) walk(node lang.Term, steps []Step) (lang.Term, error) {
	if len(steps) == 0 {
		return node, fmt.Errorf("xmlstore: empty path")
	}
	// First step: node IS the document element with this tag.
	c.emitElem(node, steps[0])
	cur := node
	for _, st := range steps[1:] {
		child := c.vs.FreshLike(lang.Var("nd"))
		c.cq.Body = append(c.cq.Body, lang.NewAtom(RelChild(c.prefix), cur, child))
		c.emitElem(child, st)
		cur = child
	}
	return cur, nil
}

func (c *compiler) emitElem(node lang.Term, st Step) {
	c.cq.Body = append(c.cq.Body, lang.NewAtom(RelElem(c.prefix), node, lang.Const(st.Tag)))
	for _, at := range st.Tests {
		c.cq.Body = append(c.cq.Body,
			lang.NewAtom(RelAttr(c.prefix), node, lang.Const(at.Name), lang.Const(at.Value)))
	}
}

// value emits atoms producing the value of a relative path from node: the
// text of the final element, or an attribute.
func (c *compiler) value(node lang.Term, p Path) (lang.Term, error) {
	cur := node
	for _, st := range p.Steps {
		child := c.vs.FreshLike(lang.Var("nd"))
		c.cq.Body = append(c.cq.Body, lang.NewAtom(RelChild(c.prefix), cur, child))
		c.emitElem(child, st)
		cur = child
	}
	val := c.vs.FreshLike(lang.Var("val"))
	if p.Attr != "" {
		c.cq.Body = append(c.cq.Body,
			lang.NewAtom(RelAttr(c.prefix), cur, lang.Const(p.Attr), val))
	} else {
		c.cq.Body = append(c.cq.Body, lang.NewAtom(RelText(c.prefix), cur, val))
	}
	return val, nil
}
