// Package xmlstore implements the XML front end of the actual Piazza
// system: the paper analyses the relational conjunctive-query core "for
// simplicity of exposition", but notes that "in our implemented system
// peers share XML files and pose queries in a subset of XQuery that uses
// set-oriented semantics". This package supplies that pipeline:
//
//  1. Shred: an XML document becomes four generic relations —
//     elem(id, tag), child(parent, child), text(id, value),
//     attr(id, name, value) — the standard edge shredding.
//  2. Query: a small XQuery FLWOR subset (for/where/return over child
//     paths, with attribute and text predicates) compiles to a conjunctive
//     query over the shredded relations — set semantics, exactly the
//     fragment the paper assumes.
//  3. Extract: evaluating the compiled query yields ordinary tuples, which
//     can be loaded as a peer's stored relation in the PDMS.
package xmlstore

import (
	"encoding/xml"
	"fmt"
	"strings"

	"repro/internal/rel"
)

// Shredded is an XML document shredded into generic relations under a name
// prefix ("FH" yields FH.elem / FH.child / FH.text / FH.attr).
type Shredded struct {
	// Prefix is the relation-name prefix.
	Prefix string
	// Data holds the four shredded relations.
	Data *rel.Instance
	// Root is the node id of the document element.
	Root string
}

// RelElem etc. name the shredded relations for a prefix.
func RelElem(prefix string) string  { return prefix + ".elem" }
func RelChild(prefix string) string { return prefix + ".child" }
func RelText(prefix string) string  { return prefix + ".text" }
func RelAttr(prefix string) string  { return prefix + ".attr" }

// Shred parses an XML document and produces its edge shredding. Node ids
// are deterministic ("n0", "n1", … in document order), so shredding is
// reproducible.
func Shred(doc []byte, prefix string) (*Shredded, error) {
	dec := xml.NewDecoder(strings.NewReader(string(doc)))
	out := &Shredded{Prefix: prefix, Data: rel.NewInstance()}
	var stack []string
	nextID := 0
	newID := func() string {
		id := fmt.Sprintf("n%d", nextID)
		nextID++
		return id
	}
	var texts []*strings.Builder // parallel to stack
	for {
		tok, err := dec.Token()
		if err != nil {
			break // io.EOF or syntax error handled below by emptiness check
		}
		switch t := tok.(type) {
		case xml.StartElement:
			id := newID()
			if len(stack) == 0 {
				out.Root = id
			} else {
				parent := stack[len(stack)-1]
				if _, err := out.Data.Add(RelChild(prefix), rel.Tuple{parent, id}); err != nil {
					return nil, err
				}
			}
			if _, err := out.Data.Add(RelElem(prefix), rel.Tuple{id, t.Name.Local}); err != nil {
				return nil, err
			}
			for _, a := range t.Attr {
				if _, err := out.Data.Add(RelAttr(prefix), rel.Tuple{id, a.Name.Local, a.Value}); err != nil {
					return nil, err
				}
			}
			stack = append(stack, id)
			texts = append(texts, &strings.Builder{})
		case xml.CharData:
			if len(texts) > 0 {
				texts[len(texts)-1].Write(t)
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlstore: unbalanced end element")
			}
			id := stack[len(stack)-1]
			txt := strings.TrimSpace(texts[len(texts)-1].String())
			if txt != "" {
				if _, err := out.Data.Add(RelText(prefix), rel.Tuple{id, txt}); err != nil {
					return nil, err
				}
			}
			stack = stack[:len(stack)-1]
			texts = texts[:len(texts)-1]
		}
	}
	if out.Root == "" {
		return nil, fmt.Errorf("xmlstore: no document element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlstore: unclosed elements")
	}
	return out, nil
}
