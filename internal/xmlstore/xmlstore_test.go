package xmlstore

import (
	"testing"

	"repro/internal/rel"
)

const hospitalXML = `
<hospital name="first">
  <doctor loc="er">
    <sid>d07</sid>
    <last>welby</last>
    <shift>day</shift>
  </doctor>
  <doctor loc="icu">
    <sid>d12</sid>
    <last>house</last>
    <shift>night</shift>
  </doctor>
  <bed class="critical">
    <id>c1</id>
  </bed>
</hospital>`

func shredHospital(t *testing.T) *Shredded {
	t.Helper()
	s, err := Shred([]byte(hospitalXML), "FH")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShredBasics(t *testing.T) {
	s := shredHospital(t)
	if s.Root != "n0" {
		t.Fatalf("root = %s", s.Root)
	}
	elem := s.Data.Relation(RelElem("FH"))
	if elem == nil {
		t.Fatal("no elem relation")
	}
	// hospital, 2×doctor, bed, 2×(sid,last,shift), id = 1+2+1+6+1 = 11.
	if elem.Len() != 11 {
		t.Fatalf("elem count = %d:\n%s", elem.Len(), s.Data)
	}
	if !s.Data.Relation(RelAttr("FH")).Contains(rel.Tuple{"n0", "name", "first"}) {
		t.Fatal("root attribute missing")
	}
	txt := s.Data.Relation(RelText("FH"))
	found := false
	for _, tp := range txt.Tuples() {
		if tp[1] == "d07" {
			found = true
		}
	}
	if !found {
		t.Fatal("text d07 missing")
	}
}

func TestShredDeterministic(t *testing.T) {
	a := shredHospital(t)
	b := shredHospital(t)
	if a.Data.String() != b.Data.String() {
		t.Fatal("shredding not deterministic")
	}
}

func TestShredErrors(t *testing.T) {
	if _, err := Shred([]byte(``), "X"); err == nil {
		t.Fatal("empty doc accepted")
	}
	if _, err := Shred([]byte(`<a><b></a>`), "X"); err == nil {
		t.Fatal("malformed doc accepted")
	}
}

func TestParseFLWOR(t *testing.T) {
	q, err := ParseFLWOR(`for $d in /hospital/doctor where $d/shift = "day" return $d/sid, $d/last`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Var != "$d" || len(q.In.Steps) != 2 || len(q.Wheres) != 1 || len(q.Return) != 2 {
		t.Fatalf("parsed = %+v", q)
	}
}

func TestParseFLWORErrors(t *testing.T) {
	cases := []string{
		`select * from t`,
		`for d in /a return $d/x`,
		`for $d in /a/b`,
		`for $d in /a return other/x`,
		`for $d in /a where $d/x ~ "y" return $d/x`,
		`for $d in /a/@id return $d/x`,
		`for $d in /a return $d/@x/y`,
	}
	for _, src := range cases {
		if _, err := ParseFLWOR(src); err == nil {
			t.Fatalf("accepted %q", src)
		}
	}
}

func TestCompileAndEvaluate(t *testing.T) {
	s := shredHospital(t)
	q, err := ParseFLWOR(`for $d in /hospital/doctor where $d/shift = "day" return $d/sid, $d/last`)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := q.Compile("FH", "row")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rel.EvalCQ(cq, s.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "d07" || rows[0][1] != "welby" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCompileAttributeSelection(t *testing.T) {
	s := shredHospital(t)
	q, err := ParseFLWOR(`for $d in /hospital/doctor return $d/sid, $d/@loc`)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := q.Compile("FH", "row")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rel.EvalCQ(cq, s.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r[0]] = r[1]
	}
	if got["d07"] != "er" || got["d12"] != "icu" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCompileAttributePredicateInPath(t *testing.T) {
	s := shredHospital(t)
	q, err := ParseFLWOR(`for $d in /hospital/doctor[@loc="er"] return $d/sid`)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := q.Compile("FH", "row")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rel.EvalCQ(cq, s.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "d07" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCompileComparisonWhere(t *testing.T) {
	s := shredHospital(t)
	q, err := ParseFLWOR(`for $d in /hospital/doctor where $d/sid != "d07" return $d/sid`)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := q.Compile("FH", "row")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rel.EvalCQ(cq, s.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "d12" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCompileWrongRootTagEmpty(t *testing.T) {
	s := shredHospital(t)
	q, err := ParseFLWOR(`for $d in /clinic/doctor return $d/sid`)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := q.Compile("FH", "row")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rel.EvalCQ(cq, s.Data)
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows = %v err = %v", rows, err)
	}
}
