package chase

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/parser"
	"repro/internal/rel"
)

// TestChaseAgreesWithDatalogOnGAVSpecs: on purely GAV specifications
// (identity storage containments + definitional rules, no existentials
// anywhere), the chase's certain answers must equal the least fixpoint of
// the corresponding datalog program — an independent implementation of the
// same semantics through a different engine (rel.EvalDatalog).
func TestChaseAgreesWithDatalogOnGAVSpecs(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			peers := []string{"A:P", "A:Q", "B:R", "B:S"}

			var src string
			// Identity storage for two random base relations.
			base := map[string]bool{}
			for i := 0; i < 2; i++ {
				p := peers[rng.Intn(len(peers))]
				if base[p] {
					continue
				}
				base[p] = true
				src += fmt.Sprintf("storage St%d.r(x, y) in %s(x, y)\n", i, p)
				for f := 0; f < 4; f++ {
					src += fmt.Sprintf("fact St%d.r(\"c%d\", \"c%d\")\n", i, rng.Intn(3), rng.Intn(3))
				}
			}
			// Random definitional layer (chains and copies, no fresh vars
			// in heads, so no existentials).
			for i := 0; i < 3; i++ {
				h := peers[rng.Intn(len(peers))]
				b1 := peers[rng.Intn(len(peers))]
				if h == b1 {
					continue // avoid trivial self-loops for readability
				}
				if rng.Intn(2) == 0 {
					src += fmt.Sprintf("define %s(x, y) :- %s(x, y)\n", h, b1)
				} else {
					b2 := peers[rng.Intn(len(peers))]
					src += fmt.Sprintf("define %s(x, z) :- %s(x, y), %s(y, z)\n", h, b1, b2)
				}
			}
			res, err := parser.Parse(src)
			if err != nil {
				t.Fatal(err)
			}

			// Datalog program: storage descriptions become p :- store
			// rules, definitional mappings stay as-is.
			var rules []lang.CQ
			for _, s := range res.PDMS.Storages() {
				rules = append(rules, lang.CQ{
					Head: s.Query.Body[0],
					Body: []lang.Atom{s.Stored},
				})
			}
			for _, m := range res.PDMS.Mappings() {
				rules = append(rules, m.Rule)
			}
			lfp, err := rel.EvalDatalog(rules, res.Data)
			if err != nil {
				t.Fatal(err)
			}

			query := lang.CQ{
				Head: lang.NewAtom("q", lang.Var("x"), lang.Var("y")),
				Body: []lang.Atom{lang.NewAtom(peers[rng.Intn(len(peers))], lang.Var("x"), lang.Var("y"))},
			}
			want, err := rel.EvalCQ(query, lfp)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CertainAnswers(res.PDMS, res.Data, query, Options{})
			if err != nil {
				t.Fatal(err)
			}
			SortTuples(got)
			SortTuples(want)
			if len(got) != len(want) {
				t.Fatalf("chase %v != datalog %v\nspec:\n%s", got, want, src)
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("chase %v != datalog %v\nspec:\n%s", got, want, src)
				}
			}
		})
	}
}
