package chase

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/rel"
)

// parse is a test helper that parses a spec and fails on error.
func parse(t *testing.T, src string) *parser.Result {
	t.Helper()
	res, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func answers(t *testing.T, src, query string) []rel.Tuple {
	t.Helper()
	res := parse(t, src)
	q, err := parser.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CertainAnswers(res.PDMS, res.Data, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestChaseGAVUnfolding(t *testing.T) {
	// Stored doc feeds peer relation via storage description; definitional
	// mapping lifts it to another peer.
	src := `
storage FH.doc(s, l) in FH:Doctor(s, l)
define H:Doctor(s, l) :- FH:Doctor(s, l)
fact FH.doc("d1", "er")
fact FH.doc("d2", "icu")
`
	rows := answers(t, src, `q(s) :- H:Doctor(s, l)`)
	if len(rows) != 2 || rows[0][0] != "d1" || rows[1][0] != "d2" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestChaseLAVExistentials(t *testing.T) {
	// LAV storage: stored relation is a join projection; existential values
	// become nulls and must not appear in answers.
	src := `
storage LH.beds(b, p) in H:CritBed(b, h, r), H:Patient(p, b, st)
fact LH.beds("b1", "p1")
`
	// Bed ids are certain.
	rows := answers(t, src, `q(b) :- H:CritBed(b, h, r)`)
	if len(rows) != 1 || rows[0][0] != "b1" {
		t.Fatalf("bed rows = %v", rows)
	}
	// Hospital values are nulls: no certain answers.
	rows = answers(t, src, `q(h) :- H:CritBed(b, h, r)`)
	if len(rows) != 0 {
		t.Fatalf("hospital rows = %v (nulls leaked)", rows)
	}
	// Join across the two head atoms is preserved.
	rows = answers(t, src, `q(b, p) :- H:CritBed(b, h, r), H:Patient(p, b, st)`)
	if len(rows) != 1 || rows[0][1] != "p1" {
		t.Fatalf("join rows = %v", rows)
	}
}

func TestChaseTransitivePeerMappings(t *testing.T) {
	// Chain of inclusions across three peers (the PDMS "transitive
	// relationships" capability of Example 1.1).
	src := `
storage C.data(x) in C:R(x)
include C:R(x) in B:S(x)
include B:S(x) in A:T(x)
fact C.data("v1")
`
	rows := answers(t, src, `q(x) :- A:T(x)`)
	if len(rows) != 1 || rows[0][0] != "v1" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestChaseReplicationEquality(t *testing.T) {
	// Projection-free equality (the paper's ECC/9DC Vehicle replication):
	// cyclic but chase terminates with no nulls.
	src := `
storage D.veh(v, g) in DC:Vehicle(v, g)
equal ECC:Vehicle(v, g) and DC:Vehicle(v, g)
fact D.veh("v7", "gps1")
`
	res := parse(t, src)
	inst, err := Chase(res.PDMS, res.Data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Nulls(inst) != 0 {
		t.Fatalf("replication chase created %d nulls", Nulls(inst))
	}
	rows := answers(t, src, `q(v) :- ECC:Vehicle(v, g)`)
	if len(rows) != 1 || rows[0][0] != "v7" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestChaseDefinitionalDisjunction(t *testing.T) {
	// P defined by two rules = union (Section 2.1.2).
	src := `
storage S.a(x) in A:P1(x)
storage S.b(x) in A:P2(x)
define A:P(x) :- A:P1(x)
define A:P(x) :- A:P2(x)
fact S.a("1")
fact S.b("2")
`
	rows := answers(t, src, `q(x) :- A:P(x)`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestChaseDefinitionalComparison(t *testing.T) {
	src := `
storage S.n(x) in A:N(x)
define A:Big(x) :- A:N(x), x > 5
fact S.n("3")
fact S.n("9")
`
	rows := answers(t, src, `q(x) :- A:Big(x)`)
	if len(rows) != 1 || rows[0][0] != "9" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestChaseRejectsProjectionEquality(t *testing.T) {
	src := `
storage S.r(x, y) in A:R(x, y)
equal A:R(x, y) and B:S(x)
fact S.r("1", "2")
`
	res := parse(t, src)
	_, err := Chase(res.PDMS, res.Data, Options{})
	if err == nil || !strings.Contains(err.Error(), "co-NP") {
		t.Fatalf("err = %v", err)
	}
}

func TestChaseRejectsComparisonInInclusion(t *testing.T) {
	src := `
storage S.r(x) in A:R(x)
include A:R(x), x > 3 in B:S(x)
fact S.r("5")
`
	res := parse(t, src)
	_, err := Chase(res.PDMS, res.Data, Options{})
	if err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("err = %v", err)
	}
}

func TestChaseStandardChaseNoNullBloat(t *testing.T) {
	// The head-satisfaction check must prevent refiring on already
	// satisfied matches: chase twice, same result.
	src := `
storage S.r(x) in A:R(x, y)
fact S.r("1")
`
	res := parse(t, src)
	inst1, err := Chase(res.PDMS, res.Data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Nulls(inst1) != 1 {
		t.Fatalf("expected exactly one null, got %d:\n%s", Nulls(inst1), inst1)
	}
}

func TestChaseRoundCap(t *testing.T) {
	// A pathological self-feeding spec: A:R(x,y) ⊆ A:R(y,z) keeps creating
	// nulls. The round cap must trip rather than hang. (This spec is cyclic
	// — outside the decidable fragment — which is exactly what the cap is
	// for.)
	src := `
storage S.r(x, y) in A:R(x, y)
include A:R(x, y) in A:R(y, z)
fact S.r("a", "b")
`
	res := parse(t, src)
	_, err := Chase(res.PDMS, res.Data, Options{MaxRounds: 5})
	if err == nil {
		// The standard-chase head check may actually terminate this one
		// (satisfied by reusing existing facts); accept either outcome but
		// require no hang. Nothing to assert in that case.
		return
	}
	if !strings.Contains(err.Error(), "fixpoint") {
		t.Fatalf("err = %v", err)
	}
}

func TestChaseEmptyData(t *testing.T) {
	src := `
storage S.r(x) in A:R(x)
include A:R(x) in B:S(x)
`
	rows := answers(t, src, `q(x) :- B:S(x)`)
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestChaseConstantInMappingHead(t *testing.T) {
	// Definitional mapping tagging a constant (paper's SkilledPerson
	// "Doctor"/"EMT" example).
	src := `
storage H.doc(s) in H:Doctor(s)
define DC:Skilled(s, "Doctor") :- H:Doctor(s)
fact H.doc("d1")
`
	rows := answers(t, src, `q(s, c) :- DC:Skilled(s, c)`)
	if len(rows) != 1 || rows[0][1] != "Doctor" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIsNull(t *testing.T) {
	if IsNull("ordinary") || IsNull("") {
		t.Fatal("false positive")
	}
	if !IsNull(nullPrefix + "1") {
		t.Fatal("false negative")
	}
}
