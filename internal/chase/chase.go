// Package chase computes certain answers (Definition 2.2 of the paper)
// directly, by chasing the stored data with the PDMS descriptions viewed as
// tuple-generating dependencies and evaluating the query over the resulting
// canonical (universal) instance, discarding answers that contain labeled
// nulls.
//
// This is the test oracle for the reformulation engine: on specifications in
// the tractable fragment (Theorem 3.2(1)) the reformulation algorithm must
// return exactly the certain answers this package computes.
//
// Supported description shapes (the tractable fragment):
//
//   - storage containments  A.R ⊆ Q       → TGD  A.R(x̄) ⇒ ∃ȳ body(Q)
//   - storage equalities    A.R = Q       → the ⊆ direction only (the ⊇
//     direction constrains which instances are consistent but never adds
//     certain facts derivable from D alone)
//   - peer inclusions       Q1 ⊆ Q2       → TGD  body(Q1) ⇒ ∃ body(Q2)
//   - projection-free peer equalities     → TGDs in both directions
//   - definitional mappings p :- body     → TGD  body ⇒ p (the minimal
//     model realizes p as exactly the union of its rule bodies)
//
// Peer equalities with projections are rejected (certain answering is then
// co-NP-complete, Theorem 3.2, and a chase oracle would be unsound).
package chase

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/ppl"
	"repro/internal/rel"
)

// nullPrefix marks labeled nulls; parser constants can never start with it
// (it is not producible by the lexer).
const nullPrefix = "\x00⊥"

// IsNull reports whether a value is a labeled null introduced by the chase.
func IsNull(v string) bool { return strings.HasPrefix(v, nullPrefix) }

// tgd is a tuple-generating dependency body ⇒ ∃ head.
type tgd struct {
	id    string
	body  []lang.Atom
	comps []lang.Comparison
	head  []lang.Atom
}

// Options configures the chase.
type Options struct {
	// MaxRounds caps chase rounds as a defence against specifications
	// outside the terminating fragment; 0 means the default (10_000).
	MaxRounds int
}

// CertainAnswers computes the certain answers of q over the PDMS n with
// stored data. It returns an error when the specification is outside the
// supported fragment or the chase fails to terminate within the round cap.
func CertainAnswers(n *ppl.PDMS, data *rel.Instance, q lang.CQ, opts Options) ([]rel.Tuple, error) {
	inst, err := Chase(n, data, opts)
	if err != nil {
		return nil, err
	}
	rows, err := engine.New(inst).EvalCQ(q)
	if err != nil {
		return nil, err
	}
	out := rows[:0]
	for _, t := range rows {
		hasNull := false
		for _, v := range t {
			if IsNull(v) {
				hasNull = true
				break
			}
		}
		if !hasNull {
			out = append(out, t)
		}
	}
	return out, nil
}

// Chase runs the standard (restricted) chase and returns the canonical
// instance: stored data plus every derived peer/stored fact, with labeled
// nulls for existential values.
func Chase(n *ppl.PDMS, data *rel.Instance, opts Options) (*rel.Instance, error) {
	tgds, err := buildTGDs(n)
	if err != nil {
		return nil, err
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10_000
	}
	inst := data.Clone()
	// One engine for the whole chase: TGD-body matching and the head-
	// satisfaction checks run as indexed joins, with indexes catching up
	// incrementally as fired TGDs add tuples.
	eng := engine.New(inst)
	nulls := 0
	freshNull := func() string {
		nulls++
		return fmt.Sprintf("%s%d", nullPrefix, nulls)
	}
	for round := 0; ; round++ {
		if round >= maxRounds {
			return nil, fmt.Errorf("chase: no fixpoint after %d rounds (non-terminating specification?)", maxRounds)
		}
		fired := false
		for _, d := range tgds {
			matches, err := findMatches(d, eng)
			if err != nil {
				return nil, err
			}
			for _, s := range matches {
				sat, err := headSatisfied(d, s, eng)
				if err != nil {
					return nil, err
				}
				if sat {
					continue
				}
				// Fire: fresh nulls for existential head variables.
				s2 := s.Clone()
				for _, a := range d.head {
					for _, t := range a.Args {
						if t.IsVar() && s2.Apply(t).IsVar() {
							s2[t.Name] = lang.Const(freshNull())
						}
					}
				}
				for _, a := range d.head {
					g := s2.ApplyAtom(a)
					tup := make(rel.Tuple, len(g.Args))
					for i, t := range g.Args {
						tup[i] = t.Name
					}
					added, err := inst.Add(g.Pred, tup)
					if err != nil {
						return nil, err
					}
					if added {
						fired = true
					}
				}
			}
		}
		if !fired {
			return inst, nil
		}
	}
}

// buildTGDs normalizes the PDMS descriptions to TGDs.
func buildTGDs(n *ppl.PDMS) ([]*tgd, error) {
	var out []*tgd
	for _, s := range n.Storages() {
		out = append(out, &tgd{
			id:    s.ID,
			body:  []lang.Atom{s.Stored},
			head:  s.Query.Body,
			comps: nil, // comparisons of the defining query constrain the
			// stored data; on the generative direction they hold vacuously
			// for tuples already in the store.
		})
	}
	for _, m := range n.Mappings() {
		switch m.Kind {
		case ppl.Inclusion:
			if len(m.LHS.Comps) > 0 || len(m.RHS.Comps) > 0 {
				return nil, fmt.Errorf("chase: comparison predicates in peer mapping %s unsupported (Thm 3.3(2))", m.ID)
			}
			out = append(out, &tgd{id: m.ID, body: m.LHS.Body, head: m.RHS.Body})
		case ppl.Equality:
			if m.LHS.HasProjection() || m.RHS.HasProjection() {
				return nil, fmt.Errorf("chase: equality mapping %s has projections; certain answering is co-NP (Thm 3.2)", m.ID)
			}
			if len(m.LHS.Comps) > 0 || len(m.RHS.Comps) > 0 {
				return nil, fmt.Errorf("chase: comparison predicates in peer mapping %s unsupported (Thm 3.3(2))", m.ID)
			}
			out = append(out,
				&tgd{id: m.ID + ".fw", body: m.LHS.Body, head: m.RHS.Body},
				&tgd{id: m.ID + ".bw", body: m.RHS.Body, head: m.LHS.Body})
		case ppl.Definitional:
			out = append(out, &tgd{
				id:    m.ID,
				body:  m.Rule.Body,
				comps: m.Rule.Comps,
				head:  []lang.Atom{m.Rule.Head},
			})
		}
	}
	return out, nil
}

// findMatches enumerates substitutions grounding the TGD body via the
// engine's indexed joins. Comparisons must be fully ground at match time
// and must not involve nulls (a comparison over an unknown value is not
// certainly true).
func findMatches(d *tgd, eng *engine.Engine) ([]lang.Subst, error) {
	var out []lang.Subst
	err := eng.Enumerate(d.body, nil, func(s lang.Subst) error {
		for _, c := range d.comps {
			g := s.ApplyComparison(c)
			if g.L.IsVar() || g.R.IsVar() {
				return fmt.Errorf("chase: comparison %s not bound by body of %s", c, d.id)
			}
			if IsNull(g.L.Name) || IsNull(g.R.Name) {
				return nil // not certainly satisfied
			}
			if !g.Op.EvalConst(g.L, g.R) {
				return nil
			}
		}
		out = append(out, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// headSatisfied reports whether the TGD head already holds under some
// extension of s binding the existential head variables (the standard-
// chase applicability test, which keeps the chase terminating on acyclic
// specifications and lean on cyclic projection-free ones). Grounding the
// head first makes the engine probe indexes on the ground positions;
// ExistsMatch compiles without caching since every grounding is one-shot.
func headSatisfied(d *tgd, s lang.Subst, eng *engine.Engine) (bool, error) {
	return eng.ExistsMatch(s.ApplyAtoms(d.head))
}

// Nulls counts the labeled nulls in an instance (diagnostics for tests).
func Nulls(inst *rel.Instance) int {
	seen := map[string]bool{}
	for _, pred := range inst.Relations() {
		for _, t := range inst.Relation(pred).Tuples() {
			for _, v := range t {
				if IsNull(v) {
					seen[v] = true
				}
			}
		}
	}
	return len(seen)
}

// SortTuples sorts tuples lexicographically (helper for test comparisons).
func SortTuples(ts []rel.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key() < ts[j].Key() })
}
