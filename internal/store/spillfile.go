package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/rel"
)

// Write-once/read-many spill files: the fragment cache moves a cold entry's
// rows to disk in one shot and streams them back per hit. Same frame layout
// as RowBuffer spills (a "!spill" header frame, then one frame per row), so
// every byte the storage tier writes is one format.

// SpillRows writes rows to a new spill file under dir and returns its path.
// The file is synced before the path is returned. Accounted bytes (per
// TupleBytes) and rows are recorded in the storage.spill* metrics.
func SpillRows(dir string, rows []rel.Tuple) (string, error) {
	f, err := os.CreateTemp(dir, "frag-*.seg")
	if err != nil {
		return "", err
	}
	path := f.Name()
	fail := func(err error) (string, error) {
		f.Close()
		os.Remove(path)
		return "", err
	}
	bw := bufio.NewWriterSize(f, 256<<10)
	arity := 0
	if len(rows) > 0 {
		arity = len(rows[0])
	}
	hdr, err := json.Marshal(segHeader{Magic: segMagic, Rel: "!spill", Arity: arity, Shards: 1})
	if err != nil {
		return fail(err)
	}
	buf := appendFrame(nil, hdr)
	var bytes int64
	for _, t := range rows {
		payload, err := encodeTuple(t)
		if err != nil {
			return fail(err)
		}
		buf = appendFrame(buf, payload)
		bytes += TupleBytes(t)
	}
	if _, err := bw.Write(buf); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return "", err
	}
	NoteSpill(len(rows), bytes)
	return path, nil
}

// LoadSpillRows reads back every row of a file written by SpillRows, in
// order, with one buffered sequential pass. The read is recorded in the
// storage.spill_loads metric.
func LoadSpillRows(path string) ([]rel.Tuple, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	NoteSpillLoad()
	br := bufio.NewReaderSize(f, 256<<10)
	if _, _, err := readFrame(br); err != nil {
		return nil, fmt.Errorf("store: spill file header: %w", err)
	}
	var rows []rel.Tuple
	for {
		payload, _, err := readFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return rows, nil
			}
			return nil, fmt.Errorf("store: spill file: %w", err)
		}
		t, err := decodeTuple(payload)
		if err != nil {
			return nil, fmt.Errorf("store: spill file: %w", err)
		}
		rows = append(rows, t)
	}
}
