package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"os"

	"repro/internal/rel"
)

// segMagic identifies the segment format; bumped on incompatible changes.
const segMagic = "pdms-seg1"

// segHeader is the first frame of every segment file: enough to make each
// segment self-describing for recovery. GenLo is the owning shard's
// generation when the segment was opened, so the segment covers the
// generation range (GenLo, GenLo+tuples] — the ranges of a shard's segments
// tile its insert log exactly, which is what keeps generation-vector cache
// keys and the wire gens piggyback meaningful across restarts.
type segHeader struct {
	Magic  string `json:"magic"`
	Rel    string `json:"rel"`
	Arity  int    `json:"arity"`
	Shard  int    `json:"shard"`
	Shards int    `json:"shards"`
	GenLo  uint64 `json:"genLo"`
}

// segWriter appends frames to one open segment file through a buffered
// writer (sequential appends; Flush pushes to the OS, sync adds an fsync).
type segWriter struct {
	f     *os.File
	bw    *bufio.Writer
	bytes int64 // bytes appended so far, including the header frame
	buf   []byte
}

// createSegment creates path (which must not exist) and writes its header.
func createSegment(path string, h segHeader) (*segWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	w := &segWriter{f: f, bw: bufio.NewWriter(f)}
	payload, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := w.writeFrame(payload); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *segWriter) writeFrame(payload []byte) error {
	w.buf = appendFrame(w.buf[:0], payload)
	n, err := w.bw.Write(w.buf)
	w.bytes += int64(n)
	return err
}

// appendTuple appends one tuple frame and returns the frame's size.
func (w *segWriter) appendTuple(t rel.Tuple) (int64, error) {
	payload, err := encodeTuple(t)
	if err != nil {
		return 0, err
	}
	before := w.bytes
	if err := w.writeFrame(payload); err != nil {
		return w.bytes - before, err
	}
	return w.bytes - before, nil
}

func (w *segWriter) flush() error { return w.bw.Flush() }

// sync flushes buffered frames and fsyncs the file.
func (w *segWriter) sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// close syncs and closes the file.
func (w *segWriter) close() error {
	serr := w.sync()
	cerr := w.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// segScan is the outcome of scanning one segment file.
type segScan struct {
	hdr segHeader
	// hdrOK reports whether a valid header frame was read; when false the
	// file contributes nothing and goodBytes is 0.
	hdrOK bool
	// tuples counts the tuple frames applied.
	tuples int
	// goodBytes is the offset just past the last fully-valid, applied
	// frame — the truncation point when the tail is torn.
	goodBytes int64
	// err is the first defect found (nil for a clean scan to EOF): a torn
	// or garbled frame, or an apply rejection. Frames past it are ignored.
	err error
}

// scanSegment reads path frame by frame: onHeader (if non-nil) sees the
// decoded header before any tuple, then apply is called for each decoded
// tuple. The scan stops at the first defect — framing, decoding, or an
// apply error — recording it in segScan.err rather than failing, so the
// caller can apply the torn-tail policy (truncate the final segment, reject
// corruption anywhere else). The returned error is reserved for I/O
// failures and onHeader rejections, which abort recovery outright.
func scanSegment(path string, onHeader func(segHeader) error, apply func(rel.Tuple) error) (segScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return segScan{}, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var sc segScan
	var off int64
	readOne := func() ([]byte, error) {
		payload, consumed, err := readFrame(br)
		off += consumed
		return payload, err
	}
	payload, err := readOne()
	if err != nil {
		if errors.Is(err, io.EOF) {
			// Zero-length file: a crash between file creation and the
			// header flush.
			sc.err = io.ErrUnexpectedEOF
		} else {
			sc.err = err
		}
		return sc, nil
	}
	if err := json.Unmarshal(payload, &sc.hdr); err != nil || sc.hdr.Magic != segMagic {
		sc.err = errBadFrame{"invalid segment header"}
		return sc, nil
	}
	sc.hdrOK = true
	sc.goodBytes = off
	if onHeader != nil {
		if err := onHeader(sc.hdr); err != nil {
			return sc, err
		}
	}
	for {
		payload, err := readOne()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return sc, nil // clean end
			}
			sc.err = err
			return sc, nil
		}
		t, err := decodeTuple(payload)
		if err != nil {
			sc.err = err
			return sc, nil
		}
		if err := apply(t); err != nil {
			sc.err = err
			return sc, nil
		}
		sc.tuples++
		sc.goodBytes = off
	}
}
