package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/rel"
)

// relsEqual asserts b is bit-identical to a: same tuples, same per-shard
// log order, same per-shard generations, same statistics snapshots.
func relsEqual(t *testing.T, a, b *rel.Relation) {
	t.Helper()
	if a.Name() != b.Name() || a.Arity() != b.Arity() || a.NumShards() != b.NumShards() {
		t.Fatalf("shape mismatch: %s/%d x%d vs %s/%d x%d",
			a.Name(), a.Arity(), a.NumShards(), b.Name(), b.Arity(), b.NumShards())
	}
	for s := 0; s < a.NumShards(); s++ {
		if a.ShardVersion(s) != b.ShardVersion(s) {
			t.Fatalf("%s shard %d: generation %d vs %d", a.Name(), s, a.ShardVersion(s), b.ShardVersion(s))
		}
		al, bl := a.ShardAddedSince(s, 0), b.ShardAddedSince(s, 0)
		if len(al) != len(bl) {
			t.Fatalf("%s shard %d: log length %d vs %d", a.Name(), s, len(al), len(bl))
		}
		for i := range al {
			if !al[i].Equal(bl[i]) {
				t.Fatalf("%s shard %d log[%d]: %v vs %v", a.Name(), s, i, al[i], bl[i])
			}
		}
	}
	if !reflect.DeepEqual(a.Stats(), b.Stats()) {
		t.Fatalf("%s: stats diverged:\n%+v\nvs\n%+v", a.Name(), a.Stats(), b.Stats())
	}
}

func insEqual(t *testing.T, a, b *rel.Instance) {
	t.Helper()
	if !reflect.DeepEqual(a.Relations(), b.Relations()) {
		t.Fatalf("relation sets differ: %v vs %v", a.Relations(), b.Relations())
	}
	for _, pred := range a.Relations() {
		relsEqual(t, a.Relation(pred), b.Relation(pred))
	}
	if a.String() != b.String() {
		t.Fatalf("rendered instances differ")
	}
}

// fill inserts deterministic pseudo-random tuples and returns the per-
// (pred, shard) insert ledger — the shadow the monotone envelope is checked
// against.
func fill(t *testing.T, ins *rel.Instance, rng *rand.Rand, n int) map[string][][]rel.Tuple {
	t.Helper()
	shadow := map[string][][]rel.Tuple{}
	preds := []struct {
		name  string
		arity int
	}{{"edge", 2}, {"label.of", 3}, {"node", 1}}
	for i := 0; i < n; i++ {
		p := preds[rng.Intn(len(preds))]
		tup := make(rel.Tuple, p.arity)
		for c := range tup {
			tup[c] = fmt.Sprintf("v%d", rng.Intn(n/2+2))
		}
		added, err := ins.Add(p.name, tup)
		if err != nil {
			t.Fatalf("add: %v", err)
		}
		if added {
			r := ins.Relation(p.name)
			s := 0
			if len(tup) > 0 {
				s = r.ShardFor(tup[0])
			}
			if shadow[p.name] == nil {
				shadow[p.name] = make([][]rel.Tuple, r.NumShards())
			}
			shadow[p.name][s] = append(shadow[p.name][s], tup)
		}
	}
	return shadow
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// A tiny rotation threshold forces several segments per shard.
	d, err := Open(dir, Options{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ins, recs, err := d.Recover(4)
	if err != nil {
		t.Fatalf("recover empty: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("recovered %d relations from empty dir", len(recs))
	}
	d.Attach(ins)
	rng := rand.New(rand.NewSource(1))
	fill(t, ins, rng, 500)
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	d2, err := Open(dir, Options{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, recs, err := d2.Recover(4)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	insEqual(t, ins, got)
	var total int
	for _, rec := range recs {
		total += rec.Tuples
		if rec.Gen != got.Relation(rec.Pred).Version() {
			t.Fatalf("%s: reported gen %d, relation at %d", rec.Pred, rec.Gen, got.Relation(rec.Pred).Version())
		}
		if rec.TruncatedBytes != 0 {
			t.Fatalf("%s: unexpected truncation of a cleanly-closed journal", rec.Pred)
		}
	}
	if total != ins.Size() {
		t.Fatalf("recovered %d tuples, want %d", total, ins.Size())
	}

	// The journal keeps accepting inserts after recovery, and a third
	// recovery sees them.
	d2.Attach(got)
	got.MustAdd("edge", "zz", "ww")
	if err := d2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
	d3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen 2: %v", err)
	}
	got3, _, err := d3.Recover(4)
	if err != nil {
		t.Fatalf("recover 2: %v", err)
	}
	insEqual(t, got, got3)
}

// shardSegments returns the segment paths of one relation shard in
// generation order.
func shardSegments(t *testing.T, root, pred string, shard int) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(root, escapeRel(pred), fmt.Sprintf("s%d-*.seg", shard)))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	sort.Strings(paths) // zero-padded genLo: lexical == numeric
	return paths
}

// TestCrashRecoveryMonotoneEnvelope simulates crashes at randomized points:
// the journal is flushed after every insert, then the victim shard's final
// segment is truncated at an arbitrary byte offset. The recovered relation
// must be a per-shard prefix of the shadow ledger — nothing fabricated,
// nothing reordered, no torn tuple resurrected — and recovery must be
// idempotent.
func TestCrashRecoveryMonotoneEnvelope(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			dir := t.TempDir()
			d, err := Open(dir, Options{MaxSegmentBytes: 256})
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			ins, _, err := d.Recover(3)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			d.Attach(ins)
			shadow := fill(t, ins, rng, 120)
			// Crash model: everything written so far reached the OS (the
			// per-insert Flush below), but the process died mid-append —
			// simulated by chopping the tail segment at a random offset.
			if err := d.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			preds := ins.Relations()
			pred := preds[rng.Intn(len(preds))]
			victim := rng.Intn(ins.Relation(pred).NumShards())
			segs := shardSegments(t, dir, pred, victim)
			if len(segs) == 0 {
				t.Skip("victim shard wrote no segments")
			}
			last := segs[len(segs)-1]
			fi, err := os.Stat(last)
			if err != nil {
				t.Fatalf("stat: %v", err)
			}
			cut := rng.Int63n(fi.Size() + 1)
			if err := os.Truncate(last, cut); err != nil {
				t.Fatalf("truncate: %v", err)
			}

			d2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			got, _, err := d2.Recover(3)
			if err != nil {
				t.Fatalf("recover after crash: %v", err)
			}
			for _, p := range ins.Relations() {
				gr := got.Relation(p)
				if gr == nil {
					// The whole relation may vanish only if it had a single
					// segment whose header was cut.
					continue
				}
				for s := 0; s < gr.NumShards(); s++ {
					want := shadow[p][s]
					gl := gr.ShardAddedSince(s, 0)
					if len(gl) > len(want) {
						t.Fatalf("%s shard %d: recovered %d tuples, ledger has %d", p, s, len(gl), len(want))
					}
					if p != pred || s != victim {
						if len(gl) != len(want) {
							t.Fatalf("%s shard %d: lost %d tuples outside the crashed shard", p, s, len(want)-len(gl))
						}
					}
					for i := range gl {
						if !gl[i].Equal(want[i]) {
							t.Fatalf("%s shard %d log[%d]: %v, ledger %v (prefix violated)", p, s, i, gl[i], want[i])
						}
					}
					if gr.ShardVersion(s) != uint64(len(gl)) {
						t.Fatalf("%s shard %d: generation %d, log %d", p, s, gr.ShardVersion(s), len(gl))
					}
				}
			}
			// Idempotence: recovering the (now truncated) journal again
			// yields the identical instance.
			d3, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen 2: %v", err)
			}
			got2, _, err := d3.Recover(3)
			if err != nil {
				t.Fatalf("re-recover: %v", err)
			}
			insEqual(t, got, got2)
		})
	}
}

func TestRecoverRejectsMidJournalCorruption(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ins, _, err := d.Recover(1)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	d.Attach(ins)
	for i := 0; i < 64; i++ {
		ins.MustAdd("edge", fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	segs := shardSegments(t, dir, "edge", 0)
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(segs))
	}
	// Garble the middle of the FIRST segment: corruption before the journal
	// tail is outside the crash model and must fail recovery, not silently
	// drop acknowledged tuples.
	f, err := os.OpenFile(segs[0], os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open seg: %v", err)
	}
	if _, err := f.WriteAt([]byte("XXXX"), 40); err != nil {
		t.Fatalf("garble: %v", err)
	}
	f.Close()
	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, _, err := d2.Recover(1); err == nil {
		t.Fatalf("recovery accepted mid-journal corruption")
	}
}

func TestJournalGapDetected(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Attach an instance that already holds un-journaled data: the next
	// insert must fail loudly instead of writing a gapped journal.
	ins := rel.NewInstanceSharded(1)
	ins.MustAdd("edge", "a", "b")
	d.Attach(ins)
	if _, err := ins.Add("edge", rel.Tuple{"c", "d"}); err == nil {
		t.Fatalf("journal accepted a generation gap")
	}
	if d.Err() == nil {
		t.Fatalf("journal gap did not mark the Dir failed")
	}
}
