package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/rel"
	"repro/internal/wire"
)

// Segment frame encoding: every record — the header and each tuple — is one
// length-prefixed, newline-terminated frame
//
//	<decimal payload length> ':' <JSON payload> '\n'
//
// The payload reuses the wire protocol's encoding (a JSON value per frame;
// tuples are the same JSON string arrays wire.Response.Rows carries), and
// the newline framing is read with wire.ReadFrame, inheriting its torn-tail
// semantics exactly: io.EOF only at a clean frame boundary, a partial
// trailing line surfaces as io.ErrUnexpectedEOF. The redundant length
// prefix catches the remaining corruption class newline framing alone
// cannot — a tail whose bytes were garbled but still contain a newline.

// maxSegFrameBytes bounds one segment frame; far above any real tuple, it
// only stops a corrupt length/garbled tail from allocating unbounded memory.
const maxSegFrameBytes = 16 << 20

// appendFrame appends one encoded frame carrying payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = strconv.AppendInt(dst, int64(len(payload)), 10)
	dst = append(dst, ':')
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// errBadFrame reports a structurally invalid frame (bad prefix, length
// mismatch, or undecodable payload) — the signature of a torn or garbled
// segment tail.
type errBadFrame struct{ reason string }

func (e errBadFrame) Error() string { return "store: bad segment frame: " + e.reason }

// readFrame reads one frame, returning its payload and the exact number of
// bytes consumed from the stream (prefix, payload and newline — the torn-
// tail truncation offsets are built from this). Errors are io.EOF at a
// clean boundary, io.ErrUnexpectedEOF on a partial trailing line, an
// errBadFrame on structural corruption, or an underlying read error.
func readFrame(br *bufio.Reader) ([]byte, int64, error) {
	line, err := wire.ReadFrame(br, maxSegFrameBytes)
	if err != nil {
		return nil, 0, err
	}
	consumed := int64(len(line)) + 1 // wire.ReadFrame strips the newline
	i := bytes.IndexByte(line, ':')
	if i < 0 {
		return nil, consumed, errBadFrame{"no length prefix"}
	}
	n, perr := strconv.Atoi(string(line[:i]))
	if perr != nil || n < 0 {
		return nil, consumed, errBadFrame{"unparseable length prefix"}
	}
	payload := line[i+1:]
	if len(payload) != n {
		return nil, consumed, errBadFrame{fmt.Sprintf("length prefix %d, payload %d bytes", n, len(payload))}
	}
	return payload, consumed, nil
}

// encodeTuple renders one tuple as a frame payload (a JSON string array,
// the wire row encoding).
func encodeTuple(t rel.Tuple) ([]byte, error) {
	if t == nil {
		// JSON has no distinct encoding for a nil slice; normalize so the
		// empty tuple round-trips.
		t = rel.Tuple{}
	}
	return json.Marshal([]string(t))
}

// decodeTuple parses a tuple frame payload.
func decodeTuple(payload []byte) (rel.Tuple, error) {
	var vals []string
	if err := json.Unmarshal(payload, &vals); err != nil {
		return nil, errBadFrame{"tuple payload: " + err.Error()}
	}
	return rel.Tuple(vals), nil
}
