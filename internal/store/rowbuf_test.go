package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rel"
)

func collect(t *testing.T, b *RowBuffer) []rel.Tuple {
	t.Helper()
	var out []rel.Tuple
	if err := b.Iterate(func(tup rel.Tuple) error {
		out = append(out, tup)
		return nil
	}); err != nil {
		t.Fatalf("iterate: %v", err)
	}
	return out
}

func TestRowBufferSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const budget = 2048
	b := NewRowBuffer(dir, budget)
	defer b.Close()
	var want []rel.Tuple
	for i := 0; i < 300; i++ {
		tup := rel.Tuple{fmt.Sprintf("k%d", i%7), fmt.Sprintf("payload-%04d", i)}
		want = append(want, tup)
		if err := b.Append(tup); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if b.InMemory() {
		t.Fatalf("expected a spill under a %dB budget", budget)
	}
	if b.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(want))
	}
	// The in-memory high-water mark must stay bounded by the budget plus a
	// single row's accounting — that is the "larger than RAM budget" claim.
	maxRow := int64(0)
	for _, tup := range want {
		if n := TupleBytes(tup); n > maxRow {
			maxRow = n
		}
	}
	if b.MaxInMemoryBytes() > budget+maxRow {
		t.Fatalf("tail high-water %dB exceeds budget %dB + one row %dB", b.MaxInMemoryBytes(), int64(budget), maxRow)
	}
	// Two full passes: append order preserved each time.
	for pass := 0; pass < 2; pass++ {
		got := collect(t, b)
		if len(got) != len(want) {
			t.Fatalf("pass %d: got %d rows, want %d", pass, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("pass %d row %d: %v, want %v", pass, i, got[i], want[i])
			}
		}
	}
	// Close removes the spill file.
	if err := b.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "spill-*"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(left) != 0 {
		t.Fatalf("spill files left behind: %v", left)
	}
}

func TestRowBufferInMemoryFastPath(t *testing.T) {
	b := NewRowBuffer("", 0) // spilling disabled
	defer b.Close()
	for i := 0; i < 100; i++ {
		if err := b.Append(rel.Tuple{fmt.Sprintf("%d", i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if !b.InMemory() || b.Spilled() != 0 {
		t.Fatalf("disabled buffer spilled")
	}
	if len(b.Rows()) != 100 || b.Len() != 100 {
		t.Fatalf("rows = %d / len = %d, want 100", len(b.Rows()), b.Len())
	}
	got := collect(t, b)
	if len(got) != 100 {
		t.Fatalf("iterate saw %d rows", len(got))
	}
}

func TestRowBufferYieldError(t *testing.T) {
	dir := t.TempDir()
	b := NewRowBuffer(dir, 64)
	defer b.Close()
	for i := 0; i < 50; i++ {
		if err := b.Append(rel.Tuple{fmt.Sprintf("row-%06d", i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	wantErr := fmt.Errorf("stop here")
	if err := b.Iterate(func(rel.Tuple) error { return wantErr }); err != wantErr {
		t.Fatalf("yield error not returned as-is: %v", err)
	}
	// The buffer stays usable after a yield abort.
	if got := collect(t, b); len(got) != 50 {
		t.Fatalf("post-abort iterate saw %d rows", len(got))
	}
}

func TestRowBufferSurfacesDiskErrors(t *testing.T) {
	dir := t.TempDir()
	b := NewRowBuffer(dir, 32)
	for i := 0; i < 20; i++ {
		if err := b.Append(rel.Tuple{fmt.Sprintf("row-%06d", i)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if b.InMemory() {
		t.Fatalf("expected spill")
	}
	// Destroy the spill file out from under the buffer: iteration must
	// return an error, not silently yield a truncated row set.
	if err := b.bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := os.Remove(b.f.Name()); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := b.Iterate(func(rel.Tuple) error { return nil }); err == nil {
		t.Fatalf("iterate succeeded with the spill file gone")
	}
}
