package store

import (
	"fmt"
	"testing"

	"repro/internal/rel"
)

// BenchmarkSegmentReplay measures crash-recovery cost: journal a fixed
// workload once, then time Recover reconstructing the instance from the
// segments. Small MaxSegmentBytes forces a multi-segment journal per shard
// so the per-segment header/ordering machinery is on the measured path.
func BenchmarkSegmentReplay(b *testing.B) {
	const nRows = 5000
	dir := b.TempDir()
	d, err := Open(dir, Options{MaxSegmentBytes: 8 << 10})
	if err != nil {
		b.Fatal(err)
	}
	ins := rel.NewInstanceSharded(8)
	d.Attach(ins)
	for i := 0; i < nRows; i++ {
		ins.MustAdd("edge", fmt.Sprintf("n%05d", i), fmt.Sprintf("n%05d", (i*7)%nRows))
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}

	var tuples int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		recovered, recs, err := rd.Recover(8)
		if err != nil {
			b.Fatal(err)
		}
		if got := recovered.Relation("edge").Len(); got != nRows {
			b.Fatalf("recovered %d rows, want %d", got, nRows)
		}
		tuples = 0
		for _, rec := range recs {
			tuples += rec.Tuples
		}
		if err := rd.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tuples), "tuples-replayed")
	b.ReportMetric(float64(tuples)*float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
}
