package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/rel"
)

// Package-wide spill counters, exported through RegisterMetrics as the
// storage.spill* metrics. They aggregate across every RowBuffer (executor
// partial joins) and the fragment cache's cold-entry spills.
var (
	spillCount      atomic.Uint64 // spill flushes (tail -> disk)
	spillBytesTotal atomic.Uint64 // accounted row bytes spilled
	spillRowsTotal  atomic.Uint64 // rows spilled
	spillLoads      atomic.Uint64 // reads that streamed spilled rows back
)

// NoteSpill records rows/bytes spilled to disk by a spill structure outside
// this package (the fragment cache).
func NoteSpill(rows int, bytes int64) {
	spillCount.Add(1)
	spillRowsTotal.Add(uint64(rows))
	spillBytesTotal.Add(uint64(bytes))
}

// NoteSpillLoad records one read that streamed spilled rows back from disk.
func NoteSpillLoad() { spillLoads.Add(1) }

// SpillStats is a snapshot of the process-wide spill counters (also exposed
// as the storage.spill* metrics).
type SpillStats struct {
	Spills, Rows, Bytes, Loads uint64
}

// SpillStatsSnapshot returns the current process-wide spill counters; tests
// diff two snapshots to prove a code path actually spilled.
func SpillStatsSnapshot() SpillStats {
	return SpillStats{
		Spills: spillCount.Load(),
		Rows:   spillRowsTotal.Load(),
		Bytes:  spillBytesTotal.Load(),
		Loads:  spillLoads.Load(),
	}
}

// TupleBytes is the byte-accounting estimate spill budgets are measured in:
// the string payload plus a fixed per-value overhead approximating Go's
// slice/header costs. It deliberately overestimates slightly — a budget
// should spill early, not late.
func TupleBytes(t rel.Tuple) int64 {
	n := int64(24) // slice header + growth slack
	for _, v := range t {
		n += int64(len(v)) + 16
	}
	return n
}

// RowBuffer is an append-only tuple sequence with a byte budget: rows
// accumulate in a fixed-size in-memory tail, and once the tail's accounted
// bytes exceed the budget it is flushed to an on-disk spill segment (the
// same length-prefixed frame format the durable tier uses) and the tail
// restarts empty. Iteration streams the spilled prefix back with buffered
// sequential reads and then walks the tail, preserving append order.
//
// With spilling disabled (no directory or no budget) a RowBuffer is just a
// slice with byte accounting: Rows() exposes it directly, so hot paths pay
// nothing beyond the per-append size estimate.
//
// A RowBuffer is single-goroutine (the executor's join loop); it is not
// safe for concurrent use. Close removes the spill file.
type RowBuffer struct {
	dir    string
	budget int64

	rows      []rel.Tuple
	tailBytes int64
	// maxTail is the high-water mark of tailBytes — the proof obligation
	// for "in-memory footprint bounded by the budget".
	maxTail int64

	f       *os.File
	bw      *bufio.Writer
	spilled int   // rows on disk
	diskErr error // first spill I/O error; surfaced on the next operation
	buf     []byte
}

// NewRowBuffer returns a buffer spilling to a file under dir once the
// in-memory tail exceeds budget bytes. An empty dir or a non-positive
// budget disables spilling (pure in-memory operation).
func NewRowBuffer(dir string, budget int64) *RowBuffer {
	return &RowBuffer{dir: dir, budget: budget}
}

// Len returns the number of rows appended (spilled + in-memory).
func (b *RowBuffer) Len() int { return b.spilled + len(b.rows) }

// InMemory reports whether every row is still in memory — the fast path
// where Rows() hands callers the backing slice directly.
func (b *RowBuffer) InMemory() bool { return b.spilled == 0 }

// Rows returns the in-memory rows. Callers must only use it when
// InMemory() is true; after a spill it holds just the tail.
func (b *RowBuffer) Rows() []rel.Tuple { return b.rows }

// MaxInMemoryBytes returns the high-water mark of the in-memory tail's
// accounted bytes (never exceeds budget + one row once spilling is
// enabled).
func (b *RowBuffer) MaxInMemoryBytes() int64 { return b.maxTail }

// Spilled returns the number of rows currently on disk.
func (b *RowBuffer) Spilled() int { return b.spilled }

// Append adds one row. The row is retained as-is (not copied); callers
// must not mutate it afterwards.
func (b *RowBuffer) Append(t rel.Tuple) error {
	if b.diskErr != nil {
		return b.diskErr
	}
	b.rows = append(b.rows, t)
	b.tailBytes += TupleBytes(t)
	if b.tailBytes > b.maxTail {
		b.maxTail = b.tailBytes
	}
	if b.budget > 0 && b.dir != "" && b.tailBytes > b.budget {
		if err := b.spillTail(); err != nil {
			b.diskErr = err
			return err
		}
	}
	return nil
}

// spillTail writes every in-memory row to the spill file and resets the
// tail.
func (b *RowBuffer) spillTail() error {
	if b.f == nil {
		f, err := os.CreateTemp(b.dir, "spill-*.seg")
		if err != nil {
			return err
		}
		b.f = f
		b.bw = bufio.NewWriterSize(f, 256<<10)
		arity := 0
		if len(b.rows) > 0 {
			arity = len(b.rows[0])
		}
		hdr, err := json.Marshal(segHeader{Magic: segMagic, Rel: "!spill", Arity: arity, Shards: 1})
		if err != nil {
			return err
		}
		b.buf = appendFrame(b.buf[:0], hdr)
		if _, err := b.bw.Write(b.buf); err != nil {
			return err
		}
	}
	for _, t := range b.rows {
		payload, err := encodeTuple(t)
		if err != nil {
			return err
		}
		b.buf = appendFrame(b.buf[:0], payload)
		if _, err := b.bw.Write(b.buf); err != nil {
			return err
		}
	}
	NoteSpill(len(b.rows), b.tailBytes)
	b.spilled += len(b.rows)
	b.rows = b.rows[:0]
	b.tailBytes = 0
	return nil
}

// Iterate calls yield for every row in append order: the spilled prefix is
// streamed back from disk with buffered sequential reads, then the
// in-memory tail. Multiple passes are allowed. Yield errors abort and are
// returned as-is.
func (b *RowBuffer) Iterate(yield func(rel.Tuple) error) error {
	if b.diskErr != nil {
		return b.diskErr
	}
	if b.spilled > 0 {
		if err := b.bw.Flush(); err != nil {
			b.diskErr = err
			return err
		}
		f, err := os.Open(b.f.Name())
		if err != nil {
			b.diskErr = err
			return err
		}
		defer f.Close()
		NoteSpillLoad()
		br := bufio.NewReaderSize(f, 256<<10)
		// Header frame first, then rows.
		if _, _, err := readFrame(br); err != nil {
			b.diskErr = fmt.Errorf("store: spill file header: %w", err)
			return b.diskErr
		}
		seen := 0
		for seen < b.spilled {
			payload, _, err := readFrame(br)
			if err != nil {
				if errors.Is(err, io.EOF) {
					err = io.ErrUnexpectedEOF
				}
				b.diskErr = fmt.Errorf("store: spill file: %w", err)
				return b.diskErr
			}
			t, err := decodeTuple(payload)
			if err != nil {
				b.diskErr = fmt.Errorf("store: spill file: %w", err)
				return b.diskErr
			}
			seen++
			if err := yield(t); err != nil {
				return err
			}
		}
	}
	for _, t := range b.rows {
		if err := yield(t); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the spill file (if any). The buffer must not be used
// afterwards.
func (b *RowBuffer) Close() error {
	if b.f == nil {
		return nil
	}
	name := b.f.Name()
	err := b.f.Close()
	if rerr := os.Remove(name); err == nil {
		err = rerr
	}
	b.f, b.bw = nil, nil
	return err
}
