// Package store is the storage tier: the interface the query layers
// consume instead of a concrete in-memory representation, plus the durable
// and spill machinery built on one on-disk segment format.
//
// # Interface extraction
//
// Relation and Instance are the read contracts internal/engine (per-shard
// indexes, scans, probes, planner statistics) and internal/netpeer's server
// handlers are written against. *rel.Relation implements Relation directly;
// InstanceOf adapts *rel.Instance. The contract preserves rel's sharded
// semantics bit for bit — per-shard monotone generations whose sum is the
// relation Version, insertion-ordered log suffixes via ShardAddedSince, and
// first-column hash routing — so generation-vector cache keys (pdms answer
// caches, the netpeer gens piggyback, fragment-cache revalidation) mean
// exactly the same thing over any backend.
//
// # Durable segment tier
//
// Dir journals a rel.Instance to append-only per-shard segment files that
// mirror the in-memory insert logs frame for frame (see frame.go for the
// length-prefixed encoding and segment.go for the per-file layout). Each
// segment records the shard generation it starts at, so a shard's segment
// sequence tiles its insert log and replay rebuilds a bit-identical
// instance: same tuples, same per-shard log order, same generations.
// Recovery truncates a torn tail in a shard's final segment at the last
// intact frame and rejects corruption anywhere else. Appends flow through
// rel's append hooks under the shard lock; frames buffer in memory until
// Flush/Sync/Close or segment rotation.
//
// # Spill
//
// RowBuffer gives large transient row sets (the netpeer executor's
// materialized partial join, the fragment cache's cold entries) a byte
// budget: rows stay in a fixed-size in-memory tail and overflow to a spill
// file in the same segment format, streaming back in append order on
// demand. RegisterMetrics exposes the storage.* snapshot group (segments,
// bytes, truncations, replay time, spill counters).
package store
