package store

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rel"
)

// defaultMaxSegmentBytes is the rotation threshold for one shard's open
// segment: large enough that sequential replay is dominated by decoding,
// small enough that torn-tail truncation never discards much.
const defaultMaxSegmentBytes = 8 << 20

// Options configure a Dir.
type Options struct {
	// MaxSegmentBytes rotates a shard's open segment once it grows past
	// this many bytes (0 = defaultMaxSegmentBytes). Rotation syncs the
	// finished segment, so only the open tail segment is ever torn.
	MaxSegmentBytes int64
}

// Dir is a durable journal for one rel.Instance: every relation gets a
// subdirectory holding per-shard sequences of append-only segment files
// that mirror the in-memory insert logs frame for frame. Open + Recover +
// Attach is the lifecycle:
//
//	d, _ := store.Open(path, store.Options{})
//	ins, recs, err := d.Recover(shards) // replay segments -> bit-identical instance
//	d.Attach(ins)                       // journal every insert from here on
//	...
//	d.Close()                           // flush + fsync open segments
//
// Appends reach the journal through rel's append hooks, which run under the
// owning shard's lock — so segment frames are written in exactly the shard
// log's order and the per-segment generation ranges tile each shard's log.
// Journaling is asynchronous with respect to the disk: frames sit in a
// buffered writer until Flush/Sync/Close (or rotation), trading a bounded
// crash-loss window for insert-path speed; recovery's torn-tail truncation
// makes that window safe.
//
// A Dir is safe for concurrent appends (per-shard locking); Recover and
// Attach are startup-time calls that must complete before the instance is
// shared.
type Dir struct {
	root   string
	maxSeg int64

	mu   sync.Mutex
	rels map[string]*relLog // guarded by mu
	// failedErr is the first journal append error (disk full, I/O error);
	// once set, Flush/Sync/Close report it so callers cannot mistake a
	// wounded journal for a healthy one. Guarded by mu.
	failedErr error

	segments    atomic.Uint64 // segment files created
	bytesOut    atomic.Uint64 // frame bytes appended (pre-buffering)
	truncations atomic.Uint64 // torn tails truncated during recovery
	recovered   atomic.Uint64 // tuples replayed by Recover
	replayMicro atomic.Int64  // wall time of the last Recover, microseconds
}

// Open creates (if needed) the journal directory at path and returns a Dir
// over it. No segment is read until Recover.
func Open(path string, opts Options) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	maxSeg := opts.MaxSegmentBytes
	if maxSeg <= 0 {
		maxSeg = defaultMaxSegmentBytes
	}
	return &Dir{root: path, maxSeg: maxSeg, rels: map[string]*relLog{}}, nil
}

// relLog is one relation's journal state.
type relLog struct {
	d      *Dir
	pred   string
	arity  int
	shards int
	logs   []*shardLog
}

// shardLog is one shard's journal state: the open segment writer and the
// number of inserts journaled.
type shardLog struct {
	rl    *relLog
	shard int

	mu sync.Mutex
	// w is the open segment writer (nil until the first append after open
	// or rotation), guarded by mu.
	w *segWriter
	// count is the number of inserts journaled for this shard — equal to
	// the shard's in-memory generation once every hook call has returned.
	// Guarded by mu.
	count uint64
}

func newRelLog(d *Dir, pred string, arity, shards int) *relLog {
	rl := &relLog{d: d, pred: pred, arity: arity, shards: shards}
	rl.logs = make([]*shardLog, shards)
	for i := range rl.logs {
		rl.logs[i] = &shardLog{rl: rl, shard: i}
	}
	return rl
}

func (rl *relLog) dir() string { return filepath.Join(rl.d.root, escapeRel(rl.pred)) }

// append journals one insert; it runs inside rel's append hook, under the
// owning shard's in-memory lock.
func (sl *shardLog) append(t rel.Tuple, gen uint64) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if gen != sl.count+1 {
		err := fmt.Errorf("store: %s shard %d: insert generation %d, journal at %d (journal gap)",
			sl.rl.pred, sl.shard, gen, sl.count)
		sl.rl.d.fail(err)
		return err
	}
	if sl.w == nil {
		if err := sl.openSegmentLocked(); err != nil {
			sl.rl.d.fail(err)
			return err
		}
	}
	n, err := sl.w.appendTuple(t)
	sl.rl.d.bytesOut.Add(uint64(n))
	if err != nil {
		sl.rl.d.fail(err)
		return err
	}
	sl.count = gen
	if sl.w.bytes >= sl.rl.d.maxSeg {
		// Rotate: sync and close the finished segment so only the open
		// tail is ever exposed to torn writes; the next append opens a
		// fresh segment at the current generation.
		if err := sl.w.close(); err != nil {
			sl.rl.d.fail(err)
			return err
		}
		sl.w = nil
	}
	return nil
}

// openSegmentLocked creates the next segment file for this shard, starting
// at the current journaled generation. Caller holds sl.mu.
func (sl *shardLog) openSegmentLocked() error {
	rl := sl.rl
	if err := os.MkdirAll(rl.dir(), 0o755); err != nil {
		return err
	}
	path := filepath.Join(rl.dir(), segFileName(sl.shard, sl.count))
	w, err := createSegment(path, segHeader{
		Magic: segMagic, Rel: rl.pred, Arity: rl.arity,
		Shard: sl.shard, Shards: rl.shards, GenLo: sl.count,
	})
	if err != nil {
		return err
	}
	rl.d.segments.Add(1)
	rl.d.bytesOut.Add(uint64(w.bytes))
	sl.w = w
	return nil
}

func (d *Dir) fail(err error) {
	d.mu.Lock()
	if d.failedErr == nil {
		d.failedErr = err
	}
	d.mu.Unlock()
}

// Err returns the first journal append error, or nil while healthy.
func (d *Dir) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failedErr
}

// forEachShardLog snapshots the registered shard logs under d.mu and visits
// them outside it (visiting takes per-shard locks that appends also take).
func (d *Dir) forEachShardLog(visit func(*shardLog) error) error {
	d.mu.Lock()
	var logs []*shardLog
	for _, rl := range d.rels {
		logs = append(logs, rl.logs...)
	}
	first := d.failedErr
	d.mu.Unlock()
	for _, sl := range logs {
		if err := visit(sl); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush pushes every open segment's buffered frames to the OS (no fsync).
func (d *Dir) Flush() error {
	return d.forEachShardLog(func(sl *shardLog) error {
		sl.mu.Lock()
		defer sl.mu.Unlock()
		if sl.w == nil {
			return nil
		}
		return sl.w.flush()
	})
}

// Sync flushes and fsyncs every open segment.
func (d *Dir) Sync() error {
	return d.forEachShardLog(func(sl *shardLog) error {
		sl.mu.Lock()
		defer sl.mu.Unlock()
		if sl.w == nil {
			return nil
		}
		return sl.w.sync()
	})
}

// Close syncs and closes every open segment. The Dir must not be appended
// to afterwards.
func (d *Dir) Close() error {
	return d.forEachShardLog(func(sl *shardLog) error {
		sl.mu.Lock()
		defer sl.mu.Unlock()
		if sl.w == nil {
			return nil
		}
		err := sl.w.close()
		sl.w = nil
		return err
	})
}

// Attach installs append hooks on ins so every subsequent insert — into
// existing relations and relations created later by Add — is journaled to
// this Dir. ins should be the instance Recover returned (or an empty one);
// attaching an instance whose contents exceed the journal makes the next
// insert fail with a journal-gap error rather than silently diverging.
// Must be called before ins is shared across goroutines.
func (d *Dir) Attach(ins *rel.Instance) {
	ins.SetAppendHook(func(pred string, arity, shards int) rel.AppendHook {
		d.mu.Lock()
		rl := d.rels[pred]
		if rl == nil {
			rl = newRelLog(d, pred, arity, shards)
			d.rels[pred] = rl
		}
		d.mu.Unlock()
		if rl.arity != arity || rl.shards != shards {
			mismatch := fmt.Errorf("store: relation %s journaled as %d columns x %d shards, attached as %d x %d",
				pred, rl.arity, rl.shards, arity, shards)
			return func(int, rel.Tuple, uint64) error { return mismatch }
		}
		return func(shard int, t rel.Tuple, gen uint64) error {
			return rl.logs[shard].append(t, gen)
		}
	})
}

// RelRecovery describes one relation's replay outcome.
type RelRecovery struct {
	// Pred, Arity and Shards identify the recovered relation.
	Pred   string
	Arity  int
	Shards int
	// Tuples is the number of tuples replayed; Gen the recovered
	// generation (sum of per-shard generations — equal to Tuples).
	Tuples int
	Gen    uint64
	// Segments is the number of segment files read.
	Segments int
	// TruncatedBytes counts bytes cut from torn segment tails.
	TruncatedBytes int64
}

// Recover replays every relation's segments into a fresh instance and
// registers the recovered generations so subsequent appends continue the
// journal seamlessly. Relations are rebuilt with their recorded shard
// counts; relations the instance creates later default to nshards
// (<= 0 selects rel.DefaultShards()). Replay order within a shard is the
// original insert order, and inserts re-route deterministically, so the
// result is bit-identical to the journaled instance: same tuples, same
// per-shard log order, same per-shard generations.
//
// A torn or garbled tail in a shard's final segment is truncated at the
// last intact frame (the crash-window loss); the same defect in any earlier
// segment, a generation gap between segments, or a duplicated frame is
// corruption beyond the crash model and fails recovery.
func (d *Dir) Recover(nshards int) (*rel.Instance, []RelRecovery, error) {
	start := time.Now()
	ins := rel.NewInstanceSharded(nshards)
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, nil, err
	}
	var recs []RelRecovery
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		pred, err := unescapeRel(ent.Name())
		if err != nil {
			return nil, nil, fmt.Errorf("store: undecodable relation directory %q: %w", ent.Name(), err)
		}
		rec, err := d.recoverRelation(ins, pred, filepath.Join(d.root, ent.Name()))
		if err != nil {
			return nil, nil, err
		}
		if rec != nil {
			recs = append(recs, *rec)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Pred < recs[j].Pred })
	d.replayMicro.Store(time.Since(start).Microseconds())
	return ins, recs, nil
}

// segFile is one parsed segment file name.
type segFile struct {
	name  string
	shard int
	genLo uint64
}

func segFileName(shard int, genLo uint64) string {
	return fmt.Sprintf("s%d-%016d.seg", shard, genLo)
}

func parseSegFileName(name string) (segFile, bool) {
	var shard int
	var genLo uint64
	if !strings.HasSuffix(name, ".seg") {
		return segFile{}, false
	}
	if _, err := fmt.Sscanf(name, "s%d-%016d.seg", &shard, &genLo); err != nil || shard < 0 {
		return segFile{}, false
	}
	return segFile{name: name, shard: shard, genLo: genLo}, true
}

// recoverRelation replays one relation directory. It returns nil (and no
// error) when the directory holds no usable segments.
func (d *Dir) recoverRelation(ins *rel.Instance, pred, dir string) (*RelRecovery, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byShard := map[int][]segFile{}
	for _, ent := range entries {
		sf, ok := parseSegFileName(ent.Name())
		if !ok {
			continue
		}
		byShard[sf.shard] = append(byShard[sf.shard], sf)
	}
	if len(byShard) == 0 {
		return nil, nil
	}
	// The header of the first readable segment fixes the relation's shape;
	// every other segment must agree.
	var hdr *segHeader
	rec := RelRecovery{Pred: pred}
	var r *rel.Relation
	var shardIdxs []int
	for s := range byShard {
		shardIdxs = append(shardIdxs, s)
		sort.Slice(byShard[s], func(i, j int) bool { return byShard[s][i].genLo < byShard[s][j].genLo })
	}
	sort.Ints(shardIdxs)
	for _, s := range shardIdxs {
		segs := byShard[s]
		var gen uint64
		for i, sf := range segs {
			last := i == len(segs)-1
			path := filepath.Join(dir, sf.name)
			if sf.genLo != gen {
				return nil, fmt.Errorf("store: %s shard %d: segment %s starts at generation %d, journal at %d (missing segment?)",
					pred, s, sf.name, sf.genLo, gen)
			}
			onHeader := func(h segHeader) error {
				if h.Rel != pred || h.Shard != s || h.GenLo != sf.genLo {
					return fmt.Errorf("store: %s shard %d: segment %s header disagrees with its name", pred, s, sf.name)
				}
				if hdr == nil {
					hdr = &h
					r = ins.EnsureRelation(pred, h.Arity, h.Shards)
					if r.Arity() != h.Arity || r.NumShards() != h.Shards {
						return fmt.Errorf("store: %s already exists with a different shape", pred)
					}
					rec.Arity, rec.Shards = h.Arity, h.Shards
				} else if h.Arity != hdr.Arity || h.Shards != hdr.Shards {
					return fmt.Errorf("store: %s shard %d: segment %s disagrees on arity/shards", pred, s, sf.name)
				}
				return nil
			}
			apply := func(t rel.Tuple) error {
				if len(t) != hdr.Arity {
					return fmt.Errorf("store: %s: replayed tuple %v has %d values, want %d", pred, t, len(t), hdr.Arity)
				}
				sv := ""
				if len(t) > 0 {
					sv = t[0]
				}
				if r.ShardFor(sv) != s {
					return fmt.Errorf("store: %s: replayed tuple %v routes to shard %d, found in shard %d", pred, t, r.ShardFor(sv), s)
				}
				fresh, err := r.Insert(t)
				if err != nil {
					return err
				}
				if !fresh {
					return fmt.Errorf("store: %s: duplicated tuple %v in journal", pred, t)
				}
				return nil
			}
			sc, ioerr := scanSegment(path, onHeader, apply)
			if ioerr != nil {
				return nil, ioerr
			}
			gen = sf.genLo + uint64(sc.tuples)
			rec.Tuples += sc.tuples
			rec.Segments++
			if sc.err != nil {
				if !last {
					return nil, fmt.Errorf("store: %s shard %d: segment %s corrupt before the journal tail: %w", pred, s, sf.name, sc.err)
				}
				// Torn tail: cut the final segment back to its last intact
				// frame. If not even the header survived, drop the file.
				torn := tornBytes(path, sc)
				if err := truncateSegment(path, sc); err != nil {
					return nil, err
				}
				d.truncations.Add(1)
				rec.TruncatedBytes += torn
			}
		}
		if r != nil && r.ShardVersion(s) != gen {
			return nil, fmt.Errorf("store: %s shard %d: replayed generation %d, relation at %d", pred, s, gen, r.ShardVersion(s))
		}
	}
	if hdr == nil {
		// Every segment of the relation was unreadable garbage; nothing to
		// resurrect, nothing recovered.
		return nil, nil
	}
	rec.Gen = r.Version()
	d.recovered.Add(uint64(rec.Tuples))
	// Continue the journal where the replay ended.
	d.mu.Lock()
	rl := newRelLog(d, pred, hdr.Arity, hdr.Shards)
	for s, sl := range rl.logs {
		sl.mu.Lock()
		sl.count = r.ShardVersion(s)
		sl.mu.Unlock()
	}
	d.rels[pred] = rl
	d.mu.Unlock()
	return &rec, nil
}

// truncateSegment applies the torn-tail policy to the final segment of a
// shard: cut back to the last intact frame, or remove the file entirely
// when not even the header frame survived.
func truncateSegment(path string, sc segScan) error {
	if !sc.hdrOK {
		return os.Remove(path)
	}
	return os.Truncate(path, sc.goodBytes)
}

// tornBytes reports how many bytes the torn-tail truncation for path cut
// (best effort: 0 if the file is already gone).
func tornBytes(path string, sc segScan) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	if !sc.hdrOK {
		return fi.Size()
	}
	return fi.Size() - sc.goodBytes
}

// escapeRel maps a relation name to a filesystem-safe directory name
// (reversible; '/' and '%' are escaped, and a leading '.' is escaped by
// hand so "." and ".." can never collide with directory navigation —
// url.PathEscape itself never emits %2E, so the mapping stays injective).
func escapeRel(pred string) string {
	esc := url.PathEscape(pred)
	if strings.HasPrefix(esc, ".") {
		esc = "%2E" + esc[1:]
	}
	return esc
}

func unescapeRel(name string) (string, error) {
	return url.PathUnescape(name)
}

// RegisterMetrics registers the storage.* snapshot group on reg: segment
// and replay counters from d (which may be nil when only spill structures
// are in use) plus the package-wide spill counters.
func RegisterMetrics(reg *obs.Registry, d *Dir) {
	reg.RegisterGroup("storage", func(em *obs.Emitter) {
		if d != nil {
			em.Counter("segments", d.segments.Load())
			em.Counter("bytes_written", d.bytesOut.Load())
			em.Counter("truncations", d.truncations.Load())
			em.Counter("recovered_tuples", d.recovered.Load())
			em.Gauge("replay_micros", d.replayMicro.Load())
		}
		em.Counter("spills", spillCount.Load())
		em.Counter("spill_bytes", spillBytesTotal.Load())
		em.Counter("spill_rows", spillRowsTotal.Load())
		em.Counter("spill_loads", spillLoads.Load())
	})
}
