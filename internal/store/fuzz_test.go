package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rel"
)

// validSegmentBytes builds a well-formed single-shard segment for seeding the
// fuzzer.
func validSegmentBytes(tuples ...rel.Tuple) []byte {
	hdr, _ := json.Marshal(segHeader{Magic: segMagic, Rel: "edge", Arity: 2, Shard: 0, Shards: 1, GenLo: 0})
	out := appendFrame(nil, hdr)
	for _, t := range tuples {
		p, _ := encodeTuple(t)
		out = appendFrame(out, p)
	}
	return out
}

// FuzzSegmentReplay feeds arbitrary bytes to recovery as the content of a
// shard's only (and therefore final) segment. Whatever the bytes — truncated
// tails, garbled frames, duplicated tuples, hostile headers — recovery must
// either succeed or fail cleanly: no panic, and on success a second recovery
// of the (post-truncation) directory must reproduce the identical instance,
// so no torn tuple is ever resurrected.
func FuzzSegmentReplay(f *testing.F) {
	whole := validSegmentBytes(rel.Tuple{"a", "b"}, rel.Tuple{"c", "d"}, rel.Tuple{"e", "f"})
	f.Add(whole)
	f.Add(whole[:len(whole)-4])            // torn mid-frame
	f.Add(append([]byte("12:"), whole...)) // garbled prefix
	dup := validSegmentBytes(rel.Tuple{"a", "b"}, rel.Tuple{"a", "b"})
	f.Add(dup) // duplicated tail tuple
	f.Add([]byte{})
	f.Add([]byte("9:{\"bad\":1}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		segDir := filepath.Join(dir, escapeRel("edge"))
		if err := os.MkdirAll(segDir, 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(filepath.Join(segDir, segFileName(0, 0)), data, 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		d, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		ins, recs, err := d.Recover(1)
		if err != nil {
			return // clean rejection is a valid outcome
		}
		for _, rec := range recs {
			r := ins.Relation(rec.Pred)
			if r == nil {
				t.Fatalf("recovery reported %q but the instance lacks it", rec.Pred)
			}
			if r.Version() != rec.Gen || rec.Tuples != r.Len() {
				t.Fatalf("recovery report disagrees with the instance: %+v vs gen %d len %d", rec, r.Version(), r.Len())
			}
		}
		// Idempotence / no-resurrection: the truncated-on-disk journal must
		// recover to the same instance again.
		d2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		ins2, _, err := d2.Recover(1)
		if err != nil {
			t.Fatalf("recovery accepted the journal once but not twice: %v", err)
		}
		if ins.String() != ins2.String() {
			t.Fatalf("re-recovery diverged:\n%s\nvs\n%s", ins, ins2)
		}
		for _, pred := range ins.Relations() {
			a, b := ins.Relation(pred), ins2.Relation(pred)
			for s := 0; s < a.NumShards(); s++ {
				if a.ShardVersion(s) != b.ShardVersion(s) {
					t.Fatalf("%s shard %d generation diverged on re-recovery", pred, s)
				}
			}
		}
	})
}
