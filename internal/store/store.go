package store

import "repro/internal/rel"

// Relation is the read-path storage contract the query layers are written
// against: the engine's per-shard hash indexes, StreamScan and probe paths,
// and netpeer's server-side scan/bind handlers all consume this interface
// instead of the concrete in-memory representation. *rel.Relation satisfies
// it directly; alternative backends (the durable segment tier here, or an
// XML store) only need to speak this surface.
//
// The contract mirrors rel.Relation's sharded semantics exactly, and
// callers depend on these invariants:
//
//   - NumShards is fixed for the relation's lifetime; ShardFor must agree
//     with where appends place tuples (first-column hash routing), and
//     N = 1 reproduces the unsharded layout.
//   - ShardVersion(s) is monotone and counts shard s's inserts; Version()
//     is exactly the sum over shards — the value generation-vector cache
//     keys and the wire gens piggyback are built from.
//   - ShardAddedSince(s, v) returns shard s's insert-log suffix after
//     version v in insertion order; callers must not mutate the result.
//     ShardAddedSince(s, 0) enumerates the whole shard without sorting.
//   - Stats is a point-in-time snapshot feeding the planner's selectivity
//     estimates; it steers plan choice only, never answer correctness.
type Relation interface {
	// Name returns the relation's predicate name.
	Name() string
	// Arity returns the relation's column count.
	Arity() int
	// NumShards returns the shard count (fixed at creation).
	NumShards() int
	// ShardFor returns the shard index a tuple whose first column is v
	// lives in.
	ShardFor(v string) int
	// ShardVersion returns shard s's generation (its insert count).
	ShardVersion(s int) uint64
	// ShardAddedSince returns the tuples inserted into shard s after its
	// version v, in insertion order. Callers must not mutate the result.
	ShardAddedSince(s int, v uint64) []rel.Tuple
	// Len returns the relation's cardinality.
	Len() int
	// Version returns the relation's generation: the sum of the per-shard
	// generations, monotone and bumped once per distinct insert.
	Version() uint64
	// Contains reports tuple membership.
	Contains(t rel.Tuple) bool
	// Stats returns a statistical snapshot (cardinality, shard layout,
	// per-column distinct estimates).
	Stats() rel.Stats
}

// Instance resolves predicate names to relations — the catalog surface the
// engine and netpeer server consume.
type Instance interface {
	// Relation returns the named relation, or nil if absent.
	Relation(pred string) Relation
	// Relations returns the predicate names present, sorted.
	Relations() []string
}

// InstanceOf adapts a concrete *rel.Instance to the Instance interface.
// The adapter is needed because Go interfaces have no covariant results:
// rel.Instance.Relation returns *rel.Relation, so *rel.Instance cannot
// satisfy Instance directly even though *rel.Relation satisfies Relation.
func InstanceOf(ins *rel.Instance) Instance { return relInstance{ins} }

type relInstance struct{ ins *rel.Instance }

func (ri relInstance) Relation(pred string) Relation {
	// An explicit nil check keeps "absent" an untyped nil interface rather
	// than a non-nil interface wrapping a nil *rel.Relation.
	if r := ri.ins.Relation(pred); r != nil {
		return r
	}
	return nil
}

func (ri relInstance) Relations() []string { return ri.ins.Relations() }

// Compile-time checks that the concrete in-memory types implement the
// storage contract.
var _ Relation = (*rel.Relation)(nil)
