// Package workload generates synthetic PDMS topologies following Section 5
// of the paper: R peers arranged in strata whose count is the expected
// diameter L of the PDMS, a controlled ratio of definitional versus
// inclusion peer mappings, chain-query mapping bodies over relations of the
// adjacent stratum, and storage descriptions at the bottom stratum.
//
// The paper leaves the generator's small print open; the concrete choices
// here (documented in DESIGN.md §3) are:
//
//   - every peer owns one binary peer relation; peers are split across the
//     L strata as evenly as possible;
//   - each lower-stratum relation r participates in Replication peer
//     mappings crossing the boundary to the stratum above ("data may be
//     replicated in many peers, [so] the branching factor of the algorithm
//     may be high" — replication is what drives the branching factor, and
//     hence the exponential growth of Figure 3);
//   - with probability DefRatio a mapping is definitional: a randomly
//     chosen upper relation is defined by a chain query of length ChainLen
//     over lower relations including r (several rules per upper head yield
//     the unions of conjunctive queries that the paper observes raise the
//     branching factor with %dd);
//   - otherwise it is an inclusion r ⊆ u for a random upper relation u
//     (LAV style, projection-free: a lower peer replicates part of an
//     upper relation). Projection-freedom is what lets LAV reformulation
//     chain through many strata — a view that hides a join variable is
//     provably useless for covering it (the paper's V3 remark), so chains
//     of projecting views would make every deep path a dead end and the
//     tree would stay flat, contradicting Figure 3;
//   - every bottom-stratum relation has a stored relation and an identity
//     containment storage description;
//   - the benchmark query is a chain of QueryLen top-stratum relations.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/lang"
	"repro/internal/ppl"
	"repro/internal/rel"
)

// Params configures generation.
type Params struct {
	// Peers is the number of peers R (paper: 96).
	Peers int
	// Diameter is the number of strata L (paper: 1–10).
	Diameter int
	// DefRatio is the fraction of definitional peer mappings ("%dd" in the
	// figures: 0, 0.10, 0.25, 0.50).
	DefRatio float64
	// Replication is the number of peer mappings each lower-stratum
	// relation participates in (default 2); it is the branching knob.
	Replication int
	// ChainLen is the definitional-mapping body chain length (default 2).
	ChainLen int
	// QueryLen is the query chain length (default 2).
	QueryLen int
	// StoreCoverage is the fraction of bottom-stratum relations that have
	// stored relations (default 1.0). Lower coverage creates dead-end
	// branches — paths through peers that never bottom out in data — which
	// is what the Section 4.3 memoization and dead-end detection exploit.
	StoreCoverage float64
	// FactsPerStore populates each stored relation with that many random
	// tuples (default 0: topology only, as for Figures 3 and 4).
	FactsPerStore int
	// DomainSize is the constant pool size for facts (default 8).
	DomainSize int
	// Seed drives the deterministic RNG.
	Seed int64
}

func (p *Params) fill() error {
	if p.Peers <= 0 || p.Diameter <= 0 {
		return fmt.Errorf("workload: Peers and Diameter must be positive (got %d, %d)", p.Peers, p.Diameter)
	}
	if p.Diameter > p.Peers {
		return fmt.Errorf("workload: Diameter %d exceeds Peers %d", p.Diameter, p.Peers)
	}
	if p.DefRatio < 0 || p.DefRatio > 1 {
		return fmt.Errorf("workload: DefRatio %v out of [0,1]", p.DefRatio)
	}
	if p.Replication <= 0 {
		p.Replication = 2
	}
	if p.StoreCoverage <= 0 {
		p.StoreCoverage = 1.0
	}
	if p.StoreCoverage > 1 {
		return fmt.Errorf("workload: StoreCoverage %v out of (0,1]", p.StoreCoverage)
	}
	if p.ChainLen <= 0 {
		p.ChainLen = 2
	}
	if p.QueryLen <= 0 {
		p.QueryLen = 2
	}
	if p.DomainSize <= 0 {
		p.DomainSize = 8
	}
	return nil
}

// Workload is a generated PDMS with its benchmark query and optional data.
type Workload struct {
	PDMS  *ppl.PDMS
	Data  *rel.Instance
	Query lang.CQ
	// Strata lists the peer-relation names per stratum, top (0) first.
	Strata [][]string
	// Stored lists the stored-relation names (bottom stratum).
	Stored []string
}

// Generate builds a workload.
func Generate(p Params) (*Workload, error) {
	if err := p.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := ppl.New()

	// Distribute peers over strata as evenly as possible, one binary peer
	// relation per peer.
	strata := make([][]string, p.Diameter)
	per := p.Peers / p.Diameter
	extra := p.Peers % p.Diameter
	peerNum := 0
	for s := 0; s < p.Diameter; s++ {
		count := per
		if s < extra {
			count++
		}
		if count == 0 {
			count = 1 // every stratum needs at least one relation
		}
		for i := 0; i < count; i++ {
			peer := fmt.Sprintf("P%d_%d", s, i)
			relName := fmt.Sprintf("%s:R%d", peer, peerNum)
			peerNum++
			if err := n.DeclareRelation(ppl.RelationDecl{
				Name: relName, Peer: peer, Arity: 2, Kind: ppl.PeerRelation,
			}); err != nil {
				return nil, err
			}
			strata[s] = append(strata[s], relName)
		}
	}

	w := &Workload{PDMS: n, Data: rel.NewInstance(), Strata: strata}

	// Peer mappings across each stratum boundary.
	for s := 1; s < p.Diameter; s++ {
		upper, lower := strata[s-1], strata[s]
		for _, low := range lower {
			for rep := 0; rep < p.Replication; rep++ {
				if rng.Float64() < p.DefRatio {
					// Definitional: a random upper head defined by a chain
					// over lower relations including `low`.
					head := upper[rng.Intn(len(upper))]
					body := chainBody(rng, lower, low, p.ChainLen)
					rule := lang.CQ{
						Head: lang.NewAtom(head, lang.Var("x0"), lang.Var(fmt.Sprintf("x%d", len(body)))),
						Body: body,
					}
					if err := n.AddMapping(&ppl.Mapping{Kind: ppl.Definitional, Rule: rule}); err != nil {
						return nil, err
					}
				} else {
					// Inclusion: low ⊆ u for a random upper relation
					// (projection-free replication, LAV style).
					up := upper[rng.Intn(len(upper))]
					head := lang.NewAtom("_m", lang.Var("x"), lang.Var("y"))
					lhs := lang.CQ{
						Head: head,
						Body: []lang.Atom{lang.NewAtom(low, lang.Var("x"), lang.Var("y"))},
					}
					rhs := lang.CQ{
						Head: head.Clone(),
						Body: []lang.Atom{lang.NewAtom(up, lang.Var("x"), lang.Var("y"))},
					}
					if err := n.AddMapping(&ppl.Mapping{Kind: ppl.Inclusion, LHS: lhs, RHS: rhs}); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Storage at the bottom stratum: identity containment descriptions.
	// With StoreCoverage < 1 some bottom relations stay storeless, turning
	// every path to them into a dead end.
	bottom := strata[p.Diameter-1]
	for i, relName := range bottom {
		// Only consume randomness when coverage is partial, so topologies
		// with StoreCoverage == 1 are seed-stable regardless of the knob.
		if p.StoreCoverage < 1 && rng.Float64() >= p.StoreCoverage {
			continue
		}
		stored := fmt.Sprintf("Store%d.s%d", i, i)
		peer := fmt.Sprintf("Store%d", i)
		if err := n.DeclareRelation(ppl.RelationDecl{
			Name: stored, Peer: peer, Arity: 2, Kind: ppl.StoredRelation,
		}); err != nil {
			return nil, err
		}
		desc := &ppl.Storage{
			Kind:   ppl.StorageContainment,
			Stored: lang.NewAtom(stored, lang.Var("x"), lang.Var("y")),
			Query: lang.CQ{
				Head: lang.NewAtom("_s", lang.Var("x"), lang.Var("y")),
				Body: []lang.Atom{lang.NewAtom(relName, lang.Var("x"), lang.Var("y"))},
			},
		}
		if err := n.AddStorage(desc); err != nil {
			return nil, err
		}
		w.Stored = append(w.Stored, stored)
		for f := 0; f < p.FactsPerStore; f++ {
			tup := rel.Tuple{
				fmt.Sprintf("c%d", rng.Intn(p.DomainSize)),
				fmt.Sprintf("c%d", rng.Intn(p.DomainSize)),
			}
			if _, err := w.Data.Add(stored, tup); err != nil {
				return nil, err
			}
		}
	}

	// Benchmark query: chain over top-stratum relations.
	qbody := chainBody(rng, strata[0], "", p.QueryLen)
	w.Query = lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x0"), lang.Var(fmt.Sprintf("x%d", len(qbody)))),
		Body: qbody,
	}
	return w, nil
}

// chainBody builds a chain query body R1(x0,x1), R2(x1,x2), … of the given
// length over relations drawn from pool; if must is non-empty it is placed
// at a random position.
func chainBody(rng *rand.Rand, pool []string, must string, length int) []lang.Atom {
	names := make([]string, length)
	for i := range names {
		names[i] = pool[rng.Intn(len(pool))]
	}
	if must != "" {
		names[rng.Intn(length)] = must
	}
	body := make([]lang.Atom, length)
	for i, nm := range names {
		body[i] = lang.NewAtom(nm,
			lang.Var(fmt.Sprintf("x%d", i)),
			lang.Var(fmt.Sprintf("x%d", i+1)))
	}
	return body
}
