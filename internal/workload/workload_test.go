package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ppl"
	"repro/internal/rel"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Params{Peers: 0, Diameter: 1}); err == nil {
		t.Fatal("zero peers accepted")
	}
	if _, err := Generate(Params{Peers: 4, Diameter: 9}); err == nil {
		t.Fatal("diameter > peers accepted")
	}
	if _, err := Generate(Params{Peers: 4, Diameter: 2, DefRatio: 1.5}); err == nil {
		t.Fatal("bad ratio accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Peers: 12, Diameter: 3, DefRatio: 0.25, Seed: 7}
	w1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Query.String() != w2.Query.String() {
		t.Fatalf("queries differ: %v vs %v", w1.Query, w2.Query)
	}
	s1, s2 := w1.PDMS.Stats(), w2.PDMS.Stats()
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
}

func TestGenerateShape(t *testing.T) {
	w, err := Generate(Params{Peers: 96, Diameter: 4, DefRatio: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := w.PDMS.Stats()
	if st.Peers < 96 { // peer peers + store peers
		t.Fatalf("peers = %d", st.Peers)
	}
	if len(w.Strata) != 4 {
		t.Fatalf("strata = %d", len(w.Strata))
	}
	// Replication mappings per non-top relation (default 2).
	nonTop := 0
	for s := 1; s < len(w.Strata); s++ {
		nonTop += len(w.Strata[s])
	}
	if st.Definitional+st.Inclusions != 2*nonTop {
		t.Fatalf("mappings = %d+%d, want %d", st.Definitional, st.Inclusions, 2*nonTop)
	}
	// Ratio in a plausible band (binomial, n=144, p=.25).
	ratio := float64(st.Definitional) / float64(2*nonTop)
	if ratio < 0.10 || ratio > 0.45 {
		t.Fatalf("definitional ratio = %v", ratio)
	}
	// Storage descriptions at every bottom relation.
	if st.StorageDescrs != len(w.Strata[3]) || len(w.Stored) != st.StorageDescrs {
		t.Fatalf("storage = %d, bottom = %d", st.StorageDescrs, len(w.Strata[3]))
	}
	// Query over the top stratum.
	top := map[string]bool{}
	for _, r := range w.Strata[0] {
		top[r] = true
	}
	for _, a := range w.Query.Body {
		if !top[a.Pred] {
			t.Fatalf("query atom %v not over top stratum", a)
		}
	}
	if err := w.PDMS.ValidateQuery(w.Query); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateAcyclicAndClassified(t *testing.T) {
	// Strata only feed adjacent levels, so generated PDMS are always
	// acyclic; with DefRatio = 0 they are moreover PTIME (pure inclusion).
	// With DefRatio > 0 a definitional head may appear on an inclusion's
	// RHS, which Theorem 3.2 places in co-NP — the paper's experiments mix
	// dd% freely because they measure reformulation performance, so both
	// classes are acceptable, but never Undecidable.
	w, err := Generate(Params{Peers: 24, Diameter: 4, DefRatio: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if ok, cyc := w.PDMS.AcyclicInclusions(); !ok {
		t.Fatalf("generated PDMS cyclic: %v", cyc)
	}
	if cl := w.PDMS.Classify(w.Query); cl.Class == ppl.Undecidable {
		t.Fatalf("classification = %v", cl)
	}
	pure, err := Generate(Params{Peers: 24, Diameter: 4, DefRatio: 0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if cl := pure.PDMS.Classify(pure.Query); cl.Class != ppl.PTime {
		t.Fatalf("pure-inclusion classification = %v", cl)
	}
}

func TestGenerateEndToEndReformulation(t *testing.T) {
	w, err := Generate(Params{
		Peers: 12, Diameter: 3, DefRatio: 0.3, Seed: 5, FactsPerStore: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.New(w.PDMS, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Reformulate(w.Query)
	if err != nil {
		t.Fatal(err)
	}
	// The reformulation must be evaluable over the stored data (whether or
	// not it has answers depends on the random topology).
	if out.UCQ.Len() > 0 {
		if _, err := rel.EvalUCQ(out.UCQ, w.Data); err != nil {
			t.Fatalf("evaluating reformulation: %v", err)
		}
	}
	if out.Stats.Nodes() == 0 {
		t.Fatal("no tree built")
	}
}

func TestGenerateFactsPopulated(t *testing.T) {
	w, err := Generate(Params{Peers: 6, Diameter: 2, FactsPerStore: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Data.Size() == 0 {
		t.Fatal("no facts generated")
	}
	for _, s := range w.Stored {
		if w.Data.Relation(s) == nil {
			t.Fatalf("store %s empty", s)
		}
	}
}

func TestGenerateTreeGrowsWithDiameter(t *testing.T) {
	// The Figure 3 headline shape: node count grows with diameter.
	var prev int
	for _, d := range []int{1, 2, 3, 4} {
		w, err := Generate(Params{Peers: 24, Diameter: d, DefRatio: 0.1, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.New(w.PDMS, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.BuildTree(w.Query)
		if err != nil {
			t.Fatal(err)
		}
		if d > 1 && st.Nodes() <= prev/4 {
			t.Fatalf("tree shrank sharply at diameter %d: %d vs %d", d, st.Nodes(), prev)
		}
		prev = st.Nodes()
	}
}
