package constraints

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
)

func v(name string) lang.Term { return lang.Var(name) }
func k(val string) lang.Term  { return lang.Const(val) }
func c(l lang.Term, op lang.CompOp, r lang.Term) lang.Comparison {
	return lang.Comparison{Op: op, L: l, R: r}
}

func TestSatisfiableBasics(t *testing.T) {
	tests := []struct {
		name string
		s    *Set
		want bool
	}{
		{"empty", New(), true},
		{"nil", nil, true},
		{"x<y", New(c(v("x"), lang.OpLT, v("y"))), true},
		{"x<x", New(c(v("x"), lang.OpLT, v("x"))), false},
		{"x<=x", New(c(v("x"), lang.OpLE, v("x"))), true},
		{"x<y,y<x", New(c(v("x"), lang.OpLT, v("y")), c(v("y"), lang.OpLT, v("x"))), false},
		{"x<=y,y<=x", New(c(v("x"), lang.OpLE, v("y")), c(v("y"), lang.OpLE, v("x"))), true},
		{"x<=y,y<=x,x!=y", New(c(v("x"), lang.OpLE, v("y")), c(v("y"), lang.OpLE, v("x")), c(v("x"), lang.OpNE, v("y"))), false},
		{"x=1,x=2", New(c(v("x"), lang.OpEQ, k("1")), c(v("x"), lang.OpEQ, k("2"))), false},
		{"x=1,x<2", New(c(v("x"), lang.OpEQ, k("1")), c(v("x"), lang.OpLT, k("2"))), true},
		{"x=2,x<1", New(c(v("x"), lang.OpEQ, k("2")), c(v("x"), lang.OpLT, k("1"))), false},
		{"ground true", New(c(k("1"), lang.OpLT, k("2"))), true},
		{"ground false", New(c(k("2"), lang.OpLT, k("1"))), false},
		{"x>5,x<3", New(c(v("x"), lang.OpGT, k("5")), c(v("x"), lang.OpLT, k("3"))), false},
		{"x>=5,x<=5", New(c(v("x"), lang.OpGE, k("5")), c(v("x"), lang.OpLE, k("5"))), true},
		{"x>=5,x<=5,x!=5", New(c(v("x"), lang.OpGE, k("5")), c(v("x"), lang.OpLE, k("5")), c(v("x"), lang.OpNE, k("5"))), false},
		{"chain strict", New(c(v("a"), lang.OpLT, v("b")), c(v("b"), lang.OpLT, v("c")), c(v("c"), lang.OpLE, v("a"))), false},
		{"eq chain const clash", New(c(v("a"), lang.OpEQ, v("b")), c(v("b"), lang.OpEQ, v("d")), c(v("a"), lang.OpEQ, k("1")), c(v("d"), lang.OpEQ, k("2"))), false},
		{"between consts", New(c(k("1"), lang.OpLT, v("x")), c(v("x"), lang.OpLT, k("2"))), true},
		{"x<y,y<1,x>0 dense ok", New(c(v("x"), lang.OpLT, v("y")), c(v("y"), lang.OpLT, k("1")), c(v("x"), lang.OpGT, k("0"))), true},
		{"strings ordered", New(c(v("x"), lang.OpGT, k("m")), c(v("x"), lang.OpLT, k("a"))), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Satisfiable(); got != tc.want {
				t.Fatalf("Satisfiable(%v) = %v, want %v", tc.s, got, tc.want)
			}
		})
	}
}

func TestImplies(t *testing.T) {
	s := New(c(v("x"), lang.OpLT, v("y")), c(v("y"), lang.OpLE, v("z")))
	if !s.Implies(c(v("x"), lang.OpLT, v("z"))) {
		t.Fatal("x<y, y<=z should imply x<z")
	}
	if !s.Implies(c(v("x"), lang.OpNE, v("z"))) {
		t.Fatal("x<z should imply x!=z")
	}
	if s.Implies(c(v("z"), lang.OpLT, v("x"))) {
		t.Fatal("must not imply z<x")
	}
	eq := New(c(v("x"), lang.OpLE, v("y")), c(v("y"), lang.OpLE, v("x")))
	if !eq.Implies(c(v("x"), lang.OpEQ, v("y"))) {
		t.Fatal("antisymmetry: x<=y, y<=x implies x=y")
	}
	unsat := New(c(v("x"), lang.OpLT, v("x")))
	if !unsat.Implies(c(v("a"), lang.OpEQ, k("7"))) {
		t.Fatal("unsat set implies everything")
	}
	empty := New()
	if !empty.Implies(c(v("x"), lang.OpLE, v("x"))) {
		t.Fatal("x<=x is valid")
	}
	if empty.Implies(c(v("x"), lang.OpLT, v("y"))) {
		t.Fatal("empty set implies nothing contingent")
	}
}

func TestAndCombines(t *testing.T) {
	a := New(c(v("x"), lang.OpLT, v("y")))
	b := New(c(v("y"), lang.OpLT, v("x")))
	if !a.Satisfiable() || !b.Satisfiable() {
		t.Fatal("parts should be satisfiable")
	}
	if a.And(b).Satisfiable() {
		t.Fatal("conjunction should be unsatisfiable")
	}
	if got := a.And(nil).Len(); got != 1 {
		t.Fatalf("And(nil) len = %d", got)
	}
	var nilSet *Set
	if got := nilSet.And(b).Len(); got != 1 {
		t.Fatalf("nil.And len = %d", got)
	}
}

func TestProjectKeepsEntailments(t *testing.T) {
	// x < y < z: projecting onto {x, z} must retain x < z.
	s := New(c(v("x"), lang.OpLT, v("y")), c(v("y"), lang.OpLT, v("z")))
	p := s.Project([]lang.Term{v("x"), v("z")})
	if !p.Implies(c(v("x"), lang.OpLT, v("z"))) {
		t.Fatalf("projection lost x<z: %v", p)
	}
	for _, cc := range p.Comparisons() {
		for _, term := range []lang.Term{cc.L, cc.R} {
			if term.IsVar() && term != v("x") && term != v("z") {
				t.Fatalf("projection leaked variable %v in %v", term, p)
			}
		}
	}
}

func TestProjectThroughConstants(t *testing.T) {
	// x <= 5 and y >= 9: projecting onto {x} keeps x <= 5.
	s := New(c(v("x"), lang.OpLE, k("5")), c(v("y"), lang.OpGE, k("9")))
	p := s.Project([]lang.Term{v("x")})
	if !p.Implies(c(v("x"), lang.OpLE, k("5"))) {
		t.Fatalf("projection lost x<=5: %v", p)
	}
	if p.Implies(c(v("x"), lang.OpLT, k("5"))) {
		t.Fatalf("projection overstated: %v", p)
	}
}

func TestProjectUnsat(t *testing.T) {
	s := New(c(v("x"), lang.OpLT, v("x")))
	p := s.Project([]lang.Term{v("y")})
	if p.Satisfiable() {
		t.Fatal("projection of unsat set must be unsat")
	}
}

func TestProjectEquality(t *testing.T) {
	s := New(c(v("x"), lang.OpEQ, v("y")), c(v("y"), lang.OpEQ, k("3")))
	p := s.Project([]lang.Term{v("x")})
	if !p.Implies(c(v("x"), lang.OpEQ, k("3"))) {
		t.Fatalf("projection lost x=3: %v", p)
	}
}

func TestEvalGround(t *testing.T) {
	if !New(c(k("1"), lang.OpLT, k("2")), c(k("a"), lang.OpEQ, k("a"))).EvalGround() {
		t.Fatal("ground true conjunction")
	}
	if New(c(k("1"), lang.OpGT, k("2"))).EvalGround() {
		t.Fatal("ground false conjunction")
	}
	if New(c(v("x"), lang.OpEQ, k("1"))).EvalGround() {
		t.Fatal("non-ground must be false")
	}
	var nilSet *Set
	if !nilSet.EvalGround() {
		t.Fatal("nil set is trivially true")
	}
}

func TestApplySubst(t *testing.T) {
	s := New(c(v("x"), lang.OpLT, v("y")))
	sub := lang.Subst{"x": k("1"), "y": k("0")}
	if s.Apply(sub).Satisfiable() {
		t.Fatal("1<0 after substitution must be unsat")
	}
}

func TestStringDeterministic(t *testing.T) {
	s1 := New(c(v("x"), lang.OpLT, v("y")), c(v("a"), lang.OpEQ, k("1")))
	s2 := New(c(v("a"), lang.OpEQ, k("1")), c(v("x"), lang.OpLT, v("y")))
	if s1.String() != s2.String() {
		t.Fatalf("String not order-insensitive: %q vs %q", s1, s2)
	}
	var nilSet *Set
	if nilSet.String() != "true" {
		t.Fatal("nil String")
	}
}

// Property test: random conjunctions over a small variable/constant pool.
// If the solver says satisfiable, brute-force search over a small integer
// domain extended with "gaps" must find a model... instead we verify the
// contrapositive with a brute-force checker over rationals k/2 in [-1, 6]:
// if brute force finds a model, the solver must say satisfiable (solver
// completeness); if the solver says satisfiable over the dense domain and
// all constants are integers in range, a half-integer model must exist.
func TestSolverAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vars := []lang.Term{v("p"), v("q"), v("r")}
	consts := []lang.Term{k("0"), k("1"), k("2")}
	ops := []lang.CompOp{lang.OpEQ, lang.OpNE, lang.OpLT, lang.OpLE, lang.OpGT, lang.OpGE}
	randTerm := func() lang.Term {
		if rng.Intn(3) == 0 {
			return consts[rng.Intn(len(consts))]
		}
		return vars[rng.Intn(len(vars))]
	}
	// Domain: half-integers -1.0 .. 3.0 (dense enough between the constants
	// 0,1,2 for up-to-3-variable conjunctions).
	domain := []string{"-1", "-0.5", "0", "0.5", "1", "1.5", "2", "2.5", "3"}
	bruteSat := func(comps []lang.Comparison) bool {
		for _, d0 := range domain {
			for _, d1 := range domain {
				for _, d2 := range domain {
					sub := lang.Subst{"p": k(d0), "q": k(d1), "r": k(d2)}
					ok := true
					for _, cc := range comps {
						g := sub.ApplyComparison(cc)
						if !g.Op.EvalConst(g.L, g.R) {
							ok = false
							break
						}
					}
					if ok {
						return true
					}
				}
			}
		}
		return false
	}
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(5)
		comps := make([]lang.Comparison, n)
		for i := range comps {
			comps[i] = c(randTerm(), ops[rng.Intn(len(ops))], randTerm())
		}
		got := New(comps...).Satisfiable()
		want := bruteSat(comps)
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v for %v", trial, got, want, New(comps...))
		}
	}
}
