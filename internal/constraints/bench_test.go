package constraints

import (
	"fmt"
	"testing"

	"repro/internal/lang"
)

// chainSet builds x0 < x1 < … < xn with a few constants mixed in.
func chainSet(n int) *Set {
	s := New()
	for i := 0; i < n; i++ {
		s.Add(lang.Comparison{
			Op: lang.OpLT,
			L:  lang.Var(fmt.Sprintf("x%d", i)),
			R:  lang.Var(fmt.Sprintf("x%d", i+1)),
		})
	}
	s.Add(lang.Comparison{Op: lang.OpGE, L: lang.Var("x0"), R: lang.Const("0")})
	s.Add(lang.Comparison{Op: lang.OpLE, L: lang.Var(fmt.Sprintf("x%d", n)), R: lang.Const("100")})
	return s
}

func BenchmarkSatisfiableChain(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := chainSet(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !s.Satisfiable() {
					b.Fatal("chain should be satisfiable")
				}
			}
		})
	}
}

func BenchmarkImplies(b *testing.B) {
	s := chainSet(16)
	c := lang.Comparison{Op: lang.OpLT, L: lang.Var("x0"), R: lang.Var("x16")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Implies(c) {
			b.Fatal("chain should imply endpoints ordered")
		}
	}
}

func BenchmarkProject(b *testing.B) {
	s := chainSet(12)
	keep := []lang.Term{lang.Var("x0"), lang.Var("x12")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := s.Project(keep)
		if p.Len() == 0 {
			b.Fatal("projection lost everything")
		}
	}
}
