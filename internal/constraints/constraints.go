// Package constraints implements conjunctions of comparison predicates
// (=, !=, <, <=, >, >=) over variables and constants, with decision
// procedures for satisfiability and implication and a projection operation.
//
// These are the constraint labels c(n) of Section 4.2 of the paper: as the
// rule-goal tree is built, comparison predicates from the query, storage
// descriptions and definitional mappings are accumulated; a node whose label
// is unsatisfiable is a dead end and is pruned.
//
// The domain is treated as a dense, unbounded total order (the standard
// assumption for comparison predicates; constants are ordered numerically
// when both sides parse as numbers and lexicographically otherwise). This is
// the safe direction for pruning: the solver may report "satisfiable" for a
// conjunction that is unsatisfiable over a discrete domain, but never the
// reverse, so no valid rewriting is ever discarded.
package constraints

import (
	"sort"
	"strings"

	"repro/internal/lang"
)

// Set is a conjunction of comparison predicates. The zero value is the empty
// (trivially true) conjunction, ready to use.
type Set struct {
	comps []lang.Comparison
}

// New returns a conjunction of the given comparisons.
func New(comps ...lang.Comparison) *Set {
	s := &Set{}
	s.Add(comps...)
	return s
}

// Add conjoins more comparisons.
func (s *Set) Add(comps ...lang.Comparison) {
	s.comps = append(s.comps, comps...)
}

// And returns a new conjunction s ∧ t. Either receiver may be nil (treated
// as the empty conjunction).
func (s *Set) And(t *Set) *Set {
	out := &Set{}
	if s != nil {
		out.comps = append(out.comps, s.comps...)
	}
	if t != nil {
		out.comps = append(out.comps, t.comps...)
	}
	return out
}

// Comparisons returns a copy of the conjuncts.
func (s *Set) Comparisons() []lang.Comparison {
	if s == nil {
		return nil
	}
	out := make([]lang.Comparison, len(s.comps))
	copy(out, s.comps)
	return out
}

// Len returns the number of conjuncts.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.comps)
}

// Apply returns a new conjunction with the substitution applied to every
// conjunct.
func (s *Set) Apply(sub lang.Subst) *Set {
	if s == nil {
		return &Set{}
	}
	return &Set{comps: sub.ApplyComparisons(s.comps)}
}

// String renders the conjunction deterministically.
func (s *Set) String() string {
	if s == nil || len(s.comps) == 0 {
		return "true"
	}
	parts := make([]string, len(s.comps))
	for i, c := range s.comps {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " AND ")
}

// Satisfiable reports whether the conjunction has a model over a dense
// unbounded ordered domain.
func (s *Set) Satisfiable() bool {
	if s == nil {
		return true
	}
	_, ok := solve(s.comps)
	return ok
}

// Implies reports whether the conjunction entails c (that is, s ∧ ¬c is
// unsatisfiable). An unsatisfiable s implies everything.
func (s *Set) Implies(c lang.Comparison) bool {
	var comps []lang.Comparison
	if s != nil {
		comps = s.comps
	}
	neg := lang.Comparison{Op: c.Op.Negate(), L: c.L, R: c.R}
	_, ok := solve(append(append([]lang.Comparison{}, comps...), neg))
	return !ok
}

// Project returns the least subsuming conjunction of s over the given
// variables (plus constants): for every pair of kept terms it emits the
// strongest binary relation entailed by s. If s is unsatisfiable the result
// is an explicitly unsatisfiable conjunction. This realizes the footnote-3
// approximation in the paper (disjunctions arising from projection are
// approximated by the least subsuming conjunction).
func (s *Set) Project(keep []lang.Term) *Set {
	if s == nil || len(s.comps) == 0 {
		return &Set{}
	}
	if !s.Satisfiable() {
		f := Const("0")
		return New(lang.Comparison{Op: lang.OpNE, L: f, R: f})
	}
	// Candidate terms: kept variables and every constant mentioned.
	terms := make([]lang.Term, 0, len(keep))
	seen := map[lang.Term]bool{}
	for _, v := range keep {
		if v.IsVar() && !seen[v] {
			seen[v] = true
			terms = append(terms, v)
		}
	}
	for _, c := range s.comps {
		for _, t := range []lang.Term{c.L, c.R} {
			if t.IsConst() && !seen[t] {
				seen[t] = true
				terms = append(terms, t)
			}
		}
	}
	out := &Set{}
	for i := 0; i < len(terms); i++ {
		for j := i + 1; j < len(terms); j++ {
			a, b := terms[i], terms[j]
			if a.IsConst() && b.IsConst() {
				continue // relation between constants is intrinsic
			}
			switch {
			case s.Implies(lang.Comparison{Op: lang.OpEQ, L: a, R: b}):
				out.Add(lang.Comparison{Op: lang.OpEQ, L: a, R: b})
			case s.Implies(lang.Comparison{Op: lang.OpLT, L: a, R: b}):
				out.Add(lang.Comparison{Op: lang.OpLT, L: a, R: b})
			case s.Implies(lang.Comparison{Op: lang.OpGT, L: a, R: b}):
				out.Add(lang.Comparison{Op: lang.OpGT, L: a, R: b})
			default:
				if s.Implies(lang.Comparison{Op: lang.OpLE, L: a, R: b}) {
					out.Add(lang.Comparison{Op: lang.OpLE, L: a, R: b})
				} else if s.Implies(lang.Comparison{Op: lang.OpGE, L: a, R: b}) {
					out.Add(lang.Comparison{Op: lang.OpGE, L: a, R: b})
				}
				if s.Implies(lang.Comparison{Op: lang.OpNE, L: a, R: b}) {
					out.Add(lang.Comparison{Op: lang.OpNE, L: a, R: b})
				}
			}
		}
	}
	return out
}

// EvalGround evaluates a fully ground conjunction (no variables); it returns
// false if any conjunct has a variable.
func (s *Set) EvalGround() bool {
	if s == nil {
		return true
	}
	for _, c := range s.comps {
		if c.L.IsVar() || c.R.IsVar() {
			return false
		}
		if !c.Op.EvalConst(c.L, c.R) {
			return false
		}
	}
	return true
}

// Const is a convenience re-export of lang.Const for callers of this package.
func Const(v string) lang.Term { return lang.Const(v) }
