package constraints

import (
	"repro/internal/lang"
)

// solve decides satisfiability of a conjunction of comparisons over a dense
// unbounded ordered domain. It returns a class assignment (term -> class
// index) as a witness when satisfiable. The algorithm:
//
//  1. Union equality-related terms (union-find); a class holding two
//     distinct constants is inconsistent.
//  2. Build a directed graph over classes with <= and < edges (including
//     the intrinsic order among constants) and compute the transitive
//     closure tracking strictness; a class strictly preceding itself is
//     inconsistent.
//  3. Merge classes related by x <= y and y <= x and repeat until fixpoint
//     (each merge reduces the class count, so this terminates).
//  4. Check != constraints and constant-order consistency on the result.
func solve(comps []lang.Comparison) (map[lang.Term]int, bool) {
	uf := newUnionFind()
	type edge struct {
		from, to lang.Term
		strict   bool
	}
	var edges []edge
	var neqs [][2]lang.Term

	for _, c := range comps {
		if c.L.IsConst() && c.R.IsConst() {
			if !c.Op.EvalConst(c.L, c.R) {
				return nil, false
			}
			continue
		}
		uf.touch(c.L)
		uf.touch(c.R)
		switch c.Op {
		case lang.OpEQ:
			uf.union(c.L, c.R)
		case lang.OpNE:
			neqs = append(neqs, [2]lang.Term{c.L, c.R})
		case lang.OpLT:
			edges = append(edges, edge{c.L, c.R, true})
		case lang.OpLE:
			edges = append(edges, edge{c.L, c.R, false})
		case lang.OpGT:
			edges = append(edges, edge{c.R, c.L, true})
		case lang.OpGE:
			edges = append(edges, edge{c.R, c.L, false})
		}
	}

	for {
		roots, classConst, ok := uf.classes()
		if !ok {
			return nil, false // two distinct constants in one class
		}
		n := len(roots)
		idx := make(map[lang.Term]int, n)
		for i, r := range roots {
			idx[r] = i
		}
		le := make([][]bool, n)
		lt := make([][]bool, n)
		for i := range le {
			le[i] = make([]bool, n)
			lt[i] = make([]bool, n)
			le[i][i] = true
		}
		for _, e := range edges {
			i, j := idx[uf.find(e.from)], idx[uf.find(e.to)]
			le[i][j] = true
			if e.strict {
				lt[i][j] = true
			}
		}
		// Intrinsic order among constant classes.
		for i := 0; i < n; i++ {
			ci, iOK := classConst[roots[i]]
			if !iOK {
				continue
			}
			for j := 0; j < n; j++ {
				cj, jOK := classConst[roots[j]]
				if !jOK || i == j {
					continue
				}
				if lang.CompareConst(ci, cj) < 0 {
					le[i][j] = true
					lt[i][j] = true
				}
			}
		}
		// Warshall closure with strictness propagation.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if !le[i][k] {
					continue
				}
				for j := 0; j < n; j++ {
					if !le[k][j] {
						continue
					}
					le[i][j] = true
					if lt[i][k] || lt[k][j] {
						lt[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			if lt[i][i] {
				return nil, false // strict cycle
			}
		}
		// Merge mutually-<= classes and restart if anything merged.
		merged := false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if le[i][j] && le[j][i] {
					uf.union(roots[i], roots[j])
					merged = true
				}
			}
		}
		if merged {
			continue
		}
		for _, ne := range neqs {
			if uf.find(ne[0]) == uf.find(ne[1]) {
				return nil, false
			}
		}
		// Entailed order among constant classes must match intrinsic order.
		for i := 0; i < n; i++ {
			ci, iOK := classConst[roots[i]]
			if !iOK {
				continue
			}
			for j := 0; j < n; j++ {
				cj, jOK := classConst[roots[j]]
				if !jOK || i == j {
					continue
				}
				cmp := lang.CompareConst(ci, cj)
				if le[i][j] && cmp > 0 {
					return nil, false
				}
				if lt[i][j] && cmp >= 0 {
					return nil, false
				}
			}
		}
		witness := make(map[lang.Term]int, len(uf.parent))
		for t := range uf.parent {
			witness[t] = idx[uf.find(t)]
		}
		return witness, true
	}
}

// unionFind over terms with path compression. Constant terms are preferred
// as class representatives so constant lookups are direct.
type unionFind struct {
	parent map[lang.Term]lang.Term
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[lang.Term]lang.Term{}}
}

func (u *unionFind) touch(t lang.Term) {
	if _, ok := u.parent[t]; !ok {
		u.parent[t] = t
	}
}

func (u *unionFind) find(t lang.Term) lang.Term {
	u.touch(t)
	r := t
	for u.parent[r] != r {
		r = u.parent[r]
	}
	for u.parent[t] != r {
		u.parent[t], t = r, u.parent[t]
	}
	return r
}

func (u *unionFind) union(a, b lang.Term) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if rb.IsConst() && !ra.IsConst() {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// classes returns the current class representatives, a map representative ->
// constant member (if any), and false if some class contains two distinct
// constants.
func (u *unionFind) classes() (roots []lang.Term, classConst map[lang.Term]lang.Term, ok bool) {
	classConst = map[lang.Term]lang.Term{}
	seen := map[lang.Term]bool{}
	terms := make([]lang.Term, 0, len(u.parent))
	for t := range u.parent {
		terms = append(terms, t)
	}
	for _, t := range terms {
		r := u.find(t)
		if !seen[r] {
			seen[r] = true
			roots = append(roots, r)
		}
		if t.IsConst() {
			if prev, has := classConst[r]; has && prev != t {
				return nil, nil, false
			}
			classConst[r] = t
		}
	}
	return roots, classConst, true
}
