package engine

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/lang"
	"repro/internal/rel"
)

// ErrStop is returned by an Enumerate yield callback to stop enumeration
// early without error.
var ErrStop = errors.New("engine: stop enumeration")

// PlanCache caches compiled plans keyed by canonicalized query. One cache
// may be shared by several engines (e.g. netpeer's executor creates a
// scratch engine per cross-peer join but reuses plans across calls): a plan
// fixes only the join order and probe shapes, never data, so reuse across
// instances is always sound.
type PlanCache struct {
	lru *LRU
}

// NewPlanCache returns a plan cache holding at most capacity plans.
func NewPlanCache(capacity int) *PlanCache { return &PlanCache{lru: NewLRU(capacity)} }

// Stats reports cumulative plan-cache hits and misses.
func (pc *PlanCache) Stats() CacheStats { return pc.lru.Stats() }

// Stats are cumulative engine counters (observability and tests).
type Stats struct {
	// Probes counts index-probe step entries; Scans counts full-scan step
	// entries.
	Probes, Scans uint64
	// PlansCompiled counts plan compilations (cache misses).
	PlansCompiled uint64
	// IndexesBuilt counts distinct (relation, column-set) indexes created.
	IndexesBuilt uint64
}

// index is a hash index over one relation for one bound-position set:
// the key projects the tuple onto cols, buckets hold the matching tuples.
// Indexes are built lazily on first probe and maintained incrementally by
// consuming the relation's append-only insert log.
type index struct {
	cols     []int
	consumed uint64
	buckets  map[string][]rel.Tuple
}

// AppendKeyPart appends one key component with a length prefix, so
// composite keys are collision-free even for values containing the
// delimiter bytes themselves ("a\x00b","c" vs "a","b\x00c"). Probe-path key
// assembly in run() must use this same encoding. It is exported for other
// packages that need collision-free composite names (netpeer's executor
// encodes per-atom selection patterns with it).
func AppendKeyPart(dst []byte, v string) []byte {
	dst = strconv.AppendInt(dst, int64(len(v)), 10)
	dst = append(dst, ':')
	return append(dst, v...)
}

func bucketKey(t rel.Tuple, cols []int) string {
	if len(cols) == 1 {
		return t[cols[0]]
	}
	var key []byte
	for _, c := range cols {
		key = AppendKeyPart(key, t[c])
	}
	return string(key)
}

// Engine evaluates conjunctive queries, unions of conjunctive queries and
// datalog programs over a rel.Instance using lazily-built hash indexes and
// greedy selectivity-ordered join plans. It is the indexed replacement for
// the naive evaluator in package rel (which remains the reference oracle).
//
// Concurrency: concurrent evaluations are safe with each other; mutations
// of the underlying instance require the same external synchronization the
// instance itself demands (readers excluded while a writer runs). Indexes
// catch up with inserts on the next probe.
type Engine struct {
	ins   *rel.Instance
	plans *PlanCache

	// mu guards indexes. Probes take the read lock on the fast path (index
	// exists and has consumed the whole relation log) so concurrent
	// evaluations don't serialize; the write lock is only taken to create
	// or catch up an index.
	mu      sync.RWMutex
	indexes map[string]map[string]*index // pred -> column-set key -> index

	probes        atomic.Uint64
	scans         atomic.Uint64
	plansCompiled atomic.Uint64
	indexesBuilt  atomic.Uint64
}

// New returns an engine over ins with a private plan cache.
func New(ins *rel.Instance) *Engine {
	return NewWithPlanCache(ins, NewPlanCache(1024))
}

// NewWithPlanCache returns an engine over ins sharing the given plan cache.
func NewWithPlanCache(ins *rel.Instance, pc *PlanCache) *Engine {
	if pc == nil {
		pc = NewPlanCache(1024)
	}
	return &Engine{ins: ins, plans: pc, indexes: map[string]map[string]*index{}}
}

// Instance returns the underlying instance.
func (e *Engine) Instance() *rel.Instance { return e.ins }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Probes:        e.probes.Load(),
		Scans:         e.scans.Load(),
		PlansCompiled: e.plansCompiled.Load(),
		IndexesBuilt:  e.indexesBuilt.Load(),
	}
}

// card estimates a relation's cardinality (0 when absent).
func (e *Engine) card(pred string) int {
	if r := e.ins.Relation(pred); r != nil {
		return r.Len()
	}
	return 0
}

// probe returns the tuples of r whose projection onto cols equals key,
// building or catching up the (r, cols) index as needed.
func (e *Engine) probe(r *rel.Relation, cols []int, key string) []rel.Tuple {
	ck := colsKey(cols)
	// Fast path: the index exists and is current — answer under the read
	// lock so concurrent evaluations proceed in parallel.
	e.mu.RLock()
	idx := e.indexes[r.Name][ck]
	if idx != nil && idx.consumed == r.Version() {
		b := idx.buckets[key]
		e.mu.RUnlock()
		return b
	}
	e.mu.RUnlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	byCols := e.indexes[r.Name]
	if byCols == nil {
		byCols = map[string]*index{}
		e.indexes[r.Name] = byCols
	}
	idx = byCols[ck]
	if idx == nil {
		idx = &index{cols: cols, buckets: map[string][]rel.Tuple{}}
		byCols[ck] = idx
		e.indexesBuilt.Add(1)
	}
	added := r.AddedSince(idx.consumed)
	for _, t := range added {
		k := bucketKey(t, cols)
		idx.buckets[k] = append(idx.buckets[k], t)
	}
	idx.consumed += uint64(len(added))
	return idx.buckets[key]
}

// ProbeByKeyBatchYield invokes yield once per distinct tuple of pred whose
// projection onto cols equals one of keys, building (or incrementally
// catching up) the same lazy hash index that regular probe steps use.
// Every key must supply len(cols) values. Tuples stream out as the keys
// are probed — nothing beyond the dedup set is materialized — which is the
// server-side substrate for netpeer's chunked bind responses. Returning
// ErrStop from yield ends the stream without error.
func (e *Engine) ProbeByKeyBatchYield(pred string, cols []int, keys [][]string, yield func(rel.Tuple) error) error {
	if len(cols) == 0 {
		return fmt.Errorf("engine: ProbeByKeyBatch on %s needs at least one column", pred)
	}
	r := e.ins.Relation(pred)
	if r == nil {
		return nil
	}
	for _, c := range cols {
		if c < 0 || c >= r.Arity {
			return fmt.Errorf("engine: ProbeByKeyBatch column %d out of range for %s/%d", c, pred, r.Arity)
		}
	}
	seen := map[string]bool{}
	var kb []byte
	for _, key := range keys {
		if len(key) != len(cols) {
			return fmt.Errorf("engine: ProbeByKeyBatch key %v has %d values, want %d", key, len(key), len(cols))
		}
		kb = kb[:0]
		for _, v := range key {
			if len(cols) == 1 {
				kb = append(kb, v...)
			} else {
				kb = AppendKeyPart(kb, v)
			}
		}
		e.probes.Add(1)
		for _, t := range e.probe(r, cols, string(kb)) {
			if k := t.Key(); !seen[k] {
				seen[k] = true
				if err := yield(t); err != nil {
					if errors.Is(err, ErrStop) {
						return nil
					}
					return err
				}
			}
		}
	}
	return nil
}

// ProbeByKeyBatch is ProbeByKeyBatchYield materialized: it returns the
// distinct matching tuples as a slice.
func (e *Engine) ProbeByKeyBatch(pred string, cols []int, keys [][]string) ([]rel.Tuple, error) {
	var out []rel.Tuple
	err := e.ProbeByKeyBatchYield(pred, cols, keys, func(t rel.Tuple) error {
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func colsKey(cols []int) string {
	var sb strings.Builder
	for i, c := range cols {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	return sb.String()
}

// plan fetches a compiled plan from the cache under key, compiling q on a
// miss. EvalCQ/EvalUCQ key by the alpha-renamed canonical form (answers are
// invariant under variable renaming and emission is slot-based); Enumerate
// must key by the literal query instead, because its substitutions expose
// the plan's variable names.
func (e *Engine) plan(key string, q lang.CQ) (*Plan, error) {
	if v, ok := e.plans.lru.Get(key); ok {
		return v.(*Plan), nil
	}
	p, err := e.compile(q, -1)
	if err != nil {
		return nil, err
	}
	e.plans.lru.Put(key, p)
	return p, nil
}

// StreamCQ invokes yield once per distinct head tuple of q, in discovery
// order (no sort, no result materialization beyond the dedup set), so
// callers can forward rows incrementally — the netpeer server streams
// eval results over the wire through this hook instead of buffering the
// whole answer. Returning ErrStop from yield ends the stream without
// error. The yielded tuple is freshly allocated; callers may keep it.
func (e *Engine) StreamCQ(q lang.CQ, yield func(rel.Tuple) error) error {
	p, err := e.plan(q.Canonical(), q)
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	err = e.run(p, nil, func(slots []string) error {
		head := make(rel.Tuple, len(p.head))
		for i, h := range p.head {
			if h.slot >= 0 {
				head[i] = slots[h.slot]
			} else {
				head[i] = h.constVal
			}
		}
		if k := head.Key(); !seen[k] {
			seen[k] = true
			return yield(head)
		}
		return nil
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// EvalCQ evaluates a conjunctive query with set semantics and returns the
// distinct head tuples, sorted — the indexed equivalent of rel.EvalCQ.
func (e *Engine) EvalCQ(q lang.CQ) ([]rel.Tuple, error) {
	var out []rel.Tuple
	if err := e.StreamCQ(q, func(t rel.Tuple) error {
		out = append(out, t)
		return nil
	}); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// maxUCQFanout caps the worker pool evaluating UCQ disjuncts concurrently
// (mirrors the netpeer executor's fan-out, so local and distributed UCQ
// evaluation share the same concurrency shape).
const maxUCQFanout = 8

// EvalUCQ evaluates a union of conjunctive queries, returning the distinct
// union of the disjuncts' answers, sorted — the indexed equivalent of
// rel.EvalUCQ. Disjuncts are independent and concurrent evaluations are
// safe with each other, so they fan out over a bounded worker pool; on
// error the first failing disjunct (by position) wins.
func (e *Engine) EvalUCQ(u lang.UCQ) ([]rel.Tuple, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	n := len(u.Disjuncts)
	groups := make([][]rel.Tuple, n)
	if n <= 1 {
		for i, q := range u.Disjuncts {
			rows, err := e.EvalCQ(q)
			if err != nil {
				return nil, err
			}
			groups[i] = rows
		}
		return rel.DistinctSorted(groups...), nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < min(n, maxUCQFanout); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				groups[i], errs[i] = e.EvalCQ(u.Disjuncts[i])
			}
		}()
	}
	for i := range u.Disjuncts {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rel.DistinctSorted(groups...), nil
}

// Enumerate invokes yield once per substitution grounding every atom of
// body in the instance (comparisons in comps are applied as filters once
// bound). Returning ErrStop from yield ends the enumeration without error.
// This is the indexed substrate for callers that need raw matches rather
// than head tuples (the chase's TGD matching).
func (e *Engine) Enumerate(body []lang.Atom, comps []lang.Comparison, yield func(lang.Subst) error) error {
	var head []lang.Term
	for _, a := range body {
		head = a.Vars(head)
	}
	q := lang.CQ{Head: lang.Atom{Pred: "_enum", Args: head}, Body: body, Comps: comps}
	// Literal key, NOT Canonical(): two alpha-equivalent bodies with
	// different variable names must not share a plan here, since the
	// yielded substitutions carry the plan's variable names.
	p, err := e.plan("enum|"+q.String(), q)
	if err != nil {
		return err
	}
	err = e.run(p, nil, func(slots []string) error {
		s := lang.NewSubst()
		for i, name := range p.slotNames {
			s[name] = lang.Const(slots[i])
		}
		return yield(s)
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// ExistsMatch reports whether at least one substitution grounds every atom
// in the instance. Unlike Enumerate it never caches the plan: its intended
// callers (the chase's head-satisfaction test) embed per-match constants,
// so each query is one-shot and caching would only churn the plan LRU.
func (e *Engine) ExistsMatch(atoms []lang.Atom) (bool, error) {
	var head []lang.Term
	for _, a := range atoms {
		head = a.Vars(head)
	}
	q := lang.CQ{Head: lang.Atom{Pred: "_exists", Args: head}, Body: atoms}
	p, err := e.compile(q, -1)
	if err != nil {
		return false, err
	}
	found := false
	err = e.run(p, nil, func([]string) error {
		found = true
		return ErrStop
	})
	if err != nil && !errors.Is(err, ErrStop) {
		return false, err
	}
	return found, nil
}

// EvalDatalog computes the least fixpoint of the datalog program given by
// rules over base using semi-naive evaluation with indexed joins: per round
// the pivot atom scans the previous round's delta and the remaining atoms
// probe hash indexes on the accumulating total instance. It returns a new
// instance containing base plus all derived facts — the indexed equivalent
// of rel.EvalDatalog.
func EvalDatalog(rules []lang.CQ, base *rel.Instance) (*rel.Instance, error) {
	for _, r := range rules {
		if !r.IsSafe() {
			return nil, fmt.Errorf("engine: unsafe rule %s", r)
		}
	}
	total := base.Clone()
	e := New(total)

	// One plan per (rule, pivot): the pivot atom is forced first and reads
	// the round's delta; the rest are ordered greedily and probe total.
	type pivotPlan struct {
		rule lang.CQ
		plan *Plan
	}
	var plans []pivotPlan
	for _, rule := range rules {
		for pivot := range rule.Body {
			p, err := e.compile(rule, pivot)
			if err != nil {
				return nil, err
			}
			plans = append(plans, pivotPlan{rule: rule, plan: p})
		}
	}

	delta := base.Clone()
	for {
		next := rel.NewInstance()
		for _, pp := range plans {
			if delta.Relation(pp.plan.steps[0].pred) == nil {
				continue
			}
			p := pp.plan
			err := e.run(p, delta, func(slots []string) error {
				tup := make(rel.Tuple, len(p.head))
				for i, h := range p.head {
					if h.slot >= 0 {
						tup[i] = slots[h.slot]
					} else {
						tup[i] = h.constVal
					}
				}
				if r := total.Relation(p.headPred); r == nil || !r.Contains(tup) {
					if _, err := next.Add(p.headPred, tup); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		if next.Size() == 0 {
			return total, nil
		}
		for _, pred := range next.Relations() {
			for _, t := range next.Relation(pred).Tuples() {
				if _, err := total.Add(pred, t); err != nil {
					return nil, err
				}
			}
		}
		delta = next
	}
}
