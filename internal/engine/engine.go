package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/lang"
	"repro/internal/rel"
	"repro/internal/store"
)

// ErrStop is returned by an Enumerate yield callback to stop enumeration
// early without error.
var ErrStop = errors.New("engine: stop enumeration")

// errCanceled unwinds a parallel worker once another worker has already
// recorded the run's outcome; it is never returned to callers.
var errCanceled = errors.New("engine: canceled")

// fanOut is the shared scaffolding of the engine's bounded shard fan-outs
// (parallel scans, parallel probe batches): a serialized-yield mutex, a
// stop flag every worker polls, and first-error-wins bookkeeping. The
// recorded error may be ErrStop — each call site applies its own ErrStop
// policy, but the cancellation machinery stays in one place.
type fanOut struct {
	yieldMu  sync.Mutex
	stop     atomic.Bool
	once     sync.Once
	firstErr error
}

// fail records the outcome (first call wins) and drains the pool.
func (f *fanOut) fail(err error) {
	f.once.Do(func() { f.firstErr = err })
	f.stop.Store(true)
}

// dispatch feeds items 0..items-1 through an unbuffered queue to workers
// goroutines running worker, waits for them, and returns the recorded
// outcome. Workers must skip (not abandon) queue items once f.stop is set
// so the feeder never blocks.
func (f *fanOut) dispatch(workers, items int, worker func(queue <-chan int)) error {
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(queue)
		}()
	}
	for i := 0; i < items; i++ {
		queue <- i
	}
	close(queue)
	wg.Wait()
	return f.firstErr
}

// PlanCache caches compiled plans keyed by canonicalized query. One cache
// may be shared by several engines (e.g. netpeer's executor creates a
// scratch engine per cross-peer join but reuses plans across calls): a plan
// fixes only the join order and probe shapes, never data, so reuse across
// instances is always sound.
type PlanCache struct {
	lru *LRU
}

// NewPlanCache returns a plan cache holding at most capacity plans.
func NewPlanCache(capacity int) *PlanCache { return &PlanCache{lru: NewLRU(capacity)} }

// Stats reports cumulative plan-cache hits and misses.
func (pc *PlanCache) Stats() CacheStats { return pc.lru.Stats() }

// Stats are cumulative engine counters (observability and tests).
type Stats struct {
	// Probes counts index-probe step entries; Scans counts full-scan step
	// entries (one per step entry, regardless of how many shards the scan
	// fans out over).
	Probes, Scans uint64
	// ParallelScans counts scan steps that fanned out over the shard worker
	// pool (a subset of Scans).
	ParallelScans uint64
	// PlansCompiled counts plan compilations (cache misses).
	PlansCompiled uint64
	// IndexesBuilt counts distinct (relation, column-set) indexes created;
	// an index covers every shard of its relation.
	IndexesBuilt uint64
}

// parallelScanMinRows gates shard fan-out for full scans: below it the
// sequential path wins (goroutine + merge overhead beats the work saved).
// Var, not const, so tests can force the parallel path on small fixtures.
var parallelScanMinRows = 4096

// parallelProbeMinKeys gates shard fan-out for ProbeByKeyBatchYield the
// same way, by bound-key count.
var parallelProbeMinKeys = 64

// scanWorkersOverride, when > 0, fixes the shard worker-pool size (tests
// force parallelism on single-CPU machines with it); 0 means one worker
// per schedulable CPU.
var scanWorkersOverride = 0

// scanWorkers returns the bounded worker-pool size for shard fan-out.
func scanWorkers() int {
	if scanWorkersOverride > 0 {
		return scanWorkersOverride
	}
	return runtime.GOMAXPROCS(0)
}

// index is a set of per-shard hash indexes over one relation for one
// bound-position set: per shard, the key projects the tuple onto cols and
// buckets hold the matching tuples of that shard. Indexes are built lazily
// on first probe and each shard's half is maintained incrementally by
// consuming that shard's append-only insert log — under the shard's own
// lock, so probes routed to different shards never contend.
type index struct {
	cols   []int
	shards []idxShard
}

type idxShard struct {
	// mu's read lock covers the fast path (sub-index already caught up
	// with its shard's log), so concurrent probes of one shard proceed in
	// parallel; the write lock is only taken to consume new log entries.
	mu sync.RWMutex
	// consumed is how many log entries this sub-index has folded in,
	// guarded by mu.
	consumed uint64
	// buckets maps composite probe keys to matching tuples, guarded by mu.
	buckets map[string][]rel.Tuple
}

// AppendKeyPart appends one key component with a length prefix, so
// composite keys are collision-free even for values containing the
// delimiter bytes themselves ("a\x00b","c" vs "a","b\x00c"). Probe-path key
// assembly must use this same encoding. It is exported for other packages
// that need collision-free composite names (netpeer's executor encodes
// per-atom selection patterns with it).
func AppendKeyPart(dst []byte, v string) []byte {
	dst = strconv.AppendInt(dst, int64(len(v)), 10)
	dst = append(dst, ':')
	return append(dst, v...)
}

func bucketKey(t rel.Tuple, cols []int) string {
	if len(cols) == 1 {
		return t[cols[0]]
	}
	var key []byte
	for _, c := range cols {
		key = AppendKeyPart(key, t[c])
	}
	return string(key)
}

// appendProbeKey assembles the composite probe key for vals (one value per
// probed column) into dst, in the same encoding bucketKey uses.
func appendProbeKey(dst []byte, vals []string) []byte {
	if len(vals) == 1 {
		return append(dst, vals[0]...)
	}
	for _, v := range vals {
		dst = AppendKeyPart(dst, v)
	}
	return dst
}

// Engine evaluates conjunctive queries, unions of conjunctive queries and
// datalog programs over a rel.Instance using lazily-built per-shard hash
// indexes, distinct-value-statistics join ordering, and shard-parallel
// scans and probes. It is the indexed replacement for the naive evaluator
// in package rel (which remains the reference oracle).
//
// Concurrency: concurrent evaluations are safe with each other, and the
// underlying sharded relations tolerate concurrent inserts (each shard
// self-synchronizes); callers that need one atomic point-in-time answer
// across mutations still serialize them externally (pdms.Network,
// netpeer.Server). Indexes catch up with inserts shard by shard on the
// next probe.
type Engine struct {
	// data is the storage view every read path (scans, probes, indexes,
	// stats) consumes; the engine never depends on the concrete in-memory
	// representation behind it.
	data store.Instance
	// ins is the concrete instance behind data when the engine was built
	// over one (New/NewWithPlanCache); nil for engines over other backends
	// (NewFromStore). Only the Instance() escape hatch reads it.
	ins   *rel.Instance
	plans *PlanCache

	// uniformCost disables the distinct-value cost model, restoring the
	// fixed per-bound-argument discount (benchmark baseline).
	uniformCost bool

	// mu guards the two-level index map. Probes take the read lock only to
	// locate the *index for their (relation, column-set); all bucket state
	// is then guarded per shard inside the index, so concurrent probes of
	// different shards proceed in parallel.
	mu      sync.RWMutex
	indexes map[string]map[string]*index // pred -> column-set key -> index; guarded by mu

	probes        atomic.Uint64
	scans         atomic.Uint64
	parallelScans atomic.Uint64
	plansCompiled atomic.Uint64
	indexesBuilt  atomic.Uint64
}

// New returns an engine over ins with a private plan cache.
func New(ins *rel.Instance) *Engine {
	return NewWithPlanCache(ins, NewPlanCache(1024))
}

// NewWithPlanCache returns an engine over ins sharing the given plan cache.
func NewWithPlanCache(ins *rel.Instance, pc *PlanCache) *Engine {
	e := NewFromStore(store.InstanceOf(ins), pc)
	e.ins = ins
	return e
}

// NewFromStore returns an engine over an arbitrary storage backend sharing
// the given plan cache (nil for a private one). Instance() returns nil for
// such engines — there is no concrete rel.Instance behind them.
func NewFromStore(data store.Instance, pc *PlanCache) *Engine {
	if pc == nil {
		pc = NewPlanCache(1024)
	}
	return &Engine{data: data, plans: pc, indexes: map[string]map[string]*index{}}
}

// Instance returns the concrete instance the engine was built over, or nil
// when the engine runs over a non-rel backend (NewFromStore).
func (e *Engine) Instance() *rel.Instance { return e.ins }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Probes:        e.probes.Load(),
		Scans:         e.scans.Load(),
		ParallelScans: e.parallelScans.Load(),
		PlansCompiled: e.plansCompiled.Load(),
		IndexesBuilt:  e.indexesBuilt.Load(),
	}
}

// card estimates a relation's cardinality (0 when absent).
func (e *Engine) card(pred string) int {
	if r := e.data.Relation(pred); r != nil {
		return r.Len()
	}
	return 0
}

// colStats returns the planner statistics for pred: cardinality plus the
// per-column distinct-value estimates maintained by the backend's
// insert-time sketches. Absent relations report zero cardinality and no
// column stats.
func (e *Engine) colStats(pred string) ColStats {
	r := e.data.Relation(pred)
	if r == nil {
		return ColStats{}
	}
	st := r.Stats()
	return ColStats{Card: st.Rows, Distinct: st.Distinct}
}

// getIndex returns (creating if needed) the per-shard index set of r for
// the bound-position set cols.
func (e *Engine) getIndex(r store.Relation, cols []int) *index {
	ck := colsKey(cols)
	e.mu.RLock()
	idx := e.indexes[r.Name()][ck]
	e.mu.RUnlock()
	if idx != nil {
		return idx
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	byCols := e.indexes[r.Name()]
	if byCols == nil {
		byCols = map[string]*index{}
		e.indexes[r.Name()] = byCols
	}
	idx = byCols[ck]
	if idx == nil {
		idx = &index{cols: cols, shards: make([]idxShard, r.NumShards())}
		for i := range idx.shards {
			//lint:ignore lockcheck the index is freshly built and unpublished; no probe can reach its shard locks until byCols[ck] is set below
			idx.shards[i].buckets = map[string][]rel.Tuple{}
		}
		byCols[ck] = idx
		e.indexesBuilt.Add(1)
	}
	return idx
}

// probeShard answers one shard's half of a probe: catch the shard index up
// with the shard's insert log if it has grown, then look the key up. The
// returned bucket must not be mutated.
func probeShard(r store.Relation, idx *index, s int, key []byte) []rel.Tuple {
	ish := &idx.shards[s]
	ish.mu.RLock()
	if ish.consumed == r.ShardVersion(s) {
		b := ish.buckets[string(key)]
		ish.mu.RUnlock()
		return b
	}
	ish.mu.RUnlock()
	ish.mu.Lock()
	added := r.ShardAddedSince(s, ish.consumed)
	for _, t := range added {
		k := bucketKey(t, idx.cols)
		ish.buckets[k] = append(ish.buckets[k], t)
	}
	ish.consumed += uint64(len(added))
	b := ish.buckets[string(key)]
	ish.mu.Unlock()
	return b
}

// probe returns the tuples of r whose projection onto cols equals vals
// (one value per column). When cols includes the partitioning column 0 the
// probe is routed to the single shard that can hold matches and returns
// that shard's bucket directly; otherwise every shard is consulted and the
// matches are merged into scratch. It returns the result and the (possibly
// grown) scratch buffer for reuse — the result may alias either a shared
// index bucket or the scratch, so callers must treat it as read-only and
// must not retain it past the next probe that reuses the same scratch.
func (e *Engine) probe(r store.Relation, cols []int, vals []string, kb *[]byte, scratch []rel.Tuple) ([]rel.Tuple, []rel.Tuple) {
	key := appendProbeKey((*kb)[:0], vals)
	*kb = key
	idx := e.getIndex(r, cols)
	if r.NumShards() == 1 {
		return probeShard(r, idx, 0, key), scratch
	}
	for i, c := range cols {
		if c == 0 {
			return probeShard(r, idx, r.ShardFor(vals[i]), key), scratch
		}
	}
	scratch = scratch[:0]
	for s := 0; s < r.NumShards(); s++ {
		scratch = append(scratch, probeShard(r, idx, s, key)...)
	}
	return scratch, scratch
}

// ProbeByKeyBatchYield invokes yield once per distinct tuple of pred whose
// projection onto cols equals one of keys, building (or incrementally
// catching up) the same lazy per-shard hash indexes that regular probe
// steps use. Every key must supply len(cols) values. Tuples stream out as
// the keys are probed — nothing beyond the dedup set is materialized —
// which is the server-side substrate for netpeer's chunked bind responses.
// Large batches over a sharded relation fan the probing out across a
// bounded worker pool; yields are serialized, but their order across keys
// is then unspecified. Returning ErrStop from yield ends the stream without
// error.
func (e *Engine) ProbeByKeyBatchYield(pred string, cols []int, keys [][]string, yield func(rel.Tuple) error) error {
	if len(cols) == 0 {
		return fmt.Errorf("engine: ProbeByKeyBatch on %s needs at least one column", pred)
	}
	r := e.data.Relation(pred)
	if r == nil {
		return nil
	}
	for _, c := range cols {
		if c < 0 || c >= r.Arity() {
			return fmt.Errorf("engine: ProbeByKeyBatch column %d out of range for %s/%d", c, pred, r.Arity())
		}
	}
	for _, key := range keys {
		if len(key) != len(cols) {
			return fmt.Errorf("engine: ProbeByKeyBatch key %v has %d values, want %d", key, len(key), len(cols))
		}
	}
	workers := min(scanWorkers(), r.NumShards())
	if r.NumShards() > 1 && workers > 1 && len(keys) >= parallelProbeMinKeys {
		return e.probeBatchParallel(r, cols, keys, workers, yield)
	}
	seen := map[string]bool{}
	var kb []byte
	var scratch []rel.Tuple
	for _, key := range keys {
		e.probes.Add(1)
		var tuples []rel.Tuple
		tuples, scratch = e.probe(r, cols, key, &kb, scratch)
		for _, t := range tuples {
			if k := t.Key(); !seen[k] {
				seen[k] = true
				if err := yield(t); err != nil {
					if errors.Is(err, ErrStop) {
						return nil
					}
					return err
				}
			}
		}
	}
	return nil
}

// probeBatchChunk is how many keys one parallel probe task claims at a
// time: large enough to amortize channel traffic, small enough to balance
// skewed batches.
const probeBatchChunk = 256

// probeBatchParallel fans a large bound-key batch out over the shard worker
// pool. Each worker probes its keys' shards independently (per-shard index
// locks keep them from contending unless the keys are skewed onto one
// shard); the dedup set and the yield are serialized under the fan-out's
// mutex.
func (e *Engine) probeBatchParallel(r store.Relation, cols []int, keys [][]string, workers int, yield func(rel.Tuple) error) error {
	f := &fanOut{}
	seen := map[string]bool{}
	chunks := (len(keys) + probeBatchChunk - 1) / probeBatchChunk
	err := f.dispatch(workers, chunks, func(queue <-chan int) {
		var kb []byte
		var scratch []rel.Tuple
		for ci := range queue {
			if f.stop.Load() {
				continue
			}
			start := ci * probeBatchChunk
			end := min(start+probeBatchChunk, len(keys))
			for _, key := range keys[start:end] {
				if f.stop.Load() {
					break
				}
				e.probes.Add(1)
				var tuples []rel.Tuple
				tuples, scratch = e.probe(r, cols, key, &kb, scratch)
				if len(tuples) == 0 {
					continue
				}
				f.yieldMu.Lock()
				// Re-check under the mutex: a sibling may have recorded
				// ErrStop (or an error) while this worker was blocked on
				// the lock, and the stream contract forbids yielding past
				// that point.
				if f.stop.Load() {
					f.yieldMu.Unlock()
					break
				}
				for _, t := range tuples {
					if k := t.Key(); !seen[k] {
						seen[k] = true
						if err := yield(t); err != nil {
							f.fail(err)
							break
						}
					}
				}
				f.yieldMu.Unlock()
			}
		}
	})
	// ProbeByKeyBatchYield's contract: ErrStop ends the stream cleanly.
	if err != nil && !errors.Is(err, ErrStop) {
		return err
	}
	return nil
}

// ProbeByKeyBatch is ProbeByKeyBatchYield materialized: it returns the
// distinct matching tuples as a slice (in unspecified order for large
// batches over sharded relations).
func (e *Engine) ProbeByKeyBatch(pred string, cols []int, keys [][]string) ([]rel.Tuple, error) {
	var out []rel.Tuple
	err := e.ProbeByKeyBatchYield(pred, cols, keys, func(t rel.Tuple) error {
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StreamScan invokes yield once per tuple of pred, shard by shard in
// insertion order within each shard (no sort, no materialization — the
// per-shard logs are already distinct). It is the streaming substrate for
// the netpeer server's "scan" op. Returning ErrStop from yield ends the
// stream without error. An absent relation yields nothing.
func (e *Engine) StreamScan(pred string, yield func(rel.Tuple) error) error {
	r := e.data.Relation(pred)
	if r == nil {
		return nil
	}
	e.scans.Add(1)
	for s := 0; s < r.NumShards(); s++ {
		for _, t := range r.ShardAddedSince(s, 0) {
			if err := yield(t); err != nil {
				if errors.Is(err, ErrStop) {
					return nil
				}
				return err
			}
		}
	}
	return nil
}

func colsKey(cols []int) string {
	var sb strings.Builder
	for i, c := range cols {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(c))
	}
	return sb.String()
}

// plan fetches a compiled plan from the cache under key, compiling q on a
// miss. EvalCQ/EvalUCQ key by the alpha-renamed canonical form (answers are
// invariant under variable renaming and emission is slot-based); Enumerate
// must key by the literal query instead, because its substitutions expose
// the plan's variable names.
func (e *Engine) plan(key string, q lang.CQ) (*Plan, error) {
	if v, ok := e.plans.lru.Get(key); ok {
		return v.(*Plan), nil
	}
	p, err := e.compile(q, -1)
	if err != nil {
		return nil, err
	}
	e.plans.lru.Put(key, p)
	return p, nil
}

// StreamCQ invokes yield once per distinct head tuple of q, in discovery
// order (no sort, no result materialization beyond the dedup set), so
// callers can forward rows incrementally — the netpeer server streams
// eval results over the wire through this hook instead of buffering the
// whole answer. When the plan opens with a full scan of a large sharded
// relation the scan fans out across shards, making discovery order
// unspecified; yields are always serialized. Returning ErrStop from yield
// ends the stream without error. The yielded tuple is freshly allocated;
// callers may keep it.
func (e *Engine) StreamCQ(q lang.CQ, yield func(rel.Tuple) error) error {
	p, err := e.plan(q.Canonical(), q)
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	err = e.run(p, nil, func(slots []string) error {
		head := make(rel.Tuple, len(p.head))
		for i, h := range p.head {
			if h.slot >= 0 {
				head[i] = slots[h.slot]
			} else {
				head[i] = h.constVal
			}
		}
		if k := head.Key(); !seen[k] {
			seen[k] = true
			return yield(head)
		}
		return nil
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// EvalCQ evaluates a conjunctive query with set semantics and returns the
// distinct head tuples, sorted — the indexed equivalent of rel.EvalCQ.
func (e *Engine) EvalCQ(q lang.CQ) ([]rel.Tuple, error) {
	var out []rel.Tuple
	if err := e.StreamCQ(q, func(t rel.Tuple) error {
		out = append(out, t)
		return nil
	}); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// maxUCQFanout caps the worker pool evaluating UCQ disjuncts concurrently
// (mirrors the netpeer executor's fan-out, so local and distributed UCQ
// evaluation share the same concurrency shape).
const maxUCQFanout = 8

// EvalUCQ evaluates a union of conjunctive queries, returning the distinct
// union of the disjuncts' answers, sorted — the indexed equivalent of
// rel.EvalUCQ. Disjuncts are independent and concurrent evaluations are
// safe with each other, so they fan out over a bounded worker pool; on
// error the first failing disjunct (by position) wins.
func (e *Engine) EvalUCQ(u lang.UCQ) ([]rel.Tuple, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	n := len(u.Disjuncts)
	groups := make([][]rel.Tuple, n)
	if n <= 1 {
		for i, q := range u.Disjuncts {
			rows, err := e.EvalCQ(q)
			if err != nil {
				return nil, err
			}
			groups[i] = rows
		}
		return rel.DistinctSorted(groups...), nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < min(n, maxUCQFanout); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				groups[i], errs[i] = e.EvalCQ(u.Disjuncts[i])
			}
		}()
	}
	for i := range u.Disjuncts {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rel.DistinctSorted(groups...), nil
}

// Enumerate invokes yield once per substitution grounding every atom of
// body in the instance (comparisons in comps are applied as filters once
// bound). Returning ErrStop from yield ends the enumeration without error.
// This is the indexed substrate for callers that need raw matches rather
// than head tuples (the chase's TGD matching).
func (e *Engine) Enumerate(body []lang.Atom, comps []lang.Comparison, yield func(lang.Subst) error) error {
	var head []lang.Term
	for _, a := range body {
		head = a.Vars(head)
	}
	q := lang.CQ{Head: lang.Atom{Pred: "_enum", Args: head}, Body: body, Comps: comps}
	// Literal key, NOT Canonical(): two alpha-equivalent bodies with
	// different variable names must not share a plan here, since the
	// yielded substitutions carry the plan's variable names.
	p, err := e.plan("enum|"+q.String(), q)
	if err != nil {
		return err
	}
	err = e.run(p, nil, func(slots []string) error {
		s := lang.NewSubst()
		for i, name := range p.slotNames {
			s[name] = lang.Const(slots[i])
		}
		return yield(s)
	})
	if errors.Is(err, ErrStop) {
		return nil
	}
	return err
}

// ExistsMatch reports whether at least one substitution grounds every atom
// in the instance. Unlike Enumerate it never caches the plan: its intended
// callers (the chase's head-satisfaction test) embed per-match constants,
// so each query is one-shot and caching would only churn the plan LRU.
func (e *Engine) ExistsMatch(atoms []lang.Atom) (bool, error) {
	var head []lang.Term
	for _, a := range atoms {
		head = a.Vars(head)
	}
	q := lang.CQ{Head: lang.Atom{Pred: "_exists", Args: head}, Body: atoms}
	p, err := e.compile(q, -1)
	if err != nil {
		return false, err
	}
	found := false
	err = e.run(p, nil, func([]string) error {
		found = true
		return ErrStop
	})
	if err != nil && !errors.Is(err, ErrStop) {
		return false, err
	}
	return found, nil
}

// EvalDatalog computes the least fixpoint of the datalog program given by
// rules over base using semi-naive evaluation with indexed joins: per round
// the pivot atom scans the previous round's delta and the remaining atoms
// probe hash indexes on the accumulating total instance. It returns a new
// instance containing base plus all derived facts — the indexed equivalent
// of rel.EvalDatalog.
func EvalDatalog(rules []lang.CQ, base *rel.Instance) (*rel.Instance, error) {
	for _, r := range rules {
		if !r.IsSafe() {
			return nil, fmt.Errorf("engine: unsafe rule %s", r)
		}
	}
	total := base.Clone()
	e := New(total)

	// One plan per (rule, pivot): the pivot atom is forced first and reads
	// the round's delta; the rest are ordered greedily and probe total.
	type pivotPlan struct {
		rule lang.CQ
		plan *Plan
	}
	var plans []pivotPlan
	for _, rule := range rules {
		for pivot := range rule.Body {
			p, err := e.compile(rule, pivot)
			if err != nil {
				return nil, err
			}
			plans = append(plans, pivotPlan{rule: rule, plan: p})
		}
	}

	delta := base.Clone()
	for {
		// Per-round deltas are sharded like the base instance: delta pivot
		// scans route through the same per-shard worker pool as full scans
		// (parallelScanTarget), so a large round's delta is drained in
		// parallel instead of single-shard.
		next := rel.NewInstanceSharded(total.ShardCount())
		for _, pp := range plans {
			if delta.Relation(pp.plan.steps[0].pred) == nil {
				continue
			}
			p := pp.plan
			err := e.run(p, delta, func(slots []string) error {
				tup := make(rel.Tuple, len(p.head))
				for i, h := range p.head {
					if h.slot >= 0 {
						tup[i] = slots[h.slot]
					} else {
						tup[i] = h.constVal
					}
				}
				if r := total.Relation(p.headPred); r == nil || !r.Contains(tup) {
					if _, err := next.Add(p.headPred, tup); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		if next.Size() == 0 {
			return total, nil
		}
		for _, pred := range next.Relations() {
			for _, t := range next.Relation(pred).Tuples() {
				if _, err := total.Add(pred, t); err != nil {
					return nil, err
				}
			}
		}
		delta = next
	}
}
