package engine

import (
	"fmt"
	"testing"

	"repro/internal/lang"
	"repro/internal/rel"
)

// BenchmarkEngineUCQFanout measures the local UCQ disjunct fan-out (the
// same bounded worker pool the netpeer executor uses): 16 disjuncts, each
// a two-atom indexed join, evaluated through the parallel EvalUCQ versus a
// sequential disjunct loop over the same engine.
func BenchmarkEngineUCQFanout(b *testing.B) {
	const (
		rows      = 20000
		disjuncts = 16
	)
	ins := rel.NewInstance()
	for i := 0; i < rows; i++ {
		ins.MustAdd("E.big", fmt.Sprintf("k%d", i%1000), fmt.Sprintf("p%d", i))
	}
	for d := 0; d < disjuncts; d++ {
		ins.MustAdd(fmt.Sprintf("E.k%d", d), fmt.Sprintf("k%d", d*37))
	}
	var u lang.UCQ
	for d := 0; d < disjuncts; d++ {
		u.Add(lang.CQ{
			Head: lang.NewAtom("q", lang.Var("x"), lang.Var("y")),
			Body: []lang.Atom{
				lang.NewAtom(fmt.Sprintf("E.k%d", d), lang.Var("x")),
				lang.NewAtom("E.big", lang.Var("x"), lang.Var("y")),
			},
		})
	}
	e := New(ins)
	if rows, err := e.EvalUCQ(u); err != nil || len(rows) == 0 {
		b.Fatalf("degenerate fixture: %d rows (%v)", len(rows), err)
	}

	b.Run("fanout", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.EvalUCQ(u); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			groups := make([][]rel.Tuple, len(u.Disjuncts))
			for j, q := range u.Disjuncts {
				rows, err := e.EvalCQ(q)
				if err != nil {
					b.Fatal(err)
				}
				groups[j] = rows
			}
			if out := rel.DistinctSorted(groups...); len(out) == 0 {
				b.Fatal("no rows")
			}
		}
	})
}
