package engine

import (
	"fmt"
	"testing"

	"repro/internal/lang"
	"repro/internal/rel"
)

// BenchmarkEngineUCQFanout measures the local UCQ disjunct fan-out (the
// same bounded worker pool the netpeer executor uses): 16 disjuncts, each
// a two-atom indexed join, evaluated through the parallel EvalUCQ versus a
// sequential disjunct loop over the same engine.
func BenchmarkEngineUCQFanout(b *testing.B) {
	const (
		rows      = 20000
		disjuncts = 16
	)
	ins := rel.NewInstance()
	for i := 0; i < rows; i++ {
		ins.MustAdd("E.big", fmt.Sprintf("k%d", i%1000), fmt.Sprintf("p%d", i))
	}
	for d := 0; d < disjuncts; d++ {
		ins.MustAdd(fmt.Sprintf("E.k%d", d), fmt.Sprintf("k%d", d*37))
	}
	var u lang.UCQ
	for d := 0; d < disjuncts; d++ {
		u.Add(lang.CQ{
			Head: lang.NewAtom("q", lang.Var("x"), lang.Var("y")),
			Body: []lang.Atom{
				lang.NewAtom(fmt.Sprintf("E.k%d", d), lang.Var("x")),
				lang.NewAtom("E.big", lang.Var("x"), lang.Var("y")),
			},
		})
	}
	e := New(ins)
	if rows, err := e.EvalUCQ(u); err != nil || len(rows) == 0 {
		b.Fatalf("degenerate fixture: %d rows (%v)", len(rows), err)
	}

	b.Run("fanout", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.EvalUCQ(u); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			groups := make([][]rel.Tuple, len(u.Disjuncts))
			for j, q := range u.Disjuncts {
				rows, err := e.EvalCQ(q)
				if err != nil {
					b.Fatal(err)
				}
				groups[j] = rows
			}
			if out := rel.DistinctSorted(groups...); len(out) == 0 {
				b.Fatal("no rows")
			}
		}
	})
}

// shardCountsUnderTest are the layouts the sharding benchmarks compare:
// the unsharded baseline and the default (one shard per CPU). On a
// GOMAXPROCS >= 4 machine the sharded scan target is a >= 2x speedup; at
// GOMAXPROCS = 1 both layouts take the sequential path and must be within
// noise of each other.
func shardCountsUnderTest() []int {
	counts := []int{1}
	if n := rel.DefaultShards(); n > 1 {
		counts = append(counts, n)
	} else {
		counts = append(counts, 4) // exercise the sharded layout anyway
	}
	return counts
}

// BenchmarkShardedScan: a scan-driven hash join — R and S have equal
// cardinality (so the planner's tie-break scans R, the first body atom)
// and each scanned R tuple probes S's index, with 1% of probes landing.
// The opening 100k-row scan is the part that fans out across shards; the
// per-tuple probe work below it is what the workers parallelize.
func BenchmarkShardedScan(b *testing.B) {
	const rows = 100000
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x"), lang.Var("z")),
		Body: []lang.Atom{
			lang.NewAtom("R", lang.Var("x"), lang.Var("y")),
			lang.NewAtom("S", lang.Var("y"), lang.Var("z")),
		},
	}
	for _, shards := range shardCountsUnderTest() {
		ins := rel.NewInstanceSharded(shards)
		for i := 0; i < rows; i++ {
			ins.MustAdd("R", fmt.Sprintf("k%07d", i), fmt.Sprintf("y%d", i))
		}
		for i := 0; i < rows; i++ {
			// Only the top 1% of S's join keys exist in R.
			ins.MustAdd("S", fmt.Sprintf("y%d", i+rows-rows/100), fmt.Sprintf("w%d", i))
		}
		e := New(ins)
		if out, err := e.EvalCQ(q); err != nil || len(out) != rows/100 {
			b.Fatalf("fixture: %d rows (%v)", len(out), err)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.EvalCQ(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedProbe: a 20k-key ProbeByKeyBatch over a 200k-row
// relation — the server-side bind-join substrate — fanned out across the
// per-shard indexes.
func BenchmarkShardedProbe(b *testing.B) {
	const rows, nkeys = 200000, 20000
	keys := make([][]string, nkeys)
	for i := range keys {
		keys[i] = []string{fmt.Sprintf("k%d", i*7%rows)}
	}
	for _, shards := range shardCountsUnderTest() {
		ins := rel.NewInstanceSharded(shards)
		for i := 0; i < rows; i++ {
			ins.MustAdd("R", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
		}
		e := New(ins)
		if out, err := e.ProbeByKeyBatch("R", []int{0}, keys); err != nil || len(out) != nkeys {
			b.Fatalf("fixture: %d tuples (%v)", len(out), err)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				if err := e.ProbeByKeyBatchYield("R", []int{0}, keys, func(rel.Tuple) error {
					n++
					return nil
				}); err != nil || n != nkeys {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}

// BenchmarkPlannerStats: two relations of equal cardinality whose join
// columns differ only in distinct-value count. The uniform per-bound-arg
// discount ties them and joins through the 50-rows-per-key relation first
// (a 100k-row intermediate); the distinct-value model sees the
// nearly-unique column and filters through it first (a 20-row
// intermediate). Same answers, radically different work.
func BenchmarkPlannerStats(b *testing.B) {
	const (
		aRows   = 2000
		fanout  = 50
		overlap = 20
	)
	ins := rel.NewInstance()
	for i := 0; i < aRows; i++ {
		ins.MustAdd("A", fmt.Sprintf("a%d", i), fmt.Sprintf("y%d", i))
	}
	for i := 0; i < aRows; i++ {
		for j := 0; j < fanout; j++ {
			ins.MustAdd("Fat", fmt.Sprintf("y%d", i), fmt.Sprintf("z%d", i*fanout+j))
		}
	}
	for i := 0; i < aRows*fanout; i++ {
		y := fmt.Sprintf("ly%d", i) // disjoint from A
		if i < overlap {
			y = fmt.Sprintf("y%d", i*100) // the few joinable values
		}
		ins.MustAdd("Lean", y, fmt.Sprintf("w%d", i))
	}
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x"), lang.Var("z"), lang.Var("w")),
		Body: []lang.Atom{
			lang.NewAtom("A", lang.Var("x"), lang.Var("y")),
			lang.NewAtom("Fat", lang.Var("y"), lang.Var("z")),
			lang.NewAtom("Lean", lang.Var("y"), lang.Var("w")),
		},
	}
	stats := New(ins)
	uniform := New(ins)
	uniform.uniformCost = true
	want, err := stats.EvalCQ(q)
	if err != nil || len(want) != overlap*fanout {
		b.Fatalf("fixture: %d rows (%v)", len(want), err)
	}
	if got, err := uniform.EvalCQ(q); err != nil || len(got) != len(want) {
		b.Fatalf("uniform fixture: %d rows (%v)", len(got), err)
	}
	b.Run("stats", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stats.EvalCQ(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := uniform.EvalCQ(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
