package engine

import (
	"container/list"
	"sync"
)

// LRU is a synchronized fixed-capacity least-recently-used cache. It backs
// the engine's compiled-plan cache and the pdms answer cache; values are
// opaque. The zero value is unusable; use NewLRU.
type LRU struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type lruEntry struct {
	key string
	val any
}

// NewLRU returns an empty cache holding at most capacity entries
// (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached value and whether it was present, promoting the
// entry to most-recently-used.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or replaces the value for key, evicting the least-recently-
// used entry when over capacity.
func (c *LRU) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the current number of entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every entry (hit/miss counters are kept).
func (c *LRU) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[string]*list.Element{}
}

// CacheStats reports cumulative hit/miss counts.
type CacheStats struct {
	Hits, Misses uint64
}

// Stats returns cumulative hit/miss counts.
func (c *LRU) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses}
}
