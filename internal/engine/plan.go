package engine

import (
	"fmt"
	"math"

	"repro/internal/lang"
	"repro/internal/rel"
)

// Plan is a compiled evaluation order for one conjunctive query: body atoms
// reordered by estimated selectivity, each lowered to an index probe (when
// any of its positions are bound at that point) or a full scan, with
// comparison predicates attached to the earliest step that grounds them.
// Variables live in a flat slot array instead of substitution maps. A plan
// depends only on the query shape (plus cardinality estimates at compile
// time, which affect ordering but never correctness), so plans are cached
// and reused across evaluations and — via a shared PlanCache — engines.
type Plan struct {
	steps     []planStep
	nslots    int
	slotNames []string // slot -> variable name
	headPred  string
	head      []outPart
	// preComps are variable-free comparisons, checked once per run.
	preComps []compiledComp
	// lateComps are comparisons with variables never bound by the body;
	// evaluating them on a complete match is an error (mirrors rel.EvalCQ).
	lateComps []lang.Comparison
}

// outPart emits one head position: from a slot (slot >= 0) or a constant.
type outPart struct {
	slot     int
	constVal string
}

// posSlot pairs a tuple position with a slot.
type posSlot struct {
	pos, slot int
}

// posConst pairs a tuple position with a constant value.
type posConst struct {
	pos int
	val string
}

// posPos pairs two tuple positions that must hold equal values.
type posPos struct {
	pos, first int
}

type planStep struct {
	pred  string
	arity int
	// delta: this step scans the per-round delta instance handed to run
	// (semi-naive datalog pivot) instead of the engine's instance.
	delta bool
	// Probe path (len(keyCols) > 0, never with delta): the index key is the
	// projection onto keyCols, assembled from keyParts.
	keyCols  []int
	keyParts []outPart
	// Scan path: positions that must equal a constant.
	checkConsts []posConst
	// Delta-scan path: positions whose variable was bound by an earlier
	// step (on the probe path these are key columns instead).
	checkSlots []posSlot
	// Both paths: repeated variables within the atom — the two tuple
	// positions must agree (checked on the tuple itself, since the slot is
	// not written until the binds below run).
	checkPos []posPos
	// binds writes tuple positions into freshly-bound slots.
	binds []posSlot
	// comps become fully ground after this step's binds.
	comps []compiledComp
}

// compiledComp is a comparison with both sides resolved to a slot or const.
type compiledComp struct {
	op   lang.CompOp
	l, r outPart
}

func (c compiledComp) eval(slots []string) bool {
	lv, rv := c.l.constVal, c.r.constVal
	if c.l.slot >= 0 {
		lv = slots[c.l.slot]
	}
	if c.r.slot >= 0 {
		rv = slots[c.r.slot]
	}
	return c.op.EvalConst(lang.Const(lv), lang.Const(rv))
}

// OrderBody returns an evaluation order for the body atoms under the
// engine's greedy selectivity heuristic: repeatedly take the atom with the
// lowest estimated cost (cardOf(pred)+1)/8^known, where known counts
// constant arguments plus variables bound by earlier atoms (a bound
// position narrows an index probe, so more bound arguments -> earlier).
// forcePivot >= 0 pins that atom first (datalog semi-naive); -1 orders all
// atoms greedily. Shared by compile and netpeer's cross-peer executor so
// local and distributed join orders follow the same cost model.
func OrderBody(body []lang.Atom, cardOf func(pred string) int, forcePivot int) []int {
	bound := map[string]bool{}
	var order []int
	taken := make([]bool, len(body))
	if forcePivot >= 0 {
		order = append(order, forcePivot)
		taken[forcePivot] = true
		for _, t := range body[forcePivot].Args {
			if t.IsVar() {
				bound[t.Name] = true
			}
		}
	}
	for len(order) < len(body) {
		best, bestCost := -1, math.Inf(1)
		for i, a := range body {
			if taken[i] {
				continue
			}
			known := 0
			for _, t := range a.Args {
				if t.IsConst() || bound[t.Name] {
					known++
				}
			}
			cost := float64(cardOf(a.Pred)+1) / math.Pow(8, float64(known))
			if cost < bestCost {
				best, bestCost = i, cost
			}
		}
		order = append(order, best)
		taken[best] = true
		for _, t := range body[best].Args {
			if t.IsVar() {
				bound[t.Name] = true
			}
		}
	}
	return order
}

// compile builds a plan for q. forcePivot >= 0 pins body atom forcePivot as
// the first step and marks it as a delta scan (datalog semi-naive); -1
// orders all atoms greedily.
func (e *Engine) compile(q lang.CQ, forcePivot int) (*Plan, error) {
	e.plansCompiled.Add(1)
	if !q.IsSafe() {
		return nil, fmt.Errorf("engine: unsafe query %s", q)
	}
	for _, a := range q.Body {
		if r := e.ins.Relation(a.Pred); r != nil && r.Arity != a.Arity() {
			return nil, fmt.Errorf("engine: atom %s arity %d, relation has %d", a, a.Arity(), r.Arity)
		}
	}

	p := &Plan{headPred: q.Head.Pred}
	slotOf := map[string]int{}
	getSlot := func(name string) int {
		if s, ok := slotOf[name]; ok {
			return s
		}
		s := len(p.slotNames)
		slotOf[name] = s
		p.slotNames = append(p.slotNames, name)
		return s
	}

	order := OrderBody(q.Body, e.card, forcePivot)

	// Lower each atom to a step.
	boundSlots := map[string]bool{} // vars bound by *earlier* steps
	for stepIdx, bi := range order {
		a := q.Body[bi]
		st := planStep{pred: a.Pred, arity: a.Arity(), delta: forcePivot >= 0 && stepIdx == 0}
		firstPos := map[string]int{} // var -> position of first in-step occurrence
		for pos, t := range a.Args {
			switch {
			case t.IsConst():
				if !st.delta {
					st.keyCols = append(st.keyCols, pos)
					st.keyParts = append(st.keyParts, outPart{slot: -1, constVal: t.Name})
				} else {
					st.checkConsts = append(st.checkConsts, posConst{pos: pos, val: t.Name})
				}
			case boundSlots[t.Name] && !st.delta:
				st.keyCols = append(st.keyCols, pos)
				st.keyParts = append(st.keyParts, outPart{slot: getSlot(t.Name)})
			case boundSlots[t.Name]:
				st.checkSlots = append(st.checkSlots, posSlot{pos: pos, slot: getSlot(t.Name)})
			default:
				if fp, ok := firstPos[t.Name]; ok {
					st.checkPos = append(st.checkPos, posPos{pos: pos, first: fp})
				} else {
					firstPos[t.Name] = pos
					st.binds = append(st.binds, posSlot{pos: pos, slot: getSlot(t.Name)})
				}
			}
		}
		for v := range firstPos {
			boundSlots[v] = true
		}
		p.steps = append(p.steps, st)
	}

	// Attach comparisons to the earliest point at which they are ground.
	for _, c := range q.Comps {
		vars := c.Vars(nil)
		if len(vars) == 0 {
			p.preComps = append(p.preComps, compileComp(c, slotOf))
			continue
		}
		attached := false
		seen := map[string]bool{}
		for i := range p.steps {
			for _, b := range p.steps[i].binds {
				seen[p.slotNames[b.slot]] = true
			}
			ok := true
			for _, v := range vars {
				if !seen[v.Name] {
					ok = false
					break
				}
			}
			if ok {
				cc := compileComp(c, slotOf)
				p.steps[i].comps = append(p.steps[i].comps, cc)
				attached = true
				break
			}
		}
		if !attached {
			p.lateComps = append(p.lateComps, c)
		}
	}

	// Head emission. Safety guarantees every head variable is bound.
	p.head = make([]outPart, len(q.Head.Args))
	for i, t := range q.Head.Args {
		if t.IsConst() {
			p.head[i] = outPart{slot: -1, constVal: t.Name}
		} else {
			s, ok := slotOf[t.Name]
			if !ok {
				return nil, fmt.Errorf("engine: unbound head variable %s in %s", t, q)
			}
			p.head[i] = outPart{slot: s}
		}
	}
	p.nslots = len(p.slotNames)
	return p, nil
}

func compileComp(c lang.Comparison, slotOf map[string]int) compiledComp {
	part := func(t lang.Term) outPart {
		if t.IsConst() {
			return outPart{slot: -1, constVal: t.Name}
		}
		return outPart{slot: slotOf[t.Name]}
	}
	return compiledComp{op: c.Op, l: part(c.L), r: part(c.R)}
}

// run executes the plan, invoking yield with the slot array for every body
// match. delta supplies the scan source for delta steps (datalog); nil
// otherwise. The slot array is reused across yields — callers must copy
// what they keep.
func (e *Engine) run(p *Plan, delta *rel.Instance, yield func(slots []string) error) error {
	for _, c := range p.preComps {
		if !c.eval(nil) {
			return nil
		}
	}
	slots := make([]string, p.nslots)
	var key []byte
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(p.steps) {
			if len(p.lateComps) > 0 {
				return fmt.Errorf("engine: comparison %s not bound by body", p.lateComps[0])
			}
			return yield(slots)
		}
		st := &p.steps[i]
		var tuples []rel.Tuple
		if st.delta {
			r := delta.Relation(st.pred)
			if r == nil {
				return nil
			}
			if r.Arity != st.arity {
				return fmt.Errorf("engine: atom %s/%d, delta relation has arity %d", st.pred, st.arity, r.Arity)
			}
			e.scans.Add(1)
			tuples = r.AddedSince(0)
		} else {
			r := e.ins.Relation(st.pred)
			if r == nil {
				return nil
			}
			if r.Arity != st.arity {
				return fmt.Errorf("engine: atom %s/%d, relation has arity %d", st.pred, st.arity, r.Arity)
			}
			if len(st.keyCols) > 0 {
				key = key[:0]
				for _, part := range st.keyParts {
					v := part.constVal
					if part.slot >= 0 {
						v = slots[part.slot]
					}
					if len(st.keyParts) == 1 {
						key = append(key, v...)
					} else {
						key = AppendKeyPart(key, v)
					}
				}
				e.probes.Add(1)
				tuples = e.probe(r, st.keyCols, string(key))
			} else {
				e.scans.Add(1)
				tuples = r.AddedSince(0)
			}
		}
	next:
		for _, tup := range tuples {
			for _, cc := range st.checkConsts {
				if tup[cc.pos] != cc.val {
					continue next
				}
			}
			for _, c := range st.checkSlots {
				if tup[c.pos] != slots[c.slot] {
					continue next
				}
			}
			for _, c := range st.checkPos {
				if tup[c.pos] != tup[c.first] {
					continue next
				}
			}
			for _, b := range st.binds {
				slots[b.slot] = tup[b.pos]
			}
			for _, c := range st.comps {
				if !c.eval(slots) {
					continue next
				}
			}
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}
