package engine

import (
	"fmt"
	"sync/atomic"

	"repro/internal/lang"
	"repro/internal/rel"
	"repro/internal/store"
)

// Plan is a compiled evaluation order for one conjunctive query: body atoms
// reordered by estimated selectivity, each lowered to an index probe (when
// any of its positions are bound at that point) or a full scan, with
// comparison predicates attached to the earliest step that grounds them.
// Variables live in a flat slot array instead of substitution maps. A plan
// depends only on the query shape (plus cardinality and distinct-value
// estimates at compile time, which affect ordering but never correctness),
// so plans are cached and reused across evaluations and — via a shared
// PlanCache — engines.
type Plan struct {
	steps     []planStep
	nslots    int
	slotNames []string // slot -> variable name
	headPred  string
	head      []outPart
	// preComps are variable-free comparisons, checked once per run.
	preComps []compiledComp
	// lateComps are comparisons with variables never bound by the body;
	// evaluating them on a complete match is an error (mirrors rel.EvalCQ).
	lateComps []lang.Comparison
}

// outPart emits one head position: from a slot (slot >= 0) or a constant.
type outPart struct {
	slot     int
	constVal string
}

// posSlot pairs a tuple position with a slot.
type posSlot struct {
	pos, slot int
}

// posConst pairs a tuple position with a constant value.
type posConst struct {
	pos int
	val string
}

// posPos pairs two tuple positions that must hold equal values.
type posPos struct {
	pos, first int
}

type planStep struct {
	pred  string
	arity int
	// delta: this step scans the per-round delta instance handed to run
	// (semi-naive datalog pivot) instead of the engine's instance.
	delta bool
	// Probe path (len(keyCols) > 0, never with delta): the index key is the
	// projection onto keyCols, assembled from keyParts.
	keyCols  []int
	keyParts []outPart
	// Scan path: positions that must equal a constant.
	checkConsts []posConst
	// Delta-scan path: positions whose variable was bound by an earlier
	// step (on the probe path these are key columns instead).
	checkSlots []posSlot
	// Both paths: repeated variables within the atom — the two tuple
	// positions must agree (checked on the tuple itself, since the slot is
	// not written until the binds below run).
	checkPos []posPos
	// binds writes tuple positions into freshly-bound slots.
	binds []posSlot
	// comps become fully ground after this step's binds.
	comps []compiledComp
}

// compiledComp is a comparison with both sides resolved to a slot or const.
type compiledComp struct {
	op   lang.CompOp
	l, r outPart
}

func (c compiledComp) eval(slots []string) bool {
	lv, rv := c.l.constVal, c.r.constVal
	if c.l.slot >= 0 {
		lv = slots[c.l.slot]
	}
	if c.r.slot >= 0 {
		rv = slots[c.r.slot]
	}
	return c.op.EvalConst(lang.Const(lv), lang.Const(rv))
}

// ColStats is the planner's per-relation statistics input: the relation's
// cardinality and, when available, the approximate distinct-value count per
// column (rel.Stats). A nil or short Distinct falls back to the uniform
// per-bound-argument discount for the uncovered positions.
type ColStats struct {
	Card     int
	Distinct []float64
}

// uniformSel is the fallback per-bound-position selectivity used when no
// distinct-value statistic covers a column — the pre-statistics cost
// model's fixed discount (one eighth per bound argument).
const uniformSel = 1.0 / 8

// OrderBodyStats returns an evaluation order for the body atoms under the
// engine's greedy selectivity heuristic: repeatedly take the atom with the
// lowest estimated result cardinality, where binding a position (by a
// constant or a variable bound by an earlier atom) scales the atom's
// cardinality by that column's selectivity — 1/distinct(column) when
// statsOf supplies a distinct-value estimate for it, else the uniform 1/8
// discount. A column with many distinct values therefore makes its atom a
// sharply selective probe, and one with few distinct values no longer
// masquerades as selective just because something is bound. forcePivot >= 0
// pins that atom first (datalog semi-naive); -1 orders all atoms greedily.
func OrderBodyStats(body []lang.Atom, statsOf func(pred string) ColStats, forcePivot int) []int {
	bound := map[string]bool{}
	var order []int
	taken := make([]bool, len(body))
	bind := func(i int) {
		order = append(order, i)
		taken[i] = true
		for _, t := range body[i].Args {
			if t.IsVar() {
				bound[t.Name] = true
			}
		}
	}
	if forcePivot >= 0 {
		bind(forcePivot)
	}
	stats := map[string]ColStats{}
	statFor := func(pred string) ColStats {
		if st, ok := stats[pred]; ok {
			return st
		}
		st := statsOf(pred)
		stats[pred] = st
		return st
	}
	for len(order) < len(body) {
		best := -1
		bestCost := 0.0
		for i, a := range body {
			if taken[i] {
				continue
			}
			st := statFor(a.Pred)
			cost := float64(st.Card) + 1
			for pos, t := range a.Args {
				if !t.IsConst() && !bound[t.Name] {
					continue
				}
				sel := uniformSel
				if pos < len(st.Distinct) && st.Distinct[pos] >= 1 {
					sel = 1 / st.Distinct[pos]
				}
				cost *= sel
			}
			if best < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		bind(best)
	}
	return order
}

// OrderBody is OrderBodyStats with cardinalities only: every bound position
// gets the uniform discount. Kept as the shared cost model for callers that
// have no column statistics (netpeer's cross-peer executor only sees the
// cardinalities peers advertise), so local and distributed join orders
// follow the same heuristic family.
func OrderBody(body []lang.Atom, cardOf func(pred string) int, forcePivot int) []int {
	return OrderBodyStats(body, func(pred string) ColStats {
		return ColStats{Card: cardOf(pred)}
	}, forcePivot)
}

// compile builds a plan for q. forcePivot >= 0 pins body atom forcePivot as
// the first step and marks it as a delta scan (datalog semi-naive); -1
// orders all atoms greedily.
func (e *Engine) compile(q lang.CQ, forcePivot int) (*Plan, error) {
	e.plansCompiled.Add(1)
	if !q.IsSafe() {
		return nil, fmt.Errorf("engine: unsafe query %s", q)
	}
	for _, a := range q.Body {
		if r := e.data.Relation(a.Pred); r != nil && r.Arity() != a.Arity() {
			return nil, fmt.Errorf("engine: atom %s arity %d, relation has %d", a, a.Arity(), r.Arity())
		}
	}

	p := &Plan{headPred: q.Head.Pred}
	slotOf := map[string]int{}
	getSlot := func(name string) int {
		if s, ok := slotOf[name]; ok {
			return s
		}
		s := len(p.slotNames)
		slotOf[name] = s
		p.slotNames = append(p.slotNames, name)
		return s
	}

	var order []int
	if e.uniformCost {
		order = OrderBody(q.Body, e.card, forcePivot)
	} else {
		order = OrderBodyStats(q.Body, e.colStats, forcePivot)
	}

	// Lower each atom to a step.
	boundSlots := map[string]bool{} // vars bound by *earlier* steps
	for stepIdx, bi := range order {
		a := q.Body[bi]
		st := planStep{pred: a.Pred, arity: a.Arity(), delta: forcePivot >= 0 && stepIdx == 0}
		firstPos := map[string]int{} // var -> position of first in-step occurrence
		for pos, t := range a.Args {
			switch {
			case t.IsConst():
				if !st.delta {
					st.keyCols = append(st.keyCols, pos)
					st.keyParts = append(st.keyParts, outPart{slot: -1, constVal: t.Name})
				} else {
					st.checkConsts = append(st.checkConsts, posConst{pos: pos, val: t.Name})
				}
			case boundSlots[t.Name] && !st.delta:
				st.keyCols = append(st.keyCols, pos)
				st.keyParts = append(st.keyParts, outPart{slot: getSlot(t.Name)})
			case boundSlots[t.Name]:
				st.checkSlots = append(st.checkSlots, posSlot{pos: pos, slot: getSlot(t.Name)})
			default:
				if fp, ok := firstPos[t.Name]; ok {
					st.checkPos = append(st.checkPos, posPos{pos: pos, first: fp})
				} else {
					firstPos[t.Name] = pos
					st.binds = append(st.binds, posSlot{pos: pos, slot: getSlot(t.Name)})
				}
			}
		}
		for v := range firstPos {
			boundSlots[v] = true
		}
		p.steps = append(p.steps, st)
	}

	// Attach comparisons to the earliest point at which they are ground.
	for _, c := range q.Comps {
		vars := c.Vars(nil)
		if len(vars) == 0 {
			p.preComps = append(p.preComps, compileComp(c, slotOf))
			continue
		}
		attached := false
		seen := map[string]bool{}
		for i := range p.steps {
			for _, b := range p.steps[i].binds {
				seen[p.slotNames[b.slot]] = true
			}
			ok := true
			for _, v := range vars {
				if !seen[v.Name] {
					ok = false
					break
				}
			}
			if ok {
				cc := compileComp(c, slotOf)
				p.steps[i].comps = append(p.steps[i].comps, cc)
				attached = true
				break
			}
		}
		if !attached {
			p.lateComps = append(p.lateComps, c)
		}
	}

	// Head emission. Safety guarantees every head variable is bound.
	p.head = make([]outPart, len(q.Head.Args))
	for i, t := range q.Head.Args {
		if t.IsConst() {
			p.head[i] = outPart{slot: -1, constVal: t.Name}
		} else {
			s, ok := slotOf[t.Name]
			if !ok {
				return nil, fmt.Errorf("engine: unbound head variable %s in %s", t, q)
			}
			p.head[i] = outPart{slot: s}
		}
	}
	p.nslots = len(p.slotNames)
	return p, nil
}

func compileComp(c lang.Comparison, slotOf map[string]int) compiledComp {
	part := func(t lang.Term) outPart {
		if t.IsConst() {
			return outPart{slot: -1, constVal: t.Name}
		}
		return outPart{slot: slotOf[t.Name]}
	}
	return compiledComp{op: c.Op, l: part(c.L), r: part(c.R)}
}

// runCtx is the per-evaluation (per-worker, on the parallel path) state of
// one plan execution: the slot array, reusable key and probe-merge buffers,
// and an optional cancellation flag shared with sibling workers.
type runCtx struct {
	e     *Engine
	p     *Plan
	delta *rel.Instance
	yield func(slots []string) error
	slots []string
	key   []byte
	vals  []string
	// bufs holds one probe-merge scratch buffer per plan step: step i's
	// iteration over a merged probe result finishes before any other probe
	// at depth i runs in the same context, so per-depth reuse is safe.
	bufs [][]rel.Tuple
	// stop, when non-nil, is the shared cancellation flag of a parallel
	// scan; checked per tuple so sibling workers drain quickly after an
	// error or early stop.
	stop *atomic.Bool
}

func newRunCtx(e *Engine, p *Plan, delta *rel.Instance, yield func([]string) error) *runCtx {
	return &runCtx{
		e:     e,
		p:     p,
		delta: delta,
		yield: yield,
		slots: make([]string, p.nslots),
		bufs:  make([][]rel.Tuple, len(p.steps)),
	}
}

// step executes plan step i and everything below it.
func (rc *runCtx) step(i int) error {
	p := rc.p
	if i == len(p.steps) {
		if len(p.lateComps) > 0 {
			return fmt.Errorf("engine: comparison %s not bound by body", p.lateComps[0])
		}
		return rc.yield(rc.slots)
	}
	st := &p.steps[i]
	if st.delta {
		r := rc.delta.Relation(st.pred)
		if r == nil {
			return nil
		}
		if r.Arity() != st.arity {
			return fmt.Errorf("engine: atom %s/%d, delta relation has arity %d", st.pred, st.arity, r.Arity())
		}
		rc.e.scans.Add(1)
		return rc.scanShards(i, st, r)
	}
	r := rc.e.data.Relation(st.pred)
	if r == nil {
		return nil
	}
	if r.Arity() != st.arity {
		return fmt.Errorf("engine: atom %s/%d, relation has arity %d", st.pred, st.arity, r.Arity())
	}
	if len(st.keyCols) == 0 {
		rc.e.scans.Add(1)
		return rc.scanShards(i, st, r)
	}
	// Probe path: resolve the key parts, look up the per-shard indexes.
	if cap(rc.vals) < len(st.keyParts) {
		rc.vals = make([]string, len(st.keyParts))
	}
	vals := rc.vals[:len(st.keyParts)]
	for j, part := range st.keyParts {
		if part.slot >= 0 {
			vals[j] = rc.slots[part.slot]
		} else {
			vals[j] = part.constVal
		}
	}
	rc.e.probes.Add(1)
	tuples, scratch := rc.e.probe(r, st.keyCols, vals, &rc.key, rc.bufs[i])
	rc.bufs[i] = scratch
	return rc.feed(i, st, tuples)
}

// scanShards runs step i as a full scan, shard by shard (the per-shard
// logs are distinct and cover the relation).
func (rc *runCtx) scanShards(i int, st *planStep, r store.Relation) error {
	for s := 0; s < r.NumShards(); s++ {
		if err := rc.feed(i, st, r.ShardAddedSince(s, 0)); err != nil {
			return err
		}
	}
	return nil
}

// feed applies step i's checks and binds to each candidate tuple and
// recurses into step i+1 for survivors.
func (rc *runCtx) feed(i int, st *planStep, tuples []rel.Tuple) error {
next:
	for _, tup := range tuples {
		if rc.stop != nil && rc.stop.Load() {
			return errCanceled
		}
		for _, cc := range st.checkConsts {
			if tup[cc.pos] != cc.val {
				continue next
			}
		}
		for _, c := range st.checkSlots {
			if tup[c.pos] != rc.slots[c.slot] {
				continue next
			}
		}
		for _, c := range st.checkPos {
			if tup[c.pos] != tup[c.first] {
				continue next
			}
		}
		for _, b := range st.binds {
			rc.slots[b.slot] = tup[b.pos]
		}
		for _, c := range st.comps {
			if !c.eval(rc.slots) {
				continue next
			}
		}
		if err := rc.step(i + 1); err != nil {
			return err
		}
	}
	return nil
}

// run executes the plan, invoking yield with the slot array for every body
// match. delta supplies the scan source for delta steps (datalog); nil
// otherwise. The slot array is reused across yields — callers must copy
// what they keep. When the plan opens with a full scan of a large sharded
// relation, the scan fans out across shards over a bounded worker pool
// (yields serialized, match order unspecified); otherwise execution is
// sequential and deterministic.
func (e *Engine) run(p *Plan, delta *rel.Instance, yield func(slots []string) error) error {
	for _, c := range p.preComps {
		if !c.eval(nil) {
			return nil
		}
	}
	if r, workers := e.parallelScanTarget(p, delta); r != nil {
		return e.runParallel(p, delta, r, workers, yield)
	}
	return newRunCtx(e, p, delta, yield).step(0)
}

// parallelScanTarget reports whether the plan's first step is a full scan
// eligible for shard fan-out, returning the scanned relation and the worker
// count (nil/0 when the sequential path should run: probe first steps,
// unsharded or small relations, single-worker configurations). A delta
// first step (datalog semi-naive pivot) scans the per-round delta instance
// and fans out under exactly the same gates — large deltas are the whole
// cost of a semi-naive round, so they use the same shard worker pool as
// full scans.
func (e *Engine) parallelScanTarget(p *Plan, delta *rel.Instance) (store.Relation, int) {
	if len(p.steps) == 0 {
		return nil, 0
	}
	st := &p.steps[0]
	if len(st.keyCols) > 0 {
		return nil, 0
	}
	var r store.Relation
	if st.delta {
		if delta == nil {
			return nil, 0
		}
		if dr := delta.Relation(st.pred); dr != nil {
			r = dr
		}
	} else {
		r = e.data.Relation(st.pred)
	}
	if r == nil || r.Arity() != st.arity || r.NumShards() <= 1 {
		return nil, 0
	}
	workers := min(scanWorkers(), r.NumShards())
	// Version (a loop of atomic loads) equals Len under set semantics —
	// the generation counts exactly the distinct inserts — and skips the
	// per-shard mutex round-trips Len would pay on this per-query path.
	if workers <= 1 || r.Version() < uint64(parallelScanMinRows) {
		return nil, 0
	}
	return r, workers
}

// runParallel executes the plan with its opening scan fanned out across
// r's shards: each worker owns a private runCtx (slots, buffers) and
// drains whole shards, funneling matches through the fan-out's serialized
// yield. The first error (or ErrStop) recorded wins and flips the shared
// stop flag, which every worker polls per tuple; run's callers apply the
// usual ErrStop mapping, exactly as on the sequential path.
func (e *Engine) runParallel(p *Plan, delta *rel.Instance, r store.Relation, workers int, yield func(slots []string) error) error {
	e.scans.Add(1)
	e.parallelScans.Add(1)
	f := &fanOut{}
	syield := func(slots []string) error {
		f.yieldMu.Lock()
		defer f.yieldMu.Unlock()
		if f.stop.Load() {
			return errCanceled
		}
		return yield(slots)
	}
	return f.dispatch(workers, r.NumShards(), func(queue <-chan int) {
		rc := newRunCtx(e, p, delta, syield)
		rc.stop = &f.stop
		st := &p.steps[0]
		for s := range queue {
			if f.stop.Load() {
				continue
			}
			err := rc.feed(0, st, r.ShardAddedSince(s, 0))
			if err != nil && err != errCanceled {
				f.fail(err)
			}
		}
	})
}
