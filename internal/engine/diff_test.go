package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/lang"
	"repro/internal/rel"
)

// The differential property test: the engine must agree exactly with the
// naive reference evaluator (rel.EvalCQ / rel.EvalUCQ) on randomized
// query/instance pairs — including after mid-test mutations, which exercise
// the incremental index catch-up.

var diffPreds = []struct {
	name  string
	arity int
}{
	{"R1", 1}, {"R2", 2}, {"R3", 3}, {"S2", 2},
}

func randInstance(rng *rand.Rand, domain int) *rel.Instance {
	ins := rel.NewInstance()
	for _, p := range diffPreds {
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			t := make(rel.Tuple, p.arity)
			for j := range t {
				t[j] = fmt.Sprintf("c%d", rng.Intn(domain))
			}
			ins.MustAdd(p.name, t...)
		}
	}
	return ins
}

func randTerm(rng *rand.Rand, vars []string, domain int) lang.Term {
	if rng.Intn(4) == 0 {
		return lang.Const(fmt.Sprintf("c%d", rng.Intn(domain)))
	}
	return lang.Var(vars[rng.Intn(len(vars))])
}

// randCQ builds a random safe conjunctive query over diffPreds.
func randCQ(rng *rand.Rand, domain int) lang.CQ {
	vars := []string{"v0", "v1", "v2", "v3", "v4"}
	nAtoms := 1 + rng.Intn(4)
	var body []lang.Atom
	for i := 0; i < nAtoms; i++ {
		p := diffPreds[rng.Intn(len(diffPreds))]
		args := make([]lang.Term, p.arity)
		for j := range args {
			args[j] = randTerm(rng, vars, domain)
		}
		body = append(body, lang.Atom{Pred: p.name, Args: args})
	}
	// Head: a random subset of the body variables (safety by construction).
	var bodyVars []lang.Term
	for _, a := range body {
		bodyVars = a.Vars(bodyVars)
	}
	var head []lang.Term
	for _, v := range bodyVars {
		if rng.Intn(2) == 0 {
			head = append(head, v)
		}
	}
	if len(head) == 0 && len(bodyVars) > 0 {
		head = append(head, bodyVars[rng.Intn(len(bodyVars))])
	}
	q := lang.CQ{Head: lang.Atom{Pred: "q", Args: head}, Body: body}
	// Occasionally add a comparison over bound body variables.
	if len(bodyVars) > 0 && rng.Intn(3) == 0 {
		ops := []lang.CompOp{lang.OpEQ, lang.OpNE, lang.OpLT, lang.OpLE, lang.OpGT, lang.OpGE}
		r := lang.Term(lang.Const(fmt.Sprintf("c%d", rng.Intn(domain))))
		if rng.Intn(2) == 0 {
			r = bodyVars[rng.Intn(len(bodyVars))]
		}
		c := lang.Comparison{
			Op: ops[rng.Intn(len(ops))],
			L:  bodyVars[rng.Intn(len(bodyVars))],
			R:  r,
		}
		q.Comps = []lang.Comparison{c}
	}
	return q
}

func TestDifferentialCQ(t *testing.T) {
	const pairs = 150
	for seed := 0; seed < pairs; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		domain := 3 + rng.Intn(5)
		ins := randInstance(rng, domain)
		e := New(ins)
		for k := 0; k < 3; k++ {
			q := randCQ(rng, domain)
			want, errWant := rel.EvalCQ(q, ins)
			got, errGot := e.EvalCQ(q)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("seed %d: error mismatch on %s: naive %v, engine %v", seed, q, errWant, errGot)
			}
			if errWant != nil {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: answer mismatch on %s:\nnaive  %v\nengine %v", seed, q, want, got)
			}
			// Mutate and re-check: indexes must catch up incrementally.
			p := diffPreds[rng.Intn(len(diffPreds))]
			tup := make(rel.Tuple, p.arity)
			for j := range tup {
				tup[j] = fmt.Sprintf("c%d", rng.Intn(domain))
			}
			ins.MustAdd(p.name, tup...)
			want2, err := rel.EvalCQ(q, ins)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := e.EvalCQ(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got2, want2) {
				t.Fatalf("seed %d: post-insert mismatch on %s:\nnaive  %v\nengine %v", seed, q, want2, got2)
			}
		}
	}
}

func TestDifferentialUCQ(t *testing.T) {
	const pairs = 120
	for seed := 0; seed < pairs; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		domain := 3 + rng.Intn(5)
		ins := randInstance(rng, domain)
		e := New(ins)
		// Disjuncts must share head arity: project every disjunct head to
		// the same width by regenerating until widths match.
		first := randCQ(rng, domain)
		u := lang.UCQ{Disjuncts: []lang.CQ{first}}
		for len(u.Disjuncts) < 1+rng.Intn(3) {
			d := randCQ(rng, domain)
			if d.Head.Arity() == first.Head.Arity() {
				d.Head.Pred = first.Head.Pred
				u.Disjuncts = append(u.Disjuncts, d)
			}
		}
		want, errWant := rel.EvalUCQ(u, ins)
		got, errGot := e.EvalUCQ(u)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("seed %d: error mismatch: naive %v, engine %v", seed, errWant, errGot)
		}
		if errWant != nil {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: mismatch on\n%s\nnaive  %v\nengine %v", seed, u, want, got)
		}
	}
}

// TestDifferentialUCQWideFanout drives EvalUCQ's worker pool with far more
// disjuncts than workers (the bounded fan-out mirrors the netpeer
// executor's), checking the parallel result — and its first-failure error
// semantics — against the naive oracle.
func TestDifferentialUCQWideFanout(t *testing.T) {
	for seed := 0; seed < 30; seed++ {
		rng := rand.New(rand.NewSource(int64(5000 + seed)))
		domain := 3 + rng.Intn(5)
		ins := randInstance(rng, domain)
		e := New(ins)
		first := randCQ(rng, domain)
		u := lang.UCQ{Disjuncts: []lang.CQ{first}}
		for len(u.Disjuncts) < 24 {
			d := randCQ(rng, domain)
			if d.Head.Arity() == first.Head.Arity() {
				d.Head.Pred = first.Head.Pred
				u.Disjuncts = append(u.Disjuncts, d)
			}
		}
		want, errWant := rel.EvalUCQ(u, ins)
		got, errGot := e.EvalUCQ(u)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("seed %d: error mismatch: naive %v, engine %v", seed, errWant, errGot)
		}
		if errWant != nil {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: mismatch on\n%s\nnaive  %v\nengine %v", seed, u, want, got)
		}
	}
}

func TestDifferentialDatalog(t *testing.T) {
	rules := []lang.CQ{
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("y")),
			Body: []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("y"))}},
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("z")),
			Body: []lang.Atom{
				lang.NewAtom("E", lang.Var("x"), lang.Var("y")),
				lang.NewAtom("T", lang.Var("y"), lang.Var("z"))}},
		{Head: lang.NewAtom("Same", lang.Var("x"), lang.Var("x")),
			Body: []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("x"))}},
	}
	for seed := 0; seed < 20; seed++ {
		rng := rand.New(rand.NewSource(int64(2000 + seed)))
		ins := rel.NewInstance()
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			ins.MustAdd("E", fmt.Sprintf("n%d", rng.Intn(12)), fmt.Sprintf("n%d", rng.Intn(12)))
		}
		want, err := rel.EvalDatalog(rules, ins)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvalDatalog(rules, ins)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("seed %d: datalog fixpoint mismatch", seed)
		}
	}
}
