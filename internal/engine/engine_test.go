package engine

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/lang"
	"repro/internal/rel"
)

func mustEval(t *testing.T, e *Engine, q lang.CQ) []rel.Tuple {
	t.Helper()
	rows, err := e.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestEvalCQSelectiveProbe(t *testing.T) {
	ins := rel.NewInstance()
	for i := 0; i < 100; i++ {
		ins.MustAdd("E", fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
	}
	e := New(ins)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("E", lang.Const("a7"), lang.Var("y"))},
	}
	rows := mustEval(t, e, q)
	if len(rows) != 1 || rows[0][0] != "b7" {
		t.Fatalf("rows = %v", rows)
	}
	st := e.Stats()
	if st.Probes == 0 {
		t.Fatalf("selective query should probe an index, stats %+v", st)
	}
	if st.Scans != 0 {
		t.Fatalf("selective query should not scan, stats %+v", st)
	}
}

func TestEvalCQJoinMatchesNaive(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("E", "a", "b")
	ins.MustAdd("E", "b", "c")
	ins.MustAdd("E", "b", "d")
	ins.MustAdd("E", "x", "x")
	e := New(ins)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x"), lang.Var("z")),
		Body: []lang.Atom{
			lang.NewAtom("E", lang.Var("x"), lang.Var("y")),
			lang.NewAtom("E", lang.Var("y"), lang.Var("z")),
		},
	}
	got := mustEval(t, e, q)
	want, err := rel.EvalCQ(q, ins)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine %v vs naive %v", got, want)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("E", "a", "b")
	ins.MustAdd("E", "c", "c")
	e := New(ins)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x")),
		Body: []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("x"))},
	}
	rows := mustEval(t, e, q)
	if len(rows) != 1 || rows[0][0] != "c" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestIncrementalIndexMaintenance(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("E", "a", "1")
	e := New(ins)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("E", lang.Const("a"), lang.Var("y"))},
	}
	if rows := mustEval(t, e, q); len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// Insert after the index exists: the next probe must see the new tuple.
	ins.MustAdd("E", "a", "2")
	ins.MustAdd("E", "b", "3")
	rows := mustEval(t, e, q)
	if len(rows) != 2 {
		t.Fatalf("after insert rows = %v", rows)
	}
	st := e.Stats()
	if st.IndexesBuilt != 1 {
		t.Fatalf("expected one index (incrementally maintained), built %d", st.IndexesBuilt)
	}
}

// TestCompositeKeyNoCollision is a regression test: composite index keys
// must not collide for values containing delimiter bytes. Reachable in
// practice: AddFact takes arbitrary strings and the netpeer wire carries
// NUL bytes (JSON \u0000) legally.
func TestCompositeKeyNoCollision(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("R", "a\x00b", "c", "1")
	ins.MustAdd("R", "a", "b\x00c", "2")
	e := New(ins)
	// Probe cols {0,1} with ("a\x00b","c"): exactly one tuple matches.
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("z")),
		Body: []lang.Atom{lang.NewAtom("R", lang.Const("a\x00b"), lang.Const("c"), lang.Var("z"))},
	}
	got := mustEval(t, e, q)
	want, err := rel.EvalCQ(q, ins)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine %v vs naive %v (composite key collision?)", got, want)
	}
	if len(got) != 1 || got[0][0] != "1" {
		t.Fatalf("rows = %v, want [(1)]", got)
	}
}

func TestPlanCacheReuse(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("E", "a", "b")
	e := New(ins)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("y"))},
	}
	mustEval(t, e, q)
	mustEval(t, e, q)
	// Alpha-equivalent query shares the plan.
	q2 := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("v")),
		Body: []lang.Atom{lang.NewAtom("E", lang.Var("u"), lang.Var("v"))},
	}
	mustEval(t, e, q2)
	if n := e.Stats().PlansCompiled; n != 1 {
		t.Fatalf("plans compiled = %d, want 1", n)
	}
}

func TestSharedPlanCacheAcrossEngines(t *testing.T) {
	pc := NewPlanCache(16)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("E", lang.Const("a"), lang.Var("y"))},
	}
	for i := 0; i < 3; i++ {
		ins := rel.NewInstance()
		ins.MustAdd("E", "a", fmt.Sprintf("b%d", i))
		e := NewWithPlanCache(ins, pc)
		rows := mustEval(t, e, q)
		if len(rows) != 1 || rows[0][0] != fmt.Sprintf("b%d", i) {
			t.Fatalf("engine %d rows = %v", i, rows)
		}
	}
	st := pc.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("plan cache stats = %+v, want 2 hits 1 miss", st)
	}
}

func TestUnsafeQueryRejected(t *testing.T) {
	e := New(rel.NewInstance())
	q := lang.CQ{Head: lang.NewAtom("q", lang.Var("x"))}
	if _, err := e.EvalCQ(q); err == nil {
		t.Fatal("unsafe query accepted")
	}
}

func TestComparisons(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("P", "a", "1")
	ins.MustAdd("P", "b", "5")
	ins.MustAdd("P", "c", "9")
	e := New(ins)
	q := lang.CQ{
		Head:  lang.NewAtom("q", lang.Var("x")),
		Body:  []lang.Atom{lang.NewAtom("P", lang.Var("x"), lang.Var("n"))},
		Comps: []lang.Comparison{{Op: lang.OpGT, L: lang.Var("n"), R: lang.Const("3")}},
	}
	rows := mustEval(t, e, q)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestEnumerateAndStop(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("E", "a", "b")
	ins.MustAdd("E", "b", "c")
	e := New(ins)
	body := []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("y"))}
	n := 0
	err := e.Enumerate(body, nil, func(s lang.Subst) error {
		if s.Apply(lang.Var("x")).IsVar() {
			t.Fatal("x unbound in enumerated substitution")
		}
		n++
		return nil
	})
	if err != nil || n != 2 {
		t.Fatalf("n = %d, err = %v", n, err)
	}
	n = 0
	err = e.Enumerate(body, nil, func(s lang.Subst) error {
		n++
		return ErrStop
	})
	if err != nil || n != 1 {
		t.Fatalf("ErrStop: n = %d, err = %v", n, err)
	}
}

// StreamCQ must yield exactly EvalCQ's distinct rows (order aside), stop
// early on ErrStop, and propagate yield errors.
func TestStreamCQ(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("E", "a", "b")
	ins.MustAdd("E", "b", "c")
	ins.MustAdd("E", "c", "c")
	e := New(ins)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("y"))},
	}
	want := mustEval(t, e, q) // [b c]
	seen := map[string]bool{}
	if err := e.StreamCQ(q, func(tu rel.Tuple) error {
		if seen[tu.Key()] {
			t.Fatalf("duplicate streamed row %v", tu)
		}
		seen[tu.Key()] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Fatalf("streamed %d rows, want %d", len(seen), len(want))
	}
	for _, tu := range want {
		if !seen[tu.Key()] {
			t.Fatalf("row %v missing from stream", tu)
		}
	}
	n := 0
	if err := e.StreamCQ(q, func(rel.Tuple) error { n++; return ErrStop }); err != nil || n != 1 {
		t.Fatalf("ErrStop: n = %d, err = %v", n, err)
	}
	boom := fmt.Errorf("boom")
	if err := e.StreamCQ(q, func(rel.Tuple) error { return boom }); err != boom {
		t.Fatalf("yield error not propagated: %v", err)
	}
}

// ProbeByKeyBatchYield streams the same distinct tuples ProbeByKeyBatch
// materializes and honors ErrStop.
func TestProbeByKeyBatchYield(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("R", "k1", "a")
	ins.MustAdd("R", "k1", "b")
	ins.MustAdd("R", "k2", "c")
	ins.MustAdd("R", "k9", "z")
	e := New(ins)
	keys := [][]string{{"k1"}, {"k2"}, {"k1"}}
	want, err := e.ProbeByKeyBatch("R", []int{0}, keys)
	if err != nil || len(want) != 3 {
		t.Fatalf("materialized: %v (%v)", want, err)
	}
	var got []rel.Tuple
	if err := e.ProbeByKeyBatchYield("R", []int{0}, keys, func(tu rel.Tuple) error {
		got = append(got, tu)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("yield variant diverges: %v vs %v", got, want)
	}
	n := 0
	if err := e.ProbeByKeyBatchYield("R", []int{0}, keys, func(rel.Tuple) error {
		n++
		return ErrStop
	}); err != nil || n != 1 {
		t.Fatalf("ErrStop: n = %d, err = %v", n, err)
	}
}

// TestEnumerateAlphaEquivalentBodies is a regression test: two bodies that
// are identical up to variable renaming must each get substitutions under
// their OWN variable names, not the first-compiled plan's (the plan cache
// must not alias them).
func TestEnumerateAlphaEquivalentBodies(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("E", "a", "b")
	e := New(ins)
	if err := e.Enumerate([]lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("y"))}, nil,
		func(s lang.Subst) error { return nil }); err != nil {
		t.Fatal(err)
	}
	err := e.Enumerate([]lang.Atom{lang.NewAtom("E", lang.Var("u"), lang.Var("v"))}, nil,
		func(s lang.Subst) error {
			if got := s.Apply(lang.Var("u")); got != lang.Const("a") {
				t.Fatalf("u bound to %v, want \"a\" (cached plan's variable names leaked)", got)
			}
			if got := s.Apply(lang.Var("v")); got != lang.Const("b") {
				t.Fatalf("v bound to %v, want \"b\"", got)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExistsMatch(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("E", "a", "b")
	e := New(ins)
	ok, err := e.ExistsMatch([]lang.Atom{lang.NewAtom("E", lang.Const("a"), lang.Var("w"))})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	ok, err = e.ExistsMatch([]lang.Atom{lang.NewAtom("E", lang.Const("z"), lang.Var("w"))})
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v, want no match", ok, err)
	}
}

func TestEvalUCQ(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("A", "1")
	ins.MustAdd("B", "2")
	e := New(ins)
	u := lang.UCQ{Disjuncts: []lang.CQ{
		{Head: lang.NewAtom("q", lang.Var("x")), Body: []lang.Atom{lang.NewAtom("A", lang.Var("x"))}},
		{Head: lang.NewAtom("q", lang.Var("x")), Body: []lang.Atom{lang.NewAtom("B", lang.Var("x"))}},
	}}
	rows, err := e.EvalUCQ(u)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rel.EvalUCQ(u, ins)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("engine %v vs naive %v", rows, want)
	}
}

func TestEvalDatalogTransitiveClosure(t *testing.T) {
	rules := []lang.CQ{
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("y")),
			Body: []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("y"))}},
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("z")),
			Body: []lang.Atom{
				lang.NewAtom("E", lang.Var("x"), lang.Var("y")),
				lang.NewAtom("T", lang.Var("y"), lang.Var("z"))}},
	}
	ins := rel.NewInstance()
	for i := 0; i < 20; i++ {
		ins.MustAdd("E", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	got, err := EvalDatalog(rules, ins)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rel.EvalDatalog(rules, ins)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("engine datalog diverges from naive:\n%s\nvs\n%s", got.String(), want.String())
	}
	if got.Relation("T").Len() != 20*21/2 {
		t.Fatalf("T has %d tuples", got.Relation("T").Len())
	}
}

func TestProbeByKeyBatch(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("R", "a", "1")
	ins.MustAdd("R", "a", "2")
	ins.MustAdd("R", "b", "3")
	ins.MustAdd("R", "c", "4")
	e := New(ins)

	// Single-column batch: duplicate keys must not duplicate tuples.
	got, err := e.ProbeByKeyBatch("R", []int{0}, [][]string{{"a"}, {"c"}, {"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}

	// Multi-column batch uses the length-prefixed composite encoding.
	got, err = e.ProbeByKeyBatch("R", []int{0, 1}, [][]string{{"a", "2"}, {"b", "3"}, {"b", "999"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}

	// The batch index catches up with later inserts like any probe index.
	ins.MustAdd("R", "a", "5")
	got, err = e.ProbeByKeyBatch("R", []int{0}, [][]string{{"a"}})
	if err != nil || len(got) != 3 {
		t.Fatalf("after insert: %v (%v)", got, err)
	}

	// Absent relation: empty, no error (mirrors probe steps).
	if got, err := e.ProbeByKeyBatch("absent", []int{0}, [][]string{{"a"}}); err != nil || len(got) != 0 {
		t.Fatalf("absent: %v (%v)", got, err)
	}
	// Errors: no columns, column out of range, key arity mismatch.
	if _, err := e.ProbeByKeyBatch("R", nil, nil); err == nil {
		t.Fatal("no-column batch accepted")
	}
	if _, err := e.ProbeByKeyBatch("R", []int{7}, [][]string{{"a"}}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := e.ProbeByKeyBatch("R", []int{0}, [][]string{{"a", "b"}}); err == nil {
		t.Fatal("mis-sized key accepted")
	}
}

// Composite batch keys must not collide for values containing the
// length-prefix delimiter bytes (same guarantee bucketKey gives plans).
func TestProbeByKeyBatchNoCollision(t *testing.T) {
	ins := rel.NewInstance()
	ins.MustAdd("S", "1:a", "b")
	ins.MustAdd("S", "a", "1:b")
	e := New(ins)
	got, err := e.ProbeByKeyBatch("S", []int{0, 1}, [][]string{{"1:a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != "1:a" {
		t.Fatalf("got %v", got)
	}
}
