// Package engine is the indexed, shard-parallel query-execution subsystem:
// it evaluates conjunctive queries (CQs), unions of conjunctive queries
// (UCQs) and datalog programs over rel.Instance data using hash indexes,
// statistics-driven join orders and a bounded worker pool over the storage
// shards, replacing the naive nested-loop evaluator in package rel on every
// hot path (pdms.Query, the netpeer server and executor, the chase oracle,
// cmd/reform). rel.EvalCQ remains the reference oracle the engine is
// differentially tested against — including sharded-versus-unsharded runs
// over the randomized corpus in shard_test.go.
//
// # Architecture
//
// Indexes. Each relation gets hash indexes lazily, one per bound-position
// set actually probed, with one sub-index per storage shard: the key is the
// tuple's projection onto the probed columns, the value a bucket of that
// shard's matching tuples. Relations expose per-shard append-only insert
// logs (rel.Relation.ShardVersion / ShardAddedSince), so each shard's
// sub-index is maintained incrementally under the shard's own lock — a
// probe first consumes the log suffix its sub-index has not seen, then
// answers from the buckets. Tuples are never deleted (set semantics,
// monotone growth), which is what makes the log-suffix catch-up complete.
// A probe whose bound-position set includes the partitioning column
// (column 0) is routed to the single shard that can hold matches; other
// probes consult every shard and merge.
//
// Planning. A conjunctive query is compiled to a Plan: body atoms are
// greedily reordered by estimated result size and each atom is lowered to
// either an index probe (some positions bound by constants or earlier
// steps) or a full scan (none). The cost model (OrderBodyStats) scales a
// relation's cardinality by 1/distinct(c) for every bound column c, using
// the per-column distinct-value sketches rel maintains on insert
// (rel.Stats) — a nearly-unique join column is recognized as sharply
// selective while a low-distinct column no longer masquerades as such.
// Callers without column statistics (the netpeer executor, which only sees
// advertised cardinalities) use the uniform fallback OrderBody, the same
// heuristic family with a fixed per-bound-argument discount. Estimates
// affect ordering only, never correctness. Variable bindings live in a
// flat slot array rather than substitution maps; comparison predicates are
// attached to the earliest step that binds their variables, pruning as
// soon as possible.
//
// Parallelism. A plan whose first step is a full scan of a large sharded
// relation fans the scan out across the relation's shards over a bounded
// worker pool (one worker per CPU by default): each worker drains whole
// shards through its own slot array and funnels matches into one
// serialized yield, so downstream join work — the expensive part —
// parallelizes while callers still observe a single ordered-enough stream
// (discovery order is unspecified, answers are identical).
// ProbeByKeyBatchYield fans large bound-key batches out the same way.
// Unsharded relations, small relations and single-CPU configurations take
// the sequential paths unchanged. EvalUCQ additionally fans independent
// disjuncts over a bounded worker pool, the same concurrency shape the
// distributed executor uses.
//
// Plan cache. Compiled plans are cached in an LRU keyed by the query's
// canonical form (lang.CQ.Canonical), so repeated evaluation of identical
// rewritings — the common case once reformulation fans a query into a UCQ —
// skips planning entirely. A PlanCache may be shared across engines: plans
// fix only join order and probe shapes, never data, so cross-instance reuse
// is sound (the netpeer executor shares one cache across its per-join
// scratch engines).
//
// Datalog. EvalDatalog runs semi-naive evaluation with one compiled plan
// per (rule, pivot-atom) pair: the pivot scans the previous round's delta,
// the remaining atoms probe indexes on the accumulating total instance.
//
// Streaming. StreamCQ, StreamScan and ProbeByKeyBatchYield are the
// enumeration hooks behind the netpeer server's chunked responses: they
// yield distinct tuples as the plan runs (or the shard logs are walked),
// materializing nothing beyond the dedup set, so results larger than
// memory-comfortable frames flow out incrementally.
//
// Invalidation. The engine itself never serves stale data — per-shard
// indexes catch up from the shard logs on every probe. Answer-level
// caching (and its generation-vector invalidation) lives one layer up, in
// pdms.Network; see ARCHITECTURE.md at the repository root for the
// full-stack picture.
package engine
