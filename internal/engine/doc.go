// Package engine is the indexed query-execution subsystem: it evaluates
// conjunctive queries (CQs), unions of conjunctive queries (UCQs) and
// datalog programs over rel.Instance data using hash indexes and planned
// join orders, replacing the naive nested-loop evaluator in package rel on
// every hot path (pdms.Query, the netpeer server and executor, the chase
// oracle, cmd/reform). rel.EvalCQ remains the reference oracle the engine
// is differentially tested against.
//
// # Architecture
//
// Indexes. Each relation gets hash indexes lazily, one per bound-position
// set actually probed: the index key is the tuple's projection onto those
// columns, the value a bucket of matching tuples. Relations expose an
// append-only insert log (rel.Relation.Version / AddedSince), so an index
// is maintained incrementally — a probe first consumes the log suffix the
// index has not seen, then answers from its buckets. Tuples are never
// deleted (set semantics, monotone growth), which is what makes the
// log-suffix catch-up complete.
//
// Planning. A conjunctive query is compiled to a Plan: body atoms are
// greedily reordered by estimated cost — relation cardinality discounted
// exponentially per bound argument (a bound position becomes an index-probe
// column) — and each atom is lowered to either an index probe (some
// positions bound by constants or earlier steps) or a full scan (none).
// Variable bindings live in a flat slot array rather than substitution
// maps; comparison predicates are attached to the earliest step that binds
// their variables, pruning as soon as possible.
//
// Plan cache. Compiled plans are cached in an LRU keyed by the query's
// canonical form (lang.CQ.Canonical), so repeated evaluation of identical
// rewritings — the common case once reformulation fans a query into a UCQ —
// skips planning entirely. A PlanCache may be shared across engines: plans
// fix only join order and probe shapes, never data, so cross-instance reuse
// is sound (the netpeer executor shares one cache across its per-join
// scratch engines).
//
// Datalog. EvalDatalog runs semi-naive evaluation with one compiled plan
// per (rule, pivot-atom) pair: the pivot scans the previous round's delta,
// the remaining atoms probe indexes on the accumulating total instance.
//
// Streaming. StreamCQ and ProbeByKeyBatchYield are the enumeration hooks
// behind the netpeer server's chunked responses: they yield distinct
// tuples in discovery order as the plan runs, materializing nothing beyond
// the dedup set, so results larger than memory-comfortable frames flow out
// incrementally. EvalUCQ fans independent disjuncts out over a bounded
// worker pool (concurrent evaluations are safe with each other), the same
// concurrency shape the distributed executor uses.
//
// Invalidation. The engine itself never serves stale data — indexes catch
// up from the relation log on every probe. Answer-level caching (and its
// mutation-generation invalidation) lives one layer up, in pdms.Network,
// which keys cached answers by a generation counter bumped on Extend and
// AddFact.
package engine
