package engine

import (
	"fmt"
	"strings"

	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/rel"
)

// RegisterMetrics registers the engine's cumulative counters, and its plan
// cache's, as the "engine" snapshot group of reg, so one obs snapshot
// reports them under stable dotted names (engine.probes,
// engine.parallel_scans, engine.plan_cache.hits, …).
func (e *Engine) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterGroup("engine", func(em *obs.Emitter) {
		st := e.Stats()
		em.Counter("probes", st.Probes)
		em.Counter("scans", st.Scans)
		em.Counter("parallel_scans", st.ParallelScans)
		em.Counter("plans_compiled", st.PlansCompiled)
		em.Counter("indexes_built", st.IndexesBuilt)
		pc := e.plans.Stats()
		em.Counter("plan_cache.hits", pc.Hits)
		em.Counter("plan_cache.misses", pc.Misses)
	})
}

// describe summarizes the plan's step order for trace annotations:
// "probe FH.cite[0]; scan FH.doc".
func (p *Plan) describe() string {
	var sb strings.Builder
	for i, s := range p.steps {
		if i > 0 {
			sb.WriteString("; ")
		}
		switch {
		case len(s.keyCols) > 0:
			fmt.Fprintf(&sb, "probe %s%v", s.pred, s.keyCols)
		case s.delta:
			fmt.Fprintf(&sb, "delta-scan %s", s.pred)
		default:
			fmt.Fprintf(&sb, "scan %s", s.pred)
		}
	}
	return sb.String()
}

// EvalCQSpan is EvalCQ with tracing: under a non-nil span it records a
// "plan" child covering plan fetch/compilation (annotated with the chosen
// step order) and an "exec" child covering the scan/probe run (annotated
// with the distinct-row count). A nil span evaluates identically with no
// overhead beyond the nil checks.
func (e *Engine) EvalCQSpan(q lang.CQ, sp *obs.Span) ([]rel.Tuple, error) {
	if sp == nil {
		return e.EvalCQ(q)
	}
	ps := sp.Child("plan")
	p, err := e.plan(q.Canonical(), q)
	if err != nil {
		ps.SetErr(err)
		ps.End()
		return nil, err
	}
	ps.Set("steps", p.describe())
	ps.End()

	es := sp.Child("exec")
	rows, err := e.EvalCQ(q)
	es.SetErr(err)
	es.SetInt("rows", int64(len(rows)))
	es.End()
	return rows, err
}

// EvalUCQSpan is EvalUCQ with tracing: one "eval.cq" child span per
// disjunct (each holding its plan/exec sub-spans), created concurrently by
// the disjunct worker pool. A nil span is exactly EvalUCQ.
func (e *Engine) EvalUCQSpan(u lang.UCQ, sp *obs.Span) ([]rel.Tuple, error) {
	if sp == nil {
		return e.EvalUCQ(u)
	}
	if err := u.Validate(); err != nil {
		sp.SetErr(err)
		return nil, err
	}
	sp.SetInt("disjuncts", int64(len(u.Disjuncts)))
	groups := make([][]rel.Tuple, len(u.Disjuncts))
	errs := make([]error, len(u.Disjuncts))
	runOne := func(i int) {
		cs := sp.Child("eval.cq", obs.Attr{K: "head", V: u.Disjuncts[i].Head.Pred})
		groups[i], errs[i] = e.EvalCQSpan(u.Disjuncts[i], cs)
		cs.End()
	}
	if n := len(u.Disjuncts); n <= 1 {
		for i := range u.Disjuncts {
			runOne(i)
		}
	} else {
		idx := make(chan int)
		done := make(chan struct{})
		workers := min(n, maxUCQFanout)
		for w := 0; w < workers; w++ {
			go func() {
				for i := range idx {
					runOne(i)
				}
				done <- struct{}{}
			}()
		}
		for i := range u.Disjuncts {
			idx <- i
		}
		close(idx)
		for w := 0; w < workers; w++ {
			<-done
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := rel.DistinctSorted(groups...)
	sp.SetInt("rows", int64(len(out)))
	return out, nil
}
