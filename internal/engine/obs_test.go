package engine

import (
	"fmt"
	"testing"

	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/rel"
)

func obsFixture(t *testing.T) *Engine {
	t.Helper()
	ins := rel.NewInstance()
	for i := 0; i < 50; i++ {
		ins.MustAdd("E", fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%5))
	}
	for i := 0; i < 5; i++ {
		ins.MustAdd("F", fmt.Sprintf("b%d", i))
	}
	return New(ins)
}

// TestRegisterMetrics registers the engine's counters into a registry and
// checks one snapshot carries them under the dotted "engine." names.
func TestRegisterMetrics(t *testing.T) {
	e := obsFixture(t)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("E", lang.Const("a7"), lang.Var("y"))},
	}
	if _, err := e.EvalCQ(q); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e.RegisterMetrics(reg)
	snap := reg.Snapshot()
	if snap.Counters["engine.probes"] == 0 {
		t.Fatalf("engine.probes not reported: %v", snap.Counters)
	}
	if snap.Counters["engine.plans_compiled"] == 0 {
		t.Fatalf("engine.plans_compiled not reported: %v", snap.Counters)
	}
	for _, key := range []string{"engine.scans", "engine.parallel_scans",
		"engine.indexes_built", "engine.plan_cache.hits", "engine.plan_cache.misses"} {
		if _, ok := snap.Counters[key]; !ok {
			t.Fatalf("%s missing from snapshot: %v", key, snap.Counters)
		}
	}
}

// TestEvalCQSpanTrace checks the traced path records plan and exec child
// spans (the plan span annotated with the chosen step order) and returns
// the same answer as the untraced path.
func TestEvalCQSpanTrace(t *testing.T) {
	e := obsFixture(t)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x")),
		Body: []lang.Atom{
			lang.NewAtom("E", lang.Var("x"), lang.Var("y")),
			lang.NewAtom("F", lang.Var("y")),
		},
	}
	tr := obs.NewTracer(2)
	root := tr.ForceTrace("query")
	traced, err := e.EvalCQSpan(q, root)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.EvalCQSpan(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain) || len(traced) == 0 {
		t.Fatalf("traced answer %v != untraced %v", traced, plain)
	}
	ps := root.Find("plan")
	if ps == nil {
		t.Fatalf("no plan span:\n%s", root.Render())
	}
	steps := ps.AttrMap()["steps"]
	if steps == "" {
		t.Fatalf("plan span has no steps annotation:\n%s", root.Render())
	}
	es := root.Find("exec")
	if es == nil {
		t.Fatalf("no exec span:\n%s", root.Render())
	}
	if es.AttrMap()["rows"] == "" {
		t.Fatalf("exec span has no rows annotation:\n%s", root.Render())
	}
}

// TestEvalUCQSpanTrace checks the fan-out path: one eval.cq child per
// disjunct, each holding its own plan/exec spans, and the invalid-UCQ
// error surfaced on the root span.
func TestEvalUCQSpanTrace(t *testing.T) {
	e := obsFixture(t)
	mkCQ := func(c string) lang.CQ {
		return lang.CQ{
			Head: lang.NewAtom("q", lang.Var("y")),
			Body: []lang.Atom{lang.NewAtom("E", lang.Const(c), lang.Var("y"))},
		}
	}
	u := lang.UCQ{Disjuncts: []lang.CQ{mkCQ("a1"), mkCQ("a2"), mkCQ("a3")}}
	tr := obs.NewTracer(2)
	root := tr.ForceTrace("query")
	rows, err := e.EvalUCQSpan(u, root)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.EvalUCQ(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(plain) {
		t.Fatalf("traced rows %v != untraced %v", rows, plain)
	}
	var cqs int
	for _, c := range root.Children() {
		if c.Name() == "eval.cq" {
			cqs++
			if c.Find("plan") == nil {
				t.Fatalf("eval.cq without plan child:\n%s", root.Render())
			}
		}
	}
	if cqs != len(u.Disjuncts) {
		t.Fatalf("got %d eval.cq spans, want %d:\n%s", cqs, len(u.Disjuncts), root.Render())
	}

	// An invalid UCQ (head arity mismatch across disjuncts) errors the
	// same traced or not, and the error lands on the span.
	bad := lang.UCQ{Disjuncts: []lang.CQ{
		mkCQ("a1"),
		{Head: lang.NewAtom("q"), Body: []lang.Atom{lang.NewAtom("F", lang.Var("y"))}},
	}}
	badRoot := tr.ForceTrace("bad")
	_, traceErr := e.EvalUCQSpan(bad, badRoot)
	badRoot.End()
	_, plainErr := e.EvalUCQ(bad)
	if traceErr == nil || plainErr == nil {
		t.Fatalf("invalid UCQ did not error: traced=%v plain=%v", traceErr, plainErr)
	}
	if traceErr.Error() != plainErr.Error() {
		t.Fatalf("traced error %q != untraced %q", traceErr, plainErr)
	}
}
