package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/lang"
	"repro/internal/rel"
	"repro/internal/store"
)

// diskBackedPair journals a random data set through store.Dir, crashes
// (drops the live instance), and recovers from the segments — returning the
// in-memory oracle instance and the disk-recovered one.
func diskBackedPair(t *testing.T, rng *rand.Rand, domain, shards int) (*rel.Instance, *rel.Instance, *store.Dir) {
	t.Helper()
	dir := t.TempDir()
	d, err := store.Open(dir, store.Options{MaxSegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	live, _, err := d.Recover(shards)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	d.Attach(live)
	mem := rel.NewInstanceSharded(1)
	for _, p := range diffPreds {
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			tup := make(rel.Tuple, p.arity)
			for j := range tup {
				tup[j] = fmt.Sprintf("c%d", rng.Intn(domain))
			}
			mem.MustAdd(p.name, tup...)
			live.MustAdd(p.name, tup...)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	d2, err := store.Open(dir, store.Options{MaxSegmentBytes: 1 << 10})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	recovered, _, err := d2.Recover(shards)
	if err != nil {
		t.Fatalf("recover after close: %v", err)
	}
	d2.Attach(recovered)
	return mem, recovered, d2
}

// TestDifferentialDiskBackedCQ runs the sharded differential corpus against
// the disk-backed layout: the engine over a segment-recovered instance (with
// forced parallel fan-out and journaled mid-test mutations) must agree
// exactly with the naive oracle over a plain in-memory copy.
func TestDifferentialDiskBackedCQ(t *testing.T) {
	forceParallel(t)
	for seed := 0; seed < 40; seed++ {
		rng := rand.New(rand.NewSource(int64(31000 + seed)))
		domain := 3 + rng.Intn(5)
		mem, disk, d := diskBackedPair(t, rng, domain, 2+rng.Intn(7))
		e := New(disk)
		for k := 0; k < 3; k++ {
			q := randCQ(rng, domain)
			want, errWant := rel.EvalCQ(q, mem)
			got, errGot := e.EvalCQ(q)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("seed %d: error mismatch on %s: naive %v, disk-backed %v", seed, q, errWant, errGot)
			}
			if errWant == nil && !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: mismatch on %s:\nnaive       %v\ndisk-backed %v", seed, q, want, got)
			}
			// Mutations after recovery go through the re-attached journal
			// hooks; the engine's per-shard index catch-up must still see
			// them immediately.
			p := diffPreds[rng.Intn(len(diffPreds))]
			tup := make(rel.Tuple, p.arity)
			for j := range tup {
				tup[j] = fmt.Sprintf("c%d", rng.Intn(domain))
			}
			mem.MustAdd(p.name, tup...)
			disk.MustAdd(p.name, tup...)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}
	}
}

// TestDatalogParallelDeltaEquivalence: with the fan-out gates dropped, the
// semi-naive datalog rounds (whose deltas are sharded and scanned through
// the same per-shard worker pool as base-relation scans) must compute
// exactly the naive fixpoint.
func TestDatalogParallelDeltaEquivalence(t *testing.T) {
	forceParallel(t)
	rules := []lang.CQ{
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("y")),
			Body: []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("y"))}},
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("z")),
			Body: []lang.Atom{
				lang.NewAtom("E", lang.Var("x"), lang.Var("y")),
				lang.NewAtom("T", lang.Var("y"), lang.Var("z"))}},
	}
	for seed := 0; seed < 15; seed++ {
		rng := rand.New(rand.NewSource(int64(41000 + seed)))
		ins := rel.NewInstanceSharded(2 + rng.Intn(7))
		n := 30 + rng.Intn(60)
		for i := 0; i < n; i++ {
			ins.MustAdd("E", fmt.Sprintf("n%d", rng.Intn(16)), fmt.Sprintf("n%d", rng.Intn(16)))
		}
		want, err := rel.EvalDatalog(rules, ins)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvalDatalog(rules, ins)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("seed %d: parallel-delta fixpoint mismatch", seed)
		}
	}
}

// TestParallelScanTargetDeltaStep: a compiled delta-first plan resolves its
// parallel scan target from the per-round delta instance and fans out under
// the same gates as a base-relation scan.
func TestParallelScanTargetDeltaStep(t *testing.T) {
	forceParallel(t)
	base := rel.NewInstanceSharded(4)
	base.MustAdd("E", "a", "b")
	e := New(base)
	rule := lang.CQ{
		Head: lang.NewAtom("T", lang.Var("x"), lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("y"))},
	}
	p, err := e.compile(rule, 0) // pivot 0: delta-first step
	if err != nil {
		t.Fatal(err)
	}
	if !p.steps[0].delta {
		t.Fatalf("pivot step not marked delta")
	}
	delta := rel.NewInstanceSharded(4)
	for i := 0; i < 64; i++ {
		delta.MustAdd("E", fmt.Sprintf("d%d", i), "y")
	}
	r, workers := e.parallelScanTarget(p, delta)
	if r == nil || workers < 2 {
		t.Fatalf("delta step did not fan out: r=%v workers=%d", r, workers)
	}
	if r.Name() != "E" || r.Version() != delta.Relation("E").Version() {
		t.Fatalf("parallel scan target is not the delta relation: %s@%d", r.Name(), r.Version())
	}
	// Without a delta instance the same plan must not fan out.
	if r, _ := e.parallelScanTarget(p, nil); r != nil {
		t.Fatalf("delta-first plan fanned out with no delta instance")
	}
}
