package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/lang"
	"repro/internal/rel"
)

// forceParallel drops the fan-out gates so the parallel scan/probe paths
// run on small fixtures and single-CPU machines (the -race build exercises
// real goroutines regardless of core count).
func forceParallel(t *testing.T) {
	t.Helper()
	minRows, minKeys, workers := parallelScanMinRows, parallelProbeMinKeys, scanWorkersOverride
	parallelScanMinRows, parallelProbeMinKeys, scanWorkersOverride = 0, 1, 4
	t.Cleanup(func() {
		parallelScanMinRows, parallelProbeMinKeys, scanWorkersOverride = minRows, minKeys, workers
	})
}

// buildShardPair inserts one random data set into two instances that differ
// only in shard count.
func buildShardPair(rng *rand.Rand, domain, shards int) (*rel.Instance, *rel.Instance) {
	one := rel.NewInstanceSharded(1)
	many := rel.NewInstanceSharded(shards)
	for _, p := range diffPreds {
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			t := make(rel.Tuple, p.arity)
			for j := range t {
				t[j] = fmt.Sprintf("c%d", rng.Intn(domain))
			}
			one.MustAdd(p.name, t...)
			many.MustAdd(p.name, t...)
		}
	}
	return one, many
}

// TestDifferentialShardedCQ: over the randomized CQ corpus, a sharded
// engine (with forced parallel fan-out) must agree exactly with the
// unsharded engine and the naive oracle — including after mid-test
// mutations of both instances.
func TestDifferentialShardedCQ(t *testing.T) {
	forceParallel(t)
	for seed := 0; seed < 120; seed++ {
		rng := rand.New(rand.NewSource(int64(9000 + seed)))
		domain := 3 + rng.Intn(5)
		one, many := buildShardPair(rng, domain, 2+rng.Intn(7))
		e1, eN := New(one), New(many)
		for k := 0; k < 3; k++ {
			q := randCQ(rng, domain)
			want, errWant := rel.EvalCQ(q, one)
			got1, err1 := e1.EvalCQ(q)
			gotN, errN := eN.EvalCQ(q)
			if (errWant == nil) != (err1 == nil) || (errWant == nil) != (errN == nil) {
				t.Fatalf("seed %d: error mismatch on %s: naive %v, unsharded %v, sharded %v",
					seed, q, errWant, err1, errN)
			}
			if errWant != nil {
				continue
			}
			if !reflect.DeepEqual(gotN, want) || !reflect.DeepEqual(got1, want) {
				t.Fatalf("seed %d: answer mismatch on %s:\nnaive     %v\nunsharded %v\nsharded   %v",
					seed, q, want, got1, gotN)
			}
			// Mutate both instances identically; indexes must catch up per
			// shard.
			p := diffPreds[rng.Intn(len(diffPreds))]
			tup := make(rel.Tuple, p.arity)
			for j := range tup {
				tup[j] = fmt.Sprintf("c%d", rng.Intn(domain))
			}
			one.MustAdd(p.name, tup...)
			many.MustAdd(p.name, tup...)
		}
	}
}

// TestDifferentialShardedUCQ: same for unions, driving the disjunct worker
// pool and the per-disjunct parallel scans together.
func TestDifferentialShardedUCQ(t *testing.T) {
	forceParallel(t)
	for seed := 0; seed < 60; seed++ {
		rng := rand.New(rand.NewSource(int64(12000 + seed)))
		domain := 3 + rng.Intn(5)
		one, many := buildShardPair(rng, domain, 2+rng.Intn(7))
		eN := New(many)
		first := randCQ(rng, domain)
		u := lang.UCQ{Disjuncts: []lang.CQ{first}}
		for len(u.Disjuncts) < 1+rng.Intn(6) {
			d := randCQ(rng, domain)
			if d.Head.Arity() == first.Head.Arity() {
				d.Head.Pred = first.Head.Pred
				u.Disjuncts = append(u.Disjuncts, d)
			}
		}
		want, errWant := rel.EvalUCQ(u, one)
		got, errGot := eN.EvalUCQ(u)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("seed %d: error mismatch: naive %v, sharded %v", seed, errWant, errGot)
		}
		if errWant == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: mismatch on\n%s\nnaive   %v\nsharded %v", seed, u, want, got)
		}
	}
}

// TestParallelScanCountersAndEquivalence: a join opening with a full scan
// over a sharded relation takes the parallel path (visible in
// Stats.ParallelScans) and returns exactly the unsharded answer.
func TestParallelScanCountersAndEquivalence(t *testing.T) {
	forceParallel(t)
	one := rel.NewInstanceSharded(1)
	many := rel.NewInstanceSharded(8)
	for i := 0; i < 3000; i++ {
		k, v := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i%97)
		one.MustAdd("R", k, v)
		many.MustAdd("R", k, v)
		if i%97 == 0 {
			one.MustAdd("S", v, fmt.Sprintf("w%d", i))
			many.MustAdd("S", v, fmt.Sprintf("w%d", i))
		}
	}
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x"), lang.Var("w")),
		Body: []lang.Atom{
			lang.NewAtom("R", lang.Var("x"), lang.Var("y")),
			lang.NewAtom("S", lang.Var("y"), lang.Var("w")),
		},
	}
	e1, eN := New(one), New(many)
	want, err := e1.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eN.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded join diverges: %d vs %d rows", len(got), len(want))
	}
	if st := eN.Stats(); st.ParallelScans == 0 {
		t.Fatalf("expected a parallel scan, stats %+v", st)
	}
	if st := e1.Stats(); st.ParallelScans != 0 {
		t.Fatalf("unsharded engine must stay sequential, stats %+v", st)
	}
}

// TestParallelScanEarlyStop: ErrStop from a streaming yield ends a parallel
// scan cleanly (no error, no goroutine leak, bounded yields).
func TestParallelScanEarlyStop(t *testing.T) {
	forceParallel(t)
	ins := rel.NewInstanceSharded(8)
	for i := 0; i < 2000; i++ {
		ins.MustAdd("R", fmt.Sprintf("k%d", i), "v")
	}
	e := New(ins)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x")),
		Body: []lang.Atom{lang.NewAtom("R", lang.Var("x"), lang.Var("y"))},
	}
	n := 0
	if err := e.StreamCQ(q, func(rel.Tuple) error {
		n++
		if n >= 5 {
			return ErrStop
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("yields after ErrStop: %d, want 5 (yields are serialized)", n)
	}
	// A yield error (not ErrStop) must surface.
	boom := fmt.Errorf("boom")
	if err := e.StreamCQ(q, func(rel.Tuple) error { return boom }); err != boom {
		t.Fatalf("yield error not propagated through parallel scan: %v", err)
	}
}

// TestParallelProbeBatch: a large bound-key batch takes the parallel path
// and yields exactly the sequential distinct set (order aside).
func TestParallelProbeBatch(t *testing.T) {
	ins := rel.NewInstanceSharded(8)
	for i := 0; i < 4000; i++ {
		ins.MustAdd("R", fmt.Sprintf("k%d", i%500), fmt.Sprintf("v%d", i))
	}
	keys := make([][]string, 0, 600)
	for i := 0; i < 600; i++ {
		keys = append(keys, []string{fmt.Sprintf("k%d", i)}) // 100 misses
	}
	seq := New(ins)
	want, err := seq.ProbeByKeyBatch("R", []int{0}, keys)
	if err != nil {
		t.Fatal(err)
	}
	forceParallel(t)
	par := New(ins)
	got, err := par.ProbeByKeyBatch("R", []int{0}, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rel.DistinctSorted(got), rel.DistinctSorted(want)) {
		t.Fatalf("parallel probe set diverges: %d vs %d tuples", len(got), len(want))
	}
	// ErrStop stops the batch without error.
	n := 0
	if err := par.ProbeByKeyBatchYield("R", []int{0}, keys, func(rel.Tuple) error {
		n++
		return ErrStop
	}); err != nil || n == 0 {
		t.Fatalf("ErrStop through parallel batch: n=%d err=%v", n, err)
	}
}

// TestSkewedShardScanAndProbe: every key hashing to one shard must not
// break the parallel paths (one worker does all the work, the rest drain).
func TestSkewedShardScanAndProbe(t *testing.T) {
	forceParallel(t)
	one := rel.NewInstanceSharded(1)
	many := rel.NewInstanceSharded(8)
	for i := 0; i < 1000; i++ {
		one.MustAdd("R", "hot", fmt.Sprintf("v%d", i))
		many.MustAdd("R", "hot", fmt.Sprintf("v%d", i))
	}
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("R", lang.Var("x"), lang.Var("y"))},
	}
	want, err := New(one).EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(many).EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("skewed scan diverges: %d vs %d rows", len(got), len(want))
	}
	probed, err := New(many).ProbeByKeyBatch("R", []int{0}, [][]string{{"hot"}, {"cold"}})
	if err != nil || len(probed) != 1000 {
		t.Fatalf("skewed probe: %d tuples (%v)", len(probed), err)
	}
}

// TestProbeRouting: a probe whose bound set includes column 0 must hit only
// the owning shard's index; one that does not must consult every shard.
// Both must agree with the naive oracle.
func TestProbeRouting(t *testing.T) {
	ins := rel.NewInstanceSharded(4)
	for i := 0; i < 200; i++ {
		ins.MustAdd("R", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i%10))
	}
	e := New(ins)
	routed := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("R", lang.Const("k7"), lang.Var("y"))},
	}
	unrouted := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x")),
		Body: []lang.Atom{lang.NewAtom("R", lang.Var("x"), lang.Const("v3"))},
	}
	for _, q := range []lang.CQ{routed, unrouted} {
		got, err := e.EvalCQ(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rel.EvalCQ(q, ins)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("probe mismatch on %s: %v vs %v", q, got, want)
		}
	}
	if st := e.Stats(); st.Probes == 0 || st.Scans != 0 {
		t.Fatalf("both queries must probe, stats %+v", st)
	}
}

// TestStreamScan: yields exactly the relation's tuples, honors ErrStop,
// and treats absent relations as empty.
func TestStreamScan(t *testing.T) {
	ins := rel.NewInstanceSharded(4)
	want := map[string]bool{}
	for i := 0; i < 100; i++ {
		tu := rel.Tuple{fmt.Sprintf("k%d", i), "v"}
		ins.MustAdd("R", tu...)
		want[tu.Key()] = true
	}
	e := New(ins)
	got := map[string]bool{}
	if err := e.StreamScan("R", func(t rel.Tuple) error {
		got[t.Key()] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("StreamScan yielded %d tuples, want %d", len(got), len(want))
	}
	n := 0
	if err := e.StreamScan("R", func(rel.Tuple) error { n++; return ErrStop }); err != nil || n != 1 {
		t.Fatalf("ErrStop: n=%d err=%v", n, err)
	}
	if err := e.StreamScan("absent", func(rel.Tuple) error { t.Fatal("yield on absent"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestParallelScanConcurrentInsert runs parallel scans while a writer
// inserts concurrently (run with -race): every answer must respect the
// monotone envelope eval(inserted-before-start) ⊆ answer ⊆
// eval(inserted-by-end) — sharded relations are append-only, so a scan can
// never lose a pre-existing tuple or invent one.
func TestParallelScanConcurrentInsert(t *testing.T) {
	forceParallel(t)
	ins := rel.NewInstanceSharded(8)
	base := map[string]bool{}
	for i := 0; i < 500; i++ {
		tu := rel.Tuple{fmt.Sprintf("base%d", i), "v"}
		ins.MustAdd("R", tu...)
		base[tu.Key()] = true
	}
	e := New(ins)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x"), lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("R", lang.Var("x"), lang.Var("y"))},
	}
	r := ins.Relation("R")

	var mu sync.Mutex
	var ledger []rel.Tuple // writer's inserts, in publish order
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 400; i++ {
			tu := rel.Tuple{fmt.Sprintf("live%d", i), "v"}
			if _, err := r.Insert(tu); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			ledger = append(ledger, tu)
			mu.Unlock()
		}
	}()

	for iter := 0; iter < 40; iter++ {
		mu.Lock()
		n0 := len(ledger)
		mu.Unlock()
		rows, err := e.EvalCQ(q)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		n1 := len(ledger)
		upper := map[string]bool{}
		for k := range base {
			upper[k] = true
		}
		for _, tu := range ledger[:n1] {
			upper[tu.Key()] = true
		}
		lower := map[string]bool{}
		for k := range base {
			lower[k] = true
		}
		for _, tu := range ledger[:n0] {
			lower[tu.Key()] = true
		}
		mu.Unlock()
		got := map[string]bool{}
		for _, tu := range rows {
			if !upper[tu.Key()] {
				t.Fatalf("iter %d: phantom answer %v", iter, tu)
			}
			got[tu.Key()] = true
		}
		for k := range lower {
			if !got[k] {
				t.Fatalf("iter %d: lost tuple %q inserted before the scan started", iter, k)
			}
		}
	}
	<-done
	// Quiesced: exact equality.
	rows, err := e.EvalCQ(q)
	if err != nil || len(rows) != 900 {
		t.Fatalf("quiesced rows = %d (%v), want 900", len(rows), err)
	}
}

// TestOrderBodyStatsSelectivity: with equal cardinalities the old uniform
// discount cannot tell a nearly-unique join column from a 5-value one; the
// distinct-value model must order the selective atom first.
func TestOrderBodyStatsSelectivity(t *testing.T) {
	body := []lang.Atom{
		lang.NewAtom("A", lang.Var("x"), lang.Var("y")),
		lang.NewAtom("Fat", lang.Var("y"), lang.Var("z")),  // 5 distinct y
		lang.NewAtom("Lean", lang.Var("y"), lang.Var("w")), // ~unique y
	}
	stats := map[string]ColStats{
		"A":    {Card: 10},
		"Fat":  {Card: 50000, Distinct: []float64{5, 25000}},
		"Lean": {Card: 50000, Distinct: []float64{50000, 50000}},
	}
	order := OrderBodyStats(body, func(p string) ColStats { return stats[p] }, -1)
	if order[0] != 0 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("stats order = %v, want [0 2 1] (Lean before Fat)", order)
	}
	// The uniform model ties Fat and Lean on equal cardinality and falls
	// back to body order, picking the exploding atom first.
	uni := OrderBody(body, func(p string) int { return stats[p].Card }, -1)
	if uni[1] != 1 {
		t.Fatalf("uniform order = %v, want Fat (1) second — the blind spot stats fix", uni)
	}
}

// TestOrderBodyUniformUnchanged: OrderBody (the cards-only wrapper the
// distributed executor uses) must reproduce the legacy discount ordering.
func TestOrderBodyUniformUnchanged(t *testing.T) {
	body := []lang.Atom{
		lang.NewAtom("Big", lang.Var("x"), lang.Var("y")),
		lang.NewAtom("Small", lang.Var("y")),
		lang.NewAtom("Mid", lang.Const("c"), lang.Var("z")),
	}
	cards := map[string]int{"Big": 10000, "Small": 3, "Mid": 1000}
	order := OrderBody(body, func(p string) int { return cards[p] }, -1)
	// Small (cost 4) first, then Mid (1001/8 ≈ 125 with its constant),
	// then Big (10001/8 with y bound).
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("uniform order = %v, want [1 2 0]", order)
	}
}

// TestStatsVsUniformSameAnswers: both cost models must return identical
// answers on the corpus (ordering is a performance choice only).
func TestStatsVsUniformSameAnswers(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		rng := rand.New(rand.NewSource(int64(31000 + seed)))
		domain := 3 + rng.Intn(5)
		ins := randInstance(rng, domain)
		stats := New(ins)
		uniform := New(ins)
		uniform.uniformCost = true
		for k := 0; k < 3; k++ {
			q := randCQ(rng, domain)
			a, errA := stats.EvalCQ(q)
			b, errB := uniform.EvalCQ(q)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d: error mismatch on %s: %v vs %v", seed, q, errA, errB)
			}
			if errA == nil && !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d: cost model changed answers on %s:\nstats   %v\nuniform %v", seed, q, a, b)
			}
		}
	}
}
