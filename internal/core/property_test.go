package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/containment"
	"repro/internal/lang"
	"repro/internal/parser"
	"repro/internal/ppl"
	"repro/internal/rel"
	"repro/internal/workload"
)

// TestReformulationMatchesOracleOnRandomPDMS is the paper's central
// soundness/completeness claim, property-tested: on random acyclic
// pure-inclusion PDMSs (Theorem 3.2(1) fragment) with random data, the
// reformulated query's answers equal the chase oracle's certain answers.
func TestReformulationMatchesOracleOnRandomPDMS(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, err := workload.Generate(workload.Params{
				Peers:         10,
				Diameter:      3,
				DefRatio:      0, // pure inclusions: PTIME fragment
				FactsPerStore: 3,
				DomainSize:    3,
				Seed:          seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			compareWithOracle(t, w)
		})
	}
}

// TestReformulationMatchesOracleWithDefinitional covers the mixed GAV/LAV
// case in the PTIME fragment: random layered specs where the definitional
// mappings define TOP-layer relations (whose heads never appear on any
// RHS, satisfying Theorem 3.2's head-isolation condition) over a middle
// layer that LAV storage descriptions populate.
func TestReformulationMatchesOracleWithDefinitional(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			mids := []string{"M:A", "M:B", "M:C"}
			var src strings.Builder
			// LAV storage: each store is a join or copy over mid relations.
			for i := 0; i < 3; i++ {
				a := mids[rng.Intn(3)]
				b := mids[rng.Intn(3)]
				switch rng.Intn(3) {
				case 0:
					fmt.Fprintf(&src, "storage S%d.r(x, y) in %s(x, y)\n", i, a)
				case 1:
					fmt.Fprintf(&src, "storage S%d.r(x, z) in %s(x, y), %s(y, z)\n", i, a, b)
				default:
					fmt.Fprintf(&src, "storage S%d.r(x, y) in %s(y, x)\n", i, a)
				}
				for f := 0; f < 3; f++ {
					fmt.Fprintf(&src, "fact S%d.r(\"c%d\", \"c%d\")\n", i, rng.Intn(3), rng.Intn(3))
				}
			}
			// GAV tops: unions of chains over mids; top heads appear on no RHS.
			for i := 0; i < 2; i++ {
				for r := 0; r < 1+rng.Intn(2); r++ {
					a := mids[rng.Intn(3)]
					b := mids[rng.Intn(3)]
					fmt.Fprintf(&src, "define T:Top%d(x, z) :- %s(x, y), %s(y, z)\n", i, a, b)
				}
			}
			res, err := parser.Parse(src.String())
			if err != nil {
				t.Fatal(err)
			}
			q, err := parser.ParseQuery(fmt.Sprintf(`q(x, z) :- T:Top%d(x, z)`, rng.Intn(2)))
			if err != nil {
				t.Fatal(err)
			}
			if cl := res.PDMS.Classify(q); cl.Class != ppl.PTime {
				t.Fatalf("constructed spec not PTIME: %v\n%s", cl, src.String())
			}
			w := &workload.Workload{PDMS: res.PDMS, Data: res.Data, Query: q}
			compareWithOracle(t, w)
		})
	}
}

// TestReformulationSoundOnCoNPSpecs: even outside the tractable fragment
// the algorithm must stay sound — every answer it produces is a certain
// answer (the chase still under-approximates soundly on these shapes when
// it succeeds).
func TestReformulationSoundOnCoNPSpecs(t *testing.T) {
	tested := 0
	for seed := int64(0); seed < 40 && tested < 8; seed++ {
		w, err := workload.Generate(workload.Params{
			Peers:         9,
			Diameter:      3,
			DefRatio:      0.5,
			FactsPerStore: 3,
			DomainSize:    3,
			Seed:          seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if cl := w.PDMS.Classify(w.Query); cl.Class != ppl.CoNP {
			continue
		}
		tested++
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Soundness needs only a sample of the (possibly huge) union.
			r, err := New(w.PDMS, Options{MaxRewritings: 300, KeepRedundant: true})
			if err != nil {
				t.Fatal(err)
			}
			out, err := r.Reformulate(w.Query)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rel.EvalUCQ(out.UCQ, w.Data)
			if err != nil {
				t.Fatal(err)
			}
			// Check soundness directly: every reformulated answer must
			// hold in the chased canonical instance. On these co-NP shapes
			// (definitional heads feeding inclusion RHSs) the chase is not
			// guaranteed to terminate — acyclic inclusions do not imply
			// weak acyclicity once definitional edges are added — so cap
			// the rounds tightly and skip seeds that hit the cap.
			inst, err := chase.Chase(w.PDMS, w.Data, chase.Options{MaxRounds: 30})
			if err != nil {
				t.Skipf("chase did not converge on this seed: %v", err)
			}
			canon, err := rel.EvalCQ(w.Query, inst)
			if err != nil {
				t.Fatal(err)
			}
			have := map[string]bool{}
			for _, tup := range canon {
				have[tup.Key()] = true
			}
			for _, tup := range got {
				if !have[tup.Key()] {
					t.Fatalf("unsound answer %v not derivable in canonical instance", tup)
				}
			}
		})
	}
	if tested == 0 {
		t.Skip("no co-NP seeds found at this size")
	}
}

func compareWithOracle(t *testing.T, w *workload.Workload) {
	t.Helper()
	r, err := New(w.PDMS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Reformulate(w.Query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.EvalUCQ(out.UCQ, w.Data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := chase.CertainAnswers(w.PDMS, w.Data, w.Query, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	chase.SortTuples(got)
	chase.SortTuples(want)
	if len(got) != len(want) {
		t.Fatalf("answers differ:\n got %v\nwant %v\nquery %s\nUCQ:\n%v",
			got, want, w.Query, out.UCQ)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("answers differ at %d:\n got %v\nwant %v", i, got, want)
		}
	}
}

// TestRedundancyEliminationPreservesSemantics: RemoveRedundant must not
// change the UCQ's answers on random instances.
func TestRedundancyEliminationPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		w, err := workload.Generate(workload.Params{
			Peers:         8,
			Diameter:      2,
			DefRatio:      0.3,
			FactsPerStore: 4,
			DomainSize:    3,
			Seed:          rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rKeep, err := New(w.PDMS, Options{KeepRedundant: true})
		if err != nil {
			t.Fatal(err)
		}
		outKeep, err := rKeep.Reformulate(w.Query)
		if err != nil {
			t.Fatal(err)
		}
		rMin, err := New(w.PDMS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		outMin, err := rMin.Reformulate(w.Query)
		if err != nil {
			t.Fatal(err)
		}
		if outMin.UCQ.Len() > outKeep.UCQ.Len() {
			t.Fatalf("minimized union larger: %d > %d", outMin.UCQ.Len(), outKeep.UCQ.Len())
		}
		a, err := rel.EvalUCQ(outKeep.UCQ, w.Data)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rel.EvalUCQ(outMin.UCQ, w.Data)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("redundancy elimination changed answers: %v vs %v", a, b)
		}
	}
}

// TestRewritingsAreContainedInEachOtherConsistently: sanity on the
// containment engine against extraction — every emitted disjunct must be
// satisfiable and refer only to stored relations.
func TestRewritingsWellFormed(t *testing.T) {
	w, err := workload.Generate(workload.Params{
		Peers: 12, Diameter: 3, DefRatio: 0.25, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(w.PDMS, Options{KeepRedundant: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Reformulate(w.Query)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range out.UCQ.Disjuncts {
		if !d.IsSafe() {
			t.Fatalf("unsafe rewriting %v", d)
		}
		for _, a := range d.Body {
			if !w.PDMS.IsStored(a.Pred) {
				t.Fatalf("rewriting %v references non-stored %s", d, a.Pred)
			}
		}
		// A rewriting must never be trivially self-contradictory.
		if containment.Contains(d, d) != true {
			t.Fatalf("containment reflexivity broken for %v", d)
		}
	}
}

// TestFreshVariablesDoNotCollide: rewritings from deep trees must not
// accidentally share don't-care variables across disjuncts in a way that
// changes semantics — evaluate each disjunct independently and as a union.
func TestFreshVariablesDoNotCollide(t *testing.T) {
	w, err := workload.Generate(workload.Params{
		Peers: 10, Diameter: 3, DefRatio: 0, FactsPerStore: 4, DomainSize: 3, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(w.PDMS, Options{KeepRedundant: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Reformulate(w.Query)
	if err != nil {
		t.Fatal(err)
	}
	union, err := rel.EvalUCQ(out.UCQ, w.Data)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range out.UCQ.Disjuncts {
		rows, err := rel.EvalCQ(d, w.Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, tup := range rows {
			seen[tup.Key()] = true
		}
	}
	if len(seen) != len(union) {
		t.Fatalf("per-disjunct union %d != EvalUCQ %d", len(seen), len(union))
	}
	_ = lang.CQ{}
}
