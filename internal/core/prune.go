package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// This file implements the deep-topology subtree pruning behind
// Options.NoPruneSubsumed: hopeless-predicate pruning (a goal whose
// predicate can never bottom out in stored relations is dead no matter how
// it is expanded, so its subtree is never built) and duplicate-description
// pruning (an expansion whose originating description is content-identical
// to an already-built sibling expansion with the same instantiation is
// skipped — replicated mappings make these common on large topologies).
//
// Both prunes are sound for the extracted rewriting set:
//
//   - Hopeless predicates: groundability below is a NECESSARY condition for
//     a goal to be productive — every rewriting through the goal bottoms out
//     in stored relations along rules and views, and the fixpoint
//     over-approximates exactly that reachability. It also bounds sibling
//     coverage: an MCD covering a goal atom comes from a view whose body
//     mentions the goal's predicate, and productive coverage needs that
//     view's V-predicate groundable — the same condition groundableGoal
//     tests. A non-groundable goal can therefore be neither productive nor
//     covered, and skipping it changes no rewriting.
//   - Duplicate descriptions: if two descriptions have identical canonical
//     content and an expansion of the same goal instantiates them
//     identically (same subgoal atoms, comparisons, exports, coverage),
//     swapping one description ID for the other is a bijection on
//     derivations (the once-per-path ban sets map across the swap), and
//     extracted rewritings carry no description IDs — the rewriting sets
//     are equal, so only the first copy needs a subtree.

// groundSet computes the set of rule-head predicates derivable from stored
// relations: a head joins the set when some rule for it has every body
// predicate groundable as a goal (stored, derivable, or coverable through a
// view whose V-predicate is derivable). The fixpoint is over the normalized
// catalog, so V-predicates participate through their V-rules. Cached — the
// catalog's indexes are immutable after construction.
func (c *catalog) groundSet() map[string]bool {
	if c.grounds != nil {
		return c.grounds
	}
	g := map[string]bool{}
	goalOK := func(p string) bool {
		if g[p] || c.isStored(p) {
			return true
		}
		for _, v := range c.viewsByBodyPred[p] {
			if g[v.Head.Pred] {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for head, rules := range c.rulesByHead {
			if g[head] {
				continue
			}
			for _, ru := range rules {
				ok := true
				for _, a := range ru.cq.Body {
					if !goalOK(a.Pred) {
						ok = false
						break
					}
				}
				if ok {
					g[head] = true
					changed = true
					break
				}
			}
		}
	}
	c.grounds = g
	return g
}

// groundableGoal reports whether a goal over pred can possibly bottom out in
// stored relations: pred is stored, some rule chain derives it, or some view
// over it has a derivable V-predicate. False means the goal is a dead end
// before any expansion is tried.
func (c *catalog) groundableGoal(pred string) bool {
	g := c.groundSet()
	if g[pred] || c.isStored(pred) {
		return true
	}
	for _, v := range c.viewsByBodyPred[pred] {
		if g[v.Head.Pred] {
			return true
		}
	}
	return false
}

// canonContent renders a kind tag plus a CQ sequence with variables
// numbered by first occurrence across the whole sequence. Two descriptions
// with equal content strings are interchangeable in any derivation.
func canonContent(kind string, cqs ...lang.CQ) string {
	var sb strings.Builder
	sb.WriteString(kind)
	num := map[string]int{}
	for _, cq := range cqs {
		sb.WriteByte('|')
		canonAtom(&sb, num, cq.Head, nil)
		for _, a := range cq.Body {
			canonAtom(&sb, num, a, nil)
		}
		sb.WriteByte('|')
		for _, cmp := range cq.Comps {
			canonComp(&sb, num, cmp)
		}
	}
	return sb.String()
}

// recordContent stores the canonical content string for description id.
func (c *catalog) recordContent(id, kind string, cqs ...lang.CQ) {
	if c.descContent == nil {
		c.descContent = map[string]string{}
	}
	c.descContent[id] = canonContent(kind, cqs...)
}

// recordVpred stores the canonical content of one normalized inclusion
// (V ⊆ rhs with V :- lhs) under its fresh V-predicate name. V-predicate
// names embed the description ID and a global counter, so two
// content-identical replicated mappings mint *different* V-predicates;
// childSig canonicalizes V-pred atoms through this table so the copies
// still produce equal signatures. Keyed per normalized inclusion (not per
// description) so the two directions of an equality stay distinct.
func (c *catalog) recordVpred(vpred string, lhs, rhs lang.CQ) {
	if c.vpredContent == nil {
		c.vpredContent = map[string]string{}
	}
	c.vpredContent[vpred] = canonContent("ninc", lhs, rhs)
}

func canonTerm(sb *strings.Builder, num map[string]int, t lang.Term) {
	if t.IsConst() {
		sb.WriteString("=" + t.Name)
		return
	}
	i, ok := num[t.Name]
	if !ok {
		i = len(num)
		num[t.Name] = i
	}
	fmt.Fprintf(sb, "?%d", i)
}

// canonAtom canonicalizes one atom; vpreds, when non-nil, maps V-predicate
// names to their normalized-inclusion content so content-identical
// replicated mappings (whose minted V-predicate names differ) render
// identically.
func canonAtom(sb *strings.Builder, num map[string]int, a lang.Atom, vpreds map[string]string) {
	if content, ok := vpreds[a.Pred]; ok {
		sb.WriteString("V{" + content + "}")
	} else {
		sb.WriteString(a.Pred)
	}
	for _, t := range a.Args {
		sb.WriteByte('~')
		canonTerm(sb, num, t)
	}
	sb.WriteByte(';')
}

func canonComp(sb *strings.Builder, num map[string]int, c lang.Comparison) {
	canonTerm(sb, num, c.L)
	sb.WriteString(c.Op.String())
	canonTerm(sb, num, c.R)
	sb.WriteByte(';')
}

// childSig canonicalizes a candidate expansion of goal n for duplicate-
// description pruning: the parent rule node's goal labels (pinning the
// variables shared with the context), the originating description's
// canonical content, and the instantiated expansion (subgoal atoms,
// comparisons, exports, covered sibling indexes). Equal signatures under the
// same goal node mean interchangeable expansions. ok is false when the
// description has no recorded content (defensive: never prune then).
func (b *builder) childSig(n *node, descID string, atoms []lang.Atom, comps []lang.Comparison, export lang.Subst, covered []int) (sig string, ok bool) {
	content, ok := b.cat.descContent[descID]
	if !ok {
		return "", false
	}
	var sb strings.Builder
	num := map[string]int{}
	for _, sib := range n.parent.children {
		canonAtom(&sb, num, sib.label, b.cat.vpredContent)
	}
	sb.WriteByte('#')
	sb.WriteString(content)
	sb.WriteByte('#')
	for _, a := range atoms {
		canonAtom(&sb, num, a, b.cat.vpredContent)
	}
	sb.WriteByte('#')
	for _, cmp := range comps {
		canonComp(&sb, num, cmp)
	}
	sb.WriteByte('#')
	keys := make([]string, 0, len(export))
	for k := range export {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		canonTerm(&sb, num, export[k])
		sb.WriteByte(';')
	}
	sb.WriteByte('#')
	for _, ci := range covered {
		fmt.Fprintf(&sb, "%d,", ci)
	}
	return sb.String(), true
}
