package core
