package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/constraints"
	"repro/internal/lang"
	"repro/internal/minicon"
	"repro/internal/obs"
)

// nodeKind distinguishes goal nodes from rule nodes (Section 4.2 step 2).
type nodeKind uint8

const (
	goalNode nodeKind = iota
	ruleNode
)

// node is a rule-goal tree node.
type node struct {
	id   int
	kind nodeKind

	// label is the atom of a goal node.
	label lang.Atom

	// descID is the description that created a rule node (empty for the
	// query's own rule node).
	descID string
	// comps are the comparison predicates contributed by the description
	// instance at this rule node (already instantiated).
	comps []lang.Comparison
	// export carries bindings the expansion forces on the goal's own
	// variables, to be applied to the final rewriting: for inclusion
	// expansions the MCD export; for definitional expansions the bindings
	// the head unification imposes on the goal label (e.g. unifying goal
	// SkilledPerson(p, c) with rule head SkilledPerson(p, "Doctor") binds
	// c to "Doctor").
	export lang.Subst
	// unc, for rule nodes created by an inclusion expansion, lists the
	// sibling goal nodes of the parent that the MCD covers (always
	// including the parent goal itself) — the paper's unc(n) label.
	unc []*node

	// children: for a goal node, its alternative expansions (rule nodes);
	// for a rule node, its subgoals (goal nodes).
	children []*node
	parent   *node

	// constraint is the node's constraint label c(n).
	constraint *constraints.Set

	// banned is the set of description IDs used on the path from the root
	// to this node (nil maps are shared with the parent when unchanged).
	banned map[string]bool

	// stored marks goal nodes over stored relations (leaves).
	stored bool
	// dead marks goal nodes that cannot contribute any rewriting (no
	// expansion, not stored) — set during construction for pruning.
	dead bool
}

// Options configures tree construction and extraction.
type Options struct {
	// MaxNodes caps the number of tree nodes; 0 means the default
	// (2,000,000). Construction stops with an error when exceeded.
	MaxNodes int
	// NoPruneUnsat disables dead-end pruning via unsatisfiable constraint
	// labels (Section 4.3); pruning is on by default.
	NoPruneUnsat bool
	// NoMemo disables memoization of unproductive goal expansions
	// (Section 4.3); memoization is on by default.
	NoMemo bool
	// NoPriority disables the priority scheme that expands low-fanout
	// subgoals first to surface dead ends early (Section 4.3); on by
	// default.
	NoPriority bool
	// NoUselessPath disables the Section 4.3 useless-path rule: when a
	// subgoal's only reformulation route is a single inclusion view and
	// every resulting MCD also covers its (sole) sibling, the sibling's
	// own expansions are all redundant and are skipped. On by default.
	NoUselessPath bool
	// NoPruneSubsumed disables the deep-topology subtree pruning (see
	// prune.go): hopeless-predicate pruning (a goal whose predicate can
	// never bottom out in stored relations is marked dead without building
	// its subtree) and duplicate-description pruning (an expansion whose
	// originating description is content-identical to an already-built
	// sibling expansion with the same instantiation is skipped — replicated
	// mappings make these common). Both prunes leave the extracted rewriting
	// set unchanged; on by default.
	NoPruneSubsumed bool
	// NoPropagateUp disables upward constraint propagation (the paper's
	// predicate-move-around remark in Section 4.2): comparisons implied by
	// EVERY expansion of a goal are hoisted into the goal's own label; if
	// the strengthened label contradicts the context, the goal is a dead
	// end even though each child alone looked viable. On by default.
	NoPropagateUp bool
	// KeepRedundant disables containment-based redundancy elimination of
	// the final union (cheap minimization is on by default only in
	// Reformulate, never in streaming).
	KeepRedundant bool
	// MaxRewritings caps extraction (0 = all).
	MaxRewritings int
	// Trace, when non-nil, receives one child span per rule-goal tree node
	// expanded during construction (goal nodes as "goal", their expansions
	// as "rule"/"mcd" children), nested to mirror the tree. Nil disables
	// tracing at the cost of nil checks only.
	Trace *obs.Span
}

const defaultMaxNodes = 2_000_000

// Stats reports reformulation metrics (the quantities of Figures 3 and 4).
type Stats struct {
	GoalNodes      int // goal nodes created
	RuleNodes      int // rule nodes created
	PrunedUnsat    int // expansions suppressed by unsatisfiable labels
	PrunedEmpty    int // expansions skipped over never-groundable predicates
	PrunedSubsumed int // duplicate-description expansions skipped
	MemoHits       int // goal expansions skipped by the unproductive-memo
	DeadEnds       int // goal nodes with no productive expansion
	UselessSkipped int // subgoals skipped by the useless-path rule
	Rewritings     int // conjunctive rewritings emitted
	DiscardUnsat   int // candidate rewritings discarded as unsatisfiable
}

// Nodes returns the total node count (the paper's Figure 3 metric).
func (s Stats) Nodes() int { return s.GoalNodes + s.RuleNodes }

// builder constructs the rule-goal tree.
type builder struct {
	cat   *catalog
	opts  Options
	vs    *lang.VarSupply
	stats Stats
	nid   int
	// memo records, per canonical goal-label pattern, the banned-description
	// sets under which the goal proved unproductive. A goal is skippable
	// when some recorded set is a SUBSET of its own banned set: forbidding
	// strictly more descriptions can only remove expansions, so
	// unproductivity is monotone in the ban set.
	memo map[string][]map[string]bool
	err  error
}

// build constructs the full tree for query q and returns the root.
func (r *Reformulator) build(q lang.CQ) (*node, *builder, error) {
	b := &builder{
		cat:  r.cat,
		opts: r.opts,
		vs:   lang.NewVarSupply("_x"),
		memo: map[string][]map[string]bool{},
	}
	maxNodes := b.opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = defaultMaxNodes
	}

	root := &node{id: b.nextID(), kind: goalNode, label: q.Head, constraint: constraints.New()}
	b.stats.GoalNodes++
	qr := &node{
		id:         b.nextID(),
		kind:       ruleNode,
		parent:     root,
		comps:      q.Comps,
		constraint: constraints.New(q.Comps...),
		banned:     map[string]bool{},
	}
	b.stats.RuleNodes++
	root.children = []*node{qr}
	for _, g := range q.Body {
		gn := &node{
			id:         b.nextID(),
			kind:       goalNode,
			parent:     qr,
			label:      g,
			constraint: qr.constraint,
			banned:     qr.banned,
			stored:     b.cat.isStored(g.Pred),
		}
		qr.children = append(qr.children, gn)
		b.stats.GoalNodes++
	}
	// Expand each subgoal depth-first.
	b.expandChildren(qr, maxNodes, r.opts.Trace)
	if b.err != nil {
		return nil, nil, b.err
	}
	if sp := r.opts.Trace; sp != nil {
		sp.SetInt("goal_nodes", int64(b.stats.GoalNodes))
		sp.SetInt("rule_nodes", int64(b.stats.RuleNodes))
		sp.SetInt("memo_hits", int64(b.stats.MemoHits))
		sp.SetInt("pruned_unsat", int64(b.stats.PrunedUnsat))
		sp.SetInt("pruned_empty", int64(b.stats.PrunedEmpty))
		sp.SetInt("pruned_subsumed", int64(b.stats.PrunedSubsumed))
	}
	return root, b, nil
}

// expandChildren expands every goal child of rule node rn in priority
// order, applying the Section 4.3 useless-path rule: after expanding a
// child gn whose only reformulation route is a single inclusion view, if
// every resulting expansion also covers gn's sole sibling, the sibling's
// own expansions are redundant and it is left unexpanded (extraction covers
// it through gn's unc labels).
func (b *builder) expandChildren(rn *node, maxNodes int, sp *obs.Span) {
	skip := map[*node]bool{}
	for _, gn := range b.orderChildren(rn.children) {
		if skip[gn] {
			b.stats.UselessSkipped++
			continue
		}
		b.expand(gn, maxNodes, sp)
		if b.err != nil {
			return
		}
		if !b.opts.NoUselessPath && len(rn.children) == 2 {
			if other := b.uselessSibling(rn, gn); other != nil {
				skip[other] = true
			}
		}
	}
}

// uselessSibling returns gn's sibling when the useless-path conditions hold
// for expanded child gn of rule node rn, else nil. Restricted to two-child
// rule nodes: there, gn's resolvers can only be its own expansions (the
// sibling stays unexpanded, so no competing MCDs targeting it exist), and
// if all of them cover the sibling, the sibling never needs its own.
func (b *builder) uselessSibling(rn *node, gn *node) *node {
	if gn.stored || gn.dead || len(gn.children) == 0 {
		return nil
	}
	if len(b.cat.rulesByHead[gn.label.Pred]) > 0 {
		return nil // a definitional expansion would not cover the sibling
	}
	if len(b.cat.viewsByBodyPred[gn.label.Pred]) != 1 {
		return nil
	}
	var other *node
	for _, c := range rn.children {
		if c != gn {
			other = c
		}
	}
	if other == nil || other.stored {
		return nil
	}
	for _, cr := range gn.children {
		covers := false
		for _, u := range cr.unc {
			if u == other {
				covers = true
				break
			}
		}
		if !covers {
			return nil
		}
	}
	return other
}

func (b *builder) nextID() int {
	b.nid++
	return b.nid
}

// contextKey canonicalizes a goal node for the unproductive-memo. A goal's
// expansions depend not only on its own label but on its whole rule-node
// context: its siblings (MCD closure may need to cover them) and the
// required variables (the parent goal's label). The key therefore
// canonicalizes [parent-goal label; self label; sibling labels in order]
// with variables numbered by first occurrence — two goals with equal keys
// have isomorphic expansion problems.
func contextKey(n *node) string {
	var sb strings.Builder
	num := map[string]int{}
	writeAtom := func(a lang.Atom) {
		sb.WriteString(a.Pred)
		for _, t := range a.Args {
			if t.IsConst() {
				sb.WriteString("|=" + t.Name)
				continue
			}
			i, ok := num[t.Name]
			if !ok {
				i = len(num)
				num[t.Name] = i
			}
			fmt.Fprintf(&sb, "|?%d", i)
		}
		sb.WriteByte(';')
	}
	if n.parent != nil && n.parent.parent != nil {
		writeAtom(n.parent.parent.label)
	}
	sb.WriteByte('@')
	writeAtom(n.label)
	sb.WriteByte('@')
	if n.parent != nil {
		for _, sib := range n.parent.children {
			if sib != n {
				writeAtom(sib.label)
			}
		}
	}
	return sb.String()
}

// memoUnproductive reports whether the memo proves n unproductive: some
// recorded ban set for its label pattern is a subset of n's.
func (b *builder) memoUnproductive(key string, banned map[string]bool) bool {
	for _, s := range b.memo[key] {
		if isSubset(s, banned) {
			return true
		}
	}
	return false
}

// memoRecord stores an unproductive finding, dropping recorded supersets.
func (b *builder) memoRecord(key string, banned map[string]bool) {
	kept := b.memo[key][:0]
	for _, s := range b.memo[key] {
		if !isSubset(banned, s) {
			kept = append(kept, s)
		}
	}
	b.memo[key] = append(kept, banned)
}

func isSubset(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// expand grows the subtree under goal node n depth-first and returns whether
// the subtree is productive (some choice of expansions bottoms out in stored
// relations for n and, recursively, for all subgoals of the chosen rules).
func (b *builder) expand(n *node, maxNodes int, sp *obs.Span) bool {
	if b.err != nil {
		return false
	}
	if n.stored {
		return true
	}
	if b.stats.Nodes() > maxNodes {
		b.err = fmt.Errorf("core: node budget exceeded (%d nodes); the PDMS may be too deep or too replicated — raise Options.MaxNodes", maxNodes)
		return false
	}
	ns := sp.Child("goal", obs.Attr{K: "pred", V: n.label.Pred})
	defer ns.End()
	if !b.opts.NoPruneSubsumed && !b.cat.groundableGoal(n.label.Pred) {
		// No chain of rules and views grounds this predicate in stored
		// relations: the subtree cannot contribute a rewriting, and no
		// sibling MCD can cover the goal either (see prune.go). Dead
		// without expansion.
		b.stats.PrunedEmpty++
		n.dead = true
		b.stats.DeadEnds++
		ns.Set("dead", "true")
		ns.Set("pruned", "empty")
		return false
	}
	var key string
	var restrictedBans map[string]bool
	if !b.opts.NoMemo {
		key = contextKey(n)
		// Only descriptions reachable from this predicate can influence
		// the subtree; restricting the ban set to that cone makes memo
		// entries comparable across unrelated branches.
		reach := b.cat.reachable(n.label.Pred)
		restrictedBans = map[string]bool{}
		for d := range n.banned {
			if reach[d] {
				restrictedBans[d] = true
			}
		}
		if b.memoUnproductive(key, restrictedBans) {
			// Known unproductive under a weaker (or equal) ban set: skip
			// building the subtree entirely.
			b.stats.MemoHits++
			n.dead = true
			b.stats.DeadEnds++
			ns.Set("memo", "hit")
			ns.Set("dead", "true")
			return false
		}
	}

	productive := false

	// seen records signatures of already-built expansions of n for
	// duplicate-description pruning (nil when disabled).
	var seen map[string]bool
	if !b.opts.NoPruneSubsumed {
		seen = map[string]bool{}
	}

	// Case 1: definitional expansion (GAV-style).
	for _, ru := range b.cat.rulesByHead[n.label.Pred] {
		if !ru.fromInclusion && n.banned[ru.id] {
			continue
		}
		if b.definitionalChild(n, ru, maxNodes, ns, seen) {
			productive = true
		}
		if b.err != nil {
			return false
		}
	}

	// Case 2: inclusion expansion (LAV-style) via MCDs against the
	// conjunction formed by n and its siblings.
	parent := n.parent
	goals := make([]lang.Atom, len(parent.children))
	selfIdx := -1
	for i, sib := range parent.children {
		goals[i] = sib.label
		if sib == n {
			selfIdx = i
		}
	}
	required := requiredVars(parent)
	for _, view := range b.cat.viewsByBodyPred[n.label.Pred] {
		if n.banned[view.ID] {
			continue
		}
		for _, mcd := range minicon.Form(goals, selfIdx, required, view, b.vs) {
			if b.inclusionChild(n, view, mcd, maxNodes, ns, seen) {
				productive = true
			}
			if b.err != nil {
				return false
			}
		}
	}

	if productive && !b.opts.NoPropagateUp {
		if !b.propagateUp(n) {
			productive = false
			b.stats.PrunedUnsat++
		}
	}
	if !productive {
		n.dead = true
		b.stats.DeadEnds++
		ns.Set("dead", "true")
		if !b.opts.NoMemo {
			b.memoRecord(key, restrictedBans)
		}
	}
	return productive
}

// propagateUp hoists comparisons implied by EVERY live expansion of n into
// n's own constraint (the least subsuming conjunction of the expansion
// disjunction, projected onto n's variables — the paper's upward
// predicate-move-around remark). It reports false when the strengthened
// label contradicts n's context, making n a dead end. The hoisting is sound
// for dead-end detection because any rewriting through n goes through some
// expansion, and all of them entail the hoisted constraints.
func (b *builder) propagateUp(n *node) bool {
	vars := n.label.Vars(nil)
	var meet *constraints.Set
	for _, rn := range n.children {
		if len(rn.comps) == 0 {
			return true // an unconstrained expansion exists: nothing to hoist
		}
		proj := rn.constraint.Project(vars)
		if meet == nil {
			meet = proj
			continue
		}
		// Keep only comparisons the new projection also implies.
		kept := &constraints.Set{}
		for _, c := range meet.Comparisons() {
			if proj.Implies(c) {
				kept.Add(c)
			}
		}
		meet = kept
		if meet.Len() == 0 {
			return true
		}
	}
	if meet == nil || meet.Len() == 0 {
		return true
	}
	strengthened := n.constraint.And(meet)
	if !strengthened.Satisfiable() {
		return false
	}
	n.constraint = strengthened
	return true
}

// requiredVars computes the variable names the context of rule node r still
// needs from any MCD formed over r's children: the variables of r's parent
// goal label (the only channel connecting the local conjunction to the rest
// of the tree) — for the query's rule node, the query head variables.
func requiredVars(r *node) map[string]bool {
	out := map[string]bool{}
	if r.parent != nil {
		for _, v := range r.parent.label.Vars(nil) {
			out[v.Name] = true
		}
	}
	return out
}

// definitionalChild performs one definitional expansion of goal node n with
// rule ru; returns productivity of the new subtree. seen is the goal's
// duplicate-description signature set (nil when pruning is disabled).
func (b *builder) definitionalChild(n *node, ru *rule, maxNodes int, sp *obs.Span, seen map[string]bool) bool {
	fresh, _ := ru.cq.Rename(b.vs)
	sigma, ok := lang.Unify(fresh.Head, n.label, nil)
	if !ok {
		return false
	}
	comps := sigma.ApplyComparisons(fresh.Comps)
	constraint := n.constraint.And(constraints.New(comps...))
	if !b.opts.NoPruneUnsat && len(comps) > 0 && !constraint.Satisfiable() {
		b.stats.PrunedUnsat++
		return false
	}
	banned := n.banned
	if !ru.fromInclusion {
		banned = extendBan(n.banned, ru.id)
	}
	// Bindings the head unification imposes on the goal's own variables
	// must flow into the final rewriting (its head and sibling atoms).
	export := lang.NewSubst()
	for _, v := range n.label.Vars(nil) {
		if img := sigma.Apply(v); img != v {
			export[v.Name] = img
		}
	}
	body := make([]lang.Atom, len(fresh.Body))
	for i, g := range fresh.Body {
		body[i] = sigma.ApplyAtom(g)
	}
	var sig string
	if seen != nil {
		for _, ga := range body {
			if !b.cat.groundableGoal(ga.Pred) {
				// A subgoal over a never-groundable predicate can neither be
				// productive nor covered by a sibling MCD (see prune.go):
				// the whole rule node is hopeless before construction.
				b.stats.PrunedEmpty++
				return false
			}
		}
		if s, ok := b.childSig(n, ru.id, body, comps, export, nil); ok {
			if prod, dup := seen[s]; dup {
				b.stats.PrunedSubsumed++
				return prod
			}
			sig = s
		}
	}
	rn := &node{
		id:         b.nextID(),
		kind:       ruleNode,
		parent:     n,
		descID:     ru.id,
		comps:      comps,
		export:     export,
		constraint: constraint,
		banned:     banned,
	}
	b.stats.RuleNodes++
	for _, ga := range body {
		gn := &node{
			id:         b.nextID(),
			kind:       goalNode,
			parent:     rn,
			label:      ga,
			constraint: constraint,
			banned:     banned,
			stored:     b.cat.isStored(ga.Pred),
		}
		rn.children = append(rn.children, gn)
		b.stats.GoalNodes++
	}
	rs := sp.Child("rule", obs.Attr{K: "desc", V: ru.id})
	b.expandChildren(rn, maxNodes, rs)
	rs.End()
	if b.err != nil {
		return false
	}
	n.children = append(n.children, rn)
	// A rule node is productive when every child is stored, productive, or
	// covered by a sibling's productive inclusion expansion (unc labels).
	prod := ruleNodeProductive(rn)
	if sig != "" {
		seen[sig] = prod
	}
	return prod
}

// inclusionChild performs one inclusion expansion of goal node n with the
// given MCD; returns productivity. seen is the goal's duplicate-description
// signature set (nil when pruning is disabled).
func (b *builder) inclusionChild(n *node, view *minicon.View, mcd minicon.MCD, maxNodes int, sp *obs.Span, seen map[string]bool) bool {
	comps := mcd.Comps
	constraint := n.constraint.And(constraints.New(comps...))
	if !b.opts.NoPruneUnsat && len(comps) > 0 && !constraint.Satisfiable() {
		b.stats.PrunedUnsat++
		return false
	}
	var sig string
	if seen != nil {
		if !b.cat.groundableGoal(mcd.Atom.Pred) {
			// The view's V-predicate never grounds out: the MCD subtree is
			// hopeless before construction.
			b.stats.PrunedEmpty++
			return false
		}
		if s, ok := b.childSig(n, view.ID, []lang.Atom{mcd.Atom}, comps, mcd.Export, mcd.Covered); ok {
			if prod, dup := seen[s]; dup {
				b.stats.PrunedSubsumed++
				return prod
			}
			sig = s
		}
	}
	banned := extendBan(n.banned, view.ID)
	rn := &node{
		id:         b.nextID(),
		kind:       ruleNode,
		parent:     n,
		descID:     view.ID,
		comps:      comps,
		export:     mcd.Export,
		constraint: constraint,
		banned:     banned,
	}
	b.stats.RuleNodes++
	// unc: the sibling goal nodes covered by the MCD.
	for _, ci := range mcd.Covered {
		rn.unc = append(rn.unc, n.parent.children[ci])
	}
	gn := &node{
		id:         b.nextID(),
		kind:       goalNode,
		parent:     rn,
		label:      mcd.Atom,
		constraint: constraint,
		banned:     banned,
		stored:     b.cat.isStored(mcd.Atom.Pred),
	}
	rn.children = []*node{gn}
	b.stats.GoalNodes++
	rs := sp.Child("mcd", obs.Attr{K: "view", V: view.ID})
	prod := b.expand(gn, maxNodes, rs)
	rs.End()
	n.children = append(n.children, rn)
	if sig != "" {
		seen[sig] = prod
	}
	return prod
}

// ruleNodeProductive reports whether every child of rn is either productive
// itself or covered by some sibling's productive inclusion expansion.
func ruleNodeProductive(rn *node) bool {
	covered := map[*node]bool{}
	for _, child := range rn.children {
		if child.stored || !child.dead {
			covered[child] = true
			// Inclusion expansions of productive children may cover dead
			// siblings.
			for _, cr := range child.children {
				if len(cr.unc) == 0 {
					continue
				}
				if len(cr.children) == 1 && (cr.children[0].stored || !cr.children[0].dead) {
					for _, u := range cr.unc {
						covered[u] = true
					}
				}
			}
		}
	}
	for _, child := range rn.children {
		if !covered[child] {
			return false
		}
	}
	return true
}

// orderChildren returns the expansion order for a rule node's children:
// with the priority scheme enabled, children with the fewest applicable
// descriptions first (dead ends surface early, maximizing memo/prune
// benefit); otherwise document order.
func (b *builder) orderChildren(children []*node) []*node {
	if b.opts.NoPriority || len(children) < 2 {
		return children
	}
	type scored struct {
		n     *node
		score int
	}
	sc := make([]scored, len(children))
	for i, c := range children {
		s := 0
		if !c.stored {
			s = len(b.cat.rulesByHead[c.label.Pred]) + len(b.cat.viewsByBodyPred[c.label.Pred])
		}
		sc[i] = scored{c, s}
	}
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].score < sc[j].score })
	out := make([]*node, len(children))
	for i, s := range sc {
		out[i] = s.n
	}
	return out
}

// extendBan returns banned ∪ {id} without mutating the shared parent map.
func extendBan(banned map[string]bool, id string) map[string]bool {
	out := make(map[string]bool, len(banned)+1)
	for k := range banned {
		out[k] = true
	}
	out[id] = true
	return out
}
