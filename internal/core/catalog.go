// Package core implements the paper's primary contribution: the rule-goal
// tree query reformulation algorithm for PPL (Section 4), which uniformly
// interleaves GAV-style (definitional) and LAV-style (inclusion, via MiniCon
// descriptions) expansions, chains through arbitrarily long paths of peer
// mappings, and extracts reformulations as a union of conjunctive queries
// over stored relations.
package core

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/minicon"
	"repro/internal/ppl"
)

// rule is a datalog rule available for definitional expansion: an original
// definitional peer mapping, or the "V :- Q1" half of a normalized inclusion.
type rule struct {
	// id is the originating description's ID (for the once-per-path rule).
	id string
	// cq is the rule itself.
	cq lang.CQ
	// fromInclusion marks V-rules: they complete an inclusion expansion
	// that already consumed the description's path budget, so they are
	// exempt from the once-per-path check (their head predicate is a fresh
	// V that occurs nowhere else, so they cannot recurse).
	fromInclusion bool
}

// catalog is the step-1 normalized form of a PDMS (Section 4.2): every
// equality split into two inclusions, every inclusion Q1 ⊆ Q2 split into a
// view V ⊆ Q2 plus a rule V :- Q1, definitional mappings kept as rules.
// Indexed for expansion.
type catalog struct {
	pdms *ppl.PDMS
	// rulesByHead indexes rules by head predicate (definitional expansion).
	rulesByHead map[string][]*rule
	// viewsByBodyPred indexes views by body predicate (inclusion expansion).
	viewsByBodyPred map[string][]*minicon.View
	// nViews counts normalized views (diagnostics).
	nViews int
	// reach caches, per predicate, the set of description IDs reachable
	// from it in the dependency graph: only these descriptions can occur
	// anywhere in a rule-goal subtree rooted at a goal over the predicate,
	// so ban-sets restricted to this cone fully determine the subtree.
	reach map[string]map[string]bool
	// nextPreds maps each description ID to the predicates its expansion
	// introduces (definitional rule body; inclusion LHS body via the
	// V-rule).
	nextPreds map[string][]string
	// grounds caches the groundability fixpoint (see prune.go): rule-head
	// predicates derivable from stored relations.
	grounds map[string]bool
	// descContent maps each description ID to its canonical content string,
	// used by duplicate-description pruning (see prune.go).
	descContent map[string]string
	// vpredContent maps each minted V-predicate name to its normalized
	// inclusion's canonical content, so replicated mappings' distinct
	// V-predicates canonicalize identically in childSig (see prune.go).
	vpredContent map[string]string
}

// newCatalog normalizes the PDMS descriptions.
func newCatalog(n *ppl.PDMS) (*catalog, error) {
	c := &catalog{
		pdms:            n,
		rulesByHead:     map[string][]*rule{},
		viewsByBodyPred: map[string][]*minicon.View{},
	}
	vnum := 0
	// addInclusion normalizes one inclusion Q1 ⊆ Q2 originating from
	// description id: fresh V; view V ⊆ Q2; rule V :- Q1.
	addInclusion := func(id string, lhs, rhs lang.CQ) {
		vnum++
		vpred := fmt.Sprintf("_V%d[%s]", vnum, id)
		view := &minicon.View{
			ID:    id,
			Head:  lang.Atom{Pred: vpred, Args: rhs.Head.Args},
			Body:  rhs.Body,
			Comps: rhs.Comps,
		}
		c.addView(view)
		c.addRule(&rule{
			id:            id,
			fromInclusion: true,
			cq: lang.CQ{
				Head:  lang.Atom{Pred: vpred, Args: lhs.Head.Args},
				Body:  lhs.Body,
				Comps: lhs.Comps,
			},
		})
		c.recordNext(id, lhs.Body)
		c.recordVpred(vpred, lhs, rhs)
	}
	for _, m := range n.Mappings() {
		switch m.Kind {
		case ppl.Inclusion:
			addInclusion(m.ID, m.LHS, m.RHS)
			c.recordContent(m.ID, "inc", m.LHS, m.RHS)
		case ppl.Equality:
			// Step 1: an equality is the two opposite inclusions.
			addInclusion(m.ID, m.LHS, m.RHS)
			addInclusion(m.ID, m.RHS, m.LHS)
			c.recordContent(m.ID, "eq", m.LHS, m.RHS)
		case ppl.Definitional:
			c.addRule(&rule{id: m.ID, cq: m.Rule})
			c.recordNext(m.ID, m.Rule.Body)
			c.recordContent(m.ID, "def", m.Rule)
		}
	}
	for _, s := range n.Storages() {
		// A storage description A.R ⊆ Q is the inclusion
		// {A.R(x̄)} ⊆ Q, whose normalized rule grounds out in the stored
		// relation. Equality storage descriptions add no reformulation
		// power in the other direction (goal nodes over stored relations
		// are leaves), so both kinds normalize identically; the
		// distinction matters to ppl.Classify, not to reformulation.
		lhs := lang.CQ{
			Head: lang.Atom{Pred: "_store", Args: s.Stored.Args},
			Body: []lang.Atom{s.Stored},
		}
		rhs := s.Query
		rhs.Head = lang.Atom{Pred: "_store", Args: s.Query.Head.Args}
		addInclusion(s.ID, lhs, rhs)
		c.recordContent(s.ID, "store", lhs, rhs)
	}
	return c, nil
}

func (c *catalog) addRule(r *rule) {
	if !r.cq.IsSafe() {
		// Mappings are validated at AddMapping time; this is a defensive
		// invariant for rules synthesized here.
		panic(fmt.Sprintf("core: unsafe normalized rule %s", r.cq))
	}
	c.rulesByHead[r.cq.Head.Pred] = append(c.rulesByHead[r.cq.Head.Pred], r)
}

func (c *catalog) addView(v *minicon.View) {
	c.nViews++
	seen := map[string]bool{}
	for _, a := range v.Body {
		if !seen[a.Pred] {
			seen[a.Pred] = true
			c.viewsByBodyPred[a.Pred] = append(c.viewsByBodyPred[a.Pred], v)
		}
	}
}

// isStored reports whether pred names a stored relation (leaf predicate).
func (c *catalog) isStored(pred string) bool { return c.pdms.IsStored(pred) }

// recordNext registers the predicates a description's use introduces.
func (c *catalog) recordNext(id string, preds []lang.Atom) {
	if c.nextPreds == nil {
		c.nextPreds = map[string][]string{}
	}
	for _, a := range preds {
		c.nextPreds[id] = append(c.nextPreds[id], a.Pred)
	}
}

// reachable returns the description IDs reachable from pred (cached).
func (c *catalog) reachable(pred string) map[string]bool {
	if c.reach == nil {
		c.reach = map[string]map[string]bool{}
	}
	if r, ok := c.reach[pred]; ok {
		return r
	}
	out := map[string]bool{}
	c.reach[pred] = out // pre-publish to cut cycles
	var visitPred func(p string)
	seenPred := map[string]bool{}
	visitPred = func(p string) {
		if seenPred[p] {
			return
		}
		seenPred[p] = true
		var ids []string
		for _, ru := range c.rulesByHead[p] {
			ids = append(ids, ru.id)
		}
		for _, v := range c.viewsByBodyPred[p] {
			ids = append(ids, v.ID)
		}
		for _, id := range ids {
			if !out[id] {
				out[id] = true
				for _, np := range c.nextPreds[id] {
					visitPred(np)
				}
			}
		}
	}
	visitPred(pred)
	return out
}
