package core

import (
	"fmt"
	"strings"

	"repro/internal/lang"
)

// ExplainTree builds the rule-goal tree for q and renders it as an
// indented textual outline (Figure 2 of the paper, in ASCII): goal nodes
// show their label, rule nodes the description that created them, unc
// labels the covered uncles, and dead/stored markers the node's fate.
// Large trees are truncated at maxLines (0 = default 400).
func (r *Reformulator) ExplainTree(q lang.CQ, maxLines int) (string, error) {
	if err := r.check(q); err != nil {
		return "", err
	}
	root, _, err := r.build(q)
	if err != nil {
		return "", err
	}
	if maxLines <= 0 {
		maxLines = 400
	}
	var sb strings.Builder
	lines := 0
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if lines >= maxLines {
			return
		}
		lines++
		indent := strings.Repeat("  ", depth)
		switch n.kind {
		case goalNode:
			marker := ""
			switch {
			case n.stored:
				marker = "  [stored]"
			case n.dead:
				marker = "  [dead end]"
			case len(n.children) == 0 && depth > 0:
				marker = "  [covered by sibling]"
			}
			fmt.Fprintf(&sb, "%sgoal %s%s\n", indent, n.label, marker)
		case ruleNode:
			desc := n.descID
			if desc == "" {
				desc = "query"
			}
			var extras []string
			if len(n.unc) > 0 {
				var covers []string
				for _, u := range n.unc {
					covers = append(covers, u.label.String())
				}
				extras = append(extras, "unc={"+strings.Join(covers, ", ")+"}")
			}
			if len(n.export) > 0 {
				extras = append(extras, "export="+n.export.String())
			}
			if len(n.comps) > 0 {
				var cs []string
				for _, c := range n.comps {
					cs = append(cs, c.String())
				}
				extras = append(extras, "where "+strings.Join(cs, " AND "))
			}
			suffix := ""
			if len(extras) > 0 {
				suffix = "  (" + strings.Join(extras, "; ") + ")"
			}
			fmt.Fprintf(&sb, "%srule %s%s\n", indent, desc, suffix)
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	if lines >= maxLines {
		fmt.Fprintf(&sb, "… (truncated at %d lines)\n", maxLines)
	}
	return sb.String(), nil
}
