package core

import (
	"testing"

	"repro/internal/chase"
	"repro/internal/parser"
	"repro/internal/ppl"
	"repro/internal/rel"
)

// FuzzPPLReformulate is the reformulate-vs-chase differential under fuzzed
// PPL specifications (the carried-over ROADMAP item): for any specification
// and query the fuzzer can assemble, reformulation must never panic, its
// rewriting must evaluate, and its answers must agree with the chase oracle
// — exact certain-answer equality on PTIME specifications, soundness
// (answers ⊆ canonical-instance answers) outside the tractable fragment.
// The pruned and seed (unpruned) builds are both checked, so the fuzzer
// also hunts for inputs where the deep-topology pruning changes answers.
//
// Budget caps keep each exec fast; a build that hits the node or rewriting
// cap is skipped rather than compared (a truncated union is legitimately
// incomplete). The committed corpus under testdata/fuzz seeds the shapes
// that matter: replicated mappings, decoy branches, equalities,
// definitional layers, comparisons.
func FuzzPPLReformulate(f *testing.F) {
	type pair struct{ spec, query string }
	for _, s := range []pair{
		{
			"storage A.r(x, y) in A:R(x, y)\nfact A.r(\"1\", \"2\")",
			`q(x, y) :- A:R(x, y)`,
		},
		{
			"include B:S(x, y) in A:R(x, y)\ninclude B:S(x, y) in A:R(x, y)\nstorage B.s(x, y) in B:S(x, y)\nfact B.s(\"1\", \"2\")\nfact B.s(\"2\", \"3\")",
			`q(x, z) :- A:R(x, y), A:R(y, z)`,
		},
		{
			"include C:T(x, y) in B:S(x, y)\ninclude B:S(x, y) in A:R(x, y)\ninclude X:D(x, y) in A:R(x, y)\nstorage C.t(x, y) in C:T(x, y)\nfact C.t(\"1\", \"1\")",
			`q(x) :- A:R(x, x)`,
		},
		{
			"equal A:R(x, y) and B:S(x, y)\nstorage B.s(x, y) in B:S(x, y)\nfact B.s(\"a\", \"b\")",
			`q(x, y) :- A:R(x, y)`,
		},
		{
			"define T:Top(x, z) :- M:A(x, y), M:B(y, z)\nstorage S0.r(x, y) in M:A(x, y)\nstorage S1.r(x, y) in M:B(x, y)\nfact S0.r(\"1\", \"2\")\nfact S1.r(\"2\", \"3\")",
			`q(x, z) :- T:Top(x, z)`,
		},
		{
			"storage P0.s(x, y) in A:R(x, y), x >= 0, x < 10\nstorage P1.s(x, y) in A:R(x, y), x >= 10, x < 20\nfact P0.s(\"5\", \"a\")\nfact P1.s(\"15\", \"b\")",
			`q(x, y) :- A:R(x, y), x >= 10`,
		},
	} {
		f.Add(s.spec, s.query)
	}
	f.Fuzz(func(t *testing.T, src, qsrc string) {
		if len(src) > 2048 || len(qsrc) > 256 {
			return
		}
		res, err := parser.Parse(src)
		if err != nil {
			return
		}
		q, err := parser.ParseQuery(qsrc)
		if err != nil {
			return
		}
		const maxNodes, maxRewritings = 20_000, 400
		answers := func(opts Options) ([]rel.Tuple, bool) {
			opts.MaxNodes = maxNodes
			opts.MaxRewritings = maxRewritings
			r, err := New(res.PDMS, opts)
			if err != nil {
				return nil, false
			}
			out, err := r.Reformulate(q)
			if err != nil {
				return nil, false // node budget exceeded: fuzzer-built pathological spec
			}
			if out.Stats.Rewritings >= maxRewritings {
				return nil, false // truncated union: legitimately incomplete
			}
			got, err := rel.EvalUCQ(out.UCQ, res.Data)
			if err != nil {
				t.Fatalf("rewriting of accepted query does not evaluate: %v\nspec:\n%s\nquery: %s", err, src, qsrc)
			}
			return rel.DistinctSorted(got), true
		}
		got, ok := answers(Options{})
		if !ok {
			return
		}
		if seed, ok := answers(Options{NoPruneSubsumed: true}); ok && !sameTuples(got, seed) {
			t.Fatalf("pruning changed answers:\npruned   %v\nunpruned %v\nspec:\n%s\nquery: %s", got, seed, src, qsrc)
		}
		inst, err := chase.Chase(res.PDMS, res.Data, chase.Options{MaxRounds: 200})
		if err != nil {
			return // outside the supported/terminating fragment
		}
		canon, err := rel.EvalCQ(q, inst)
		if err != nil {
			return
		}
		have := map[string]bool{}
		for _, tup := range canon {
			have[tup.Key()] = true
		}
		for _, tup := range got {
			if !have[tup.Key()] {
				t.Fatalf("unsound answer %v not derivable in canonical instance\nspec:\n%s\nquery: %s", tup, src, qsrc)
			}
		}
		if res.PDMS.Classify(q).Class != ppl.PTime {
			return // completeness only guaranteed in the tractable fragment
		}
		want, err := chase.CertainAnswers(res.PDMS, res.Data, q, chase.Options{MaxRounds: 200})
		if err != nil {
			return
		}
		if !sameTuples(got, rel.DistinctSorted(want)) {
			t.Fatalf("reformulation disagrees with chase on PTIME spec:\n got %v\nwant %v\nspec:\n%s\nquery: %s", got, want, src, qsrc)
		}
	})
}

// sameTuples compares two sorted distinct tuple slices.
func sameTuples(a, b []rel.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
