package core

import (
	"testing"

	"repro/internal/rel"
	"repro/internal/workload"
)

// TestUselessPathRuleSkipsAndPreservesAnswers reproduces the Section 4.3
// motif: p1 appears in a single inclusion description V ⊆ p1, p2 and p2 is
// replicated in many views. The sibling p2 need not be expanded, and the
// answers must not change.
func TestUselessPathRuleSkipsAndPreservesAnswers(t *testing.T) {
	src := `
storage S.v(x, y) in A:P1(x, s), A:P2(s, y)
storage S.w1(s, y) in A:P2(s, y)
storage S.w2(s, y) in A:P2(s, y)
storage S.w3(s, y) in A:P2(s, y)
fact S.v("a", "b")
fact S.w1("k", "b")
`
	query := `q(x, y) :- A:P1(x, s), A:P2(s, y)`

	rOn, res := setup(t, src, Options{})
	outOn := reform(t, rOn, query)
	rOff, _ := setup(t, src, Options{NoUselessPath: true})
	outOff := reform(t, rOff, query)

	rowsOn := evalReformulated(t, outOn, res.Data)
	rowsOff := evalReformulated(t, outOff, res.Data)
	assertSameTuples(t, rowsOn, rowsOff, "useless-path rule changed answers")

	if outOn.Stats.UselessSkipped == 0 {
		t.Fatalf("useless-path rule never fired: %+v", outOn.Stats)
	}
	if outOn.Stats.Nodes() >= outOff.Stats.Nodes() {
		t.Fatalf("rule saved no nodes: on=%d off=%d", outOn.Stats.Nodes(), outOff.Stats.Nodes())
	}
}

// TestUselessPathOracleAgreement: with the rule on, answers still equal the
// chase oracle's certain answers.
func TestUselessPathOracleAgreement(t *testing.T) {
	src := `
storage S.v(x, y) in A:P1(x, s), A:P2(s, y)
storage S.w1(s, y) in A:P2(s, y)
storage S.w2(s, y) in A:P2(s, y)
fact S.v("a", "b")
fact S.w1("k", "b")
fact S.w2("k", "c")
`
	oracleCheck(t, src, `q(x, y) :- A:P1(x, s), A:P2(s, y)`, Options{})
}

// TestPropagateUpKillsConflictingGoal: every expansion of A:R carries a
// range constraint incompatible with the query's, so upward propagation
// must detect the dead end during construction.
func TestPropagateUpKillsConflictingGoal(t *testing.T) {
	src := `
storage S.low(x) in A:R(x), x < 10
storage S.mid(x) in A:R(x), x < 50
fact S.low("5")
fact S.mid("20")
`
	query := `q(x) :- A:R(x), x > 90`

	rOn, res := setup(t, src, Options{})
	outOn := reform(t, rOn, query)
	rOff, _ := setup(t, src, Options{NoPropagateUp: true})
	outOff := reform(t, rOff, query)

	rowsOn := evalReformulated(t, outOn, res.Data)
	rowsOff := evalReformulated(t, outOff, res.Data)
	assertSameTuples(t, rowsOn, rowsOff, "propagate-up changed answers")
	if len(rowsOn) != 0 {
		t.Fatalf("rows = %v, want none (ranges disjoint)", rowsOn)
	}
}

// TestPropagateUpNeutralWithoutComparisons: on comparison-free workloads
// the optimization must not alter results or node counts.
func TestPropagateUpNeutralWithoutComparisons(t *testing.T) {
	w, err := workload.Generate(workload.Params{
		Peers: 12, Diameter: 3, DefRatio: 0.25, FactsPerStore: 3, DomainSize: 3, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts Options) (Stats, []rel.Tuple) {
		r, err := New(w.PDMS, opts)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Reformulate(w.Query)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := rel.EvalUCQ(out.UCQ, w.Data)
		if err != nil {
			t.Fatal(err)
		}
		return out.Stats, rows
	}
	stOn, rowsOn := run(Options{})
	stOff, rowsOff := run(Options{NoPropagateUp: true})
	assertSameTuples(t, rowsOn, rowsOff, "propagate-up changed answers on plain workload")
	if stOn.Nodes() != stOff.Nodes() {
		t.Fatalf("node counts differ on comparison-free workload: %d vs %d", stOn.Nodes(), stOff.Nodes())
	}
}

// TestMemoFiresOnDeadEndWorkload: with reduced store coverage, repeated
// dead-end patterns must produce memo hits and shrink the tree. The memo
// key is the full expansion context (parent label, self label, siblings),
// so contexts must actually recur for hits: pure-inclusion workloads
// (dd=0) have single-child rule nodes below the query, whose contexts
// repeat across replicated paths.
func TestMemoFiresOnDeadEndWorkload(t *testing.T) {
	w, err := workload.Generate(workload.Params{
		Peers: 20, Diameter: 5, DefRatio: 0, StoreCoverage: 0.4, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// NoPruneSubsumed: the hopeless-predicate prune (prune.go) kills this
	// workload's dead ends before the memo sees them; disable it so the test
	// measures the memo in isolation.
	rOn, err := New(w.PDMS, Options{NoPruneSubsumed: true})
	if err != nil {
		t.Fatal(err)
	}
	stOn, err := rOn.BuildTree(w.Query)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := New(w.PDMS, Options{NoMemo: true, NoPruneSubsumed: true})
	if err != nil {
		t.Fatal(err)
	}
	stOff, err := rOff.BuildTree(w.Query)
	if err != nil {
		t.Fatal(err)
	}
	if stOn.MemoHits == 0 {
		t.Fatalf("memo never hit: %+v", stOn)
	}
	if stOn.Nodes() > stOff.Nodes() {
		t.Fatalf("memo grew the tree: %d vs %d", stOn.Nodes(), stOff.Nodes())
	}
}

// TestMemoPreservesAnswersOnDeadEndWorkload: memoized construction must not
// change the answers.
func TestMemoPreservesAnswersOnDeadEndWorkload(t *testing.T) {
	w, err := workload.Generate(workload.Params{
		Peers: 16, Diameter: 3, DefRatio: 0, StoreCoverage: 0.5,
		FactsPerStore: 3, DomainSize: 3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]rel.Tuple
	for _, opts := range []Options{{}, {NoMemo: true}} {
		r, err := New(w.PDMS, opts)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Reformulate(w.Query)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := rel.EvalUCQ(out.UCQ, w.Data)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, rr)
	}
	assertSameTuples(t, rows[0], rows[1], "memo changed answers")
}
