package core

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/lang"
	"repro/internal/parser"
	"repro/internal/rel"
)

// setup parses a spec and returns a reformulator plus the parse result.
func setup(t *testing.T, src string, opts Options) (*Reformulator, *parser.Result) {
	t.Helper()
	res, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(res.PDMS, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r, res
}

// reform reformulates a textual query.
func reform(t *testing.T, r *Reformulator, query string) Result {
	t.Helper()
	q, err := parser.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Reformulate(q)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// evalReformulated runs the reformulated UCQ over the stored data.
func evalReformulated(t *testing.T, res Result, data *rel.Instance) []rel.Tuple {
	t.Helper()
	rows, err := rel.EvalUCQ(res.UCQ, data)
	if err != nil {
		t.Fatalf("evaluating %v: %v", res.UCQ, err)
	}
	return rows
}

// assertSameTuples compares two tuple sets.
func assertSameTuples(t *testing.T, got, want []rel.Tuple, label string) {
	t.Helper()
	chase.SortTuples(got)
	chase.SortTuples(want)
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: got %v, want %v", label, got, want)
		}
	}
}

// oracleCheck verifies reformulation answers equal chase certain answers.
func oracleCheck(t *testing.T, src, query string, opts Options) ([]rel.Tuple, Result) {
	t.Helper()
	r, res := setup(t, src, opts)
	out := reform(t, r, query)
	got := evalReformulated(t, out, res.Data)

	q, err := parser.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	want, err := chase.CertainAnswers(res.PDMS, res.Data, q, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTuples(t, got, want, "reformulation vs chase oracle")
	return got, out
}

func TestGAVUnfoldingSimple(t *testing.T) {
	src := `
storage FH.doc(s, l) in FH:Doctor(s, l)
define H:Doctor(s, l) :- FH:Doctor(s, l)
fact FH.doc("d1", "er")
fact FH.doc("d2", "icu")
`
	rows, out := oracleCheck(t, src, `q(s) :- H:Doctor(s, l)`, Options{})
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if out.UCQ.Len() != 1 {
		t.Fatalf("UCQ = %v", out.UCQ)
	}
	if out.UCQ.Disjuncts[0].Body[0].Pred != "FH.doc" {
		t.Fatalf("rewriting = %v", out.UCQ)
	}
}

func TestGAVDisjunction(t *testing.T) {
	// P = P1 ∪ P2 via two definitional mappings.
	src := `
storage S.a(x) in A:P1(x)
storage S.b(x) in A:P2(x)
define A:P(x) :- A:P1(x)
define A:P(x) :- A:P2(x)
fact S.a("1")
fact S.b("2")
`
	rows, out := oracleCheck(t, src, `q(x) :- A:P(x)`, Options{})
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if out.UCQ.Len() != 2 {
		t.Fatalf("expected two disjuncts, got %v", out.UCQ)
	}
}

func TestLAVExpansionSimple(t *testing.T) {
	// Storage description is a join over the peer schema (LAV).
	src := `
storage LH.beds(b, p) in H:CritBed(b, h, r), H:Patient(p, b, st)
fact LH.beds("b1", "p1")
`
	rows, _ := oracleCheck(t, src, `q(b, p) :- H:CritBed(b, h, r), H:Patient(p, b, st)`, Options{})
	if len(rows) != 1 || rows[0][0] != "b1" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLAVProjectionBlocksJoinVar(t *testing.T) {
	// The view hides the join variable: asking for it yields nothing.
	src := `
storage LH.beds(b) in H:CritBed(b, h, r)
fact LH.beds("b1")
`
	rows, _ := oracleCheck(t, src, `q(h) :- H:CritBed(b, h, r)`, Options{})
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestTransitiveChainGAVandLAV(t *testing.T) {
	// Example 1.1's transitive evaluation: C stores data; inclusions chain
	// C → B → A; the query at A must reach C's store.
	src := `
storage C.data(x, y) in C:R(x, y)
include C:R(x, y) in B:S(x, y)
include B:S(x, y) in A:T(x, y)
fact C.data("u", "v")
`
	rows, out := oracleCheck(t, src, `q(x, y) :- A:T(x, y)`, Options{})
	if len(rows) != 1 || rows[0][0] != "u" {
		t.Fatalf("rows = %v", rows)
	}
	if out.Stats.Nodes() == 0 {
		t.Fatal("stats not collected")
	}
}

func TestFigure2EmergencyExample(t *testing.T) {
	// The paper's Figure 2 rule-goal tree example, end to end.
	src := `
define FS:SameEngine(f1, f2, e) :- FS:AssignedTo(f1, e), FS:AssignedTo(f2, e)
include FS:SameSkill(f1, f2) in FS:Skill(f1, s), FS:Skill(f2, s)
storage FS.S1(f, e, s) in FS:AssignedTo(f, e), FS:Sched(f, st, s)
storage FS.S2(f1, f2) = FS:SameSkill(f1, f2)

fact FS.S1("albert", "engine9", "17:00")
fact FS.S1("betty", "engine9", "19:00")
fact FS.S1("carla", "engine3", "17:00")
fact FS.S2("albert", "betty")
`
	query := `q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), FS:Skill(f2, s)`
	// Ground truth from the chase oracle. Note the certain answers include
	// the reflexive pairs (albert,albert) and (betty,betty): from
	// SameSkill(albert,betty) the inclusion r1 entails ∃s Skill(albert,s)
	// in every consistent instance, which suffices when f1 = f2. The
	// paper's Figure 2 exposition shows only the two canonical rewritings;
	// the degenerate MCDs that recover the reflexive answers are required
	// for completeness (Section 3, Thm 3.2(1) promises ALL certain
	// answers).
	rows, out := oracleCheck(t, src, query, Options{})
	want := []rel.Tuple{
		{"albert", "albert"}, {"albert", "betty"},
		{"betty", "albert"}, {"betty", "betty"},
	}
	assertSameTuples(t, rows, want, "figure 2 certain answers")
	// The reformulation shape of the paper:
	//   Q'(f1,f2) :- S1(f1,e,_), S1(f2,e,_), S2(f1,f2)  ∪  … S2(f2,f1)
	found := false
	for _, d := range out.UCQ.Disjuncts {
		s1 := 0
		s2 := 0
		for _, a := range d.Body {
			switch a.Pred {
			case "FS.S1":
				s1++
			case "FS.S2":
				s2++
			}
		}
		if s1 == 2 && s2 == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a S1,S1,S2 rewriting, got:\n%v", out.UCQ)
	}
}

func TestCyclicReplicationTerminates(t *testing.T) {
	// ECC replicates 9DC's Vehicle (projection-free equality → cycle).
	// The once-per-path rule must terminate construction, and data stored
	// on either side must answer queries on both.
	src := `
storage D.veh(v, g) in DC:Vehicle(v, g)
storage E.veh(v, g) in ECC:Vehicle(v, g)
equal ECC:Vehicle(v, g) and DC:Vehicle(v, g)
fact D.veh("v1", "g1")
fact E.veh("v2", "g2")
`
	rows, _ := oracleCheck(t, src, `q(v) :- ECC:Vehicle(v, g)`, Options{})
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	rows2, _ := oracleCheck(t, src, `q(v) :- DC:Vehicle(v, g)`, Options{})
	if len(rows2) != 2 {
		t.Fatalf("rows = %v", rows2)
	}
}

func TestConstantSelectionInQuery(t *testing.T) {
	src := `
storage S.r(x, y) in A:R(x, y)
fact S.r("a", "1")
fact S.r("b", "2")
`
	rows, _ := oracleCheck(t, src, `q(y) :- A:R("a", y)`, Options{})
	if len(rows) != 1 || rows[0][0] != "1" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestConstantInDefinitionalHead(t *testing.T) {
	// The paper's SkilledPerson tagging example.
	src := `
storage H.doc(s) in H:Doctor(s)
storage F.sk(s) in FS:Medic(s)
define DC:Skilled(s, "Doctor") :- H:Doctor(s)
define DC:Skilled(s, "EMT") :- FS:Medic(s)
fact H.doc("d1")
fact F.sk("m1")
`
	rows, _ := oracleCheck(t, src, `q(s) :- DC:Skilled(s, "EMT")`, Options{})
	if len(rows) != 1 || rows[0][0] != "m1" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestComparisonPruningDisjointRanges(t *testing.T) {
	// Two stores partitioned by range; a query for x > 10 must use only
	// the high store when pruning is on — and must produce the same
	// answers either way.
	src := `
storage S.low(x) in A:R(x), x <= 10
storage S.high(x) in A:R(x), x > 10
fact S.low("5")
fact S.high("15")
`
	query := `q(x) :- A:R(x), x > 12`
	rPrune, res := setup(t, src, Options{})
	outPrune := reform(t, rPrune, query)
	rNo, _ := setup(t, src, Options{NoPruneUnsat: true})
	outNo := reform(t, rNo, query)

	rowsPrune := evalReformulated(t, outPrune, res.Data)
	rowsNo := evalReformulated(t, outNo, res.Data)
	assertSameTuples(t, rowsPrune, rowsNo, "pruning changes answers")
	if len(rowsPrune) != 1 || rowsPrune[0][0] != "15" {
		t.Fatalf("rows = %v", rowsPrune)
	}
	// Pruned run must not mention the low store.
	if strings.Contains(outPrune.UCQ.String(), "S.low") {
		t.Fatalf("pruned reformulation still uses S.low:\n%v", outPrune.UCQ)
	}
}

func TestStreamFirstKStops(t *testing.T) {
	// Many replicas of the same data: streaming must stop after the first.
	src := `
storage S.r1(x) in A:R(x)
storage S.r2(x) in A:R(x)
storage S.r3(x) in A:R(x)
fact S.r1("a")
`
	r, _ := setup(t, src, Options{})
	q, err := parser.ParseQuery(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	_, err = r.Stream(q, func(cq lang.CQ) bool {
		count++
		return false // stop after first
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("stream yielded %d rewritings after stop", count)
	}
}

func TestMaxRewritingsOption(t *testing.T) {
	src := `
storage S.r1(x) in A:R(x)
storage S.r2(x) in A:R(x)
storage S.r3(x) in A:R(x)
`
	r, _ := setup(t, src, Options{MaxRewritings: 2, KeepRedundant: true})
	out := reform(t, r, `q(x) :- A:R(x)`)
	if out.UCQ.Len() != 2 {
		t.Fatalf("UCQ len = %d, want 2", out.UCQ.Len())
	}
}

func TestNodeBudget(t *testing.T) {
	src := `
storage S.r(x) in A:R(x)
include A:R(x) in B:S(x)
include B:S(x) in C:T(x)
`
	r, _ := setup(t, src, Options{MaxNodes: 3})
	q, err := parser.ParseQuery(`q(x) :- C:T(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reformulate(q); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectInvalidQuery(t *testing.T) {
	r, _ := setup(t, `storage S.r(x) in A:R(x)`, Options{})
	if _, err := r.Reformulate(lang.CQ{Head: lang.NewAtom("q", lang.Var("x"))}); err == nil {
		t.Fatal("empty body accepted")
	}
	q, _ := parser.ParseQuery(`q(x) :- Zzz:Nope(x)`)
	if _, err := r.Reformulate(q); err == nil {
		t.Fatal("undeclared relation accepted")
	}
}

func TestEqualityStorageBothKindsReformulate(t *testing.T) {
	src := `
storage S.ex(x) = A:R(x)
fact S.ex("1")
`
	rows, _ := oracleCheck(t, src, `q(x) :- A:R(x)`, Options{})
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestRedundancyElimination(t *testing.T) {
	// Two stores, one strictly more specific: with redundancy elimination
	// the general rewriting subsumes nothing here (different relations) —
	// but duplicated disjuncts from symmetric expansions must collapse.
	src := `
storage S.r(x, y) in A:R(x, y)
`
	r, _ := setup(t, src, Options{})
	out := reform(t, r, `q(x) :- A:R(x, x)`)
	if out.UCQ.Len() != 1 {
		t.Fatalf("UCQ = %v", out.UCQ)
	}
}

func TestMemoAndPriorityDoNotChangeAnswers(t *testing.T) {
	src := `
storage C.d1(x, y) in C:R(x, y)
storage C.d2(y, x) in C:R(x, y)
include C:R(x, y) in B:S(x, y)
define B:T(x, z) :- B:S(x, y), B:S(y, z)
fact C.d1("a", "b")
fact C.d2("c", "b")
`
	query := `q(x, z) :- B:T(x, z)`
	variants := []Options{
		{},
		{NoMemo: true},
		{NoPriority: true},
		{NoMemo: true, NoPriority: true, NoPruneUnsat: true},
	}
	var baseline []rel.Tuple
	for i, opts := range variants {
		r, res := setup(t, src, opts)
		out := reform(t, r, query)
		rows := evalReformulated(t, out, res.Data)
		if i == 0 {
			baseline = rows
			continue
		}
		assertSameTuples(t, rows, baseline, "optimization variant changed answers")
	}
}

func TestStatsPopulated(t *testing.T) {
	src := `
storage S.r(x) in A:R(x)
include A:R(x) in B:S(x)
`
	r, _ := setup(t, src, Options{})
	q, _ := parser.ParseQuery(`q(x) :- B:S(x)`)
	st, err := r.BuildTree(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.GoalNodes < 2 || st.RuleNodes < 1 {
		t.Fatalf("stats = %+v", st)
	}
}
