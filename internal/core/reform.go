package core

import (
	"fmt"

	"repro/internal/containment"
	"repro/internal/lang"
	"repro/internal/ppl"
)

// Reformulator reformulates queries over a PDMS into unions of conjunctive
// queries over stored relations. It is safe to reuse for many queries; it is
// not safe for concurrent use (create one per goroutine — construction is
// cheap, the catalog is shared immutably).
type Reformulator struct {
	pdms *ppl.PDMS
	cat  *catalog
	opts Options
}

// New builds a Reformulator for the PDMS with the given options.
func New(n *ppl.PDMS, opts Options) (*Reformulator, error) {
	cat, err := newCatalog(n)
	if err != nil {
		return nil, err
	}
	return &Reformulator{pdms: n, cat: cat, opts: opts}, nil
}

// Result is the outcome of a full reformulation.
type Result struct {
	// UCQ is the reformulated query: a union of conjunctive queries over
	// stored relations. Evaluating it over the stored data yields certain
	// answers; when the PDMS is in the tractable fragment (see
	// Classification) it yields exactly the certain answers.
	UCQ lang.UCQ
	// Stats reports tree-size and extraction metrics.
	Stats Stats
	// Classification is the Theorem 3.1–3.3 complexity classification of
	// the (PDMS, query) pair.
	Classification ppl.Classification
}

// Reformulate builds the rule-goal tree for q, extracts every conjunctive
// rewriting (up to Options.MaxRewritings), and removes redundant disjuncts
// unless Options.KeepRedundant is set.
func (r *Reformulator) Reformulate(q lang.CQ) (Result, error) {
	var res Result
	stats, err := r.Stream(q, func(cq lang.CQ) bool {
		res.UCQ.Add(cq)
		return true
	})
	if err != nil {
		return Result{}, err
	}
	// Containment-based minimization is quadratic in the number of
	// disjuncts; beyond this size the union is returned as-is (it is
	// already correct, just possibly redundant — evaluation dedups).
	const redundancyLimit = 512
	if !r.opts.KeepRedundant && res.UCQ.Len() > 1 && res.UCQ.Len() <= redundancyLimit {
		res.UCQ = containment.RemoveRedundant(res.UCQ)
	}
	res.Stats = stats
	res.Classification = r.pdms.Classify(q)
	return res, nil
}

// Stream builds the rule-goal tree for q and streams conjunctive rewritings
// to yield as they are extracted; yield returning false stops extraction
// early (the paper's "first rewritings quickly" usage). It returns the
// accumulated statistics.
func (r *Reformulator) Stream(q lang.CQ, yield func(lang.CQ) bool) (Stats, error) {
	if err := r.check(q); err != nil {
		return Stats{}, err
	}
	root, b, err := r.build(q)
	if err != nil {
		return Stats{}, err
	}
	limit := r.opts.MaxRewritings
	n := 0
	b.extract(root, q, func(cq lang.CQ) bool {
		if !yield(cq) {
			return false
		}
		n++
		return limit <= 0 || n < limit
	})
	return b.stats, nil
}

// BuildTree constructs the rule-goal tree only (step 2), without extracting
// rewritings — the Figure 3 measurement.
func (r *Reformulator) BuildTree(q lang.CQ) (Stats, error) {
	if err := r.check(q); err != nil {
		return Stats{}, err
	}
	_, b, err := r.build(q)
	if err != nil {
		return Stats{}, err
	}
	return b.stats, nil
}

// check validates the query against the PDMS schema and that its body does
// not mention synthetic predicates.
func (r *Reformulator) check(q lang.CQ) error {
	if len(q.Body) == 0 {
		return fmt.Errorf("core: empty query body")
	}
	return r.pdms.ValidateQuery(q)
}
