package core

import (
	"repro/internal/constraints"
	"repro/internal/lang"
)

// partial is an in-progress conjunctive rewriting during step-3 extraction:
// stored-relation atoms collected from leaves, accumulated comparison
// predicates, and the composition of MCD export substitutions.
type partial struct {
	atoms  []lang.Atom
	comps  []lang.Comparison
	export lang.Subst
}

func emptyPartial() partial {
	return partial{export: lang.NewSubst()}
}

// merge combines two partials; ok is false when their exports conflict.
func (p partial) merge(q partial) (partial, bool) {
	out := partial{
		atoms:  append(append([]lang.Atom{}, p.atoms...), q.atoms...),
		comps:  append(append([]lang.Comparison{}, p.comps...), q.comps...),
		export: p.export.Clone(),
	}
	for k, v := range q.export {
		if !out.export.Bind(k, v) {
			return partial{}, false
		}
	}
	return out, true
}

// withAtom returns p extended with one leaf atom.
func (p partial) withAtom(a lang.Atom) partial {
	return partial{
		atoms:  append(append([]lang.Atom{}, p.atoms...), a),
		comps:  p.comps,
		export: p.export,
	}
}

// extract enumerates the conjunctive rewritings of the tree rooted at root
// (built for query q), invoking yield for each; yield returning false stops
// the enumeration. Each rewriting's body refers only to stored relations.
func (b *builder) extract(root *node, q lang.CQ, yield func(lang.CQ) bool) {
	queryRule := root.children[0]
	b.coverRule(queryRule, func(p partial) bool {
		return b.emit(q, p, yield)
	})
}

// emit finalizes one full cover into a conjunctive rewriting, filtering
// unsatisfiable combinations, and forwards it to yield. Returns false to
// stop enumeration.
func (b *builder) emit(q lang.CQ, p partial, yield func(lang.CQ) bool) bool {
	head := p.export.ApplyAtom(q.Head)
	body := make([]lang.Atom, len(p.atoms))
	for i, a := range p.atoms {
		body[i] = p.export.ApplyAtom(a)
	}
	comps := p.export.ApplyComparisons(p.comps)
	// All accumulated comparisons participate in the satisfiability check …
	if len(comps) > 0 && !constraints.New(comps...).Satisfiable() {
		b.stats.DiscardUnsat++
		return true
	}
	// … but only those over variables visible in the rewriting (or ground)
	// can be carried into the output; the rest constrain view-internal
	// values that the stored data satisfies by construction.
	visible := map[string]bool{}
	for _, v := range head.Vars(nil) {
		visible[v.Name] = true
	}
	for _, a := range body {
		for _, v := range a.Vars(nil) {
			visible[v.Name] = true
		}
	}
	var kept []lang.Comparison
	for _, c := range comps {
		if (c.L.IsConst() || visible[c.L.Name]) && (c.R.IsConst() || visible[c.R.Name]) {
			kept = append(kept, c)
		}
	}
	out := lang.CQ{Head: head, Body: body, Comps: kept}
	if !out.IsSafe() {
		// Defensive: required-variable tracking should prevent this; an
		// unsafe rewriting cannot be evaluated, so drop it.
		b.stats.DiscardUnsat++
		return true
	}
	b.stats.Rewritings++
	return yield(out)
}

// solveGoal enumerates the partial solutions of a single goal node standing
// alone (stored leaf or any of its expansions).
func (b *builder) solveGoal(n *node, yield func(partial) bool) bool {
	if n.stored {
		return yield(emptyPartial().withAtom(n.label))
	}
	if n.dead {
		return true
	}
	for _, rn := range n.children {
		if !b.solveRule(rn, yield) {
			return false
		}
	}
	return true
}

// solveRule enumerates the partial solutions of one rule node.
//
// Inclusion-expansion rule nodes have a single V-goal child; their solutions
// are that child's solutions extended with the node's comparisons and MCD
// export. Definitional (and query) rule nodes require a full cover of their
// children (coverRule).
func (b *builder) solveRule(rn *node, yield func(partial) bool) bool {
	if len(rn.unc) > 0 {
		gn := rn.children[0]
		return b.solveGoal(gn, func(p partial) bool {
			p2 := partial{
				atoms:  p.atoms,
				comps:  append(append([]lang.Comparison{}, p.comps...), rn.comps...),
				export: p.export,
			}
			if len(rn.export) > 0 {
				merged := p2.export.Clone()
				for k, v := range rn.export {
					if !merged.Bind(k, v) {
						return true // conflicting exports: skip combination
					}
				}
				p2.export = merged
			}
			return yield(p2)
		})
	}
	return b.coverRule(rn, yield)
}

// coverage returns the goal nodes a resolver rule node covers: its unc label
// for inclusion expansions (which always includes its own parent goal), or
// just its parent for definitional expansions.
func coverage(cr *node) []*node {
	if len(cr.unc) > 0 {
		return cr.unc
	}
	return []*node{cr.parent}
}

// coverRule enumerates the ways to cover ALL goal children of a definitional
// (or query) rule node, per step 3 of Section 4.2: pick for the first
// uncovered child a resolver — the child's own stored leaf, one of its rule
// children, or a sibling's inclusion expansion whose unc label covers it —
// and recurse. Every resolver set is enumerated exactly once because each
// resolver is chosen at its first-in-order uncovered goal.
func (b *builder) coverRule(rn *node, yield func(partial) bool) bool {
	children := rn.children
	base := emptyPartial()
	base.comps = append(base.comps, rn.comps...)
	for k, v := range rn.export {
		base.export[k] = v
	}

	covered := make(map[*node]bool, len(children))
	var rec func(acc partial, yield func(partial) bool) bool
	rec = func(acc partial, yield func(partial) bool) bool {
		var next *node
		for _, c := range children {
			if !covered[c] {
				next = c
				break
			}
		}
		if next == nil {
			return yield(acc)
		}
		if next.stored {
			covered[next] = true
			ok := rec(acc.withAtom(next.label), yield)
			covered[next] = false
			return ok
		}
		// Candidate resolvers: any rule child of any sibling (including
		// next itself) whose coverage includes next.
		for _, sib := range children {
			for _, cr := range sib.children {
				includesNext := false
				for _, u := range coverage(cr) {
					if u == next {
						includesNext = true
						break
					}
				}
				if !includesNext {
					continue
				}
				// Newly covered goals (covering an already-covered goal
				// again would be redundant — Remark 4.1 tolerates it, we
				// avoid it).
				var newly []*node
				for _, u := range coverage(cr) {
					if !covered[u] {
						newly = append(newly, u)
					}
				}
				ok := b.solveRule(cr, func(p partial) bool {
					merged, mok := acc.merge(p)
					if !mok {
						return true
					}
					for _, u := range newly {
						covered[u] = true
					}
					cont := rec(merged, yield)
					for _, u := range newly {
						covered[u] = false
					}
					return cont
				})
				if !ok {
					return false
				}
			}
		}
		return true
	}
	return rec(base, yield)
}
