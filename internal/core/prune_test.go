package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/workload"
)

// reformulateAnswers reformulates w.Query under opts and evaluates the
// rewriting on w.Data.
func reformulateAnswers(t *testing.T, w *workload.Workload, opts Options) ([]rel.Tuple, Stats) {
	t.Helper()
	r, err := New(w.PDMS, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Reformulate(w.Query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.EvalUCQ(out.UCQ, w.Data)
	if err != nil {
		t.Fatal(err)
	}
	return rel.DistinctSorted(got), out.Stats
}

// comparePrunedUnpruned asserts the central soundness property of the
// deep-topology subtree pruning: the same query over the same PDMS answers
// identically with Options.NoPruneSubsumed off (pruning on, the default)
// and on (the seed behavior).
func comparePrunedUnpruned(t *testing.T, w *workload.Workload) (pruned, unpruned Stats) {
	t.Helper()
	got, ps := reformulateAnswers(t, w, Options{})
	want, us := reformulateAnswers(t, w, Options{NoPruneSubsumed: true})
	if len(got) != len(want) {
		t.Fatalf("pruned %d answers, unpruned %d\npruned   %v\nunpruned %v\nquery %s",
			len(got), len(want), got, want, w.Query)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("answer %d differs: pruned %v, unpruned %v", i, got[i], want[i])
		}
	}
	return ps, us
}

// TestPruningPreservesAnswersOnRandomPDMS runs the pruned-vs-unpruned
// differential over the same randomized workload corpus the chase-oracle
// property tests use: layered inclusion/definitional specs with random
// data, store dead ends included (the hopeless-predicate prune's natural
// prey).
func TestPruningPreservesAnswersOnRandomPDMS(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, dd := range []float64{0, 0.25} {
			seed, dd := seed, dd
			t.Run(fmt.Sprintf("seed=%d/dd=%.2f", seed, dd), func(t *testing.T) {
				t.Parallel()
				w, err := workload.Generate(workload.Params{
					Peers:         9,
					Diameter:      3,
					DefRatio:      dd,
					StoreCoverage: 0.6, // dead-end branches for the hopeless prune
					FactsPerStore: 3,
					DomainSize:    3,
					Seed:          seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				comparePrunedUnpruned(t, w)
			})
		}
	}
}

// replicatedSpec builds a randomized chain-of-inclusions PDMS in which
// near-entry mappings are emitted in content-identical copies and some
// peers map in a decoy relation nothing stores — exactly the waste the
// duplicate-description and hopeless-predicate prunes remove. The query is
// a chain of length qlen over the entry relation.
func replicatedSpec(t *testing.T, peers, copies, qlen int, rng *rand.Rand) *workload.Workload {
	t.Helper()
	var src strings.Builder
	for i := 0; i+1 < peers; i++ {
		n := 1
		if i < 3 {
			n = copies
		}
		for c := 0; c < n; c++ {
			fmt.Fprintf(&src, "include C%d:R(x, y) in C%d:R(x, y)\n", i+1, i)
		}
	}
	for i := 0; i < peers; i++ {
		if i == 0 || rng.Intn(4) == 0 {
			fmt.Fprintf(&src, "include D%d:R(x, y) in C%d:R(x, y)\n", i, i) // decoy: never stored
		}
		if i == peers-1 || rng.Intn(4) > 0 {
			fmt.Fprintf(&src, "storage S%d.r(x, y) in C%d:R(x, y)\n", i, i)
			for f := 0; f < 4; f++ {
				fmt.Fprintf(&src, "fact S%d.r(\"c%d\", \"c%d\")\n", i, rng.Intn(3), rng.Intn(3))
			}
		}
	}
	res, err := parser.Parse(src.String())
	if err != nil {
		t.Fatal(err)
	}
	var qb strings.Builder
	fmt.Fprintf(&qb, "q(x0, x%d) :- ", qlen)
	for a := 0; a < qlen; a++ {
		if a > 0 {
			qb.WriteString(", ")
		}
		fmt.Fprintf(&qb, "C0:R(x%d, x%d)", a, a+1)
	}
	q, err := parser.ParseQuery(qb.String())
	if err != nil {
		t.Fatal(err)
	}
	return &workload.Workload{PDMS: res.PDMS, Data: res.Data, Query: q}
}

// TestPruningPreservesAnswersOnReplicatedChains drives the differential
// over randomized replicated-mapping chains — the deep-topology shape the
// pruning exists for — including multi-atom (join) queries, so the
// rewriting is a genuine UCQ whose disjuncts multiply across copies.
func TestPruningPreservesAnswersOnReplicatedChains(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			peers := 4 + rng.Intn(4)
			copies := 2 + rng.Intn(2)
			qlen := 1 + rng.Intn(2)
			w := replicatedSpec(t, peers, copies, qlen, rng)
			ps, us := comparePrunedUnpruned(t, w)
			if ps.Nodes() > us.Nodes() {
				t.Fatalf("pruned tree larger: %d > %d", ps.Nodes(), us.Nodes())
			}
		})
	}
}

// TestPruningCutsReplicatedFixture is the measured regression fixture: on a
// fixed 8-peer chain with triplicated near-entry mappings and a planted
// decoy, both prune counters must fire and the node count must drop by at
// least 3x (the actual factor on this fixture is larger; 3x leaves slack
// for unrelated tree-shape changes without letting the prune silently
// regress to a no-op).
func TestPruningCutsReplicatedFixture(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := replicatedSpec(t, 8, 3, 1, rng)
	ps, us := comparePrunedUnpruned(t, w)
	if ps.PrunedSubsumed == 0 {
		t.Fatalf("replicated mappings but PrunedSubsumed = 0: %+v", ps)
	}
	if ps.PrunedEmpty == 0 {
		t.Fatalf("decoy planted but PrunedEmpty = 0: %+v", ps)
	}
	if us.PrunedSubsumed != 0 || us.PrunedEmpty != 0 {
		t.Fatalf("unpruned build reports prune counters: %+v", us)
	}
	if factor := float64(us.Nodes()) / float64(ps.Nodes()); factor < 3 {
		t.Fatalf("pruning factor %.2f < 3 (pruned %d, unpruned %d)", factor, ps.Nodes(), us.Nodes())
	}
}
