package core

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

func TestExplainTreeFigure2(t *testing.T) {
	src := `
define FS:SameEngine(f1, f2, e) :- FS:AssignedTo(f1, e), FS:AssignedTo(f2, e)
include FS:SameSkill(f1, f2) in FS:Skill(f1, s), FS:Skill(f2, s)
storage FS.S1(f, e, s) in FS:AssignedTo(f, e), FS:Sched(f, st, s)
storage FS.S2(f1, f2) = FS:SameSkill(f1, f2)
`
	r, _ := setup(t, src, Options{})
	q, err := parser.ParseQuery(`q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), FS:Skill(f2, s)`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.ExplainTree(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rule query",
		"goal FS:SameEngine(f1, f2, e)",
		"unc={",          // inclusion expansion carries its covered uncles
		"[stored]",       // leaves over FS.S1/FS.S2
		"goal FS:Skill(", // LAV-expanded subgoal
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ExplainTree output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainTreeTruncates(t *testing.T) {
	src := `
storage S.a(x) in A:R(x)
storage S.b(x) in A:R(x)
storage S.c(x) in A:R(x)
`
	r, _ := setup(t, src, Options{})
	q, err := parser.ParseQuery(`q(x) :- A:R(x)`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.ExplainTree(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "truncated") {
		t.Fatalf("truncation marker missing:\n%s", out)
	}
}

func TestExplainTreeRejectsBadQuery(t *testing.T) {
	r, _ := setup(t, `storage S.a(x) in A:R(x)`, Options{})
	q, _ := parser.ParseQuery(`q(x) :- Zz:Top(x)`)
	if _, err := r.ExplainTree(q, 0); err == nil {
		t.Fatal("invalid query accepted")
	}
}
