package containment

import (
	"math/rand"
	"testing"

	"repro/internal/lang"
	"repro/internal/rel"
)

func v(n string) lang.Term { return lang.Var(n) }
func k(n string) lang.Term { return lang.Const(n) }

func atom(p string, args ...lang.Term) lang.Atom { return lang.NewAtom(p, args...) }

func TestContainsReflexive(t *testing.T) {
	q := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{atom("R", v("x"), v("y"))}}
	if !Contains(q, q) {
		t.Fatal("containment must be reflexive")
	}
}

func TestContainsClassic(t *testing.T) {
	// q1(x) :- R(x,y), R(y,z)   (paths of length 2)
	// q2(x) :- R(x,y)           (edges)
	// q1 ⊆ q2 (every 2-path start has an edge), not conversely.
	q1 := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{
		atom("R", v("x"), v("y")), atom("R", v("y"), v("z"))}}
	q2 := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{atom("R", v("x"), v("y"))}}
	if !Contains(q1, q2) {
		t.Fatal("2-path ⊆ edge failed")
	}
	if Contains(q2, q1) {
		t.Fatal("edge ⊄ 2-path")
	}
}

func TestContainsConstants(t *testing.T) {
	// q1(x) :- R(x, "a")  ⊆  q2(x) :- R(x, y); not conversely.
	q1 := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{atom("R", v("x"), k("a"))}}
	q2 := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{atom("R", v("x"), v("y"))}}
	if !Contains(q1, q2) {
		t.Fatal("const-selective ⊆ general failed")
	}
	if Contains(q2, q1) {
		t.Fatal("general ⊄ const-selective")
	}
}

func TestContainsHeadMismatchArity(t *testing.T) {
	q1 := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{atom("R", v("x"))}}
	q2 := lang.CQ{Head: atom("q", v("x"), v("y")), Body: []lang.Atom{atom("R", v("x"))}}
	if Contains(q1, q2) {
		t.Fatal("arity mismatch must fail")
	}
}

func TestContainsDifferentHeadNames(t *testing.T) {
	// Rewritings may carry different head predicate names.
	q1 := lang.CQ{Head: atom("q1", v("x")), Body: []lang.Atom{atom("R", v("x"), k("a"))}}
	q2 := lang.CQ{Head: atom("q2", v("x")), Body: []lang.Atom{atom("R", v("x"), v("y"))}}
	if !Contains(q1, q2) {
		t.Fatal("head name should be ignored for same-arity rewritings")
	}
}

func TestContainsWithComparisons(t *testing.T) {
	// q1(x) :- R(x,a), a > 10   ⊆   q2(x) :- R(x,b), b > 5.
	q1 := lang.CQ{
		Head:  atom("q", v("x")),
		Body:  []lang.Atom{atom("R", v("x"), v("a"))},
		Comps: []lang.Comparison{{Op: lang.OpGT, L: v("a"), R: k("10")}},
	}
	q2 := lang.CQ{
		Head:  atom("q", v("x")),
		Body:  []lang.Atom{atom("R", v("x"), v("b"))},
		Comps: []lang.Comparison{{Op: lang.OpGT, L: v("b"), R: k("5")}},
	}
	if !Contains(q1, q2) {
		t.Fatal("a>10 ⊆ b>5 failed")
	}
	if Contains(q2, q1) {
		t.Fatal("b>5 ⊄ a>10")
	}
}

func TestContainsUnsatisfiableLHS(t *testing.T) {
	q1 := lang.CQ{
		Head:  atom("q", v("x")),
		Body:  []lang.Atom{atom("R", v("x"))},
		Comps: []lang.Comparison{{Op: lang.OpLT, L: v("x"), R: v("x")}},
	}
	q2 := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{atom("S", v("x"))}}
	if !Contains(q1, q2) {
		t.Fatal("empty query contained in everything")
	}
}

func TestMinimizeDropsRedundantAtom(t *testing.T) {
	// q(x) :- R(x,y), R(x,z)  minimizes to  q(x) :- R(x,y).
	q := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{
		atom("R", v("x"), v("y")), atom("R", v("x"), v("z"))}}
	m := Minimize(q)
	if len(m.Body) != 1 {
		t.Fatalf("Minimize kept %d atoms: %v", len(m.Body), m)
	}
	if !Equivalent(q, m) {
		t.Fatal("minimized query not equivalent")
	}
}

func TestMinimizeKeepsCore(t *testing.T) {
	// q(x) :- R(x,y), S(y): nothing droppable.
	q := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{
		atom("R", v("x"), v("y")), atom("S", v("y"))}}
	m := Minimize(q)
	if len(m.Body) != 2 {
		t.Fatalf("Minimize dropped a needed atom: %v", m)
	}
}

func TestContainsUCQ(t *testing.T) {
	mk := func(pred string) lang.CQ {
		return lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{atom(pred, v("x"))}}
	}
	var u1, u2 lang.UCQ
	u1.Add(mk("A"))
	u2.Add(mk("A"))
	u2.Add(mk("B"))
	if !ContainsUCQ(u1, u2) {
		t.Fatal("A ⊆ A∪B failed")
	}
	if ContainsUCQ(u2, u1) {
		t.Fatal("A∪B ⊄ A")
	}
}

func TestRemoveRedundant(t *testing.T) {
	gen := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{atom("R", v("x"), v("y"))}}
	spec := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{atom("R", v("x"), k("a"))}}
	var u lang.UCQ
	u.Add(spec)
	u.Add(gen)
	out := RemoveRedundant(u)
	if out.Len() != 1 || len(out.Disjuncts[0].Body) != 1 || out.Disjuncts[0].Body[0].Args[1] != v("y") {
		t.Fatalf("RemoveRedundant = %v", out)
	}
}

func TestRemoveRedundantMutual(t *testing.T) {
	// Two alpha-equivalent disjuncts: exactly one survives.
	a := lang.CQ{Head: atom("q", v("x")), Body: []lang.Atom{atom("R", v("x"), v("y"))}}
	b := lang.CQ{Head: atom("q", v("u")), Body: []lang.Atom{atom("R", v("u"), v("w"))}}
	var u lang.UCQ
	u.Add(a)
	u.Add(b)
	out := RemoveRedundant(u)
	if out.Len() != 1 {
		t.Fatalf("mutual containment: kept %d", out.Len())
	}
}

// Property: containment agrees with evaluation on random instances
// (soundness of Contains — if q1 ⊆ q2 is claimed, answers must be a subset
// on every sampled instance).
func TestContainsSoundnessOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vars := []lang.Term{v("x"), v("y"), v("z"), v("w")}
	randQ := func() lang.CQ {
		nb := 1 + rng.Intn(3)
		q := lang.CQ{Head: atom("q", vars[0])}
		for i := 0; i < nb; i++ {
			q.Body = append(q.Body, atom(
				string(rune('R'+rng.Intn(2))),
				vars[rng.Intn(3)], vars[rng.Intn(4)]))
		}
		if !q.IsSafe() {
			q.Body = append(q.Body, atom("R", vars[0], vars[1]))
		}
		return q
	}
	randInstance := func() *rel.Instance {
		ins := rel.NewInstance()
		for i := 0; i < 6; i++ {
			ins.MustAdd(string(rune('R'+rng.Intn(2))),
				string(rune('a'+rng.Intn(3))), string(rune('a'+rng.Intn(3))))
		}
		return ins
	}
	for trial := 0; trial < 300; trial++ {
		q1, q2 := randQ(), randQ()
		if !Contains(q1, q2) {
			continue
		}
		ins := randInstance()
		r1, err1 := rel.EvalCQ(q1, ins)
		r2, err2 := rel.EvalCQ(q2, ins)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval error: %v %v", err1, err2)
		}
		have := map[string]bool{}
		for _, tup := range r2 {
			have[tup.Key()] = true
		}
		for _, tup := range r1 {
			if !have[tup.Key()] {
				t.Fatalf("trial %d: claimed %s ⊆ %s but %v ∈ q1 \\ q2 on\n%s",
					trial, q1, q2, tup, ins)
			}
		}
	}
}
