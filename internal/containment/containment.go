// Package containment implements conjunctive-query containment via
// containment mappings (the classical Chandra–Merlin technique), query
// minimization, and union-of-CQ containment.
//
// The reformulation engine uses containment to discard redundant rewritings
// (a produced conjunctive rewriting that is contained in another contributes
// no new certain answers), and the test suite uses it to compare reformulated
// queries against expected ones.
//
// For queries with comparison predicates the test is sound but not complete
// (completeness would require case analysis over linear orders, which is
// Π²ₚ-hard); a sound test is exactly what redundancy elimination needs: we
// only drop a rewriting when containment is certain.
package containment

import (
	"repro/internal/constraints"
	"repro/internal/lang"
)

// Contains reports whether q2 contains q1 (q1 ⊆ q2): every answer of q1 on
// every instance is an answer of q2. Decided by searching for a containment
// mapping from q2 into q1 that preserves the head, and (when comparisons are
// present) checking that q1's constraints imply the image of q2's.
func Contains(q1, q2 lang.CQ) bool {
	if q1.Head.Arity() != q2.Head.Arity() {
		return false
	}
	// Rename q2 apart from q1: a containment mapping treats q1's variables
	// as rigid (they are the canonical-database constants), so sharing
	// names across the two queries would corrupt the search. Plain Fresh
	// names are used (not FreshLike): suffix-preserving names from a new
	// supply could collide with "#"-suffixed variables another supply
	// produced — e.g. in rewritings from the reformulation engine.
	ren := lang.NewSubst()
	vs := lang.NewVarSupply("_cm")
	for _, v := range q2.Vars() {
		ren[v.Name] = vs.Fresh()
	}
	q2 = q2.Apply(ren)
	// The mapping must send q2's head to q1's head.
	base, ok := lang.Match(q2.Head, q1.Head, nil)
	if !ok {
		// Heads may differ in predicate name when comparing rewritings of
		// the same logical query; retry ignoring the head predicate name.
		h2 := q2.Head
		h2.Pred = q1.Head.Pred
		base, ok = lang.Match(h2, q1.Head, nil)
		if !ok {
			return false
		}
	}
	c1 := constraints.New(q1.Comps...)
	if !c1.Satisfiable() {
		return true // q1 is empty, contained in everything
	}
	return findMapping(q2.Body, q1.Body, base, func(s lang.Subst) bool {
		// Constraint side-condition: c(q1) must imply s(c(q2)).
		for _, c := range q2.Comps {
			if !c1.Implies(s.ApplyComparison(c)) {
				return false
			}
		}
		return true
	})
}

// Equivalent reports mutual containment.
func Equivalent(q1, q2 lang.CQ) bool {
	return Contains(q1, q2) && Contains(q2, q1)
}

// findMapping searches for an extension of base mapping every atom of from
// onto some atom of onto (variables of onto are rigid), subject to accept.
func findMapping(from, onto []lang.Atom, base lang.Subst, accept func(lang.Subst) bool) bool {
	var rec func(i int, s lang.Subst) bool
	rec = func(i int, s lang.Subst) bool {
		if i == len(from) {
			return accept(s)
		}
		// Pass the original atom: Match applies s itself and only binds
		// variables of the un-substituted pattern, keeping target-side
		// variables rigid (pre-applying s here would let bound-to rigid
		// variables masquerade as bindable pattern variables).
		for _, tgt := range onto {
			if s2, ok := lang.Match(from[i], tgt, s); ok {
				if rec(i+1, s2) {
					return true
				}
			}
		}
		return false
	}
	return rec(0, base)
}

// Minimize returns an equivalent query with a minimal body (the core): it
// repeatedly tries to drop a body atom, keeping the drop whenever the
// reduced query still contains the original. Comparison predicates are kept
// verbatim. The head is unchanged.
func Minimize(q lang.CQ) lang.CQ {
	cur := q.Clone()
	for changed := true; changed; {
		changed = false
		for i := range cur.Body {
			if len(cur.Body) == 1 {
				break
			}
			reduced := cur.Clone()
			reduced.Body = append(reduced.Body[:i], reduced.Body[i+1:]...)
			if !reduced.IsSafe() {
				continue
			}
			// reduced has fewer atoms so cur ⊆ reduced always; the drop is
			// sound when reduced ⊆ cur too.
			if Contains(reduced, cur) {
				cur = reduced
				changed = true
				break
			}
		}
	}
	return cur
}

// ContainsUCQ reports whether the union u2 contains the union u1:
// every disjunct of u1 must be contained in some disjunct of u2 (this
// criterion is sound and complete for UCQs without comparisons, by
// Sagiv–Yannakakis).
func ContainsUCQ(u1, u2 lang.UCQ) bool {
	for _, d1 := range u1.Disjuncts {
		found := false
		for _, d2 := range u2.Disjuncts {
			if Contains(d1, d2) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// RemoveRedundant drops every disjunct of u that is contained in another
// (retained) disjunct, returning a minimal equivalent union. Deterministic:
// earlier disjuncts win ties.
func RemoveRedundant(u lang.UCQ) lang.UCQ {
	var out lang.UCQ
	for i, d := range u.Disjuncts {
		redundant := false
		for j, e := range u.Disjuncts {
			if i == j {
				continue
			}
			if Contains(d, e) {
				// Tie-break mutual containment by index.
				if Contains(e, d) && i < j {
					continue
				}
				redundant = true
				break
			}
		}
		if !redundant {
			out.Add(d)
		}
	}
	if out.Len() == 0 && u.Len() > 0 {
		out.Add(u.Disjuncts[0])
	}
	return out
}
