package rel

import (
	"fmt"
	"sort"

	"repro/internal/lang"
)

// EvalCQ evaluates a conjunctive query over the instance with set semantics
// and returns the distinct head tuples, sorted. Comparison predicates are
// applied as filters once both sides are bound (and re-checked at the end).
// The query must be safe; unsafe queries return an error.
func EvalCQ(q lang.CQ, ins *Instance) ([]Tuple, error) {
	if !q.IsSafe() {
		return nil, fmt.Errorf("rel: unsafe query %s", q)
	}
	seen := map[string]bool{}
	var out []Tuple
	err := evalBody(q, ins, func(s lang.Subst) error {
		head := make(Tuple, len(q.Head.Args))
		for i, a := range q.Head.Args {
			t := s.Apply(a)
			if t.IsVar() {
				return fmt.Errorf("rel: unbound head variable %s in %s", t, q)
			}
			head[i] = t.Name
		}
		if k := head.Key(); !seen[k] {
			seen[k] = true
			out = append(out, head)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// evalBody enumerates every substitution satisfying the query body and
// comparisons, invoking yield for each. It orders comparisons after the
// atoms that bind their variables (checked lazily: a comparison is applied
// as soon as it becomes ground, all are verified at the end).
func evalBody(q lang.CQ, ins *Instance, yield func(lang.Subst) error) error {
	var rec func(i int, s lang.Subst) error
	rec = func(i int, s lang.Subst) error {
		// Prune on any ground comparison that fails.
		for _, c := range q.Comps {
			g := s.ApplyComparison(c)
			if g.L.IsConst() && g.R.IsConst() && !g.Op.EvalConst(g.L, g.R) {
				return nil
			}
		}
		if i == len(q.Body) {
			// All atoms matched; comparisons must now be fully ground.
			for _, c := range q.Comps {
				g := s.ApplyComparison(c)
				if g.L.IsVar() || g.R.IsVar() {
					return fmt.Errorf("rel: comparison %s not bound by body in %s", c, q)
				}
			}
			return yield(s)
		}
		atom := q.Body[i]
		r := ins.Relation(atom.Pred)
		if r == nil {
			return nil // empty relation: no matches
		}
		if r.arity != atom.Arity() {
			return fmt.Errorf("rel: atom %s arity %d, relation has %d", atom, atom.Arity(), r.arity)
		}
	next:
		for _, tup := range r.Tuples() {
			s2 := s.Clone()
			for j, arg := range atom.Args {
				bound := s2.Apply(arg)
				if bound.IsConst() {
					if bound.Name != tup[j] {
						continue next
					}
					continue
				}
				s2[bound.Name] = lang.Const(tup[j])
			}
			if err := rec(i+1, s2); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, lang.NewSubst())
}

// EvalUCQ evaluates a union of conjunctive queries, returning the distinct
// union of the disjuncts' answers, sorted.
func EvalUCQ(u lang.UCQ, ins *Instance) ([]Tuple, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	groups := make([][]Tuple, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		rows, err := EvalCQ(q, ins)
		if err != nil {
			return nil, err
		}
		groups[i] = rows
	}
	return DistinctSorted(groups...), nil
}

// EvalDatalog computes the least fixpoint of the (non-recursive or
// recursive) datalog program given by rules, starting from base, using
// semi-naive evaluation. It returns a new instance containing base plus all
// derived facts. Rules may use comparison predicates in their bodies.
func EvalDatalog(rules []lang.CQ, base *Instance) (*Instance, error) {
	for _, r := range rules {
		if !r.IsSafe() {
			return nil, fmt.Errorf("rel: unsafe rule %s", r)
		}
	}
	total := base.Clone()
	// delta holds the facts derived in the previous round.
	delta := base.Clone()
	for round := 0; ; round++ {
		// Single-shard: per-round deltas are scanned whole and their
		// stats never read, so the sharded layout's routing and sketch
		// work would be pure overhead (mirrors engine.EvalDatalog).
		next := NewInstanceSharded(1)
		for _, rule := range rules {
			// Semi-naive: at least one body atom must match the delta.
			for pivot := range rule.Body {
				if delta.Relation(rule.Body[pivot].Pred) == nil {
					continue
				}
				err := evalBodyPivot(rule, total, delta, pivot, func(s lang.Subst) error {
					head := s.ApplyAtom(rule.Head)
					tup := make(Tuple, len(head.Args))
					for i, a := range head.Args {
						if a.IsVar() {
							return fmt.Errorf("rel: unbound head var in %s", rule)
						}
						tup[i] = a.Name
					}
					if r := total.Relation(head.Pred); r == nil || !r.Contains(tup) {
						if _, err := next.Add(head.Pred, tup); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
		}
		if next.Size() == 0 {
			return total, nil
		}
		for _, pred := range next.Relations() {
			for _, t := range next.Relation(pred).Tuples() {
				if _, err := total.Add(pred, t); err != nil {
					return nil, err
				}
			}
		}
		delta = next
	}
}

// evalBodyPivot is evalBody where body atom `pivot` ranges over delta and
// the rest over total.
func evalBodyPivot(q lang.CQ, total, delta *Instance, pivot int, yield func(lang.Subst) error) error {
	var rec func(i int, s lang.Subst) error
	rec = func(i int, s lang.Subst) error {
		for _, c := range q.Comps {
			g := s.ApplyComparison(c)
			if g.L.IsConst() && g.R.IsConst() && !g.Op.EvalConst(g.L, g.R) {
				return nil
			}
		}
		if i == len(q.Body) {
			for _, c := range q.Comps {
				g := s.ApplyComparison(c)
				if g.L.IsVar() || g.R.IsVar() {
					return fmt.Errorf("rel: comparison %s not bound by body in %s", c, q)
				}
			}
			return yield(s)
		}
		atom := q.Body[i]
		src := total
		if i == pivot {
			src = delta
		}
		r := src.Relation(atom.Pred)
		if r == nil {
			return nil
		}
		if r.arity != atom.Arity() {
			return fmt.Errorf("rel: atom %s arity %d, relation has %d", atom, atom.Arity(), r.arity)
		}
	next:
		for _, tup := range r.Tuples() {
			s2 := s.Clone()
			for j, arg := range atom.Args {
				bound := s2.Apply(arg)
				if bound.IsConst() {
					if bound.Name != tup[j] {
						continue next
					}
					continue
				}
				s2[bound.Name] = lang.Const(tup[j])
			}
			if err := rec(i+1, s2); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, lang.NewSubst())
}
