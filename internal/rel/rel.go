package rel

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Tuple is a row of constant values.
type Tuple []string

// Key returns a canonical map key for the tuple.
func (t Tuple) Key() string { return strings.Join(t, "\x00") }

// String renders the tuple as (v1, ..., vn).
func (t Tuple) String() string { return "(" + strings.Join(t, ", ") + ")" }

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// maxShards caps the shard count of one relation; beyond this, per-shard
// fixed costs (index maps, sketch registers, worker scheduling) outweigh any
// remaining parallelism.
const maxShards = 256

// DefaultShards is the shard count NewRelation and NewInstance use: one
// shard per schedulable CPU (runtime.GOMAXPROCS), so parallel scans can keep
// every core busy, clamped to [1, 256]. A single-CPU process therefore gets
// the unsharded (N=1) layout automatically.
func DefaultShards() int {
	return clampShards(runtime.GOMAXPROCS(0))
}

func clampShards(n int) int {
	if n < 1 {
		return 1
	}
	if n > maxShards {
		return maxShards
	}
	return n
}

// fnv64a is the FNV-1a hash shards and distinct-value sketches share.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ShardOf returns the shard index (in [0, n)) that a first-column value v
// routes to under n-way hash partitioning. Exported so the engine can route
// probes whose bound-position set includes column 0 to the single shard
// that can hold matches; it must stay in lockstep with Insert's placement.
func ShardOf(v string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(fnv64a(v) % uint64(n))
}

// shard is one hash partition of a relation: its own tuple set, append-only
// insert log, monotonic generation counter and per-column distinct-value
// sketches, all guarded by the shard's own mutex so inserts and index
// catch-ups on different shards never contend.
type shard struct {
	mu sync.Mutex
	// tuples is the shard's tuple set, guarded by mu.
	tuples map[string]Tuple
	// log is the shard's append-only insert log, guarded by mu.
	log []Tuple
	// gen counts this shard's inserts (== len(log)). Atomic so generation
	// reads (cache keys, piggybacks) never take the shard lock.
	gen atomic.Uint64
	// distinct holds one sketch per column, updated on every insert;
	// guarded by mu.
	distinct []sketch
}

// Relation is a named set of tuples of fixed arity, hash-partitioned over
// NumShards() shards by the first column's value. Insert, Contains, Len,
// Tuples and the per-shard accessors are individually safe for concurrent
// use (each shard self-synchronizes); a reader that needs one atomic
// point-in-time view across inserts still requires external synchronization,
// which is what pdms.Network's and netpeer.Server's locks provide.
type Relation struct {
	name   string
	arity  int
	shards []*shard

	// hook, when non-nil, observes every successful insert (see
	// SetAppendHook). It must be installed before the relation is shared
	// across goroutines; Insert reads it without synchronization.
	hook AppendHook

	// sortedMu guards the cached deterministic (sorted) tuple order; the
	// cache is tagged with the Version it was built at and rebuilt when the
	// relation has grown past it.
	sortedMu sync.Mutex
	// sorted is the cached sorted order, guarded by sortedMu.
	sorted []Tuple
	// sortedVer is the Version sorted was built at, guarded by sortedMu.
	sortedVer uint64
}

// AppendHook observes one successful insert. It is invoked under the owning
// shard's lock, after the tuple has been appended to the shard log and the
// shard generation bumped, with the shard index, the (defensively copied)
// tuple, and the shard's new generation — in exactly that shard's log order.
// A non-nil error aborts Insert with that error; the tuple remains inserted
// in memory, so hook errors mean "applied but possibly not durable" and
// callers (the storage tier) must treat the backing journal as failed.
type AppendHook func(shard int, t Tuple, gen uint64) error

// Name returns the relation's predicate name (fixed at creation).
func (r *Relation) Name() string { return r.name }

// Arity returns the relation's column count (fixed at creation).
func (r *Relation) Arity() int { return r.arity }

// SetAppendHook installs h as the relation's insert observer (nil removes
// it). It must be called before the relation is shared across goroutines:
// Insert reads the hook without synchronization.
func (r *Relation) SetAppendHook(h AppendHook) { r.hook = h }

// NewRelation creates an empty relation with DefaultShards() shards.
func NewRelation(name string, arity int) *Relation {
	return NewRelationSharded(name, arity, 0)
}

// NewRelationSharded creates an empty relation with n hash partitions
// (n <= 0 selects DefaultShards(); n is clamped to at most 256). n = 1
// reproduces the unsharded layout: one tuple set, one log, one generation
// counter.
func NewRelationSharded(name string, arity, n int) *Relation {
	if n <= 0 {
		n = DefaultShards()
	}
	n = clampShards(n)
	r := &Relation{name: name, arity: arity, shards: make([]*shard, n)}
	for i := range r.shards {
		r.shards[i] = &shard{tuples: map[string]Tuple{}, distinct: make([]sketch, arity)}
	}
	return r
}

// NumShards returns the relation's shard count (fixed at creation).
func (r *Relation) NumShards() int { return len(r.shards) }

// ShardFor returns the shard index a tuple whose first column is v lives in.
func (r *Relation) ShardFor(v string) int { return ShardOf(v, len(r.shards)) }

func (r *Relation) shardIdx(t Tuple) int {
	if len(r.shards) == 1 || len(t) == 0 {
		return 0
	}
	return ShardOf(t[0], len(r.shards))
}

// Insert adds a tuple (set semantics). It reports whether the tuple was new
// and returns an error on arity mismatch. Inserts to different shards
// proceed in parallel; the insert also updates the shard's per-column
// distinct-value sketches and bumps its generation counter.
func (r *Relation) Insert(t Tuple) (bool, error) {
	if len(t) != r.arity {
		return false, fmt.Errorf("rel: %s arity %d, tuple %v has %d values", r.name, r.arity, t, len(t))
	}
	// Hash the first column once: it both routes the tuple to its shard
	// and feeds column 0's distinct sketch.
	var h0 uint64
	si := 0
	if len(t) > 0 {
		h0 = fnv64a(t[0])
		if len(r.shards) > 1 {
			si = int(h0 % uint64(len(r.shards)))
		}
	}
	s := r.shards[si]
	k := t.Key()
	s.mu.Lock()
	if _, ok := s.tuples[k]; ok {
		s.mu.Unlock()
		return false, nil
	}
	cp := make(Tuple, len(t))
	copy(cp, t)
	s.tuples[k] = cp
	s.log = append(s.log, cp)
	for i, v := range cp {
		h := h0
		if i > 0 {
			h = fnv64a(v)
		}
		s.distinct[i].add(h)
	}
	s.gen.Add(1)
	if h := r.hook; h != nil {
		// Still under the shard lock: the hook sees inserts in exactly the
		// shard log's order, which is what lets the durable tier mirror the
		// log frame for frame.
		if err := h(si, cp, s.gen.Load()); err != nil {
			s.mu.Unlock()
			return true, err
		}
	}
	s.mu.Unlock()
	return true, nil
}

// Version returns the number of inserts so far: the fold (sum) of the
// per-shard generation counters, so it is exactly the pre-sharding single
// counter — monotonic, bumped once per new tuple, never by duplicates.
// Cache keys and the netpeer gens piggyback are built from this value; the
// per-shard vector behind it is exposed by ShardVersion for derived
// structures (engine indexes) that catch up shard by shard.
func (r *Relation) Version() uint64 {
	var v uint64
	for _, s := range r.shards {
		v += s.gen.Load()
	}
	return v
}

// ShardVersion returns shard s's generation: the number of inserts it has
// absorbed. Together with ShardAddedSince it lets derived structures (hash
// indexes, materialized views) catch up incrementally per shard: tuples are
// never deleted, so shard s's log suffix log[v:] is exactly what changed in
// that shard since its version v.
func (r *Relation) ShardVersion(s int) uint64 { return r.shards[s].gen.Load() }

// ShardAddedSince returns the tuples inserted into shard s after its
// version v, in that shard's insertion order. Callers must not mutate the
// result. ShardAddedSince(s, 0) enumerates the whole shard without paying a
// sort; concatenated over all shards it enumerates the whole relation
// (distinct by construction, in no particular global order).
func (r *Relation) ShardAddedSince(s int, v uint64) []Tuple {
	sh := r.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v > uint64(len(sh.log)) {
		return nil
	}
	return sh.log[v:]
}

// ShardLen returns the number of tuples in shard s (skew observability).
func (r *Relation) ShardLen(s int) int {
	sh := r.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.tuples)
}

// Contains reports tuple membership (routed to the owning shard).
func (r *Relation) Contains(t Tuple) bool {
	s := r.shards[r.shardIdx(t)]
	s.mu.Lock()
	_, ok := s.tuples[t.Key()]
	s.mu.Unlock()
	return ok
}

// Len returns the cardinality.
func (r *Relation) Len() int {
	n := 0
	for _, s := range r.shards {
		s.mu.Lock()
		n += len(s.tuples)
		s.mu.Unlock()
	}
	return n
}

// Tuples returns the tuples in deterministic (sorted) order, gathered
// across shards. The result is cached per Version and shared: callers must
// not mutate it.
func (r *Relation) Tuples() []Tuple {
	r.sortedMu.Lock()
	defer r.sortedMu.Unlock()
	// Read the version before snapshotting: a cache built here can only
	// ever hold tuples beyond v, never miss one at v, so a stale entry is
	// impossible (any extra tuple implies a later Version() > v, which
	// forces a rebuild).
	v := r.Version()
	if r.sorted != nil && r.sortedVer == v {
		return r.sorted
	}
	var out []Tuple
	for s := range r.shards {
		out = append(out, r.ShardAddedSince(s, 0)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	r.sorted, r.sortedVer = out, v
	return out
}

// DistinctSorted returns the distinct union of the given tuple groups in
// canonical (Tuple.Key) order — the answer-set semantics every UCQ
// evaluator shares.
func DistinctSorted(groups ...[]Tuple) []Tuple {
	seen := map[string]bool{}
	var out []Tuple
	for _, g := range groups {
		for _, t := range g {
			if k := t.Key(); !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Instance maps predicate names to relations. The zero value is unusable;
// use NewInstance. Relations created on first Add inherit the instance's
// shard count.
//
// The relation map self-synchronizes: lookups take the read side of an
// internal RWMutex and lazy creation (Add on a new predicate) the write
// side, so concurrent Adds, catalog walks and generation reads are safe
// without external locking. The lock covers map *membership* only —
// relation contents self-synchronize at the shard level — so no caller
// ever holds it across tuple work.
type Instance struct {
	// mu guards the relation map and the hook factory. Creation is the
	// only write: two concurrent Adds to a fresh predicate must not both
	// install a relation (one would overwrite — and so lose — the other's
	// tuples), and a map insert must not race a concurrent reader.
	mu   sync.RWMutex
	rels map[string]*Relation // guarded by mu
	// nshards is the shard count for relations this instance creates
	// (0 = DefaultShards()). Immutable after construction.
	nshards int
	// hooks, when non-nil, supplies the append hook for every relation the
	// instance holds or later creates (see SetAppendHook). Guarded by mu:
	// creation paths read it under the write lock they already hold.
	hooks HookFactory
}

// HookFactory returns the append hook for one relation of an instance,
// given its predicate name, arity and shard count — or nil for none. The
// storage tier uses this to journal every relation an instance creates,
// including those materialized lazily by Add.
type HookFactory func(pred string, arity, shards int) AppendHook

// NewInstance returns an empty instance whose relations use DefaultShards()
// hash partitions.
func NewInstance() *Instance {
	return NewInstanceSharded(0)
}

// NewInstanceSharded returns an empty instance whose relations are created
// with n hash partitions (n <= 0 selects DefaultShards(); 1 reproduces the
// unsharded layout).
func NewInstanceSharded(n int) *Instance {
	return &Instance{rels: map[string]*Relation{}, nshards: n}
}

// ShardCount returns the shard count relations created by this instance
// use (the configured count, or DefaultShards() when unset).
func (ins *Instance) ShardCount() int {
	if ins.nshards <= 0 {
		return DefaultShards()
	}
	return clampShards(ins.nshards)
}

// SetAppendHook installs f as the instance's append-hook factory (nil
// removes it): f is consulted for every relation the instance currently
// holds and every relation Add creates later. Like Relation.SetAppendHook
// it must be called before the instance is shared across goroutines (the
// per-relation hook fields are read without synchronization by Insert).
// Clones and reshards never inherit hooks — they are independent in-memory
// copies, not views of the journaled instance.
func (ins *Instance) SetAppendHook(f HookFactory) {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	ins.hooks = f
	for name, r := range ins.rels {
		if f == nil {
			r.SetAppendHook(nil)
			continue
		}
		r.SetAppendHook(f(name, r.arity, r.NumShards()))
	}
}

// Clone returns a deep copy of the instance, preserving every relation's
// shard layout, per-shard logs and generation counters, and statistics
// sketches (so generation-keyed caches and planner estimates carry over).
// The copy carries no append hooks.
func (ins *Instance) Clone() *Instance {
	ins.mu.RLock()
	defer ins.mu.RUnlock()
	rels := make(map[string]*Relation, len(ins.rels))
	for name, r := range ins.rels {
		nr := NewRelationSharded(name, r.arity, r.NumShards())
		for i, s := range r.shards {
			// Build the copy in locals and publish it fully formed: the
			// fresh shard is unshared, so only the source shard's lock is
			// needed.
			s.mu.Lock()
			tuples := make(map[string]Tuple, len(s.tuples))
			for k, t := range s.tuples {
				tuples[k] = t
			}
			distinct := make([]sketch, len(s.distinct))
			for c := range s.distinct {
				distinct[c] = s.distinct[c].clone()
			}
			ns := &shard{
				tuples: tuples,
				// Full-slice expression: later appends to either log must
				// not share backing storage.
				log:      s.log[:len(s.log):len(s.log)],
				distinct: distinct,
			}
			ns.gen.Store(s.gen.Load())
			s.mu.Unlock()
			nr.shards[i] = ns
		}
		rels[name] = nr
	}
	return &Instance{rels: rels, nshards: ins.nshards}
}

// Reshard returns a copy of ins whose relations are repartitioned over n
// shards (n <= 0 selects DefaultShards()). Tuple contents are preserved;
// per-shard logs, generations and sketches are rebuilt by reinsertion, so
// the copy starts a fresh generation history.
func Reshard(ins *Instance, n int) *Instance {
	rels := map[string]*Relation{}
	for _, name := range ins.Relations() {
		r := ins.Relation(name)
		nr := NewRelationSharded(name, r.arity, n)
		for s := range r.shards {
			for _, t := range r.ShardAddedSince(s, 0) {
				if _, err := nr.Insert(t); err != nil {
					// Arity is preserved by construction; unreachable.
					panic(err)
				}
			}
		}
		rels[name] = nr
	}
	return &Instance{rels: rels, nshards: n}
}

// Relation returns the named relation, or nil if absent.
func (ins *Instance) Relation(pred string) *Relation {
	ins.mu.RLock()
	defer ins.mu.RUnlock()
	return ins.rels[pred]
}

// Relations returns the predicate names present, sorted.
func (ins *Instance) Relations() []string {
	ins.mu.RLock()
	out := make([]string, 0, len(ins.rels))
	for name := range ins.rels {
		out = append(out, name)
	}
	ins.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Gen returns the per-relation generation of pred: the number of inserts
// it has absorbed (Relation.Version, the fold of the per-shard counters),
// or 0 when the relation is absent. A relation that exists but holds no
// tuples is indistinguishable from an absent one, which is sound for
// generation keying: both denote the same (empty) contents. Callers key
// caches by vectors of these counters so a mutation of one relation
// invalidates only entries that touch it.
func (ins *Instance) Gen(pred string) uint64 {
	if r := ins.Relation(pred); r != nil {
		return r.Version()
	}
	return 0
}

// EnsureRelation returns the named relation, creating it empty with the
// given arity and n hash partitions if absent (n <= 0 selects the
// instance's shard count). Recovery uses it to rebuild relations with their
// recorded shard layout regardless of the instance default. Creation is
// serialized under the instance lock, so concurrent ensurers agree on one
// relation.
func (ins *Instance) EnsureRelation(pred string, arity, n int) *Relation {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	return ins.ensureLocked(pred, arity, n)
}

// ensureLocked returns the named relation, creating it (with its hook, if
// a factory is installed) when absent. Callers hold ins.mu exclusively.
func (ins *Instance) ensureLocked(pred string, arity, n int) *Relation {
	if r, ok := ins.rels[pred]; ok {
		return r
	}
	if n <= 0 {
		n = ins.nshards
	}
	r := NewRelationSharded(pred, arity, n)
	if ins.hooks != nil {
		r.SetAppendHook(ins.hooks(pred, r.arity, r.NumShards()))
	}
	ins.rels[pred] = r
	return r
}

// Add inserts a tuple into pred, creating the relation on first use (with
// the instance's shard count). It reports whether the tuple was new.
// Lookups take the instance lock's read side and first-use creation its
// write side (double-checked, so racing creators converge on one
// relation); the tuple insert itself runs outside the instance lock —
// shards self-synchronize — so concurrent Adds to an existing relation
// never serialize here.
func (ins *Instance) Add(pred string, t Tuple) (bool, error) {
	ins.mu.RLock()
	r, ok := ins.rels[pred]
	ins.mu.RUnlock()
	if !ok {
		ins.mu.Lock()
		r = ins.ensureLocked(pred, len(t), ins.nshards)
		ins.mu.Unlock()
	}
	return r.Insert(t)
}

// MustAdd is Add that panics on arity errors; for tests and loaders of
// already-validated data.
func (ins *Instance) MustAdd(pred string, vals ...string) {
	if _, err := ins.Add(pred, Tuple(vals)); err != nil {
		panic(err)
	}
}

// Size returns the total number of tuples across relations.
func (ins *Instance) Size() int {
	ins.mu.RLock()
	defer ins.mu.RUnlock()
	n := 0
	for _, r := range ins.rels {
		n += r.Len()
	}
	return n
}

// String renders the instance deterministically (for golden tests).
func (ins *Instance) String() string {
	var sb strings.Builder
	for _, name := range ins.Relations() {
		r := ins.Relation(name)
		for _, t := range r.Tuples() {
			sb.WriteString(name)
			sb.WriteString(t.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
