// Package rel is the relational execution substrate: instances of stored
// relations, set-semantics evaluation of conjunctive queries and unions of
// conjunctive queries, and semi-naive datalog evaluation.
//
// The paper defers query execution ("the precise method of evaluating Q' is
// beyond the scope of this paper"); this package supplies it so that
// reformulated queries can actually be answered over stored relations, and
// so the chase-based certain-answer oracle has an evaluator to run on.
package rel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Tuple is a row of constant values.
type Tuple []string

// Key returns a canonical map key for the tuple.
func (t Tuple) Key() string { return strings.Join(t, "\x00") }

// String renders the tuple as (v1, ..., vn).
func (t Tuple) String() string { return "(" + strings.Join(t, ", ") + ")" }

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Relation is a named set of tuples of fixed arity. Mutation requires
// external synchronization (rel.Instance is single-writer); the sorted-view
// cache below is internally synchronized so concurrent readers are safe.
type Relation struct {
	Name   string
	Arity  int
	tuples map[string]Tuple
	// sortedMu guards sorted, which caches the deterministic tuple order
	// and is invalidated on insert, and log, the append-only insertion
	// history that engine indexes consume incrementally.
	sortedMu sync.Mutex
	sorted   []Tuple
	log      []Tuple
}

// NewRelation creates an empty relation.
func NewRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, tuples: map[string]Tuple{}}
}

// Insert adds a tuple (set semantics). It reports whether the tuple was new
// and returns an error on arity mismatch.
func (r *Relation) Insert(t Tuple) (bool, error) {
	if len(t) != r.Arity {
		return false, fmt.Errorf("rel: %s arity %d, tuple %v has %d values", r.Name, r.Arity, t, len(t))
	}
	k := t.Key()
	if _, ok := r.tuples[k]; ok {
		return false, nil
	}
	cp := make(Tuple, len(t))
	copy(cp, t)
	r.tuples[k] = cp
	r.sortedMu.Lock()
	r.sorted = nil
	r.log = append(r.log, cp)
	r.sortedMu.Unlock()
	return true, nil
}

// Version returns the number of inserts so far. Together with AddedSince it
// lets derived structures (hash indexes, materialized views) catch up
// incrementally instead of rebuilding: tuples are never deleted, so the
// suffix log[v:] is exactly what changed since version v.
func (r *Relation) Version() uint64 {
	r.sortedMu.Lock()
	defer r.sortedMu.Unlock()
	return uint64(len(r.log))
}

// AddedSince returns the tuples inserted after version v, in insertion
// order. Callers must not mutate the result. AddedSince(0) is every tuple
// and, unlike Tuples, never pays a sort.
func (r *Relation) AddedSince(v uint64) []Tuple {
	r.sortedMu.Lock()
	defer r.sortedMu.Unlock()
	if v > uint64(len(r.log)) {
		return nil
	}
	return r.log[v:]
}

// Contains reports tuple membership.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.tuples[t.Key()]
	return ok
}

// Len returns the cardinality.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuples in deterministic (sorted) order. The result is
// cached and shared: callers must not mutate it.
func (r *Relation) Tuples() []Tuple {
	r.sortedMu.Lock()
	defer r.sortedMu.Unlock()
	if r.sorted == nil {
		out := make([]Tuple, 0, len(r.tuples))
		for _, t := range r.tuples {
			out = append(out, t)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
		r.sorted = out
	}
	return r.sorted
}

// DistinctSorted returns the distinct union of the given tuple groups in
// canonical (Tuple.Key) order — the answer-set semantics every UCQ
// evaluator shares.
func DistinctSorted(groups ...[]Tuple) []Tuple {
	seen := map[string]bool{}
	var out []Tuple
	for _, g := range groups {
		for _, t := range g {
			if k := t.Key(); !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Instance maps predicate names to relations. The zero value is unusable;
// use NewInstance.
type Instance struct {
	rels map[string]*Relation
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{rels: map[string]*Relation{}}
}

// Clone returns a deep copy of the instance.
func (ins *Instance) Clone() *Instance {
	out := NewInstance()
	for name, r := range ins.rels {
		nr := NewRelation(name, r.Arity)
		for k, t := range r.tuples {
			nr.tuples[k] = t
		}
		// Full-slice expression: later appends to either log must not
		// share backing storage.
		nr.log = r.log[:len(r.log):len(r.log)]
		out.rels[name] = nr
	}
	return out
}

// Relation returns the named relation, or nil if absent.
func (ins *Instance) Relation(pred string) *Relation { return ins.rels[pred] }

// Relations returns the predicate names present, sorted.
func (ins *Instance) Relations() []string {
	out := make([]string, 0, len(ins.rels))
	for name := range ins.rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Gen returns the per-relation generation of pred: the number of inserts
// it has absorbed (Relation.Version), or 0 when the relation is absent. A
// relation that exists but holds no tuples is indistinguishable from an
// absent one, which is sound for generation keying: both denote the same
// (empty) contents. Callers key caches by vectors of these counters so a
// mutation of one relation invalidates only entries that touch it.
func (ins *Instance) Gen(pred string) uint64 {
	if r := ins.rels[pred]; r != nil {
		return r.Version()
	}
	return 0
}

// Add inserts a tuple into pred, creating the relation on first use. It
// reports whether the tuple was new.
func (ins *Instance) Add(pred string, t Tuple) (bool, error) {
	r, ok := ins.rels[pred]
	if !ok {
		r = NewRelation(pred, len(t))
		ins.rels[pred] = r
	}
	return r.Insert(t)
}

// MustAdd is Add that panics on arity errors; for tests and loaders of
// already-validated data.
func (ins *Instance) MustAdd(pred string, vals ...string) {
	if _, err := ins.Add(pred, Tuple(vals)); err != nil {
		panic(err)
	}
}

// Size returns the total number of tuples across relations.
func (ins *Instance) Size() int {
	n := 0
	for _, r := range ins.rels {
		n += len(r.tuples)
	}
	return n
}

// String renders the instance deterministically (for golden tests).
func (ins *Instance) String() string {
	var sb strings.Builder
	for _, name := range ins.Relations() {
		r := ins.rels[name]
		for _, t := range r.Tuples() {
			sb.WriteString(name)
			sb.WriteString(t.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
