package rel

import (
	"fmt"
	"sync"
	"testing"
)

// TestInstanceConcurrentCreate hammers first-use relation creation: for
// each brand-new predicate, several goroutines Add concurrently (racing
// the lazy map insert), others EnsureRelation the same name, and catalog
// walkers read the map the whole time. Before the instance guarded its
// relation map, two racing creators could overwrite — and so lose — each
// other's freshly made relation, and any concurrent reader was a map
// read/write race (a "concurrent map writes" panic under load, a report
// under -race). Now every predicate must end up with exactly one relation
// holding every writer's tuple.
func TestInstanceConcurrentCreate(t *testing.T) {
	const (
		preds   = 8
		writers = 8 // per predicate, all racing the first use
	)
	ins := NewInstance()
	var wg sync.WaitGroup
	for p := 0; p < preds; p++ {
		pred := fmt.Sprintf("p%d", p)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(val string) {
				defer wg.Done()
				if _, err := ins.Add(pred, Tuple{val}); err != nil {
					t.Errorf("add %s(%s): %v", pred, val, err)
				}
			}(fmt.Sprintf("v%d", w))
		}
		wg.Add(1)
		go func(pred string) {
			defer wg.Done()
			if r := ins.EnsureRelation(pred, 1, 0); r == nil {
				t.Errorf("ensure %s returned nil", pred)
			}
		}(pred)
	}
	// Catalog walkers race the creators: membership reads must be safe
	// against the first-use map inserts.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, name := range ins.Relations() {
					ins.Gen(name)
					ins.Relation(name)
				}
				ins.Size()
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()
	if got := len(ins.Relations()); got != preds {
		t.Fatalf("relations = %d, want %d", got, preds)
	}
	for p := 0; p < preds; p++ {
		pred := fmt.Sprintf("p%d", p)
		if got := ins.Relation(pred).Len(); got != writers {
			t.Fatalf("%s holds %d tuples, want %d (a racing creator's relation was lost)", pred, got, writers)
		}
	}
}
