package rel

import (
	"fmt"
	"math"
	"testing"
)

// TestStatsSketchAccuracy: the per-column distinct estimates must land
// within the sketch's error bounds — near exact in the linear-counting
// regime, within ~12% (several standard errors at 2^10 registers) at
// scale — and must be clamped to [1, Rows].
func TestStatsSketchAccuracy(t *testing.T) {
	const rows = 50000
	r := NewRelationSharded("R", 3, 4)
	for i := 0; i < rows; i++ {
		r.Insert(Tuple{
			fmt.Sprintf("id%d", i),    // all distinct
			fmt.Sprintf("g%d", i%100), // 100 distinct
			"constant",                // 1 distinct
		})
	}
	st := r.Stats()
	if st.Rows != rows || st.Shards != 4 || len(st.Distinct) != 3 {
		t.Fatalf("Stats = %+v", st)
	}
	checks := []struct {
		col  int
		want float64
		tol  float64 // relative
	}{
		{0, rows, 0.12},
		{1, 100, 0.05},
		{2, 1, 0.01},
	}
	for _, c := range checks {
		got := st.Distinct[c.col]
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Fatalf("col %d distinct estimate %.1f, want %.0f ±%.0f%%", c.col, got, c.want, c.tol*100)
		}
	}
	for col, d := range st.Distinct {
		if d < 1 || d > float64(st.Rows) {
			t.Fatalf("col %d estimate %.1f outside [1, %d]", col, d, st.Rows)
		}
	}
}

// TestStatsDeterministicAcrossLayouts: the estimate depends only on the
// value set — same data, different shard counts and insert orders, same
// numbers (registers merge by max, so layout cannot leak in).
func TestStatsDeterministicAcrossLayouts(t *testing.T) {
	build := func(n int, reversed bool) Stats {
		r := NewRelationSharded("R", 2, n)
		for i := 0; i < 5000; i++ {
			j := i
			if reversed {
				j = 4999 - i
			}
			r.Insert(Tuple{fmt.Sprintf("k%d", j), fmt.Sprintf("v%d", j%37)})
		}
		return r.Stats()
	}
	a, b, c := build(1, false), build(8, false), build(8, true)
	for col := 0; col < 2; col++ {
		if a.Distinct[col] != b.Distinct[col] || b.Distinct[col] != c.Distinct[col] {
			t.Fatalf("col %d estimates differ across layouts: %v %v %v",
				col, a.Distinct[col], b.Distinct[col], c.Distinct[col])
		}
	}
}

// TestStatsEmptyAndSmall: empty relations report zero; tiny cardinalities
// are exact (linear counting with almost all registers empty).
func TestStatsEmptyAndSmall(t *testing.T) {
	r := NewRelationSharded("R", 2, 2)
	st := r.Stats()
	if st.Rows != 0 || st.Distinct[0] != 0 || st.Distinct[1] != 0 {
		t.Fatalf("empty Stats = %+v", st)
	}
	r.Insert(Tuple{"a", "x"})
	r.Insert(Tuple{"b", "x"})
	r.Insert(Tuple{"c", "x"})
	st = r.Stats()
	if math.Round(st.Distinct[0]) != 3 || math.Round(st.Distinct[1]) != 1 {
		t.Fatalf("small-count estimates not exact: %+v", st)
	}
}

// TestStatsDuplicatesIgnored: reinserting existing tuples moves nothing
// (set semantics reach the sketches too).
func TestStatsDuplicatesIgnored(t *testing.T) {
	r := NewRelationSharded("R", 1, 2)
	for i := 0; i < 100; i++ {
		r.Insert(Tuple{fmt.Sprintf("v%d", i%10)})
	}
	st := r.Stats()
	if st.Rows != 10 || math.Round(st.Distinct[0]) != 10 {
		t.Fatalf("Stats = %+v, want 10 rows / 10 distinct", st)
	}
}

// TestSketchMergeSubsumes: merging sketches equals sketching the union.
func TestSketchMergeSubsumes(t *testing.T) {
	var a, b, u sketch
	for i := 0; i < 3000; i++ {
		h := fnv64a(fmt.Sprintf("a%d", i))
		a.add(h)
		u.add(h)
	}
	for i := 0; i < 3000; i++ {
		h := fnv64a(fmt.Sprintf("b%d", i))
		b.add(h)
		u.add(h)
	}
	a.merge(b)
	if a.estimate() != u.estimate() {
		t.Fatalf("merged estimate %.2f != union estimate %.2f", a.estimate(), u.estimate())
	}
}
