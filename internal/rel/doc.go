// Package rel is the relational execution substrate: sharded instances of
// stored relations, set-semantics evaluation of conjunctive queries and
// unions of conjunctive queries, and semi-naive datalog evaluation.
//
// The paper defers query execution ("the precise method of evaluating Q' is
// beyond the scope of this paper"); this package supplies it so that
// reformulated queries can actually be answered over stored relations, and
// so the chase-based certain-answer oracle has an evaluator to run on.
//
// # Shards
//
// A Relation is hash-partitioned over N shards by its first column's value
// (rel.ShardOf; N defaults to one shard per CPU, see DefaultShards, and
// N = 1 reproduces the unsharded layout exactly). Each shard owns its own
// tuple set, append-only insert log and generation counter behind its own
// mutex, so inserts to different shards — and the index catch-ups and
// parallel scans internal/engine runs over them — never contend on one
// lock. The partitioning column is the first because join keys and pushed
// constants land there most often in this codebase's workloads, letting the
// engine route a probe whose bound-position set includes column 0 to the
// single shard that can hold matches.
//
// # Generations
//
// Every shard counts its inserts; Relation.Version folds (sums) the
// per-shard counters into the same monotonic per-relation insert count the
// system has always used, so the generation-vector answer cache
// (pdms.Network) and the netpeer gens piggyback are unchanged in meaning
// and granularity. Derived structures that must catch up incrementally —
// the engine's lazy hash indexes — consume the per-shard vector instead
// (ShardVersion / ShardAddedSince): tuples are never deleted, so a shard's
// log suffix is exactly what that shard gained since a given version.
//
// # Statistics
//
// Each shard also maintains one small HyperLogLog sketch per column,
// updated on every insert and merged across shards by Relation.Stats. The
// resulting approximate distinct-value counts feed the engine planner's
// selectivity model (a bound column with d distinct values keeps roughly
// 1/d of a relation), replacing the fixed per-bound-argument discount.
// Estimates are deterministic for a given data set and can only influence
// join order, never answers.
//
// The naive evaluators in this package (EvalCQ, EvalUCQ, EvalDatalog)
// remain the reference oracles that internal/engine — the indexed,
// parallel evaluator used on every hot path — is differentially tested
// against. See ARCHITECTURE.md at the repository root for how this layer
// fits under the mediator, engine and wire layers.
package rel
