package rel

import (
	"math"
	"math/bits"
)

// Per-column distinct-value sketches: a small HyperLogLog (2^sketchP
// registers) per column per shard, updated on every insert and merged
// across shards on demand. They power the planner's selectivity estimates
// (internal/engine.OrderBodyStats): binding a column with many distinct
// values narrows a probe far more than binding one with few, which the old
// fixed per-bound-argument discount could not see.
//
// Properties that matter here:
//
//   - Incremental: add is O(1) per column per insert, no rebuild ever.
//   - Mergeable: registers combine by element-wise max, so per-shard
//     sketches fold into one relation-level estimate without coordination.
//   - Deterministic: the estimate depends only on the set of values
//     inserted (register updates are max operations), never on insertion
//     order or shard layout — the same data always plans the same way.
//   - Approximate: standard error is about 1.04/sqrt(2^sketchP) (~3.3% at
//     sketchP = 10), with a linear-counting correction making small
//     cardinalities near exact. Estimates steer join ordering only; they
//     can never affect answer correctness.
const (
	sketchP = 10
	sketchM = 1 << sketchP
)

// sketch is one column's HyperLogLog. The zero value is an empty sketch;
// registers are allocated on first add so empty relations cost nothing.
type sketch struct {
	reg []uint8
}

// mix64 is the 64-bit avalanche finalizer (murmur3's fmix64). FNV-1a mixes
// trailing input bytes weakly into the high bits — exactly the bits the
// sketch uses for register indexing — so similar keys ("v0".."v9") would
// otherwise collapse into one register; the finalizer restores full-width
// diffusion.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// add folds one hashed value into the sketch.
func (sk *sketch) add(h uint64) {
	h = mix64(h)
	if sk.reg == nil {
		sk.reg = make([]uint8, sketchM)
	}
	idx := h >> (64 - sketchP)
	// Rank: leading zeros of the remaining 64-sketchP bits, plus one. The
	// |1 floor bounds the rank when those bits are all zero.
	rank := uint8(bits.LeadingZeros64(h<<sketchP|1)) + 1
	if rank > sk.reg[idx] {
		sk.reg[idx] = rank
	}
}

// merge folds another sketch into this one (element-wise max).
func (sk *sketch) merge(o sketch) {
	if o.reg == nil {
		return
	}
	if sk.reg == nil {
		sk.reg = make([]uint8, sketchM)
	}
	for i, r := range o.reg {
		if r > sk.reg[i] {
			sk.reg[i] = r
		}
	}
}

// clone returns an independent copy.
func (sk sketch) clone() sketch {
	if sk.reg == nil {
		return sketch{}
	}
	cp := make([]uint8, sketchM)
	copy(cp, sk.reg)
	return sketch{reg: cp}
}

// estimate returns the approximate distinct count: the standard HLL raw
// estimate with the small-range linear-counting correction. (The large-range
// correction is unnecessary with a 64-bit hash.)
func (sk sketch) estimate() float64 {
	if sk.reg == nil {
		return 0
	}
	sum := 0.0
	zeros := 0
	for _, r := range sk.reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	m := float64(sketchM)
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return e
}

// Stats is a point-in-time statistical snapshot of one relation: its
// cardinality, shard layout (row counts per shard, for skew observability)
// and the approximate number of distinct values per column. Distinct
// estimates are clamped to [1, Rows] for non-empty relations: the sketch's
// small relative error can otherwise exceed the true cardinality, and the
// planner divides by these values.
type Stats struct {
	// Rows is the relation's cardinality (Len).
	Rows int
	// Shards is the relation's shard count.
	Shards int
	// ShardRows holds the per-shard tuple counts (sums to Rows when
	// quiesced); heavily skewed first-column keys show up here.
	ShardRows []int
	// Distinct holds the approximate distinct-value count per column.
	Distinct []float64
}

// Stats returns the relation's current statistics, merging the per-shard
// distinct-value sketches. It is safe for concurrent use; under concurrent
// inserts the snapshot is per shard, not atomic across shards.
func (r *Relation) Stats() Stats {
	st := Stats{
		Shards:    len(r.shards),
		ShardRows: make([]int, len(r.shards)),
		Distinct:  make([]float64, r.arity),
	}
	merged := make([]sketch, r.arity)
	for i, s := range r.shards {
		s.mu.Lock()
		st.ShardRows[i] = len(s.tuples)
		st.Rows += len(s.tuples)
		for c := range s.distinct {
			merged[c].merge(s.distinct[c])
		}
		s.mu.Unlock()
	}
	for c := range merged {
		d := merged[c].estimate()
		if st.Rows > 0 {
			if d > float64(st.Rows) {
				d = float64(st.Rows)
			}
			if d < 1 {
				d = 1
			}
		}
		st.Distinct[c] = d
	}
	return st
}
