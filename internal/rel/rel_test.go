package rel

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation("R", 2)
	nw, err := r.Insert(Tuple{"a", "b"})
	if err != nil || !nw {
		t.Fatalf("first insert: %v %v", nw, err)
	}
	nw, err = r.Insert(Tuple{"a", "b"})
	if err != nil || nw {
		t.Fatalf("dup insert: %v %v", nw, err)
	}
	if r.Len() != 1 || !r.Contains(Tuple{"a", "b"}) {
		t.Fatal("set semantics broken")
	}
	if _, err := r.Insert(Tuple{"a"}); err == nil {
		t.Fatal("arity mismatch not detected")
	}
}

func TestTupleKeyCollisionResistance(t *testing.T) {
	// ("a","b") vs ("a\x00b") must not collide given the separator; arity
	// differs so relations would differ anyway, but Key must still differ
	// for map use across mixed arities.
	a := Tuple{"a", "b"}
	b := Tuple{"a\x00b"}
	if a.Key() == b.Key() {
		t.Skip("known ambiguity") // documents the separator choice
	}
}

func TestInstanceCloneIndependent(t *testing.T) {
	ins := NewInstance()
	ins.MustAdd("R", "1")
	cp := ins.Clone()
	cp.MustAdd("R", "2")
	if ins.Relation("R").Len() != 1 || cp.Relation("R").Len() != 2 {
		t.Fatal("clone aliases original")
	}
}

func TestEvalCQJoin(t *testing.T) {
	ins := NewInstance()
	ins.MustAdd("E", "a", "b")
	ins.MustAdd("E", "b", "c")
	ins.MustAdd("E", "c", "d")
	// Two-hop paths: q(x,z) :- E(x,y), E(y,z).
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x"), lang.Var("z")),
		Body: []lang.Atom{
			lang.NewAtom("E", lang.Var("x"), lang.Var("y")),
			lang.NewAtom("E", lang.Var("y"), lang.Var("z")),
		},
	}
	rows, err := EvalCQ(q, ins)
	if err != nil {
		t.Fatal(err)
	}
	want := []Tuple{{"a", "c"}, {"b", "d"}}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i := range want {
		if !rows[i].Equal(want[i]) {
			t.Fatalf("rows = %v, want %v", rows, want)
		}
	}
}

func TestEvalCQConstantsAndSelfJoin(t *testing.T) {
	ins := NewInstance()
	ins.MustAdd("R", "1", "1")
	ins.MustAdd("R", "1", "2")
	// q(x) :- R(x, x): diagonal.
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x")),
		Body: []lang.Atom{lang.NewAtom("R", lang.Var("x"), lang.Var("x"))},
	}
	rows, err := EvalCQ(q, ins)
	if err != nil || len(rows) != 1 || rows[0][0] != "1" {
		t.Fatalf("diagonal rows = %v err = %v", rows, err)
	}
	// q2(y) :- R("1", y): constant selection.
	q2 := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("R", lang.Const("1"), lang.Var("y"))},
	}
	rows, err = EvalCQ(q2, ins)
	if err != nil || len(rows) != 2 {
		t.Fatalf("selection rows = %v err = %v", rows, err)
	}
}

func TestEvalCQConstInHead(t *testing.T) {
	ins := NewInstance()
	ins.MustAdd("R", "x1")
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("a"), lang.Const("tag")),
		Body: []lang.Atom{lang.NewAtom("R", lang.Var("a"))},
	}
	rows, err := EvalCQ(q, ins)
	if err != nil || len(rows) != 1 || rows[0][1] != "tag" {
		t.Fatalf("rows = %v err = %v", rows, err)
	}
}

func TestEvalCQComparisons(t *testing.T) {
	ins := NewInstance()
	ins.MustAdd("P", "alice", "3")
	ins.MustAdd("P", "bob", "7")
	ins.MustAdd("P", "carol", "10")
	q := lang.CQ{
		Head:  lang.NewAtom("q", lang.Var("n")),
		Body:  []lang.Atom{lang.NewAtom("P", lang.Var("n"), lang.Var("a"))},
		Comps: []lang.Comparison{{Op: lang.OpGT, L: lang.Var("a"), R: lang.Const("5")}},
	}
	rows, err := EvalCQ(q, ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "bob" || rows[1][0] != "carol" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestEvalCQUnsafe(t *testing.T) {
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x")),
		Body: []lang.Atom{lang.NewAtom("R", lang.Var("y"))},
	}
	if _, err := EvalCQ(q, NewInstance()); err == nil {
		t.Fatal("unsafe query accepted")
	}
}

func TestEvalCQUnboundComparison(t *testing.T) {
	ins := NewInstance()
	ins.MustAdd("R", "1")
	q := lang.CQ{
		Head:  lang.NewAtom("q", lang.Var("x")),
		Body:  []lang.Atom{lang.NewAtom("R", lang.Var("x"))},
		Comps: []lang.Comparison{{Op: lang.OpLT, L: lang.Var("x"), R: lang.Var("free")}},
	}
	if _, err := EvalCQ(q, ins); err == nil {
		t.Fatal("comparison over unbound variable accepted")
	}
}

func TestEvalCQMissingRelationEmpty(t *testing.T) {
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x")),
		Body: []lang.Atom{lang.NewAtom("Nope", lang.Var("x"))},
	}
	rows, err := EvalCQ(q, NewInstance())
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows = %v err = %v", rows, err)
	}
}

func TestEvalUCQUnionDedup(t *testing.T) {
	ins := NewInstance()
	ins.MustAdd("A", "1")
	ins.MustAdd("B", "1")
	ins.MustAdd("B", "2")
	u := lang.UCQ{}
	u.Add(lang.CQ{Head: lang.NewAtom("q", lang.Var("x")), Body: []lang.Atom{lang.NewAtom("A", lang.Var("x"))}})
	u.Add(lang.CQ{Head: lang.NewAtom("q", lang.Var("x")), Body: []lang.Atom{lang.NewAtom("B", lang.Var("x"))}})
	rows, err := EvalUCQ(u, ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestEvalDatalogTransitiveClosure(t *testing.T) {
	ins := NewInstance()
	ins.MustAdd("E", "a", "b")
	ins.MustAdd("E", "b", "c")
	ins.MustAdd("E", "c", "d")
	rules := []lang.CQ{
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("y")),
			Body: []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("y"))}},
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("z")),
			Body: []lang.Atom{
				lang.NewAtom("E", lang.Var("x"), lang.Var("y")),
				lang.NewAtom("T", lang.Var("y"), lang.Var("z"))}},
	}
	out, err := EvalDatalog(rules, ins)
	if err != nil {
		t.Fatal(err)
	}
	tc := out.Relation("T")
	if tc == nil || tc.Len() != 6 {
		t.Fatalf("closure size = %v, want 6 pairs", tc)
	}
	for _, pair := range [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"}} {
		if !tc.Contains(Tuple{pair[0], pair[1]}) {
			t.Fatalf("missing pair %v", pair)
		}
	}
	// Base preserved.
	if out.Relation("E").Len() != 3 {
		t.Fatal("base relation modified")
	}
}

func TestEvalDatalogDisjunction(t *testing.T) {
	// P is the union of P1 and P2 (paper Section 2.1.2 example).
	ins := NewInstance()
	ins.MustAdd("P1", "a")
	ins.MustAdd("P2", "b")
	rules := []lang.CQ{
		{Head: lang.NewAtom("P", lang.Var("x")), Body: []lang.Atom{lang.NewAtom("P1", lang.Var("x"))}},
		{Head: lang.NewAtom("P", lang.Var("x")), Body: []lang.Atom{lang.NewAtom("P2", lang.Var("x"))}},
	}
	out, err := EvalDatalog(rules, ins)
	if err != nil {
		t.Fatal(err)
	}
	p := out.Relation("P")
	if p == nil || p.Len() != 2 {
		t.Fatalf("P = %v", p)
	}
}

func TestEvalDatalogWithComparison(t *testing.T) {
	ins := NewInstance()
	ins.MustAdd("N", "1")
	ins.MustAdd("N", "5")
	ins.MustAdd("N", "9")
	rules := []lang.CQ{
		{Head: lang.NewAtom("Big", lang.Var("x")),
			Body:  []lang.Atom{lang.NewAtom("N", lang.Var("x"))},
			Comps: []lang.Comparison{{Op: lang.OpGE, L: lang.Var("x"), R: lang.Const("5")}}},
	}
	out, err := EvalDatalog(rules, ins)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("Big").Len() != 2 {
		t.Fatalf("Big = %v", out.Relation("Big").Tuples())
	}
}

func TestInstanceStringDeterministic(t *testing.T) {
	ins := NewInstance()
	ins.MustAdd("B", "2")
	ins.MustAdd("A", "1")
	s := ins.String()
	if !strings.HasPrefix(s, "A(1)\n") {
		t.Fatalf("String = %q", s)
	}
}
