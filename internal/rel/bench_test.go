package rel

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/lang"
)

// buildChainInstance makes a random edge relation for join benchmarks.
func buildChainInstance(n int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	ins := NewInstance()
	for i := 0; i < n; i++ {
		ins.MustAdd("E", fmt.Sprintf("n%d", rng.Intn(n/2+1)), fmt.Sprintf("n%d", rng.Intn(n/2+1)))
	}
	return ins
}

func BenchmarkEvalCQTwoHopJoin(b *testing.B) {
	ins := buildChainInstance(500, 1)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x"), lang.Var("z")),
		Body: []lang.Atom{
			lang.NewAtom("E", lang.Var("x"), lang.Var("y")),
			lang.NewAtom("E", lang.Var("y"), lang.Var("z")),
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalCQ(q, ins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalCQSelective(b *testing.B) {
	ins := buildChainInstance(2000, 2)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("E", lang.Const("n3"), lang.Var("y"))},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalCQ(q, ins); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalDatalogTransitiveClosure(b *testing.B) {
	rules := []lang.CQ{
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("y")),
			Body: []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("y"))}},
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("z")),
			Body: []lang.Atom{
				lang.NewAtom("E", lang.Var("x"), lang.Var("y")),
				lang.NewAtom("T", lang.Var("y"), lang.Var("z"))}},
	}
	ins := NewInstance()
	for i := 0; i < 60; i++ {
		ins.MustAdd("E", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalDatalog(rules, ins); err != nil {
			b.Fatal(err)
		}
	}
}
