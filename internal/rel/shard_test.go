package rel

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestShardedN1EquivalentToSeed: one shard must reproduce the pre-sharding
// layout observably — one log in insertion order, Version = insert count,
// sorted Tuples, routing degenerate.
func TestShardedN1EquivalentToSeed(t *testing.T) {
	r := NewRelationSharded("R", 2, 1)
	if r.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", r.NumShards())
	}
	ins := []Tuple{{"b", "2"}, {"a", "1"}, {"c", "3"}}
	for _, tu := range ins {
		if nw, err := r.Insert(tu); err != nil || !nw {
			t.Fatalf("insert %v: %v %v", tu, nw, err)
		}
	}
	if r.Insert(Tuple{"b", "2"}); r.Version() != 3 {
		t.Fatalf("Version = %d after 3 distinct inserts + 1 dup, want 3", r.Version())
	}
	log := r.ShardAddedSince(0, 0)
	if len(log) != 3 || !log[0].Equal(ins[0]) || !log[2].Equal(ins[2]) {
		t.Fatalf("single-shard log not in insertion order: %v", log)
	}
	if got := r.ShardAddedSince(0, 2); len(got) != 1 || !got[0].Equal(ins[2]) {
		t.Fatalf("ShardAddedSince(0,2) = %v", got)
	}
	if got := r.Tuples(); len(got) != 3 || got[0][0] != "a" {
		t.Fatalf("Tuples = %v, want sorted", got)
	}
	if r.ShardFor("anything") != 0 {
		t.Fatal("N=1 routing must be shard 0")
	}
}

// TestShardPartitioning: every tuple lands in the shard ShardOf names, the
// shards together hold exactly the relation, and the generation fold equals
// the insert count.
func TestShardPartitioning(t *testing.T) {
	const n = 8
	r := NewRelationSharded("R", 2, n)
	rng := rand.New(rand.NewSource(7))
	inserted := map[string]bool{}
	for i := 0; i < 2000; i++ {
		tu := Tuple{fmt.Sprintf("k%d", rng.Intn(700)), fmt.Sprintf("v%d", i)}
		nw, err := r.Insert(tu)
		if err != nil {
			t.Fatal(err)
		}
		if nw {
			inserted[tu.Key()] = true
		}
	}
	if r.Len() != len(inserted) || r.Version() != uint64(len(inserted)) {
		t.Fatalf("Len=%d Version=%d, want %d", r.Len(), r.Version(), len(inserted))
	}
	var sum uint64
	total := 0
	for s := 0; s < n; s++ {
		sum += r.ShardVersion(s)
		for _, tu := range r.ShardAddedSince(s, 0) {
			total++
			if want := ShardOf(tu[0], n); want != s {
				t.Fatalf("tuple %v in shard %d, ShardOf says %d", tu, s, want)
			}
			if !inserted[tu.Key()] {
				t.Fatalf("phantom tuple %v", tu)
			}
		}
		if r.ShardLen(s) != len(r.ShardAddedSince(s, 0)) {
			t.Fatalf("shard %d: len %d vs log %d", s, r.ShardLen(s), len(r.ShardAddedSince(s, 0)))
		}
	}
	if total != len(inserted) || sum != uint64(len(inserted)) {
		t.Fatalf("shards cover %d tuples (gen fold %d), want %d", total, sum, len(inserted))
	}
	// Contains routes correctly for every inserted tuple.
	for s := 0; s < n; s++ {
		for _, tu := range r.ShardAddedSince(s, 0) {
			if !r.Contains(tu) {
				t.Fatalf("Contains(%v) = false", tu)
			}
		}
	}
	if r.Contains(Tuple{"nope", "nope"}) {
		t.Fatal("Contains on absent tuple")
	}
}

// TestSkewedKeysSingleShard: a pathological first column (one value) lands
// every tuple in one shard; correctness is unaffected and the skew is
// visible in Stats.ShardRows.
func TestSkewedKeysSingleShard(t *testing.T) {
	r := NewRelationSharded("R", 2, 8)
	for i := 0; i < 500; i++ {
		r.Insert(Tuple{"hot", fmt.Sprintf("v%d", i)})
	}
	st := r.Stats()
	nonEmpty := 0
	for _, rows := range st.ShardRows {
		if rows > 0 {
			nonEmpty++
			if rows != 500 {
				t.Fatalf("skewed shard holds %d rows, want 500", rows)
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("%d shards populated by a single-value key, want 1 (ShardRows %v)", nonEmpty, st.ShardRows)
	}
	if r.Len() != 500 || len(r.Tuples()) != 500 {
		t.Fatalf("Len=%d Tuples=%d", r.Len(), len(r.Tuples()))
	}
}

// TestShardOfDistribution: the hash spreads realistic keys roughly evenly
// (each of 8 shards within 3x of fair share over 8000 keys) and is
// deterministic.
func TestShardOfDistribution(t *testing.T) {
	const n, keys = 8, 8000
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		s := ShardOf(k, n)
		if s != ShardOf(k, n) {
			t.Fatal("ShardOf not deterministic")
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < keys/n/3 || c > keys/n*3 {
			t.Fatalf("shard %d holds %d of %d keys (distribution %v)", s, c, keys, counts)
		}
	}
}

// TestShardedCloneIndependent: clones preserve shard layout, contents and
// generations, and diverge after mutation.
func TestShardedCloneIndependent(t *testing.T) {
	ins := NewInstanceSharded(4)
	for i := 0; i < 100; i++ {
		ins.MustAdd("R", fmt.Sprintf("k%d", i), "v")
	}
	cp := ins.Clone()
	r, cr := ins.Relation("R"), cp.Relation("R")
	if cr.NumShards() != r.NumShards() || cr.Version() != r.Version() {
		t.Fatalf("clone layout/gen mismatch: %d/%d vs %d/%d", cr.NumShards(), cr.Version(), r.NumShards(), r.Version())
	}
	if !reflect.DeepEqual(cr.Tuples(), r.Tuples()) {
		t.Fatal("clone contents differ")
	}
	cp.MustAdd("R", "new", "v")
	if r.Len() != 100 || cr.Len() != 101 {
		t.Fatalf("clone aliases original: %d vs %d", r.Len(), cr.Len())
	}
	if r.Version() == cr.Version() {
		t.Fatal("clone generation did not advance independently")
	}
}

// TestReshard: repartitioning preserves contents across any shard count.
func TestReshard(t *testing.T) {
	src := NewInstanceSharded(1)
	for i := 0; i < 300; i++ {
		src.MustAdd("A", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i%7))
	}
	src.MustAdd("B", "x")
	for _, n := range []int{1, 2, 8} {
		out := Reshard(src, n)
		if got := out.Relation("A").NumShards(); got != n {
			t.Fatalf("Reshard(%d): NumShards = %d", n, got)
		}
		if !reflect.DeepEqual(out.Relation("A").Tuples(), src.Relation("A").Tuples()) {
			t.Fatalf("Reshard(%d) changed contents", n)
		}
		if out.Relation("B").Len() != 1 {
			t.Fatalf("Reshard(%d) lost relation B", n)
		}
	}
}

// TestConcurrentShardInserts: concurrent inserts (multiple writers) are
// safe and lose nothing — each shard self-synchronizes. Run with -race.
func TestConcurrentShardInserts(t *testing.T) {
	r := NewRelationSharded("R", 2, 4)
	const writers, per = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := r.Insert(Tuple{fmt.Sprintf("w%d-%d", w, i), "v"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers exercise the lock discipline.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			r.Len()
			r.Version()
			r.Stats()
			r.Tuples()
		}
	}()
	wg.Wait()
	<-done
	if r.Len() != writers*per || r.Version() != uint64(writers*per) {
		t.Fatalf("Len=%d Version=%d, want %d", r.Len(), r.Version(), writers*per)
	}
}

// TestTuplesCacheFreshness: the sorted view must track growth (regression
// for the version-tagged cache replacing insert-time invalidation).
func TestTuplesCacheFreshness(t *testing.T) {
	r := NewRelationSharded("R", 1, 4)
	r.Insert(Tuple{"b"})
	if got := r.Tuples(); len(got) != 1 {
		t.Fatalf("Tuples = %v", got)
	}
	r.Insert(Tuple{"a"})
	got := r.Tuples()
	if len(got) != 2 || got[0][0] != "a" {
		t.Fatalf("Tuples after growth = %v, want sorted fresh view", got)
	}
	// Unchanged relation: cached slice is reused.
	if &got[0] != &r.Tuples()[0] {
		t.Fatal("sorted view not cached across calls at the same version")
	}
}
