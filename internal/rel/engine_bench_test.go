package rel_test

// Engine-backed counterparts of the naive-evaluator benchmarks in
// bench_test.go (external test package: the engine imports rel, so these
// cannot live in package rel itself). Same data, same queries — the
// speedup between BenchmarkEvalCQ* and BenchmarkEngineEvalCQ* is the
// engine's contribution on record in the bench trajectory.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/rel"
)

func buildChain(n int, seed int64) *rel.Instance {
	rng := rand.New(rand.NewSource(seed))
	ins := rel.NewInstance()
	for i := 0; i < n; i++ {
		ins.MustAdd("E", fmt.Sprintf("n%d", rng.Intn(n/2+1)), fmt.Sprintf("n%d", rng.Intn(n/2+1)))
	}
	return ins
}

func BenchmarkEngineEvalCQTwoHopJoin(b *testing.B) {
	ins := buildChain(500, 1)
	e := engine.New(ins)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x"), lang.Var("z")),
		Body: []lang.Atom{
			lang.NewAtom("E", lang.Var("x"), lang.Var("y")),
			lang.NewAtom("E", lang.Var("y"), lang.Var("z")),
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EvalCQ(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineEvalCQSelective(b *testing.B) {
	ins := buildChain(2000, 2)
	e := engine.New(ins)
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("y")),
		Body: []lang.Atom{lang.NewAtom("E", lang.Const("n3"), lang.Var("y"))},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EvalCQ(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineEvalDatalogTransitiveClosure(b *testing.B) {
	rules := []lang.CQ{
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("y")),
			Body: []lang.Atom{lang.NewAtom("E", lang.Var("x"), lang.Var("y"))}},
		{Head: lang.NewAtom("T", lang.Var("x"), lang.Var("z")),
			Body: []lang.Atom{
				lang.NewAtom("E", lang.Var("x"), lang.Var("y")),
				lang.NewAtom("T", lang.Var("y"), lang.Var("z"))}},
	}
	ins := rel.NewInstance()
	for i := 0; i < 60; i++ {
		ins.MustAdd("E", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.EvalDatalog(rules, ins); err != nil {
			b.Fatal(err)
		}
	}
}
