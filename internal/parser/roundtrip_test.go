package parser

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lang"
)

// Property: printing a query with lang.CQ.String and re-parsing it yields
// an alpha-equivalent query (same canonical form). This pins the printer
// and parser to a common concrete syntax — rewritings printed by the tools
// are themselves valid query inputs (provided variable names are plain
// identifiers, which parser-produced queries always are).
func TestCQStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomParseableCQ(rng)
		back, err := ParseQuery(q.String())
		if err != nil {
			t.Logf("parse error for %q: %v", q.String(), err)
			return false
		}
		return back.Canonical() == q.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func randomParseableCQ(rng *rand.Rand) lang.CQ {
	vars := []lang.Term{lang.Var("x"), lang.Var("y"), lang.Var("z"), lang.Var("w")}
	consts := []lang.Term{lang.Const("a"), lang.Const("5"), lang.Const("-1.5"), lang.Const("two words")}
	randT := func() lang.Term {
		if rng.Intn(4) == 0 {
			return consts[rng.Intn(len(consts))]
		}
		return vars[rng.Intn(len(vars))]
	}
	preds := []string{"A:R", "B.s", "Plain"}
	nb := 1 + rng.Intn(3)
	q := lang.CQ{Head: lang.NewAtom("q", vars[0], vars[1])}
	var bodyVars []lang.Term
	for i := 0; i < nb; i++ {
		a := lang.NewAtom(preds[rng.Intn(len(preds))], randT(), randT())
		q.Body = append(q.Body, a)
		bodyVars = a.Vars(bodyVars)
	}
	// Keep the query safe: force head vars into the first atom.
	q.Body[0].Args[0] = vars[0]
	q.Body[0].Args[1] = vars[1]
	if rng.Intn(2) == 0 {
		ops := []lang.CompOp{lang.OpEQ, lang.OpNE, lang.OpLT, lang.OpLE, lang.OpGT, lang.OpGE}
		q.Comps = append(q.Comps, lang.Comparison{
			Op: ops[rng.Intn(len(ops))],
			L:  vars[rng.Intn(2)],
			R:  consts[rng.Intn(len(consts))],
		})
	}
	return q
}
