package parser

import (
	"fmt"
	"strings"

	"repro/internal/lang"
	"repro/internal/ppl"
	"repro/internal/rel"
)

// Result is the outcome of parsing a specification: a PDMS, optional data
// facts, and optional named queries (in file order).
type Result struct {
	PDMS    *ppl.PDMS
	Data    *rel.Instance
	Queries []lang.CQ
}

// Parse parses a full PPL specification.
func Parse(src string) (*Result, error) {
	p := &parser{lx: newLexer(src), res: &Result{PDMS: ppl.New(), Data: rel.NewInstance()}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind != tokEOF {
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
	return p.res, nil
}

// ParseQuery parses a single query of the form "head(args) :- body".
func ParseQuery(src string) (lang.CQ, error) {
	p := &parser{lx: newLexer(src), res: &Result{PDMS: ppl.New(), Data: rel.NewInstance()}}
	if err := p.advance(); err != nil {
		return lang.CQ{}, err
	}
	q, err := p.rule(false)
	if err != nil {
		return lang.CQ{}, err
	}
	if p.tok.kind != tokEOF {
		return lang.CQ{}, p.errHere("trailing input after query")
	}
	return q, nil
}

type parser struct {
	lx  *lexer
	tok token
	res *Result
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errHere(format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errHere("expected %s, found %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// statement dispatches on the leading keyword.
func (p *parser) statement() error {
	if p.tok.kind != tokIdent {
		return p.errHere("expected statement keyword, found %s %q", p.tok.kind, p.tok.text)
	}
	switch p.tok.text {
	case "peer":
		return p.peerDecl()
	case "stored":
		return p.storedDecl()
	case "define":
		return p.defineStmt()
	case "include":
		return p.includeStmt()
	case "equal":
		return p.equalStmt()
	case "storage":
		return p.storageStmt()
	case "fact":
		return p.factStmt()
	case "query":
		return p.queryStmt()
	default:
		return p.errHere("unknown statement keyword %q", p.tok.text)
	}
}

// peerDecl: peer NAME { Rel(attr, ...) ... }
func (p *parser) peerDecl() error {
	if err := p.advance(); err != nil { // consume 'peer'
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if strings.ContainsAny(name.text, ":.") {
		return p.errHere("peer name %q must be unqualified", name.text)
	}
	if err := p.res.PDMS.AddPeer(name.text); err != nil {
		return err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.tok.kind != tokRBrace {
		rn, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if strings.ContainsAny(rn.text, ":.") {
			return p.errHere("relation name %q in peer block must be unqualified", rn.text)
		}
		attrs, err := p.attrList()
		if err != nil {
			return err
		}
		decl := ppl.RelationDecl{
			Name:  name.text + ":" + rn.text,
			Peer:  name.text,
			Arity: len(attrs),
			Attrs: attrs,
			Kind:  ppl.PeerRelation,
		}
		if err := p.res.PDMS.DeclareRelation(decl); err != nil {
			return err
		}
	}
	_, err = p.expect(tokRBrace)
	return err
}

// storedDecl: stored Peer.Rel(attr, ...)
func (p *parser) storedDecl() error {
	if err := p.advance(); err != nil {
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	peer, _, ok := splitQualified(name.text, '.')
	if !ok {
		return p.errHere("stored relation %q must be qualified as Peer.Relation", name.text)
	}
	attrs, err := p.attrList()
	if err != nil {
		return err
	}
	return p.res.PDMS.DeclareRelation(ppl.RelationDecl{
		Name:  name.text,
		Peer:  peer,
		Arity: len(attrs),
		Attrs: attrs,
		Kind:  ppl.StoredRelation,
	})
}

// attrList: ( ident, ident, ... )
func (p *parser) attrList() ([]string, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var attrs []string
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, id.text)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return attrs, nil
}

// defineStmt: define Head(args) :- body
func (p *parser) defineStmt() error {
	if err := p.advance(); err != nil {
		return err
	}
	rule, err := p.rule(true)
	if err != nil {
		return err
	}
	p.declareAtoms(append([]lang.Atom{rule.Head}, rule.Body...))
	return p.res.PDMS.AddMapping(&ppl.Mapping{Kind: ppl.Definitional, Rule: rule})
}

// includeStmt: include conj in conj
func (p *parser) includeStmt() error {
	if err := p.advance(); err != nil {
		return err
	}
	lhs, rhs, err := p.twoSides("in")
	if err != nil {
		return err
	}
	return p.res.PDMS.AddMapping(&ppl.Mapping{Kind: ppl.Inclusion, LHS: lhs, RHS: rhs})
}

// equalStmt: equal conj and conj
func (p *parser) equalStmt() error {
	if err := p.advance(); err != nil {
		return err
	}
	lhs, rhs, err := p.twoSides("and")
	if err != nil {
		return err
	}
	return p.res.PDMS.AddMapping(&ppl.Mapping{Kind: ppl.Equality, LHS: lhs, RHS: rhs})
}

// twoSides parses "conj KEYWORD conj" and builds the two CQs whose shared
// head is the list of variables common to both sides.
func (p *parser) twoSides(sep string) (lhs, rhs lang.CQ, err error) {
	la, lc, err := p.conj(sep)
	if err != nil {
		return lhs, rhs, err
	}
	if p.tok.kind != tokIdent || p.tok.text != sep {
		return lhs, rhs, p.errHere("expected %q between mapping sides", sep)
	}
	if err := p.advance(); err != nil {
		return lhs, rhs, err
	}
	ra, rc, err := p.conj("")
	if err != nil {
		return lhs, rhs, err
	}
	p.declareAtoms(la)
	p.declareAtoms(ra)
	// Head variables: those occurring in both sides' atoms.
	var lvs, rvs []lang.Term
	for _, a := range la {
		lvs = a.Vars(lvs)
	}
	for _, a := range ra {
		rvs = a.Vars(rvs)
	}
	rset := map[lang.Term]bool{}
	for _, t := range rvs {
		rset[t] = true
	}
	var head []lang.Term
	for _, t := range lvs {
		if rset[t] {
			head = append(head, t)
		}
	}
	h := lang.Atom{Pred: "_map", Args: head}
	lhs = lang.CQ{Head: h, Body: la, Comps: lc}
	rhs = lang.CQ{Head: h.Clone(), Body: ra, Comps: rc}
	return lhs, rhs, nil
}

// storageStmt: storage Peer.Rel(args) (in|=) conj
func (p *parser) storageStmt() error {
	if err := p.advance(); err != nil {
		return err
	}
	stored, err := p.atom()
	if err != nil {
		return err
	}
	if _, _, ok := splitQualified(stored.Pred, '.'); !ok {
		return p.errHere("storage head %q must be a stored relation (Peer.Relation)", stored.Pred)
	}
	var kind ppl.StorageKind
	switch {
	case p.tok.kind == tokIdent && p.tok.text == "in":
		kind = ppl.StorageContainment
	case p.tok.kind == tokEq:
		kind = ppl.StorageEquality
	default:
		return p.errHere("expected 'in' or '=' after storage head")
	}
	if err := p.advance(); err != nil {
		return err
	}
	atoms, comps, err := p.conj("")
	if err != nil {
		return err
	}
	p.declareAtoms([]lang.Atom{stored})
	p.declareAtoms(atoms)
	head := lang.Atom{Pred: "_store", Args: append([]lang.Term{}, stored.Args...)}
	return p.res.PDMS.AddStorage(&ppl.Storage{
		Kind:   kind,
		Stored: stored,
		Query:  lang.CQ{Head: head, Body: atoms, Comps: comps},
	})
}

// factStmt: fact Peer.Rel(const, ...)
func (p *parser) factStmt() error {
	if err := p.advance(); err != nil {
		return err
	}
	a, err := p.atom()
	if err != nil {
		return err
	}
	tup := make(rel.Tuple, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			return p.errHere("fact arguments must be constants, found variable %q", t.Name)
		}
		tup[i] = t.Name
	}
	p.declareAtoms([]lang.Atom{a})
	_, err = p.res.Data.Add(a.Pred, tup)
	return err
}

// queryStmt: query head(args) :- body
func (p *parser) queryStmt() error {
	if err := p.advance(); err != nil {
		return err
	}
	q, err := p.rule(false)
	if err != nil {
		return err
	}
	p.declareAtoms(q.Body)
	p.res.Queries = append(p.res.Queries, q)
	return nil
}

// rule: head(args) :- atom, atom, comp, ...   (declareHead controls whether
// the head predicate must be qualified — true for definitional mappings).
func (p *parser) rule(declareHead bool) (lang.CQ, error) {
	head, err := p.atom()
	if err != nil {
		return lang.CQ{}, err
	}
	if declareHead {
		if _, _, ok := splitQualified(head.Pred, ':'); !ok {
			return lang.CQ{}, p.errHere("definitional head %q must be a peer relation (Peer:Relation)", head.Pred)
		}
	}
	if _, err := p.expect(tokImplies); err != nil {
		return lang.CQ{}, err
	}
	atoms, comps, err := p.conj("")
	if err != nil {
		return lang.CQ{}, err
	}
	return lang.CQ{Head: head, Body: atoms, Comps: comps}, nil
}

// conj parses a comma-separated list of atoms and comparisons, stopping at
// EOF, at a statement keyword, or at stopWord.
func (p *parser) conj(stopWord string) ([]lang.Atom, []lang.Comparison, error) {
	var atoms []lang.Atom
	var comps []lang.Comparison
	for {
		item, cmp, isCmp, err := p.conjunct()
		if err != nil {
			return nil, nil, err
		}
		if isCmp {
			comps = append(comps, cmp)
		} else {
			atoms = append(atoms, item)
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			continue
		}
		return atoms, comps, nil
	}
}

// conjunct parses either an atom or a comparison "term op term".
func (p *parser) conjunct() (lang.Atom, lang.Comparison, bool, error) {
	// Lookahead: ident '(' → atom; otherwise a term followed by an operator.
	if p.tok.kind == tokIdent {
		name := p.tok
		if err := p.advance(); err != nil {
			return lang.Atom{}, lang.Comparison{}, false, err
		}
		if p.tok.kind == tokLParen {
			args, err := p.argList()
			if err != nil {
				return lang.Atom{}, lang.Comparison{}, false, err
			}
			return lang.Atom{Pred: name.text, Args: args}, lang.Comparison{}, false, nil
		}
		// It must be a comparison whose left side is the variable `name`.
		cmp, err := p.comparisonAfter(lang.Var(name.text))
		return lang.Atom{}, cmp, true, err
	}
	// Left side is a constant.
	l, err := p.term()
	if err != nil {
		return lang.Atom{}, lang.Comparison{}, false, err
	}
	cmp, err := p.comparisonAfter(l)
	return lang.Atom{}, cmp, true, err
}

func (p *parser) comparisonAfter(l lang.Term) (lang.Comparison, error) {
	var op lang.CompOp
	switch p.tok.kind {
	case tokEq:
		op = lang.OpEQ
	case tokNe:
		op = lang.OpNE
	case tokLt:
		op = lang.OpLT
	case tokLe:
		op = lang.OpLE
	case tokGt:
		op = lang.OpGT
	case tokGe:
		op = lang.OpGE
	default:
		return lang.Comparison{}, p.errHere("expected comparison operator, found %s %q", p.tok.kind, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return lang.Comparison{}, err
	}
	r, err := p.term()
	if err != nil {
		return lang.Comparison{}, err
	}
	return lang.Comparison{Op: op, L: l, R: r}, nil
}

// atom: ident ( args )
func (p *parser) atom() (lang.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return lang.Atom{}, err
	}
	args, err := p.argList()
	if err != nil {
		return lang.Atom{}, err
	}
	return lang.Atom{Pred: name.text, Args: args}, nil
}

// argList: ( term, term, ... )
func (p *parser) argList() ([]lang.Term, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var args []lang.Term
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		args = append(args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

// term: ident (variable) | string | number (constants)
func (p *parser) term() (lang.Term, error) {
	switch p.tok.kind {
	case tokIdent:
		if strings.ContainsAny(p.tok.text, ":.") {
			return lang.Term{}, p.errHere("qualified name %q cannot be a term", p.tok.text)
		}
		t := lang.Var(p.tok.text)
		return t, p.advance()
	case tokString, tokNumber:
		t := lang.Const(p.tok.text)
		return t, p.advance()
	default:
		return lang.Term{}, p.errHere("expected term, found %s %q", p.tok.kind, p.tok.text)
	}
}

// declareAtoms auto-declares relations on first use: "A:R" as a peer
// relation of peer A, "A.R" as a stored relation of peer A. Unqualified
// predicates (query heads, mapping heads) are not declared. Redeclaration
// errors are surfaced lazily by Add* calls; here mismatches are ignored so
// the caller's AddMapping/AddStorage report them with context.
func (p *parser) declareAtoms(atoms []lang.Atom) {
	for _, a := range atoms {
		if peer, _, ok := splitQualified(a.Pred, ':'); ok {
			_ = p.res.PDMS.DeclareRelation(ppl.RelationDecl{
				Name: a.Pred, Peer: peer, Arity: a.Arity(), Kind: ppl.PeerRelation,
			})
		} else if peer, _, ok := splitQualified(a.Pred, '.'); ok {
			_ = p.res.PDMS.DeclareRelation(ppl.RelationDecl{
				Name: a.Pred, Peer: peer, Arity: a.Arity(), Kind: ppl.StoredRelation,
			})
		}
	}
}

// splitQualified splits "A:B" (or "A.B") into its parts.
func splitQualified(s string, sep byte) (peer, rel string, ok bool) {
	i := strings.IndexByte(s, sep)
	if i <= 0 || i == len(s)-1 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}
