package parser

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/ppl"
)

func TestParsePeerBlock(t *testing.T) {
	res, err := Parse(`
peer H {
  Doctor(sid, loc)
  EMT(sid, vid)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	d := res.PDMS.Relation("H:Doctor")
	if d == nil || d.Arity != 2 || d.Kind != ppl.PeerRelation || d.Peer != "H" {
		t.Fatalf("H:Doctor decl = %+v", d)
	}
	if res.PDMS.Relation("H:EMT") == nil {
		t.Fatal("H:EMT missing")
	}
	if len(d.Attrs) != 2 || d.Attrs[0] != "sid" {
		t.Fatalf("attrs = %v", d.Attrs)
	}
}

func TestParseStoredDecl(t *testing.T) {
	res, err := Parse(`stored FH.doc(sid, last, loc)`)
	if err != nil {
		t.Fatal(err)
	}
	d := res.PDMS.Relation("FH.doc")
	if d == nil || d.Kind != ppl.StoredRelation || d.Arity != 3 {
		t.Fatalf("FH.doc decl = %+v", d)
	}
}

func TestParseDefine(t *testing.T) {
	res, err := Parse(`define NineDC:SkilledPerson(p, "Doctor") :- H:Doctor(p, h, l, s, e)`)
	if err != nil {
		t.Fatal(err)
	}
	ms := res.PDMS.Mappings()
	if len(ms) != 1 || ms[0].Kind != ppl.Definitional {
		t.Fatalf("mappings = %v", ms)
	}
	r := ms[0].Rule
	if r.Head.Pred != "NineDC:SkilledPerson" || r.Head.Args[1] != lang.Const("Doctor") {
		t.Fatalf("rule head = %v", r.Head)
	}
	if len(r.Body) != 1 || r.Body[0].Pred != "H:Doctor" {
		t.Fatalf("rule body = %v", r.Body)
	}
	// Auto-declared relations.
	if res.PDMS.Relation("H:Doctor") == nil || res.PDMS.Relation("NineDC:SkilledPerson") == nil {
		t.Fatal("auto-declaration missing")
	}
}

func TestParseIncludeSharedHeadVars(t *testing.T) {
	res, err := Parse(`include LH:CritBed(b,h,r,p,s) in H:CritBed(b,h,r), H:Patient(p,b,s)`)
	if err != nil {
		t.Fatal(err)
	}
	m := res.PDMS.Mappings()[0]
	if m.Kind != ppl.Inclusion {
		t.Fatalf("kind = %v", m.Kind)
	}
	// All five variables occur on both sides → head arity 5.
	if m.LHS.Head.Arity() != 5 || m.RHS.Head.Arity() != 5 {
		t.Fatalf("head arities = %d, %d", m.LHS.Head.Arity(), m.RHS.Head.Arity())
	}
}

func TestParseIncludeExistentials(t *testing.T) {
	// y exists only on the left, z only on the right → head is (x).
	res, err := Parse(`include A:R(x,y) in B:S(x,z)`)
	if err != nil {
		t.Fatal(err)
	}
	m := res.PDMS.Mappings()[0]
	if m.LHS.Head.Arity() != 1 || m.LHS.Head.Args[0] != lang.Var("x") {
		t.Fatalf("head = %v", m.LHS.Head)
	}
	if !m.LHS.HasProjection() || !m.RHS.HasProjection() {
		t.Fatal("projection flags wrong")
	}
}

func TestParseEqual(t *testing.T) {
	res, err := Parse(`equal ECC:Vehicle(v,ty,c,g,d) and NineDC:Vehicle(v,ty,c,g,d)`)
	if err != nil {
		t.Fatal(err)
	}
	m := res.PDMS.Mappings()[0]
	if m.Kind != ppl.Equality || m.LHS.Head.Arity() != 5 {
		t.Fatalf("mapping = %v", m)
	}
	if m.LHS.HasProjection() {
		t.Fatal("replication mapping should be projection-free")
	}
}

func TestParseStorage(t *testing.T) {
	res, err := Parse(`
storage FH.doc(s,l,loc) in FH:Staff(s,f,l,st,e), FH:Doctor(s,loc)
storage FH.all(s) = FH:Staff(s,f,l,st,e)
`)
	if err != nil {
		t.Fatal(err)
	}
	ss := res.PDMS.Storages()
	if len(ss) != 2 {
		t.Fatalf("storages = %v", ss)
	}
	if ss[0].Kind != ppl.StorageContainment || ss[1].Kind != ppl.StorageEquality {
		t.Fatal("storage kinds wrong")
	}
	if ss[0].Stored.Pred != "FH.doc" || len(ss[0].Query.Body) != 2 {
		t.Fatalf("storage 0 = %v", ss[0])
	}
}

func TestParseFactAndQuery(t *testing.T) {
	res, err := Parse(`
fact FH.doc("d07", "welby", "er")
fact FH.doc("d08", "house", "icu")
query q(x) :- FH:Doctor(x, l)
`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Data.Relation("FH.doc")
	if r == nil || r.Len() != 2 {
		t.Fatalf("data = %v", res.Data)
	}
	if len(res.Queries) != 1 || res.Queries[0].Head.Pred != "q" {
		t.Fatalf("queries = %v", res.Queries)
	}
}

func TestParseComparisons(t *testing.T) {
	res, err := Parse(`query q(x) :- A:R(x, y), y >= 10, x != "zed"`)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Queries[0]
	if len(q.Comps) != 2 {
		t.Fatalf("comps = %v", q.Comps)
	}
	if q.Comps[0].Op != lang.OpGE || q.Comps[0].R != lang.Const("10") {
		t.Fatalf("comp 0 = %v", q.Comps[0])
	}
	if q.Comps[1].Op != lang.OpNE || q.Comps[1].R != lang.Const("zed") {
		t.Fatalf("comp 1 = %v", q.Comps[1])
	}
}

func TestParseDefinitionalComparison(t *testing.T) {
	res, err := Parse(`define A:Big(x) :- A:N(x), x > 5`)
	if err != nil {
		t.Fatal(err)
	}
	m := res.PDMS.Mappings()[0]
	if len(m.Rule.Comps) != 1 || m.Rule.Comps[0].Op != lang.OpGT {
		t.Fatalf("rule comps = %v", m.Rule.Comps)
	}
}

func TestParseComments(t *testing.T) {
	res, err := Parse(`
# hash comment
// slash comment
fact A.r("1")  # trailing comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data.Relation("A.r").Len() != 1 {
		t.Fatal("fact under comments lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"unknown keyword", `frobnicate A:R(x)`, "unknown statement"},
		{"unterminated string", `fact A.r("oops)`, "unterminated string"},
		{"variable in fact", `fact A.r(x)`, "must be constants"},
		{"bad storage head", `storage A:R(x) in A:S(x)`, "stored relation"},
		{"missing in", `include A:R(x) B:S(x)`, "expected"},
		{"bad define head", `define q(x) :- A:R(x)`, "must be a peer relation"},
		{"lone colon", `fact A.r(:)`, "unexpected ':'"},
		{"bad escape", `fact A.r("\q")`, "bad escape"},
		{"stray bang", `fact A.r(!)`, "unexpected '!'"},
		{"arity clash", "fact A.r(\"1\")\nfact A.r(\"1\",\"2\")", "arity"},
		{"qualified term", `query q(x) :- A:R(A:S, x)`, "cannot be a term"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseQueryHelper(t *testing.T) {
	q, err := ParseQuery(`q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), FS:Skill(f2, s)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Head.Arity() != 2 || len(q.Body) != 3 {
		t.Fatalf("q = %v", q)
	}
	if _, err := ParseQuery(`q(x) :- A:R(x) trailing`); err == nil {
		t.Fatal("trailing input accepted")
	}
}

func TestParseNumbersNegativeAndFloat(t *testing.T) {
	res, err := Parse(`fact A.r(-3, 2.5)`)
	if err != nil {
		t.Fatal(err)
	}
	tup := res.Data.Relation("A.r").Tuples()[0]
	if tup[0] != "-3" || tup[1] != "2.5" {
		t.Fatalf("tuple = %v", tup)
	}
}

func TestParseWholeEmergencyFragment(t *testing.T) {
	// A fragment of the paper's Figure 2 example, exercising all statement
	// kinds together.
	src := `
peer FS {
  SameEngine(f1, f2, e)
  AssignedTo(f, e)
  Skill(f, s)
  SameSkill(f1, f2)
  Sched(f, st, e)
}
stored FS.S1(f, e, s)
stored FS.S2(f1, f2)

define FS:SameEngine(f1, f2, e) :- FS:AssignedTo(f1, e), FS:AssignedTo(f2, e)
include FS:SameSkill(f1, f2) in FS:Skill(f1, s), FS:Skill(f2, s)
storage FS.S1(f, e, s) in FS:AssignedTo(f, e), FS:Sched(f, st, s)
storage FS.S2(f1, f2) = FS:SameSkill(f1, f2)

fact FS.S1("albert", "engine9", "x")
fact FS.S2("albert", "betty")

query q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), FS:Skill(f2, s)
`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st := res.PDMS.Stats()
	if st.Definitional != 1 || st.Inclusions != 1 || st.StorageDescrs != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if res.Data.Size() != 2 || len(res.Queries) != 1 {
		t.Fatalf("data/queries wrong: %d facts, %d queries", res.Data.Size(), len(res.Queries))
	}
	if err := res.PDMS.ValidateQuery(res.Queries[0]); err != nil {
		t.Fatal(err)
	}
}
