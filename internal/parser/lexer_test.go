package parser

import (
	"testing"
)

// lexAll tokenizes the whole input, failing the test on lexer errors.
func lexAll(t *testing.T, src string) []token {
	t.Helper()
	lx := newLexer(src)
	var out []token
	for {
		tok, err := lx.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		out = append(out, tok)
		if tok.kind == tokEOF {
			return out
		}
	}
}

func kinds(ts []token) []tokenKind {
	out := make([]tokenKind, len(ts))
	for i, t := range ts {
		out[i] = t.kind
	}
	return out
}

func TestLexQualifiedIdentifiers(t *testing.T) {
	ts := lexAll(t, `H:Doctor FH.doc plain`)
	if len(ts) != 4 {
		t.Fatalf("tokens = %v", ts)
	}
	if ts[0].text != "H:Doctor" || ts[1].text != "FH.doc" || ts[2].text != "plain" {
		t.Fatalf("texts = %q %q %q", ts[0].text, ts[1].text, ts[2].text)
	}
}

func TestLexImpliesVsQualifier(t *testing.T) {
	// "q(x) :- p(x)" must lex ':-' as one token, NOT consume ':' into q's
	// identifier (the ':' is followed by '-', not an identifier start).
	ts := lexAll(t, `q :- p`)
	want := []tokenKind{tokIdent, tokImplies, tokIdent, tokEOF}
	got := kinds(ts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestLexOperators(t *testing.T) {
	ts := lexAll(t, `= != < <= > >=`)
	want := []tokenKind{tokEq, tokNe, tokLt, tokLe, tokGt, tokGe, tokEOF}
	got := kinds(ts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	ts := lexAll(t, `"a\"b" "tab\tnl\n" "back\\slash"`)
	if ts[0].text != `a"b` {
		t.Fatalf("escape quote: %q", ts[0].text)
	}
	if ts[1].text != "tab\tnl\n" {
		t.Fatalf("escape tab/nl: %q", ts[1].text)
	}
	if ts[2].text != `back\slash` {
		t.Fatalf("escape backslash: %q", ts[2].text)
	}
}

func TestLexNumbers(t *testing.T) {
	ts := lexAll(t, `0 42 -7 3.14 -0.5`)
	for i, want := range []string{"0", "42", "-7", "3.14", "-0.5"} {
		if ts[i].kind != tokNumber || ts[i].text != want {
			t.Fatalf("token %d = %+v, want number %q", i, ts[i], want)
		}
	}
}

func TestLexNumberDotNotConsumedAsQualifier(t *testing.T) {
	// "1.x" is not a valid number continuation; the dot must not glue.
	lx := newLexer(`fact A.r(1)`)
	var texts []string
	for {
		tok, err := lx.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.kind == tokEOF {
			break
		}
		texts = append(texts, tok.text)
	}
	if texts[1] != "A.r" {
		t.Fatalf("texts = %v", texts)
	}
}

func TestLexPositions(t *testing.T) {
	lx := newLexer("a\n  b")
	t1, _ := lx.next()
	t2, _ := lx.next()
	if t1.line != 1 || t1.col != 1 {
		t.Fatalf("t1 at %d:%d", t1.line, t1.col)
	}
	if t2.line != 2 || t2.col != 3 {
		t.Fatalf("t2 at %d:%d", t2.line, t2.col)
	}
}

func TestLexCommentsToEOL(t *testing.T) {
	ts := lexAll(t, "a # comment ( ) { } :- \n b // more , = \n c")
	var texts []string
	for _, tok := range ts[:len(ts)-1] {
		texts = append(texts, tok.text)
	}
	if len(texts) != 3 || texts[0] != "a" || texts[1] != "b" || texts[2] != "c" {
		t.Fatalf("texts = %v", texts)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `"bad \q escape"`, "\"newline\nstring\"", `@`, `!x`, `:x`, `-x`} {
		lx := newLexer(src)
		var err error
		for err == nil {
			var tok token
			tok, err = lx.next()
			if err == nil && tok.kind == tokEOF {
				t.Fatalf("no error for %q", src)
			}
		}
	}
}

func TestLexSingleColonNotGlued(t *testing.T) {
	// ':' followed by non-ident must error (there is no standalone colon).
	lx := newLexer(`a : b`)
	if _, err := lx.next(); err != nil { // 'a'
		t.Fatal(err)
	}
	if _, err := lx.next(); err == nil {
		t.Fatal("standalone ':' accepted")
	}
}
