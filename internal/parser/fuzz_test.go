package parser

import (
	"testing"
)

// FuzzParseQuery checks the query parser never panics and — for every
// input it accepts — that the printed form reparses to an alpha-equivalent
// query (same canonical form). This is the round-trip property the tools
// rely on: rewritings printed by one process are valid query inputs for
// another. It is what forced lang.Term.String to stop printing "Inf" or
// "1e5" bare (bare they reparse as a variable, or not at all) and the
// lexer to accept the full strconv.Quote escape repertoire.
func FuzzParseQuery(f *testing.F) {
	for _, s := range []string{
		`q(x) :- A:R(x)`,
		`q(x, y) :- B.s(x, y), C.t(y)`,
		`q(x) :- A:R(x, x), x != "5"`,
		`q(x) :- H:Doctor(x, l), x <= "d99", l = "er"`,
		`q("lit", x) :- A:R(x, -1.5), B:S(x, 42)`,
		`q(x) :- A:R(x, "two words"), A:R(x, "esc\"aped\\")`,
		`q(x) :- A:R(x, "Inf"), A:R(x, "1e5")`,
		"q(x) :- A:R(x, \"tab\\there\")",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		printed := q.String()
		back, err := ParseQuery(printed)
		if err != nil {
			t.Fatalf("printed form %q of accepted query %q does not reparse: %v", printed, src, err)
		}
		if back.Canonical() != q.Canonical() {
			t.Fatalf("round trip changed the query:\n src %q\n printed %q\n canon %q vs %q",
				src, printed, q.Canonical(), back.Canonical())
		}
	})
}

// FuzzParse drives the full PPL specification parser (declarations,
// mappings, storage descriptions, facts, datalog-style defines) with
// arbitrary input: it must never panic, and an accepted specification must
// support the basic traversals the rest of the system performs on load.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"storage A.r(x) in A:R(x)\nfact A.r(\"1\")",
		"peer H { Doctor(sid, loc) }\ndefine DC:On(d) :- H:Doctor(d, l)",
		"include A:R(x) in B:S(x)\nequal A:R(x, y) and C:T(x, y)",
		"stored FH.doc(sid, last)\nstorage FH.doc(s, l) = FH:Doctor(s, l)",
		"# comment\nquery q(x) :- A:R(x), x != \"d99\"\n",
		"storage A.r(x) in A:R(x)\nstorage B.s(x, y) in B:S(x, y)\nfact B.s(\"a\", \"b\")",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Parse(src)
		if err != nil {
			return
		}
		if res == nil || res.PDMS == nil || res.Data == nil {
			t.Fatalf("accepted input %q returned nil result pieces", src)
		}
		// The traversals every loader runs must hold together.
		for _, name := range res.PDMS.RelationNames() {
			if res.PDMS.Relation(name) == nil {
				t.Fatalf("declared relation %q has no descriptor", name)
			}
		}
		_ = res.PDMS.Stats()
		for _, pred := range res.Data.Relations() {
			if res.Data.Relation(pred) == nil {
				t.Fatalf("fact relation %q missing", pred)
			}
		}
	})
}
