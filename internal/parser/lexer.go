// Package parser implements the textual PPL specification format used by
// the command-line tools, the examples, and the tests.
//
// The format (one statement per logical line; '#' and '//' start comments):
//
//	peer H { Doctor(sid, loc)  EMT(sid, vid) }     # optional declarations
//	stored FH.doc(sid, last, loc)                  # optional declaration
//
//	define 9DC:SkilledPerson(p, "Doctor") :- H:Doctor(p, h, l, s, e)
//	include LH:CritBed(b,h,r,p,s) in H:CritBed(b,h,r), H:Patient(p,b,s)
//	equal ECC:Vehicle(v,t,c,g,d) and 9DC:Vehicle(v,t,c,g,d)
//	storage FH.doc(s,l,loc) in FH:Staff(s,f,l,st,e), FH:Doctor(s,loc)
//	storage FH.all(s) = FH:Staff(s,f,l,st,e)
//	fact FH.doc("d07", "welby", "er")
//	query q(x) :- H:Doctor(x, l), x != "d99"
//
// Identifier arguments are variables; quoted strings and numeric literals
// are constants. Relation names are qualified: "Peer:Relation" for peer
// relations, "Peer.Relation" for stored relations. For inclusion and
// equality mappings the correlated (head) variables are exactly the
// variables shared by the two sides; all others are existential. This is
// fully general because head variables of Q1 ⊆ Q2 must occur in both bodies
// for safety.
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token kinds.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // quoted constant
	tokNumber // numeric constant
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokImplies // :-
	tokEq      // =
	tokNe      // !=
	tokLt      // <
	tokLe      // <=
	tokGt      // >
	tokGe      // >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokImplies:
		return "':-'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	default:
		return fmt.Sprintf("tokenKind(%d)", uint8(k))
	}
}

// token is a lexeme with position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// lexer tokenizes a PPL specification.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) errf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '#':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case b == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b))
}

func isIdentPart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b))
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	b := lx.peekByte()
	switch {
	case b == '(':
		lx.advance()
		return token{tokLParen, "(", line, col}, nil
	case b == ')':
		lx.advance()
		return token{tokRParen, ")", line, col}, nil
	case b == '{':
		lx.advance()
		return token{tokLBrace, "{", line, col}, nil
	case b == '}':
		lx.advance()
		return token{tokRBrace, "}", line, col}, nil
	case b == ',':
		lx.advance()
		return token{tokComma, ",", line, col}, nil
	case b == ':':
		// Only ':-' is valid here; a ':' inside a qualified name is
		// consumed by the identifier case below.
		lx.advance()
		if lx.peekByte() == '-' {
			lx.advance()
			return token{tokImplies, ":-", line, col}, nil
		}
		return token{}, lx.errf(line, col, "unexpected ':'")
	case b == '=':
		lx.advance()
		return token{tokEq, "=", line, col}, nil
	case b == '!':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
			return token{tokNe, "!=", line, col}, nil
		}
		return token{}, lx.errf(line, col, "unexpected '!'")
	case b == '<':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
			return token{tokLe, "<=", line, col}, nil
		}
		return token{tokLt, "<", line, col}, nil
	case b == '>':
		lx.advance()
		if lx.peekByte() == '=' {
			lx.advance()
			return token{tokGe, ">=", line, col}, nil
		}
		return token{tokGt, ">", line, col}, nil
	case b == '"':
		return lx.lexString(line, col)
	case b == '-' || unicode.IsDigit(rune(b)):
		return lx.lexNumber(line, col)
	case isIdentStart(b):
		return lx.lexIdent(line, col)
	default:
		return token{}, lx.errf(line, col, "unexpected character %q", string(b))
	}
}

// lexString scans one double-quoted literal and decodes it with
// strconv.Unquote, so the full Go escape repertoire (backslash-n, -t, -",
// -\, -xFF, -uFFFF, …) is accepted. That exactly covers what strconv.Quote
// emits,
// which is what lang.Term.String prints for non-numeric constants — any
// printed query reparses to the same constant values (the fuzz round-trip
// property).
func (lx *lexer) lexString(line, col int) (token, error) {
	start := lx.pos
	lx.advance() // opening quote
	for {
		if lx.pos >= len(lx.src) {
			return token{}, lx.errf(line, col, "unterminated string")
		}
		b := lx.advance()
		switch b {
		case '"':
			val, err := strconv.Unquote(lx.src[start:lx.pos])
			if err != nil {
				return token{}, lx.errf(line, col, "bad escape or string literal: %v", err)
			}
			return token{tokString, val, line, col}, nil
		case '\\':
			if lx.pos >= len(lx.src) {
				return token{}, lx.errf(line, col, "unterminated escape")
			}
			lx.advance()
		case '\n':
			return token{}, lx.errf(line, col, "newline in string")
		}
	}
}

func (lx *lexer) lexNumber(line, col int) (token, error) {
	var sb strings.Builder
	if lx.peekByte() == '-' {
		sb.WriteByte(lx.advance())
		if !unicode.IsDigit(rune(lx.peekByte())) {
			return token{}, lx.errf(line, col, "expected digit after '-'")
		}
	}
	dot := false
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		if unicode.IsDigit(rune(b)) {
			sb.WriteByte(lx.advance())
		} else if b == '.' && !dot && lx.pos+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos+1])) {
			dot = true
			sb.WriteByte(lx.advance())
		} else {
			break
		}
	}
	return token{tokNumber, sb.String(), line, col}, nil
}

// lexIdent consumes an identifier, optionally qualified by a single ':' or
// '.' segment ("Peer:Rel", "Peer.Rel"). A ':' is only consumed when
// followed by an identifier start (so "p :- q" lexes as ident, ':-', ident).
func (lx *lexer) lexIdent(line, col int) (token, error) {
	var sb strings.Builder
	for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
		sb.WriteByte(lx.advance())
	}
	if lx.pos+1 < len(lx.src) {
		sep := lx.peekByte()
		if (sep == ':' || sep == '.') && isIdentStart(lx.src[lx.pos+1]) {
			sb.WriteByte(lx.advance())
			for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
				sb.WriteByte(lx.advance())
			}
		}
	}
	return token{tokIdent, sb.String(), line, col}, nil
}
