package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/rel"
)

func TestTermRoundTrip(t *testing.T) {
	for _, lt := range []lang.Term{lang.Var("x"), lang.Const("5"), lang.Const("a b")} {
		got, err := FromTerm(lt).ToTerm()
		if err != nil || got != lt {
			t.Fatalf("round trip %v -> %v (%v)", lt, got, err)
		}
	}
	if _, err := (Term{Kind: "bogus"}).ToTerm(); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestCQRoundTripJSON(t *testing.T) {
	q := lang.CQ{
		Head: lang.NewAtom("q", lang.Var("x"), lang.Const("tag")),
		Body: []lang.Atom{
			lang.NewAtom("A.r", lang.Var("x"), lang.Var("y")),
			lang.NewAtom("B.s", lang.Var("y"), lang.Const("1")),
		},
		Comps: []lang.Comparison{{Op: lang.OpLE, L: lang.Var("y"), R: lang.Const("9")}},
	}
	data, err := json.Marshal(FromCQ(q))
	if err != nil {
		t.Fatal(err)
	}
	var wq CQ
	if err := json.Unmarshal(data, &wq); err != nil {
		t.Fatal(err)
	}
	got, err := wq.ToCQ()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != q.String() {
		t.Fatalf("round trip: %s != %s", got, q)
	}
}

func TestComparisonOps(t *testing.T) {
	for _, op := range []lang.CompOp{lang.OpEQ, lang.OpNE, lang.OpLT, lang.OpLE, lang.OpGT, lang.OpGE} {
		c := lang.Comparison{Op: op, L: lang.Var("a"), R: lang.Const("b")}
		got, err := FromComparison(c).ToComparison()
		if err != nil || got != c {
			t.Fatalf("op %v: %v (%v)", op, got, err)
		}
	}
	if _, err := (Comparison{Op: "~~"}).ToComparison(); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestTupleHelpers(t *testing.T) {
	ts := []rel.Tuple{{"a", "b"}, {"c"}}
	back := RowsToTuples(TuplesToRows(ts))
	if len(back) != 2 || !back[0].Equal(ts[0]) || !back[1].Equal(ts[1]) {
		t.Fatalf("round trip: %v", back)
	}
}

// A bind request — atom plus bound-key batch — survives the JSON round
// trip with every field intact.
func TestBindRequestRoundTripJSON(t *testing.T) {
	a := FromAtom(lang.NewAtom("P.r", lang.Const("k"), lang.Var("x"), lang.Var("y")))
	req := Request{
		Op:       "bind",
		Atom:     &a,
		BindCols: []int{1, 2},
		BindRows: [][]string{{"v1", "w1"}, {"v|2", "w=3"}},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Op != "bind" || back.Atom == nil {
		t.Fatalf("round trip: %+v", back)
	}
	la, err := back.Atom.ToAtom()
	if err != nil || la.Pred != "P.r" || la.Arity() != 3 {
		t.Fatalf("atom: %v (%v)", la, err)
	}
	if len(back.BindCols) != 2 || back.BindCols[0] != 1 || back.BindCols[1] != 2 {
		t.Fatalf("bindCols: %v", back.BindCols)
	}
	if len(back.BindRows) != 2 || back.BindRows[1][0] != "v|2" || back.BindRows[1][1] != "w=3" {
		t.Fatalf("bindRows: %v", back.BindRows)
	}
}

// Catalog responses carry cardinalities parallel to the predicate list.
func TestCatalogCardsRoundTripJSON(t *testing.T) {
	resp := Response{Preds: []string{"A.r", "B.s"}, Cards: []int{10, 3}}
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var back Response
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Preds) != 2 || len(back.Cards) != 2 || back.Cards[0] != 10 || back.Cards[1] != 3 {
		t.Fatalf("round trip: %+v", back)
	}
}

// A chunked response stream — non-final frames with More set, a final
// frame with piggybacked cardinalities — survives the JSON round trip.
func TestChunkedResponseRoundTripJSON(t *testing.T) {
	frames := []Response{
		{Rows: [][]string{{"a", "1"}, {"b", "2"}}, More: true},
		{Rows: [][]string{{"c", "3"}}, Preds: []string{"P.r"}, Cards: []int{3}},
	}
	var stream []byte
	for _, f := range frames {
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, data...)
		stream = append(stream, '\n')
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	for i, want := range frames {
		line, err := ReadFrame(br, DefaultMaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		var got Response
		if err := json.Unmarshal(line, &got); err != nil {
			t.Fatal(err)
		}
		if got.More != want.More || len(got.Rows) != len(want.Rows) {
			t.Fatalf("frame %d: %+v", i, got)
		}
	}
	if len(frames[0].Cards) != 0 || frames[1].Cards[0] != 3 {
		t.Fatalf("cards: %+v", frames)
	}
	if _, err := ReadFrame(br, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("trailing read err = %v, want io.EOF", err)
	}
}

// ReadFrame must consume an oversized line through its newline — keeping
// the stream framed — and then hand back the frames that follow intact.
func TestReadFrameOversizePreservesFraming(t *testing.T) {
	big := strings.Repeat("x", 5000)
	input := big + "\nok\n"
	br := bufio.NewReaderSize(strings.NewReader(input), 64)
	if _, err := ReadFrame(br, 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	line, err := ReadFrame(br, 1024)
	if err != nil || string(line) != "ok" {
		t.Fatalf("next frame = %q err = %v", line, err)
	}
	if _, err := ReadFrame(br, 1024); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

// Frames larger than the bufio buffer but under the limit reassemble, and
// a partial trailing line is an unexpected EOF, not a silent drop.
func TestReadFrameSpansBufferAndPartialTail(t *testing.T) {
	long := strings.Repeat("y", 300)
	br := bufio.NewReaderSize(strings.NewReader(long+"\npartial"), 64)
	line, err := ReadFrame(br, 1024)
	if err != nil || string(line) != long {
		t.Fatalf("long frame: len=%d err=%v", len(line), err)
	}
	if _, err := ReadFrame(br, 1024); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("partial tail err = %v, want ErrUnexpectedEOF", err)
	}
}

// Property: random CQs survive the JSON round trip textually intact.
func TestCQRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomCQ(rng)
		data, err := json.Marshal(FromCQ(q))
		if err != nil {
			return false
		}
		var wq CQ
		if err := json.Unmarshal(data, &wq); err != nil {
			return false
		}
		got, err := wq.ToCQ()
		return err == nil && got.String() == q.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randomCQ(rng *rand.Rand) lang.CQ {
	vars := []lang.Term{lang.Var("a"), lang.Var("b"), lang.Var("c")}
	randT := func() lang.Term {
		if rng.Intn(3) == 0 {
			return lang.Const(string(rune('0' + rng.Intn(5))))
		}
		return vars[rng.Intn(len(vars))]
	}
	q := lang.CQ{Head: lang.NewAtom("q", vars[0])}
	for i := 0; i < 1+rng.Intn(3); i++ {
		q.Body = append(q.Body, lang.NewAtom("P.r", randT(), randT()))
	}
	if rng.Intn(2) == 0 {
		q.Comps = append(q.Comps, lang.Comparison{
			Op: lang.CompOp(rng.Intn(6)), L: randT(), R: randT(),
		})
	}
	return q
}
