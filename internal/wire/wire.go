// Package wire defines the JSON message format peers use on the network:
// serializable forms of terms, atoms, conjunctive queries and tuples, plus
// the request/response envelopes of the peer protocol.
//
// The protocol is newline-delimited JSON over TCP: one request per line,
// answered by a *stream* of one or more response frames. Seven request
// kinds:
//
//	{"op":"eval", "query":{…}}        evaluate a CQ over this peer's stored
//	                                  relations, returning the head tuples
//	{"op":"scan", "pred":"FH.doc"}    return all tuples of one relation
//	{"op":"catalog"}                  list the stored relations served here,
//	                                  with their current cardinalities and
//	                                  per-relation generations
//	{"op":"bind", "atom":{…},         bind-join probe: return the distinct
//	 "bindCols":[…], "bindRows":[…]}  tuples of the atom's relation that
//	                                  match the atom's constants and, at the
//	                                  bindCols positions, any one of the
//	                                  shipped bindRows key batches
//	{"op":"gens", "preds":[…]}        report the current generation (insert
//	                                  counter) and cardinality of each named
//	                                  relation — the cheap revalidation
//	                                  round trip of the executor's
//	                                  cross-query fragment cache
//	{"op":"ping"}                     no-op liveness probe; connection pools
//	                                  use it to health-check idle-too-long
//	                                  connections before reuse
//	{"op":"add", "pred":"FH.doc",     insert a batch of tuples into one
//	 "rows":[[…]]}                    stored relation (creating it on first
//	                                  use) — the mutation half of mixed
//	                                  read/write workloads
//
// A server under admission control may answer any request with a *busy*
// error frame ({"error":…,"busy":true}): the request was shed before doing
// any work and is safe to retry after a backoff — the connection stays
// usable.
//
// Responses are chunked: a row-bearing op (eval, scan, bind) answers with
// zero or more non-final frames {"rows":[…],"more":true} — each bounded in
// rows and bytes, so neither side ever frames an answer-sized message —
// followed by exactly one final frame (no "more") that carries any
// trailing rows plus, piggybacked, the current cardinalities *and
// per-relation generations* of the relations the request touched
// ("preds"/"cards"/"gens"). The querying executor folds the cardinalities
// into its join-order estimates and the generations into its fragment
// cache's staleness checks: a cached fragment of relation R fetched at
// generation g is served again only while R's generation is still g. An
// error frame ({"error":…}) is always final and may arrive mid-stream, in
// which case the rows already received must be discarded. Single-frame ops
// (catalog, gens, ping, errors) are just a stream of length one.
//
// The bind op is the semi-join half of cross-peer bind-join execution: the
// querying peer ships the distinct join-key values it has bound so far
// (in batches) instead of pulling the whole selection-pushed relation, and
// the serving peer answers each batch from its hash indexes. Batches
// pipeline: a client may write bind request i+1 while the frames of
// request i are still streaming back; the server answers strictly in
// request order, so frames never interleave across requests.
//
// PROTOCOL.md in this directory is the normative specification: frame
// layout, per-op request/response contracts, error-frame and streaming
// semantics, the metadata piggyback, size limits and the compatibility
// rules. This package comment is the summary; the spec wins on conflict.
package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"repro/internal/lang"
	"repro/internal/rel"
)

// Term is the serializable form of lang.Term.
type Term struct {
	// Kind is "var" or "const".
	Kind string `json:"k"`
	// Value is the variable name or constant lexical value.
	Value string `json:"v"`
}

// FromTerm converts a lang.Term.
func FromTerm(t lang.Term) Term {
	k := "var"
	if t.IsConst() {
		k = "const"
	}
	return Term{Kind: k, Value: t.Name}
}

// ToTerm converts back to lang.Term.
func (t Term) ToTerm() (lang.Term, error) {
	switch t.Kind {
	case "var":
		return lang.Var(t.Value), nil
	case "const":
		return lang.Const(t.Value), nil
	default:
		return lang.Term{}, fmt.Errorf("wire: bad term kind %q", t.Kind)
	}
}

// Atom is the serializable form of lang.Atom.
type Atom struct {
	Pred string `json:"p"`
	Args []Term `json:"a"`
}

// FromAtom converts a lang.Atom.
func FromAtom(a lang.Atom) Atom {
	out := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = FromTerm(t)
	}
	return out
}

// ToAtom converts back to lang.Atom.
func (a Atom) ToAtom() (lang.Atom, error) {
	out := lang.Atom{Pred: a.Pred, Args: make([]lang.Term, len(a.Args))}
	for i, t := range a.Args {
		lt, err := t.ToTerm()
		if err != nil {
			return lang.Atom{}, err
		}
		out.Args[i] = lt
	}
	return out, nil
}

// Comparison is the serializable form of lang.Comparison.
type Comparison struct {
	Op string `json:"op"` // "=", "!=", "<", "<=", ">", ">="
	L  Term   `json:"l"`
	R  Term   `json:"r"`
}

var opNames = map[lang.CompOp]string{
	lang.OpEQ: "=", lang.OpNE: "!=", lang.OpLT: "<",
	lang.OpLE: "<=", lang.OpGT: ">", lang.OpGE: ">=",
}

var opValues = map[string]lang.CompOp{
	"=": lang.OpEQ, "!=": lang.OpNE, "<": lang.OpLT,
	"<=": lang.OpLE, ">": lang.OpGT, ">=": lang.OpGE,
}

// FromComparison converts a lang.Comparison.
func FromComparison(c lang.Comparison) Comparison {
	return Comparison{Op: opNames[c.Op], L: FromTerm(c.L), R: FromTerm(c.R)}
}

// ToComparison converts back to lang.Comparison.
func (c Comparison) ToComparison() (lang.Comparison, error) {
	op, ok := opValues[c.Op]
	if !ok {
		return lang.Comparison{}, fmt.Errorf("wire: bad comparison op %q", c.Op)
	}
	l, err := c.L.ToTerm()
	if err != nil {
		return lang.Comparison{}, err
	}
	r, err := c.R.ToTerm()
	if err != nil {
		return lang.Comparison{}, err
	}
	return lang.Comparison{Op: op, L: l, R: r}, nil
}

// CQ is the serializable form of lang.CQ.
type CQ struct {
	Head  Atom         `json:"head"`
	Body  []Atom       `json:"body"`
	Comps []Comparison `json:"comps,omitempty"`
}

// FromCQ converts a lang.CQ.
func FromCQ(q lang.CQ) CQ {
	out := CQ{Head: FromAtom(q.Head)}
	for _, a := range q.Body {
		out.Body = append(out.Body, FromAtom(a))
	}
	for _, c := range q.Comps {
		out.Comps = append(out.Comps, FromComparison(c))
	}
	return out
}

// ToCQ converts back to lang.CQ.
func (q CQ) ToCQ() (lang.CQ, error) {
	head, err := q.Head.ToAtom()
	if err != nil {
		return lang.CQ{}, err
	}
	out := lang.CQ{Head: head}
	for _, a := range q.Body {
		la, err := a.ToAtom()
		if err != nil {
			return lang.CQ{}, err
		}
		out.Body = append(out.Body, la)
	}
	for _, c := range q.Comps {
		lc, err := c.ToComparison()
		if err != nil {
			return lang.CQ{}, err
		}
		out.Comps = append(out.Comps, lc)
	}
	return out, nil
}

// Request is one protocol request.
type Request struct {
	// Op is "eval", "scan", "catalog", "bind", "gens", "add" or "ping".
	Op string `json:"op"`
	// Query is the CQ for eval.
	Query *CQ `json:"query,omitempty"`
	// Pred is the relation for scan and add.
	Pred string `json:"pred,omitempty"`
	// Rows is the batch of tuples an add request inserts into Pred.
	Rows [][]string `json:"rows,omitempty"`
	// Preds lists the relations whose generations a gens request asks for.
	Preds []string `json:"preds,omitempty"`
	// Atom is the atom to probe for bind: constant arguments are pushed
	// down as selections; variable arguments are unconstrained unless their
	// position appears in BindCols.
	Atom *Atom `json:"atom,omitempty"`
	// BindCols lists the variable positions of Atom bound by BindRows.
	BindCols []int `json:"bindCols,omitempty"`
	// BindRows is one batch of bound join keys: each row supplies one value
	// per BindCols entry. A tuple matches the batch when its projection onto
	// BindCols equals at least one row.
	BindRows [][]string `json:"bindRows,omitempty"`
	// Trace optionally carries the caller's trace ID. A server that
	// understands it times the request's server-side work and ships the
	// resulting spans back on the final response frame; servers predating
	// the field ignore it (unknown JSON fields are skipped), which simply
	// leaves the caller's trace without remote detail.
	Trace string `json:"trace,omitempty"`
	// Span is the caller-side span ID the returned remote spans should be
	// parented under. Meaningful only with Trace set.
	Span uint64 `json:"span,omitempty"`
}

// Span is the serializable form of one server-side trace span, shipped on
// the final frame of a traced request. IDs are scoped to this response:
// Parent references either another span in the same Spans slice or the
// request's Span field.
type Span struct {
	ID     uint64     `json:"id"`
	Parent uint64     `json:"parent,omitempty"`
	Name   string     `json:"name"`
	Start  int64      `json:"start,omitempty"` // UnixNano, serving peer's clock
	Dur    int64      `json:"dur"`             // nanoseconds
	Attrs  []SpanAttr `json:"attrs,omitempty"`
}

// SpanAttr is one key/value annotation on a Span.
type SpanAttr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Response is one frame of a protocol response stream. Row-bearing ops
// answer with zero or more non-final frames (More set) followed by one
// final frame; every other op answers with a single final frame.
type Response struct {
	// Error is non-empty on failure; other fields (except Busy) are then
	// unset. An error frame is always final and may arrive mid-stream,
	// superseding any rows already received for the request.
	Error string `json:"error,omitempty"`
	// Busy marks an error frame as an admission-control shed: the server
	// refused to start the request because its in-flight limit and wait
	// queue were exhausted. The request had no effect and is safe to retry
	// after a backoff; the connection remains usable. Meaningful only with
	// Error set.
	Busy bool `json:"busy,omitempty"`
	// Rows carries one bounded chunk of eval/scan/bind results.
	Rows [][]string `json:"rows,omitempty"`
	// More marks a non-final frame: further frames for the same request
	// follow on the stream.
	More bool `json:"more,omitempty"`
	// Preds carries the catalog listing and, on the final frame of eval/
	// scan/bind responses, the names of the relations the request touched.
	Preds []string `json:"preds,omitempty"`
	// Cards carries cardinalities parallel to Preds. The executor's
	// join-order heuristic consumes them as estimates — refreshed on every
	// response, they may still go stale without affecting correctness.
	Cards []int `json:"cards,omitempty"`
	// Gens carries per-relation generations (monotonic insert counters)
	// parallel to Preds, read under the same server lock as the rows of
	// the frame. Unlike Cards they carry a correctness contract: a cached
	// fragment of relation R stamped with generation g holds exactly R's
	// matching tuples for as long as R's generation stays g, so the
	// executor's fragment cache serves an entry only after seeing (or
	// revalidating to) an equal generation.
	Gens []uint64 `json:"gens,omitempty"`
	// Distinct carries per-column distinct-value estimates parallel to
	// Preds (one slice per relation, one estimate per column, from the
	// serving peer's HyperLogLog column sketches). Like Cards it is a
	// planning hint only: the querying executor folds it into its
	// join-order selectivities and falls back to cardinality-only ordering
	// when it is absent. Servers that predate the field never send it;
	// clients that predate it ignore it (unknown JSON fields are skipped).
	Distinct [][]float64 `json:"distinct,omitempty"`
	// Spans carries the serving peer's trace spans for this request,
	// present only on the final frame of a request that carried a Trace ID
	// and only when the server sampled it. Clients that predate the field
	// ignore it.
	Spans []Span `json:"spans,omitempty"`
}

// ErrFrameTooLarge is returned by ReadFrame when one line exceeds the
// caller's limit. The oversized line has been consumed through its
// newline, so the stream is still framed and usable.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// DefaultMaxFrame is the sanity ceiling ReadFrame callers use by default.
// It bounds a single *line*, not a result: chunked responses keep normal
// frames near ChunkMaxBytes, so only a pathological or hostile peer ever
// approaches it.
const DefaultMaxFrame = 1 << 30

// ChunkMaxRows and ChunkMaxBytes bound one response chunk: a frame is
// flushed once it holds ChunkMaxRows rows or its rows total at least
// ChunkMaxBytes of values. Both sides therefore buffer O(chunk), never
// O(result).
const (
	ChunkMaxRows  = 1024
	ChunkMaxBytes = 1 << 20
)

// ReadFrame reads one newline-terminated frame from br, without the
// newline. A line longer than max is consumed through its terminating
// newline and reported as ErrFrameTooLarge — the stream remains framed, so
// the caller can answer with an in-band error instead of dropping the
// connection. io.EOF is returned only at a clean frame boundary; a partial
// trailing line is io.ErrUnexpectedEOF.
func ReadFrame(br *bufio.Reader, max int) ([]byte, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		if len(chunk) > 0 && (err == nil || errors.Is(err, bufio.ErrBufferFull)) {
			if len(buf)+len(chunk) > max {
				// Keep consuming to the newline so framing survives.
				for err == nil || errors.Is(err, bufio.ErrBufferFull) {
					if n := len(chunk); n > 0 && chunk[n-1] == '\n' {
						return nil, ErrFrameTooLarge
					}
					chunk, err = br.ReadSlice('\n')
				}
				if errors.Is(err, io.EOF) {
					return nil, io.ErrUnexpectedEOF
				}
				return nil, err
			}
			buf = append(buf, chunk...)
			if buf[len(buf)-1] == '\n' {
				return buf[:len(buf)-1], nil
			}
			continue
		}
		if errors.Is(err, io.EOF) {
			if len(buf) > 0 || len(chunk) > 0 {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, io.EOF
		}
		if err == nil {
			// ReadSlice returned no bytes and no error; never happens, but
			// avoid spinning.
			continue
		}
		return nil, err
	}
}

// RowsToTuples converts response rows.
func RowsToTuples(rows [][]string) []rel.Tuple {
	out := make([]rel.Tuple, len(rows))
	for i, r := range rows {
		out[i] = rel.Tuple(r)
	}
	return out
}

// TuplesToRows converts tuples for a response.
func TuplesToRows(ts []rel.Tuple) [][]string {
	out := make([][]string, len(ts))
	for i, t := range ts {
		out[i] = []string(t)
	}
	return out
}
