package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"testing"
)

// FuzzReadFrame drives the frame reader with arbitrary byte streams and
// limits, checking its contract: returned frames never exceed the limit
// and never contain a newline; an over-limit line is consumed through its
// newline (the stream stays framed, later frames still parse); the reader
// terminates; and on a clean run the frames concatenate back to the input
// (nothing lost, nothing invented).
func FuzzReadFrame(f *testing.F) {
	seeds := [][]byte{
		[]byte("{\"op\":\"catalog\"}\n"),
		[]byte("short\na much longer second line\n"),
		[]byte(""),
		[]byte("\n\n\n"),
		[]byte("no trailing newline"),
		bytes.Repeat([]byte("x"), 5000),
		append(bytes.Repeat([]byte("y"), 3000), '\n'),
		append(append(bytes.Repeat([]byte("z"), 200), '\n'), []byte("tail\n")...),
	}
	for _, s := range seeds {
		f.Add(s, 64)
		f.Add(s, 4096)
	}
	f.Fuzz(func(t *testing.T, data []byte, max int) {
		if max < 1 {
			max = 1
		}
		if max > 1<<20 {
			max = 1 << 20
		}
		// A tiny bufio buffer forces the ErrBufferFull continuation paths.
		br := bufio.NewReaderSize(bytes.NewReader(data), 16)
		var rebuilt []byte
		overLimit := false
		cleanEOF := false
		// Each iteration consumes at least one byte or ends the stream, so
		// len(data)+1 iterations must reach a terminal condition.
		for i := 0; i <= len(data); i++ {
			frame, err := ReadFrame(br, max)
			if err == nil {
				if len(frame) > max {
					t.Fatalf("frame of %d bytes exceeds limit %d", len(frame), max)
				}
				if bytes.IndexByte(frame, '\n') >= 0 {
					t.Fatalf("frame contains a newline: %q", frame)
				}
				rebuilt = append(rebuilt, frame...)
				rebuilt = append(rebuilt, '\n')
				continue
			}
			if errors.Is(err, ErrFrameTooLarge) {
				// Framing must survive: keep reading.
				overLimit = true
				continue
			}
			if errors.Is(err, io.EOF) {
				cleanEOF = true
			} else if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unexpected error class: %v", err)
			}
			break
		}
		if cleanEOF && !overLimit && !bytes.Equal(rebuilt, data) {
			t.Fatalf("clean read did not reconstruct input:\n got %q\nwant %q", rebuilt, data)
		}
	})
}

// legacyResponse mirrors Response as compiled before the Distinct (and, for
// good measure, Spans) piggyback fields existed. Decoding into it simulates
// a client running the old binary.
type legacyResponse struct {
	Error string     `json:"error,omitempty"`
	Busy  bool       `json:"busy,omitempty"`
	Rows  [][]string `json:"rows,omitempty"`
	More  bool       `json:"more,omitempty"`
	Preds []string   `json:"preds,omitempty"`
	Cards []int      `json:"cards,omitempty"`
	Gens  []uint64   `json:"gens,omitempty"`
}

// FuzzDistinctPiggyback pins the compatibility contract of the Distinct
// response field in both directions. New server → old client: a frame
// carrying Distinct must decode losslessly into the pre-Distinct Response
// shape (unknown fields are skipped, nothing else is disturbed). Old server
// → new client: a frame without the field must decode with Distinct nil —
// the executor's explicit cardinality-only fallback signal — even when the
// frame carries fields newer still. And the field itself must round-trip
// exactly for every finite estimate a sketch can produce.
func FuzzDistinctPiggyback(f *testing.F) {
	f.Add("A.r", 7, uint64(3), 4.0, 2.5, "future")
	f.Add("", 0, uint64(0), 0.0, -1.0, "")
	f.Add("B.s", -1, uint64(1<<63), 1e18, 0.25, `{"x":1}`)
	f.Fuzz(func(t *testing.T, pred string, card int, gen uint64, d0, d1 float64, future string) {
		resp := Response{
			Preds:    []string{pred, pred + "2"},
			Cards:    []int{card, card + 1},
			Gens:     []uint64{gen, gen + 1},
			Distinct: [][]float64{{d0, d1}, nil},
		}
		data, err := json.Marshal(resp)
		if err != nil {
			// encoding/json refuses non-finite floats; nothing else here
			// can fail.
			if isFinite(d0) && isFinite(d1) {
				t.Fatalf("marshal failed on finite input: %v", err)
			}
			return
		}
		// Round trip through the new decoder.
		var back Response
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("new client rejects new server frame: %v", err)
		}
		if len(back.Distinct) != 2 || len(back.Distinct[0]) != 2 ||
			back.Distinct[0][0] != d0 || back.Distinct[0][1] != d1 {
			t.Fatalf("distinct did not round-trip: %v", back.Distinct)
		}
		// New server → old client: the legacy shape must take the frame and
		// keep every pre-existing field.
		var old legacyResponse
		if err := json.Unmarshal(data, &old); err != nil {
			t.Fatalf("old client rejects new server frame: %v", err)
		}
		// Compare strings against the decoded frame, not the raw fuzz input:
		// Marshal itself replaces invalid UTF-8 with U+FFFD on the way out.
		if len(old.Preds) != 2 || old.Preds[0] != back.Preds[0] || old.Cards[0] != card || old.Gens[0] != gen {
			t.Fatalf("piggyback disturbed legacy fields: %+v", old)
		}
		// Old server → new client: re-encode the legacy shape (no distinct
		// key) with a field from the future bolted on; the new decoder must
		// accept it and report Distinct absent.
		oldData, err := json.Marshal(old)
		if err != nil {
			t.Fatal(err)
		}
		withFuture, err := json.Marshal(struct {
			legacyResponse
			Future string `json:"zzFromTheFuture,omitempty"`
		}{old, future})
		if err != nil {
			t.Fatal(err)
		}
		for _, frame := range [][]byte{oldData, withFuture} {
			var fresh Response
			if err := json.Unmarshal(frame, &fresh); err != nil {
				t.Fatalf("new client rejects old server frame %q: %v", frame, err)
			}
			if fresh.Distinct != nil {
				t.Fatalf("distinct invented from %q: %v", frame, fresh.Distinct)
			}
			if len(fresh.Preds) != 2 || fresh.Preds[0] != back.Preds[0] || fresh.Cards[0] != card || fresh.Gens[0] != gen {
				t.Fatalf("old frame lost fields: %+v", fresh)
			}
		}
	})
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// FuzzRequestDecode feeds arbitrary bytes through the request frame
// decoding path the server runs on every line: JSON into wire.Request,
// then lowering the embedded query/atom to lang values. Nothing here may
// panic, whatever the bytes.
func FuzzRequestDecode(f *testing.F) {
	f.Add([]byte(`{"op":"catalog"}`))
	f.Add([]byte(`{"op":"scan","pred":"A.r"}`))
	f.Add([]byte(`{"op":"gens","preds":["A.r","B.s"]}`))
	f.Add([]byte(`{"op":"eval","query":{"head":{"p":"q","a":[{"k":"var","v":"x"}]},"body":[{"p":"A.r","a":[{"k":"var","v":"x"}]}]}}`))
	f.Add([]byte(`{"op":"bind","atom":{"p":"A.r","a":[{"k":"const","v":"1"}]},"bindCols":[0],"bindRows":[["1"]]}`))
	f.Add([]byte(`{"op":"eval","query":{"head":{"p":"q"},"comps":[{"op":"<","l":{"k":"const","v":"1"},"r":{"k":"var","v":"x"}}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		if req.Query != nil {
			q, err := req.Query.ToCQ()
			if err == nil {
				// A decodable query must survive the wire round trip.
				back, err := FromCQ(q).ToCQ()
				if err != nil {
					t.Fatalf("re-encoding decoded query failed: %v", err)
				}
				if back.Canonical() != q.Canonical() {
					t.Fatalf("wire round trip changed query: %q vs %q", back.Canonical(), q.Canonical())
				}
			}
		}
		if req.Atom != nil {
			if a, err := req.Atom.ToAtom(); err == nil {
				if _, err := FromAtom(a).ToAtom(); err != nil {
					t.Fatalf("re-encoding decoded atom failed: %v", err)
				}
			}
		}
	})
}
