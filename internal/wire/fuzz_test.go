package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame drives the frame reader with arbitrary byte streams and
// limits, checking its contract: returned frames never exceed the limit
// and never contain a newline; an over-limit line is consumed through its
// newline (the stream stays framed, later frames still parse); the reader
// terminates; and on a clean run the frames concatenate back to the input
// (nothing lost, nothing invented).
func FuzzReadFrame(f *testing.F) {
	seeds := [][]byte{
		[]byte("{\"op\":\"catalog\"}\n"),
		[]byte("short\na much longer second line\n"),
		[]byte(""),
		[]byte("\n\n\n"),
		[]byte("no trailing newline"),
		bytes.Repeat([]byte("x"), 5000),
		append(bytes.Repeat([]byte("y"), 3000), '\n'),
		append(append(bytes.Repeat([]byte("z"), 200), '\n'), []byte("tail\n")...),
	}
	for _, s := range seeds {
		f.Add(s, 64)
		f.Add(s, 4096)
	}
	f.Fuzz(func(t *testing.T, data []byte, max int) {
		if max < 1 {
			max = 1
		}
		if max > 1<<20 {
			max = 1 << 20
		}
		// A tiny bufio buffer forces the ErrBufferFull continuation paths.
		br := bufio.NewReaderSize(bytes.NewReader(data), 16)
		var rebuilt []byte
		overLimit := false
		cleanEOF := false
		// Each iteration consumes at least one byte or ends the stream, so
		// len(data)+1 iterations must reach a terminal condition.
		for i := 0; i <= len(data); i++ {
			frame, err := ReadFrame(br, max)
			if err == nil {
				if len(frame) > max {
					t.Fatalf("frame of %d bytes exceeds limit %d", len(frame), max)
				}
				if bytes.IndexByte(frame, '\n') >= 0 {
					t.Fatalf("frame contains a newline: %q", frame)
				}
				rebuilt = append(rebuilt, frame...)
				rebuilt = append(rebuilt, '\n')
				continue
			}
			if errors.Is(err, ErrFrameTooLarge) {
				// Framing must survive: keep reading.
				overLimit = true
				continue
			}
			if errors.Is(err, io.EOF) {
				cleanEOF = true
			} else if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("unexpected error class: %v", err)
			}
			break
		}
		if cleanEOF && !overLimit && !bytes.Equal(rebuilt, data) {
			t.Fatalf("clean read did not reconstruct input:\n got %q\nwant %q", rebuilt, data)
		}
	})
}

// FuzzRequestDecode feeds arbitrary bytes through the request frame
// decoding path the server runs on every line: JSON into wire.Request,
// then lowering the embedded query/atom to lang values. Nothing here may
// panic, whatever the bytes.
func FuzzRequestDecode(f *testing.F) {
	f.Add([]byte(`{"op":"catalog"}`))
	f.Add([]byte(`{"op":"scan","pred":"A.r"}`))
	f.Add([]byte(`{"op":"gens","preds":["A.r","B.s"]}`))
	f.Add([]byte(`{"op":"eval","query":{"head":{"p":"q","a":[{"k":"var","v":"x"}]},"body":[{"p":"A.r","a":[{"k":"var","v":"x"}]}]}}`))
	f.Add([]byte(`{"op":"bind","atom":{"p":"A.r","a":[{"k":"const","v":"1"}]},"bindCols":[0],"bindRows":[["1"]]}`))
	f.Add([]byte(`{"op":"eval","query":{"head":{"p":"q"},"comps":[{"op":"<","l":{"k":"const","v":"1"},"r":{"k":"var","v":"x"}}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		if req.Query != nil {
			q, err := req.Query.ToCQ()
			if err == nil {
				// A decodable query must survive the wire round trip.
				back, err := FromCQ(q).ToCQ()
				if err != nil {
					t.Fatalf("re-encoding decoded query failed: %v", err)
				}
				if back.Canonical() != q.Canonical() {
					t.Fatalf("wire round trip changed query: %q vs %q", back.Canonical(), q.Canonical())
				}
			}
		}
		if req.Atom != nil {
			if a, err := req.Atom.ToAtom(); err == nil {
				if _, err := FromAtom(a).ToAtom(); err != nil {
					t.Fatalf("re-encoding decoded atom failed: %v", err)
				}
			}
		}
	})
}
