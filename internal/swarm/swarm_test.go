package swarm

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/pdms"
)

// corpus is the deep-topology differential corpus: seeded parameter tuples
// covering every topology at reformulation depth ≥ 5 (chain and small
// world; the star is the shallow wide contrast). Quick by construction —
// the whole table boots well under a hundred loopback servers — so it runs
// under -race in CI; any failure replays from its tuple alone.
func corpus(short bool) []Params {
	var ps []Params
	seeds := []int64{1, 2, 3}
	if short {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		ps = append(ps,
			Params{Peers: 8, Topology: Chain, Seed: seed},                           // depth 7
			Params{Peers: 12, Topology: Star, Seed: seed},                           // depth 1, wide
			Params{Peers: 12, Topology: SmallWorld, Seed: seed},                     // deep + diamonds
			Params{Peers: 7, Topology: Chain, QueryLen: 2, Seed: seed},              // join fan-out
			Params{Peers: 13, Topology: SmallWorld, StoreCoverage: 0.5, Seed: seed}, // hopeless-heavy
		)
	}
	return ps
}

// TestSwarmMatchesOracleOnDeepTopologies is the harness' central
// correctness claim: for every corpus tuple, the answers obtained by
// reformulating at a spec-only mediator and executing across N loopback
// peer servers equal the answers of a single-process oracle holding the
// same specification and all the data locally.
func TestSwarmMatchesOracleOnDeepTopologies(t *testing.T) {
	for _, p := range corpus(testing.Short()) {
		p := p
		t.Run(fmt.Sprintf("%s/peers=%d/qlen=%d/seed=%d", p.Topology, p.Peers, p.QueryLen, p.Seed), func(t *testing.T) {
			t.Parallel()
			spec, err := Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			if p.Topology != Star && spec.Depth < 5 {
				t.Fatalf("corpus tuple not deep: depth %d < 5", spec.Depth)
			}
			n, err := Boot(spec)
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			got, err := n.Answers()
			if err != nil {
				t.Fatal(err)
			}
			want, err := OracleAnswers(spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("swarm %d answers, oracle %d\n got %v\nwant %v\nspec:\n%s",
					len(got), len(want), got, want, spec.Mediator)
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("answer %d: swarm %v, oracle %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestRunCountersOnDeepChain pins the measurement contract a single Run
// reports on a deep chain: both pruning counters fire (the generator
// plants duplicates and a decoy by construction), the unpruned tree is
// strictly larger, distinct estimates arrive over the wire, and the
// answer count matches the swarm's own Answers path.
func TestRunCountersOnDeepChain(t *testing.T) {
	spec, err := Generate(Params{Peers: 8, Topology: Chain, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Boot(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	r, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth != 7 || r.Peers != 8 || r.Topology != "chain" {
		t.Fatalf("shape fields wrong: %+v", r)
	}
	if r.PrunedSubsumed == 0 {
		t.Fatalf("replicated mappings but PrunedSubsumed = 0: %+v", r)
	}
	if r.PrunedEmpty == 0 {
		t.Fatalf("entry decoy planted but PrunedEmpty = 0: %+v", r)
	}
	if r.NodesPruned >= r.NodesUnpruned {
		t.Fatalf("pruned tree not smaller: %d ≥ %d", r.NodesPruned, r.NodesUnpruned)
	}
	if r.Rewritings == 0 || r.Requests == 0 {
		t.Fatalf("no work measured: %+v", r)
	}
	if r.DistinctMeta == 0 {
		t.Fatalf("peers shipped no distinct estimates: %+v", r)
	}
	got, err := n.Answers()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != r.Answers {
		t.Fatalf("Run reported %d answers, Answers returned %d", r.Answers, len(got))
	}
}

// TestPrunedDominatesUnprunedByDepth asserts the BENCH_10 headline claim
// on chains of growing depth: from depth 3 on, the pruned build's node
// count is strictly below the unpruned build's, and the gap only widens —
// the duplicated near-entry prefix multiplies whole subtrees when not cut.
func TestPrunedDominatesUnprunedByDepth(t *testing.T) {
	prevGap := 0.0
	for _, peers := range []int{4, 5, 6, 8, 10} {
		spec, err := Generate(Params{Peers: peers, Topology: Chain, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		med, err := pdms.Load(spec.Mediator)
		if err != nil {
			t.Fatal(err)
		}
		unp, err := pdms.LoadWithOptions(spec.Mediator, pdms.Options{DisableSubsumePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := med.Reformulate(spec.Query)
		if err != nil {
			t.Fatal(err)
		}
		uref, err := unp.Reformulate(spec.Query)
		if err != nil {
			t.Fatal(err)
		}
		depth := spec.Depth
		if depth >= 3 && ref.Stats.Nodes() >= uref.Stats.Nodes() {
			t.Fatalf("depth %d: pruned %d ≥ unpruned %d", depth, ref.Stats.Nodes(), uref.Stats.Nodes())
		}
		gap := float64(uref.Stats.Nodes()) / float64(ref.Stats.Nodes())
		if depth >= 3 && gap < prevGap {
			t.Logf("depth %d: gap ratio shrank %.2f → %.2f (acceptable, but unusual)", depth, prevGap, gap)
		}
		prevGap = gap
	}
}

// TestParamsValidation pins fill()'s rejections.
func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Peers: 1},
		{Peers: 4, Replication: -1},
		{Peers: 4, StoreCoverage: 1.5},
		{Peers: 4, FactsPerStore: -2},
		{Peers: 4, QueryLen: -1},
	}
	for _, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Fatalf("Generate(%+v) succeeded, want error", p)
		}
	}
	if _, err := ParseTopology("ring"); err == nil {
		t.Fatal("ParseTopology(ring) succeeded")
	}
	for _, s := range []string{"chain", "star", "smallworld"} {
		tp, err := ParseTopology(s)
		if err != nil {
			t.Fatal(err)
		}
		if tp.String() != s {
			t.Fatalf("ParseTopology(%q).String() = %q", s, tp)
		}
	}
}

// TestMetricsGroupRegisters exercises the obs wiring: the swarm group must
// expose the static shape and count runs.
func TestMetricsGroupRegisters(t *testing.T) {
	spec, err := Generate(Params{Peers: 4, Topology: Star, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Boot(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	n.RegisterMetrics(reg)
	snap := reg.Snapshot()
	if snap.Gauges["swarm.peers"] != 4 || snap.Counters["swarm.runs"] != 1 {
		t.Fatalf("swarm metrics missing or wrong: gauges %v counters %v", snap.Gauges, snap.Counters)
	}
}
