package swarm

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/netpeer"
	"repro/internal/obs"
	"repro/internal/rel"
	"repro/pdms"
)

// Net is a booted swarm: one loopback netpeer server per peer (storing
// peers hold their facts, relay peers an empty instance), a spec-only entry
// mediator, a second mediator with subtree pruning disabled (for
// pruned-vs-unpruned differentials over the same spec), and one executor
// discovered across every peer. Close shuts all of it down.
//
// Net is safe for concurrent Run calls: the mediators, executor and
// servers are each concurrency-safe, and Net's own bookkeeping is atomic.
type Net struct {
	Spec     *Spec
	Mediator *pdms.Network // pruning on (default options)
	Unpruned *pdms.Network // DisableSubsumePruning, same spec
	Exec     *netpeer.Executor
	Servers  []*netpeer.Server
	Addrs    []string

	runs    atomic.Uint64 // queries driven through Run
	answers atomic.Uint64 // total answer tuples those runs returned
}

// BootConfig carries per-peer server settings a booted swarm applies before
// starting each server. The zero value boots servers with admission control
// off — exactly the harness' differential-test configuration.
type BootConfig struct {
	// MaxInflight / MaxQueue / QueueWait configure every peer server's
	// admission gate (netpeer.Server semantics: 0 MaxInflight disables
	// admission control).
	MaxInflight int
	MaxQueue    int
	QueueWait   time.Duration
}

// Boot generates nothing: it takes an already generated Spec, loads the
// mediators from its specification, starts one server per peer on a
// loopback listener, and discovers them all into a fresh executor. On any
// error the partially started swarm is torn down before returning.
func Boot(spec *Spec) (*Net, error) { return BootWithConfig(spec, BootConfig{}) }

// BootWithConfig is Boot with per-peer server settings (admission control
// for served swarms driven by an external load generator).
func BootWithConfig(spec *Spec, bc BootConfig) (*Net, error) {
	med, err := pdms.Load(spec.Mediator)
	if err != nil {
		return nil, fmt.Errorf("swarm: loading mediator spec: %w", err)
	}
	unp, err := pdms.LoadWithOptions(spec.Mediator, pdms.Options{DisableSubsumePruning: true})
	if err != nil {
		return nil, fmt.Errorf("swarm: loading unpruned mediator spec: %w", err)
	}
	n := &Net{Spec: spec, Mediator: med, Unpruned: unp, Exec: netpeer.NewExecutor()}
	for i := 0; i < spec.Params.Peers; i++ {
		data := rel.NewInstance()
		for _, t := range spec.Facts[i] {
			if _, err := data.Add(PeerStored(i), t); err != nil {
				n.Close()
				return nil, fmt.Errorf("swarm: loading peer %d facts: %w", i, err)
			}
		}
		srv := netpeer.NewServer(data)
		srv.MaxInflight = bc.MaxInflight
		srv.MaxQueue = bc.MaxQueue
		srv.QueueWait = bc.QueueWait
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("swarm: starting peer %d: %w", i, err)
		}
		n.Servers = append(n.Servers, srv)
		n.Addrs = append(n.Addrs, addr)
	}
	for i, addr := range n.Addrs {
		if err := n.Exec.Discover(addr); err != nil {
			n.Close()
			return nil, fmt.Errorf("swarm: discovering peer %d at %s: %w", i, addr, err)
		}
	}
	return n, nil
}

// Close shuts down the executor and every peer server. Safe on a
// partially booted Net.
func (n *Net) Close() {
	if n.Exec != nil {
		n.Exec.Close()
	}
	for _, s := range n.Servers {
		s.Close()
	}
}

// Result is one measured query drive through a swarm.
type Result struct {
	Topology string `json:"topology"`
	Peers    int    `json:"peers"`
	// Depth is the swarm's reformulation depth (entry eccentricity).
	Depth    int   `json:"depth"`
	QueryLen int   `json:"query_len"`
	Seed     int64 `json:"seed"`

	// Rewritings and Answers size the reformulation fan-out and the
	// distributed result.
	Rewritings int `json:"rewritings"`
	Answers    int `json:"answers"`

	// NodesPruned vs NodesUnpruned is the paper's Figure-3 metric for the
	// same query over the same spec with subtree pruning on vs off;
	// PrunedEmpty / PrunedSubsumed break down what the pruner cut.
	NodesPruned    int `json:"nodes_pruned"`
	NodesUnpruned  int `json:"nodes_unpruned"`
	PrunedEmpty    int `json:"pruned_empty"`
	PrunedSubsumed int `json:"pruned_subsumed"`
	MemoHits       int `json:"memo_hits"`

	// Wire-level deltas for this run (executor aggregates).
	Requests     uint64 `json:"requests"`
	BytesSent    uint64 `json:"bytes_sent"`
	BytesRecv    uint64 `json:"bytes_recv"`
	DistinctMeta uint64 `json:"distinct_meta"`

	// ReformulateNs times the pruned reformulation alone; LatencyNs the
	// full distributed answer (reformulation cache warm from the former).
	ReformulateNs int64 `json:"reformulate_ns"`
	LatencyNs     int64 `json:"latency_ns"`
}

// Run drives the spec's query from the entry peer through the swarm once
// and returns the measurements. The pruned and unpruned reformulations are
// both built (the latter never touches the wire — it exists for the node
// differential); only the pruned rewriting is executed across the peers.
func (n *Net) Run() (*Result, error) {
	r := &Result{
		Topology: n.Spec.Params.Topology.String(),
		Peers:    n.Spec.Params.Peers,
		Depth:    n.Spec.Depth,
		QueryLen: n.Spec.Params.QueryLen,
		Seed:     n.Spec.Params.Seed,
	}

	t0 := time.Now()
	ref, err := n.Mediator.Reformulate(n.Spec.Query)
	if err != nil {
		return nil, fmt.Errorf("swarm: reformulating: %w", err)
	}
	r.ReformulateNs = time.Since(t0).Nanoseconds()
	r.Rewritings = ref.Rewriting.Len()
	r.NodesPruned = ref.Stats.Nodes()
	r.PrunedEmpty = ref.Stats.PrunedEmpty
	r.PrunedSubsumed = ref.Stats.PrunedSubsumed
	r.MemoHits = ref.Stats.MemoHits

	uref, err := n.Unpruned.Reformulate(n.Spec.Query)
	if err != nil {
		return nil, fmt.Errorf("swarm: unpruned reformulation: %w", err)
	}
	r.NodesUnpruned = uref.Stats.Nodes()

	before := n.Exec.WireStats()
	t1 := time.Now()
	rows, err := n.Mediator.QueryVia(n.Spec.Query, n.Exec)
	if err != nil {
		return nil, fmt.Errorf("swarm: distributed query: %w", err)
	}
	r.LatencyNs = time.Since(t1).Nanoseconds()
	after := n.Exec.WireStats()
	r.Answers = len(rows)
	r.Requests = after.Requests - before.Requests
	r.BytesSent = after.BytesSent - before.BytesSent
	r.BytesRecv = after.BytesRecv - before.BytesRecv
	r.DistinctMeta = after.DistinctMeta - before.DistinctMeta

	n.runs.Add(1)
	n.answers.Add(uint64(len(rows)))
	return r, nil
}

// Answers drives the query and returns just the sorted distinct answer
// tuples — the differential corpus' swarm side.
func (n *Net) Answers() ([]rel.Tuple, error) {
	rows, err := n.Mediator.QueryVia(n.Spec.Query, n.Exec)
	if err != nil {
		return nil, err
	}
	out := make([]rel.Tuple, len(rows))
	for i, a := range rows {
		out[i] = rel.Tuple(a)
	}
	return SortAnswers(out), nil
}

// OracleAnswers evaluates the spec's query on the single-process oracle —
// the same specification with every peer's facts loaded into one local
// network — and returns the sorted distinct answers.
func OracleAnswers(spec *Spec) ([]rel.Tuple, error) {
	net, err := pdms.Load(spec.OracleSource())
	if err != nil {
		return nil, fmt.Errorf("swarm: loading oracle: %w", err)
	}
	rows, err := net.Query(spec.Query)
	if err != nil {
		return nil, fmt.Errorf("swarm: oracle query: %w", err)
	}
	out := make([]rel.Tuple, len(rows))
	for i, a := range rows {
		out[i] = rel.Tuple(a)
	}
	return SortAnswers(out), nil
}

// RegisterMetrics registers the swarm's static shape and run totals as the
// "swarm" snapshot group of reg, plus the executor's wire and fragment
// cache groups (the per-peer server groups would collide, so servers are
// left unregistered — their numbers aggregate on the executor side).
func (n *Net) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterGroup("swarm", func(em *obs.Emitter) {
		em.Gauge("peers", int64(n.Spec.Params.Peers))
		em.Gauge("depth", int64(n.Spec.Depth))
		stores := 0
		for _, s := range n.Spec.Stored {
			if s {
				stores++
			}
		}
		em.Gauge("stores", int64(stores))
		em.Counter("runs", n.runs.Load())
		em.Counter("answers_served", n.answers.Load())
	})
	n.Exec.RegisterMetrics(reg)
}
