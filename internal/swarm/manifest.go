package swarm

import (
	"encoding/json"
	"fmt"
	"os"
)

// Manifest is the on-disk handoff from a serving swarm (cmd/swarm -serve) to
// an external driver (cmd/loadgen -swarm): the generation parameters — which
// fully determine the spec, so the driver regenerates it rather than
// shipping the whole specification — plus the live peer addresses, the
// entry peer's address, and the generated entry query.
type Manifest struct {
	Params Params   `json:"params"`
	Addrs  []string `json:"addrs"`
	Entry  string   `json:"entry"`
	Query  string   `json:"query"`
}

// Manifest assembles the handoff document for a booted swarm.
func (n *Net) Manifest() Manifest {
	return Manifest{
		Params: n.Spec.Params,
		Addrs:  append([]string(nil), n.Addrs...),
		Entry:  n.Addrs[0],
		Query:  n.Spec.Query,
	}
}

// WriteManifest writes the manifest as indented JSON to path.
func (m Manifest) WriteManifest(path string) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadManifest reads a manifest written by WriteManifest and regenerates its
// spec, verifying the regenerated query matches the manifest's (a cheap
// whole-spec determinism check: a version skew between writer and reader
// that changes generation shows up here instead of as wrong answers).
func LoadManifest(path string) (Manifest, *Spec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, nil, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return Manifest{}, nil, fmt.Errorf("swarm: manifest %s: %w", path, err)
	}
	if len(m.Addrs) == 0 || m.Entry == "" {
		return Manifest{}, nil, fmt.Errorf("swarm: manifest %s has no peer addresses", path)
	}
	spec, err := Generate(m.Params)
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("swarm: manifest %s: %w", path, err)
	}
	if len(m.Addrs) != spec.Params.Peers {
		return Manifest{}, nil, fmt.Errorf("swarm: manifest %s lists %d addresses for %d peers", path, len(m.Addrs), spec.Params.Peers)
	}
	if m.Query != spec.Query {
		return Manifest{}, nil, fmt.Errorf("swarm: manifest %s query %q does not match regenerated spec query %q (generator version skew?)", path, m.Query, spec.Query)
	}
	return m, spec, nil
}
