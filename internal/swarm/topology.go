package swarm

import (
	"fmt"
	"math/rand"
	"strings"
)

// Topology selects the shape of the mapping graph a swarm generates. All
// topologies are rooted at the entry peer (peer 0): every mapping edge is
// directed parent → child with the parent strictly closer to the entry, so
// a query posed at the entry reformulates outward hop by hop and the graph
// is a DAG (reformulation depth is bounded by the entry's eccentricity).
type Topology int

const (
	// Chain links peer i to peer i+1: one path, maximum depth. The
	// canonical deep-topology stress shape — reformulation must walk
	// Peers-1 semantic hops to reach the farthest store.
	Chain Topology = iota
	// Star links the entry to every other peer directly: maximum fan-out,
	// depth 1. The wide-and-shallow contrast case.
	Star
	// SmallWorld is a chain backbone plus a few random forward shortcuts
	// (Watts–Strogatz flavored): long paths exist, but shortcuts create
	// reconvergent "diamonds" so subtrees are reachable — and explored —
	// along more than one semantic path.
	SmallWorld
)

// String returns the name ParseTopology accepts.
func (t Topology) String() string {
	switch t {
	case Chain:
		return "chain"
	case Star:
		return "star"
	case SmallWorld:
		return "smallworld"
	}
	return fmt.Sprintf("topology(%d)", int(t))
}

// ParseTopology parses a topology name (as printed by String).
func ParseTopology(s string) (Topology, error) {
	switch strings.ToLower(s) {
	case "chain":
		return Chain, nil
	case "star":
		return Star, nil
	case "smallworld", "small-world", "sw":
		return SmallWorld, nil
	}
	return 0, fmt.Errorf("swarm: unknown topology %q (want chain, star or smallworld)", s)
}

// Edge is one directed mapping edge: data stored under Child is visible at
// Parent (the generator emits "include P<Child>:R in P<Parent>:R").
type Edge struct {
	Parent int
	Child  int
}

// topologyEdges generates the edge set for n peers. Shortcut edges (small
// world only) always point forward along the backbone — from a lower-depth
// peer to a strictly deeper one — so the mapping graph stays acyclic and
// every peer remains reachable from the entry.
func topologyEdges(t Topology, n, shortcuts int, rng *rand.Rand) []Edge {
	var es []Edge
	switch t {
	case Chain:
		for i := 0; i+1 < n; i++ {
			es = append(es, Edge{Parent: i, Child: i + 1})
		}
	case Star:
		for i := 1; i < n; i++ {
			es = append(es, Edge{Parent: 0, Child: i})
		}
	case SmallWorld:
		for i := 0; i+1 < n; i++ {
			es = append(es, Edge{Parent: i, Child: i + 1})
		}
		seen := map[Edge]bool{}
		for k := 0; k < shortcuts && n > 3; k++ {
			u := rng.Intn(n - 2)
			v := u + 2 + rng.Intn(n-u-2) // strictly more than one hop ahead
			e := Edge{Parent: u, Child: v}
			if seen[e] {
				continue
			}
			seen[e] = true
			es = append(es, e)
		}
	}
	return es
}

// bfsDepths returns each peer's hop distance from the entry (peer 0) over
// the directed edge set, and the maximum such distance — the depth a
// reformulation must reach to cover the whole swarm.
func bfsDepths(n int, es []Edge) (depths []int, max int) {
	adj := make([][]int, n)
	for _, e := range es {
		adj[e.Parent] = append(adj[e.Parent], e.Child)
	}
	depths = make([]int, n)
	for i := range depths {
		depths[i] = -1
	}
	depths[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if depths[v] < 0 {
				depths[v] = depths[u] + 1
				if depths[v] > max {
					max = depths[v]
				}
				queue = append(queue, v)
			}
		}
	}
	return depths, max
}
