// Package swarm is an in-process many-peer topology harness: it generates
// a peer data management system whose mapping graph has a chosen shape
// (chain, star, small world), boots one loopback netpeer server per peer,
// and drives entry-peer queries through the full pipeline — rule-goal-tree
// reformulation at a spec-only mediator, then distributed execution across
// the peer servers — measuring reformulation fan-out, pruning effect, wire
// traffic and answer latency as functions of peer count and depth.
//
// The generated network deliberately contains the two kinds of waste the
// core pruner (internal/core, Options.NoPruneSubsumed) removes:
//
//   - Replicated mappings: edges near the entry are emitted Replication
//     times. The copies are content-identical, so the pruned build expands
//     one and skips the rest (Stats.PrunedSubsumed); the unpruned build
//     explores every copy's subtree, multiplying node counts by up to
//     Replication^DupDepth.
//   - Decoy branches: some peers map in a relation no peer stores or
//     derives. The pruned build refuses the expansion outright
//     (Stats.PrunedEmpty); the unpruned build expands it and discovers the
//     dead end the slow way. The entry peer always carries one decoy so
//     the hopeless-prune counter is exercised on every topology and seed.
//
// A swarm is fully deterministic in its Params (seeded rand), so the
// differential corpus can replay any failure from its parameter tuple.
package swarm

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/rel"
)

// Params configures one generated swarm.
type Params struct {
	// Peers is the total number of peers, entry included (≥ 2).
	Peers int
	// Topology is the mapping-graph shape (Chain, Star, SmallWorld).
	Topology Topology
	// Replication is how many content-identical copies of each near-entry
	// mapping are emitted (≥ 1; 1 means no duplicates). Copies beyond the
	// first are pure reformulation waste: they change no answers, and the
	// pruned build skips them.
	Replication int
	// DupDepth bounds which edges are replicated: only those whose child
	// lies within this BFS depth of the entry. Bounding the duplicated
	// prefix keeps the *unpruned* tree polynomial (factor
	// Replication^DupDepth) so pruned-vs-unpruned differentials stay
	// feasible at hundreds of peers.
	DupDepth int
	// Shortcuts is the number of random forward shortcut edges added to
	// the chain backbone (SmallWorld only).
	Shortcuts int
	// StoreCoverage is the probability a peer stores data locally (0..1].
	// Peers without a store still relay semantically; a subtree with no
	// stores anywhere is a hopeless region the pruner cuts. The deepest
	// peer always stores, so full-depth reformulation is always needed,
	// and each storeless peer grows a decoy branch (see package comment).
	StoreCoverage float64
	// FactsPerStore is how many distinct tuples each storing peer holds.
	FactsPerStore int
	// DomainSize is the constant pool size ("v0" .. "v<n-1>"); small
	// domains make peers' data overlap so joins and distinct-counts bite.
	DomainSize int
	// QueryLen is the number of entry-relation atoms in the driven query,
	// chained head-to-tail (1 = a single atom). Lengths above 1 multiply
	// rewriting fan-out combinatorially; keep small at large peer counts.
	QueryLen int
	// Seed drives all randomness (topology shortcuts, store placement,
	// facts). Same Params ⇒ same swarm, byte for byte.
	Seed int64
}

// fill validates p and applies defaults for zero fields.
func (p Params) fill() (Params, error) {
	if p.Peers == 0 {
		p.Peers = 16
	}
	if p.Replication == 0 {
		p.Replication = 2
	}
	if p.DupDepth == 0 {
		p.DupDepth = 3
	}
	if p.Shortcuts == 0 {
		p.Shortcuts = 3
	}
	if p.StoreCoverage == 0 {
		p.StoreCoverage = 0.75
	}
	if p.FactsPerStore == 0 {
		p.FactsPerStore = 8
	}
	if p.DomainSize == 0 {
		p.DomainSize = 16
	}
	if p.QueryLen == 0 {
		p.QueryLen = 1
	}
	switch {
	case p.Peers < 2:
		return p, fmt.Errorf("swarm: Peers must be ≥ 2, got %d", p.Peers)
	case p.Replication < 1:
		return p, fmt.Errorf("swarm: Replication must be ≥ 1, got %d", p.Replication)
	case p.DupDepth < 0 || p.Shortcuts < 0:
		return p, fmt.Errorf("swarm: DupDepth and Shortcuts must be ≥ 0")
	case p.StoreCoverage < 0 || p.StoreCoverage > 1:
		return p, fmt.Errorf("swarm: StoreCoverage must be in (0, 1], got %g", p.StoreCoverage)
	case p.FactsPerStore < 1:
		return p, fmt.Errorf("swarm: FactsPerStore must be ≥ 1, got %d", p.FactsPerStore)
	case p.DomainSize < 1:
		return p, fmt.Errorf("swarm: DomainSize must be ≥ 1, got %d", p.DomainSize)
	case p.QueryLen < 1:
		return p, fmt.Errorf("swarm: QueryLen must be ≥ 1, got %d", p.QueryLen)
	}
	return p, nil
}

// Spec is one fully generated swarm: the mapping-graph structure, the PPL
// mediator specification (no facts — those live at the peers), and the
// per-peer data. Everything downstream (Boot, Oracle) derives from it.
type Spec struct {
	Params Params
	// Edges is the directed mapping graph (before replication).
	Edges []Edge
	// Depths[i] is peer i's BFS hop distance from the entry; Depth is the
	// maximum — the reformulation depth needed to cover the whole swarm.
	Depths []int
	Depth  int
	// Stored[i] reports whether peer i stores data (relation PeerStored(i)).
	Stored []bool
	// Decoy[i] reports whether peer i maps in a storeless decoy relation.
	Decoy []bool
	// Mediator is the PPL specification text: peer relations, mappings and
	// storage descriptions, but no facts. Load it into the entry mediator.
	Mediator string
	// Facts[i] holds peer i's stored tuples (empty slice when !Stored[i]).
	Facts [][]rel.Tuple
	// Query is the entry-peer query driven through the swarm.
	Query string
}

// PeerRel returns peer i's virtual relation name ("P<i>:R").
func PeerRel(i int) string { return fmt.Sprintf("P%d:R", i) }

// PeerStored returns peer i's stored relation name ("P<i>.store").
func PeerStored(i int) string { return fmt.Sprintf("P%d.store", i) }

// decoyRel returns peer i's decoy relation name; nothing ever stores or
// derives it, so every reformulation path into it is hopeless.
func decoyRel(i int) string { return fmt.Sprintf("X%d:R", i) }

// Generate builds a deterministic swarm spec from p. The entry peer is
// peer 0; see the package comment for what the generated network contains.
func Generate(p Params) (*Spec, error) {
	p, err := p.fill()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	s := &Spec{Params: p}
	s.Edges = topologyEdges(p.Topology, p.Peers, p.Shortcuts, rng)
	s.Depths, s.Depth = bfsDepths(p.Peers, s.Edges)

	// Store placement: coverage-weighted coin per peer, with the deepest
	// peer forced on so reaching full depth is always worth it.
	deepest := 0
	s.Stored = make([]bool, p.Peers)
	for i := range s.Stored {
		s.Stored[i] = rng.Float64() < p.StoreCoverage
		if s.Depths[i] > s.Depths[deepest] {
			deepest = i
		}
	}
	s.Stored[deepest] = true

	// Decoy placement: every storeless peer grows one, and the entry peer
	// always does, so PrunedEmpty fires deterministically.
	s.Decoy = make([]bool, p.Peers)
	for i := range s.Decoy {
		s.Decoy[i] = !s.Stored[i]
	}
	s.Decoy[0] = true

	var b strings.Builder
	for _, e := range s.Edges {
		copies := 1
		if s.Depths[e.Child] <= p.DupDepth {
			copies = p.Replication
		}
		for c := 0; c < copies; c++ {
			fmt.Fprintf(&b, "include %s(x, y) in %s(x, y)\n", PeerRel(e.Child), PeerRel(e.Parent))
		}
	}
	for i := 0; i < p.Peers; i++ {
		if s.Stored[i] {
			fmt.Fprintf(&b, "storage %s(x, y) in %s(x, y)\n", PeerStored(i), PeerRel(i))
		}
		if s.Decoy[i] {
			fmt.Fprintf(&b, "include %s(x, y) in %s(x, y)\n", decoyRel(i), PeerRel(i))
		}
	}
	s.Mediator = b.String()

	// Facts: distinct random pairs over the shared constant pool. The pool
	// is shared across peers so different stores' tuples collide and chain.
	s.Facts = make([][]rel.Tuple, p.Peers)
	limit := p.DomainSize * p.DomainSize
	for i := 0; i < p.Peers; i++ {
		if !s.Stored[i] {
			continue
		}
		want := p.FactsPerStore
		if want > limit {
			want = limit
		}
		seen := map[[2]int]bool{}
		for len(s.Facts[i]) < want {
			k := [2]int{rng.Intn(p.DomainSize), rng.Intn(p.DomainSize)}
			if seen[k] {
				continue
			}
			seen[k] = true
			s.Facts[i] = append(s.Facts[i], rel.Tuple{
				fmt.Sprintf("v%d", k[0]), fmt.Sprintf("v%d", k[1]),
			})
		}
	}

	// Query: a chain of QueryLen entry-relation atoms, x0 — xLen.
	var q strings.Builder
	fmt.Fprintf(&q, "q(x0, x%d) :- ", p.QueryLen)
	for a := 0; a < p.QueryLen; a++ {
		if a > 0 {
			q.WriteString(", ")
		}
		fmt.Fprintf(&q, "%s(x%d, x%d)", PeerRel(0), a, a+1)
	}
	s.Query = q.String()
	return s, nil
}

// OracleSource returns the single-process oracle's PPL text: the mediator
// specification plus every peer's facts as local fact statements. A network
// loaded from it answers Spec.Query with all data in one engine — the
// ground truth the distributed swarm must match.
func (s *Spec) OracleSource() string {
	var b strings.Builder
	b.WriteString(s.Mediator)
	for i, ts := range s.Facts {
		for _, t := range ts {
			fmt.Fprintf(&b, "fact %s(%q, %q)\n", PeerStored(i), t[0], t[1])
		}
	}
	return b.String()
}

// SortAnswers sorts tuples lexicographically in place and returns them —
// both query paths already return sorted distinct answers, but differential
// tests should not depend on that.
func SortAnswers(ts []rel.Tuple) []rel.Tuple {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key() < ts[j].Key() })
	return ts
}
