// Package experiments reproduces the paper's evaluation (Section 5):
// Figure 3 (rule-goal tree size vs PDMS diameter, by %definitional
// mappings), Figure 4 (time to the 1st/10th/all rewritings vs diameter),
// the in-text node-generation-rate claim, and the ablations of the Section
// 4.3 optimizations that DESIGN.md calls out. cmd/figures and the root
// benchmarks are thin wrappers over this package so they always agree.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/workload"
)

// DefaultPeers matches the paper's 96-peer PDMS.
const DefaultPeers = 96

// Fig3Point is one data point of Figure 3.
type Fig3Point struct {
	Diameter int
	DefRatio float64
	// Nodes is the mean rule-goal tree size over the runs.
	Nodes float64
	// BuildTime is the mean construction time.
	BuildTime time.Duration
}

// Figure3 sweeps tree size over diameters and definitional ratios,
// averaging `runs` generator seeds per point (the paper averages 100 runs).
func Figure3(peers int, diameters []int, ratios []float64, runs int, opts core.Options) ([]Fig3Point, error) {
	var out []Fig3Point
	for _, dd := range ratios {
		for _, d := range diameters {
			var nodes float64
			var dur time.Duration
			for run := 0; run < runs; run++ {
				st, elapsed, err := buildOne(peers, d, dd, int64(run), opts)
				if err != nil {
					return nil, err
				}
				nodes += float64(st.Nodes())
				dur += elapsed
			}
			out = append(out, Fig3Point{
				Diameter:  d,
				DefRatio:  dd,
				Nodes:     nodes / float64(runs),
				BuildTime: dur / time.Duration(runs),
			})
		}
	}
	return out, nil
}

func buildOne(peers, diameter int, dd float64, seed int64, opts core.Options) (core.Stats, time.Duration, error) {
	return buildOneCov(peers, diameter, dd, 1.0, seed, opts)
}

func buildOneCov(peers, diameter int, dd, coverage float64, seed int64, opts core.Options) (core.Stats, time.Duration, error) {
	w, err := workload.Generate(workload.Params{
		Peers:         peers,
		Diameter:      diameter,
		DefRatio:      dd,
		StoreCoverage: coverage,
		Seed:          seed,
	})
	if err != nil {
		return core.Stats{}, 0, err
	}
	r, err := core.New(w.PDMS, opts)
	if err != nil {
		return core.Stats{}, 0, err
	}
	start := time.Now()
	st, err := r.BuildTree(w.Query)
	if err != nil {
		return core.Stats{}, 0, err
	}
	return st, time.Since(start), nil
}

// Fig4Point is one data point of Figure 4.
type Fig4Point struct {
	Diameter   int
	First      time.Duration // time to the 1st rewriting
	Tenth      time.Duration // time to the 10th rewriting
	All        time.Duration // time to exhaust extraction
	Rewritings int           // total rewritings found
}

// Figure4 measures streaming extraction latency at a fixed definitional
// ratio (the paper uses 10%), averaging `runs` seeds per diameter.
func Figure4(peers int, diameters []int, dd float64, runs int, opts core.Options) ([]Fig4Point, error) {
	var out []Fig4Point
	for _, d := range diameters {
		var first, tenth, all time.Duration
		var rewritings int
		for run := 0; run < runs; run++ {
			p, err := streamOne(peers, d, dd, int64(run), opts)
			if err != nil {
				return nil, err
			}
			first += p.First
			tenth += p.Tenth
			all += p.All
			rewritings += p.Rewritings
		}
		out = append(out, Fig4Point{
			Diameter:   d,
			First:      first / time.Duration(runs),
			Tenth:      tenth / time.Duration(runs),
			All:        all / time.Duration(runs),
			Rewritings: rewritings / runs,
		})
	}
	return out, nil
}

func streamOne(peers, diameter int, dd float64, seed int64, opts core.Options) (Fig4Point, error) {
	w, err := workload.Generate(workload.Params{
		Peers:    peers,
		Diameter: diameter,
		DefRatio: dd,
		Seed:     seed,
	})
	if err != nil {
		return Fig4Point{}, err
	}
	r, err := core.New(w.PDMS, opts)
	if err != nil {
		return Fig4Point{}, err
	}
	var p Fig4Point
	p.Diameter = diameter
	start := time.Now()
	n := 0
	_, err = r.Stream(w.Query, func(lang.CQ) bool {
		n++
		switch n {
		case 1:
			p.First = time.Since(start)
		case 10:
			p.Tenth = time.Since(start)
		}
		return true
	})
	if err != nil {
		return Fig4Point{}, err
	}
	p.All = time.Since(start)
	p.Rewritings = n
	// When fewer than 10 (or 1) rewritings exist, report the full time for
	// the missing marks, as the paper's plots do implicitly.
	if n < 10 {
		p.Tenth = p.All
	}
	if n < 1 {
		p.First = p.All
	}
	return p, nil
}

// RatePoint reports the node-generation-rate measurement (the paper quotes
// ~1,000 nodes/second on 2003 hardware).
type RatePoint struct {
	Diameter    int
	Nodes       int
	BuildTime   time.Duration
	NodesPerSec float64
}

// NodeRate measures node generation throughput during step 2.
func NodeRate(peers int, diameters []int, dd float64, runs int) ([]RatePoint, error) {
	var out []RatePoint
	for _, d := range diameters {
		var nodes int
		var dur time.Duration
		for run := 0; run < runs; run++ {
			st, elapsed, err := buildOne(peers, d, dd, int64(run), core.Options{})
			if err != nil {
				return nil, err
			}
			nodes += st.Nodes()
			dur += elapsed
		}
		rp := RatePoint{Diameter: d, Nodes: nodes / runs, BuildTime: dur / time.Duration(runs)}
		if dur > 0 {
			rp.NodesPerSec = float64(nodes) / dur.Seconds()
		}
		out = append(out, rp)
	}
	return out, nil
}

// Ablation compares tree construction with one optimization toggled off.
type AblationPoint struct {
	Diameter int
	Name     string
	On, Off  core.Stats
	TimeOn   time.Duration
	TimeOff  time.Duration
}

// Ablations runs the A1/A3 sweeps of DESIGN.md — memoization and priority
// ordering — on a 40%-store-coverage workload: the storeless bottom
// relations create the repeated dead-end subtrees those optimizations
// exist for. (A2, unsat pruning, needs comparison predicates and lives in
// BenchmarkAblationPruning over the range-partitioned spec.)
func Ablations(peers int, diameters []int, dd float64, runs int) ([]AblationPoint, error) {
	const coverage = 0.4
	var out []AblationPoint
	toggles := []struct {
		name string
		off  core.Options
	}{
		{"memo", core.Options{NoMemo: true}},
		{"priority", core.Options{NoPriority: true}},
	}
	for _, tg := range toggles {
		for _, d := range diameters {
			var p AblationPoint
			p.Diameter = d
			p.Name = tg.name
			for run := 0; run < runs; run++ {
				stOn, tOn, err := buildOneCov(peers, d, dd, coverage, int64(run), core.Options{})
				if err != nil {
					return nil, err
				}
				stOff, tOff, err := buildOneCov(peers, d, dd, coverage, int64(run), tg.off)
				if err != nil {
					return nil, err
				}
				p.On = addStats(p.On, stOn)
				p.Off = addStats(p.Off, stOff)
				p.TimeOn += tOn
				p.TimeOff += tOff
			}
			p.TimeOn /= time.Duration(runs)
			p.TimeOff /= time.Duration(runs)
			out = append(out, p)
		}
	}
	return out, nil
}

func addStats(a, b core.Stats) core.Stats {
	a.GoalNodes += b.GoalNodes
	a.RuleNodes += b.RuleNodes
	a.PrunedUnsat += b.PrunedUnsat
	a.MemoHits += b.MemoHits
	a.DeadEnds += b.DeadEnds
	a.Rewritings += b.Rewritings
	a.DiscardUnsat += b.DiscardUnsat
	return a
}

// FormatFig3 renders Figure 3 points as TSV.
func FormatFig3(points []Fig3Point) string {
	s := "diameter\tdd\tnodes\tbuild_ms\n"
	for _, p := range points {
		s += fmt.Sprintf("%d\t%.0f%%\t%.1f\t%.3f\n", p.Diameter, p.DefRatio*100, p.Nodes,
			float64(p.BuildTime.Microseconds())/1000)
	}
	return s
}

// FormatFig4 renders Figure 4 points as TSV.
func FormatFig4(points []Fig4Point) string {
	s := "diameter\tfirst_ms\ttenth_ms\tall_ms\trewritings\n"
	for _, p := range points {
		s += fmt.Sprintf("%d\t%.3f\t%.3f\t%.3f\t%d\n", p.Diameter,
			ms(p.First), ms(p.Tenth), ms(p.All), p.Rewritings)
	}
	return s
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
