package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFigure3SmallSweep(t *testing.T) {
	pts, err := Figure3(24, []int{1, 2, 3}, []float64{0, 0.25}, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	// Growth with diameter within each ratio series.
	for _, dd := range []float64{0, 0.25} {
		var series []Fig3Point
		for _, p := range pts {
			if p.DefRatio == dd {
				series = append(series, p)
			}
		}
		if series[2].Nodes <= series[0].Nodes {
			t.Fatalf("dd=%v: no growth with diameter: %+v", dd, series)
		}
	}
	out := FormatFig3(pts)
	if !strings.HasPrefix(out, "diameter\tdd\tnodes") || strings.Count(out, "\n") != 7 {
		t.Fatalf("FormatFig3 = %q", out)
	}
}

func TestFigure4SmallSweep(t *testing.T) {
	pts, err := Figure4(24, []int{1, 2, 3}, 0.10, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.First > p.All {
			t.Fatalf("first rewriting after all: %+v", p)
		}
		if p.Tenth > p.All {
			t.Fatalf("tenth rewriting after all: %+v", p)
		}
	}
	out := FormatFig4(pts)
	if !strings.Contains(out, "first_ms") {
		t.Fatalf("FormatFig4 = %q", out)
	}
}

func TestNodeRatePositive(t *testing.T) {
	pts, err := NodeRate(24, []int{2, 3}, 0.10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Nodes <= 0 || p.NodesPerSec <= 0 {
			t.Fatalf("rate point = %+v", p)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	pts, err := Ablations(24, []int{3}, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.On.Nodes() == 0 || p.Off.Nodes() == 0 {
			t.Fatalf("empty stats: %+v", p)
		}
		// Memo-off can never build FEWER nodes than memo-on.
		if p.Name == "memo" && p.Off.Nodes() < p.On.Nodes() {
			t.Fatalf("memo increased node count: %+v", p)
		}
	}
}
