package minicon

import (
	"testing"

	"repro/internal/lang"
)

func v(n string) lang.Term                     { return lang.Var(n) }
func k(n string) lang.Term                     { return lang.Const(n) }
func atom(p string, ts ...lang.Term) lang.Atom { return lang.NewAtom(p, ts...) }

func req(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

// The worked example from Section 4.1 of the paper (borrowed from the
// MiniCon paper): Q(X,Y) :- e1(X,Z), e2(Z,Y), e3(X,Y) with
// V1(A,B) :- e1(A,C), e2(C,B).
func TestFormPaperExample(t *testing.T) {
	goals := []lang.Atom{
		atom("e1", v("X"), v("Z")),
		atom("e2", v("Z"), v("Y")),
		atom("e3", v("X"), v("Y")),
	}
	v1 := &View{
		ID:   "v1",
		Head: atom("V1", v("A"), v("B")),
		Body: []lang.Atom{atom("e1", v("A"), v("C")), atom("e2", v("C"), v("B"))},
	}
	mcds := Form(goals, 0, req("X", "Y"), v1, lang.NewVarSupply("_t"))
	if len(mcds) != 1 {
		t.Fatalf("mcds = %v", mcds)
	}
	m := mcds[0]
	// Z maps to the view's existential C, so the MCD must cover both e1 and
	// e2 subgoals.
	if len(m.Covered) != 2 || m.Covered[0] != 0 || m.Covered[1] != 1 {
		t.Fatalf("Covered = %v", m.Covered)
	}
	// The atom exposes X and Y.
	if !m.Atom.Equal(atom("V1", v("X"), v("Y"))) {
		t.Fatalf("Atom = %v", m.Atom)
	}
	if len(m.Export) != 0 {
		t.Fatalf("Export = %v", m.Export)
	}
}

// V3(U) :- e1(U,Z): the view projects Z away, so it is useless for covering
// e1(X,Z) when Z is needed elsewhere (the paper's V3 remark).
func TestFormUselessViewRejected(t *testing.T) {
	goals := []lang.Atom{
		atom("e1", v("X"), v("Z")),
		atom("e2", v("Z"), v("Y")),
	}
	v3 := &View{
		ID:   "v3",
		Head: atom("V3", v("U")),
		Body: []lang.Atom{atom("e1", v("U"), v("W"))},
	}
	mcds := Form(goals, 0, req("X", "Y"), v3, lang.NewVarSupply("_t"))
	if len(mcds) != 0 {
		t.Fatalf("useless view produced MCDs: %v", mcds)
	}
}

// A view that projects a variable appearing in no other goal is usable; the
// hidden variable is simply existential.
func TestFormProjectionOfLocalVarOK(t *testing.T) {
	goals := []lang.Atom{atom("e1", v("X"), v("Z"))}
	view := &View{
		ID:   "v",
		Head: atom("V", v("U")),
		Body: []lang.Atom{atom("e1", v("U"), v("W"))},
	}
	mcds := Form(goals, 0, req("X"), view, lang.NewVarSupply("_t"))
	if len(mcds) != 1 {
		t.Fatalf("mcds = %v", mcds)
	}
	if !mcds[0].Atom.Equal(atom("V", v("X"))) {
		t.Fatalf("Atom = %v", mcds[0].Atom)
	}
}

// SameSkill(f1,f2) ⊆ Skill(f1,s), Skill(f2,s): covering Skill(f1,s) must
// produce two MCDs (head order and reversed), the paper's "apply r1 a second
// time with the head variables reversed" point.
func TestFormSymmetricViewTwoMCDs(t *testing.T) {
	goals := []lang.Atom{
		atom("Skill", v("f1"), v("s")),
		atom("Skill", v("f2"), v("s")),
	}
	view := &View{
		ID:   "r1",
		Head: atom("SameSkill", v("a"), v("b")),
		Body: []lang.Atom{atom("Skill", v("a"), v("c")), atom("Skill", v("b"), v("c"))},
	}
	mcds := Form(goals, 0, req("f1", "f2"), view, lang.NewVarSupply("_t"))
	// Besides the direct and reversed MCDs, MiniCon also produces the
	// degenerate ones that map both subgoals onto the same view atom
	// (forcing f1 = f2); those are sound and needed for completeness when
	// no other covering exists, so we require at least the two canonical
	// MCDs and that every MCD covers both subgoals.
	for _, m := range mcds {
		if len(m.Covered) != 2 {
			t.Fatalf("Covered = %v (s is view-existential, both subgoals must be covered)", m.Covered)
		}
	}
	got := map[string]bool{}
	for _, m := range mcds {
		if len(m.Export) == 0 {
			got[m.Atom.String()] = true
		}
	}
	if !got["SameSkill(f1, f2)"] || !got["SameSkill(f2, f1)"] {
		t.Fatalf("canonical MCDs missing: %v", mcds)
	}
}

// A view with a constant restricts usage: V(x) ⊆ R(x, "a") can only cover
// R(y, "a") or R(y, z) by binding z to "a" — the binding must be exported.
func TestFormConstantExport(t *testing.T) {
	goals := []lang.Atom{atom("R", v("y"), v("z"))}
	view := &View{
		ID:   "v",
		Head: atom("V", v("x")),
		Body: []lang.Atom{atom("R", v("x"), k("a"))},
	}
	mcds := Form(goals, 0, req("y", "z"), view, lang.NewVarSupply("_t"))
	if len(mcds) != 1 {
		t.Fatalf("mcds = %v", mcds)
	}
	m := mcds[0]
	if m.Export.Apply(v("z")) != k("a") {
		t.Fatalf("Export = %v", m.Export)
	}
}

// Required variable bound to a constant by the view is recoverable.
func TestFormRequiredConstOK(t *testing.T) {
	goals := []lang.Atom{atom("R", v("y"))}
	view := &View{
		ID:   "v",
		Head: atom("V", v("u")),
		Body: []lang.Atom{atom("R", k("c")), atom("S", v("u"))},
	}
	mcds := Form(goals, 0, req("y"), view, lang.NewVarSupply("_t"))
	if len(mcds) != 1 {
		t.Fatalf("mcds = %v", mcds)
	}
	if mcds[0].Export.Apply(v("y")) != k("c") {
		t.Fatalf("Export = %v", mcds[0].Export)
	}
}

// Repeated variables in the goal force a join inside the view.
func TestFormRepeatedGoalVar(t *testing.T) {
	goals := []lang.Atom{atom("R", v("x"), v("x"))}
	view := &View{
		ID:   "v",
		Head: atom("V", v("a"), v("b")),
		Body: []lang.Atom{atom("R", v("a"), v("b"))},
	}
	mcds := Form(goals, 0, req("x"), view, lang.NewVarSupply("_t"))
	if len(mcds) != 1 {
		t.Fatalf("mcds = %v", mcds)
	}
	// Both head positions must expose x.
	if !mcds[0].Atom.Equal(atom("V", v("x"), v("x"))) {
		t.Fatalf("Atom = %v", mcds[0].Atom)
	}
}

// Views carry their comparisons into the MCD, instantiated to goal terms.
func TestFormCarriesComparisons(t *testing.T) {
	goals := []lang.Atom{atom("R", v("x"), v("y"))}
	view := &View{
		ID:    "v",
		Head:  atom("V", v("a"), v("b")),
		Body:  []lang.Atom{atom("R", v("a"), v("b"))},
		Comps: []lang.Comparison{{Op: lang.OpLT, L: v("a"), R: k("10")}},
	}
	mcds := Form(goals, 0, req("x", "y"), view, lang.NewVarSupply("_t"))
	if len(mcds) != 1 || len(mcds[0].Comps) != 1 {
		t.Fatalf("mcds = %v", mcds)
	}
	c := mcds[0].Comps[0]
	if c.L != v("x") || c.Op != lang.OpLT || c.R != k("10") {
		t.Fatalf("comp = %v", c)
	}
}

// No MCD when predicates do not match.
func TestFormNoMatch(t *testing.T) {
	goals := []lang.Atom{atom("R", v("x"))}
	view := &View{ID: "v", Head: atom("V", v("a")), Body: []lang.Atom{atom("S", v("a"))}}
	if mcds := Form(goals, 0, req("x"), view, lang.NewVarSupply("_t")); len(mcds) != 0 {
		t.Fatalf("mcds = %v", mcds)
	}
}

// Constant clash between goal and view blocks the MCD.
func TestFormConstantClash(t *testing.T) {
	goals := []lang.Atom{atom("R", k("1"))}
	view := &View{ID: "v", Head: atom("V", v("a")), Body: []lang.Atom{atom("R", k("2")), atom("S", v("a"))}}
	if mcds := Form(goals, 0, nil, view, lang.NewVarSupply("_t")); len(mcds) != 0 {
		t.Fatalf("mcds = %v", mcds)
	}
}

// Don't-care view head positions become fresh variables.
func TestFormDontCareHead(t *testing.T) {
	goals := []lang.Atom{atom("R", v("x"))}
	view := &View{
		ID:   "v",
		Head: atom("V", v("a"), v("b")),
		Body: []lang.Atom{atom("R", v("a")), atom("S", v("b"))},
	}
	mcds := Form(goals, 0, req("x"), view, lang.NewVarSupply("_t"))
	if len(mcds) != 1 {
		t.Fatalf("mcds = %v", mcds)
	}
	args := mcds[0].Atom.Args
	if args[0] != v("x") || !args[1].IsVar() || args[1] == v("x") {
		t.Fatalf("Atom = %v", mcds[0].Atom)
	}
}
