// Package minicon implements MiniCon descriptions (MCDs) — the core of
// LAV-style answering-queries-using-views (Pottinger & Halevy, VLDB J.
// 2001) — in the form the PDMS reformulation algorithm needs for its
// inclusion expansions (Section 4.2, step 2, case 2 of the paper).
//
// Given a conjunction of goal atoms (the children of a rule node), a target
// goal, and a view V(Ā) ⊆ body, an MCD records that an atom over V covers
// the target goal and possibly some of its sibling ("uncle") goals, along
// with the variable bindings that usage induces.
//
// The mapping underlying an MCD sends goal variables to view terms; the
// view side is rigid. Two view HEAD variables may be equated (that is a
// selection over the view's output, expressible by repeating a variable in
// the V-atom), and a head variable may be bound to a constant; existential
// view variables may never be equated with anything — the view does not
// entail such equalities about its witnesses, and assuming them is exactly
// the unsoundness MiniCon's conditions rule out. The MCD property: whenever
// a goal variable maps to an existential view variable, every goal
// mentioning that variable must be covered by the same MCD; variables the
// surrounding context needs (the "required" set) must map to head variables
// or constants.
package minicon

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// View is a LAV view definition V(Ā) ⊆ Body (with optional comparison
// predicates constraining the view's contents). Head.Pred is the fresh
// predicate V introduced by step-1 normalization; ID identifies the original
// PPL description for the once-per-path reuse rule.
type View struct {
	ID    string
	Head  lang.Atom
	Body  []lang.Atom
	Comps []lang.Comparison
}

// MCD is a MiniCon description: using the view covers the goals in Covered
// (indices into the goal conjunction) via the atom Atom, under the exported
// bindings Export (goal-variable equalities/constant bindings the usage
// forces on the rest of the rewriting) and the comparison predicates Comps
// carried over from the view under the mapping.
type MCD struct {
	View    *View
	Covered []int
	Atom    lang.Atom
	Export  lang.Subst
	Comps   []lang.Comparison
}

// Form computes all MCDs for goals[target] with respect to the sibling
// conjunction goals and the view. required holds the variable names the
// surrounding context must be able to recover. vs supplies fresh variables
// for don't-care view head positions. The view is renamed apart internally.
func Form(goals []lang.Atom, target int, required map[string]bool, view *View, vs *lang.VarSupply) []MCD {
	vr, viewVars := renameView(view, vs)
	headVars := map[string]bool{}
	for _, a := range vr.Head.Args {
		if a.IsVar() {
			headVars[a.Name] = true
		}
	}
	f := &former{
		goals:    goals,
		required: required,
		view:     view,
		renamed:  vr,
		viewVars: viewVars,
		headVars: headVars,
		vs:       vs,
	}
	var out []MCD
	seen := map[string]bool{}
	for bi := range vr.Body {
		if vr.Body[bi].Pred != goals[target].Pred {
			continue
		}
		m := newMapping()
		if !f.unifyAtom(m, goals[target], vr.Body[bi]) {
			continue
		}
		covered := map[int]bool{target: true}
		f.close(covered, m, func(cov map[int]bool, mm *mapping) {
			mcd, ok := f.emit(cov, mm)
			if !ok {
				return
			}
			key := mcd.key()
			if !seen[key] {
				seen[key] = true
				out = append(out, mcd)
			}
		})
	}
	return out
}

type former struct {
	goals    []lang.Atom
	required map[string]bool
	view     *View
	renamed  View
	viewVars map[string]bool
	headVars map[string]bool
	vs       *lang.VarSupply
}

// mapping is the partial MCD mapping: goal variables to view terms, plus a
// union-find over view head variables and constants recording legitimate
// head-variable equalities.
type mapping struct {
	// bind maps goal variable names to view terms (view variables or
	// constants).
	bind map[string]lang.Term
	// uf is a union-find over view head variables and constants; class
	// representatives prefer constants.
	uf map[lang.Term]lang.Term
}

func newMapping() *mapping {
	return &mapping{bind: map[string]lang.Term{}, uf: map[lang.Term]lang.Term{}}
}

func (m *mapping) clone() *mapping {
	c := newMapping()
	for k, v := range m.bind {
		c.bind[k] = v
	}
	for k, v := range m.uf {
		c.uf[k] = v
	}
	return c
}

// resolve returns the class representative of a view term.
func (m *mapping) resolve(t lang.Term) lang.Term {
	r := t
	for {
		p, ok := m.uf[r]
		if !ok || p == r {
			return r
		}
		r = p
	}
}

// union merges two classes (both must be head variables or constants);
// reports false when the merge is inconsistent (two distinct constants).
func (m *mapping) union(a, b lang.Term) bool {
	ra, rb := m.resolve(a), m.resolve(b)
	if ra == rb {
		return true
	}
	if ra.IsConst() && rb.IsConst() {
		return false
	}
	if rb.IsConst() {
		ra, rb = rb, ra
	}
	// ra is the new root (constant preferred).
	m.uf[rb] = ra
	if _, ok := m.uf[ra]; !ok {
		m.uf[ra] = ra
	}
	return true
}

// unifyAtom extends the mapping so that goal maps onto viewAtom; the view
// side is rigid up to head-variable equating. Mutates m; callers clone
// before branching.
func (f *former) unifyAtom(m *mapping, goal, viewAtom lang.Atom) bool {
	if goal.Pred != viewAtom.Pred || len(goal.Args) != len(viewAtom.Args) {
		return false
	}
	for i := range goal.Args {
		g := goal.Args[i]
		v := m.resolve(viewAtom.Args[i])
		if g.IsConst() {
			if !f.bindViewTermToConst(m, v, g) {
				return false
			}
			continue
		}
		prev, ok := m.bind[g.Name]
		if !ok {
			m.bind[g.Name] = v
			continue
		}
		if !f.mergeViewTerms(m, m.resolve(prev), v) {
			return false
		}
	}
	return true
}

// bindViewTermToConst constrains view term v to equal constant c.
func (f *former) bindViewTermToConst(m *mapping, v, c lang.Term) bool {
	v = m.resolve(v)
	switch {
	case v.IsConst():
		return v == c
	case f.headVars[v.Name]:
		return m.union(v, c) // selection on the view's output column
	default:
		return false // cannot constrain an existential witness
	}
}

// mergeViewTerms requires view terms a and b to be equal. Legitimate only
// when both are head variables / constants (selection over the view's
// output); an existential variable is equal only to itself.
func (f *former) mergeViewTerms(m *mapping, a, b lang.Term) bool {
	if a == b {
		return true
	}
	aHead := a.IsConst() || f.headVars[a.Name]
	bHead := b.IsConst() || f.headVars[b.Name]
	if aHead && bHead {
		return m.union(a, b)
	}
	return false
}

// recoverable reports whether goal variable x is exposed by the view head
// (or grounded to a constant) under m.
func (f *former) recoverable(x lang.Term, m *mapping) bool {
	t, ok := m.bind[x.Name]
	if !ok {
		return true // variable untouched by this view
	}
	t = m.resolve(t)
	return t.IsConst() || f.headVars[t.Name]
}

// close extends the covered set until the MCD property holds, branching
// over choices of view atoms for goals that must be pulled in. emit is
// called for every consistent completion.
func (f *former) close(covered map[int]bool, m *mapping, emit func(map[int]bool, *mapping)) {
	for gi := range covered {
		for _, x := range f.goals[gi].Vars(nil) {
			if f.recoverable(x, m) {
				continue
			}
			// x maps to an existential witness. It must not be required …
			if f.required[x.Name] {
				return
			}
			// … and every goal mentioning x must be covered by this MCD.
			// If x occurs only inside the covered set, it is a join
			// internal to the view and needs no action.
			for gj := range f.goals {
				if covered[gj] || !f.goals[gj].HasVar(x) {
					continue
				}
				for bi := range f.renamed.Body {
					if f.renamed.Body[bi].Pred != f.goals[gj].Pred {
						continue
					}
					m2 := m.clone()
					if !f.unifyAtom(m2, f.goals[gj], f.renamed.Body[bi]) {
						continue
					}
					covered2 := make(map[int]bool, len(covered)+1)
					for k := range covered {
						covered2[k] = true
					}
					covered2[gj] = true
					f.close(covered2, m2, emit)
				}
				return // dispatched (or no unifiable view atom: dead branch)
			}
		}
	}
	emit(covered, m)
}

// emit materializes the MCD: the covering atom over the view predicate, the
// export substitution over goal variables, and the instantiated view
// comparisons.
func (f *former) emit(covered map[int]bool, m *mapping) (MCD, bool) {
	covList := make([]int, 0, len(covered))
	for gi := range covered {
		covList = append(covList, gi)
	}
	sort.Ints(covList)

	// Representative goal term per view-variable class, so the atom and
	// the export expose goal variables where possible.
	repr := map[lang.Term]lang.Term{}
	for _, gi := range covList {
		for _, x := range f.goals[gi].Vars(nil) {
			t, ok := m.bind[x.Name]
			if !ok {
				continue
			}
			t = m.resolve(t)
			if t.IsVar() {
				if _, ok := repr[t]; !ok {
					repr[t] = x
				}
			}
		}
	}
	// Covering atom: one argument per view head position; classes without
	// a goal representative get one shared fresh don't-care per class.
	fresh := map[lang.Term]lang.Term{}
	args := make([]lang.Term, len(f.renamed.Head.Args))
	for i, a := range f.renamed.Head.Args {
		t := a
		if t.IsVar() {
			t = m.resolve(t)
		}
		switch {
		case t.IsConst():
			args[i] = t
		default:
			if r, ok := repr[t]; ok {
				args[i] = r
			} else {
				fv, ok := fresh[t]
				if !ok {
					fv = f.vs.FreshLike(lang.Var("dc"))
					fresh[t] = fv
				}
				args[i] = fv
			}
		}
	}
	// Export: bindings this usage forces on covered-goal variables.
	export := lang.NewSubst()
	for _, gi := range covList {
		for _, x := range f.goals[gi].Vars(nil) {
			t, ok := m.bind[x.Name]
			if !ok {
				continue
			}
			t = m.resolve(t)
			var tgt lang.Term
			switch {
			case t.IsConst():
				tgt = t
			default:
				r := repr[t]
				if r == x {
					continue
				}
				tgt = r
			}
			if !export.Bind(x.Name, tgt) {
				return MCD{}, false
			}
		}
	}
	// Carry the view's comparisons, expressed over goal terms where
	// possible (comparisons over unexposed witnesses stay on view
	// variables; they hold for the stored extension by construction and
	// are used only for constraint-label pruning).
	comps := make([]lang.Comparison, 0, len(f.renamed.Comps))
	for _, c := range f.renamed.Comps {
		comps = append(comps, lang.Comparison{
			Op: c.Op,
			L:  f.exposeTerm(c.L, m, repr),
			R:  f.exposeTerm(c.R, m, repr),
		})
	}
	return MCD{
		View:    f.view,
		Covered: covList,
		Atom:    lang.Atom{Pred: f.renamed.Head.Pred, Args: args},
		Export:  export,
		Comps:   comps,
	}, true
}

// exposeTerm rewrites a view term through the mapping onto a goal term when
// one exists.
func (f *former) exposeTerm(t lang.Term, m *mapping, repr map[lang.Term]lang.Term) lang.Term {
	if t.IsConst() {
		return t
	}
	rt := m.resolve(t)
	if rt.IsConst() {
		return rt
	}
	if r, ok := repr[rt]; ok {
		return r
	}
	return rt
}

// key canonicalizes the MCD for deduplication.
func (m MCD) key() string {
	var sb strings.Builder
	for _, c := range m.Covered {
		fmt.Fprintf(&sb, "%d,", c)
	}
	sb.WriteByte('|')
	sb.WriteString(m.Atom.Key())
	sb.WriteByte('|')
	sb.WriteString(m.Export.String())
	return sb.String()
}

// renameView renames the view apart using vs and returns the renamed view
// plus the set of its (fresh) variable names.
func renameView(v *View, vs *lang.VarSupply) (View, map[string]bool) {
	q := lang.CQ{Head: v.Head, Body: v.Body, Comps: v.Comps}
	r, sub := q.Rename(vs)
	vars := map[string]bool{}
	for _, t := range sub {
		vars[t.Name] = true
	}
	return View{ID: v.ID, Head: r.Head, Body: r.Body, Comps: r.Comps}, vars
}
