package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// The bucket layout: geometric bounds from histMinBound seconds growing by
// histGrowth per bucket. With growth sqrt(2) and 56 buckets the layout
// spans 1µs .. ~268s, which covers every latency this system produces;
// observations past the last bound land in an overflow bucket whose
// quantile estimate is the last bound.
const (
	histNumBuckets = 56
	histMinBound   = 1e-6 // seconds
)

// histBounds[i] is the inclusive upper bound (seconds) of bucket i.
var histBounds = func() [histNumBuckets]float64 {
	var b [histNumBuckets]float64
	growth := math.Sqrt2
	v := histMinBound
	for i := range b {
		b[i] = v
		v *= growth
	}
	return b
}()

// Histogram is a lock-free latency histogram: geometric buckets covering
// 1µs–268s with ratio sqrt(2), so a quantile estimate is off from the true
// sample quantile by at most one bucket ratio (~1.42x) plus intra-bucket
// interpolation. Observe is an atomic add after a short binary search —
// safe and cheap on hot paths. The zero value is usable.
type Histogram struct {
	buckets  [histNumBuckets]atomic.Uint64
	overflow atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	s := d.Seconds()
	// Binary search for the first bound >= s.
	lo, hi := 0, histNumBuckets
	for lo < hi {
		mid := (lo + hi) / 2
		if histBounds[mid] >= s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == histNumBuckets {
		h.overflow.Add(1)
		return
	}
	h.buckets[lo].Add(1)
}

// quantile estimates the q-quantile (0 < q < 1) from cumulative bucket
// counts, interpolating linearly inside the winning bucket.
func quantile(counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if cum < rank {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = histBounds[i-1]
		}
		upper := histBounds[i]
		frac := float64(rank-prev) / float64(c)
		return lower + (upper-lower)*frac
	}
	// Rank falls in the overflow bucket: report the last finite bound.
	return histBounds[histNumBuckets-1]
}

// Snapshot returns the histogram's current counts and quantile estimates.
// Counters are read individually-atomically; a concurrent Observe may be
// partially visible, skewing the snapshot by at most that one sample.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histNumBuckets]uint64
	var total uint64
	last := -1
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
		if c > 0 {
			last = i
		}
	}
	over := h.overflow.Load()
	snap := HistogramSnapshot{
		Count: total + over,
		Sum:   time.Duration(h.sumNanos.Load()).Seconds(),
		P50:   quantile(counts[:], total+over, 0.50),
		P99:   quantile(counts[:], total+over, 0.99),
		P999:  quantile(counts[:], total+over, 0.999),
	}
	// Expose the non-empty prefix of the layout as cumulative buckets.
	if last >= 0 {
		snap.Bounds = make([]float64, last+1)
		snap.Counts = make([]uint64, last+1)
		var cum uint64
		for i := 0; i <= last; i++ {
			cum += counts[i]
			snap.Bounds[i] = histBounds[i]
			snap.Counts[i] = cum
		}
	}
	return snap
}
