package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// bucketFor mirrors Observe's search: the first bound >= s.
func bucketFor(s float64) int {
	for i, b := range histBounds {
		if b >= s {
			return i
		}
	}
	return histNumBuckets
}

func TestHistogramEmpty(t *testing.T) {
	snap := NewHistogram().Snapshot()
	if snap.Count != 0 || snap.Sum != 0 {
		t.Fatalf("empty histogram: Count %d Sum %g", snap.Count, snap.Sum)
	}
	if snap.P50 != 0 || snap.P99 != 0 || snap.P999 != 0 {
		t.Fatalf("empty histogram quantiles: %g %g %g", snap.P50, snap.P99, snap.P999)
	}
	if snap.Bounds != nil || snap.Counts != nil {
		t.Fatalf("empty histogram exposed buckets: %v %v", snap.Bounds, snap.Counts)
	}
}

// TestHistogramSingleBucketSaturation pins the exact interpolation math
// when every observation lands in one bucket: with n samples in bucket i,
// the q-quantile is lower + (upper-lower) * ceil(q*n)/n.
func TestHistogramSingleBucketSaturation(t *testing.T) {
	h := NewHistogram()
	d := time.Millisecond
	for i := 0; i < 4; i++ {
		h.Observe(d)
	}
	i := bucketFor(d.Seconds())
	lower := 0.0
	if i > 0 {
		lower = histBounds[i-1]
	}
	upper := histBounds[i]
	snap := h.Snapshot()
	if snap.Count != 4 {
		t.Fatalf("Count = %d, want 4", snap.Count)
	}
	if want := 4 * d.Seconds(); math.Abs(snap.Sum-want) > 1e-12 {
		t.Fatalf("Sum = %g, want %g", snap.Sum, want)
	}
	// rank(0.50, 4) = 2 -> midpoint; rank(0.99, 4) = rank(0.999, 4) = 4 -> upper.
	if want := lower + (upper-lower)*0.5; snap.P50 != want {
		t.Fatalf("P50 = %g, want %g", snap.P50, want)
	}
	if snap.P99 != upper || snap.P999 != upper {
		t.Fatalf("P99/P999 = %g/%g, want %g", snap.P99, snap.P999, upper)
	}
	if len(snap.Bounds) != i+1 || len(snap.Counts) != i+1 {
		t.Fatalf("exposed %d buckets, want prefix through bucket %d", len(snap.Bounds), i)
	}
	if snap.Bounds[i] != upper || snap.Counts[i] != 4 {
		t.Fatalf("bucket %d: bound %g count %d, want %g and 4", i, snap.Bounds[i], snap.Counts[i], upper)
	}
	for j := 0; j < i; j++ {
		if snap.Counts[j] != 0 {
			t.Fatalf("cumulative count below the hit bucket: Counts[%d] = %d", j, snap.Counts[j])
		}
	}
}

// TestHistogramOverflow: observations past the last bound are counted but
// quantiles saturate at the last finite bound, and with no finite bucket
// hit the exposed bucket prefix stays empty.
func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram()
	h.Observe(300 * time.Second) // last bound is ~268s
	snap := h.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("Count = %d, want 1", snap.Count)
	}
	last := histBounds[histNumBuckets-1]
	if last >= 300 {
		t.Fatalf("layout changed: last bound %g no longer below the overflow sample", last)
	}
	if snap.P50 != last || snap.P99 != last || snap.P999 != last {
		t.Fatalf("overflow quantiles %g/%g/%g, want last bound %g", snap.P50, snap.P99, snap.P999, last)
	}
	if snap.Bounds != nil {
		t.Fatalf("overflow-only histogram exposed finite buckets: %v", snap.Bounds)
	}
}

// TestHistogramNegativeClamp: negative durations clamp to zero and land in
// the first bucket, contributing nothing to the sum.
func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)
	snap := h.Snapshot()
	if snap.Count != 1 || snap.Sum != 0 {
		t.Fatalf("Count %d Sum %g, want 1 and 0", snap.Count, snap.Sum)
	}
	if len(snap.Counts) != 1 || snap.Counts[0] != 1 || snap.Bounds[0] != histBounds[0] {
		t.Fatalf("clamped sample not in bucket 0: bounds %v counts %v", snap.Bounds, snap.Counts)
	}
	// rank 1 of 1 in bucket 0: lower 0, upper histBounds[0], frac 1.
	if snap.P50 != histBounds[0] {
		t.Fatalf("P50 = %g, want %g", snap.P50, histBounds[0])
	}
}

// TestHistogramConcurrentObserveSnapshot hammers Observe from several
// goroutines while snapshotting continuously: snapshots must stay
// internally consistent (cumulative counts monotone, Count >= cumulative
// finite total) and the final snapshot must account for every sample.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	h := NewHistogram()
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	var snapErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.Snapshot()
			var prev uint64
			for i, c := range snap.Counts {
				if c < prev {
					snapErr = &nonMonotone{i: i, c: c, prev: prev}
					return
				}
				prev = c
			}
			if snap.Count < prev {
				snapErr = &nonMonotone{i: -1, c: snap.Count, prev: prev}
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	if got := h.Snapshot().Count; got != writers*perWriter {
		t.Fatalf("final Count = %d, want %d", got, writers*perWriter)
	}
}

type nonMonotone struct {
	i       int
	c, prev uint64
}

func (e *nonMonotone) Error() string {
	if e.i < 0 {
		return "snapshot Count below cumulative finite total"
	}
	return "cumulative bucket counts decreased"
}
