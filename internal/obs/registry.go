// Package obs is the observability substrate of the system: a lock-free
// metrics registry unifying every subsystem's counters under stable dotted
// names, bucketed latency histograms with percentile snapshots, and a
// cross-peer query tracer whose span trees stitch remote work (shipped
// back on wire response frames) into the posing peer's trace.
//
// The registry holds three kinds of instruments:
//
//   - native Counters, Gauges and Histograms, mutated through atomics on
//     the hot path (no locks, no allocation);
//   - snapshot groups: existing stats surfaces (engine.Stats,
//     netpeer.ServerStats, …) register a closure that emits their current
//     counter values under a dotted prefix, so legacy counters appear in
//     the same namespace without being rewritten.
//
// One Registry.Snapshot() (or the package-level Snapshot() over the
// Default registry) returns everything: counters, gauges and histogram
// percentiles keyed by dotted name ("engine.parallel_scans",
// "fragcache.hits", "wire.bind_batches_pipelined", …). WritePrometheus
// renders the same snapshot in the Prometheus text exposition format, and
// Handler serves both plus recent traces and pprof over HTTP — the
// operational front door mounted by cmd/peerd.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the current value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Emitter receives one snapshot group's values during Registry.Snapshot.
// The group's dotted prefix is prepended to every emitted name.
type Emitter struct {
	prefix   string
	counters map[string]uint64
	gauges   map[string]int64
}

// Counter emits one cumulative counter value under the group's prefix.
func (em *Emitter) Counter(name string, v uint64) {
	em.counters[em.prefix+"."+name] = v
}

// Gauge emits one instantaneous value under the group's prefix.
func (em *Emitter) Gauge(name string, v int64) {
	em.gauges[em.prefix+"."+name] = v
}

// HistogramSnapshot is one histogram's state at snapshot time. Quantiles
// are in seconds, estimated from the bucket layout (see Histogram for the
// error bound).
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	// Bounds and Counts are the non-empty prefix of the bucket layout:
	// Counts[i] observations were <= Bounds[i] seconds (cumulative), with
	// Count including any overflow past the last bound.
	Bounds []float64 `json:"-"`
	Counts []uint64  `json:"-"`
}

// SnapshotData is one consistent-enough view of a registry: every instrument
// and group read at one moment (individual values are atomically read;
// cross-counter skew is bounded by the snapshot's own duration).
type SnapshotData struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry is a namespace of metrics instruments. Instrument mutation is
// lock-free (atomics); registration and snapshotting take an internal
// mutex (cold paths). The zero value is unusable; use NewRegistry.
type Registry struct {
	mu sync.RWMutex
	// The instrument namespaces are all guarded by mu.
	counters map[string]*Counter       // guarded by mu
	gauges   map[string]*Gauge         // guarded by mu
	hists    map[string]*Histogram     // guarded by mu
	groups   map[string]func(*Emitter) // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		groups:   map[string]func(*Emitter){},
	}
}

// Default is the process-wide registry the package-level helpers use.
var Default = NewRegistry()

// Counter returns (creating if needed) the counter under the dotted name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge under the dotted name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram under the dotted
// name.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// RegisterHistogram attaches an existing histogram under the dotted name
// (replacing any previous registration), so a component can own its
// histogram and expose it through any registry.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}

// RegisterGroup registers a snapshot group: fn is invoked on every
// Snapshot and emits the group's current values under the dotted prefix.
// Re-registering a prefix replaces the previous group (so tests and
// reconstructed components can re-register safely). fn must be safe to
// call concurrently with the component's own work — the existing stats
// surfaces all snapshot atomics or take their own locks.
func (r *Registry) RegisterGroup(prefix string, fn func(*Emitter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.groups[prefix] = fn
}

// Unregister removes the group, counter, gauge and histogram under name
// (as a group name, the whole group).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.groups, name)
	delete(r.counters, name)
	delete(r.gauges, name)
	delete(r.hists, name)
}

// Snapshot returns the current value of every instrument and group.
func (r *Registry) Snapshot() SnapshotData {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := SnapshotData{
		Counters:   make(map[string]uint64, len(r.counters)+4*len(r.groups)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.Snapshot()
	}
	em := &Emitter{counters: snap.Counters, gauges: snap.Gauges}
	for prefix, fn := range r.groups {
		em.prefix = prefix
		fn(em)
	}
	return snap
}

// Snapshot returns the Default registry's snapshot.
func Snapshot() SnapshotData { return Default.Snapshot() }

// promName converts a dotted metric name to the Prometheus exposition
// charset (dots and any other separator become underscores).
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// sortedKeys returns m's keys sorted, for deterministic exposition output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket/_sum/_count series.
func (s SnapshotData) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for i, b := range h.Bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatLe(b), h.Counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatLe formats a bucket upper bound the way Prometheus expects.
func formatLe(b float64) string { return strings.TrimSuffix(fmt.Sprintf("%g", b), ".0") }
