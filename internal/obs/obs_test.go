package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersGaugesGroups(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.hits").Add(3)
	r.Counter("a.hits").Inc()
	r.Gauge("a.depth").Set(7)
	r.Gauge("a.depth").Add(-2)
	r.RegisterGroup("legacy", func(em *Emitter) {
		em.Counter("reqs", 42)
		em.Gauge("conns", 5)
	})

	snap := r.Snapshot()
	if got := snap.Counters["a.hits"]; got != 4 {
		t.Fatalf("a.hits = %d, want 4", got)
	}
	if got := snap.Gauges["a.depth"]; got != 5 {
		t.Fatalf("a.depth = %d, want 5", got)
	}
	if got := snap.Counters["legacy.reqs"]; got != 42 {
		t.Fatalf("legacy.reqs = %d, want 42", got)
	}
	if got := snap.Gauges["legacy.conns"]; got != 5 {
		t.Fatalf("legacy.conns = %d, want 5", got)
	}

	// Re-registering a group replaces it.
	r.RegisterGroup("legacy", func(em *Emitter) { em.Counter("reqs", 43) })
	if got := r.Snapshot().Counters["legacy.reqs"]; got != 43 {
		t.Fatalf("after re-register legacy.reqs = %d, want 43", got)
	}

	r.Unregister("legacy")
	if _, ok := r.Snapshot().Counters["legacy.reqs"]; ok {
		t.Fatal("unregistered group still emitting")
	}
}

// TestHistogramPercentileBounds checks the documented accuracy bound: a
// quantile estimate is within one bucket ratio (sqrt 2, plus interpolation
// slack) of the true sample quantile.
func TestHistogramPercentileBounds(t *testing.T) {
	h := NewHistogram()
	// 1000 samples: 1ms..1000ms uniformly.
	var samples []float64
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Millisecond
		h.Observe(d)
		samples = append(samples, d.Seconds())
	}
	snap := h.Snapshot()
	if snap.Count != 1000 {
		t.Fatalf("count = %d, want 1000", snap.Count)
	}
	wantSum := 0.0
	for _, s := range samples {
		wantSum += s
	}
	if math.Abs(snap.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
	check := func(name string, got, trueQ float64) {
		lo, hi := trueQ/math.Sqrt2*0.99, trueQ*math.Sqrt2*1.01
		if got < lo || got > hi {
			t.Errorf("%s = %v outside [%v, %v] (true %v)", name, got, lo, hi, trueQ)
		}
	}
	check("p50", snap.P50, 0.500)
	check("p99", snap.P99, 0.990)
	check("p999", snap.P999, 0.999)
}

func TestHistogramOverflowAndZero(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second) // clamped to 0
	h.Observe(1000 * time.Hour)
	snap := h.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("count = %d, want 2", snap.Count)
	}
	if snap.P999 != histBounds[histNumBuckets-1] {
		t.Fatalf("overflow p999 = %v, want last bound %v", snap.P999, histBounds[histNumBuckets-1])
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				h.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.scans").Add(9)
	r.Gauge("frag.bytes").Set(1024)
	r.Histogram("query.latency").Observe(2 * time.Millisecond)
	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE engine_scans counter",
		"engine_scans 9",
		"# TYPE frag_bytes gauge",
		"frag_bytes 1024",
		"# TYPE query_latency histogram",
		`query_latency_bucket{le="+Inf"} 1`,
		"query_latency_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(8)
	if s := tr.StartTrace("q"); s != nil {
		t.Fatal("sampling off: StartTrace should return nil")
	}
	tr.SetSampleEvery(3)
	var sampled int
	for i := 0; i < 9; i++ {
		if s := tr.StartTrace("q"); s != nil {
			sampled++
			s.End()
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 with 1-in-3, want 3", sampled)
	}
	if got := len(tr.Recent(10)); got != 3 {
		t.Fatalf("recent = %d, want 3", got)
	}
	if tr.Recorded() != 3 {
		t.Fatalf("recorded = %d, want 3", tr.Recorded())
	}
}

func TestNilTracerAndSpanSafe(t *testing.T) {
	var tr *Tracer
	s := tr.StartTrace("q")
	if s != nil {
		t.Fatal("nil tracer should not trace")
	}
	// Every method must be nil-safe.
	c := s.Child("x")
	c.Set("k", "v")
	c.SetInt("n", 1)
	c.SetErr(nil)
	c.End()
	s.End()
	s.AdoptRemote("p", []SpanData{{ID: 1, Name: "r"}})
	if s.Render() != "" || s.TraceID() != "" || s.ID() != 0 {
		t.Fatal("nil span accessors should return zero values")
	}
	tr.SetSampleEvery(1)
	tr.Record(nil)
	if tr.Recent(5) != nil || tr.RenderRecent(5) == "" {
		t.Fatal("nil tracer recent should be empty")
	}
}

func TestSpanTreeAndRender(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSampleEvery(1)
	root := tr.StartTrace("query", Attr{"q", "Q(x)"})
	ref := root.Child("reformulate")
	ref.SetInt("rules", 2)
	ref.End()
	ev := root.Child("eval")
	ev.End()
	root.End()

	if root.TraceID() == "" {
		t.Fatal("empty trace id")
	}
	if root.Find("reformulate") != ref {
		t.Fatal("Find failed")
	}
	out := root.Render()
	for _, want := range []string{"trace " + root.TraceID(), "query", "q=Q(x)", "reformulate", "rules=2", "eval"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "unfinished") {
		t.Errorf("all spans ended, render shows unfinished:\n%s", out)
	}
}

func TestExportAdoptRoundTrip(t *testing.T) {
	// Server side: detached remote tree with nested children.
	srv := StartRemote("serve.bind", Attr{"op", "bind"})
	scan := srv.Child("scan")
	probe := scan.Child("probe")
	probe.End()
	scan.End()
	srv.End()

	data := srv.Export(77)
	if len(data) != 3 {
		t.Fatalf("exported %d spans, want 3", len(data))
	}
	if data[0].Parent != 77 {
		t.Fatalf("root parent = %d, want 77", data[0].Parent)
	}

	// Client side: adopt under the local batch span.
	tr := NewTracer(4)
	tr.SetSampleEvery(1)
	root := tr.StartTrace("query")
	batch := root.Child("bind.batch")
	batch.AdoptRemote("127.0.0.1:9", data)
	batch.End()
	root.End()

	kids := batch.Children()
	if len(kids) != 1 {
		t.Fatalf("batch has %d children, want 1 (the remote root)", len(kids))
	}
	r0 := kids[0]
	if r0.Name() != "serve.bind" || r0.Remote() != "127.0.0.1:9" {
		t.Fatalf("adopted root = %q peer %q", r0.Name(), r0.Remote())
	}
	if got := r0.Children(); len(got) != 1 || got[0].Name() != "scan" {
		t.Fatalf("remote nesting lost: %+v", got)
	}
	if f := root.Find("probe"); f == nil || f.Remote() != "127.0.0.1:9" {
		t.Fatal("grandchild remote span not stitched")
	}
	if !strings.Contains(root.Render(), "[peer 127.0.0.1:9]") {
		t.Fatalf("render missing peer label:\n%s", root.Render())
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(2)
	tr.SetSampleEvery(1)
	root := tr.StartTrace("big")
	var made int
	for i := 0; i < defaultMaxSpans+10; i++ {
		if c := root.Child("c"); c != nil {
			c.End()
			made++
		}
	}
	if made >= defaultMaxSpans {
		t.Fatalf("span cap not enforced: made %d", made)
	}
	root.End()
	if !strings.Contains(root.Render(), "[truncated]") {
		t.Fatal("truncated trace not marked in render")
	}
}

func TestRingBufferEviction(t *testing.T) {
	tr := NewTracer(2)
	tr.SetSampleEvery(1)
	for i := 0; i < 5; i++ {
		tr.StartTrace("q").End()
	}
	if got := len(tr.Recent(10)); got != 2 {
		t.Fatalf("ring kept %d, want 2", got)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.count").Add(5)
	tr := NewTracer(4)
	tr.SetSampleEvery(1)
	s := tr.StartTrace("probe-query")
	s.End()
	srv := httptest.NewServer(Handler(r, tr))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	var snap SnapshotData
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["x.count"] != 5 {
		t.Fatalf("x.count = %d, want 5", snap.Counters["x.count"])
	}

	code, body = get("/metrics?format=prometheus")
	if code != 200 || !strings.Contains(body, "x_count 5") {
		t.Fatalf("/metrics prometheus status %d body:\n%s", code, body)
	}

	code, body = get("/debug/traces")
	if code != 200 || !strings.Contains(body, "probe-query") {
		t.Fatalf("/debug/traces status %d body:\n%s", code, body)
	}

	// Adjust sampling through the endpoint.
	if code, _ = get("/debug/traces?sample=10"); code != 200 {
		t.Fatalf("sample adjust status %d", code)
	}
	if tr.SampleEvery() != 10 {
		t.Fatalf("sample knob = %d, want 10", tr.SampleEvery())
	}

	if code, _ = get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof status %d", code)
	}
}

func TestSnapshotConcurrentWithMutation(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	c := r.Counter("m.n")
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				r.Gauge("m.g").Add(1)
				r.Histogram("m.h").Observe(time.Microsecond)
			}
		}
	}()
	var prev uint64
	for i := 0; i < 100; i++ {
		snap := r.Snapshot()
		got := snap.Counters["m.n"]
		if got < prev {
			t.Fatalf("counter went backwards: %d -> %d", prev, got)
		}
		prev = got
	}
	close(stop)
	wg.Wait()
}
