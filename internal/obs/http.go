package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the operational front door: the registry's snapshot at
// /metrics (JSON by default, Prometheus text with ?format=prometheus),
// recent sampled traces at /debug/traces (?n= caps the count, ?sample=
// adjusts the tracer's sampling knob at runtime), and the standard
// net/http/pprof endpoints under /debug/pprof/. Either argument may be
// nil; the corresponding endpoints degrade gracefully.
func Handler(reg *Registry, tracer *Tracer) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.Error(w, "no registry", http.StatusNotFound)
			return
		}
		snap := reg.Snapshot()
		switch r.URL.Query().Get("format") {
		case "prometheus", "prom", "text":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = snap.WritePrometheus(w)
		default:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(snap)
		}
	})

	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		if s := r.URL.Query().Get("sample"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				http.Error(w, "bad sample value", http.StatusBadRequest)
				return
			}
			tracer.SetSampleEvery(n)
		}
		n := 16
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(tracer.RenderRecent(n)))
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}
