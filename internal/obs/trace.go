package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// defaultMaxSpans caps the spans of one trace: a deep rule-goal tree or a
// huge bind-join fan-out must not turn one sampled query into an unbounded
// allocation. Children past the cap are dropped and the trace is marked
// truncated.
const defaultMaxSpans = 4096

// Attr is one key/value annotation on a span.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// trace is the shared state of one span tree.
type trace struct {
	tracer  *Tracer
	id      string
	spanSeq atomic.Uint64
	nspans  atomic.Int64
	maxSpan int64
	trunc   atomic.Bool
}

// Span is one timed node of a trace tree. All methods are safe on a nil
// receiver and return nil children, so call sites never branch on whether
// tracing is sampled — an unsampled query pays only the nil checks.
// Concurrent children (parallel UCQ disjuncts, pipelined bind batches) may
// be created and ended from different goroutines.
type Span struct {
	tr     *trace
	id     uint64
	parent *Span
	name   string
	start  time.Time

	mu sync.Mutex
	// attrs holds the span's key/value labels, guarded by mu.
	attrs []Attr
	// children holds the completed and in-flight child spans, guarded by mu.
	children []*Span
	// dur is the span's final duration once ended, guarded by mu.
	dur time.Duration
	// ended records that End (or remote adoption) ran, guarded by mu.
	ended bool
	// remote is the serving peer address for adopted remote spans,
	// guarded by mu: adoption happens while a live trace may already be
	// rendered.
	remote string
}

// newTraceID returns a random 64-bit hex trace identifier.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived ID rather than panicking in an observability path.
		return fmt.Sprintf("t%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

func newTrace(tracer *Tracer, maxSpans int) *trace {
	if maxSpans <= 0 {
		maxSpans = defaultMaxSpans
	}
	return &trace{tracer: tracer, id: newTraceID(), maxSpan: int64(maxSpans)}
}

func (t *trace) newSpan(parent *Span, name string, attrs []Attr) *Span {
	if t.nspans.Add(1) > t.maxSpan {
		t.trunc.Store(true)
		return nil
	}
	return &Span{
		tr:     t,
		id:     t.spanSeq.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
}

// TraceID returns the trace identifier ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// ID returns the span's identifier within its trace (0 on a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child starts a child span. Nil-safe; returns nil when the trace's span
// budget is exhausted (the trace is then marked truncated).
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := s.tr.newSpan(s, name, attrs)
	if c == nil {
		return nil
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Set adds (or appends — attrs are a list, last writer wins at render) one
// annotation. Nil-safe.
func (s *Span) Set(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{k, v})
	s.mu.Unlock()
}

// SetInt is Set for integer values.
func (s *Span) SetInt(k string, v int64) { s.Set(k, strconv.FormatInt(v, 10)) }

// SetErr records a non-nil error on the span. Nil-safe in both arguments.
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.Set("error", err.Error())
}

// End finishes the span. Ending the root span of a tracer-started trace
// records the trace in the tracer's ring buffer. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	if s.parent == nil && s.tr.tracer != nil {
		s.tr.tracer.Record(s)
	}
}

// Duration returns the span's duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// SpanData is the flattened, serializable form of one span — what crosses
// the wire when a serving peer ships its spans back to the posing peer.
// IDs are scoped to the exporting side's trace; Parent references either
// another exported span or the requesting side's span named in the
// request.
type SpanData struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  int64 // UnixNano on the exporting peer's clock
	Dur    int64 // nanoseconds
	Attrs  []Attr
}

// StartRemote starts a detached span tree for work done on behalf of a
// remote caller: it belongs to no tracer, is always sampled, and is
// exported with Export once ended. parentID is the caller-side span the
// exported root will be parented under.
func StartRemote(name string, attrs ...Attr) *Span {
	t := newTrace(nil, 0)
	root := t.newSpan(nil, name, attrs)
	return root
}

// Export flattens the ended span tree into SpanData, with the root's
// Parent set to rootParent (the requesting side's span ID carried in the
// request). Children reference their parent's exported ID.
func (s *Span) Export(rootParent uint64) []SpanData {
	if s == nil {
		return nil
	}
	var out []SpanData
	var walk func(sp *Span, parent uint64)
	walk = func(sp *Span, parent uint64) {
		sp.mu.Lock()
		d := SpanData{
			ID:     sp.id,
			Parent: parent,
			Name:   sp.name,
			Start:  sp.start.UnixNano(),
			Dur:    int64(sp.dur),
			Attrs:  append([]Attr(nil), sp.attrs...),
		}
		children := append([]*Span(nil), sp.children...)
		sp.mu.Unlock()
		out = append(out, d)
		for _, c := range children {
			walk(c, sp.id)
		}
	}
	walk(s, rootParent)
	return out
}

// AdoptRemote grafts exported remote spans under s: a span whose Parent
// matches another span in the batch is attached there; every other span
// (in particular those parented on s.ID(), the ID shipped in the request)
// becomes a direct child of s. Remote IDs live in the serving peer's
// numbering, so adopted spans get fresh local IDs; peer labels the spans
// with the serving address. Remote clocks are not compared with local
// ones — only the remote-reported durations are kept.
func (s *Span) AdoptRemote(peer string, spans []SpanData) {
	if s == nil || len(spans) == 0 {
		return
	}
	adopted := make(map[uint64]*Span, len(spans))
	inBatch := make(map[uint64]bool, len(spans))
	for _, d := range spans {
		inBatch[d.ID] = true
	}
	for _, d := range spans {
		parent := s
		if d.Parent != 0 && inBatch[d.Parent] {
			if p := adopted[d.Parent]; p != nil {
				parent = p
			}
		}
		c := parent.Child(d.Name, d.Attrs...)
		if c == nil {
			return // trace span budget exhausted; trace is marked truncated
		}
		c.mu.Lock()
		c.remote = peer
		c.dur = time.Duration(d.Dur)
		c.ended = true
		c.mu.Unlock()
		adopted[d.ID] = c
	}
}

// Render returns the span tree as indented text: one line per span with
// its duration, attributes and (for adopted spans) the serving peer.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s", s.TraceID())
	if s.tr.trunc.Load() {
		sb.WriteString("  [truncated]")
	}
	sb.WriteByte('\n')
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		sp.mu.Lock()
		name, dur, attrs, remote := sp.name, sp.dur, append([]Attr(nil), sp.attrs...), sp.remote
		children := append([]*Span(nil), sp.children...)
		ended := sp.ended
		sp.mu.Unlock()
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(name)
		if ended {
			fmt.Fprintf(&sb, " (%s)", dur.Round(time.Microsecond))
		} else {
			sb.WriteString(" (unfinished)")
		}
		if remote != "" {
			fmt.Fprintf(&sb, " [peer %s]", remote)
		}
		for _, a := range attrs {
			fmt.Fprintf(&sb, " %s=%s", a.K, a.V)
		}
		sb.WriteByte('\n')
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(s, 1)
	return sb.String()
}

// Find returns the first span named name in a depth-first walk of the tree
// rooted at s (nil when absent) — a test and tooling convenience.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Children returns a copy of the span's current children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Remote returns the serving peer address for adopted spans ("" for local
// spans).
func (s *Span) Remote() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remote
}

// AttrMap returns the span's attributes as a map (last writer wins).
func (s *Span) AttrMap() map[string]string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.attrs))
	for _, a := range s.attrs {
		out[a.K] = a.V
	}
	return out
}

// Tracer samples query traces and ring-buffers the most recent ones. All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// tracer never samples), so components hold an optional *Tracer and call
// it unconditionally.
type Tracer struct {
	sampleEvery atomic.Int64
	seq         atomic.Uint64
	maxSpans    int

	mu sync.Mutex
	// ring holds finished root spans, ring[next-1] most recent; guarded
	// by mu.
	ring []*Span
	// next is the ring cursor, guarded by mu.
	next int
	// n is the total recorded count, guarded by mu.
	n uint64
}

// NewTracer returns a tracer ring-buffering the last ringCap finished
// traces (minimum 1). Sampling starts off; enable with SetSampleEvery.
func NewTracer(ringCap int) *Tracer {
	if ringCap < 1 {
		ringCap = 1
	}
	return &Tracer{ring: make([]*Span, ringCap), maxSpans: defaultMaxSpans}
}

// SetSampleEvery sets the sampling knob: every nth StartTrace call returns
// a real trace; 0 (the initial state) disables sampling entirely, 1 traces
// every query. Safe to adjust at runtime.
func (t *Tracer) SetSampleEvery(n int) {
	if t == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	t.sampleEvery.Store(int64(n))
}

// SampleEvery returns the current sampling knob.
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sampleEvery.Load())
}

// StartTrace starts a new trace when this call is sampled, returning its
// root span — or nil (and no allocation beyond the atomic tick) when
// sampling says skip. End the returned root to record the trace.
func (t *Tracer) StartTrace(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	n := t.sampleEvery.Load()
	if n <= 0 {
		return nil
	}
	if (t.seq.Add(1)-1)%uint64(n) != 0 {
		return nil
	}
	return t.force(name, attrs)
}

// ForceTrace starts a trace regardless of the sampling knob (pdms.Explain
// uses it to trace one specific query on demand).
func (t *Tracer) ForceTrace(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.force(name, attrs)
}

func (t *Tracer) force(name string, attrs []Attr) *Span {
	tr := newTrace(t, t.maxSpans)
	return tr.newSpan(nil, name, attrs)
}

// Record adds a finished root span to the ring buffer. Root spans started
// by this tracer record themselves on End; Record is also useful for
// detached spans (a server recording the request trees it exported to
// callers).
func (t *Tracer) Record(root *Span) {
	if t == nil || root == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = root
	t.next = (t.next + 1) % len(t.ring)
	t.n++
	t.mu.Unlock()
}

// Recorded returns the total number of traces recorded.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Recent returns up to max finished traces, most recent first.
func (t *Tracer) Recent(max int) []*Span {
	if t == nil || max <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if max > len(t.ring) {
		max = len(t.ring)
	}
	out := make([]*Span, 0, max)
	for i := 0; i < max; i++ {
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if t.ring[idx] == nil {
			break
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// RenderRecent renders up to max recent traces as text, most recent
// first.
func (t *Tracer) RenderRecent(max int) string {
	spans := t.Recent(max)
	var sb strings.Builder
	for _, s := range spans {
		sb.WriteString(s.Render())
		sb.WriteByte('\n')
	}
	if sb.Len() == 0 {
		return "(no traces recorded)\n"
	}
	return sb.String()
}
