package lang

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubstApplyChain(t *testing.T) {
	s := Subst{"x": Var("y"), "y": Const("c")}
	if got := s.Apply(Var("x")); got != Const("c") {
		t.Fatalf("chain apply = %v", got)
	}
	if got := s.Apply(Var("z")); got != Var("z") {
		t.Fatalf("unbound apply = %v", got)
	}
	if got := s.Apply(Const("k")); got != Const("k") {
		t.Fatalf("const apply = %v", got)
	}
}

func TestSubstBind(t *testing.T) {
	s := NewSubst()
	if !s.Bind("x", Const("1")) {
		t.Fatal("fresh bind failed")
	}
	if !s.Bind("x", Const("1")) {
		t.Fatal("identical rebind failed")
	}
	if s.Bind("x", Const("2")) {
		t.Fatal("conflicting rebind succeeded")
	}
}

func TestSubstCloneIndependent(t *testing.T) {
	s := Subst{"x": Const("1")}
	c := s.Clone()
	c["y"] = Const("2")
	if _, ok := s["y"]; ok {
		t.Fatal("clone aliases original")
	}
}

func TestUnifyBasic(t *testing.T) {
	tests := []struct {
		name string
		a, b Atom
		ok   bool
	}{
		{"same consts", NewAtom("R", Const("1")), NewAtom("R", Const("1")), true},
		{"diff consts", NewAtom("R", Const("1")), NewAtom("R", Const("2")), false},
		{"var const", NewAtom("R", Var("x")), NewAtom("R", Const("2")), true},
		{"pred mismatch", NewAtom("R", Var("x")), NewAtom("S", Var("x")), false},
		{"arity mismatch", NewAtom("R", Var("x")), NewAtom("R", Var("x"), Var("y")), false},
		{"join forces equal", NewAtom("R", Var("x"), Var("x")), NewAtom("R", Const("1"), Const("2")), false},
		{"join ok", NewAtom("R", Var("x"), Var("x")), NewAtom("R", Const("1"), Const("1")), true},
		{"var var", NewAtom("R", Var("x"), Var("y")), NewAtom("R", Var("y"), Const("3")), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s, ok := Unify(tc.a, tc.b, nil)
			if ok != tc.ok {
				t.Fatalf("Unify ok = %v, want %v (s=%v)", ok, tc.ok, s)
			}
			if ok {
				if got, want := s.ApplyAtom(tc.a), s.ApplyAtom(tc.b); !got.Equal(want) {
					t.Fatalf("unifier does not unify: %v vs %v", got, want)
				}
			}
		})
	}
}

func TestUnifyDoesNotMutateBase(t *testing.T) {
	base := Subst{"z": Const("9")}
	_, ok := Unify(NewAtom("R", Var("x")), NewAtom("R", Const("1")), base)
	if !ok {
		t.Fatal("unify failed")
	}
	if len(base) != 1 {
		t.Fatalf("base mutated: %v", base)
	}
}

func TestUnifyRespectsBase(t *testing.T) {
	base := Subst{"x": Const("1")}
	if _, ok := Unify(NewAtom("R", Var("x")), NewAtom("R", Const("2")), base); ok {
		t.Fatal("unify should honor base binding x=1")
	}
	s, ok := Unify(NewAtom("R", Var("x")), NewAtom("R", Const("1")), base)
	if !ok || s.Apply(Var("x")) != Const("1") {
		t.Fatalf("unify with base: %v %v", s, ok)
	}
}

func TestMatchOneWay(t *testing.T) {
	// Pattern vars bind; target vars are rigid.
	pat := NewAtom("R", Var("x"), Var("x"))
	tgt := NewAtom("R", Var("a"), Var("a"))
	s, ok := Match(pat, tgt, nil)
	if !ok || s.Apply(Var("x")) != Var("a") {
		t.Fatalf("match = %v %v", s, ok)
	}
	// Target var may not be bound: x/x cannot match distinct rigid a,b.
	if _, ok := Match(pat, NewAtom("R", Var("a"), Var("b")), nil); ok {
		t.Fatal("match should fail: pattern join over distinct rigid vars")
	}
	// Constant in pattern must equal target.
	if _, ok := Match(NewAtom("R", Const("1")), NewAtom("R", Const("2")), nil); ok {
		t.Fatal("constant mismatch should fail")
	}
	// Unlike Unify, match must not bind target variables.
	if _, ok := Match(NewAtom("R", Const("1")), NewAtom("R", Var("a")), nil); ok {
		t.Fatal("match must not bind target-side variables")
	}
}

func TestVarSupplyFreshness(t *testing.T) {
	vs := NewVarSupply("_t")
	seen := map[Term]bool{}
	for i := 0; i < 1000; i++ {
		v := vs.Fresh()
		if seen[v] {
			t.Fatalf("duplicate fresh var %v", v)
		}
		seen[v] = true
	}
	a := vs.FreshLike(Var("pid"))
	b := vs.FreshLike(a)
	if a == b || seen[a] || seen[b] {
		t.Fatalf("FreshLike not fresh: %v %v", a, b)
	}
}

// Property: for random unifiable atom pairs, the MGU really unifies them.
func TestUnifyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randTerm := func() Term {
		if rng.Intn(2) == 0 {
			return Var(string(rune('u' + rng.Intn(6))))
		}
		return Const(string(rune('0' + rng.Intn(4))))
	}
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(4)
		a := Atom{Pred: "P", Args: make([]Term, n)}
		b := Atom{Pred: "P", Args: make([]Term, n)}
		for j := 0; j < n; j++ {
			a.Args[j], b.Args[j] = randTerm(), randTerm()
		}
		if s, ok := Unify(a, b, nil); ok {
			if !s.ApplyAtom(a).Equal(s.ApplyAtom(b)) {
				t.Fatalf("MGU fails to unify %v and %v under %v", a, b, s)
			}
		}
	}
}

// Property: applying a renaming from Rename yields a query with the same
// canonical form.
func TestRenamePreservesCanonical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomCQ(rng)
		vs := NewVarSupply("_r")
		r, _ := q.Rename(vs)
		return q.Canonical() == r.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomCQ(rng *rand.Rand) CQ {
	vars := []Term{Var("a"), Var("b"), Var("c"), Var("d")}
	randT := func() Term {
		if rng.Intn(4) == 0 {
			return Const(string(rune('0' + rng.Intn(3))))
		}
		return vars[rng.Intn(len(vars))]
	}
	nb := 1 + rng.Intn(3)
	q := CQ{Head: NewAtom("q", vars[0], vars[1])}
	for i := 0; i < nb; i++ {
		q.Body = append(q.Body, NewAtom(string(rune('R'+rng.Intn(3))), randT(), randT()))
	}
	return q
}
