package lang

import (
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	v := Var("x")
	if !v.IsVar() || v.IsConst() {
		t.Fatalf("Var(x) kind wrong: %+v", v)
	}
	c := Const("5")
	if !c.IsConst() || c.IsVar() {
		t.Fatalf("Const(5) kind wrong: %+v", c)
	}
	if v == c {
		t.Fatal("variable x must differ from constant x")
	}
}

func TestTermString(t *testing.T) {
	tests := []struct {
		in   Term
		want string
	}{
		{Var("x"), "x"},
		{Const("5"), "5"},
		{Const("-3.5"), "-3.5"},
		{Const("abc"), `"abc"`},
		{Const("a b"), `"a b"`},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestCompareConst(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"1", "2", -1},
		{"2", "1", 1},
		{"2", "2", 0},
		{"10", "9", 1}, // numeric, not lexicographic
		{"abc", "abd", -1},
		{"abc", "abc", 0},
		{"10", "abc", -1}, // mixed falls back to string compare: "10" < "abc"
	}
	for _, tc := range tests {
		if got := CompareConst(Const(tc.a), Const(tc.b)); got != tc.want {
			t.Errorf("CompareConst(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom("R", Var("x"), Const("c"), Var("x"), Var("y"))
	if a.Arity() != 4 {
		t.Fatalf("arity = %d", a.Arity())
	}
	vs := a.Vars(nil)
	if len(vs) != 2 || vs[0] != Var("x") || vs[1] != Var("y") {
		t.Fatalf("Vars = %v", vs)
	}
	if !a.HasVar(Var("y")) || a.HasVar(Var("z")) {
		t.Fatal("HasVar wrong")
	}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Args[0] = Const("q")
	if a.Equal(b) {
		t.Fatal("clone aliases original")
	}
	if a.Equal(NewAtom("R", Var("x"))) {
		t.Fatal("arity mismatch should not be equal")
	}
	if a.Equal(NewAtom("S", a.Args...)) {
		t.Fatal("pred mismatch should not be equal")
	}
}

func TestAtomKeyDistinguishesVarConst(t *testing.T) {
	a := NewAtom("R", Var("x"))
	b := NewAtom("R", Const("x"))
	if a.Key() == b.Key() {
		t.Fatal("Key must distinguish Var(x) from Const(x)")
	}
	if a.Key() != NewAtom("R", Var("x")).Key() {
		t.Fatal("Key must be deterministic")
	}
}

func TestCompOpFlipNegate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []CompOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
	for _, op := range ops {
		if op.Flip().Flip() != op {
			t.Errorf("Flip not involutive for %v", op)
		}
		if op.Negate().Negate() != op {
			t.Errorf("Negate not involutive for %v", op)
		}
		// Semantic checks on random constants.
		for i := 0; i < 200; i++ {
			a := Const(itoa(rng.Intn(10)))
			b := Const(itoa(rng.Intn(10)))
			if op.EvalConst(a, b) != op.Flip().EvalConst(b, a) {
				t.Fatalf("%v flip semantics broken on %v,%v", op, a, b)
			}
			if op.EvalConst(a, b) == op.Negate().EvalConst(a, b) {
				t.Fatalf("%v negate semantics broken on %v,%v", op, a, b)
			}
		}
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}

func TestComparisonString(t *testing.T) {
	c := Comparison{Op: OpLE, L: Var("x"), R: Const("5")}
	if got := c.String(); got != "x <= 5" {
		t.Errorf("String = %q", got)
	}
}

func TestComparisonVars(t *testing.T) {
	c := Comparison{Op: OpLT, L: Var("x"), R: Var("y")}
	vs := c.Vars([]Term{Var("x")})
	if len(vs) != 2 || vs[1] != Var("y") {
		t.Fatalf("Vars = %v", vs)
	}
}

// Property: CompareConst is antisymmetric and reflexive over random numeric
// strings.
func TestCompareConstProperties(t *testing.T) {
	f := func(a, b int16) bool {
		ta, tb := Const(int16str(a)), Const(int16str(b))
		if CompareConst(ta, ta) != 0 {
			return false
		}
		return CompareConst(ta, tb) == -CompareConst(tb, ta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func int16str(v int16) string {
	// strconv-free small helper keeps test dependencies minimal.
	neg := v < 0
	x := int(v)
	if neg {
		x = -x
	}
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	s := string(buf[i:])
	if neg {
		return "-" + s
	}
	return s
}

func TestAtomVarsOrderStable(t *testing.T) {
	a := NewAtom("R", Var("b"), Var("a"), Var("b"), Var("c"))
	got := a.Vars(nil)
	want := []Term{Var("b"), Var("a"), Var("c")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Vars order = %v, want %v", got, want)
	}
}

// TestCompareConstFastPathSemantics pins CompareConst against the
// reference two-ParseFloat implementation: the maybeNumeric fast path
// (added so comparison-heavy scans stop allocating strconv syntax errors
// for plainly textual values) must be semantically invisible, including
// for ParseFloat's inf/NaN spellings.
func TestCompareConstFastPathSemantics(t *testing.T) {
	ref := func(a, b string) int {
		fa, ea := strconv.ParseFloat(a, 64)
		fb, eb := strconv.ParseFloat(b, 64)
		if ea == nil && eb == nil {
			switch {
			case fa < fb:
				return -1
			case fa > fb:
				return 1
			default:
				return 0
			}
		}
		return strings.Compare(a, b)
	}
	vals := []string{
		"", "0", "9", "10", "-3", "+4", ".5", "1e5", "o00012345", "region7",
		"inf", "Inf", "Infinity", "-inf", "NaN", "nan", "n3", "n10",
		"abc", "1.2.3", "i", "N", "0x1p2",
	}
	for _, a := range vals {
		for _, b := range vals {
			got := CompareConst(Const(a), Const(b))
			want := ref(a, b)
			if (got < 0) != (want < 0) || (got > 0) != (want > 0) {
				t.Fatalf("CompareConst(%q, %q) = %d, reference %d", a, b, got, want)
			}
		}
	}
}
