package lang

import (
	"fmt"
	"strings"
)

// CQ is a conjunctive query (equivalently a datalog rule):
//
//	Head :- Body[0], ..., Body[n-1], Comps...
//
// With an empty body it denotes a fact template. Set semantics throughout
// (Section 2 of the paper).
type CQ struct {
	Head  Atom
	Body  []Atom
	Comps []Comparison
}

// Clone returns a deep copy.
func (q CQ) Clone() CQ {
	out := CQ{Head: q.Head.Clone()}
	if q.Body != nil {
		out.Body = make([]Atom, len(q.Body))
		for i, a := range q.Body {
			out.Body[i] = a.Clone()
		}
	}
	if q.Comps != nil {
		out.Comps = make([]Comparison, len(q.Comps))
		copy(out.Comps, q.Comps)
	}
	return out
}

// Vars returns the distinct variables of the query in order of first
// occurrence (head first, then body, then comparisons).
func (q CQ) Vars() []Term {
	var vs []Term
	vs = q.Head.Vars(vs)
	for _, a := range q.Body {
		vs = a.Vars(vs)
	}
	for _, c := range q.Comps {
		vs = c.Vars(vs)
	}
	return vs
}

// HeadVars returns the distinct variables of the head.
func (q CQ) HeadVars() []Term { return q.Head.Vars(nil) }

// ExistentialVars returns the distinct variables occurring in the body or
// comparisons but not in the head.
func (q CQ) ExistentialVars() []Term {
	head := map[Term]bool{}
	for _, v := range q.HeadVars() {
		head[v] = true
	}
	var out []Term
	for _, v := range q.Vars() {
		if !head[v] {
			out = append(out, v)
		}
	}
	return out
}

// IsSafe reports whether every head variable appears in the body (range
// restriction). Queries must be safe to be evaluable.
func (q CQ) IsSafe() bool {
	var bodyVars []Term
	for _, a := range q.Body {
		bodyVars = a.Vars(bodyVars)
	}
	for _, v := range q.HeadVars() {
		if !containsTerm(bodyVars, v) {
			return false
		}
	}
	return true
}

// HasProjection reports whether the query projects away any body variable,
// i.e. some body variable does not appear in the head. Theorem 3.2
// distinguishes projection-free equality descriptions.
func (q CQ) HasProjection() bool {
	head := map[Term]bool{}
	for _, v := range q.HeadVars() {
		head[v] = true
	}
	for _, a := range q.Body {
		for _, t := range a.Args {
			if t.IsVar() && !head[t] {
				return true
			}
		}
	}
	return false
}

// Apply returns a copy of q with substitution s applied everywhere.
func (q CQ) Apply(s Subst) CQ {
	return CQ{
		Head:  s.ApplyAtom(q.Head),
		Body:  s.ApplyAtoms(q.Body),
		Comps: s.ApplyComparisons(q.Comps),
	}
}

// Rename returns a copy of q with every variable replaced by a fresh one
// from vs, plus the renaming substitution used.
func (q CQ) Rename(vs *VarSupply) (CQ, Subst) {
	s := NewSubst()
	for _, v := range q.Vars() {
		s[v.Name] = vs.FreshLike(v)
	}
	return q.Apply(s), s
}

// String renders the query as "Head :- Body, Comps." (":- ." for facts).
func (q CQ) String() string {
	var sb strings.Builder
	sb.WriteString(q.Head.String())
	if len(q.Body) > 0 || len(q.Comps) > 0 {
		sb.WriteString(" :- ")
		for i, a := range q.Body {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
		for i, c := range q.Comps {
			if i > 0 || len(q.Body) > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.String())
		}
	}
	return sb.String()
}

// Preds returns the distinct body predicate names in order of first
// occurrence.
func (q CQ) Preds() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range q.Body {
		if !seen[a.Pred] {
			seen[a.Pred] = true
			out = append(out, a.Pred)
		}
	}
	return out
}

// Canonical returns a canonical string for q under variable renaming of the
// *head-argument pattern and body shape with variables numbered by first
// occurrence*. Two queries with the same canonical string are identical up to
// renaming (the converse does not hold for body reorderings; callers that
// need order insensitivity should sort bodies first).
func (q CQ) Canonical() string {
	num := map[string]int{}
	next := 0
	canonTerm := func(t Term) string {
		if t.IsConst() {
			return "=" + t.Name
		}
		i, ok := num[t.Name]
		if !ok {
			i = next
			next++
			num[t.Name] = i
		}
		return fmt.Sprintf("?%d", i)
	}
	var sb strings.Builder
	writeAtom := func(a Atom) {
		sb.WriteString(a.Pred)
		sb.WriteByte('(')
		for i, t := range a.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(canonTerm(t))
		}
		sb.WriteByte(')')
	}
	writeAtom(q.Head)
	sb.WriteString(":-")
	for i, a := range q.Body {
		if i > 0 {
			sb.WriteByte(',')
		}
		writeAtom(a)
	}
	for _, c := range q.Comps {
		sb.WriteByte(',')
		sb.WriteString(canonTerm(c.L))
		sb.WriteString(c.Op.String())
		sb.WriteString(canonTerm(c.R))
	}
	return sb.String()
}

// UCQ is a union of conjunctive queries sharing a head predicate and arity.
type UCQ struct {
	Disjuncts []CQ
}

// Add appends a disjunct.
func (u *UCQ) Add(q CQ) { u.Disjuncts = append(u.Disjuncts, q) }

// Len returns the number of disjuncts.
func (u UCQ) Len() int { return len(u.Disjuncts) }

// String renders each disjunct on its own line.
func (u UCQ) String() string {
	lines := make([]string, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		lines[i] = q.String()
	}
	return strings.Join(lines, "\n")
}

// Validate checks head compatibility across disjuncts.
func (u UCQ) Validate() error {
	if len(u.Disjuncts) == 0 {
		return nil
	}
	h := u.Disjuncts[0].Head
	for _, q := range u.Disjuncts[1:] {
		if q.Head.Pred != h.Pred || q.Head.Arity() != h.Arity() {
			return fmt.Errorf("ucq: incompatible disjunct head %s vs %s", q.Head, h)
		}
	}
	return nil
}
