// Package lang defines the logical core shared by every other package in the
// repository: terms, atoms, conjunctive queries (CQs), unions of conjunctive
// queries (UCQs), datalog rules, substitutions, unification and matching.
//
// The representation follows Section 2 of Halevy et al., "Schema Mediation in
// Peer Data Management Systems" (ICDE 2003): select-project-join queries with
// set semantics written as conjunctive queries, where joins are expressed by
// repeated variables, plus optional comparison predicates.
package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Term is a variable or a constant. The zero value is an unnamed variable,
// which is not valid; construct terms with Var and Const.
type Term struct {
	// Name is the variable name, or the constant's lexical value.
	Name string
	// Kind distinguishes variables from constants.
	Kind TermKind
}

// TermKind discriminates Term.
type TermKind uint8

const (
	// KindVar marks a variable term.
	KindVar TermKind = iota
	// KindConst marks a constant term.
	KindConst
)

// Var returns a variable term with the given name.
func Var(name string) Term { return Term{Name: name, Kind: KindVar} }

// Const returns a constant term with the given lexical value.
func Const(v string) Term { return Term{Name: v, Kind: KindConst} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Kind == KindVar }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return t.Kind == KindConst }

// String renders the term: variables bare, constants double-quoted unless
// they are numeric literals the parser tokenizes back as numbers. The test
// must be the parser's exact number grammar, not strconv.ParseFloat: that
// also accepts "Inf", "1e5" or "0x1p2", which printed bare either fail to
// reparse or — worse — reparse as a *variable*, silently changing the
// query.
func (t Term) String() string {
	if t.IsVar() {
		return t.Name
	}
	if isNumericLexeme(t.Name) {
		return t.Name
	}
	return strconv.Quote(t.Name)
}

// isNumericLexeme reports whether s matches the parser's numeric-literal
// grammar exactly: -?digits(.digits)?.
func isNumericLexeme(s string) bool {
	i := 0
	if i < len(s) && s[i] == '-' {
		i++
	}
	start := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == start {
		return false
	}
	if i == len(s) {
		return true
	}
	if s[i] != '.' {
		return false
	}
	i++
	start = i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	return i > start && i == len(s)
}

// maybeNumeric cheaply rejects values that cannot possibly parse as
// floats, so comparison-heavy scans never pay strconv.ParseFloat's
// allocated syntax error for plainly textual values ("o00123456" vs a
// cutoff used to allocate twice per scanned tuple). The accepted first
// bytes cover every ParseFloat grammar: sign, digit, dot, and the
// case-insensitive inf/NaN spellings.
func maybeNumeric(s string) bool {
	if s == "" {
		return false
	}
	switch c := s[0]; {
	case c >= '0' && c <= '9':
		return true
	case c == '+' || c == '-' || c == '.':
		return true
	case c == 'i' || c == 'I' || c == 'n' || c == 'N':
		return true // inf / Infinity / NaN
	}
	return false
}

// CompareConst orders two constant lexical values: numerically when both
// parse as floats, lexicographically otherwise. It returns -1, 0, or +1.
// Both terms must be constants.
func CompareConst(a, b Term) int {
	if !maybeNumeric(a.Name) || !maybeNumeric(b.Name) {
		return strings.Compare(a.Name, b.Name)
	}
	fa, ea := strconv.ParseFloat(a.Name, 64)
	fb, eb := strconv.ParseFloat(b.Name, 64)
	if ea == nil && eb == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.Name, b.Name)
}

// Atom is a predicate applied to a list of terms. Pred names are globally
// unique: peer relations use the "Peer:Relation" convention and stored
// relations use "Peer.Relation" (Section 2 assumes global uniqueness).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// Vars appends the distinct variables of a, in order of first occurrence,
// to dst and returns the extended slice.
func (a Atom) Vars(dst []Term) []Term {
	for _, t := range a.Args {
		if t.IsVar() && !containsTerm(dst, t) {
			dst = append(dst, t)
		}
	}
	return dst
}

// HasVar reports whether variable v occurs in the atom.
func (a Atom) HasVar(v Term) bool {
	for _, t := range a.Args {
		if t == v {
			return true
		}
	}
	return false
}

// Equal reports structural equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// String renders the atom as Pred(t1, ..., tn).
func (a Atom) String() string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Key returns a canonical map key for the atom (used for memoization and
// set membership). Distinct atoms have distinct keys.
func (a Atom) Key() string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('/')
	for _, t := range a.Args {
		if t.IsVar() {
			sb.WriteByte('?')
		} else {
			sb.WriteByte('=')
		}
		sb.WriteString(t.Name)
		sb.WriteByte(';')
	}
	return sb.String()
}

func containsTerm(ts []Term, t Term) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// CompOp is a comparison operator for comparison predicates.
type CompOp uint8

// Comparison operators. The paper's language allows =, < (and by symmetry
// the remaining standard operators); we support the full set.
const (
	OpEQ CompOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// String renders the operator.
func (op CompOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return fmt.Sprintf("CompOp(%d)", uint8(op))
	}
}

// Flip returns the operator with its operands swapped: a op b  ==  b op.Flip() a.
func (op CompOp) Flip() CompOp {
	switch op {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default: // = and != are symmetric
		return op
	}
}

// Negate returns the complementary operator: NOT (a op b) == a op.Negate() b.
func (op CompOp) Negate() CompOp {
	switch op {
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	case OpLT:
		return OpGE
	case OpLE:
		return OpGT
	case OpGT:
		return OpLE
	case OpGE:
		return OpLT
	}
	return op
}

// EvalConst evaluates the operator over two constant terms.
func (op CompOp) EvalConst(a, b Term) bool {
	c := CompareConst(a, b)
	switch op {
	case OpEQ:
		return c == 0
	case OpNE:
		return c != 0
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpGT:
		return c > 0
	case OpGE:
		return c >= 0
	}
	return false
}

// Comparison is a comparison predicate L op R over terms.
type Comparison struct {
	Op   CompOp
	L, R Term
}

// String renders the comparison.
func (c Comparison) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

// Vars appends the distinct variables of c not already in dst.
func (c Comparison) Vars(dst []Term) []Term {
	if c.L.IsVar() && !containsTerm(dst, c.L) {
		dst = append(dst, c.L)
	}
	if c.R.IsVar() && !containsTerm(dst, c.R) {
		dst = append(dst, c.R)
	}
	return dst
}
