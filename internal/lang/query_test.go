package lang

import (
	"strings"
	"testing"
)

func cq(head Atom, body ...Atom) CQ { return CQ{Head: head, Body: body} }

func TestCQVarsAndExistentials(t *testing.T) {
	q := cq(NewAtom("q", Var("x")),
		NewAtom("R", Var("x"), Var("y")),
		NewAtom("S", Var("y"), Var("z")))
	vs := q.Vars()
	if len(vs) != 3 {
		t.Fatalf("Vars = %v", vs)
	}
	ex := q.ExistentialVars()
	if len(ex) != 2 || ex[0] != Var("y") || ex[1] != Var("z") {
		t.Fatalf("ExistentialVars = %v", ex)
	}
}

func TestCQIsSafe(t *testing.T) {
	safe := cq(NewAtom("q", Var("x")), NewAtom("R", Var("x")))
	if !safe.IsSafe() {
		t.Fatal("safe query reported unsafe")
	}
	unsafe := cq(NewAtom("q", Var("x")), NewAtom("R", Var("y")))
	if unsafe.IsSafe() {
		t.Fatal("unsafe query reported safe")
	}
}

func TestCQHasProjection(t *testing.T) {
	proj := cq(NewAtom("q", Var("x")), NewAtom("R", Var("x"), Var("y")))
	if !proj.HasProjection() {
		t.Fatal("projection not detected")
	}
	noProj := cq(NewAtom("q", Var("x"), Var("y")), NewAtom("R", Var("x"), Var("y")))
	if noProj.HasProjection() {
		t.Fatal("projection-free query misreported")
	}
}

func TestCQCloneDeep(t *testing.T) {
	q := cq(NewAtom("q", Var("x")), NewAtom("R", Var("x"), Var("y")))
	q.Comps = []Comparison{{Op: OpLT, L: Var("y"), R: Const("5")}}
	c := q.Clone()
	c.Body[0].Args[0] = Const("z")
	c.Comps[0].Op = OpGE
	if q.Body[0].Args[0] != Var("x") || q.Comps[0].Op != OpLT {
		t.Fatal("Clone shares storage with original")
	}
}

func TestCQString(t *testing.T) {
	q := cq(NewAtom("q", Var("x")), NewAtom("R", Var("x"), Const("a")))
	q.Comps = []Comparison{{Op: OpNE, L: Var("x"), R: Const("0")}}
	got := q.String()
	want := `q(x) :- R(x, "a"), x != 0`
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	fact := CQ{Head: NewAtom("p", Const("1"))}
	if fact.String() != "p(1)" {
		t.Fatalf("fact String = %q", fact.String())
	}
}

func TestCQCanonicalRenamingInvariance(t *testing.T) {
	q1 := cq(NewAtom("q", Var("x")), NewAtom("R", Var("x"), Var("y")))
	q2 := cq(NewAtom("q", Var("u")), NewAtom("R", Var("u"), Var("w")))
	if q1.Canonical() != q2.Canonical() {
		t.Fatal("alpha-equivalent queries must share canonical form")
	}
	q3 := cq(NewAtom("q", Var("x")), NewAtom("R", Var("y"), Var("x")))
	if q1.Canonical() == q3.Canonical() {
		t.Fatal("structurally different queries must differ canonically")
	}
	// Constants distinguish.
	q4 := cq(NewAtom("q", Var("x")), NewAtom("R", Var("x"), Const("y")))
	if q1.Canonical() == q4.Canonical() {
		t.Fatal("const vs var must differ canonically")
	}
}

func TestCQPreds(t *testing.T) {
	q := cq(NewAtom("q", Var("x")),
		NewAtom("R", Var("x")), NewAtom("S", Var("x")), NewAtom("R", Var("x")))
	ps := q.Preds()
	if len(ps) != 2 || ps[0] != "R" || ps[1] != "S" {
		t.Fatalf("Preds = %v", ps)
	}
}

func TestCQApplyComps(t *testing.T) {
	q := cq(NewAtom("q", Var("x")), NewAtom("R", Var("x"), Var("y")))
	q.Comps = []Comparison{{Op: OpLT, L: Var("y"), R: Var("z")}}
	s := Subst{"y": Const("3"), "z": Const("4")}
	r := q.Apply(s)
	if r.Comps[0].L != Const("3") || r.Comps[0].R != Const("4") {
		t.Fatalf("Apply did not reach comparisons: %v", r.Comps)
	}
}

func TestUCQValidate(t *testing.T) {
	var u UCQ
	if err := u.Validate(); err != nil {
		t.Fatalf("empty UCQ: %v", err)
	}
	u.Add(cq(NewAtom("q", Var("x")), NewAtom("R", Var("x"))))
	u.Add(cq(NewAtom("q", Var("y")), NewAtom("S", Var("y"))))
	if err := u.Validate(); err != nil {
		t.Fatalf("compatible UCQ: %v", err)
	}
	if u.Len() != 2 {
		t.Fatalf("Len = %d", u.Len())
	}
	u.Add(cq(NewAtom("q", Var("x"), Var("y")), NewAtom("R", Var("x"), Var("y"))))
	if err := u.Validate(); err == nil {
		t.Fatal("arity mismatch not detected")
	}
	if !strings.Contains(u.String(), "\n") {
		t.Fatal("String should be multi-line")
	}
}

func TestRenameProducesDisjointVars(t *testing.T) {
	q := cq(NewAtom("q", Var("x")), NewAtom("R", Var("x"), Var("y")))
	vs := NewVarSupply("")
	r, s := q.Rename(vs)
	orig := map[Term]bool{Var("x"): true, Var("y"): true}
	for _, v := range r.Vars() {
		if orig[v] {
			t.Fatalf("renamed query reuses original var %v", v)
		}
	}
	if s.Apply(Var("x")) == Var("x") {
		t.Fatal("renaming substitution missing x")
	}
}
