package lang

import (
	"fmt"
	"sort"
	"strings"
)

// Subst is a substitution from variable names to terms. Applying a
// substitution replaces each variable with its image; unbound variables are
// left untouched. Substitutions are not required to be idempotent in general,
// but unification produces idempotent most-general unifiers.
type Subst map[string]Term

// NewSubst returns an empty substitution.
func NewSubst() Subst { return make(Subst) }

// Clone returns a copy of s.
func (s Subst) Clone() Subst {
	c := make(Subst, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Bind adds the binding v -> t, returning false if v is already bound to a
// different term.
func (s Subst) Bind(v string, t Term) bool {
	if old, ok := s[v]; ok {
		return old == t
	}
	s[v] = t
	return true
}

// Apply returns the image of a term under s (walking chains of variable
// bindings to a fixed point).
func (s Subst) Apply(t Term) Term {
	for t.IsVar() {
		next, ok := s[t.Name]
		if !ok || next == t {
			return t
		}
		t = next
	}
	return t
}

// ApplyAtom returns a copy of the atom with s applied to every argument.
func (s Subst) ApplyAtom(a Atom) Atom {
	out := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = s.Apply(t)
	}
	return out
}

// ApplyAtoms maps ApplyAtom over a slice.
func (s Subst) ApplyAtoms(as []Atom) []Atom {
	out := make([]Atom, len(as))
	for i, a := range as {
		out[i] = s.ApplyAtom(a)
	}
	return out
}

// ApplyComparison applies s to both sides of a comparison.
func (s Subst) ApplyComparison(c Comparison) Comparison {
	return Comparison{Op: c.Op, L: s.Apply(c.L), R: s.Apply(c.R)}
}

// ApplyComparisons maps ApplyComparison over a slice.
func (s Subst) ApplyComparisons(cs []Comparison) []Comparison {
	out := make([]Comparison, len(cs))
	for i, c := range cs {
		out[i] = s.ApplyComparison(c)
	}
	return out
}

// String renders the substitution deterministically, for debugging.
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s->%s", k, s[k].String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// Unify computes a most-general unifier of atoms a and b, extending base
// (which may be nil). It returns the extended substitution and true on
// success, or nil and false if the atoms do not unify. base is not modified.
func Unify(a, b Atom, base Subst) (Subst, bool) {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return nil, false
	}
	s := base.Clone()
	if s == nil {
		s = NewSubst()
	}
	for i := range a.Args {
		if !unifyTerm(s, a.Args[i], b.Args[i]) {
			return nil, false
		}
	}
	return s, true
}

func unifyTerm(s Subst, x, y Term) bool {
	x, y = s.Apply(x), s.Apply(y)
	switch {
	case x == y:
		return true
	case x.IsVar():
		s[x.Name] = y
		return true
	case y.IsVar():
		s[y.Name] = x
		return true
	default: // distinct constants
		return false
	}
}

// Match computes a one-way matcher from pattern onto target: a substitution s
// binding only variables of pattern such that s(pattern) == target. Variables
// in target are treated as constants (they may be bound *to*, not bound).
// base is not modified.
func Match(pattern, target Atom, base Subst) (Subst, bool) {
	if pattern.Pred != target.Pred || len(pattern.Args) != len(target.Args) {
		return nil, false
	}
	s := base.Clone()
	if s == nil {
		s = NewSubst()
	}
	patVars := map[string]bool{}
	for _, v := range pattern.Vars(nil) {
		patVars[v.Name] = true
	}
	for i := range pattern.Args {
		p := s.Apply(pattern.Args[i])
		t := target.Args[i]
		switch {
		case p == t:
		case p.IsVar() && patVars[p.Name]:
			s[p.Name] = t
		default:
			return nil, false
		}
	}
	return s, true
}

// VarSupply produces globally fresh variables. It is not safe for concurrent
// use; each reformulation run owns its own supply.
type VarSupply struct {
	prefix string
	n      int
}

// NewVarSupply returns a supply generating variables named prefix0, prefix1, …
// The conventional prefix "_x" cannot collide with parsed user variables,
// which may not start with '_'.
func NewVarSupply(prefix string) *VarSupply {
	if prefix == "" {
		prefix = "_x"
	}
	return &VarSupply{prefix: prefix}
}

// Fresh returns the next fresh variable.
func (vs *VarSupply) Fresh() Term {
	t := Var(fmt.Sprintf("%s%d", vs.prefix, vs.n))
	vs.n++
	return t
}

// FreshLike returns a fresh variable whose name hints at the original (for
// readable output), still guaranteed unique.
func (vs *VarSupply) FreshLike(orig Term) Term {
	base := orig.Name
	if i := strings.IndexByte(base, '#'); i >= 0 {
		base = base[:i]
	}
	t := Var(fmt.Sprintf("%s#%d", base, vs.n))
	vs.n++
	return t
}
