// Package analysis is a small, dependency-free static-analysis framework
// mirroring the shape of golang.org/x/tools/go/analysis: an Analyzer
// inspects one type-checked package through a Pass and reports
// Diagnostics. It exists because this module is deliberately stdlib-only;
// the subset implemented here (per-package syntax + types, no facts, no
// cross-analyzer requires) is exactly what the repo's invariant checkers
// in the sibling packages (lockcheck, gencheck, spancheck, yieldcheck)
// need.
//
// The Loader (load.go) type-checks packages from source, resolving every
// import through compiler export data obtained from `go list -export`, so
// running the suite needs nothing beyond the Go toolchain and a warm
// build cache. The driver entry point is Run, which applies analyzers to
// loaded packages and filters findings through `//lint:ignore` directives
// (ignore.go). cmd/lintcheck is the command-line front end.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in findings and in lint:ignore
	// directives. By convention a short lowercase word ("lockcheck").
	Name string
	// Doc states the invariant the analyzer enforces.
	Doc string
	// Run inspects one package and reports violations via pass.Report.
	Run func(*Pass) error
}

// Pass connects an Analyzer to one loaded package.
type Pass struct {
	// Analyzer is the checker being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the package.
	Fset *token.FileSet
	// Files holds the package's parsed syntax (non-test files only).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type and object resolution for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic: position translated through the file
// set and stamped with the analyzer that produced it.
type Finding struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package and returns the surviving
// findings, sorted by position. Findings on lines covered by a
// `//lint:ignore <analyzers> <reason>` directive (see ignore.go) are
// dropped; malformed directives are themselves reported.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		ig, igFindings := collectIgnores(pkg.Fset, pkg.Files)
		out = append(out, igFindings...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			var diags []Diagnostic
			pass.Report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if ig.suppresses(a.Name, pos) {
					continue
				}
				out = append(out, Finding{Pos: pos, Message: d.Message, Analyzer: a.Name})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// WalkStack walks the AST rooted at root in depth-first order, calling fn
// for every node with the stack of its ancestors (outermost first, not
// including n itself). Returning false prunes the subtree below n.
func WalkStack(root ast.Node, fn func(stack []ast.Node, n ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(stack, n) {
			// Not pushed: a pruned node gets no post-order nil callback.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
