package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader type-checks packages from source using only the standard
// library. Imports are resolved through compiler export data located with
// `go list -export`, so nothing outside the Go toolchain (and its build
// cache) is required — the module deliberately has no dependencies, and
// this keeps the lint suite runnable in that world.
//
// Two resolution modes compose:
//
//   - module mode (Load): patterns are resolved by `go list` relative to
//     Dir; target packages are parsed and type-checked from source, every
//     import (stdlib or intra-module) comes from export data.
//   - source-root mode (SrcRoot non-empty): an import path whose
//     directory exists under SrcRoot is type-checked from source there,
//     recursively. This serves the analysistest GOPATH-style testdata
//     layout, where fixture packages import sibling fixtures.
type Loader struct {
	// Dir is the directory `go list` runs in (the module root). Empty
	// means the current directory.
	Dir string
	// SrcRoot, when non-empty, is a GOPATH-src-style root consulted
	// before export data: import path p resolves to SrcRoot/p.
	SrcRoot string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	gc      types.Importer    // export-data importer
	srcPkgs map[string]*types.Package
	loading map[string]bool // cycle detection for source resolution
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

func (l *Loader) init() {
	if l.fset != nil {
		return
	}
	l.fset = token.NewFileSet()
	l.exports = map[string]string{}
	l.srcPkgs = map[string]*types.Package{}
	l.loading = map[string]bool{}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// goList runs `go list` with the given arguments and decodes the JSON
// package stream.
func (l *Loader) goList(args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := &listPkg{}
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Dir,Name,Standard,Export,GoFiles,Error,DepsErrors"

// Load resolves the go-list patterns and returns the matched packages,
// parsed and type-checked from source. Packages without buildable Go
// files (e.g. testdata) never match; a package that fails to compile is
// an error — the lint suite runs on building code.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	// One -deps walk compiles (or reuses from the build cache) everything
	// the targets need and reports each dependency's export data file.
	all, err := l.goList(append([]string{"-e", "-export", "-deps", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	meta := map[string]*listPkg{}
	for _, p := range all {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		meta[p.ImportPath] = p
	}
	// A second, dependency-free resolution names the targets themselves.
	targets, err := l.goList(append([]string{listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, t := range targets {
		m := meta[t.ImportPath]
		if m == nil {
			m = t
		}
		if m.Error != nil {
			return nil, fmt.Errorf("%s: %s", m.ImportPath, m.Error.Err)
		}
		if len(m.GoFiles) == 0 {
			continue
		}
		pkg, err := l.checkDir(m.ImportPath, m.Dir, m.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadSource loads one package from SrcRoot by import path, type-checking
// it and any SrcRoot-resident imports from source.
func (l *Loader) LoadSource(pkgpath string) (*Package, error) {
	l.init()
	if l.SrcRoot == "" {
		return nil, fmt.Errorf("LoadSource %q: loader has no SrcRoot", pkgpath)
	}
	dir := filepath.Join(l.SrcRoot, filepath.FromSlash(pkgpath))
	files, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if err := l.ensureExternalExports(pkgpath); err != nil {
		return nil, err
	}
	return l.checkDir(pkgpath, dir, files)
}

// sourceFiles lists the non-test .go files of dir, sorted.
func sourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go source files", dir)
	}
	return files, nil
}

// ensureExternalExports walks the SrcRoot package graph reachable from
// pkgpath, collects every import that does not resolve inside SrcRoot and
// fetches export data for the whole set with one `go list` call.
func (l *Loader) ensureExternalExports(pkgpath string) error {
	seen := map[string]bool{}
	external := map[string]bool{}
	var walk func(p string) error
	walk = func(p string) error {
		if seen[p] {
			return nil
		}
		seen[p] = true
		dir := filepath.Join(l.SrcRoot, filepath.FromSlash(p))
		files, err := sourceFiles(dir)
		if err != nil {
			return err
		}
		for _, name := range files {
			f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if st, err := os.Stat(filepath.Join(l.SrcRoot, filepath.FromSlash(ip))); err == nil && st.IsDir() {
					if err := walk(ip); err != nil {
						return err
					}
				} else if ip != "unsafe" {
					external[ip] = true
				}
			}
		}
		return nil
	}
	if err := walk(pkgpath); err != nil {
		return err
	}
	var missing []string
	for p := range external {
		if _, ok := l.exports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	all, err := l.goList(append([]string{"-e", "-export", "-deps", listFields}, missing...)...)
	if err != nil {
		return err
	}
	for _, p := range all {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// checkDir parses and type-checks one package's files.
func (l *Loader) checkDir(pkgpath, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(pkgpath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", pkgpath, err)
	}
	return &Package{PkgPath: pkgpath, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// loaderImporter resolves imports during type checking: SrcRoot source
// packages first (recursively), export data for everything else.
type loaderImporter Loader

func (imp *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(imp)
	if p, ok := l.srcPkgs[path]; ok {
		return p, nil
	}
	if l.SrcRoot != "" {
		dir := filepath.Join(l.SrcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			if l.loading[path] {
				return nil, fmt.Errorf("import cycle through %q", path)
			}
			l.loading[path] = true
			defer delete(l.loading, path)
			files, err := sourceFiles(dir)
			if err != nil {
				return nil, err
			}
			pkg, err := l.checkDir(path, dir, files)
			if err != nil {
				return nil, err
			}
			l.srcPkgs[path] = pkg.Types
			return pkg.Types, nil
		}
	}
	return l.gc.Import(path)
}
