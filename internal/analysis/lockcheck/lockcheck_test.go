package lockcheck

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "../../..", "testdata/src", Analyzer, "lockfix")
}
