// Package lockfix is the lockcheck fixture: annotated guarded fields
// accessed with and without their mutexes held.
package lockfix

import "sync"

// box carries machine-checked guard annotations.
type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	// n is guarded by mu.
	n int
	m map[string]int // guarded by rw
	// free is guarded by the box's own bookkeeping (no field name: the
	// annotation is prose, not machine-checked).
	free int
	// plain has no guard annotation at all.
	plain int
}

// GoodLock accesses n under mu.
func (b *box) GoodLock() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// GoodRLock accesses m under the read half of rw.
func (b *box) GoodRLock() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.m["k"]
}

// BadDirect reads n without any lock.
func (b *box) BadDirect() int {
	return b.n // want "b.n is guarded by mu"
}

// BadWrongMutex holds mu while touching the rw-guarded map.
func (b *box) BadWrongMutex() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m["k"] = 1 // want "b.m is guarded by rw"
}

// BadWrongBase locks one box and touches another.
func BadWrongBase(a, b *box) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.n // want "b.n is guarded by mu"
}

// incLocked is exempt by the *Locked naming convention.
func (b *box) incLocked() {
	b.n++
}

// GoodClosure acquires in the enclosing function; the closure inherits
// the position-based hold.
func (b *box) GoodClosure() func() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := func() int { return b.n }
	return f
}

// BadClosure accesses inside a closure with no acquisition anywhere in
// the enclosing declaration.
func (b *box) BadClosure() func() int {
	return func() int { return b.n } // want "b.n is guarded by mu"
}

// GoodComposite builds a fresh unshared value with a composite literal.
func GoodComposite(n int) *box {
	return &box{n: n, m: map[string]int{}}
}

// GoodProse may access free without locks: its guard comment names no
// sibling mutex field, so it is not machine-checked.
func (b *box) GoodProse() int { return b.free + b.plain }
