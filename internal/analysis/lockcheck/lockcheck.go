// Package lockcheck enforces the repo's documented lock discipline: a
// struct field whose doc or line comment says "guarded by <mu>" — where
// <mu> names a sibling sync.Mutex or sync.RWMutex field — may only be
// accessed in functions that acquired that mutex first.
//
// The check is intraprocedural and position-based: within one top-level
// function (closures included), an access `x.f` to a guarded field is a
// violation unless a call `x.mu.Lock()` or `x.mu.RLock()` on the same
// mutex field, spelled with the syntactically identical base expression
// `x`, appears earlier in the source. Functions whose name ends in
// "Locked" are exempt — that suffix is the repo's existing convention for
// "caller holds the lock" (see pdms.reformulateCQLocked). Fresh, not yet
// published values should be built with composite literals (which the
// checker does not treat as field accesses) rather than field-at-a-time
// writes.
//
// Freeform guard prose whose captured word does not name a sibling mutex
// field ("guarded by the shard's own mutex") is ignored, so existing
// comments keep their meaning; the machine-checked form is the exact
// field name: "guarded by mu".
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockcheck entry point.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "fields documented as \"guarded by <mu>\" must only be accessed with that mutex held",
	Run:  run,
}

// guardRe captures the guard field name from a comment.
var guardRe = regexp.MustCompile(`(?i:guarded by) ([A-Za-z_][A-Za-z0-9_]*)`)

func run(pass *analysis.Pass) error {
	// guarded maps each annotated field object to its guarding mutex
	// field object.
	guarded := map[types.Object]types.Object{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			collectGuards(pass, st, guarded)
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // repo convention: the caller holds the lock
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuards records the guarded fields of one struct type.
func collectGuards(pass *analysis.Pass, st *ast.StructType, guarded map[types.Object]types.Object) {
	// First index the struct's mutex fields by name.
	mutexes := map[string]types.Object{}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isMutex(obj.Type()) {
				mutexes[name.Name] = obj
			}
		}
	}
	if len(mutexes) == 0 {
		return
	}
	for _, field := range st.Fields.List {
		text := ""
		if field.Doc != nil {
			text += field.Doc.Text()
		}
		if field.Comment != nil {
			text += " " + field.Comment.Text()
		}
		var mu types.Object
		for _, m := range guardRe.FindAllStringSubmatch(text, -1) {
			if obj, ok := mutexes[m[1]]; ok {
				mu = obj
				break
			}
		}
		if mu == nil {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && obj != mu {
				guarded[obj] = mu
			}
		}
	}
}

// isMutex reports whether t is sync.Mutex, sync.RWMutex, or a pointer to
// one.
func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// acquisition is one x.mu.Lock()/RLock() call site.
type acquisition struct {
	mu   types.Object // the mutex field object
	base string       // the spelling of x
	pos  int          // source offset ordering within the function
}

// checkFunc flags guarded-field accesses not preceded by a matching
// acquisition in fd.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[types.Object]types.Object) {
	var acquired []acquisition
	type access struct {
		sel  *ast.SelectorExpr
		mu   types.Object
		base string
		pos  int
	}
	var accesses []access

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			method, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || (method.Sel.Name != "Lock" && method.Sel.Name != "RLock") {
				return true
			}
			muSel, ok := method.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[muSel.Sel]
			if obj == nil || !isMutex(obj.Type()) {
				return true
			}
			acquired = append(acquired, acquisition{
				mu:   obj,
				base: types.ExprString(muSel.X),
				pos:  int(n.Pos()),
			})
		case *ast.SelectorExpr:
			sel := pass.TypesInfo.Selections[n]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			mu, ok := guarded[sel.Obj()]
			if !ok {
				return true
			}
			accesses = append(accesses, access{
				sel:  n,
				mu:   mu,
				base: types.ExprString(n.X),
				pos:  int(n.Pos()),
			})
		}
		return true
	})

	for _, acc := range accesses {
		held := false
		for _, acq := range acquired {
			if acq.mu == acc.mu && acq.base == acc.base && acq.pos < acc.pos {
				held = true
				break
			}
		}
		if !held {
			pass.Reportf(acc.sel.Sel.Pos(),
				"%s.%s is guarded by %s but accessed without a preceding %s.%s.Lock/RLock in %s (suffix the function name with Locked if its callers hold the lock)",
				acc.base, acc.sel.Sel.Name, acc.mu.Name(), acc.base, acc.mu.Name(), fd.Name.Name)
		}
	}
}
