// Package spanuse is the spancheck fixture for the metric-name contract.
package spanuse

import "obs"

// goodPrefix is a named constant: still compile-time checkable.
const goodPrefix = "engine.parallel_scans"

// Register exercises legal and illegal metric names.
func Register(r *obs.Registry, dynamic string) {
	r.Counter("server.requests")
	r.Counter(goodPrefix)
	r.Gauge("fragcache.bytes")
	r.Histogram("pdms.query_seconds")
	r.RegisterHistogram("server.request_seconds", nil)
	r.RegisterGroup("wire", func(em *obs.Emitter) {
		em.Counter("rows_fetched", 1)
		em.Gauge("max_frame_bytes", 2)
		em.Counter("Bad_Case", 3) // want "violates the lowercase-dotted naming contract"
		em.Gauge("trailing.", 4)  // want "violates the lowercase-dotted naming contract"
	})
	r.Counter("Server.Requests")    // want "violates the lowercase-dotted naming contract"
	r.Counter("server..requests")   // want "violates the lowercase-dotted naming contract"
	r.Counter("9starts.with.digit") // want "violates the lowercase-dotted naming contract"
	r.Counter(dynamic)              // want "must be a compile-time string constant"
	r.Counter("prefix." + dynamic)  // want "must be a compile-time string constant"
	r.RegisterGroup(dynamic, nil)   // want "must be a compile-time string constant"
}
