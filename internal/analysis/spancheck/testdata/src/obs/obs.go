// Package obs is the spancheck fixture stub mirroring the real
// observability package's contracts.
package obs

import "sync"

// Span is one trace node. All methods are safe on a nil receiver.
type Span struct {
	mu    sync.Mutex
	name  string
	attrs []string
}

// Name returns the span name (guarded: idiomatic).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Set appends an attribute after an ||-combined guard.
func (s *Span) Set(k string) {
	if s == nil || k == "" {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, k)
	s.mu.Unlock()
}

// SetTwo delegates without touching fields: no guard needed.
func (s *Span) SetTwo(k, v string) { s.Set(k + "=" + v) }

// BadName reads a field with no guard.
func (s *Span) BadName() string {
	return s.name // want "method Span.BadName touches receiver state without a nil-receiver guard"
}

// BadLateGuard checks nil only after the access.
func (s *Span) BadLateGuard() string {
	n := s.name // want "method Span.BadLateGuard touches receiver state without a nil-receiver guard"
	if s == nil {
		return ""
	}
	return n
}

// BadDeref copies through the pointer without a guard.
func (s *Span) BadDeref() Span {
	return *s // want "method Span.BadDeref touches receiver state without a nil-receiver guard"
}

// BadUselessGuard checks nil but does not return.
func (s *Span) BadUselessGuard() string {
	if s == nil {
		_ = 0
	}
	return s.name // want "method Span.BadUselessGuard touches receiver state without a nil-receiver guard"
}

// fill is an unexported helper: its exported callers hold the guard, so
// it is out of the contract's scope.
func (s *Span) fill(k string) { s.attrs = append(s.attrs, k) }

// plain has no nil-receiver promise, so its methods are unconstrained.
type plain struct{ n int }

func (p *plain) get() int { return p.n }

// Registry is the metric namespace stub.
type Registry struct{ names []string }

// Counter registers a counter name.
func (r *Registry) Counter(name string) { r.names = append(r.names, name) }

// Gauge registers a gauge name.
func (r *Registry) Gauge(name string) { r.names = append(r.names, name) }

// Histogram registers a histogram name.
func (r *Registry) Histogram(name string) { r.names = append(r.names, name) }

// RegisterHistogram attaches an existing histogram.
func (r *Registry) RegisterHistogram(name string, h any) { r.names = append(r.names, name) }

// RegisterGroup registers a snapshot group under a prefix.
func (r *Registry) RegisterGroup(prefix string, fn func(*Emitter)) { r.names = append(r.names, prefix) }

// Emitter receives one group's values.
type Emitter struct{ names []string }

// Counter emits one counter value.
func (em *Emitter) Counter(name string, v uint64) { em.names = append(em.names, name) }

// Gauge emits one gauge value.
func (em *Emitter) Gauge(name string, v int64) { em.names = append(em.names, name) }
