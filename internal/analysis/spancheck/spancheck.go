// Package spancheck enforces the two API contracts of the observability
// layer (PR 6):
//
//  1. Nil-receiver safety. A type whose doc comment promises "safe on a
//     nil receiver" (obs.Span, obs.Tracer — sampling off means nil spans
//     flow everywhere) must honor it in every pointer-receiver method: a
//     method that touches receiver state must first bail out on a nil
//     receiver — exported methods only; unexported helpers are the
//     guarded methods' private territory. The checker flags receiver
//     field accesses and dereferences not preceded by an
//     `if recv == nil { return ... }` guard; methods that only delegate
//     (no direct field access) need no guard.
//
//  2. Stable metric names. Arguments naming metrics — the first argument
//     of Counter/Gauge/Histogram/RegisterHistogram/RegisterGroup on
//     obs.Registry and of Counter/Gauge on obs.Emitter — must be compile-
//     time string constants matching the lowercase-dotted contract
//     ^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$. Dashboards and alerts key on
//     these names; a runtime-built or mixed-case name silently forks the
//     time series.
package spancheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the spancheck entry point.
var Analyzer = &analysis.Analyzer{
	Name: "spancheck",
	Doc:  "nil-receiver-safe obs types must guard their methods; metric names are literal and lowercase-dotted",
	Run:  run,
}

// nilSafeRe marks a type doc as promising nil-receiver safety.
var nilSafeRe = regexp.MustCompile(`(?i)nil receiver`)

// metricNameRe is the lowercase-dotted naming contract.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// metricMethods maps obs type name -> method names whose first argument
// is a metric name.
var metricMethods = map[string]map[string]bool{
	"Registry": {"Counter": true, "Gauge": true, "Histogram": true, "RegisterHistogram": true, "RegisterGroup": true},
	"Emitter":  {"Counter": true, "Gauge": true},
}

func run(pass *analysis.Pass) error {
	checkNilGuards(pass)
	checkMetricNames(pass)
	return nil
}

// checkNilGuards applies rule 1 to the current package's own types.
func checkNilGuards(pass *analysis.Pass) {
	nilSafe := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				doc := ""
				if ts.Doc != nil {
					doc = ts.Doc.Text()
				} else if len(gd.Specs) == 1 && gd.Doc != nil {
					doc = gd.Doc.Text()
				}
				if nilSafeRe.MatchString(doc) {
					if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
						nilSafe[obj] = true
					}
				}
			}
		}
	}
	if len(nilSafe) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			if !fd.Name.IsExported() {
				continue // the contract covers the public API surface
			}
			recv := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
			if recv == nil {
				continue
			}
			ptr, ok := recv.Type().(*types.Pointer)
			if !ok {
				continue
			}
			named, ok := ptr.Elem().(*types.Named)
			if !ok || !nilSafe[named.Obj()] {
				continue
			}
			checkMethodGuard(pass, fd, recv)
		}
	}
}

// checkMethodGuard flags the first unguarded receiver-state access in fd.
func checkMethodGuard(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) {
	var firstAccess ast.Node
	guardPos := token.Pos(-1)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != recv {
				return true
			}
			if s := pass.TypesInfo.Selections[n]; s != nil && s.Kind() == types.FieldVal {
				if firstAccess == nil || n.Pos() < firstAccess.Pos() {
					firstAccess = n
				}
			}
		case *ast.StarExpr:
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
				if firstAccess == nil || n.Pos() < firstAccess.Pos() {
					firstAccess = n
				}
			}
		case *ast.IfStmt:
			if guardPos < 0 && condChecksNil(pass, n.Cond, recv) && containsReturn(n.Body) {
				guardPos = n.Pos()
			}
		}
		return true
	})
	if firstAccess == nil {
		return // delegating method: nothing to guard
	}
	if guardPos < 0 || guardPos > firstAccess.Pos() {
		pass.Reportf(firstAccess.Pos(),
			"method %s.%s touches receiver state without a nil-receiver guard, but %s promises \"safe on a nil receiver\"",
			recvTypeName(recv), fd.Name.Name, recvTypeName(recv))
	}
}

// recvTypeName names the receiver's element type.
func recvTypeName(recv types.Object) string {
	if ptr, ok := recv.Type().(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return named.Obj().Name()
		}
	}
	return recv.Type().String()
}

// condChecksNil reports whether cond contains `recv == nil` (possibly
// ||-combined with other tests).
func condChecksNil(pass *analysis.Pass, cond ast.Expr, recv types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.EQL {
			return true
		}
		for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
			id, ok := ast.Unparen(pair[0]).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != recv {
				continue
			}
			if nid, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && nid.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsReturn reports whether the block returns (at any depth).
func containsReturn(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// checkMetricNames applies rule 2 at every call site in the package.
func checkMetricNames(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			method, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvType := obsTypeOf(pass, method.X)
			if recvType == "" || !metricMethods[recvType][method.Sel.Name] {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"metric name passed to %s.%s must be a compile-time string constant (dashboards key on stable names)",
					recvType, method.Sel.Name)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRe.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"metric name %q violates the lowercase-dotted naming contract %s", name, metricNameRe)
			}
			return true
		})
	}
}

// obsTypeOf returns "Registry" or "Emitter" when e's type is (a pointer
// to) that named type declared in a package named obs, else "".
func obsTypeOf(pass *analysis.Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	} else if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	pkg := obj.Pkg().Path()
	if pkg != "obs" && !strings.HasSuffix(pkg, "/obs") {
		return ""
	}
	if _, ok := metricMethods[obj.Name()]; !ok {
		return ""
	}
	return obj.Name()
}
