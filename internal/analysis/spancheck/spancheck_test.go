package spancheck

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestSpancheckNilGuards(t *testing.T) {
	analysistest.Run(t, "../../..", "testdata/src", Analyzer, "obs")
}

func TestSpancheckMetricNames(t *testing.T) {
	analysistest.Run(t, "../../..", "testdata/src", Analyzer, "spanuse")
}
