package yieldcheck

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestYieldcheck(t *testing.T) {
	analysistest.Run(t, "../../..", "testdata/src", Analyzer, "yieldfix")
}
