// Package yieldfix is the yieldcheck fixture: yield callbacks consumed
// correctly and every dropping shape.
package yieldfix

import "errors"

// ErrStop mirrors the engine's enumeration sentinel.
var ErrStop = errors.New("stop")

// GoodReturn propagates directly.
func GoodReturn(items []int, yield func(int) error) error {
	for _, it := range items {
		if err := yield(it); err != nil {
			return err
		}
	}
	return nil
}

// GoodAbsorb implements the engine idiom: ErrStop is absorbed, real
// errors propagate.
func GoodAbsorb(items []int, yield func(int) error) error {
	for _, it := range items {
		if err := yield(it); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
	return nil
}

// GoodClosure consumes the yield inside a nested closure.
func GoodClosure(yield func(int) error) error {
	run := func() error {
		return yield(1)
	}
	return run()
}

// BadDrop calls the yield as a statement.
func BadDrop(items []int, yield func(int) error) {
	for _, it := range items {
		yield(it) // want "result of yield callback yield is dropped"
	}
}

// BadBlank assigns the error to blank.
func BadBlank(yield func(int) error) {
	_ = yield(1) // want "assigned to _"
}

// BadGo launches the yield asynchronously.
func BadGo(yield func(int) error) {
	go yield(1) // want "go yield\\(\\.\\.\\.\\) structurally discards"
}

// BadDefer defers the yield.
func BadDefer(yield func(int) error) {
	defer yield(1) // want "defer yield\\(\\.\\.\\.\\) structurally discards"
}

// BadClosureDrop drops inside a closure over the parameter.
func BadClosureDrop(yield func(int) error) func() {
	return func() {
		yield(2) // want "result of yield callback yield is dropped"
	}
}

// NotYield takes a func with a non-error result: unconstrained.
func NotYield(emit func(int) bool) {
	emit(1)
}

// MultiResult takes a func returning more than an error: unconstrained.
func MultiResult(f func(int) (int, error)) {
	f(1)
}
