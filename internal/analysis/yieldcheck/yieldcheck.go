// Package yieldcheck enforces the enumeration-hook contract of the
// engine's streaming API (StreamCQ, StreamScan, ProbeByKeyBatchYield and
// every other function taking a `func(...) error` yield): the error a
// yield callback returns is control flow — engine.ErrStop means "stop
// enumerating", anything else aborts the query — so a caller that drops
// it breaks early termination and error propagation at once.
//
// For every function or closure with a parameter of function type whose
// only result is error, each call of that parameter must consume the
// result: flagged are bare call statements, assignments to blank, and
// go/defer calls (whose results are structurally discarded).
package yieldcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the yieldcheck entry point.
var Analyzer = &analysis.Analyzer{
	Name: "yieldcheck",
	Doc:  "yield-style callbacks' errors (including ErrStop) must be consumed, never dropped",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// yieldParams collects every parameter object of type func(...)
	// error across the package, closures included.
	yieldParams := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft = n.Type
			case *ast.FuncLit:
				ft = n.Type
			default:
				return true
			}
			for _, field := range ft.Params.List {
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj != nil && isErrFunc(obj.Type()) {
						yieldParams[obj] = true
					}
				}
			}
			return true
		})
	}
	if len(yieldParams) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		analysis.WalkStack(f, func(stack []ast.Node, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || !yieldParams[pass.TypesInfo.Uses[id]] {
				return true
			}
			if len(stack) == 0 {
				return true
			}
			switch parent := stack[len(stack)-1].(type) {
			case *ast.ExprStmt:
				pass.Reportf(call.Pos(),
					"result of yield callback %s is dropped; its error (including ErrStop) is the enumeration control flow", id.Name)
			case *ast.GoStmt:
				pass.Reportf(call.Pos(),
					"go %s(...) structurally discards the yield's error; call it synchronously and propagate", id.Name)
			case *ast.DeferStmt:
				pass.Reportf(call.Pos(),
					"defer %s(...) structurally discards the yield's error; call it synchronously and propagate", id.Name)
			case *ast.AssignStmt:
				if assignsToBlank(parent, call) {
					pass.Reportf(call.Pos(),
						"result of yield callback %s is assigned to _; handle the error (including ErrStop)", id.Name)
				}
			}
			return true
		})
	}
	return nil
}

// isErrFunc reports whether t is a function type whose only result is
// error.
func isErrFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// assignsToBlank reports whether call's value lands in a blank
// identifier within assign.
func assignsToBlank(assign *ast.AssignStmt, call *ast.CallExpr) bool {
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) != call {
			continue
		}
		// 1:1 assignment: the matching LHS; tuple-from-call cannot happen
		// for a single-result function.
		if len(assign.Lhs) == len(assign.Rhs) {
			if id, ok := assign.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				return true
			}
		}
	}
	return false
}
