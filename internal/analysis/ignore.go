package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// The suppression mechanism: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses the named analyzers' findings on the line it trails, or —
// when the comment stands on a line of its own — on the line immediately
// below it. The reason is mandatory: a suppression without a recorded
// justification is itself reported. `all` as the analyzer list suppresses
// every analyzer on the target line.

const ignorePrefix = "//lint:ignore"

// ignoreSet records which (file, line) pairs are suppressed for which
// analyzers.
type ignoreSet struct {
	// byLine maps file -> line -> analyzer names (or "all").
	byLine map[string]map[int][]string
}

func (ig *ignoreSet) suppresses(analyzer string, pos token.Position) bool {
	if ig == nil || ig.byLine == nil {
		return false
	}
	for _, name := range ig.byLine[pos.Filename][pos.Line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}

// collectIgnores scans the files' comments for lint:ignore directives.
// Malformed directives (missing analyzer list or missing reason) are
// returned as findings so they cannot silently suppress nothing.
func collectIgnores(fset *token.FileSet, files []*ast.File) (*ignoreSet, []Finding) {
	ig := &ignoreSet{byLine: map[string]map[int][]string{}}
	var bad []Finding
	for _, f := range files {
		var src []byte // file contents, read lazily to classify comments
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other directive, e.g. //lint:ignored
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Message:  "malformed lint:ignore directive: need \"//lint:ignore <analyzers> <reason>\"",
						Analyzer: "ignore",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				target := pos.Line
				if src == nil {
					src, _ = os.ReadFile(pos.Filename)
				}
				if ownLine(src, pos) {
					target = pos.Line + 1
				}
				m := ig.byLine[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					ig.byLine[pos.Filename] = m
				}
				m[target] = append(m[target], names...)
			}
		}
	}
	return ig, bad
}

// ownLine reports whether the comment starting at pos has only whitespace
// before it on its line (i.e. it is not trailing code). When the source
// is unreadable it conservatively reports false, keeping the suppression
// on the directive's own line.
func ownLine(src []byte, pos token.Position) bool {
	if src == nil || pos.Offset > len(src) {
		return false
	}
	for i := pos.Offset - pos.Column + 1; i < pos.Offset && i >= 0; i++ {
		if src[i] != ' ' && src[i] != '\t' {
			return false
		}
	}
	return true
}
