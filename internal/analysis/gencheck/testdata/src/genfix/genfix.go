// Package genfix is the gencheck fixture: generation counters used
// through their atomic methods, and every forbidden shape.
package genfix

import "sync/atomic"

// shard mirrors the repo's generation-counter layouts.
type shard struct {
	gen     atomic.Uint64 // the name marks it
	tick    atomic.Uint64 // monotonic insert counter: the comment marks it
	hits    atomic.Uint64 // neither gen-named nor marked: unconstrained
	rawGen  uint64        // manipulated atomically via sync/atomic
	plain   uint64        // unmarked: unconstrained
	spanSeq atomic.Uint64
}

// Good uses every sanctioned shape.
func (s *shard) Good(o *shard) uint64 {
	s.gen.Add(1)
	s.tick.Add(2)
	s.spanSeq.Add(1)
	s.gen.Store(o.gen.Load())
	atomic.AddUint64(&s.rawGen, 1)
	_ = atomic.LoadUint64(&s.rawGen)
	atomic.StoreUint64(&s.rawGen, atomic.LoadUint64(&o.rawGen))
	s.plain++
	s.hits.Store(0)
	return s.gen.Load() + s.plain
}

// BadDecrement wraps the counter backwards.
func (s *shard) BadDecrement() {
	s.gen.Add(^uint64(0))      // want "wraps around: it decrements generation counter gen"
	s.tick.Add(-1 & (1 << 63)) // want "wraps around: it decrements generation counter tick"
	delta := uint64(1)
	s.gen.Add(^delta)                       // want "can decrement generation counter gen"
	atomic.AddUint64(&s.rawGen, ^uint64(0)) // want "wraps around: it decrements generation counter rawGen"
}

// BadStore rewinds counters.
func (s *shard) BadStore() {
	s.gen.Store(0)                   // want "Store on generation counter gen can rewind it"
	s.spanSeq.Store(42)              // want "Store on generation counter spanSeq can rewind it"
	atomic.StoreUint64(&s.rawGen, 7) // want "StoreUint64 on counter rawGen can rewind it"
}

// BadRaw bypasses the atomics.
func (s *shard) BadRaw() uint64 {
	v := s.rawGen // want "counter rawGen is documented as atomic but accessed directly"
	s.rawGen = 1  // want "counter rawGen is documented as atomic but accessed directly"
	g := s.gen    // want "generation counter gen used outside its atomic methods"
	_ = g
	return v
}

// BadSwap uses non-monotonic atomic shapes.
func (s *shard) BadSwap() {
	s.gen.Swap(1)              // want "Swap on generation counter gen is not monotonicity-safe"
	s.gen.CompareAndSwap(0, 1) // want "CompareAndSwap on generation counter gen is not monotonicity-safe"
}
