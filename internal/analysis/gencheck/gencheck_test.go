package gencheck

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestGencheck(t *testing.T) {
	analysistest.Run(t, "../../..", "testdata/src", Analyzer, "genfix")
}
