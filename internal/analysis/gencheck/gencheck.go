// Package gencheck enforces the generation-counter contract the caching
// layers depend on (PRs 4–5): generation/version counters move only
// through sync/atomic, only forward. A counter that ever decreases or is
// overwritten can resurrect a stale cache entry, silently breaking the
// monotone linearizability envelope the harnesses check.
//
// A field is a generation counter when it is an atomic.Uint64 whose name
// contains a gen/seq/ver(sion) word component, or whose comment contains
// the word "monotonic"; additionally a *plain* uint64 field whose comment
// contains the word "atomic" is treated as an atomic counter accessed
// through the sync/atomic package functions. For matched fields:
//
//   - atomic.Uint64 counters may only be used as the receiver of Load,
//     Add and Store calls. Add's delta must not be a negative constant in
//     disguise (a two's-complement wrap like ^uint64(0)) or a unary -/^
//     expression; Store's value must derive from another counter's Load
//     (the clone/snapshot idiom) — anything else can rewind the counter.
//     Swap and CompareAndSwap are flagged the same way, and so is any raw
//     use (copying the value, taking its address).
//   - plain "atomic" uint64 counters must be accessed exclusively as
//     &x.f arguments to atomic.AddUint64 / LoadUint64 / StoreUint64 /
//     CompareAndSwapUint64, with the same delta and store rules.
//
// Instantaneous gauges (obs.Gauge) and max-trackers (netpeer's maxFrame)
// deliberately match neither pattern: going down is their job.
package gencheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the gencheck entry point.
var Analyzer = &analysis.Analyzer{
	Name: "gencheck",
	Doc:  "generation counters move only through sync/atomic, only forward",
	Run:  run,
}

var (
	monotonicRe = regexp.MustCompile(`(?i)\bmonotonic`)
	atomicRe    = regexp.MustCompile(`(?i)\batomic`)
)

// genWords are the name components that mark a counter as a generation.
var genWords = map[string]bool{
	"gen": true, "gens": true, "generation": true,
	"seq": true, "sequence": true,
	"ver": true, "version": true,
}

func run(pass *analysis.Pass) error {
	atomicGens := map[types.Object]bool{} // atomic.Uint64 counters
	plainGens := map[types.Object]bool{}  // plain uint64 "atomic" counters
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				text := fieldComment(field)
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					named := isAtomicUint64(obj.Type())
					marked := hasGenWord(name.Name) || monotonicRe.MatchString(text)
					switch {
					case named && marked:
						atomicGens[obj] = true
					case isPlainUint64(obj.Type()) && atomicRe.MatchString(text):
						plainGens[obj] = true
					}
				}
			}
			return true
		})
	}
	if len(atomicGens) == 0 && len(plainGens) == 0 {
		return nil
	}

	for _, f := range pass.Files {
		analysis.WalkStack(f, func(stack []ast.Node, n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			obj := s.Obj()
			switch {
			case atomicGens[obj]:
				checkAtomicUse(pass, stack, sel, obj)
			case plainGens[obj]:
				checkPlainUse(pass, stack, sel, obj)
			}
			return true
		})
	}
	return nil
}

// fieldComment joins a field's doc and line comments.
func fieldComment(field *ast.Field) string {
	text := ""
	if field.Doc != nil {
		text += field.Doc.Text()
	}
	if field.Comment != nil {
		text += " " + field.Comment.Text()
	}
	return text
}

// hasGenWord reports whether a camelCase/underscore name has a component
// in genWords.
func hasGenWord(name string) bool {
	for _, w := range splitWords(name) {
		if genWords[w] {
			return true
		}
	}
	return false
}

// splitWords splits fooBarBaz / foo_bar into lowercase components.
func splitWords(name string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range name {
		switch {
		case r == '_':
			flush()
		case r >= 'A' && r <= 'Z':
			flush()
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return words
}

// isAtomicUint64 reports whether t is sync/atomic.Uint64.
func isAtomicUint64(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Uint64"
}

// isPlainUint64 reports whether t is the basic type uint64.
func isPlainUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64 && t == t.Underlying()
}

// checkAtomicUse validates one use of an atomic.Uint64 generation field.
// The legal shape is a method call: stack[...] = CallExpr -> SelectorExpr
// (method) -> sel (the field access).
func checkAtomicUse(pass *analysis.Pass, stack []ast.Node, sel *ast.SelectorExpr, obj types.Object) {
	method, call := methodCallAround(stack, sel)
	if call == nil {
		pass.Reportf(sel.Sel.Pos(),
			"generation counter %s used outside its atomic methods (no raw reads, copies or address-taking)", obj.Name())
		return
	}
	switch method {
	case "Load":
		// Always fine.
	case "Add":
		if len(call.Args) == 1 {
			checkDelta(pass, call.Args[0], obj)
		}
	case "Store":
		if len(call.Args) == 1 && !containsLoad(call.Args[0]) {
			pass.Reportf(call.Pos(),
				"Store on generation counter %s can rewind it; use Add, or copy another counter via its Load", obj.Name())
		}
	default:
		pass.Reportf(call.Pos(),
			"%s on generation counter %s is not monotonicity-safe; use Load/Add, or Store from another counter's Load", method, obj.Name())
	}
}

// methodCallAround returns the method name and call when sel is the
// receiver of an immediately enclosing method call.
func methodCallAround(stack []ast.Node, sel *ast.SelectorExpr) (string, *ast.CallExpr) {
	if len(stack) < 2 {
		return "", nil
	}
	m, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || m.X != sel {
		return "", nil
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok || call.Fun != m {
		return "", nil
	}
	return m.Sel.Name, call
}

// checkDelta flags Add arguments that are decrements in disguise.
func checkDelta(pass *analysis.Pass, arg ast.Expr, obj types.Object) {
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, ok := constant.Uint64Val(tv.Value); ok && v > math.MaxInt64 {
			pass.Reportf(arg.Pos(),
				"Add of %s wraps around: it decrements generation counter %s", tv.Value.ExactString(), obj.Name())
		}
		return
	}
	if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && (u.Op == token.XOR || u.Op == token.SUB) {
		pass.Reportf(arg.Pos(),
			"Add of a %s-expression can decrement generation counter %s", u.Op, obj.Name())
	}
}

// containsLoad reports whether the expression contains a .Load/LoadUint64
// call — the sanctioned way to derive a stored value from another
// counter.
func containsLoad(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if s, ok := call.Fun.(*ast.SelectorExpr); ok && (s.Sel.Name == "Load" || s.Sel.Name == "LoadUint64") {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkPlainUse validates one use of a plain "atomic" uint64 counter
// field: it must be &x.f as the first argument of a sync/atomic call.
func checkPlainUse(pass *analysis.Pass, stack []ast.Node, sel *ast.SelectorExpr, obj types.Object) {
	fn, call := atomicCallAround(pass, stack, sel)
	if call == nil {
		pass.Reportf(sel.Sel.Pos(),
			"counter %s is documented as atomic but accessed directly; use sync/atomic", obj.Name())
		return
	}
	switch fn {
	case "LoadUint64", "CompareAndSwapUint64":
		// Load always fine; CAS is how monotonic maxima advance.
	case "AddUint64":
		if len(call.Args) == 2 {
			checkDelta(pass, call.Args[1], obj)
		}
	case "StoreUint64":
		if len(call.Args) == 2 && !containsLoad(call.Args[1]) {
			pass.Reportf(call.Pos(),
				"StoreUint64 on counter %s can rewind it; use AddUint64, or copy another counter via LoadUint64", obj.Name())
		}
	default:
		pass.Reportf(call.Pos(), "%s is not a sanctioned atomic access for counter %s", fn, obj.Name())
	}
}

// atomicCallAround returns the sync/atomic function name and call when
// sel appears as &sel in a direct sync/atomic package call.
func atomicCallAround(pass *analysis.Pass, stack []ast.Node, sel *ast.SelectorExpr) (string, *ast.CallExpr) {
	if len(stack) < 2 {
		return "", nil
	}
	u, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || u.Op != token.AND || u.X != sel {
		return "", nil
	}
	// Walk outward past parens to the call.
	for i := len(stack) - 2; i >= 0; i-- {
		switch outer := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			fn, ok := outer.Fun.(*ast.SelectorExpr)
			if !ok {
				return "", nil
			}
			pkg, ok := fn.X.(*ast.Ident)
			if !ok {
				return "", nil
			}
			if pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); !ok || pn.Imported().Path() != "sync/atomic" {
				return "", nil
			}
			if len(outer.Args) == 0 || ast.Unparen(outer.Args[0]) != u {
				return "", nil
			}
			return fn.Sel.Name, outer
		default:
			return "", nil
		}
	}
	return "", nil
}
