// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against `// want` comments, in the
// manner of golang.org/x/tools/go/analysis/analysistest (stdlib-only, see
// the parent package's doc). A fixture line expecting diagnostics carries
// a trailing comment of the form
//
//	// want "regexp" "regexp"
//
// with one double-quoted regular expression per expected diagnostic on
// that line. Diagnostics with no matching expectation, and expectations
// with no matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one `// want` pattern with its location.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRe captures the trailing want comment on a line.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads srcRoot/<pkgpath> with moduleDir as the go-list context,
// applies the analyzer and compares diagnostics against the fixture's
// want comments.
func Run(t *testing.T, moduleDir, srcRoot string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	l := &analysis.Loader{Dir: moduleDir, SrcRoot: srcRoot}
	pkg, err := l.LoadSource(pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}

	expects, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	var diags []analysis.Diagnostic
	pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(expects, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.pattern)
		}
	}
}

// claim marks the first unmatched expectation covering (pos, msg).
func claim(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.pattern.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every want comment in the package's files.
func collectWants(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: %v", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, p, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}

// splitPatterns parses a sequence of double-quoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("want patterns must be double-quoted strings, at %q", s)
		}
		// Find the closing quote, honoring backslash escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern at %q", s)
		}
		p, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %q: %v", s[:end+1], err)
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}
