package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadModulePackages type-checks real repo packages from source with
// every import resolved through export data.
func TestLoadModulePackages(t *testing.T) {
	l := &Loader{Dir: "../.."}
	pkgs, err := l.Load("./internal/rel", "./internal/obs")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
		if len(p.Files) == 0 || p.Types == nil || len(p.Info.Defs) == 0 {
			t.Errorf("%s: incomplete load: %d files", p.PkgPath, len(p.Files))
		}
	}
	rel := byPath["repro/internal/rel"]
	if rel == nil {
		t.Fatalf("repro/internal/rel not loaded; got %v", byPath)
	}
	if rel.Types.Scope().Lookup("Relation") == nil {
		t.Error("rel.Relation not in package scope")
	}
}

// TestLoadReportsTypeErrors ensures a package that does not compile fails
// the load instead of being analyzed half-typed.
func TestLoadReportsTypeErrors(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "src/broken/broken.go", "package broken\n\nfunc f() { undefined() }\n")
	l := &Loader{Dir: "../..", SrcRoot: dir + "/src"}
	if _, err := l.LoadSource("broken"); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("want type error mentioning undefined, got %v", err)
	}
}

// TestLoadSourceSiblingImports checks the GOPATH-style resolution used by
// the analyzer test fixtures: a fixture package importing a sibling
// fixture package plus the standard library.
func TestLoadSourceSiblingImports(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "src/lib/lib.go", "package lib\n\nimport \"sync\"\n\n// S is a fixture.\ntype S struct{ Mu sync.Mutex }\n")
	writeFile(t, dir, "src/use/use.go", "package use\n\nimport (\n\t\"fmt\"\n\n\t\"lib\"\n)\n\n// F is a fixture.\nfunc F() { var s lib.S\n\ts.Mu.Lock()\n\tfmt.Println(\"x\")\n\ts.Mu.Unlock() }\n")
	l := &Loader{Dir: "../..", SrcRoot: dir + "/src"}
	pkg, err := l.LoadSource("use")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "use" {
		t.Fatalf("package name = %q, want use", pkg.Types.Name())
	}
}

// TestIgnoreDirectives exercises the suppression grammar end to end
// through Run: trailing and preceding placement, analyzer matching, the
// "all" wildcard, and the malformed-directive finding.
func TestIgnoreDirectives(t *testing.T) {
	dir := t.TempDir()
	src := `package ig

// V is a fixture.
var V = 1 //lint:ignore demo trailing suppression

//lint:ignore demo preceding suppression
var W = 2

//lint:ignore other wrong analyzer
var X = 3

//lint:ignore all wildcard
var Y = 4

//lint:ignore demo
var Z = 5
`
	writeFile(t, dir, "src/ig/ig.go", src)
	l := &Loader{Dir: "../..", SrcRoot: dir + "/src"}
	pkg, err := l.LoadSource("ig")
	if err != nil {
		t.Fatal(err)
	}
	demo := &Analyzer{
		Name: "demo",
		Doc:  "flags every package-level var",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					g, ok := d.(*ast.GenDecl)
					if !ok || g.Tok != token.VAR {
						continue
					}
					for _, spec := range g.Specs {
						vs := spec.(*ast.ValueSpec)
						pass.Reportf(vs.Pos(), "var %s flagged", vs.Names[0].Name)
					}
				}
			}
			return nil
		},
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{demo})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+":"+f.Message)
	}
	// V, W suppressed (trailing / preceding); X survives (directive names
	// a different analyzer); Y suppressed by "all"; Z survives because its
	// directive lacks a reason — which is itself reported.
	want := []string{
		"demo:var X flagged",
		"ignore:malformed lint:ignore directive: need \"//lint:ignore <analyzers> <reason>\"",
		"demo:var Z flagged",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("findings:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// writeFile writes content under dir, creating parents.
func writeFile(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
