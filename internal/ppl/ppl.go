// Package ppl models the PPL ("Peer-Programming Language") schema-mediation
// formalism of Section 2 of the paper: peer schemas, stored relations,
// storage descriptions, and the three kinds of peer mappings (inclusions,
// equalities, definitional datalog rules). It also implements the structural
// analyses of Section 3: the acyclicity test of Definition 3.1 and the
// complexity classification of Theorems 3.1–3.3.
//
// Naming convention (global uniqueness per Section 2): peer relations are
// written "Peer:Relation" and stored relations "Peer.Relation".
package ppl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// RelationKind distinguishes peer (virtual) relations from stored relations.
type RelationKind uint8

const (
	// PeerRelation is a virtual relation of a peer schema.
	PeerRelation RelationKind = iota
	// StoredRelation holds actual data at a peer.
	StoredRelation
)

// RelationDecl declares a relation in a peer's schema.
type RelationDecl struct {
	// Name is the globally unique predicate name ("H:Doctor", "FH.doc").
	Name string
	// Peer is the owning peer.
	Peer string
	// Arity is the number of attributes.
	Arity int
	// Attrs optionally names the attributes (len == Arity when present).
	Attrs []string
	// Kind says whether the relation is virtual or stored.
	Kind RelationKind
}

// MappingKind identifies the kind of a peer mapping or storage description.
type MappingKind uint8

const (
	// Inclusion is Q1 ⊆ Q2.
	Inclusion MappingKind = iota
	// Equality is Q1 = Q2.
	Equality
	// Definitional is a datalog rule over peer relations.
	Definitional
)

// String names the mapping kind.
func (k MappingKind) String() string {
	switch k {
	case Inclusion:
		return "inclusion"
	case Equality:
		return "equality"
	case Definitional:
		return "definitional"
	default:
		return fmt.Sprintf("MappingKind(%d)", uint8(k))
	}
}

// Mapping is a peer mapping in PPL.
//
//   - Inclusion/Equality: LHS and RHS are conjunctive queries of equal head
//     arity; the statement is LHS ⊆ RHS (resp. LHS = RHS). Head predicates
//     are synthetic and serve only to align the two sides' variables.
//   - Definitional: Rule is a datalog rule whose head and body are peer
//     relations; LHS/RHS are unused.
type Mapping struct {
	// ID is a unique identifier for the description (used for the
	// once-per-path reuse rule during reformulation and for diagnostics).
	ID string
	// Kind is the mapping kind.
	Kind MappingKind
	// LHS and RHS are the two sides of an inclusion or equality.
	LHS, RHS lang.CQ
	// Rule is the datalog rule of a definitional mapping.
	Rule lang.CQ
}

// Validate checks internal consistency of the mapping.
func (m *Mapping) Validate() error {
	switch m.Kind {
	case Inclusion, Equality:
		if m.LHS.Head.Arity() != m.RHS.Head.Arity() {
			return fmt.Errorf("ppl: mapping %s: side arities differ (%d vs %d)",
				m.ID, m.LHS.Head.Arity(), m.RHS.Head.Arity())
		}
		if len(m.LHS.Body) == 0 || len(m.RHS.Body) == 0 {
			return fmt.Errorf("ppl: mapping %s: empty side", m.ID)
		}
		if !m.LHS.IsSafe() || !m.RHS.IsSafe() {
			return fmt.Errorf("ppl: mapping %s: unsafe side", m.ID)
		}
	case Definitional:
		if len(m.Rule.Body) == 0 {
			return fmt.Errorf("ppl: mapping %s: empty definitional body", m.ID)
		}
		if !m.Rule.IsSafe() {
			return fmt.Errorf("ppl: mapping %s: unsafe rule", m.ID)
		}
	default:
		return fmt.Errorf("ppl: mapping %s: unknown kind %d", m.ID, m.Kind)
	}
	return nil
}

// String renders the mapping.
func (m *Mapping) String() string {
	switch m.Kind {
	case Inclusion:
		return fmt.Sprintf("%s: %s ⊆ %s", m.ID, m.LHS, m.RHS)
	case Equality:
		return fmt.Sprintf("%s: %s = %s", m.ID, m.LHS, m.RHS)
	default:
		return fmt.Sprintf("%s: %s", m.ID, m.Rule)
	}
}

// StorageKind identifies containment vs equality storage descriptions.
type StorageKind uint8

const (
	// StorageContainment is A:R ⊆ Q (open-world).
	StorageContainment StorageKind = iota
	// StorageEquality is A:R = Q (closed/exact).
	StorageEquality
)

// Storage is a storage description: it relates a stored relation to a query
// over the owning peer's schema (Section 2.1.2).
type Storage struct {
	// ID uniquely identifies the description.
	ID string
	// Kind is containment (⊆) or equality (=).
	Kind StorageKind
	// Stored is the stored-relation head atom A.R(x̄).
	Stored lang.Atom
	// Query is the defining query over peer relations; its head arity
	// equals the stored relation's and shares its variables.
	Query lang.CQ
}

// Validate checks internal consistency of the storage description.
func (s *Storage) Validate() error {
	if s.Stored.Arity() != s.Query.Head.Arity() {
		return fmt.Errorf("ppl: storage %s: arity mismatch (%d vs %d)",
			s.ID, s.Stored.Arity(), s.Query.Head.Arity())
	}
	if len(s.Query.Body) == 0 {
		return fmt.Errorf("ppl: storage %s: empty defining query", s.ID)
	}
	if !s.Query.IsSafe() {
		return fmt.Errorf("ppl: storage %s: unsafe defining query", s.ID)
	}
	return nil
}

// String renders the storage description.
func (s *Storage) String() string {
	op := "⊆"
	if s.Kind == StorageEquality {
		op = "="
	}
	body := make([]string, len(s.Query.Body))
	for i, a := range s.Query.Body {
		body[i] = a.String()
	}
	return fmt.Sprintf("%s: %s %s %s", s.ID, s.Stored, op, strings.Join(body, ", "))
}

// PDMS is a peer data management system specification N: peers with their
// schemas, storage descriptions D_N and peer mappings L_N.
type PDMS struct {
	peers     map[string]bool
	relations map[string]*RelationDecl
	mappings  []*Mapping
	storage   []*Storage
	nextID    int
}

// New returns an empty PDMS specification.
func New() *PDMS {
	return &PDMS{
		peers:     map[string]bool{},
		relations: map[string]*RelationDecl{},
	}
}

// AddPeer registers a peer name. Adding an existing peer is a no-op.
func (n *PDMS) AddPeer(name string) error {
	if name == "" {
		return fmt.Errorf("ppl: empty peer name")
	}
	n.peers[name] = true
	return nil
}

// HasPeer reports whether the peer exists.
func (n *PDMS) HasPeer(name string) bool { return n.peers[name] }

// Peers returns the sorted peer names.
func (n *PDMS) Peers() []string {
	out := make([]string, 0, len(n.peers))
	for p := range n.peers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// DeclareRelation registers a relation declaration; the owning peer is added
// implicitly. Redeclaration with a different arity or kind is an error.
func (n *PDMS) DeclareRelation(d RelationDecl) error {
	if d.Name == "" || d.Peer == "" {
		return fmt.Errorf("ppl: relation declaration missing name or peer: %+v", d)
	}
	if d.Arity <= 0 {
		return fmt.Errorf("ppl: relation %s: non-positive arity %d", d.Name, d.Arity)
	}
	if len(d.Attrs) > 0 && len(d.Attrs) != d.Arity {
		return fmt.Errorf("ppl: relation %s: %d attrs for arity %d", d.Name, len(d.Attrs), d.Arity)
	}
	if prev, ok := n.relations[d.Name]; ok {
		if prev.Arity != d.Arity || prev.Kind != d.Kind {
			return fmt.Errorf("ppl: relation %s redeclared incompatibly", d.Name)
		}
		return nil
	}
	n.peers[d.Peer] = true
	cp := d
	n.relations[d.Name] = &cp
	return nil
}

// Relation returns the declaration for a predicate name, or nil.
func (n *PDMS) Relation(name string) *RelationDecl { return n.relations[name] }

// IsStored reports whether the predicate names a stored relation.
func (n *PDMS) IsStored(name string) bool {
	d := n.relations[name]
	return d != nil && d.Kind == StoredRelation
}

// RelationNames returns all declared predicate names, sorted.
func (n *PDMS) RelationNames() []string {
	out := make([]string, 0, len(n.relations))
	for name := range n.relations {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddMapping validates and registers a peer mapping. If the mapping has no
// ID one is assigned.
func (n *PDMS) AddMapping(m *Mapping) error {
	if m.ID == "" {
		m.ID = fmt.Sprintf("m%d", n.nextID)
		n.nextID++
	}
	if err := m.Validate(); err != nil {
		return err
	}
	if err := n.checkAtoms(m.ID, m.allAtoms()); err != nil {
		return err
	}
	n.mappings = append(n.mappings, m)
	return nil
}

// AddStorage validates and registers a storage description. If it has no ID
// one is assigned.
func (n *PDMS) AddStorage(s *Storage) error {
	if s.ID == "" {
		s.ID = fmt.Sprintf("s%d", n.nextID)
		n.nextID++
	}
	if err := s.Validate(); err != nil {
		return err
	}
	atoms := append([]lang.Atom{s.Stored}, s.Query.Body...)
	if err := n.checkAtoms(s.ID, atoms); err != nil {
		return err
	}
	if !n.IsStored(s.Stored.Pred) {
		return fmt.Errorf("ppl: storage %s: head %s is not a declared stored relation", s.ID, s.Stored.Pred)
	}
	for _, a := range s.Query.Body {
		if n.IsStored(a.Pred) {
			return fmt.Errorf("ppl: storage %s: defining query references stored relation %s", s.ID, a.Pred)
		}
	}
	n.storage = append(n.storage, s)
	return nil
}

// checkAtoms verifies each atom against the declared relations.
func (n *PDMS) checkAtoms(id string, atoms []lang.Atom) error {
	for _, a := range atoms {
		d := n.relations[a.Pred]
		if d == nil {
			return fmt.Errorf("ppl: %s: undeclared relation %s", id, a.Pred)
		}
		if d.Arity != a.Arity() {
			return fmt.Errorf("ppl: %s: atom %s has arity %d, declared %d", id, a, a.Arity(), d.Arity)
		}
	}
	return nil
}

// Mappings returns the registered peer mappings.
func (n *PDMS) Mappings() []*Mapping { return n.mappings }

// Storages returns the registered storage descriptions.
func (n *PDMS) Storages() []*Storage { return n.storage }

// ValidateQuery checks a user query against the PDMS schema: every body atom
// must be a declared relation with matching arity, and the query must be
// safe.
func (n *PDMS) ValidateQuery(q lang.CQ) error {
	if !q.IsSafe() {
		return fmt.Errorf("ppl: unsafe query %s", q)
	}
	return n.checkAtoms("query", q.Body)
}

// allAtoms collects every atom mentioned by a mapping.
func (m *Mapping) allAtoms() []lang.Atom {
	switch m.Kind {
	case Definitional:
		return append([]lang.Atom{m.Rule.Head}, m.Rule.Body...)
	default:
		out := append([]lang.Atom{}, m.LHS.Body...)
		return append(out, m.RHS.Body...)
	}
}

// Stats summarizes a PDMS for diagnostics and experiments.
type Stats struct {
	Peers         int
	PeerRelations int
	StoredRels    int
	Inclusions    int
	Equalities    int
	Definitional  int
	StorageDescrs int
}

// Stats computes summary statistics.
func (n *PDMS) Stats() Stats {
	st := Stats{Peers: len(n.peers), StorageDescrs: len(n.storage)}
	for _, d := range n.relations {
		if d.Kind == StoredRelation {
			st.StoredRels++
		} else {
			st.PeerRelations++
		}
	}
	for _, m := range n.mappings {
		switch m.Kind {
		case Inclusion:
			st.Inclusions++
		case Equality:
			st.Equalities++
		default:
			st.Definitional++
		}
	}
	return st
}
