package ppl

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

func v(n string) lang.Term                     { return lang.Var(n) }
func atom(p string, ts ...lang.Term) lang.Atom { return lang.NewAtom(p, ts...) }
func q(h lang.Atom, body ...lang.Atom) lang.CQ { return lang.CQ{Head: h, Body: body} }

// smallPDMS builds a two-peer PDMS: A with peer relation A:R, B with peer
// relation B:S and stored relation B.data, with B.data ⊆ B:S and an
// inclusion mapping A:R ⊆ B:S.
func smallPDMS(t *testing.T) *PDMS {
	t.Helper()
	n := New()
	decls := []RelationDecl{
		{Name: "A:R", Peer: "A", Arity: 2, Kind: PeerRelation},
		{Name: "B:S", Peer: "B", Arity: 2, Kind: PeerRelation},
		{Name: "B.data", Peer: "B", Arity: 2, Kind: StoredRelation},
	}
	for _, d := range decls {
		if err := n.DeclareRelation(d); err != nil {
			t.Fatal(err)
		}
	}
	err := n.AddMapping(&Mapping{
		Kind: Inclusion,
		LHS:  q(atom("m", v("x"), v("y")), atom("A:R", v("x"), v("y"))),
		RHS:  q(atom("m", v("x"), v("y")), atom("B:S", v("x"), v("y"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = n.AddStorage(&Storage{
		Kind:   StorageContainment,
		Stored: atom("B.data", v("x"), v("y")),
		Query:  q(atom("s", v("x"), v("y")), atom("B:S", v("x"), v("y"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDeclareRelationValidation(t *testing.T) {
	n := New()
	if err := n.DeclareRelation(RelationDecl{Name: "", Peer: "A", Arity: 1}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := n.DeclareRelation(RelationDecl{Name: "A:R", Peer: "A", Arity: 0}); err == nil {
		t.Fatal("zero arity accepted")
	}
	if err := n.DeclareRelation(RelationDecl{Name: "A:R", Peer: "A", Arity: 2, Attrs: []string{"x"}}); err == nil {
		t.Fatal("attr/arity mismatch accepted")
	}
	if err := n.DeclareRelation(RelationDecl{Name: "A:R", Peer: "A", Arity: 2}); err != nil {
		t.Fatal(err)
	}
	// Identical redeclaration is fine; incompatible is not.
	if err := n.DeclareRelation(RelationDecl{Name: "A:R", Peer: "A", Arity: 2}); err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareRelation(RelationDecl{Name: "A:R", Peer: "A", Arity: 3}); err == nil {
		t.Fatal("incompatible redeclaration accepted")
	}
	if !n.HasPeer("A") {
		t.Fatal("peer not implicitly added")
	}
}

func TestAddMappingValidation(t *testing.T) {
	n := New()
	_ = n.DeclareRelation(RelationDecl{Name: "A:R", Peer: "A", Arity: 1, Kind: PeerRelation})
	// Arity mismatch between sides.
	err := n.AddMapping(&Mapping{
		Kind: Inclusion,
		LHS:  q(atom("m", v("x")), atom("A:R", v("x"))),
		RHS:  q(atom("m", v("x"), v("y")), atom("A:R", v("x"))),
	})
	if err == nil {
		t.Fatal("side arity mismatch accepted")
	}
	// Undeclared relation.
	err = n.AddMapping(&Mapping{
		Kind: Inclusion,
		LHS:  q(atom("m", v("x")), atom("A:R", v("x"))),
		RHS:  q(atom("m", v("x")), atom("B:Nope", v("x"))),
	})
	if err == nil {
		t.Fatal("undeclared relation accepted")
	}
	// Wrong atom arity.
	err = n.AddMapping(&Mapping{
		Kind: Inclusion,
		LHS:  q(atom("m", v("x")), atom("A:R", v("x"), v("y"))),
		RHS:  q(atom("m", v("x")), atom("A:R", v("x"))),
	})
	if err == nil {
		t.Fatal("wrong atom arity accepted")
	}
	// Unsafe side.
	err = n.AddMapping(&Mapping{
		Kind: Inclusion,
		LHS:  q(atom("m", v("z")), atom("A:R", v("x"))),
		RHS:  q(atom("m", v("x")), atom("A:R", v("x"))),
	})
	if err == nil {
		t.Fatal("unsafe side accepted")
	}
	// Valid definitional.
	err = n.AddMapping(&Mapping{
		Kind: Definitional,
		Rule: q(atom("A:R", v("x")), atom("A:R", v("x"))),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddStorageValidation(t *testing.T) {
	n := New()
	_ = n.DeclareRelation(RelationDecl{Name: "A:R", Peer: "A", Arity: 1, Kind: PeerRelation})
	_ = n.DeclareRelation(RelationDecl{Name: "A.d", Peer: "A", Arity: 1, Kind: StoredRelation})
	_ = n.DeclareRelation(RelationDecl{Name: "A.e", Peer: "A", Arity: 1, Kind: StoredRelation})
	// Head must be stored.
	err := n.AddStorage(&Storage{
		Stored: atom("A:R", v("x")),
		Query:  q(atom("s", v("x")), atom("A:R", v("x"))),
	})
	if err == nil {
		t.Fatal("peer relation as storage head accepted")
	}
	// Defining query must not use stored relations.
	err = n.AddStorage(&Storage{
		Stored: atom("A.d", v("x")),
		Query:  q(atom("s", v("x")), atom("A.e", v("x"))),
	})
	if err == nil {
		t.Fatal("stored relation in defining query accepted")
	}
	// Valid.
	err = n.AddStorage(&Storage{
		Stored: atom("A.d", v("x")),
		Query:  q(atom("s", v("x")), atom("A:R", v("x"))),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIDsAssigned(t *testing.T) {
	n := smallPDMS(t)
	if n.Mappings()[0].ID == "" || n.Storages()[0].ID == "" {
		t.Fatal("IDs not assigned")
	}
	if n.Mappings()[0].ID == n.Storages()[0].ID {
		t.Fatal("IDs collide")
	}
}

func TestStats(t *testing.T) {
	n := smallPDMS(t)
	st := n.Stats()
	if st.Peers != 2 || st.PeerRelations != 2 || st.StoredRels != 1 ||
		st.Inclusions != 1 || st.StorageDescrs != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestValidateQuery(t *testing.T) {
	n := smallPDMS(t)
	good := q(atom("q", v("x")), atom("A:R", v("x"), v("y")))
	if err := n.ValidateQuery(good); err != nil {
		t.Fatal(err)
	}
	bad := q(atom("q", v("x")), atom("Nope", v("x")))
	if err := n.ValidateQuery(bad); err == nil {
		t.Fatal("undeclared relation in query accepted")
	}
	unsafe := q(atom("q", v("z")), atom("A:R", v("x"), v("y")))
	if err := n.ValidateQuery(unsafe); err == nil {
		t.Fatal("unsafe query accepted")
	}
}

func TestAcyclicInclusionsSimple(t *testing.T) {
	n := smallPDMS(t)
	if ok, _ := n.AcyclicInclusions(); !ok {
		t.Fatal("acyclic PDMS reported cyclic")
	}
	// Add reverse inclusion B:S ⊆ A:R → cycle.
	err := n.AddMapping(&Mapping{
		Kind: Inclusion,
		LHS:  q(atom("m", v("x"), v("y")), atom("B:S", v("x"), v("y"))),
		RHS:  q(atom("m", v("x"), v("y")), atom("A:R", v("x"), v("y"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, cycle := n.AcyclicInclusions()
	if ok {
		t.Fatal("cycle not detected")
	}
	if len(cycle) < 3 || cycle[0] != cycle[len(cycle)-1] {
		t.Fatalf("bad cycle witness: %v", cycle)
	}
}

func TestEqualityCreatesCycle(t *testing.T) {
	n := smallPDMS(t)
	err := n.AddMapping(&Mapping{
		Kind: Equality,
		LHS:  q(atom("m", v("x"), v("y")), atom("A:R", v("x"), v("y"))),
		RHS:  q(atom("m", v("x"), v("y")), atom("B:S", v("x"), v("y"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := n.AcyclicInclusions(); ok {
		t.Fatal("equality must create a cycle in the full graph (paper Section 3)")
	}
	// But the pure-inclusion graph remains acyclic, which is what
	// Theorem 3.2 requires.
	if ok, _ := n.AcyclicInclusionsOnly(); !ok {
		t.Fatal("pure-inclusion graph should stay acyclic")
	}
}

func TestClassifyPTime(t *testing.T) {
	n := smallPDMS(t)
	cl := n.Classify(lang.CQ{})
	if cl.Class != PTime {
		t.Fatalf("Classify = %v", cl)
	}
}

func TestClassifyCyclicUndecidable(t *testing.T) {
	n := smallPDMS(t)
	_ = n.AddMapping(&Mapping{
		Kind: Inclusion,
		LHS:  q(atom("m", v("x"), v("y")), atom("B:S", v("x"), v("y"))),
		RHS:  q(atom("m", v("x"), v("y")), atom("A:R", v("x"), v("y"))),
	})
	cl := n.Classify(lang.CQ{})
	if cl.Class != Undecidable {
		t.Fatalf("Classify = %v", cl)
	}
	if !strings.Contains(cl.String(), "cyclic") {
		t.Fatalf("missing reason: %v", cl)
	}
}

func TestClassifyEqualityProjectionCoNP(t *testing.T) {
	n := New()
	_ = n.DeclareRelation(RelationDecl{Name: "A:R", Peer: "A", Arity: 2, Kind: PeerRelation})
	_ = n.DeclareRelation(RelationDecl{Name: "B:S", Peer: "B", Arity: 1, Kind: PeerRelation})
	// Equality with projection: m(x) over A:R(x,y) = B:S(x).
	err := n.AddMapping(&Mapping{
		Kind: Equality,
		LHS:  q(atom("m", v("x")), atom("A:R", v("x"), v("y"))),
		RHS:  q(atom("m", v("x")), atom("B:S", v("x"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := n.Classify(lang.CQ{})
	if cl.Class != CoNP {
		t.Fatalf("Classify = %v", cl)
	}
}

func TestClassifyStorageEqualityProjection(t *testing.T) {
	n := New()
	_ = n.DeclareRelation(RelationDecl{Name: "A:R", Peer: "A", Arity: 2, Kind: PeerRelation})
	_ = n.DeclareRelation(RelationDecl{Name: "A.d", Peer: "A", Arity: 1, Kind: StoredRelation})
	err := n.AddStorage(&Storage{
		Kind:   StorageEquality,
		Stored: atom("A.d", v("x")),
		Query:  q(atom("s", v("x")), atom("A:R", v("x"), v("y"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := n.Classify(lang.CQ{})
	if cl.Class != CoNP {
		t.Fatalf("Thm 3.2(2) case: Classify = %v", cl)
	}
}

func TestClassifyDefinitionalHeadOnRHS(t *testing.T) {
	n := New()
	_ = n.DeclareRelation(RelationDecl{Name: "A:P", Peer: "A", Arity: 1, Kind: PeerRelation})
	_ = n.DeclareRelation(RelationDecl{Name: "A:Q", Peer: "A", Arity: 1, Kind: PeerRelation})
	_ = n.DeclareRelation(RelationDecl{Name: "B:T", Peer: "B", Arity: 1, Kind: PeerRelation})
	_ = n.AddMapping(&Mapping{
		Kind: Definitional,
		Rule: q(atom("A:P", v("x")), atom("A:Q", v("x"))),
	})
	_ = n.AddMapping(&Mapping{
		Kind: Inclusion,
		LHS:  q(atom("m", v("x")), atom("B:T", v("x"))),
		RHS:  q(atom("m", v("x")), atom("A:P", v("x"))),
	})
	cl := n.Classify(lang.CQ{})
	if cl.Class != CoNP {
		t.Fatalf("definitional head on RHS: Classify = %v", cl)
	}
}

func TestClassifyComparisonPlacement(t *testing.T) {
	n := smallPDMS(t)
	// Comparisons in the query → co-NP per Thm 3.3(2).
	qc := q(atom("q", v("x")), atom("A:R", v("x"), v("y")))
	qc.Comps = []lang.Comparison{{Op: lang.OpLT, L: v("x"), R: lang.Const("5")}}
	if cl := n.Classify(qc); cl.Class != CoNP {
		t.Fatalf("query comparisons: Classify = %v", cl)
	}
	// Comparisons in a definitional body stay PTIME per Thm 3.3(1).
	def := q(atom("A:R", v("x"), v("y")), atom("B:S", v("x"), v("y")))
	def.Comps = []lang.Comparison{{Op: lang.OpGT, L: v("x"), R: lang.Const("0")}}
	if err := n.AddMapping(&Mapping{Kind: Definitional, Rule: def}); err != nil {
		t.Fatal(err)
	}
	if cl := n.Classify(lang.CQ{}); cl.Class != PTime {
		t.Fatalf("definitional comparisons: Classify = %v", cl)
	}
	// Comparisons in an inclusion mapping → co-NP.
	inc := q(atom("m", v("x"), v("y")), atom("A:R", v("x"), v("y")))
	inc.Comps = []lang.Comparison{{Op: lang.OpNE, L: v("x"), R: v("y")}}
	if err := n.AddMapping(&Mapping{Kind: Inclusion, LHS: inc,
		RHS: q(atom("m", v("x"), v("y")), atom("B:S", v("x"), v("y")))}); err != nil {
		t.Fatal(err)
	}
	if cl := n.Classify(lang.CQ{}); cl.Class != CoNP {
		t.Fatalf("inclusion comparisons: Classify = %v", cl)
	}
}

func TestMappingString(t *testing.T) {
	n := smallPDMS(t)
	s := n.Mappings()[0].String()
	if !strings.Contains(s, "⊆") {
		t.Fatalf("Mapping.String = %q", s)
	}
	st := n.Storages()[0].String()
	if !strings.Contains(st, "B.data") {
		t.Fatalf("Storage.String = %q", st)
	}
}

func TestComplexityString(t *testing.T) {
	if PTime.String() != "PTIME" || CoNP.String() != "co-NP-complete" {
		t.Fatal("Complexity.String wrong")
	}
	if !strings.Contains(Undecidable.String(), "undecidable") {
		t.Fatal("Undecidable.String wrong")
	}
}
