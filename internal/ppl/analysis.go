package ppl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lang"
)

// AcyclicInclusions implements Definition 3.1: the inclusion dependency
// graph has a node per peer relation mentioned in the inclusion mappings and
// storage containment descriptions, and an arc R -> S for every description
// Q1 ⊆ Q2 with R in Q1 and S in Q2. It returns true when that graph is
// acyclic, plus one witness cycle (as a list of relation names) when not.
//
// Storage containment descriptions A:R ⊆ Q contribute arcs from the stored
// relation to the peer relations of Q; equality descriptions and equality
// peer mappings contribute arcs in both directions (an equality is the two
// opposite inclusions, which the paper notes "automatically create cycles" —
// callers interested in Theorem 3.2 should use Classify instead).
func (n *PDMS) AcyclicInclusions() (bool, []string) {
	adj := map[string]map[string]bool{}
	addArc := func(from, to string) {
		if adj[from] == nil {
			adj[from] = map[string]bool{}
		}
		adj[from][to] = true
	}
	addSide := func(lhs, rhs []lang.Atom) {
		for _, a := range lhs {
			for _, b := range rhs {
				addArc(a.Pred, b.Pred)
			}
		}
	}
	for _, m := range n.mappings {
		switch m.Kind {
		case Inclusion:
			addSide(m.LHS.Body, m.RHS.Body)
		case Equality:
			addSide(m.LHS.Body, m.RHS.Body)
			addSide(m.RHS.Body, m.LHS.Body)
		}
	}
	for _, s := range n.storage {
		addSide([]lang.Atom{s.Stored}, s.Query.Body)
		if s.Kind == StorageEquality {
			addSide(s.Query.Body, []lang.Atom{s.Stored})
		}
	}
	return findCycle(adj)
}

// AcyclicInclusionsOnly is AcyclicInclusions restricted to pure inclusion
// descriptions (equalities excluded), which is the graph Theorem 3.2
// requires to be acyclic.
func (n *PDMS) AcyclicInclusionsOnly() (bool, []string) {
	adj := map[string]map[string]bool{}
	addArc := func(from, to string) {
		if adj[from] == nil {
			adj[from] = map[string]bool{}
		}
		adj[from][to] = true
	}
	addSide := func(lhs, rhs []lang.Atom) {
		for _, a := range lhs {
			for _, b := range rhs {
				addArc(a.Pred, b.Pred)
			}
		}
	}
	for _, m := range n.mappings {
		if m.Kind == Inclusion {
			addSide(m.LHS.Body, m.RHS.Body)
		}
	}
	for _, s := range n.storage {
		if s.Kind == StorageContainment {
			addSide([]lang.Atom{s.Stored}, s.Query.Body)
		}
	}
	return findCycle(adj)
}

// findCycle returns (true, nil) when adj is acyclic, else (false, cycle).
func findCycle(adj map[string]map[string]bool) (bool, []string) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var cycle []string
	var dfs func(u string) bool
	dfs = func(u string) bool {
		color[u] = grey
		stack = append(stack, u)
		// Deterministic order for reproducible witnesses.
		nbrs := make([]string, 0, len(adj[u]))
		for v := range adj[u] {
			nbrs = append(nbrs, v)
		}
		sort.Strings(nbrs)
		for _, v := range nbrs {
			switch color[v] {
			case grey:
				// Found a cycle: slice the stack from v.
				for i, w := range stack {
					if w == v {
						cycle = append([]string{}, stack[i:]...)
						cycle = append(cycle, v)
						break
					}
				}
				return true
			case white:
				if dfs(v) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
		return false
	}
	nodes := make([]string, 0, len(adj))
	for u := range adj {
		nodes = append(nodes, u)
	}
	sort.Strings(nodes)
	for _, u := range nodes {
		if color[u] == white && dfs(u) {
			return false, cycle
		}
	}
	return true, nil
}

// Complexity is the data complexity class of certain-answer computation for
// a PDMS, per Theorems 3.1–3.3.
type Complexity uint8

const (
	// PTime: all certain answers computable in polynomial time; the
	// reformulation algorithm is complete.
	PTime Complexity = iota
	// CoNP: finding all certain answers is co-NP-complete; reformulation
	// remains sound but may be incomplete.
	CoNP
	// Undecidable: certain-answer computation is undecidable in general
	// for this specification shape (cyclic inclusions with projections).
	Undecidable
)

// String names the complexity class.
func (c Complexity) String() string {
	switch c {
	case PTime:
		return "PTIME"
	case CoNP:
		return "co-NP-complete"
	default:
		return "undecidable (in general)"
	}
}

// Classification reports the complexity classification and the syntactic
// findings it rests on.
type Classification struct {
	Class Complexity
	// Reasons lists the syntactic facts justifying the class, in the order
	// the theorems are checked.
	Reasons []string
}

// String renders the classification.
func (c Classification) String() string {
	return c.Class.String() + ": " + strings.Join(c.Reasons, "; ")
}

// Classify applies the syntactic conditions of Theorems 3.1–3.3 to a PDMS
// and an optional query (pass the zero CQ for query-independent analysis):
//
//   - Acyclic pure-inclusion graph + projection-free equalities + heads of
//     definitional mappings not used on the RHS of other descriptions +
//     comparisons only in storage descriptions / definitional bodies and not
//     in the query → PTIME (Thm 3.2(1), Thm 3.3(1)).
//   - Same but some equality *storage* description has projections → co-NP
//     (Thm 3.2(2)).
//   - Same but query or non-definitional mappings contain comparisons →
//     co-NP (Thm 3.3(2)).
//   - Cyclic inclusion graph (beyond what projection-free equalities
//     induce) → undecidable in general (Thm 3.1(1)).
func (n *PDMS) Classify(query lang.CQ) Classification {
	var out Classification

	acyclic, cycle := n.AcyclicInclusionsOnly()
	if !acyclic {
		out.Class = Undecidable
		out.Reasons = append(out.Reasons,
			fmt.Sprintf("inclusion peer mappings are cyclic (witness: %s)", strings.Join(cycle, " -> ")))
		return out
	}
	out.Reasons = append(out.Reasons, "inclusion peer mappings are acyclic (Definition 3.1)")

	class := PTime

	// Theorem 3.2 condition (1): equality descriptions projection-free.
	for _, m := range n.mappings {
		if m.Kind == Equality && (m.LHS.HasProjection() || m.RHS.HasProjection()) {
			class = maxComplexity(class, CoNP)
			out.Reasons = append(out.Reasons,
				fmt.Sprintf("equality peer mapping %s contains projections (Thm 3.2)", m.ID))
		}
	}
	for _, s := range n.storage {
		if s.Kind == StorageEquality && s.Query.HasProjection() {
			class = maxComplexity(class, CoNP)
			out.Reasons = append(out.Reasons,
				fmt.Sprintf("equality storage description %s contains projections (Thm 3.2(2))", s.ID))
		}
	}

	// Theorem 3.2 condition (2): a relation defined by a definitional
	// mapping must not appear on the right-hand side of any other
	// description.
	defHeads := map[string]string{}
	for _, m := range n.mappings {
		if m.Kind == Definitional {
			defHeads[m.Rule.Head.Pred] = m.ID
		}
	}
	for _, m := range n.mappings {
		var rhs []lang.Atom
		switch m.Kind {
		case Inclusion, Equality:
			rhs = m.RHS.Body
		case Definitional:
			continue
		}
		for _, a := range rhs {
			if defID, ok := defHeads[a.Pred]; ok {
				class = maxComplexity(class, CoNP)
				out.Reasons = append(out.Reasons,
					fmt.Sprintf("definitional head %s (from %s) appears on RHS of %s (Thm 3.2)", a.Pred, defID, m.ID))
			}
		}
	}
	for _, s := range n.storage {
		for _, a := range s.Query.Body {
			if defID, ok := defHeads[a.Pred]; ok {
				class = maxComplexity(class, CoNP)
				out.Reasons = append(out.Reasons,
					fmt.Sprintf("definitional head %s (from %s) appears in storage description %s (Thm 3.2)", a.Pred, defID, s.ID))
			}
		}
	}

	// Theorem 3.3: comparison predicate placement.
	for _, m := range n.mappings {
		switch m.Kind {
		case Definitional:
			// Comparisons in definitional bodies are fine (Thm 3.3(1)).
		default:
			if len(m.LHS.Comps) > 0 || len(m.RHS.Comps) > 0 {
				class = maxComplexity(class, CoNP)
				out.Reasons = append(out.Reasons,
					fmt.Sprintf("non-definitional peer mapping %s uses comparison predicates (Thm 3.3(2))", m.ID))
			}
		}
	}
	if len(query.Comps) > 0 {
		class = maxComplexity(class, CoNP)
		out.Reasons = append(out.Reasons, "query uses comparison predicates (Thm 3.3(2))")
	}

	if class == PTime {
		out.Reasons = append(out.Reasons,
			"equalities projection-free, definitional heads isolated, comparisons confined (Thms 3.2(1), 3.3(1))")
	}
	out.Class = class
	return out
}

func maxComplexity(a, b Complexity) Complexity {
	if b > a {
		return b
	}
	return a
}
