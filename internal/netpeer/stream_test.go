package netpeer

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/wire"
)

// TestStreamLargeResultRegression pins the 16MB frame-ceiling fix: a
// single-relation result whose one-shot JSON frame exceeded the old
// scanner cap (16MiB) killed the connection with only "netpeer: connection
// closed" on the client. With chunked streaming the same result flows
// through in bounded frames. The test drives both row paths — a raw client
// scan and an executor eval push-down — and asserts every received frame
// stayed near the chunk bound while the total crossed the old ceiling.
func TestStreamLargeResultRegression(t *testing.T) {
	const (
		rows    = 2500
		valSize = 8 * 1024 // ~20MB of values total, > the old 16MiB cap
	)
	pad := strings.Repeat("x", valSize)
	data := map[string][]rel.Tuple{"L.big": nil}
	for i := 0; i < rows; i++ {
		data["L.big"] = append(data["L.big"], rel.Tuple{fmt.Sprintf("k%06d", i), pad})
	}
	addr := startServer(t, data)

	// Raw client scan.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.counters = &Counters{}
	got, err := c.Scan("L.big")
	if err != nil {
		t.Fatalf("scan of >16MB relation failed (the old one-shot frame died here): %v", err)
	}
	if len(got) != rows {
		t.Fatalf("scan rows = %d, want %d", len(got), rows)
	}
	st := c.counters.Snapshot()
	if st.BytesRecv < 16*1024*1024 {
		t.Fatalf("fixture too small: received %d bytes, want > 16MiB", st.BytesRecv)
	}
	if st.MaxFrameBytes > 2*wire.ChunkMaxBytes {
		t.Fatalf("frame of %d bytes escaped the chunk bound %d", st.MaxFrameBytes, wire.ChunkMaxBytes)
	}

	// Executor eval push-down over the same relation.
	ex := NewExecutor()
	defer ex.Close()
	if err := ex.Discover(addr); err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(`q(x, y) :- L.big(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatalf("eval of >16MB result failed: %v", err)
	}
	if len(ans) != rows {
		t.Fatalf("eval rows = %d, want %d", len(ans), rows)
	}
	if est := ex.WireStats(); est.MaxFrameBytes > 2*wire.ChunkMaxBytes {
		t.Fatalf("executor frame of %d bytes escaped the chunk bound", est.MaxFrameBytes)
	}
}

// TestOversizeRequestSurfacesError pins the serveConn fix: a request frame
// over the server's limit used to kill the connection silently (the client
// only ever saw "netpeer: connection closed"). Now the oversized line is
// consumed through its newline, the server answers with an in-band error
// and a diagnostic, and the connection stays usable.
func TestOversizeRequestSurfacesError(t *testing.T) {
	data := rel.NewInstance()
	data.MustAdd("S.r", "v")
	srv := NewServer(data)
	srv.MaxRequestBytes = 4 * 1024
	var logged []string
	srv.Logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// One bind row of ~8KB blows the 4KB request cap.
	a, err := parser.ParseQuery(`q(x, y) :- S.r(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.BindEval(a.Body[0], []int{0}, [][]string{{strings.Repeat("k", 8*1024)}})
	if err == nil || !strings.Contains(err.Error(), "request frame exceeds") {
		t.Fatalf("err = %v, want in-band 'request frame exceeds' error", err)
	}
	if c.Broken() {
		t.Fatal("well-framed in-band error must not break the connection")
	}
	// The same connection keeps working.
	preds, err := c.Catalog()
	if err != nil || len(preds) != 1 {
		t.Fatalf("connection unusable after oversize request: %v (%v)", preds, err)
	}
	if st := srv.Stats(); st.ReadErrors != 1 {
		t.Fatalf("ReadErrors = %d, want 1", st.ReadErrors)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "request frame over") {
		t.Fatalf("server diagnostic missing: %q", logged)
	}
}

// TestOversizeResponseBreaksClientCleanly: a response frame over the
// client's limit cannot be trusted (the lost frame may have been the final
// marker), so the client surfaces an error and marks the connection
// broken instead of silently desyncing.
func TestOversizeResponseBreaksClientCleanly(t *testing.T) {
	addr := startStub(t, [][]stubAction{
		{{reply: strings.Repeat("z", 64*1024) + "\n"}},
	}, evalGoodRespond)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.maxFrame = 16 * 1024
	if _, err := c.Catalog(); err == nil {
		t.Fatal("oversize response frame did not surface an error")
	}
	if !c.Broken() {
		t.Fatal("client must be broken after an oversize response frame")
	}
}

// TestAdaptiveFullFetchWhenRemoteSmaller: when the partial join fans out
// past a later atom's advertised cardinality, shipping the bound keys
// loses — the executor must fetch that selection-pushed relation outright
// instead. (With two atoms the planner already orders the smaller relation
// first, so the switch genuinely needs join fan-out: here A ⋈ B binds 150
// distinct z values while C holds only 40 rows.)
func TestAdaptiveFullFetchWhenRemoteSmaller(t *testing.T) {
	peerA := map[string][]rel.Tuple{"A.small": nil}
	peerB := map[string][]rel.Tuple{"B.mid": nil}
	peerC := map[string][]rel.Tuple{"C.late": nil}
	oracle := rel.NewInstance()
	add := func(m map[string][]rel.Tuple, pred string, tu rel.Tuple) {
		m[pred] = append(m[pred], tu)
		oracle.MustAdd(pred, tu...)
	}
	for i := 0; i < 15; i++ {
		add(peerA, "A.small", rel.Tuple{fmt.Sprintf("a%d", i), fmt.Sprintf("y%d", i)})
		for j := 0; j < 10; j++ {
			add(peerB, "B.mid", rel.Tuple{fmt.Sprintf("y%d", i), fmt.Sprintf("z%d", i*10+j)})
		}
	}
	for k := 0; k < 40; k++ {
		add(peerC, "C.late", rel.Tuple{fmt.Sprintf("z%d", k), fmt.Sprintf("w%d", k)})
	}
	ex := NewExecutor()
	defer ex.Close()
	for _, m := range []map[string][]rel.Tuple{peerA, peerB, peerC} {
		if err := ex.Discover(startServer(t, m)); err != nil {
			t.Fatal(err)
		}
	}
	// Order by cardinality: A.small (15), then B.mid (150, 15 bound keys →
	// bind), then C.late (40 < 150 bound z values → adaptive full fetch).
	q, err := parser.ParseQuery(`q(x, z, w) :- A.small(x, y), B.mid(y, z), C.late(z, w)`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.New(oracle).EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 40 {
		t.Fatalf("oracle rows = %d, want 40", len(want))
	}
	got, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(got, want) {
		t.Fatalf("adaptive path diverges: got %d rows, want %d", len(got), len(want))
	}
	st := ex.WireStats()
	if st.BindBatches != 1 {
		t.Fatalf("BindBatches = %d, want exactly 1 (B.mid bind; C.late must full-fetch)", st.BindBatches)
	}
	// 15 A.small + 150 B.mid bind results + all 40 C.late rows.
	if st.RowsFetched != 15+150+40 {
		t.Fatalf("RowsFetched = %d, want %d", st.RowsFetched, 15+150+40)
	}
}

// TestPipelinedBindBatches: a bound side spanning several bind batches
// must overlap them (BindBatchesPipelined > 0), answer exactly, and — when
// pipelining is disabled — pay one sequential stall per batch instead.
func TestPipelinedBindBatches(t *testing.T) {
	const (
		keys    = 3000 // 3 batches of bindBatchSize=1024
		bigRows = 9000
	)
	small := map[string][]rel.Tuple{"C.keys": nil}
	large := map[string][]rel.Tuple{"D.rows": nil}
	oracle := rel.NewInstance()
	for i := 0; i < keys; i++ {
		tu := rel.Tuple{fmt.Sprintf("k%d", i)}
		small["C.keys"] = append(small["C.keys"], tu)
		oracle.MustAdd("C.keys", tu...)
	}
	for i := 0; i < bigRows; i++ {
		tu := rel.Tuple{fmt.Sprintf("k%d", i%4500), fmt.Sprintf("p%d", i)}
		large["D.rows"] = append(large["D.rows"], tu)
		oracle.MustAdd("D.rows", tu...)
	}
	addr1 := startServer(t, small)
	addr2 := startServer(t, large)
	q, err := parser.ParseQuery(`q(x, y) :- C.keys(x), D.rows(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.New(oracle).EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name          string
		depth         int
		wantPipelined bool
	}{
		{"pipelined", 0, true}, // default depth
		{"sequential", 1, false},
	} {
		ex := NewExecutor()
		ex.BindPipeline = tc.depth
		for _, a := range []string{addr1, addr2} {
			if err := ex.Discover(a); err != nil {
				t.Fatal(err)
			}
		}
		got, err := ex.EvalCQ(q)
		if err != nil {
			t.Fatal(err)
		}
		if !tuplesEqual(got, want) {
			t.Fatalf("%s: answers diverge (%d rows vs %d)", tc.name, len(got), len(want))
		}
		st := ex.WireStats()
		ex.Close()
		if st.BindBatches < 3 {
			t.Fatalf("%s: BindBatches = %d, want >= 3", tc.name, st.BindBatches)
		}
		if tc.wantPipelined && st.BindBatchesPipelined == 0 {
			t.Fatalf("%s: no batch overlapped an in-flight response", tc.name)
		}
		if !tc.wantPipelined && st.BindBatchesPipelined != 0 {
			t.Fatalf("%s: %d batches pipelined at depth 1", tc.name, st.BindBatchesPipelined)
		}
	}
}

// TestSlowClientCannotWedgeServer: response streams run under the
// server's read lock, so a client that requests a large scan and then
// stops reading used to be able to block a queued writer — and with it
// every other connection — indefinitely. The per-frame write deadline
// must convert that into a dropped connection: AddFact completes and
// other clients keep working.
func TestSlowClientCannotWedgeServer(t *testing.T) {
	data := rel.NewInstance()
	pad := strings.Repeat("w", 8*1024)
	for i := 0; i < 1000; i++ { // ~8MB, far past any socket buffering
		data.MustAdd("W.big", fmt.Sprintf("k%d", i), pad)
	}
	srv := NewServer(data)
	srv.WriteTimeout = 200 * time.Millisecond
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A raw connection that requests the scan and never reads a byte.
	stall, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	if _, err := stall.Write([]byte(`{"op":"scan","pred":"W.big"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the server fill the socket buffers

	done := make(chan error, 1)
	go func() { done <- srv.AddFact("W.big", rel.Tuple{"new", "row"}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AddFact wedged behind a stalled response stream")
	}
	// Fresh clients must be unaffected.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if preds, err := c.Catalog(); err != nil || len(preds) != 1 {
		t.Fatalf("catalog after stalled peer: %v (%v)", preds, err)
	}
}

// bindBatchStarts must cut batches by row count and by accumulated value
// bytes, so no request frame approaches the server's cap even when key
// values are individually large.
func TestBindBatchStartsByteBound(t *testing.T) {
	big := strings.Repeat("v", bindBatchMaxBytes/2+1)
	rows := [][]string{{big}, {big}, {big}, {"tiny"}}
	starts := bindBatchStarts(rows)
	if len(starts) != 3 || starts[0] != 0 || starts[1] != 1 || starts[2] != 2 {
		t.Fatalf("starts = %v, want [0 1 2] (one oversize row per batch, tiny rides along)", starts)
	}
	small := make([][]string, 2*bindBatchSize+1)
	for i := range small {
		small[i] = []string{"k"}
	}
	if starts := bindBatchStarts(small); len(starts) != 3 {
		t.Fatalf("row-count cut: %d batches, want 3", len(starts))
	}
}

// TestCardinalityRefreshFromResponses: estimates seeded at Discover time
// must be refreshed by the cardinalities piggybacked on later responses,
// without waiting for a re-Discover.
func TestCardinalityRefreshFromResponses(t *testing.T) {
	data := rel.NewInstance()
	data.MustAdd("E.r", "a", "1")
	data.MustAdd("E.r", "b", "2")
	srv := NewServer(data)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ex := NewExecutor()
	defer ex.Close()
	if err := ex.Discover(addr); err != nil {
		t.Fatal(err)
	}
	if n, ok := ex.cardOf("E.r"); !ok || n != 2 {
		t.Fatalf("discovered card = %d (%v), want 2", n, ok)
	}
	for i := 0; i < 7; i++ {
		if err := srv.AddFact("E.r", rel.Tuple{fmt.Sprintf("x%d", i), "9"}); err != nil {
			t.Fatal(err)
		}
	}
	q, err := parser.ParseQuery(`q(x) :- E.r(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.EvalCQ(q); err != nil {
		t.Fatal(err)
	}
	if n, _ := ex.cardOf("E.r"); n != 9 {
		t.Fatalf("card after piggybacked refresh = %d, want 9", n)
	}
}
