package netpeer

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// errShed is returned by admission.acquire when a request must be refused:
// the in-flight limit is reached and the wait queue is full, or the
// request's queue wait exceeded the bound. The server answers it with an
// in-band busy error frame; the request has done no work and is safe to
// retry after a backoff.
var errShed = errors.New("netpeer: admission queue full")

// admission is the server's global concurrency gate: at most maxInflight
// requests execute at once, up to maxQueue more wait in FIFO order for at
// most maxWait each, and everything beyond that is shed. Slots released
// while the queue is non-empty transfer directly to the oldest waiter, so
// admission order is the order acquire was called in (no barging: a new
// arrival never overtakes a waiter).
type admission struct {
	maxInflight int
	maxQueue    int
	maxWait     time.Duration

	// waitHist times successful queue waits (admitted requests only; a shed
	// request's wait is not a service latency).
	waitHist *obs.Histogram
	// shedCount counts requests refused with a busy error, for any reason
	// (queue full, wait bound exceeded).
	shedCount atomic.Uint64

	mu       sync.Mutex
	inflight int             // guarded by mu
	queue    []chan struct{} // guarded by mu (FIFO; head at index 0, closed to grant)
}

// newAdmission builds a gate; maxInflight must be positive (a nil gate is
// the admission-off mode).
func newAdmission(maxInflight, maxQueue int, maxWait time.Duration, waitHist *obs.Histogram) *admission {
	if maxQueue < 0 {
		maxQueue = 0
	}
	if maxWait <= 0 {
		maxWait = defaultQueueWait
	}
	return &admission{
		maxInflight: maxInflight,
		maxQueue:    maxQueue,
		maxWait:     maxWait,
		waitHist:    waitHist,
	}
}

// acquire blocks until a slot is granted, the queue-wait bound expires, or
// ctx is done. It returns nil when admitted (the caller must release),
// errShed when the request must be answered busy, and ctx.Err() on
// shutdown. A nil gate admits everything.
func (g *admission) acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	// Fast path only when nobody is queued, so a burst cannot barge past
	// requests already waiting.
	if g.inflight < g.maxInflight && len(g.queue) == 0 {
		g.inflight++
		g.mu.Unlock()
		return nil
	}
	if len(g.queue) >= g.maxQueue {
		g.mu.Unlock()
		g.shedCount.Add(1)
		return errShed
	}
	granted := make(chan struct{})
	g.queue = append(g.queue, granted)
	g.mu.Unlock()

	start := time.Now()
	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case <-granted:
		g.waitHist.Observe(time.Since(start))
		return nil
	case <-timer.C:
	case <-ctx.Done():
	}
	// Timed out or shutting down: withdraw from the queue — unless a grant
	// raced in between the wakeup and the lock, in which case the slot is
	// ours and must be kept (dropping it would leak an inflight count).
	g.mu.Lock()
	for i, w := range g.queue {
		if w == granted {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			g.mu.Unlock()
			if err := ctx.Err(); err != nil {
				return err
			}
			g.shedCount.Add(1)
			return errShed
		}
	}
	g.mu.Unlock()
	<-granted // already closed
	g.waitHist.Observe(time.Since(start))
	return nil
}

// release frees one slot: the oldest waiter (if any) inherits it, else the
// in-flight count drops. A nil gate is a no-op.
func (g *admission) release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	if len(g.queue) > 0 {
		granted := g.queue[0]
		copy(g.queue, g.queue[1:])
		g.queue[len(g.queue)-1] = nil
		g.queue = g.queue[:len(g.queue)-1]
		g.mu.Unlock()
		close(granted)
		return
	}
	g.inflight--
	g.mu.Unlock()
}

// load reports the current in-flight and queued request counts. A nil gate
// reports zeros.
func (g *admission) load() (inflight, queued int) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight, len(g.queue)
}

// shed reports the cumulative count of requests refused busy. A nil gate
// reports zero.
func (g *admission) shed() uint64 {
	if g == nil {
		return 0
	}
	return g.shedCount.Load()
}
