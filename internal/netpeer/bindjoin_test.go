package netpeer

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/parser"
	"repro/internal/rel"
)

// tuplesEqual compares two sorted answer sets.
func tuplesEqual(a, b []rel.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestBindJoinFetchesFewerRows is the headline acceptance check: on a
// skewed cross-peer join (small bound side, large remote side), bind-join
// must ship at least 10x fewer rows than whole-relation fetching while
// returning exactly the oracle's answers.
func TestBindJoinFetchesFewerRows(t *testing.T) {
	const big = 2000
	small := map[string][]rel.Tuple{"S.small": nil}
	large := map[string][]rel.Tuple{"L.big": nil}
	oracle := rel.NewInstance()
	for i := 0; i < 5; i++ {
		tu := rel.Tuple{fmt.Sprintf("k%d", i)}
		small["S.small"] = append(small["S.small"], tu)
		oracle.MustAdd("S.small", tu...)
	}
	for i := 0; i < big; i++ {
		tu := rel.Tuple{fmt.Sprintf("k%d", i%1000), fmt.Sprintf("p%d", i)}
		large["L.big"] = append(large["L.big"], tu)
		oracle.MustAdd("L.big", tu...)
	}
	addr1 := startServer(t, small)
	addr2 := startServer(t, large)

	q, err := parser.ParseQuery(`q(x, y) :- S.small(x), L.big(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.New(oracle).EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 10 {
		t.Fatalf("oracle rows = %d", len(want))
	}

	run := func(fetchAll bool) (rows []rel.Tuple, fetched uint64) {
		ex := NewExecutor()
		ex.FetchAll = fetchAll
		defer ex.Close()
		for _, a := range []string{addr1, addr2} {
			if err := ex.Discover(a); err != nil {
				t.Fatal(err)
			}
		}
		before := ex.WireStats().RowsFetched
		rows, err := ex.EvalCQ(q)
		if err != nil {
			t.Fatal(err)
		}
		return rows, ex.WireStats().RowsFetched - before
	}

	bindRows, bindFetched := run(false)
	fullRows, fullFetched := run(true)
	if !tuplesEqual(bindRows, want) {
		t.Fatalf("bind-join answers diverge: got %v want %v", bindRows, want)
	}
	if !tuplesEqual(fullRows, want) {
		t.Fatalf("fetch-all answers diverge: got %v want %v", fullRows, want)
	}
	if fullFetched < uint64(big) {
		t.Fatalf("fetch-all fetched only %d rows, expected >= %d", fullFetched, big)
	}
	if bindFetched*10 > fullFetched {
		t.Fatalf("bind-join fetched %d rows vs %d for fetch-all; want >= 10x reduction", bindFetched, fullFetched)
	}
}

// TestFetchNameCollisionRegression pins the scratch-name fix: two atoms on
// the same predicate whose old unescaped names ("pred|pos=const...")
// collided — R with constant "x|1=y" at position 0 versus constants
// "x","y" at positions 0 and 1 — must not share a fetch. With the old
// encoding the second atom silently reused the first atom's (differently
// selected) rows and the answer went missing.
func TestFetchNameCollisionRegression(t *testing.T) {
	addr1 := startServer(t, map[string][]rel.Tuple{
		"C.r": {{"x|1=y", "A"}, {"x", "y"}},
	})
	addr2 := startServer(t, map[string][]rel.Tuple{
		"D.s": {{"ok"}},
	})
	q, err := parser.ParseQuery(`q(v, w) :- C.r("x|1=y", v), C.r("x", "y"), D.s(w)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, fetchAll := range []bool{false, true} {
		ex := NewExecutor()
		ex.FetchAll = fetchAll
		for _, a := range []string{addr1, addr2} {
			if err := ex.Discover(a); err != nil {
				t.Fatal(err)
			}
		}
		rows, err := ex.EvalCQ(q)
		ex.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0][0] != "A" || rows[0][1] != "ok" {
			t.Fatalf("fetchAll=%v: rows = %v, want [[A ok]]", fetchAll, rows)
		}
	}
}

// TestBindJoinEmptyBoundSideShortCircuits checks the early exit: when the
// partial join is empty no keys exist to ship, the remaining atoms are
// never fetched, and the answer is empty.
func TestBindJoinEmptyBoundSideShortCircuits(t *testing.T) {
	addr1 := startServer(t, map[string][]rel.Tuple{
		"E.small": {{"only"}},
	})
	srv2data := map[string][]rel.Tuple{"F.big": nil}
	for i := 0; i < 100; i++ {
		srv2data["F.big"] = append(srv2data["F.big"], rel.Tuple{fmt.Sprintf("k%d", i), "v"})
	}
	addr2 := startServer(t, srv2data)
	ex := NewExecutor()
	defer ex.Close()
	for _, a := range []string{addr1, addr2} {
		if err := ex.Discover(a); err != nil {
			t.Fatal(err)
		}
	}
	// "nothing" never matches E.small, so the bound side is empty.
	q, err := parser.ParseQuery(`q(x, y) :- E.small(x), F.big(y, x), x = "nothing"`)
	if err != nil {
		t.Fatal(err)
	}
	before := ex.WireStats().RowsFetched
	rows, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
	// Only E.small's single row may have crossed the wire.
	if got := ex.WireStats().RowsFetched - before; got > 1 {
		t.Fatalf("fetched %d rows; the big side should never be touched", got)
	}
}

// TestBindJoinRepeatedVarAndConsts exercises bind fetches for atoms mixing
// pushed constants, repeated variables, and multiple bound positions.
func TestBindJoinRepeatedVarAndConsts(t *testing.T) {
	addr1 := startServer(t, map[string][]rel.Tuple{
		"G.a": {{"1", "2"}, {"2", "2"}, {"3", "9"}},
	})
	addr2 := startServer(t, map[string][]rel.Tuple{
		"G.b": {{"2", "2", "t"}, {"2", "5", "t"}, {"9", "9", "t"}, {"2", "2", "f"}},
	})
	oracle := rel.NewInstance()
	oracle.MustAdd("G.a", "1", "2")
	oracle.MustAdd("G.a", "2", "2")
	oracle.MustAdd("G.a", "3", "9")
	oracle.MustAdd("G.b", "2", "2", "t")
	oracle.MustAdd("G.b", "2", "5", "t")
	oracle.MustAdd("G.b", "9", "9", "t")
	oracle.MustAdd("G.b", "2", "2", "f")
	ex := NewExecutor()
	defer ex.Close()
	for _, a := range []string{addr1, addr2} {
		if err := ex.Discover(a); err != nil {
			t.Fatal(err)
		}
	}
	// y appears twice in G.b (diagonal) and "t" is pushed as a constant.
	q, err := parser.ParseQuery(`q(x, y) :- G.a(x, y), G.b(y, y, "t")`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.New(oracle).EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestBindJoinDifferentialRandomized pins bind-join answers to the
// single-instance engine oracle across randomized data partitions,
// cross-peer CQs and UCQs (including constants, comparisons, repeated
// atoms, and empty relations), for both bind-join and fetch-all paths.
func TestBindJoinDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	preds := []string{"X.p", "X.q", "Y.r", "Y.s", "Z.t"}

	for trial := 0; trial < 25; trial++ {
		// Random partition of predicates over two peers; random data.
		oracle := rel.NewInstance()
		peerData := []map[string][]rel.Tuple{{}, {}}
		home := map[string]int{}
		for _, p := range preds {
			home[p] = rng.Intn(2)
			peerData[home[p]][p] = nil // declared even when left empty
			n := rng.Intn(25)
			for i := 0; i < n; i++ {
				tu := rel.Tuple{fmt.Sprintf("v%d", rng.Intn(8)), fmt.Sprintf("v%d", rng.Intn(8))}
				peerData[home[p]][p] = append(peerData[home[p]][p], tu)
				oracle.MustAdd(p, tu...)
			}
		}
		addrs := []string{startServer(t, peerData[0]), startServer(t, peerData[1])}
		for _, mode := range []struct {
			name     string
			fetchAll bool
			discover bool // learn cardinalities → exercises the adaptive switch
		}{
			{"bind", false, false},
			{"bind-adaptive", false, true},
			{"fetchall", true, false},
		} {
			fetchAll := mode.fetchAll
			ex := NewExecutor()
			ex.FetchAll = fetchAll
			ex.BindPipeline = 1 + trial%3
			for _, p := range preds {
				ex.Route(p, addrs[home[p]])
			}
			if mode.discover {
				for _, a := range addrs {
					if err := ex.Discover(a); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Random UCQ: 1-3 chain-shaped disjuncts with arity-2 head.
			var u lang.UCQ
			for d := 0; d < 1+rng.Intn(3); d++ {
				u.Add(randomChainCQ(rng, preds))
			}
			want, err := engine.New(oracle).EvalUCQ(u)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ex.EvalUCQ(u)
			ex.Close()
			if err != nil {
				t.Fatalf("trial %d fetchAll=%v: %v\n%s", trial, fetchAll, err, u)
			}
			if !tuplesEqual(got, want) {
				t.Fatalf("trial %d fetchAll=%v: executor diverges from oracle on\n%s\ngot  %v\nwant %v",
					trial, fetchAll, u, got, want)
			}
		}
	}
}

// randomChainCQ builds a chain join q(x0, xk) :- p(x0, x1), p(x1, x2), ...
// with random predicates, occasional constants at interior positions, and
// an occasional comparison.
func randomChainCQ(rng *rand.Rand, preds []string) lang.CQ {
	k := 2 + rng.Intn(3)
	vars := make([]lang.Term, k+1)
	for i := range vars {
		vars[i] = lang.Var(fmt.Sprintf("x%d", i))
	}
	q := lang.CQ{Head: lang.NewAtom("q", vars[0], vars[k])}
	for i := 0; i < k; i++ {
		l, r := vars[i], vars[i+1]
		// Interior positions may be replaced by constants (head vars x0
		// and xk stay variables so the query remains safe).
		if i > 0 && rng.Intn(5) == 0 {
			l = lang.Const(fmt.Sprintf("v%d", rng.Intn(8)))
		}
		if i+1 < k && rng.Intn(5) == 0 {
			r = lang.Const(fmt.Sprintf("v%d", rng.Intn(8)))
		}
		q.Body = append(q.Body, lang.NewAtom(preds[rng.Intn(len(preds))], l, r))
	}
	// Keep x0 and xk bound by at least one variable occurrence each.
	q.Body[0].Args[0] = vars[0]
	q.Body[k-1].Args[1] = vars[k]
	if rng.Intn(3) == 0 {
		// Compare only a variable that survived constant substitution, so
		// the query stays evaluable.
		var bodyVars []lang.Term
		for _, a := range q.Body {
			bodyVars = a.Vars(bodyVars)
		}
		q.Comps = append(q.Comps, lang.Comparison{
			Op: lang.CompOp(rng.Intn(6)),
			L:  bodyVars[rng.Intn(len(bodyVars))],
			R:  lang.Const(fmt.Sprintf("v%d", rng.Intn(8))),
		})
	}
	return q
}
