package netpeer

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"sort"
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/rel"
	"repro/internal/store"
)

// Defaults for the executor's cross-query fragment cache. The byte budget
// counts tuple value bytes (the dominant cost); entries whose fragment
// exceeds maxFragEntryBytes are not cached at all — one huge fragment must
// not evict the whole working set for a single future hit.
const (
	defaultFragEntries = 512
	defaultFragBytes   = 64 << 20
	maxFragEntryBytes  = defaultFragBytes / 8
)

// FragmentStats is a snapshot of the executor's cross-query fragment-cache
// counters.
type FragmentStats struct {
	// Hits counts atom fetches served from the cache (after the entry's
	// generation was confirmed current); Misses counts atom fetches that
	// went to the wire while caching was enabled.
	Hits, Misses uint64
	// Invalidations counts cached fragments dropped because the serving
	// peer's generation for the fragment's relation had moved past the
	// generation the fragment was fetched at.
	Invalidations uint64
	// Evictions counts entries dropped by LRU capacity pressure (entry or
	// byte budget), not staleness.
	Evictions uint64
	// Revalidations counts gens round trips issued to confirm a candidate
	// entry's generation before serving it (zero-row requests; within the
	// FragmentTrust window they are skipped entirely).
	Revalidations uint64
	// Entries and Bytes describe the current cache contents.
	Entries int
	Bytes   int64
	// SpilledEntries counts entries whose rows currently live in a spill
	// file instead of memory; MemBytes is the tuple bytes actually resident
	// (Bytes minus the spilled portion).
	SpilledEntries int
	MemBytes       int64
}

// fragEntry is one cached fragment: the post-filter, deduplicated remote
// tuples of one (peer, atom pattern, bound-key set) fetch, stamped with the
// serving peer's generation for the fragment's relation at fetch time.
// Either rows is resident in memory (file == "") or the rows were moved to
// the spill file at path file (rows == nil) and stream back per lookup.
type fragEntry struct {
	key   string
	pred  string
	gen   uint64
	bytes int64
	rows  []rel.Tuple
	file  string
}

// fragCache is a size-bounded (entries and bytes) LRU of fragEntries,
// safe for concurrent use. Staleness is the executor's call — the cache
// only stores generations and drops entries on demand — because deciding
// freshness may involve a revalidation round trip the cache cannot issue.
//
// With a spill configuration set, the cache additionally bounds *resident*
// bytes: when memBytes exceeds memBudget, the coldest in-memory entries
// move their rows to spill files (store's frame format) and count only
// toward the total byte cap. A spilled entry still hits — its rows stream
// back from disk — so a large cold working set trades latency for memory
// instead of being evicted outright.
type fragCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List
	items      map[string]*list.Element
	bytes      int64
	// spillDir/memBudget configure cold-entry spilling (zero values keep
	// everything resident); memBytes tracks the resident portion of bytes.
	// Guarded by mu.
	spillDir  string
	memBudget int64
	memBytes  int64

	hits, misses, invalidations, evictions, revalidations uint64
}

func newFragCache(maxEntries int, maxBytes int64) *fragCache {
	return &fragCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[string]*list.Element{},
	}
}

// setLimits adjusts the capacity bounds, evicting immediately if the cache
// is over the new budget.
func (fc *fragCache) setLimits(maxEntries int, maxBytes int64) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if maxEntries > 0 {
		fc.maxEntries = maxEntries
	}
	if maxBytes > 0 {
		fc.maxBytes = maxBytes
	}
	fc.evictOverLocked()
}

// setSpill configures cold-entry spilling: once resident tuple bytes exceed
// memBudget, the least-recently-used in-memory entries move to spill files
// under dir. Applies retroactively to the current contents.
func (fc *fragCache) setSpill(dir string, memBudget int64) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.spillDir, fc.memBudget = dir, memBudget
	fc.spillOverLocked()
}

// lookup returns the entry under key without deciding whether it is fresh:
// the caller compares gen against the peer's current generation and then
// reports the outcome via confirmHit or invalidate. A spilled entry's rows
// stream back from its file; an unreadable spill file drops the entry and
// misses. The returned rows are shared — callers must not mutate them.
func (fc *fragCache) lookup(key string) (rows []rel.Tuple, gen uint64, ok bool) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	el, ok := fc.items[key]
	if !ok {
		return nil, 0, false
	}
	ent := el.Value.(*fragEntry)
	if ent.file != "" {
		loaded, err := store.LoadSpillRows(ent.file)
		if err != nil {
			fc.removeLocked(el)
			return nil, 0, false
		}
		return loaded, ent.gen, true
	}
	return ent.rows, ent.gen, true
}

// confirmHit records a generation-confirmed cache hit and promotes the
// entry to most-recently-used.
func (fc *fragCache) confirmHit(key string) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.items[key]; ok {
		fc.ll.MoveToFront(el)
	}
	fc.hits++
}

// invalidate drops the entry under key because its generation went stale.
func (fc *fragCache) invalidate(key string) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.items[key]; ok {
		fc.removeLocked(el)
		fc.invalidations++
	}
}

// missed records one cache miss (cold key or just-invalidated entry).
func (fc *fragCache) missed() {
	fc.mu.Lock()
	fc.misses++
	fc.mu.Unlock()
}

// revalidated records one gens round trip issued on behalf of the cache.
func (fc *fragCache) revalidated() {
	fc.mu.Lock()
	fc.revalidations++
	fc.mu.Unlock()
}

// put stores a fragment, evicting least-recently-used entries while over
// either capacity bound. Oversized fragments are dropped silently: caching
// them would wipe the rest of the working set.
func (fc *fragCache) put(key, pred string, gen uint64, rows []rel.Tuple, bytes int64) {
	if bytes > maxFragEntryBytes {
		return
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.items[key]; ok {
		// Replace in place (a refetch after invalidation reuses the key).
		ent := el.Value.(*fragEntry)
		fc.bytes += bytes - ent.bytes
		if ent.file != "" {
			os.Remove(ent.file)
			ent.file = ""
		} else {
			fc.memBytes -= ent.bytes
		}
		ent.gen, ent.rows, ent.bytes = gen, rows, bytes
		fc.memBytes += bytes
		fc.ll.MoveToFront(el)
	} else {
		fc.items[key] = fc.ll.PushFront(&fragEntry{key: key, pred: pred, gen: gen, rows: rows, bytes: bytes})
		fc.bytes += bytes
		fc.memBytes += bytes
	}
	fc.evictOverLocked()
	fc.spillOverLocked()
}

func (fc *fragCache) evictOverLocked() {
	for fc.ll.Len() > fc.maxEntries || fc.bytes > fc.maxBytes {
		oldest := fc.ll.Back()
		if oldest == nil {
			return
		}
		fc.removeLocked(oldest)
		fc.evictions++
	}
}

// spillOverLocked moves the coldest resident entries to spill files until
// resident bytes fit the memory budget (no-op without a spill config). A
// spill failure stops the sweep — the entry stays resident, and capacity
// eviction still bounds the cache.
func (fc *fragCache) spillOverLocked() {
	if fc.spillDir == "" || fc.memBudget <= 0 {
		return
	}
	for el := fc.ll.Back(); el != nil && fc.memBytes > fc.memBudget; {
		ent := el.Value.(*fragEntry)
		prev := el.Prev()
		if ent.file == "" && ent.bytes > 0 {
			path, err := store.SpillRows(fc.spillDir, ent.rows)
			if err != nil {
				return
			}
			ent.file, ent.rows = path, nil
			fc.memBytes -= ent.bytes
		}
		el = prev
	}
}

// clear drops every entry, deleting spill files. Counters survive.
func (fc *fragCache) clear() {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	for el := fc.ll.Back(); el != nil; el = fc.ll.Back() {
		fc.removeLocked(el)
	}
}

func (fc *fragCache) removeLocked(el *list.Element) {
	ent := el.Value.(*fragEntry)
	fc.ll.Remove(el)
	delete(fc.items, ent.key)
	fc.bytes -= ent.bytes
	if ent.file != "" {
		os.Remove(ent.file)
	} else {
		fc.memBytes -= ent.bytes
	}
}

// stats returns a snapshot of the cache counters and current size.
func (fc *fragCache) stats() FragmentStats {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	spilled := 0
	for el := fc.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*fragEntry).file != "" {
			spilled++
		}
	}
	return FragmentStats{
		Hits:           fc.hits,
		Misses:         fc.misses,
		Invalidations:  fc.invalidations,
		Evictions:      fc.evictions,
		Revalidations:  fc.revalidations,
		Entries:        fc.ll.Len(),
		Bytes:          fc.bytes,
		SpilledEntries: spilled,
		MemBytes:       fc.memBytes,
	}
}

// fragmentKey builds the cache key of one atom fetch: the serving peer's
// address, the atom's *canonical pattern* — per position a constant
// (length-prefix encoded), a back-reference to the first occurrence of a
// repeated variable, or a fresh-variable marker — and, on the bind path,
// the bound column positions plus a hash of the *sorted* distinct
// bound-key set (the key rows arrive in join-discovery order, which varies
// run to run, so the hash must not depend on it). The pattern must cover
// repeated variables, not just constants: cached rows are post-filter, and
// R(x, x) keeps only the tuples agreeing with themselves while R(x, y)
// keeps all of them — a constants-only key would alias the two. A full
// selection fetch uses the bare pattern; bind fetches with different key
// sets get distinct entries.
func fragmentKey(addr string, a lang.Atom, bindCols []int, keyRows [][]string, bind bool) string {
	b := engine.AppendKeyPart([]byte(nil), addr)
	b = append(b, '|')
	b = engine.AppendKeyPart(b, a.Pred)
	firstPos := map[string]int{}
	for i, t := range a.Args {
		b = append(b, '|')
		if t.IsConst() {
			b = append(b, '=')
			b = engine.AppendKeyPart(b, t.Name)
			continue
		}
		if fp, ok := firstPos[t.Name]; ok {
			b = append(b, '@')
			b = strconv.AppendInt(b, int64(fp), 10)
			continue
		}
		firstPos[t.Name] = i
		b = append(b, '?')
	}
	if !bind {
		return string(append(b, "|full"...))
	}
	b = append(b, "|bind"...)
	for _, c := range bindCols {
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(c), 10)
	}
	enc := make([]string, len(keyRows))
	for i, row := range keyRows {
		var kb []byte
		for _, v := range row {
			kb = engine.AppendKeyPart(kb, v)
		}
		enc[i] = string(kb)
	}
	sort.Strings(enc)
	h := sha256.New()
	for _, k := range enc {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	b = append(b, '|')
	b = append(b, hex.EncodeToString(h.Sum(nil))...)
	return string(b)
}
