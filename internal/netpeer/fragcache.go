package netpeer

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/rel"
)

// Defaults for the executor's cross-query fragment cache. The byte budget
// counts tuple value bytes (the dominant cost); entries whose fragment
// exceeds maxFragEntryBytes are not cached at all — one huge fragment must
// not evict the whole working set for a single future hit.
const (
	defaultFragEntries = 512
	defaultFragBytes   = 64 << 20
	maxFragEntryBytes  = defaultFragBytes / 8
)

// FragmentStats is a snapshot of the executor's cross-query fragment-cache
// counters.
type FragmentStats struct {
	// Hits counts atom fetches served from the cache (after the entry's
	// generation was confirmed current); Misses counts atom fetches that
	// went to the wire while caching was enabled.
	Hits, Misses uint64
	// Invalidations counts cached fragments dropped because the serving
	// peer's generation for the fragment's relation had moved past the
	// generation the fragment was fetched at.
	Invalidations uint64
	// Evictions counts entries dropped by LRU capacity pressure (entry or
	// byte budget), not staleness.
	Evictions uint64
	// Revalidations counts gens round trips issued to confirm a candidate
	// entry's generation before serving it (zero-row requests; within the
	// FragmentTrust window they are skipped entirely).
	Revalidations uint64
	// Entries and Bytes describe the current cache contents.
	Entries int
	Bytes   int64
}

// fragEntry is one cached fragment: the post-filter, deduplicated remote
// tuples of one (peer, atom pattern, bound-key set) fetch, stamped with the
// serving peer's generation for the fragment's relation at fetch time.
type fragEntry struct {
	key   string
	pred  string
	gen   uint64
	bytes int64
	rows  []rel.Tuple
}

// fragCache is a size-bounded (entries and bytes) LRU of fragEntries,
// safe for concurrent use. Staleness is the executor's call — the cache
// only stores generations and drops entries on demand — because deciding
// freshness may involve a revalidation round trip the cache cannot issue.
type fragCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List
	items      map[string]*list.Element
	bytes      int64

	hits, misses, invalidations, evictions, revalidations uint64
}

func newFragCache(maxEntries int, maxBytes int64) *fragCache {
	return &fragCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      map[string]*list.Element{},
	}
}

// setLimits adjusts the capacity bounds, evicting immediately if the cache
// is over the new budget.
func (fc *fragCache) setLimits(maxEntries int, maxBytes int64) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if maxEntries > 0 {
		fc.maxEntries = maxEntries
	}
	if maxBytes > 0 {
		fc.maxBytes = maxBytes
	}
	fc.evictOverLocked()
}

// lookup returns the entry under key without deciding whether it is fresh:
// the caller compares gen against the peer's current generation and then
// reports the outcome via confirmHit or invalidate. The returned rows are
// shared — callers must not mutate them.
func (fc *fragCache) lookup(key string) (rows []rel.Tuple, gen uint64, ok bool) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	el, ok := fc.items[key]
	if !ok {
		return nil, 0, false
	}
	ent := el.Value.(*fragEntry)
	return ent.rows, ent.gen, true
}

// confirmHit records a generation-confirmed cache hit and promotes the
// entry to most-recently-used.
func (fc *fragCache) confirmHit(key string) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.items[key]; ok {
		fc.ll.MoveToFront(el)
	}
	fc.hits++
}

// invalidate drops the entry under key because its generation went stale.
func (fc *fragCache) invalidate(key string) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.items[key]; ok {
		fc.removeLocked(el)
		fc.invalidations++
	}
}

// missed records one cache miss (cold key or just-invalidated entry).
func (fc *fragCache) missed() {
	fc.mu.Lock()
	fc.misses++
	fc.mu.Unlock()
}

// revalidated records one gens round trip issued on behalf of the cache.
func (fc *fragCache) revalidated() {
	fc.mu.Lock()
	fc.revalidations++
	fc.mu.Unlock()
}

// put stores a fragment, evicting least-recently-used entries while over
// either capacity bound. Oversized fragments are dropped silently: caching
// them would wipe the rest of the working set.
func (fc *fragCache) put(key, pred string, gen uint64, rows []rel.Tuple, bytes int64) {
	if bytes > maxFragEntryBytes {
		return
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if el, ok := fc.items[key]; ok {
		// Replace in place (a refetch after invalidation reuses the key).
		ent := el.Value.(*fragEntry)
		fc.bytes += bytes - ent.bytes
		ent.gen, ent.rows, ent.bytes = gen, rows, bytes
		fc.ll.MoveToFront(el)
	} else {
		fc.items[key] = fc.ll.PushFront(&fragEntry{key: key, pred: pred, gen: gen, rows: rows, bytes: bytes})
		fc.bytes += bytes
	}
	fc.evictOverLocked()
}

func (fc *fragCache) evictOverLocked() {
	for fc.ll.Len() > fc.maxEntries || fc.bytes > fc.maxBytes {
		oldest := fc.ll.Back()
		if oldest == nil {
			return
		}
		fc.removeLocked(oldest)
		fc.evictions++
	}
}

func (fc *fragCache) removeLocked(el *list.Element) {
	ent := el.Value.(*fragEntry)
	fc.ll.Remove(el)
	delete(fc.items, ent.key)
	fc.bytes -= ent.bytes
}

// stats returns a snapshot of the cache counters and current size.
func (fc *fragCache) stats() FragmentStats {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return FragmentStats{
		Hits:          fc.hits,
		Misses:        fc.misses,
		Invalidations: fc.invalidations,
		Evictions:     fc.evictions,
		Revalidations: fc.revalidations,
		Entries:       fc.ll.Len(),
		Bytes:         fc.bytes,
	}
}

// fragmentKey builds the cache key of one atom fetch: the serving peer's
// address, the atom's *canonical pattern* — per position a constant
// (length-prefix encoded), a back-reference to the first occurrence of a
// repeated variable, or a fresh-variable marker — and, on the bind path,
// the bound column positions plus a hash of the *sorted* distinct
// bound-key set (the key rows arrive in join-discovery order, which varies
// run to run, so the hash must not depend on it). The pattern must cover
// repeated variables, not just constants: cached rows are post-filter, and
// R(x, x) keeps only the tuples agreeing with themselves while R(x, y)
// keeps all of them — a constants-only key would alias the two. A full
// selection fetch uses the bare pattern; bind fetches with different key
// sets get distinct entries.
func fragmentKey(addr string, a lang.Atom, bindCols []int, keyRows [][]string, bind bool) string {
	b := engine.AppendKeyPart([]byte(nil), addr)
	b = append(b, '|')
	b = engine.AppendKeyPart(b, a.Pred)
	firstPos := map[string]int{}
	for i, t := range a.Args {
		b = append(b, '|')
		if t.IsConst() {
			b = append(b, '=')
			b = engine.AppendKeyPart(b, t.Name)
			continue
		}
		if fp, ok := firstPos[t.Name]; ok {
			b = append(b, '@')
			b = strconv.AppendInt(b, int64(fp), 10)
			continue
		}
		firstPos[t.Name] = i
		b = append(b, '?')
	}
	if !bind {
		return string(append(b, "|full"...))
	}
	b = append(b, "|bind"...)
	for _, c := range bindCols {
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(c), 10)
	}
	enc := make([]string, len(keyRows))
	for i, row := range keyRows {
		var kb []byte
		for _, v := range row {
			kb = engine.AppendKeyPart(kb, v)
		}
		enc[i] = string(kb)
	}
	sort.Strings(enc)
	h := sha256.New()
	for _, k := range enc {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	b = append(b, '|')
	b = append(b, hex.EncodeToString(h.Sum(nil))...)
	return string(b)
}
