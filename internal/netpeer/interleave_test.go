package netpeer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/rel"
)

// Randomized mutation interleaving across the wire: mutators AddFact into
// the peer servers while queriers run cross-peer bind-joins through one
// shared Executor with the fragment cache enabled (FragmentTrust zero, the
// revalidate-always mode). As in the pdms harness, inserts-only mutation
// plus monotone queries give a linearizability envelope:
//
//	eval(q, completed-before-start) ⊆ answer ⊆ eval(q, issued-by-end)
//
// A lost lower-bound tuple means a fragment was served past its
// generation (stale); an unexplainable tuple means fragments from
// incompatible generations were mixed into one answer beyond what the
// per-atom envelope permits.

// wireLedger is the netpeer copy of the pdms shadow ledger (separate
// package, deliberately tiny).
type wireLedger struct {
	mu     sync.Mutex
	issued map[string][]rel.Tuple
	done   map[string][]rel.Tuple
}

func newWireLedger() *wireLedger {
	return &wireLedger{issued: map[string][]rel.Tuple{}, done: map[string][]rel.Tuple{}}
}

func (s *wireLedger) seed(pred string, t rel.Tuple) {
	s.issued[pred] = append(s.issued[pred], t)
	s.done[pred] = append(s.done[pred], t)
}

func (s *wireLedger) around(pred string, t rel.Tuple, insert func() error) error {
	s.mu.Lock()
	s.issued[pred] = append(s.issued[pred], t)
	s.mu.Unlock()
	if err := insert(); err != nil {
		return err
	}
	s.mu.Lock()
	s.done[pred] = append(s.done[pred], t)
	s.mu.Unlock()
	return nil
}

func (s *wireLedger) build(issuedSide bool) *rel.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.done
	if issuedSide {
		src = s.issued
	}
	ins := rel.NewInstance()
	for pred, ts := range src {
		for _, t := range ts {
			if _, err := ins.Add(pred, t); err != nil {
				panic(err)
			}
		}
	}
	return ins
}

func keySet(ts []rel.Tuple) map[string]bool {
	m := make(map[string]bool, len(ts))
	for _, t := range ts {
		m[t.Key()] = true
	}
	return m
}

func TestExecutorMutationInterleaving(t *testing.T) {
	for _, mode := range []struct {
		name     string
		cacheOff bool
	}{
		{"fragment-cache", false},
		{"cache-off", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			srv1, addr1 := startServerH(t, map[string][]rel.Tuple{
				"S.a": {{"k0"}},
			})
			srv2, addr2 := startServerH(t, map[string][]rel.Tuple{
				"L.b": {{"k0", "v0"}},
				"L.c": {{"v0"}},
			})
			ledger := newWireLedger()
			ledger.seed("S.a", rel.Tuple{"k0"})
			ledger.seed("L.b", rel.Tuple{"k0", "v0"})
			ledger.seed("L.c", rel.Tuple{"v0"})

			ex := NewExecutor()
			defer ex.Close()
			ex.FragmentCacheOff = mode.cacheOff
			for _, a := range []string{addr1, addr2} {
				if err := ex.Discover(a); err != nil {
					t.Fatal(err)
				}
			}
			parse := func(src string) lang.CQ {
				q, err := parser.ParseQuery(src)
				if err != nil {
					t.Fatal(err)
				}
				return q
			}
			queries := []struct {
				name string
				q    lang.CQ
			}{
				{"join2", parse(`q(x, y) :- S.a(x), L.b(x, y)`)},
				{"join3", parse(`q(x) :- S.a(x), L.b(x, y), L.c(y)`)},
			}

			// Metrics snapshots ride along with the harness: while mutators
			// and queriers interleave, a sampler keeps taking registry
			// snapshots and checks that every counter is monotone across
			// them — a torn or non-atomic read would show up as a value
			// regression (and as a -race report).
			reg := obs.NewRegistry()
			srv1.RegisterMetrics(reg)
			ex.RegisterMetrics(reg)
			stopSnap := make(chan struct{})
			snapDone := make(chan struct{})
			go func() {
				defer close(snapDone)
				prev := map[string]uint64{}
				for {
					select {
					case <-stopSnap:
						return
					default:
					}
					snap := reg.Snapshot()
					for k, v := range snap.Counters {
						if v < prev[k] {
							t.Errorf("counter %s went backwards: %d -> %d", k, prev[k], v)
							return
						}
						prev[k] = v
					}
					time.Sleep(100 * time.Microsecond)
				}
			}()

			const mutators, queriers, iters = 3, 4, 25
			var wg sync.WaitGroup
			for m := 0; m < mutators; m++ {
				wg.Add(1)
				go func(m int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + m)))
					for i := 0; i < iters; i++ {
						var err error
						switch rng.Intn(3) {
						case 0:
							v := fmt.Sprintf("k%d", rng.Intn(6))
							err = ledger.around("S.a", rel.Tuple{v}, func() error {
								return srv1.AddFact("S.a", rel.Tuple{v})
							})
						case 1:
							tu := rel.Tuple{fmt.Sprintf("k%d", rng.Intn(6)), fmt.Sprintf("v%d", rng.Intn(6))}
							err = ledger.around("L.b", tu, func() error {
								return srv2.AddFact("L.b", tu)
							})
						default:
							tu := rel.Tuple{fmt.Sprintf("v%d", rng.Intn(6))}
							err = ledger.around("L.c", tu, func() error {
								return srv2.AddFact("L.c", tu)
							})
						}
						if err != nil {
							t.Error(err)
							return
						}
					}
				}(m)
			}
			for g := 0; g < queriers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(200 + g)))
					for i := 0; i < iters; i++ {
						qi := queries[rng.Intn(len(queries))]
						done := ledger.build(false)
						ans, err := ex.EvalCQ(qi.q)
						if err != nil {
							t.Error(err)
							return
						}
						issued := ledger.build(true)
						lo, err := rel.EvalCQ(qi.q, done)
						if err != nil {
							t.Error(err)
							return
						}
						hi, err := rel.EvalCQ(qi.q, issued)
						if err != nil {
							t.Error(err)
							return
						}
						ansSet, hiSet := keySet(ans), keySet(hi)
						for _, want := range lo {
							if !ansSet[want.Key()] {
								t.Errorf("%s: lost %v completed before the query (stale fragment served?)", qi.name, want)
								return
							}
						}
						for _, got := range ans {
							if !hiSet[got.Key()] {
								t.Errorf("%s: unexplainable tuple %v (mixed-generation fragments?)", qi.name, got)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(stopSnap)
			<-snapDone
			if t.Failed() {
				return
			}

			// Quiesced: exact agreement with the oracle, and — with the
			// cache on — a repeated query must be served from fragments.
			final := ledger.build(true)
			for _, qi := range queries {
				want, err := rel.EvalCQ(qi.q, final)
				if err != nil {
					t.Fatal(err)
				}
				ans, err := ex.EvalCQ(qi.q)
				if err != nil {
					t.Fatal(err)
				}
				if !tuplesEqual(ans, want) {
					t.Fatalf("%s: quiesced answer diverges: %v vs %v", qi.name, ans, want)
				}
			}
			if !mode.cacheOff {
				st0 := ex.FragmentStats()
				if _, err := ex.EvalCQ(queries[0].q); err != nil {
					t.Fatal(err)
				}
				st1 := ex.FragmentStats()
				if st1.Hits <= st0.Hits {
					t.Fatalf("quiesced repeat did not hit the fragment cache: %+v -> %+v", st0, st1)
				}
			}
		})
	}
}
