// Package netpeer turns the PDMS into an actually distributed system: each
// peer runs a Server exposing its stored relations over a newline-delimited
// JSON/TCP protocol (package wire), and an Executor evaluates reformulated
// unions of conjunctive queries across the network.
//
// The protocol has seven ops (see package wire for the JSON envelopes and
// wire/PROTOCOL.md for the normative specification):
//
//   - "catalog": list the stored relations served by this peer together
//     with their current cardinalities and per-relation generations.
//   - "scan": return every tuple of one relation.
//   - "eval": evaluate a conjunctive query whose atoms all name relations
//     served by this peer; used for full push-down of single-peer
//     rewritings and for selection-pushed per-atom fetches.
//   - "bind": the semi-join half of bind-join execution. The request
//     carries one atom (constants pushed down as selections) plus a batch
//     of bound join-key rows for the atom's BindCols positions; the server
//     probes its indexed engine once per key (engine.ProbeByKeyBatchYield)
//     and returns the distinct matching tuples instead of a full scan.
//   - "gens": report the current generation (monotonic insert counter) and
//     cardinality of the named relations — the fragment cache's row-free
//     revalidation round trip.
//   - "ping": no-op liveness probe, used by the connection pools' idle
//     health checks.
//   - "add": insert a batch of tuples into one stored relation — the
//     mutation half of mixed read/write workloads, taking the same write
//     lock as Server.AddFact.
//
// The server practices admission control: with Server.MaxInflight set, at
// most that many requests execute concurrently across all connections, up
// to MaxQueue more wait in a FIFO queue bounded by QueueWait each, and
// everything beyond is *shed* with an in-band busy error frame (retryable;
// the executor's pools back off with jitter and retry). Each connection
// additionally decodes at most MaxPipeline requests ahead of the one being
// answered — beyond that it simply stops reading, so a client pipelining
// thousands of requests is held back by TCP flow control rather than
// buffering server memory. Graceful shutdown (Drain) stops accepting,
// lets queued and in-flight requests finish, then closes.
//
// Responses STREAM: a row-bearing op answers with bounded chunks
// (wire.ChunkMaxRows / wire.ChunkMaxBytes) followed by a final frame, so
// neither side ever frames a whole answer — results larger than any fixed
// frame ceiling flow through in O(chunk) memory. The server produces rows
// through the engine's enumeration hooks (engine.StreamCQ,
// engine.ProbeByKeyBatchYield) rather than materializing answers, and the
// final frame of every data response piggybacks the cardinalities and
// generations of the relations touched (captured before row production,
// so the generation is a floor: the stream carries at least everything at
// that generation — see wire/PROTOCOL.md): the executor folds the
// cardinalities into its join-order estimates and the generations into
// its fragment-cache staleness checks. An oversized or
// garbled *request* frame is answered with an in-band error (the stream
// stays framed), never a silent connection drop; genuinely broken streams
// are counted and reported through the optional Server.Logf diagnostic
// hook.
//
// Cross-peer rewritings execute as a streaming, adaptive, pipelined
// bind-join: the Executor orders atoms by the engine's selectivity
// heuristic and maintains the partial join incrementally, streaming each
// atom's remote rows directly into a hash join against the partial result.
// Per atom it ships the distinct join keys bound so far ("bind" op) in
// pipelined batches — batch i+1 is written while batch i's rows are still
// streaming back — unless the peer's advertised cardinality says the whole
// (selection-pushed) relation is smaller than the key set, in which case
// it fetches the relation instead. UCQ disjuncts fan out over a worker
// pool, multiplexed over per-address connection pools (one Client is not
// safe for concurrent use); pooled connections idle past
// Executor.IdlePingAfter are pinged before reuse so a peer restart is
// absorbed by a fresh dial instead of a first-request failure. Both sides
// keep wire-level counters (requests, rows, bytes, bind batches and how
// many were pipelined, health pings/drops) so the shipping and stall
// savings are measurable.
//
// On top of the wire path sits the executor's cross-query fragment cache —
// the distributed half of the system's two-level cache architecture (the
// local half is pdms.Network's generation-vector answer cache):
//
//   - Every fetched or probed fragment is cached under (peer address,
//     canonical atom pattern, bound-key-set hash) in an LRU bounded by
//     entries and bytes, stamped with the relation's generation reported
//     by the fetch's own response frames (a fetch whose frames disagree —
//     a mutation landed mid-fetch — is not cached).
//   - A cached fragment is served only after its generation is confirmed
//     current: by default via a "gens" round trip (strong consistency with
//     the peer at revalidation time, zero rows shipped), or for free when
//     the generation was observed within the Executor.FragmentTrust window
//     (zero traffic, staleness bounded by the window — the TTL fallback
//     for peers mutated outside our view).
//   - An AddFact on the serving peer moves only that relation's
//     generation, so fragments of other relations keep hitting.
//
// The paper treats query execution as out of scope ("recent techniques for
// adaptive query processing are well suited for our context"); this package
// supplies the minimal honest substrate so that the full pipeline — pose at
// a peer, reformulate, execute across peers — runs over real sockets.
package netpeer

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/rel"
	"repro/internal/store"
	"repro/internal/wire"
)

// defaultMaxRequestBytes caps one request frame. Legitimate requests are
// small — queries, scans, and byte-bounded bind batches — so anything near
// this is a bug or abuse, and it must stay far below wire.DefaultMaxFrame
// (the client-side response sanity cap) to bound per-connection buffering.
const defaultMaxRequestBytes = 64 << 20

// defaultWriteTimeout bounds one response-frame write. Responses stream
// under the server's read lock, so a client that stops reading would
// otherwise hold the lock (and, once a writer queues, every other
// connection) indefinitely; the deadline converts that into a dropped
// connection. A legitimate slow reader only has to drain one bounded
// chunk per timeout.
const defaultWriteTimeout = 60 * time.Second

// defaultQueueWait bounds one request's admission-queue wait when the
// server runs with MaxInflight set but no explicit QueueWait: long enough
// to ride out a burst, short enough that a queued client learns it is
// being shed instead of timing out blind.
const defaultQueueWait = time.Second

// defaultMaxPipeline is how many requests one connection may have decoded
// ahead of the one currently being answered. Past it the connection's read
// loop pauses, so a pipelining client is throttled by TCP flow control
// instead of server memory.
const defaultMaxPipeline = 8

// acceptBackoffMin and acceptBackoffMax bound the retry backoff of the
// accept loop after a temporary Accept failure (EMFILE under connection
// storms, ECONNABORTED, ...). The backoff doubles per consecutive failure
// and resets on success.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = time.Second
)

// Server serves one peer's stored relations. Eval requests run through a
// per-server indexed engine whose indexes and compiled plans persist across
// requests (and catch up incrementally with AddFact).
type Server struct {
	// Logf, when non-nil, receives server-side diagnostics for conditions
	// that cannot be answered in-band (broken request streams, read
	// failures). Set it before Start.
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives the same diagnostics as structured
	// records (with peer and error attributes) and takes precedence over
	// Logf. Set it before Start.
	Logger *slog.Logger
	// Tracer, when non-nil, keeps the span trees of traced requests this
	// server has answered in its ring buffer — the serving-side
	// /debug/traces view. Untraced requests are never recorded.
	Tracer *obs.Tracer
	// MaxRequestBytes caps one request frame (0 = defaultMaxRequestBytes).
	// An over-limit frame is consumed through its newline and answered
	// with an in-band error response — the connection survives.
	MaxRequestBytes int
	// WriteTimeout bounds each response-frame write (0 =
	// defaultWriteTimeout, negative = no deadline). A client that stops
	// reading is disconnected after one timeout instead of pinning the
	// server's read lock.
	WriteTimeout time.Duration
	// MaxInflight caps requests executing concurrently across all
	// connections; requests beyond it wait in a bounded FIFO queue and are
	// shed with an in-band busy error once the queue is full or the wait
	// exceeds QueueWait. 0 disables admission control (every request is
	// admitted immediately). Set before Start.
	MaxInflight int
	// MaxQueue bounds the admission wait queue (0 = no queue: requests
	// beyond MaxInflight are shed immediately). Meaningful only with
	// MaxInflight > 0. Set before Start.
	MaxQueue int
	// QueueWait bounds one request's admission wait (0 = defaultQueueWait).
	// Set before Start.
	QueueWait time.Duration
	// MaxPipeline caps requests decoded ahead per connection while earlier
	// ones are still being answered (0 = defaultMaxPipeline). Once the
	// read-ahead buffer is full the connection stops reading — TCP flow
	// control, not server memory, absorbs an over-eager pipeliner. Set
	// before Start.
	MaxPipeline int

	// mu guards the lifecycle fields below (lis, cancel, adm) with brief
	// exclusive sections; data paths — streams and inserts alike — only
	// ever take the read side. Nothing data-bearing may take the write
	// lock: a stream holds RLock for its whole response, so one stalled
	// consumer plus one pending writer would convoy every later reader
	// behind this write-preferring RWMutex (see handleAdd). Read-side
	// inserts are safe because the instance itself self-synchronizes:
	// relation shards carry their own locks and rel.Instance serializes
	// first-use relation creation internally, so this RLock only pins the
	// instance pointer.
	mu   sync.RWMutex
	data *rel.Instance // guarded by mu (all access under RLock; instance self-synchronizes)
	// view is the storage-interface view of data the catalog/meta paths
	// read; same guard discipline as data.
	view store.Instance
	eng  *engine.Engine

	// reqHist times every admitted request (dequeue to final frame
	// written, admission wait included), exported as
	// server.request_seconds by RegisterMetrics.
	reqHist *obs.Histogram
	// queueWaitHist times successful admission-queue waits, exported as
	// server.queue_wait_seconds by RegisterMetrics.
	queueWaitHist *obs.Histogram
	// adm is the admission gate, built by ServeListener from MaxInflight/
	// MaxQueue/QueueWait (nil = admission off).
	adm *admission // guarded by mu (ServeListener publishes; read via gate)

	lis    net.Listener       // guarded by mu (Start publishes, Close consumes)
	cancel context.CancelFunc // guarded by mu
	wg     sync.WaitGroup

	// draining is set by Drain: the listener is gone, connections finish
	// the requests they have read (including pipelined read-ahead) and
	// unblocked idle reads exit cleanly instead of counting as errors.
	draining atomic.Bool
	connMu   sync.Mutex
	conns    map[net.Conn]struct{} // guarded by connMu (live connections, for Drain's read-deadline nudge)

	requests      atomic.Uint64
	rowsServed    atomic.Uint64
	bytesSent     atomic.Uint64
	bytesRecv     atomic.Uint64
	readErrors    atomic.Uint64
	acceptRetries atomic.Uint64
}

// ServerStats is a snapshot of a server's cumulative wire-level counters.
type ServerStats struct {
	// Requests counts protocol requests handled (including errors).
	Requests uint64
	// RowsServed counts tuples returned across all response frames.
	RowsServed uint64
	// BytesSent and BytesRecv count response and request bytes on the wire.
	BytesSent, BytesRecv uint64
	// ReadErrors counts request frames that could not be read cleanly
	// (over-limit or broken mid-line). Over-limit frames also get an
	// in-band error response; the rest tear down the connection with a
	// Logf diagnostic instead of dying silently.
	ReadErrors uint64
	// Shed counts requests refused with an in-band busy error by the
	// admission gate (queue full or queue-wait bound exceeded).
	Shed uint64
	// AcceptRetries counts temporary Accept failures the listen loop rode
	// out with backoff instead of terminating.
	AcceptRetries uint64
	// Inflight and Queued are instantaneous admission-gate readings:
	// requests currently executing and currently waiting for a slot.
	Inflight, Queued int
}

// gate returns the admission gate (nil while the server has not started
// or runs without admission control).
func (s *Server) gate() *admission {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.adm
}

// Stats returns a snapshot of the server's wire-level counters.
func (s *Server) Stats() ServerStats {
	adm := s.gate()
	inflight, queued := adm.load()
	return ServerStats{
		Requests:      s.requests.Load(),
		RowsServed:    s.rowsServed.Load(),
		BytesSent:     s.bytesSent.Load(),
		BytesRecv:     s.bytesRecv.Load(),
		ReadErrors:    s.readErrors.Load(),
		Shed:          adm.shed(),
		AcceptRetries: s.acceptRetries.Load(),
		Inflight:      inflight,
		Queued:        queued,
	}
}

// NewServer creates a server over the given instance (which the server
// reads under its own lock; use AddFact for concurrent-safe insertion).
func NewServer(data *rel.Instance) *Server {
	if data == nil {
		data = rel.NewInstance()
	}
	return &Server{
		data:          data,
		view:          store.InstanceOf(data),
		eng:           engine.New(data),
		reqHist:       obs.NewHistogram(),
		queueWaitHist: obs.NewHistogram(),
		conns:         map[net.Conn]struct{}{},
	}
}

// AddFact inserts a tuple into a served relation. Inserts self-synchronize
// inside the instance — at the shard level for tuples, under rel.Instance's
// own lock for first-use relation creation — so this never waits for (or
// convoys behind) an in-flight response stream; the read lock only pins
// the instance pointer.
func (s *Server) AddFact(pred string, t rel.Tuple) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, err := s.data.Add(pred, t)
	return err
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ServeListener(lis)
	return lis.Addr().String(), nil
}

// ServeListener serves the peer protocol on a caller-provided listener
// (tests inject fault-injecting listeners here; Start wraps it with a TCP
// listen). It returns immediately; Close or Drain stop it and close lis.
func (s *Server) ServeListener(lis net.Listener) {
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.lis = lis
	s.cancel = cancel
	if s.MaxInflight > 0 {
		s.adm = newAdmission(s.MaxInflight, s.MaxQueue, s.QueueWait, s.queueWaitHist)
	}
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ctx, lis)
}

// Close stops the listener, disconnects every client, and waits for the
// connection goroutines. In-flight requests are aborted (their connections
// close under them); use Drain first for a graceful stop. It is safe to
// call from a goroutine other than the one that called Start.
func (s *Server) Close() error {
	s.mu.Lock()
	lis, cancel := s.lis, s.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	var err error
	if lis != nil {
		if cerr := lis.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
			// Drain may already have closed the listener; that is not an
			// error of this Close.
			err = cerr
		}
	}
	s.wg.Wait()
	return err
}

// Drain shuts the server down gracefully: stop accepting new connections,
// let every request already read — executing, queued for admission, or
// decoded ahead in a connection's pipeline — finish, then close. Clients
// idle at a frame boundary are disconnected cleanly. Connections still
// busy after timeout are cut off by the final Close. Drain does not shed
// queued work: admission waiters are granted or shed by their own
// queue-wait bound as usual.
func (s *Server) Drain(timeout time.Duration) error {
	s.draining.Store(true)
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close() // stop accepting; acceptLoop exits on net.ErrClosed
	}
	// Nudge idle readers out of their blocking read: buffered (pipelined)
	// requests still drain from the bufio layer, but a connection waiting
	// at a frame boundary sees a timeout, which the read loop treats as a
	// clean disconnect while draining.
	s.connMu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
	}
	return s.Close()
}

// trackConn registers a live connection for Drain's read-deadline nudge.
func (s *Server) trackConn(conn net.Conn, add bool) {
	s.connMu.Lock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
	s.connMu.Unlock()
}

func (s *Server) acceptLoop(ctx context.Context, lis net.Listener) {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := lis.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return // shut down
			}
			// A failed Accept is almost always transient — EMFILE during a
			// connection storm, ECONNABORTED, a momentary kernel refusal —
			// and returning here would silently take the whole peer down
			// (the original bug: one descriptor-exhaustion blip terminated
			// Serve). Retry with capped exponential backoff; genuine
			// listener death surfaces as net.ErrClosed above.
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			s.acceptRetries.Add(1)
			s.logw("netpeer: accept failed; retrying", "err", err, "backoff", backoff)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(ctx, conn)
		}()
	}
}

// serverConnWriter counts response bytes as they hit the socket.
type serverConnWriter struct {
	s    *Server
	conn net.Conn
}

func (w serverConnWriter) Write(p []byte) (int, error) {
	n, err := w.conn.Write(p)
	w.s.bytesSent.Add(uint64(n))
	return n, err
}

// connItem is one unit of per-connection work handed from the read loop to
// the handler: a decoded request, or an in-band error to answer in order.
type connItem struct {
	req wire.Request
	// errMsg, when non-empty, short-circuits handling: the handler answers
	// with this in-band error frame instead of dispatching req (over-limit
	// frames, undecodable JSON). The stream stays framed either way.
	errMsg string
}

func (s *Server) serveConn(ctx context.Context, conn net.Conn) {
	// Close the connection when the server shuts down so the reads below
	// unblock and Close's WaitGroup drains even with idle clients.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	s.trackConn(conn, true)
	defer s.trackConn(conn, false)
	bw := bufio.NewWriterSize(serverConnWriter{s: s, conn: conn}, 64*1024)
	enc := json.NewEncoder(bw)
	writeTimeout := s.WriteTimeout
	if writeTimeout == 0 {
		writeTimeout = defaultWriteTimeout
	}
	// send writes one response frame and flushes it to the socket, so the
	// client makes progress chunk by chunk. Each frame gets its own write
	// deadline: response streams run under the server's read lock, and a
	// client that stops draining must cost a dropped connection, not a
	// wedged lock. Only this (handler) goroutine calls send, so responses
	// stay in request order even with the read loop decoding ahead.
	send := func(resp wire.Response) error {
		if writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		}
		s.rowsServed.Add(uint64(len(resp.Rows)))
		if err := enc.Encode(resp); err != nil {
			return err
		}
		return bw.Flush()
	}

	// Pipelining split: a read loop decodes up to MaxPipeline requests
	// ahead while this goroutine answers them strictly in order. The
	// channel bound is the per-connection pipelining limit — when it fills,
	// the read loop stops reading and TCP flow control pushes back on the
	// client.
	depth := s.MaxPipeline
	if depth <= 0 {
		depth = defaultMaxPipeline
	}
	items := make(chan connItem, depth)
	// handlerDone unblocks a read loop stuck sending on items after the
	// handler bails out mid-queue (transport failure on a response write).
	handlerDone := make(chan struct{})
	defer close(handlerDone)
	go s.readRequests(conn, items, handlerDone)

	adm := s.gate()
	for it := range items {
		select {
		case <-ctx.Done():
			return
		default:
		}
		if it.errMsg != "" {
			if send(wire.Response{Error: it.errMsg}) != nil {
				return
			}
			continue
		}
		// Admission: acquire a global execution slot (or queue for one)
		// before any work happens. A shed request is answered with a
		// retryable in-band busy frame and costs the server nothing else.
		if err := adm.acquire(ctx); err != nil {
			if errors.Is(err, errShed) {
				if send(wire.Response{
					Error: fmt.Sprintf("server busy: %d in flight, %d queued", s.MaxInflight, s.MaxQueue),
					Busy:  true,
				}) != nil {
					return
				}
				continue
			}
			return // shutting down
		}
		reqStart := time.Now()
		err := s.handleStream(it.req, send)
		s.reqHist.Observe(time.Since(reqStart))
		adm.release()
		if err != nil {
			return
		}
	}
}

// readRequests is a connection's read loop: it decodes frames into items
// until EOF, a terminal read failure, or the handler's exit. In-band
// recoverable failures (over-limit frames, bad JSON) flow through the
// channel so the handler answers them in order.
func (s *Server) readRequests(conn net.Conn, items chan<- connItem, handlerDone <-chan struct{}) {
	defer close(items)
	br := bufio.NewReaderSize(conn, 64*1024)
	maxFrame := s.MaxRequestBytes
	if maxFrame <= 0 {
		maxFrame = defaultMaxRequestBytes
	}
	push := func(it connItem) bool {
		select {
		case items <- it:
			return true
		case <-handlerDone:
			return false
		}
	}
	for {
		frame, err := wire.ReadFrame(br, maxFrame)
		switch {
		case err == nil:
		case errors.Is(err, wire.ErrFrameTooLarge):
			// The oversized line was consumed through its newline, so the
			// stream is still framed: answer in-band instead of dropping
			// the connection (the old fixed-buffer scanner died here with
			// no diagnostic on either side).
			s.requests.Add(1)
			s.readErrors.Add(1)
			s.logw("netpeer: request frame over limit", "peer", conn.RemoteAddr(), "limit", maxFrame)
			if !push(connItem{errMsg: fmt.Sprintf("request frame exceeds %d bytes", maxFrame)}) {
				return
			}
			continue
		case errors.Is(err, io.EOF):
			return // clean disconnect at a frame boundary
		default:
			var ne net.Error
			if s.draining.Load() && errors.As(err, &ne) && ne.Timeout() {
				// Drain's read-deadline nudge: the client is idle at a
				// frame boundary (any buffered pipelined requests were
				// already decoded above); wind the connection down quietly.
				return
			}
			s.readErrors.Add(1)
			s.logw("netpeer: reading request", "peer", conn.RemoteAddr(), "err", err)
			return
		}
		s.requests.Add(1)
		s.bytesRecv.Add(uint64(len(frame) + 1))
		var req wire.Request
		if err := json.Unmarshal(frame, &req); err != nil {
			if !push(connItem{errMsg: fmt.Sprintf("bad request: %v", err)}) {
				return
			}
			continue
		}
		if !push(connItem{req: req}) {
			return
		}
	}
}

// chunker accumulates streamed rows and flushes them as bounded non-final
// frames, keeping per-response memory O(chunk) regardless of result size.
type chunker struct {
	send    func(wire.Response) error
	rows    [][]string
	bytes   int
	total   int         // rows streamed so far, across all frames
	spans   []wire.Span // trace spans for the final frame (traced requests only)
	sendErr error       // transport failure; terminal for the connection
}

// row buffers one tuple, flushing a non-final frame at the chunk bounds.
func (c *chunker) row(t rel.Tuple) error {
	c.rows = append(c.rows, t)
	c.total++
	for _, v := range t {
		c.bytes += len(v)
	}
	if len(c.rows) >= wire.ChunkMaxRows || c.bytes >= wire.ChunkMaxBytes {
		if err := c.send(wire.Response{Rows: c.rows, More: true}); err != nil {
			c.sendErr = err
			return err
		}
		c.rows, c.bytes = nil, 0
	}
	return nil
}

// finish emits the final frame: any buffered rows plus the piggybacked
// cardinalities, generations and per-column distinct estimates of the
// relations the request touched.
func (c *chunker) finish(preds []string, cards []int, gens []uint64, dists [][]float64) error {
	return c.send(wire.Response{Rows: c.rows, Preds: preds, Cards: cards, Gens: gens, Distinct: dists, Spans: c.spans})
}

// handleStream answers one request as a stream of frames through send. It
// returns the first transport error, or nil once the response — success or
// in-band error — is fully written. Row production runs under the read
// lock, but so do concurrent adds (shards self-synchronize): with
// append-only relations a stream observes a superset of the instance at
// its start and a subset of the instance at its end, the sound consistency
// contract for monotone conjunctive queries — and the one that keeps a
// stalled stream from convoying the rest of the server (see handleAdd).
func (s *Server) handleStream(req wire.Request, send func(wire.Response) error) error {
	// A traced request (req.Trace set) gets a detached server-side span
	// tree; exported finishes it and flattens it for the success final
	// frame, parented under the caller's span ID from the request. Error
	// responses ship no spans (error frames carry only "error"), and an
	// untraced request costs only the nil checks inside the span methods.
	// A configured Tracer whose sampling knob is 0 is the serving-side
	// kill switch: remote trace requests are ignored (tracing is
	// best-effort per the protocol, so callers just see no remote detail).
	var root *obs.Span
	if req.Trace != "" && (s.Tracer == nil || s.Tracer.SampleEvery() > 0) {
		root = obs.StartRemote("serve."+req.Op, obs.Attr{K: "trace", V: req.Trace})
	}
	exported := func() []wire.Span {
		if root == nil {
			return nil
		}
		root.End()
		s.Tracer.Record(root)
		return spansToWire(root.Export(req.Span))
	}
	if req.Op == "add" {
		// The one mutating op: it manages its own (read-side) locking, so
		// it branches off before the read lock the streaming ops hold for
		// their whole response.
		return s.handleAdd(req, send, exported)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	// metaOf assembles the piggyback payload for the touched relations:
	// cardinality (a join-order estimate) and generation (the fragment
	// cache's staleness token). Streaming ops capture it BEFORE row
	// production: with adds landing concurrently, a generation read after
	// the stream could include a tuple the stream already walked past (and
	// so missed), and a fragment tagged with it would claim completeness it
	// doesn't have. Captured up front, the tag is a floor — the append-only
	// logs guarantee the stream carries everything at or before it, and any
	// extra rows that land mid-stream are true tuples monotone queries
	// absorb.
	metaOf := func(preds ...string) ([]string, []int, []uint64, [][]float64) {
		cards := make([]int, len(preds))
		gens := make([]uint64, len(preds))
		dists := make([][]float64, len(preds))
		for i, p := range preds {
			if r := s.view.Relation(p); r != nil {
				cards[i] = r.Len()
				gens[i] = r.Version()
				// Per-column distinct estimates from the relation's HLL
				// column sketches — a join-ordering hint, like Cards.
				dists[i] = r.Stats().Distinct
			}
		}
		return preds, cards, gens, dists
	}
	switch req.Op {
	case "catalog":
		preds, cards, gens, dists := metaOf(s.view.Relations()...)
		return send(wire.Response{Preds: preds, Cards: cards, Gens: gens, Distinct: dists, Spans: exported()})
	case "gens":
		// The fragment-cache revalidation round trip: tiny and row-free.
		// Each generation read is individually current; callers compare
		// them per predicate against cached floors, so no cross-predicate
		// snapshot is needed. Deliberately no Distinct piggyback: the op
		// exists to be minimal, and column statistics ride on every other
		// response anyway.
		preds, cards, gens, _ := metaOf(req.Preds...)
		return send(wire.Response{Preds: preds, Cards: cards, Gens: gens, Spans: exported()})
	case "ping":
		// Liveness probe for pool health checks; deliberately touches no
		// relation state.
		return send(wire.Response{Spans: exported()})
	case "scan":
		// StreamScan walks the per-shard insert logs directly: no sort, no
		// sorted-view materialization, O(chunk) memory end to end. Row order
		// is per-shard insertion order (unspecified globally).
		preds, cards, gens, dists := metaOf(req.Pred)
		c := &chunker{send: send}
		ss := root.Child("scan", obs.Attr{K: "pred", V: req.Pred})
		err := s.eng.StreamScan(req.Pred, c.row)
		ss.SetErr(err)
		ss.SetInt("rows", int64(c.total))
		ss.End()
		if err != nil {
			if c.sendErr != nil {
				return c.sendErr
			}
			return send(wire.Response{Error: err.Error()})
		}
		c.spans = exported()
		return c.finish(preds, cards, gens, dists)
	case "eval":
		if req.Query == nil {
			return send(wire.Response{Error: "eval: missing query"})
		}
		q, err := req.Query.ToCQ()
		if err != nil {
			return send(wire.Response{Error: err.Error()})
		}
		seen := map[string]bool{}
		var bodyPreds []string
		for _, a := range q.Body {
			if !seen[a.Pred] {
				seen[a.Pred] = true
				bodyPreds = append(bodyPreds, a.Pred)
			}
		}
		preds, cards, gens, dists := metaOf(bodyPreds...)
		c := &chunker{send: send}
		es := root.Child("eval", obs.Attr{K: "head", V: q.Head.Pred})
		err = s.eng.StreamCQ(q, c.row)
		es.SetErr(err)
		es.SetInt("rows", int64(c.total))
		es.End()
		if err != nil {
			if c.sendErr != nil {
				return c.sendErr
			}
			// Evaluation failed mid-stream: the error frame is final and
			// supersedes any rows already shipped.
			return send(wire.Response{Error: err.Error()})
		}
		c.spans = exported()
		return c.finish(preds, cards, gens, dists)
	case "bind":
		pred, cols, keys, err := bindProbeArgs(req)
		if err != nil {
			return send(wire.Response{Error: err.Error()})
		}
		bindPreds, cards, gens, dists := metaOf(pred)
		c := &chunker{send: send}
		bs := root.Child("bind", obs.Attr{K: "pred", V: pred})
		bs.SetInt("keys", int64(len(keys)))
		err = s.eng.ProbeByKeyBatchYield(pred, cols, keys, c.row)
		bs.SetErr(err)
		bs.SetInt("rows", int64(c.total))
		bs.End()
		if err != nil {
			if c.sendErr != nil {
				return c.sendErr
			}
			return send(wire.Response{Error: err.Error()})
		}
		c.spans = exported()
		return c.finish(bindPreds, cards, gens, dists)
	default:
		return send(wire.Response{Error: fmt.Sprintf("unknown op %q", req.Op)})
	}
}

// handleAdd applies one add request: insert req.Rows into req.Pred (rows
// become visible individually as each shard-level insert lands — the batch
// is not an atomic unit of visibility), then answer with a single final
// frame whose piggyback metadata (cardinality, generation) is read after
// the last insert, so the client's fragment cache sees a generation at
// least as new as its own write. A failed row stops the batch; rows before
// it stay inserted (the in-band error reports how many landed).
//
// Inserts deliberately run under the read lock (tuple inserts synchronize
// at the shard level, and rel.Instance internally serializes the map write
// when a new predicate materializes a relation): an exclusive lock here
// would convoy the whole server behind any stalled response stream —
// streams hold the read lock end to end, so one slow consumer plus one
// pending writer would block every later reader on this write-preferring
// RWMutex for as long as the stall lasts (bounded only by WriteTimeout).
// Append-only relations keep concurrent streams sound: a stream observes a
// superset of its start-state and a subset of its end-state, which is
// exactly right for monotone conjunctive queries.
func (s *Server) handleAdd(req wire.Request, send func(wire.Response) error, exported func() []wire.Span) error {
	if req.Pred == "" {
		return send(wire.Response{Error: "add: missing pred"})
	}
	s.mu.RLock()
	var inserted int
	var addErr error
	for _, row := range req.Rows {
		if _, addErr = s.data.Add(req.Pred, rel.Tuple(row)); addErr != nil {
			break
		}
		inserted++
	}
	var cards []int
	var gens []uint64
	var dists [][]float64
	if r := s.view.Relation(req.Pred); r != nil {
		cards = []int{r.Len()}
		gens = []uint64{r.Version()}
		dists = [][]float64{r.Stats().Distinct}
	}
	s.mu.RUnlock()
	if addErr != nil {
		return send(wire.Response{Error: fmt.Sprintf("add: row %d of %d: %v", inserted, len(req.Rows), addErr)})
	}
	return send(wire.Response{Preds: []string{req.Pred}, Cards: cards, Gens: gens, Distinct: dists, Spans: exported()})
}

// bindProbeArgs validates one bind request and lowers it to a probe: the
// distinct tuples of the atom's relation matching the atom's constants
// plus, at the BindCols positions, any one of the shipped key rows. Probe
// columns are the constant positions merged with the bind positions, so
// the whole batch runs off one hash index. The result may be a superset of
// what the join needs (repeated variables inside the atom are re-checked
// by the caller's local join).
func bindProbeArgs(req wire.Request) (pred string, cols []int, keys [][]string, err error) {
	if req.Atom == nil {
		return "", nil, nil, fmt.Errorf("bind: missing atom")
	}
	a, err := req.Atom.ToAtom()
	if err != nil {
		return "", nil, nil, err
	}
	if len(req.BindCols) == 0 {
		return "", nil, nil, fmt.Errorf("bind: no bound columns for %s", a.Pred)
	}
	// keyCol pins one probe column to either the atom constant at that
	// position or a per-row bind value.
	type keyCol struct {
		col      int
		constVal string
		bindIdx  int // index into each bind row, or -1 for a constant
	}
	var kcs []keyCol
	for pos, t := range a.Args {
		if t.IsConst() {
			kcs = append(kcs, keyCol{col: pos, constVal: t.Name, bindIdx: -1})
		}
	}
	for i, c := range req.BindCols {
		if c < 0 || c >= a.Arity() {
			return "", nil, nil, fmt.Errorf("bind: column %d out of range for %s/%d", c, a.Pred, a.Arity())
		}
		if a.Args[c].IsConst() {
			return "", nil, nil, fmt.Errorf("bind: column %d of %s is a pushed constant", c, a.Pred)
		}
		kcs = append(kcs, keyCol{col: c, bindIdx: i})
	}
	sort.Slice(kcs, func(i, j int) bool { return kcs[i].col < kcs[j].col })
	for i := 1; i < len(kcs); i++ {
		if kcs[i].col == kcs[i-1].col {
			return "", nil, nil, fmt.Errorf("bind: duplicate column %d for %s", kcs[i].col, a.Pred)
		}
	}
	cols = make([]int, len(kcs))
	for i, kc := range kcs {
		cols[i] = kc.col
	}
	keys = make([][]string, 0, len(req.BindRows))
	for _, row := range req.BindRows {
		if len(row) != len(req.BindCols) {
			return "", nil, nil, fmt.Errorf("bind: row has %d values, want %d", len(row), len(req.BindCols))
		}
		key := make([]string, len(kcs))
		for j, kc := range kcs {
			if kc.bindIdx < 0 {
				key[j] = kc.constVal
			} else {
				key[j] = row[kc.bindIdx]
			}
		}
		keys = append(keys, key)
	}
	return a.Pred, cols, keys, nil
}

// Counters aggregates wire-level client traffic, typically shared by every
// pooled connection of one Executor. All fields are updated atomically;
// safe for concurrent use.
type Counters struct {
	requests      atomic.Uint64
	rowsFetched   atomic.Uint64
	bytesSent     atomic.Uint64
	bytesRecv     atomic.Uint64
	maxFrame      atomic.Uint64
	bindBatches   atomic.Uint64
	bindPipelined atomic.Uint64
	healthPings   atomic.Uint64
	healthDrops   atomic.Uint64
	dials         atomic.Uint64
	poolWaits     atomic.Uint64
	busyRetries   atomic.Uint64
	distinctMeta  atomic.Uint64
}

// WireStats is a snapshot of client-side wire counters.
type WireStats struct {
	// Requests counts protocol round trips issued.
	Requests uint64
	// RowsFetched counts tuples received in responses. This is the
	// headline bind-join metric: a semi-join ships only tuples that can
	// join, so RowsFetched drops by the join selectivity versus whole-
	// relation fetching.
	RowsFetched uint64
	// BytesSent and BytesRecv count request and response bytes on the wire.
	BytesSent, BytesRecv uint64
	// MaxFrameBytes is the largest single response frame observed — with
	// chunked streaming it stays near wire.ChunkMaxBytes no matter how
	// large a result is.
	MaxFrameBytes uint64
	// BindBatches counts bound-key batches shipped; BindBatchesPipelined
	// counts those written while an earlier batch's response was still
	// streaming back. Their difference is the number of sequential
	// round-trip stalls paid on the bind path.
	BindBatches, BindBatchesPipelined uint64
	// HealthPings counts idle-too-long pooled connections pinged before
	// reuse; HealthDrops counts those the ping found dead (closed and
	// replaced by a fresh dial instead of surfacing a first-use failure).
	HealthPings, HealthDrops uint64
	// Dials counts connections opened (pool misses plus broken-connection
	// replacements). A burst against one peer keeps this near the pool's
	// per-address connection cap instead of scaling with the burst.
	Dials uint64
	// PoolWaits counts borrows that blocked because the per-address
	// connection cap was reached (the dial-storm guard working).
	PoolWaits uint64
	// BusyRetries counts requests re-sent after the peer shed them with an
	// in-band busy error (each retry waits out a jittered backoff first).
	BusyRetries uint64
	// DistinctMeta counts final frames whose metadata piggyback carried
	// per-column distinct estimates — nonzero means the serving peers speak
	// the Distinct extension and the executor's join ordering is running on
	// column statistics rather than cardinality alone.
	DistinctMeta uint64
}

// Snapshot returns the current counter values.
func (ct *Counters) Snapshot() WireStats {
	return WireStats{
		Requests:             ct.requests.Load(),
		RowsFetched:          ct.rowsFetched.Load(),
		BytesSent:            ct.bytesSent.Load(),
		BytesRecv:            ct.bytesRecv.Load(),
		MaxFrameBytes:        ct.maxFrame.Load(),
		BindBatches:          ct.bindBatches.Load(),
		BindBatchesPipelined: ct.bindPipelined.Load(),
		HealthPings:          ct.healthPings.Load(),
		HealthDrops:          ct.healthDrops.Load(),
		Dials:                ct.dials.Load(),
		PoolWaits:            ct.poolWaits.Load(),
		BusyRetries:          ct.busyRetries.Load(),
		DistinctMeta:         ct.distinctMeta.Load(),
	}
}

// noteFrame records one received frame's size.
func (ct *Counters) noteFrame(n int) {
	ct.bytesRecv.Add(uint64(n) + 1)
	for {
		cur := ct.maxFrame.Load()
		if uint64(n) <= cur || ct.maxFrame.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

// Client is a connection to one peer server. A Client is not safe for
// concurrent use: the Executor multiplexes concurrent work over a
// per-address pool of Clients, borrowing one per in-flight request.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	enc  *json.Encoder
	// maxFrame caps one received response frame (wire.DefaultMaxFrame);
	// chunked streaming keeps real frames around wire.ChunkMaxBytes.
	maxFrame int
	// counters, when non-nil, aggregates this client's traffic (set by the
	// executor's pool so all pooled connections share one Counters).
	counters *Counters
	// onMeta, when non-nil, receives the cardinalities, generations and
	// per-column distinct estimates piggybacked on final response frames
	// (set by the executor's pool so estimates and generation observations
	// refresh continuously). dists is nil when the serving peer predates
	// the Distinct extension.
	onMeta func(preds []string, cards []int, gens []uint64, dists [][]float64)
	// tapMeta, when non-nil, additionally receives the same piggyback for
	// the duration of one logical call — the executor installs it around a
	// fragment fetch to stamp the cached fragment with the generation its
	// own response frames reported (the shared onMeta table would race with
	// concurrent calls observing newer generations).
	tapMeta func(preds []string, gens []uint64)
	// traceSpan, when non-nil, marks requests on this client as traced:
	// each request carries the span's trace ID and span ID, and the spans
	// shipped back on final frames are adopted under it, labeled with the
	// peer address. Installed by the borrower for one logical call; like
	// the Client itself it is not safe for concurrent use.
	traceSpan *obs.Span
	// broken is set when a transport-level failure leaves the stream
	// desynced (request written but response unread, a partial/garbled
	// frame consumed, or a response stream abandoned mid-flight): reusing
	// the connection could pair a later request with a stale frame, so the
	// pool drops broken clients.
	broken bool
}

// ErrBusy marks a shed request: the server's admission gate refused to
// start it (in-flight limit reached, wait queue full or wait bound
// exceeded). The request did no work, the connection stays usable, and a
// retry after a jittered backoff is safe for any op (the executor's pool
// does this automatically). Test with errors.Is.
var ErrBusy = errors.New("netpeer: server busy")

// clientConnWriter counts request bytes as they hit the socket.
type clientConnWriter struct{ c *Client }

func (w clientConnWriter) Write(p []byte) (int, error) {
	n, err := w.c.conn.Write(p)
	if w.c.counters != nil {
		w.c.counters.bytesSent.Add(uint64(n))
	}
	return n, err
}

// Dial connects to a peer server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReaderSize(conn, 64*1024), maxFrame: wire.DefaultMaxFrame}
	c.enc = json.NewEncoder(clientConnWriter{c: c})
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Broken reports whether a transport-level failure has desynced the
// connection; a broken client must not be reused.
func (c *Client) Broken() bool { return c.broken }

// TraceOn installs sp as the client's trace context: subsequent requests
// carry its trace and span IDs, and remote spans shipped back on final
// frames are adopted under it. A nil sp turns tracing off. Returns c for
// chaining.
func (c *Client) TraceOn(sp *obs.Span) *Client {
	c.traceSpan = sp
	return c
}

// readStream consumes one response stream: zero or more non-final frames
// and a final one. onRows (when non-nil) receives each frame's rows as
// they arrive; an onRows error abandons the stream (unread frames desync
// the connection, so it is closed and marked broken). A remote error frame
// is terminal but well-framed: the connection stays usable.
func (c *Client) readStream(onRows func([][]string) error) (wire.Response, error) {
	for {
		frame, err := wire.ReadFrame(c.br, c.maxFrame)
		if err != nil {
			// Includes ErrFrameTooLarge: the line was consumed, but the
			// logical response stream is now missing a frame (possibly the
			// final marker), so the connection cannot be trusted.
			c.broken = true
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return wire.Response{}, fmt.Errorf("netpeer: connection closed")
			}
			return wire.Response{}, err
		}
		if c.counters != nil {
			c.counters.noteFrame(len(frame))
		}
		var resp wire.Response
		if err := json.Unmarshal(frame, &resp); err != nil {
			c.broken = true
			return wire.Response{}, err
		}
		if resp.Error != "" {
			// A remote error frame is final and well-framed: the stream
			// stays in sync and the connection remains usable. A busy frame
			// additionally wraps ErrBusy so pool users can retry with
			// backoff (the request was never started on the server).
			if resp.Busy {
				return wire.Response{}, fmt.Errorf("%w: %s", ErrBusy, resp.Error)
			}
			return wire.Response{}, fmt.Errorf("netpeer: remote: %s", resp.Error)
		}
		if c.counters != nil {
			c.counters.rowsFetched.Add(uint64(len(resp.Rows)))
		}
		if onRows != nil && len(resp.Rows) > 0 {
			if err := onRows(resp.Rows); err != nil {
				c.broken = true
				c.conn.Close()
				return wire.Response{}, err
			}
		}
		if !resp.More {
			if len(resp.Preds) > 0 {
				if c.counters != nil && len(resp.Distinct) > 0 {
					c.counters.distinctMeta.Add(1)
				}
				if c.onMeta != nil {
					c.onMeta(resp.Preds, resp.Cards, resp.Gens, resp.Distinct)
				}
				if c.tapMeta != nil {
					c.tapMeta(resp.Preds, resp.Gens)
				}
			}
			if c.traceSpan != nil && len(resp.Spans) > 0 {
				c.traceSpan.AdoptRemote(c.conn.RemoteAddr().String(), wireToSpans(resp.Spans))
			}
			return resp, nil
		}
	}
}

// roundTripStream writes one request and consumes its response stream,
// handing each frame's rows to onRows.
func (c *Client) roundTripStream(req wire.Request, onRows func([][]string) error) (wire.Response, error) {
	if c.counters != nil {
		c.counters.requests.Add(1)
	}
	if c.traceSpan != nil {
		req.Trace = c.traceSpan.TraceID()
		req.Span = c.traceSpan.ID()
	}
	if err := c.enc.Encode(req); err != nil {
		c.broken = true
		return wire.Response{}, err
	}
	return c.readStream(onRows)
}

// roundTrip is roundTripStream materialized: the returned response carries
// every row of the stream.
func (c *Client) roundTrip(req wire.Request) (wire.Response, error) {
	var all [][]string
	final, err := c.roundTripStream(req, func(rows [][]string) error {
		all = append(all, rows...)
		return nil
	})
	if err != nil {
		return wire.Response{}, err
	}
	final.Rows = all
	return final, nil
}

// rowsToYield adapts a per-tuple yield to readStream's per-frame callback.
func rowsToYield(yield func(rel.Tuple) error) func([][]string) error {
	return func(rows [][]string) error {
		for _, r := range rows {
			if err := yield(rel.Tuple(r)); err != nil {
				return err
			}
		}
		return nil
	}
}

// Catalog lists the relations the peer serves.
func (c *Client) Catalog() ([]string, error) {
	resp, err := c.roundTrip(wire.Request{Op: "catalog"})
	if err != nil {
		return nil, err
	}
	return resp.Preds, nil
}

// CatalogStats lists the relations the peer serves together with their
// current cardinalities (estimates for join ordering; they may go stale
// without affecting correctness).
func (c *Client) CatalogStats() (map[string]int, error) {
	cards, _, err := c.CatalogMeta()
	return cards, err
}

// CatalogMeta is CatalogStats plus the per-column distinct estimates the
// peer advertises (nil per relation when the peer predates the Distinct
// extension) — both are join-ordering hints, never correctness inputs.
func (c *Client) CatalogMeta() (map[string]int, map[string][]float64, error) {
	resp, err := c.roundTrip(wire.Request{Op: "catalog"})
	if err != nil {
		return nil, nil, err
	}
	cards := make(map[string]int, len(resp.Preds))
	dists := make(map[string][]float64, len(resp.Preds))
	for i, p := range resp.Preds {
		if i < len(resp.Cards) {
			cards[p] = resp.Cards[i]
		} else {
			cards[p] = 0
		}
		if i < len(resp.Distinct) && len(resp.Distinct[i]) > 0 {
			dists[p] = resp.Distinct[i]
		}
	}
	return cards, dists, nil
}

// Gens asks the peer for the current generation (monotonic insert counter)
// of each named relation — the fragment cache's cheap revalidation round
// trip: no rows cross the wire, and a relation the peer does not serve
// reports generation 0.
func (c *Client) Gens(preds []string) (map[string]uint64, error) {
	resp, err := c.roundTrip(wire.Request{Op: "gens", Preds: preds})
	if err != nil {
		return nil, err
	}
	out := make(map[string]uint64, len(resp.Preds))
	for i, p := range resp.Preds {
		if i < len(resp.Gens) {
			out[p] = resp.Gens[i]
		} else {
			out[p] = 0
		}
	}
	return out, nil
}

// Ping performs a no-op round trip, verifying the connection and the peer
// are alive. Connection pools use it to health-check idle-too-long
// connections before reuse.
func (c *Client) Ping() error {
	_, err := c.roundTrip(wire.Request{Op: "ping"})
	return err
}

// Add inserts a batch of rows into one relation on the peer (the
// protocol's single mutating op). The returned generation is the
// relation's version read after the batch's last insert landed — at
// least as new as this write, possibly newer under concurrent writers.
// Set semantics make the op idempotent (re-inserting an existing tuple
// is a no-op), so retrying after an ambiguous failure is safe; a busy
// error (errors.Is(err, ErrBusy)) additionally means the batch was
// never started.
func (c *Client) Add(pred string, rows [][]string) (gen uint64, err error) {
	resp, err := c.roundTrip(wire.Request{Op: "add", Pred: pred, Rows: rows})
	if err != nil {
		return 0, err
	}
	if len(resp.Gens) > 0 {
		gen = resp.Gens[0]
	}
	return gen, nil
}

// Scan fetches all tuples of one relation.
func (c *Client) Scan(pred string) ([]rel.Tuple, error) {
	resp, err := c.roundTrip(wire.Request{Op: "scan", Pred: pred})
	if err != nil {
		return nil, err
	}
	return wire.RowsToTuples(resp.Rows), nil
}

// ScanStream streams one relation's tuples through yield as response
// frames arrive, without materializing the result. A yield that stalls
// stalls the read loop — and, once the socket buffers fill, the serving
// peer's response stream (the load generator's slow-consumer mode leans on
// exactly this backpressure).
func (c *Client) ScanStream(pred string, yield func(rel.Tuple) error) error {
	_, err := c.roundTripStream(wire.Request{Op: "scan", Pred: pred}, rowsToYield(yield))
	return err
}

// EvalStream evaluates a conjunctive query remotely — every body atom must
// name a relation the peer serves — invoking yield once per distinct head
// tuple as chunks arrive, in stream (not sorted) order.
func (c *Client) EvalStream(q lang.CQ, yield func(rel.Tuple) error) error {
	wq := wire.FromCQ(q)
	_, err := c.roundTripStream(wire.Request{Op: "eval", Query: &wq}, rowsToYield(yield))
	return err
}

// Eval is EvalStream materialized and sorted (the head tuples, distinct).
func (c *Client) Eval(q lang.CQ) ([]rel.Tuple, error) {
	wq := wire.FromCQ(q)
	resp, err := c.roundTrip(wire.Request{Op: "eval", Query: &wq})
	if err != nil {
		return nil, err
	}
	return rel.DistinctSorted(wire.RowsToTuples(resp.Rows)), nil
}

// bindBatchSize and bindBatchMaxBytes cap the bound-key rows shipped per
// bind request frame — by count and by total value bytes — so a huge
// bound side (or individually huge key values) never produces a request
// frame near the server's limit.
const (
	bindBatchSize     = 1024
	bindBatchMaxBytes = 4 << 20
)

// bindBatchStarts cuts rows into request batches: a new batch starts at
// bindBatchSize rows or once the accumulated key bytes pass
// bindBatchMaxBytes (a single oversized row still ships alone).
func bindBatchStarts(rows [][]string) []int {
	starts := []int{0}
	rowsIn, bytesIn := 0, 0
	for i, row := range rows {
		sz := 0
		for _, v := range row {
			sz += len(v)
		}
		if rowsIn > 0 && (rowsIn >= bindBatchSize || bytesIn+sz > bindBatchMaxBytes) {
			starts = append(starts, i)
			rowsIn, bytesIn = 0, 0
		}
		rowsIn++
		bytesIn += sz
	}
	return starts
}

// BindEvalStream fetches the tuples of atom a that match the atom's
// constants and, at the bindCols positions, at least one of the bound-key
// rows, invoking yield as chunks arrive. Keys ship in row- and
// byte-bounded batches with up to depth requests in flight: batch i+1 is
// written while batch i's rows are still streaming back, so consecutive
// batches pay no sequential round-trip stall (depth 1 degrades to the
// sequential protocol). The stream may contain duplicates across batches —
// callers deduplicate.
func (c *Client) BindEvalStream(a lang.Atom, bindCols []int, rows [][]string, depth int, yield func(rel.Tuple) error) error {
	if depth < 1 {
		depth = 1
	}
	if len(rows) == 0 {
		return nil
	}
	wa := wire.FromAtom(a)
	starts := bindBatchStarts(rows)
	nb := len(starts)
	// Per-batch trace spans: the writer creates batch i's span and hands it
	// through spanCh — buffered to nb, so the writer never blocks on it and
	// unread spans are simply dropped on an error exit — before encoding
	// the request; the reader installs it as the client's adoption target
	// while batch i's response streams back, then ends it.
	parent := c.traceSpan
	var spanCh chan *obs.Span
	if parent != nil {
		spanCh = make(chan *obs.Span, nb)
		defer func() { c.traceSpan = parent }()
	}
	var responsesDone, batchesWritten atomic.Uint64
	sem := make(chan struct{}, depth)
	abort := make(chan struct{})
	writeErr := make(chan error, 1)
	go func() {
		writeErr <- func() error {
			for i := 0; i < nb; i++ {
				select {
				case sem <- struct{}{}:
				case <-abort:
					return nil
				}
				end := len(rows)
				if i+1 < nb {
					end = starts[i+1]
				}
				if c.counters != nil {
					c.counters.requests.Add(1)
					c.counters.bindBatches.Add(1)
					if uint64(i) > responsesDone.Load() {
						c.counters.bindPipelined.Add(1)
					}
				}
				req := wire.Request{
					Op:       "bind",
					Atom:     &wa,
					BindCols: bindCols,
					BindRows: rows[starts[i]:end],
				}
				if spanCh != nil {
					bs := parent.Child("bind.batch", obs.Attr{K: "pred", V: a.Pred})
					bs.SetInt("batch", int64(i))
					bs.SetInt("keys", int64(end-starts[i]))
					if bs != nil {
						req.Trace = bs.TraceID()
						req.Span = bs.ID()
					}
					spanCh <- bs
				}
				if err := c.enc.Encode(req); err != nil {
					return err
				}
				batchesWritten.Add(1)
			}
			return nil
		}()
	}()
	var readErr error
	read := 0
	for ; read < nb; read++ {
		if spanCh != nil {
			c.traceSpan = <-spanCh
		}
		_, err := c.readStream(rowsToYield(yield))
		if spanCh != nil {
			c.traceSpan.End()
		}
		responsesDone.Add(1)
		select {
		case <-sem:
		default:
		}
		if err != nil {
			readErr = err
			break
		}
	}
	if readErr == nil {
		werr := <-writeErr
		if werr != nil {
			c.broken = true
			return werr
		}
		return nil
	}
	if !c.broken {
		// The error frame was well-framed. If the writer has already
		// finished cleanly and the errored response was the last one
		// outstanding, the stream is in sync and the connection stays
		// usable. The check must be non-blocking: joining a writer that is
		// mid-write would deadlock (the server stops reading requests
		// while we stop reading its responses).
		select {
		case werr := <-writeErr:
			if werr == nil && int(batchesWritten.Load()) == read+1 {
				return readErr
			}
			// Writer failed, or later batches have responses in flight
			// that will never be read: the stream is desynced.
			c.broken = true
			c.conn.Close()
			close(abort)
			return readErr
		default:
		}
	}
	// Transport failure, or the writer is still running: kill the
	// connection first — that unblocks a writer stuck in a socket write —
	// then stop and join it.
	c.broken = true
	c.conn.Close()
	close(abort)
	<-writeErr
	return readErr
}

// BindEval is BindEvalStream materialized, with sequential (depth-1)
// batch shipping.
func (c *Client) BindEval(a lang.Atom, bindCols []int, rows [][]string) ([]rel.Tuple, error) {
	var out []rel.Tuple
	err := c.BindEvalStream(a, bindCols, rows, 1, func(t rel.Tuple) error {
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
