// Package netpeer turns the PDMS into an actually distributed system: each
// peer runs a Server exposing its stored relations over a newline-delimited
// JSON/TCP protocol (package wire), and an Executor evaluates reformulated
// unions of conjunctive queries across the network.
//
// The protocol has four ops (see package wire for the JSON envelopes):
//
//   - "catalog": list the stored relations served by this peer together
//     with their current cardinalities (the executor's join-order
//     heuristic consumes the cardinalities as estimates).
//   - "scan": return every tuple of one relation.
//   - "eval": evaluate a conjunctive query whose atoms all name relations
//     served by this peer; used for full push-down of single-peer
//     rewritings and for selection-pushed per-atom fetches.
//   - "bind": the semi-join half of bind-join execution. The request
//     carries one atom (constants pushed down as selections) plus a batch
//     of bound join-key rows for the atom's BindCols positions; the server
//     probes its indexed engine once per key (engine.ProbeByKeyBatch) and
//     returns the distinct matching tuples instead of a full scan.
//
// Cross-peer rewritings execute as bind-joins: the Executor orders atoms by
// the engine's selectivity heuristic, fetches the first atom with its
// constant selections pushed down, and for each later atom ships the
// distinct join-key values bound so far ("bind" op) so the remote peer
// returns only tuples that can participate in the join. UCQ disjuncts fan
// out over a worker pool, multiplexed over per-address connection pools
// (one Client is not safe for concurrent use). Both sides keep wire-level
// counters (requests, rows, bytes) so the shipping savings are measurable.
//
// The paper treats query execution as out of scope ("recent techniques for
// adaptive query processing are well suited for our context"); this package
// supplies the minimal honest substrate so that the full pipeline — pose at
// a peer, reformulate, execute across peers — runs over real sockets.
package netpeer

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/rel"
	"repro/internal/wire"
)

// Server serves one peer's stored relations. Eval requests run through a
// per-server indexed engine whose indexes and compiled plans persist across
// requests (and catch up incrementally with AddFact).
type Server struct {
	mu   sync.RWMutex
	data *rel.Instance
	eng  *engine.Engine

	lis    net.Listener
	cancel context.CancelFunc
	wg     sync.WaitGroup

	requests   atomic.Uint64
	rowsServed atomic.Uint64
	bytesSent  atomic.Uint64
	bytesRecv  atomic.Uint64
}

// ServerStats is a snapshot of a server's cumulative wire-level counters.
type ServerStats struct {
	// Requests counts protocol requests handled (including errors).
	Requests uint64
	// RowsServed counts tuples returned across all responses.
	RowsServed uint64
	// BytesSent and BytesRecv count response and request bytes on the wire.
	BytesSent, BytesRecv uint64
}

// Stats returns a snapshot of the server's wire-level counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:   s.requests.Load(),
		RowsServed: s.rowsServed.Load(),
		BytesSent:  s.bytesSent.Load(),
		BytesRecv:  s.bytesRecv.Load(),
	}
}

// NewServer creates a server over the given instance (which the server
// reads under its own lock; use AddFact for concurrent-safe insertion).
func NewServer(data *rel.Instance) *Server {
	if data == nil {
		data = rel.NewInstance()
	}
	return &Server{data: data, eng: engine.New(data)}
}

// AddFact inserts a tuple into a served relation.
func (s *Server) AddFact(pred string, t rel.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.data.Add(pred, t)
	return err
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.lis = lis
	s.cancel = cancel
	s.wg.Add(1)
	go s.acceptLoop(ctx, lis)
	return lis.Addr().String(), nil
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	if s.cancel != nil {
		s.cancel()
	}
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ctx context.Context, lis net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(ctx, conn)
		}()
	}
}

// serverConnWriter counts response bytes as they hit the socket.
type serverConnWriter struct {
	s    *Server
	conn net.Conn
}

func (w serverConnWriter) Write(p []byte) (int, error) {
	n, err := w.conn.Write(p)
	w.s.bytesSent.Add(uint64(n))
	return n, err
}

func (s *Server) serveConn(ctx context.Context, conn net.Conn) {
	// Close the connection when the server shuts down so the Scan below
	// unblocks and Close's WaitGroup drains even with idle clients.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	enc := json.NewEncoder(serverConnWriter{s: s, conn: conn})
	for sc.Scan() {
		select {
		case <-ctx.Done():
			return
		default:
		}
		s.requests.Add(1)
		s.bytesRecv.Add(uint64(len(sc.Bytes()) + 1))
		var req wire.Request
		resp := wire.Response{}
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			resp.Error = fmt.Sprintf("bad request: %v", err)
		} else {
			resp = s.handle(req)
		}
		s.rowsServed.Add(uint64(len(resp.Rows)))
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req wire.Request) wire.Response {
	s.mu.RLock()
	defer s.mu.RUnlock()
	switch req.Op {
	case "catalog":
		preds := s.data.Relations()
		cards := make([]int, len(preds))
		for i, p := range preds {
			cards[i] = s.data.Relation(p).Len()
		}
		return wire.Response{Preds: preds, Cards: cards}
	case "scan":
		r := s.data.Relation(req.Pred)
		if r == nil {
			return wire.Response{Rows: [][]string{}}
		}
		return wire.Response{Rows: wire.TuplesToRows(r.Tuples())}
	case "eval":
		if req.Query == nil {
			return wire.Response{Error: "eval: missing query"}
		}
		q, err := req.Query.ToCQ()
		if err != nil {
			return wire.Response{Error: err.Error()}
		}
		rows, err := s.eng.EvalCQ(q)
		if err != nil {
			return wire.Response{Error: err.Error()}
		}
		return wire.Response{Rows: wire.TuplesToRows(rows)}
	case "bind":
		rows, err := s.handleBind(req)
		if err != nil {
			return wire.Response{Error: err.Error()}
		}
		return wire.Response{Rows: wire.TuplesToRows(rows)}
	default:
		return wire.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// handleBind answers one bound-key batch: the distinct tuples of the atom's
// relation matching the atom's constants plus, at the BindCols positions,
// any one of the shipped key rows. Probe columns are the constant positions
// merged with the bind positions, so the whole batch runs off one hash
// index. The result may be a superset of what the join needs (repeated
// variables inside the atom are re-checked by the caller's local join).
func (s *Server) handleBind(req wire.Request) ([]rel.Tuple, error) {
	if req.Atom == nil {
		return nil, fmt.Errorf("bind: missing atom")
	}
	a, err := req.Atom.ToAtom()
	if err != nil {
		return nil, err
	}
	if len(req.BindCols) == 0 {
		return nil, fmt.Errorf("bind: no bound columns for %s", a.Pred)
	}
	// keyCol pins one probe column to either the atom constant at that
	// position or a per-row bind value.
	type keyCol struct {
		col      int
		constVal string
		bindIdx  int // index into each bind row, or -1 for a constant
	}
	var kcs []keyCol
	for pos, t := range a.Args {
		if t.IsConst() {
			kcs = append(kcs, keyCol{col: pos, constVal: t.Name, bindIdx: -1})
		}
	}
	for i, c := range req.BindCols {
		if c < 0 || c >= a.Arity() {
			return nil, fmt.Errorf("bind: column %d out of range for %s/%d", c, a.Pred, a.Arity())
		}
		if a.Args[c].IsConst() {
			return nil, fmt.Errorf("bind: column %d of %s is a pushed constant", c, a.Pred)
		}
		kcs = append(kcs, keyCol{col: c, bindIdx: i})
	}
	sort.Slice(kcs, func(i, j int) bool { return kcs[i].col < kcs[j].col })
	for i := 1; i < len(kcs); i++ {
		if kcs[i].col == kcs[i-1].col {
			return nil, fmt.Errorf("bind: duplicate column %d for %s", kcs[i].col, a.Pred)
		}
	}
	cols := make([]int, len(kcs))
	for i, kc := range kcs {
		cols[i] = kc.col
	}
	keys := make([][]string, 0, len(req.BindRows))
	for _, row := range req.BindRows {
		if len(row) != len(req.BindCols) {
			return nil, fmt.Errorf("bind: row has %d values, want %d", len(row), len(req.BindCols))
		}
		key := make([]string, len(kcs))
		for j, kc := range kcs {
			if kc.bindIdx < 0 {
				key[j] = kc.constVal
			} else {
				key[j] = row[kc.bindIdx]
			}
		}
		keys = append(keys, key)
	}
	return s.eng.ProbeByKeyBatch(a.Pred, cols, keys)
}

// Counters aggregates wire-level client traffic, typically shared by every
// pooled connection of one Executor. All fields are updated atomically;
// safe for concurrent use.
type Counters struct {
	requests    atomic.Uint64
	rowsFetched atomic.Uint64
	bytesSent   atomic.Uint64
	bytesRecv   atomic.Uint64
}

// WireStats is a snapshot of client-side wire counters.
type WireStats struct {
	// Requests counts protocol round trips issued.
	Requests uint64
	// RowsFetched counts tuples received in responses. This is the
	// headline bind-join metric: a semi-join ships only tuples that can
	// join, so RowsFetched drops by the join selectivity versus whole-
	// relation fetching.
	RowsFetched uint64
	// BytesSent and BytesRecv count request and response bytes on the wire.
	BytesSent, BytesRecv uint64
}

// Snapshot returns the current counter values.
func (ct *Counters) Snapshot() WireStats {
	return WireStats{
		Requests:    ct.requests.Load(),
		RowsFetched: ct.rowsFetched.Load(),
		BytesSent:   ct.bytesSent.Load(),
		BytesRecv:   ct.bytesRecv.Load(),
	}
}

// Client is a connection to one peer server. A Client is not safe for
// concurrent use: the Executor multiplexes concurrent work over a
// per-address pool of Clients, borrowing one per in-flight request.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
	// counters, when non-nil, aggregates this client's traffic (set by the
	// executor's pool so all pooled connections share one Counters).
	counters *Counters
	// broken is set when a transport-level failure leaves the stream
	// desynced (request written but response unread, or a partial/garbled
	// frame consumed): reusing the connection could pair a later request
	// with a stale response, so the pool drops broken clients.
	broken bool
}

// clientConnWriter counts request bytes as they hit the socket.
type clientConnWriter struct{ c *Client }

func (w clientConnWriter) Write(p []byte) (int, error) {
	n, err := w.c.conn.Write(p)
	if w.c.counters != nil {
		w.c.counters.bytesSent.Add(uint64(n))
	}
	return n, err
}

// Dial connects to a peer server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	c := &Client{conn: conn, sc: sc}
	c.enc = json.NewEncoder(clientConnWriter{c: c})
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Broken reports whether a transport-level failure has desynced the
// connection; a broken client must not be reused.
func (c *Client) Broken() bool { return c.broken }

func (c *Client) roundTrip(req wire.Request) (wire.Response, error) {
	if c.counters != nil {
		c.counters.requests.Add(1)
	}
	if err := c.enc.Encode(req); err != nil {
		c.broken = true
		return wire.Response{}, err
	}
	if !c.sc.Scan() {
		c.broken = true
		if err := c.sc.Err(); err != nil {
			return wire.Response{}, err
		}
		return wire.Response{}, fmt.Errorf("netpeer: connection closed")
	}
	if c.counters != nil {
		c.counters.bytesRecv.Add(uint64(len(c.sc.Bytes()) + 1))
	}
	var resp wire.Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		c.broken = true
		return wire.Response{}, err
	}
	if resp.Error != "" {
		// A remote error is a well-framed response: the stream stays in
		// sync and the connection remains usable.
		return wire.Response{}, fmt.Errorf("netpeer: remote: %s", resp.Error)
	}
	if c.counters != nil {
		c.counters.rowsFetched.Add(uint64(len(resp.Rows)))
	}
	return resp, nil
}

// Catalog lists the relations the peer serves.
func (c *Client) Catalog() ([]string, error) {
	resp, err := c.roundTrip(wire.Request{Op: "catalog"})
	if err != nil {
		return nil, err
	}
	return resp.Preds, nil
}

// CatalogStats lists the relations the peer serves together with their
// current cardinalities (estimates for join ordering; they may go stale
// without affecting correctness).
func (c *Client) CatalogStats() (map[string]int, error) {
	resp, err := c.roundTrip(wire.Request{Op: "catalog"})
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(resp.Preds))
	for i, p := range resp.Preds {
		if i < len(resp.Cards) {
			out[p] = resp.Cards[i]
		} else {
			out[p] = 0
		}
	}
	return out, nil
}

// Scan fetches all tuples of one relation.
func (c *Client) Scan(pred string) ([]rel.Tuple, error) {
	resp, err := c.roundTrip(wire.Request{Op: "scan", Pred: pred})
	if err != nil {
		return nil, err
	}
	return wire.RowsToTuples(resp.Rows), nil
}

// Eval evaluates a conjunctive query remotely; every body atom must name a
// relation the peer serves.
func (c *Client) Eval(q lang.CQ) ([]rel.Tuple, error) {
	wq := wire.FromCQ(q)
	resp, err := c.roundTrip(wire.Request{Op: "eval", Query: &wq})
	if err != nil {
		return nil, err
	}
	return wire.RowsToTuples(resp.Rows), nil
}

// bindBatchSize caps the bound-key rows shipped per bind request frame so a
// huge bound side never produces an unbounded message.
const bindBatchSize = 1024

// BindEval fetches the distinct tuples of atom a that match the atom's
// constants and, at the bindCols positions, at least one of the bound-key
// rows. Rows are shipped in batches of bindBatchSize; the concatenated
// result may contain duplicates across batches (callers deduplicate via
// set-semantics insertion).
func (c *Client) BindEval(a lang.Atom, bindCols []int, rows [][]string) ([]rel.Tuple, error) {
	wa := wire.FromAtom(a)
	var out []rel.Tuple
	for start := 0; start < len(rows); start += bindBatchSize {
		end := min(start+bindBatchSize, len(rows))
		resp, err := c.roundTrip(wire.Request{
			Op:       "bind",
			Atom:     &wa,
			BindCols: bindCols,
			BindRows: rows[start:end],
		})
		if err != nil {
			return nil, err
		}
		out = append(out, wire.RowsToTuples(resp.Rows)...)
	}
	return out, nil
}
