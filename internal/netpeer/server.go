// Package netpeer turns the PDMS into an actually distributed system: each
// peer runs a Server exposing its stored relations over a newline-delimited
// JSON/TCP protocol (package wire), and an Executor evaluates reformulated
// unions of conjunctive queries across the network — pushing each
// conjunctive rewriting down to a single peer when all its atoms live
// there, and otherwise fetching (selection-pushed) per-atom scans and
// joining locally.
//
// The paper treats query execution as out of scope ("recent techniques for
// adaptive query processing are well suited for our context"); this package
// supplies the minimal honest substrate so that the full pipeline — pose at
// a peer, reformulate, execute across peers — runs over real sockets.
package netpeer

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/rel"
	"repro/internal/wire"
)

// Server serves one peer's stored relations. Eval requests run through a
// per-server indexed engine whose indexes and compiled plans persist across
// requests (and catch up incrementally with AddFact).
type Server struct {
	mu   sync.RWMutex
	data *rel.Instance
	eng  *engine.Engine

	lis    net.Listener
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewServer creates a server over the given instance (which the server
// reads under its own lock; use AddFact for concurrent-safe insertion).
func NewServer(data *rel.Instance) *Server {
	if data == nil {
		data = rel.NewInstance()
	}
	return &Server{data: data, eng: engine.New(data)}
}

// AddFact inserts a tuple into a served relation.
func (s *Server) AddFact(pred string, t rel.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.data.Add(pred, t)
	return err
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves
// until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.lis = lis
	s.cancel = cancel
	s.wg.Add(1)
	go s.acceptLoop(ctx, lis)
	return lis.Addr().String(), nil
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	if s.cancel != nil {
		s.cancel()
	}
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ctx context.Context, lis net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveConn(ctx, conn)
		}()
	}
}

func (s *Server) serveConn(ctx context.Context, conn net.Conn) {
	// Close the connection when the server shuts down so the Scan below
	// unblocks and Close's WaitGroup drains even with idle clients.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		select {
		case <-ctx.Done():
			return
		default:
		}
		var req wire.Request
		resp := wire.Response{}
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			resp.Error = fmt.Sprintf("bad request: %v", err)
		} else {
			resp = s.handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req wire.Request) wire.Response {
	s.mu.RLock()
	defer s.mu.RUnlock()
	switch req.Op {
	case "catalog":
		return wire.Response{Preds: s.data.Relations()}
	case "scan":
		r := s.data.Relation(req.Pred)
		if r == nil {
			return wire.Response{Rows: [][]string{}}
		}
		return wire.Response{Rows: wire.TuplesToRows(r.Tuples())}
	case "eval":
		if req.Query == nil {
			return wire.Response{Error: "eval: missing query"}
		}
		q, err := req.Query.ToCQ()
		if err != nil {
			return wire.Response{Error: err.Error()}
		}
		rows, err := s.eng.EvalCQ(q)
		if err != nil {
			return wire.Response{Error: err.Error()}
		}
		return wire.Response{Rows: wire.TuplesToRows(rows)}
	default:
		return wire.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client is a connection to one peer server. Not safe for concurrent use;
// the Executor keeps one per goroutine.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

// Dial connects to a peer server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Client{conn: conn, sc: sc, enc: json.NewEncoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req wire.Request) (wire.Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return wire.Response{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return wire.Response{}, err
		}
		return wire.Response{}, fmt.Errorf("netpeer: connection closed")
	}
	var resp wire.Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return wire.Response{}, err
	}
	if resp.Error != "" {
		return wire.Response{}, fmt.Errorf("netpeer: remote: %s", resp.Error)
	}
	return resp, nil
}

// Catalog lists the relations the peer serves.
func (c *Client) Catalog() ([]string, error) {
	resp, err := c.roundTrip(wire.Request{Op: "catalog"})
	if err != nil {
		return nil, err
	}
	return resp.Preds, nil
}

// Scan fetches all tuples of one relation.
func (c *Client) Scan(pred string) ([]rel.Tuple, error) {
	resp, err := c.roundTrip(wire.Request{Op: "scan", Pred: pred})
	if err != nil {
		return nil, err
	}
	return wire.RowsToTuples(resp.Rows), nil
}

// Eval evaluates a conjunctive query remotely; every body atom must name a
// relation the peer serves.
func (c *Client) Eval(q lang.CQ) ([]rel.Tuple, error) {
	wq := wire.FromCQ(q)
	resp, err := c.roundTrip(wire.Request{Op: "eval", Query: &wq})
	if err != nil {
		return nil, err
	}
	return wire.RowsToTuples(resp.Rows), nil
}
