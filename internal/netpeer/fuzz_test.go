package netpeer

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// fuzzAddr satisfies net.Addr for the in-memory fuzz connection.
type fuzzAddr struct{}

func (fuzzAddr) Network() string { return "fuzz" }
func (fuzzAddr) String() string  { return "fuzz:0" }

// fuzzConn is a net.Conn whose read side replays a fixed byte stream —
// the response bytes a (possibly hostile) peer server sent us. Writes
// vanish and deadlines are no-ops.
type fuzzConn struct{ r *bytes.Reader }

func (c *fuzzConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *fuzzConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *fuzzConn) Close() error                     { return nil }
func (c *fuzzConn) LocalAddr() net.Addr              { return fuzzAddr{} }
func (c *fuzzConn) RemoteAddr() net.Addr             { return fuzzAddr{} }
func (c *fuzzConn) SetDeadline(time.Time) error      { return nil }
func (c *fuzzConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fuzzConn) SetWriteDeadline(time.Time) error { return nil }

// fuzzClient wraps data in a Client the way Dial would, with a small
// frame cap so oversize handling is reachable from short inputs.
func fuzzClient(data []byte) *Client {
	conn := &fuzzConn{r: bytes.NewReader(data)}
	c := &Client{conn: conn, br: bufio.NewReaderSize(conn, 4096), maxFrame: 1 << 16, counters: &Counters{}}
	c.enc = json.NewEncoder(clientConnWriter{c: c})
	return c
}

// FuzzResponseStream feeds arbitrary bytes to the client-side response
// stream consumer — the frame loop, final-marker handling, rows callback,
// and the cardinality/generation/span piggyback paths — and checks its
// invariants: no panic, rows handed to onRows exactly match the fetched
// counter, remote error frames leave the connection usable while
// transport-level failures mark it broken, and a clean return is always a
// final frame.
func FuzzResponseStream(f *testing.F) {
	seed := func(frames ...wire.Response) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, fr := range frames {
			enc.Encode(fr)
		}
		return buf.Bytes()
	}
	f.Add(seed(wire.Response{}))
	f.Add(seed(
		wire.Response{Rows: [][]string{{"a", "b"}}, More: true},
		wire.Response{Preds: []string{"p"}, Cards: []int{3}, Gens: []uint64{7}},
	))
	f.Add(seed(wire.Response{Error: "boom"}))
	f.Add(seed(wire.Response{Spans: []wire.Span{{ID: 1, Name: "eval"}, {ID: 2, Parent: 1, Name: "scan"}}}))
	f.Add([]byte("not json\n"))
	f.Add([]byte(`{"more":true}`))                                           // truncated: no final frame
	f.Add([]byte("{\"rows\":[[\"" + strings.Repeat("x", 1<<16) + "\"]]}\n")) // over the fuzz frame cap

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, abandon := range []int{-1, 1} {
			c := fuzzClient(data)
			tracer := obs.NewTracer(4)
			c.TraceOn(tracer.ForceTrace("fuzz"))
			var got int
			frames := 0
			onRows := func(rows [][]string) error {
				got += len(rows)
				frames++
				if abandon > 0 && frames >= abandon {
					return errAbandon
				}
				return nil
			}
			resp, err := c.readStream(onRows)
			if err == nil {
				if resp.More {
					t.Fatalf("clean return with More set: %+v", resp)
				}
				if c.Broken() {
					t.Fatal("clean return but client marked broken")
				}
			} else if strings.HasPrefix(err.Error(), "netpeer: remote:") {
				// A remote error frame is well-framed: connection usable.
				if c.Broken() {
					t.Fatalf("remote error marked connection broken: %v", err)
				}
			} else if err != errAbandon && !c.Broken() {
				t.Fatalf("transport error %v left client unbroken", err)
			}
			if want := c.counters.Snapshot().RowsFetched; uint64(got) > want {
				t.Fatalf("onRows saw %d rows, counters recorded %d", got, want)
			}
			if max := c.counters.Snapshot().MaxFrameBytes; max > uint64(c.maxFrame) {
				t.Fatalf("recorded frame of %d bytes above the %d cap", max, c.maxFrame)
			}
		}
	})
}

// errAbandon is the onRows error injected by the fuzz harness.
var errAbandon = errAbandonType{}

type errAbandonType struct{}

func (errAbandonType) Error() string { return "fuzz: abandon stream" }
