package netpeer

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/parser"
	"repro/internal/rel"
)

// startServerH is startServer returning the server handle too, so tests
// can mutate the served data mid-test.
func startServerH(t testing.TB, facts map[string][]rel.Tuple) (*Server, string) {
	t.Helper()
	data := rel.NewInstance()
	for pred, ts := range facts {
		for _, tup := range ts {
			if _, err := data.Add(pred, tup); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv := NewServer(data)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// crossPeerFixture starts the canonical two-peer join fixture: a small
// bound side on one peer, a larger probed side on the other.
func crossPeerFixture(t testing.TB) (small, large *Server, ex *Executor) {
	t.Helper()
	sm := map[string][]rel.Tuple{"S.keys": nil}
	lg := map[string][]rel.Tuple{"L.rows": nil}
	for i := 0; i < 4; i++ {
		sm["S.keys"] = append(sm["S.keys"], rel.Tuple{fmt.Sprintf("k%d", i)})
	}
	for i := 0; i < 400; i++ {
		lg["L.rows"] = append(lg["L.rows"],
			rel.Tuple{fmt.Sprintf("k%d", i%100), fmt.Sprintf("p%d", i)})
	}
	small, addr1 := startServerH(t, sm)
	large, addr2 := startServerH(t, lg)
	ex = NewExecutor()
	t.Cleanup(func() { ex.Close() })
	for _, a := range []string{addr1, addr2} {
		if err := ex.Discover(a); err != nil {
			t.Fatal(err)
		}
	}
	return small, large, ex
}

// TestFragmentCacheRepeatQueryShipsNoRows is the acceptance check for the
// cross-query fragment cache: the second identical cross-peer query must
// be answered from cached fragments — zero rows shipped, only the tiny
// gens revalidation round trips — and must return the identical answer.
func TestFragmentCacheRepeatQueryShipsNoRows(t *testing.T) {
	_, _, ex := crossPeerFixture(t)
	q, err := parser.ParseQuery(`q(x, y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 16 {
		t.Fatalf("first answer has %d rows, want 16", len(first))
	}
	mid := ex.WireStats()

	again, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(first, again) {
		t.Fatalf("cached answer diverges: %v vs %v", first, again)
	}
	after := ex.WireStats()
	if d := after.RowsFetched - mid.RowsFetched; d != 0 {
		t.Fatalf("second identical query fetched %d rows, want 0", d)
	}
	st := ex.FragmentStats()
	if st.Hits < 2 {
		t.Fatalf("fragment hits = %d, want >= 2 (one per atom): %+v", st.Hits, st)
	}
	if st.Revalidations == 0 {
		t.Fatalf("expected gens revalidations before serving cached fragments: %+v", st)
	}
	// The revalidation round trips are row-free and tiny next to the
	// fragment shipping they replace.
	if d := after.BytesRecv - mid.BytesRecv; d >= (mid.BytesRecv-0)/4 {
		t.Fatalf("second query received %d bytes, first received %d — not near zero", d, mid.BytesRecv)
	}
}

// TestFragmentCacheInvalidatedByMutation: an AddFact on the probed
// relation moves its generation, so the next query must refetch the
// fragment (counted as an invalidation) and see the new tuple.
func TestFragmentCacheInvalidatedByMutation(t *testing.T) {
	_, large, ex := crossPeerFixture(t)
	q, err := parser.ParseQuery(`q(x, y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := large.AddFact("L.rows", rel.Tuple{"k0", "fresh"}); err != nil {
		t.Fatal(err)
	}
	again, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(first)+1 {
		t.Fatalf("after mutation rows = %d, want %d (stale fragment served?)", len(again), len(first)+1)
	}
	found := false
	for _, r := range again {
		if r[0] == "k0" && r[1] == "fresh" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mutated tuple missing from %v", again)
	}
	if st := ex.FragmentStats(); st.Invalidations == 0 {
		t.Fatalf("expected a fragment invalidation after the mutation: %+v", st)
	}
}

// TestFragmentCacheSurvivesUnrelatedMutation pins the per-relation
// granularity of invalidation: mutating a *different* relation on the same
// peer moves only that relation's generation, so cached fragments of the
// queried relations keep hitting.
func TestFragmentCacheSurvivesUnrelatedMutation(t *testing.T) {
	small, _, ex := crossPeerFixture(t)
	// Serve an unrelated relation from the same peer as S.keys.
	if err := small.AddFact("S.other", rel.Tuple{"noise0"}); err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(`q(x, y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.AddFact("S.other", rel.Tuple{"noise1"}); err != nil {
		t.Fatal(err)
	}
	mid := ex.FragmentStats()
	again, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(first, again) {
		t.Fatalf("answers diverge: %v vs %v", first, again)
	}
	st := ex.FragmentStats()
	if st.Invalidations != mid.Invalidations {
		t.Fatalf("unrelated mutation invalidated a fragment: %+v -> %+v", mid, st)
	}
	if st.Hits < mid.Hits+2 {
		t.Fatalf("cached fragments did not survive the unrelated mutation: %+v -> %+v", mid, st)
	}
}

// TestFragmentTrustWindowSkipsRevalidation exercises the TTL fallback: a
// positive FragmentTrust serves cached fragments without any round trip
// while the generation observation is fresh — accepting up to the window
// of staleness — and a zero window restores revalidate-always behavior.
func TestFragmentTrustWindowSkipsRevalidation(t *testing.T) {
	_, large, ex := crossPeerFixture(t)
	ex.FragmentTrust = time.Hour
	q, err := parser.ParseQuery(`q(x, y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate outside the executor's view: within the trust window the
	// executor is allowed (and expected) to keep serving the cached
	// fragments with zero network traffic.
	if err := large.AddFact("L.rows", rel.Tuple{"k0", "fresh"}); err != nil {
		t.Fatal(err)
	}
	mid := ex.WireStats()
	again, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(first, again) {
		t.Fatalf("trust-window answer should be the cached (stale) one: %v vs %v", first, again)
	}
	if d := ex.WireStats().Requests - mid.Requests; d != 0 {
		t.Fatalf("trust-window repeat issued %d requests, want 0", d)
	}
	// Dropping the trust window forces revalidation, which sees the moved
	// generation and refetches.
	ex.FragmentTrust = 0
	fresh, err := ex.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(first)+1 {
		t.Fatalf("post-trust query rows = %d, want %d", len(fresh), len(first)+1)
	}
}

// TestFragmentCacheOffMatchesOn is a differential check: with the cache
// disabled the executor must return exactly the same answers, and the
// fragment counters must stay untouched.
func TestFragmentCacheOffMatchesOn(t *testing.T) {
	_, _, ex := crossPeerFixture(t)
	exOff := NewExecutor()
	exOff.FragmentCacheOff = true
	defer exOff.Close()
	// Share the routing by re-discovering through the same servers.
	ex.mu.Lock()
	routes := map[string]string{}
	for p, a := range ex.addr {
		routes[p] = a
	}
	ex.mu.Unlock()
	for p, a := range routes {
		exOff.Route(p, a)
	}
	q, err := parser.ParseQuery(`q(x, y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		on, err := ex.EvalCQ(q)
		if err != nil {
			t.Fatal(err)
		}
		off, err := exOff.EvalCQ(q)
		if err != nil {
			t.Fatal(err)
		}
		if !tuplesEqual(on, off) {
			t.Fatalf("iteration %d: cache-on %v vs cache-off %v", i, on, off)
		}
	}
	if st := exOff.FragmentStats(); st.Hits+st.Misses+st.Revalidations != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
}

// TestFragmentCacheEviction bounds the cache: with a one-entry budget the
// second distinct fragment must evict the first (no unbounded growth), and
// re-querying the first is a miss again.
func TestFragmentCacheEviction(t *testing.T) {
	_, _, ex := crossPeerFixture(t)
	ex.SetFragmentCacheLimits(1, 0)
	q1, err := parser.ParseQuery(`q(x, y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := parser.ParseQuery(`q(y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.EvalCQ(q1); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.EvalCQ(q2); err != nil {
		t.Fatal(err)
	}
	st := ex.FragmentStats()
	if st.Entries > 1 {
		t.Fatalf("cache holds %d entries, limit 1", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under a one-entry budget: %+v", st)
	}
}
