package netpeer

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/rel"
)

func parseCQ(t *testing.T, src string) lang.CQ {
	t.Helper()
	q, err := parser.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// subtreeHasRemote reports whether sp's subtree contains a span adopted
// from peer addr whose name has the given prefix.
func subtreeHasRemote(sp *obs.Span, addr, namePrefix string) bool {
	if sp.Remote() == addr && strings.HasPrefix(sp.Name(), namePrefix) {
		return true
	}
	for _, c := range sp.Children() {
		if subtreeHasRemote(c, addr, namePrefix) {
			return true
		}
	}
	return false
}

// TestTracePropagationThreePeerBindJoin runs a traced bind-join chain
// across three peers and checks the stitched tree: one "atom" span per
// body atom, each holding the serving peer's remote spans — adopted with
// the peer's address and parented under the local span that issued the
// requests (the atom span for fetches, its "bind.batch" children for
// bind batches).
func TestTracePropagationThreePeerBindJoin(t *testing.T) {
	_, addr1 := startServerH(t, map[string][]rel.Tuple{"A.r": {{"1", "a"}, {"2", "b"}}})
	_, addr2 := startServerH(t, map[string][]rel.Tuple{"B.s": {{"a", "x"}, {"b", "y"}}})
	_, addr3 := startServerH(t, map[string][]rel.Tuple{"C.t": {{"x"}}})
	ex := NewExecutor()
	defer ex.Close()
	for _, a := range []string{addr1, addr2, addr3} {
		if err := ex.Discover(a); err != nil {
			t.Fatal(err)
		}
	}
	u := lang.UCQ{Disjuncts: []lang.CQ{parseCQ(t, `q(u) :- A.r(u, v), B.s(v, w), C.t(w)`)}}

	tr := obs.NewTracer(4)
	root := tr.ForceTrace("query")
	rows, err := ex.EvalUCQSpan(u, root)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if want := []rel.Tuple{{"1"}}; !tuplesEqual(rows, want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}

	cq := root.Find("eval.cq")
	if cq == nil {
		t.Fatalf("no eval.cq span:\n%s", root.Render())
	}
	var atoms []*obs.Span
	for _, c := range cq.Children() {
		if c.Name() == "atom" {
			atoms = append(atoms, c)
		}
	}
	if len(atoms) != 3 {
		t.Fatalf("got %d atom spans, want 3:\n%s", len(atoms), root.Render())
	}
	peerOf := map[string]string{"A.r": addr1, "B.s": addr2, "C.t": addr3}
	seen := map[string]bool{}
	for _, as := range atoms {
		attrs := as.AttrMap()
		pred := attrs["pred"]
		want, ok := peerOf[pred]
		if !ok {
			t.Fatalf("atom span for unknown pred %q", pred)
		}
		seen[pred] = true
		if attrs["addr"] != want {
			t.Errorf("atom %s: addr = %q, want %q", pred, attrs["addr"], want)
		}
		if !subtreeHasRemote(as, want, "serve.") {
			t.Errorf("atom %s: no remote span from %s:\n%s", pred, want, root.Render())
		}
		// A bind-sourced atom parents the peer's serve.bind spans under
		// its per-batch spans, and the server-side "bind" child (with the
		// probe detail) rides inside those.
		if attrs["src"] == "bind" {
			bb := as.Find("bind.batch")
			if bb == nil {
				t.Errorf("atom %s: bind-sourced but no bind.batch span:\n%s", pred, root.Render())
				continue
			}
			if !subtreeHasRemote(bb, want, "serve.bind") {
				t.Errorf("atom %s: serve.bind not parented under bind.batch:\n%s", pred, root.Render())
			}
			if inner := bb.Find("bind"); inner == nil || inner.AttrMap()["pred"] != pred {
				t.Errorf("atom %s: server-side bind span missing or mislabeled:\n%s", pred, root.Render())
			}
		}
	}
	for pred := range peerOf {
		if !seen[pred] {
			t.Errorf("no atom span for %s:\n%s", pred, root.Render())
		}
	}
	if tr.Recorded() != 1 {
		t.Fatalf("Recorded = %d, want 1", tr.Recorded())
	}
}

// TestTracePushdownAdoptsRemote checks the single-peer full push-down
// path: the pushdown span adopts the serving peer's serve.eval tree.
func TestTracePushdownAdoptsRemote(t *testing.T) {
	_, addr := startServerH(t, map[string][]rel.Tuple{"A.r": {{"1", "a"}}})
	ex := NewExecutor()
	defer ex.Close()
	if err := ex.Discover(addr); err != nil {
		t.Fatal(err)
	}
	u := lang.UCQ{Disjuncts: []lang.CQ{parseCQ(t, `q(x) :- A.r(x, y)`)}}
	tr := obs.NewTracer(4)
	root := tr.ForceTrace("query")
	if _, err := ex.EvalUCQSpan(u, root); err != nil {
		t.Fatal(err)
	}
	root.End()
	ps := root.Find("pushdown")
	if ps == nil {
		t.Fatalf("no pushdown span:\n%s", root.Render())
	}
	if ps.AttrMap()["addr"] != addr {
		t.Errorf("pushdown addr = %q, want %q", ps.AttrMap()["addr"], addr)
	}
	if !subtreeHasRemote(ps, addr, "serve.eval") {
		t.Errorf("pushdown did not adopt serve.eval from %s:\n%s", addr, root.Render())
	}
}

// TestUntracedEvalMatchesTraced checks that a nil span changes nothing
// about the answer and produces no trace state.
func TestUntracedEvalMatchesTraced(t *testing.T) {
	_, addr1 := startServerH(t, map[string][]rel.Tuple{"A.r": {{"1", "a"}, {"2", "b"}}})
	_, addr2 := startServerH(t, map[string][]rel.Tuple{"B.s": {{"a", "x"}, {"b", "y"}}})
	mk := func() *Executor {
		ex := NewExecutor()
		t.Cleanup(func() { ex.Close() })
		for _, a := range []string{addr1, addr2} {
			if err := ex.Discover(a); err != nil {
				t.Fatal(err)
			}
		}
		return ex
	}
	u := lang.UCQ{Disjuncts: []lang.CQ{parseCQ(t, `q(x, z) :- A.r(x, y), B.s(y, z)`)}}

	tr := obs.NewTracer(4)
	root := tr.ForceTrace("query")
	traced, err := mk().EvalUCQSpan(u, root)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := mk().EvalUCQSpan(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(traced, plain) {
		t.Fatalf("traced answer %v != untraced %v", traced, plain)
	}
	// With sampling off, StartTrace yields nil roots and the whole span
	// path degrades to nil checks.
	off := obs.NewTracer(4)
	if sp := off.StartTrace("query"); sp != nil {
		t.Fatal("sampling-off tracer returned a span")
	}
}

// TestStatsReadWhileServing hammers every stats surface — registry
// snapshots, raw Stats/WireStats/FragmentStats — concurrently with live
// cross-peer queries. Counters must be readable without torn values
// (monotone across snapshots) and the whole test must pass under -race.
func TestStatsReadWhileServing(t *testing.T) {
	srv1, addr1 := startServerH(t, map[string][]rel.Tuple{"A.r": {{"1", "a"}, {"2", "b"}}})
	_, addr2 := startServerH(t, map[string][]rel.Tuple{"B.s": {{"a", "x"}, {"b", "y"}}})
	ex := NewExecutor()
	defer ex.Close()
	for _, a := range []string{addr1, addr2} {
		if err := ex.Discover(a); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	srv1.RegisterMetrics(reg)
	ex.RegisterMetrics(reg)

	q := parseCQ(t, `q(x, z) :- A.r(x, y), B.s(y, z)`)
	const queriers, iters, readers, snaps = 4, 40, 3, 200
	var wg sync.WaitGroup
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := ex.EvalCQ(q); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := map[string]uint64{}
			for i := 0; i < snaps; i++ {
				snap := reg.Snapshot()
				for k, v := range snap.Counters {
					if v < prev[k] {
						t.Errorf("counter %s went backwards: %d -> %d", k, prev[k], v)
						return
					}
					prev[k] = v
				}
				srv1.Stats()
				ex.WireStats()
				ex.FragmentStats()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	snap := reg.Snapshot()
	if snap.Counters["server.requests"] == 0 {
		t.Fatal("server.requests stayed zero under load")
	}
	if snap.Counters["wire.requests"] == 0 {
		t.Fatal("wire.requests stayed zero under load")
	}
}
