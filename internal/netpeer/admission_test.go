package netpeer

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rel"
	"repro/internal/wire"
)

// TestAdmissionGateFIFO drives the admission gate directly: with the one
// slot held, waiters must queue, be granted strictly in arrival order as
// the slot is released, and a waiter beyond the queue bound must shed
// immediately.
func TestAdmissionGateFIFO(t *testing.T) {
	g := newAdmission(1, 3, 5*time.Second, obs.NewHistogram())
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	order := make(chan int, 3)
	for i := 0; i < 3; i++ {
		i := i
		_, prev := g.load()
		go func() {
			if err := g.acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
		}()
		// Wait for this goroutine to be queued before starting the next,
		// so arrival order is deterministic.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, queued := g.load(); queued > prev {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if inflight, queued := g.load(); inflight != 1 || queued != 3 {
		t.Fatalf("load = (%d, %d), want (1, 3)", inflight, queued)
	}

	// Queue full: the next acquire sheds without blocking.
	start := time.Now()
	if err := g.acquire(context.Background()); !errors.Is(err, errShed) {
		t.Fatalf("over-queue acquire = %v, want errShed", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("shed acquire blocked instead of failing fast")
	}
	if g.shed() != 1 {
		t.Fatalf("shed = %d, want 1", g.shed())
	}

	// Each release grants the oldest waiter: completion order == arrival
	// order (no barging).
	for want := 0; want < 3; want++ {
		g.release()
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("grant order: got waiter %d, want %d", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d never granted", want)
		}
	}
	g.release()
	if inflight, queued := g.load(); inflight != 0 || queued != 0 {
		t.Fatalf("final load = (%d, %d), want (0, 0)", inflight, queued)
	}
}

// TestAdmissionGateWaitBound sheds a queued request once its wait exceeds
// the bound, and honors context cancellation while queued.
func TestAdmissionGateWaitBound(t *testing.T) {
	g := newAdmission(1, 2, 50*time.Millisecond, obs.NewHistogram())
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := g.acquire(context.Background()); !errors.Is(err, errShed) {
		t.Fatalf("timed-out acquire = %v, want errShed", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("queue wait %v, want ~50ms bound", elapsed)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if err := g.acquire(ctx); err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, errShed) {
		t.Fatalf("cancelled acquire = %v", err)
	}
	g.release()
	if inflight, queued := g.load(); inflight != 0 || queued != 0 {
		t.Fatalf("load = (%d, %d) after drain, want (0, 0)", inflight, queued)
	}
}

// tempErr is a fake temporary network error for accept-loop injection.
type tempErr struct{}

func (tempErr) Error() string   { return "injected temporary accept failure" }
func (tempErr) Temporary() bool { return true }
func (tempErr) Timeout() bool   { return false }

// flakyListener fails its first n Accepts with a temporary error, then
// delegates — the EMFILE-under-load shape that used to kill the accept
// loop.
type flakyListener struct {
	net.Listener
	fails atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.fails.Add(-1) >= 0 {
		return nil, tempErr{}
	}
	return l.Listener.Accept()
}

// TestAcceptLoopRetriesTemporaryErrors proves a run of temporary Accept
// failures no longer terminates serving: the loop backs off, retries, and
// the next client connects normally.
func TestAcceptLoopRetriesTemporaryErrors(t *testing.T) {
	data := rel.NewInstance()
	if _, err := data.Add("A.r", rel.Tuple{"1", "a"}); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: lis}
	fl.fails.Store(5)
	srv := NewServer(data)
	srv.ServeListener(fl)
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after injected accept failures: %v", err)
	}
	if got := srv.Stats().AcceptRetries; got < 5 {
		t.Fatalf("AcceptRetries = %d, want >= 5", got)
	}
}

// TestAddOp exercises the mutating wire op end to end: insert over the
// wire, observe the rows and the bumped generation, and reject bad rows.
func TestAddOp(t *testing.T) {
	srv, addr := startServerH(t, map[string][]rel.Tuple{"A.r": {{"1", "a"}}})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gen, err := c.Add("A.r", [][]string{{"2", "b"}, {"3", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if gen == 0 {
		t.Fatal("add returned generation 0")
	}
	rows, err := c.Scan("A.r")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("scan after add: %d rows, want 3", len(rows))
	}
	// Arity mismatch fails in-band; the connection survives.
	if _, err := c.Add("A.r", [][]string{{"only-one-column"}}); err == nil {
		t.Fatal("arity-mismatched add succeeded")
	}
	if _, err := c.Add("", [][]string{{"x"}}); err == nil {
		t.Fatal("add without pred succeeded")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection broken after in-band add errors: %v", err)
	}
	if srv.Stats().Requests < 4 {
		t.Fatalf("requests = %d, want >= 4", srv.Stats().Requests)
	}
}

// TestPipelinedResponsesStayOrdered writes a burst of requests on one
// connection before reading anything, then checks every response comes
// back in request order (the reader/handler split must preserve FIFO per
// connection).
func TestPipelinedResponsesStayOrdered(t *testing.T) {
	_, addr := startServerH(t, map[string][]rel.Tuple{"A.r": {{"1", "a"}}})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// gens echoes the requested predicate list, so each response is
	// attributable to its request.
	const n = 40 // several times MaxPipeline: the burst must survive backpressure
	var batch []byte
	for i := 0; i < n; i++ {
		b, err := json.Marshal(wire.Request{Op: "gens", Preds: []string{fmt.Sprintf("p%d", i)}})
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, b...)
		batch = append(batch, '\n')
	}
	if _, err := conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	c := &Client{conn: conn, br: bufio.NewReaderSize(conn, 64*1024), maxFrame: wire.DefaultMaxFrame}
	for i := 0; i < n; i++ {
		resp, err := c.readStream(nil)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		want := fmt.Sprintf("p%d", i)
		if len(resp.Preds) != 1 || resp.Preds[0] != want {
			t.Fatalf("response %d echoed %v, want [%s]", i, resp.Preds, want)
		}
	}
}

// TestDrainFinishesPipelinedWork verifies Drain lets requests already
// written by a client finish before the connection winds down, and that an
// idle connection is disconnected cleanly (no read-error accounting).
func TestDrainFinishesPipelinedWork(t *testing.T) {
	srv, addr := startServerH(t, map[string][]rel.Tuple{"A.r": {{"1", "a"}}})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var batch []byte
	for i := 0; i < 3; i++ {
		b, err := json.Marshal(wire.Request{Op: "gens", Preds: []string{fmt.Sprintf("p%d", i)}})
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, b...)
		batch = append(batch, '\n')
	}
	if _, err := conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	// Give the server a moment to decode the burst into its pipeline, then
	// drain concurrently with reading the answers.
	time.Sleep(50 * time.Millisecond)
	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(5 * time.Second) }()

	c := &Client{conn: conn, br: bufio.NewReaderSize(conn, 64*1024), maxFrame: wire.DefaultMaxFrame}
	for i := 0; i < 3; i++ {
		resp, err := c.readStream(nil)
		if err != nil {
			t.Fatalf("response %d during drain: %v", i, err)
		}
		if want := fmt.Sprintf("p%d", i); len(resp.Preds) != 1 || resp.Preds[0] != want {
			t.Fatalf("response %d echoed %v, want [%s]", i, resp.Preds, want)
		}
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := srv.Stats().ReadErrors; got != 0 {
		t.Fatalf("ReadErrors = %d after graceful drain, want 0", got)
	}
}

// TestPoolCapsDialStorm floods one pool from many goroutines and checks
// the per-address connection cap holds: dials stay at or below the cap
// while excess borrowers wait (counted) instead of opening sockets.
func TestPoolCapsDialStorm(t *testing.T) {
	_, addr := startServerH(t, map[string][]rel.Tuple{"A.r": {{"1", "a"}}})
	ex := NewExecutor()
	ex.MaxConnsPerAddr = 4
	t.Cleanup(func() { ex.Close() })
	if err := ex.Discover(addr); err != nil {
		t.Fatal(err)
	}

	const borrowers = 64
	var wg sync.WaitGroup
	for i := 0; i < borrowers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ex.withClient(addr, func(c *Client) error { return c.Ping() }); err != nil {
				t.Errorf("ping: %v", err)
			}
		}()
	}
	wg.Wait()
	ws := ex.WireStats()
	if ws.Dials > 4 {
		t.Fatalf("Dials = %d with cap 4: dial storm not contained", ws.Dials)
	}
	if ws.PoolWaits == 0 {
		t.Fatalf("PoolWaits = 0 with %d borrowers over cap 4", borrowers)
	}
}

// TestBusyRetryMasksShedding pins a one-slot, no-queue server's only slot
// with a slow consumer (a scan whose client stops reading, so the server
// blocks writing chunks), confirms concurrent executor requests are shed
// and retried behind jittered backoff until the slot frees, and checks the
// server's shed counter and the client pool's retry counter agree exactly.
func TestBusyRetryMasksShedding(t *testing.T) {
	data := rel.NewInstance()
	// Enough bytes that streaming the scan overflows the loopback socket
	// buffers: the unread response blocks the server mid-stream, holding
	// the admission slot for as long as the consumer stalls.
	row := make(rel.Tuple, 2)
	row[1] = string(make([]byte, 256))
	for i := 0; i < 40000; i++ {
		row[0] = fmt.Sprintf("k%06d", i)
		if _, err := data.Add("A.big", row); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(data)
	srv.MaxInflight = 1
	srv.MaxQueue = 0
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// The slow consumer: request the big scan, read nothing yet.
	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	b, _ := json.Marshal(wire.Request{Op: "scan", Pred: "A.big"})
	if _, err := slow.Write(append(b, '\n')); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Inflight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow consumer never occupied the slot")
		}
		time.Sleep(time.Millisecond)
	}

	ex := NewExecutor()
	ex.BusyRetries = 10000 // effectively retry-until-admitted for this test
	ex.BusyBackoff = time.Millisecond
	t.Cleanup(func() { ex.Close() })
	ex.Route("A.big", addr)

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ex.withClient(addr, func(c *Client) error { return c.Ping() }); err != nil {
				t.Errorf("ping: %v", err)
			}
		}()
	}
	// Let the workers shed against the pinned slot, then release it by
	// draining the slow consumer.
	for srv.Stats().Shed < workers {
		if time.Now().After(deadline) {
			t.Fatalf("shed stuck at %d with the slot pinned", srv.Stats().Shed)
		}
		time.Sleep(time.Millisecond)
	}
	go io.Copy(io.Discard, slow)
	wg.Wait()

	st, ws := srv.Stats(), ex.WireStats()
	if st.Shed == 0 {
		t.Fatal("no sheds despite pinned slot")
	}
	// Shed accounting: every busy frame the server sent was received by
	// exactly one caller, which (having never surfaced an error) retried.
	if st.Shed != ws.BusyRetries {
		t.Fatalf("server shed %d but clients retried %d", st.Shed, ws.BusyRetries)
	}
	if st.Queued != 0 {
		t.Fatalf("gate not drained: queued=%d", st.Queued)
	}
}

// TestPoolHandsConnectionToWaiter pins the FIFO ownership transfer: a
// connection returned while a borrower waits at the cap must be handed to
// that waiter directly — under wake-and-retry the woken waiter raced every
// new arrival for the idle list and could lose (and re-queue at the back)
// indefinitely.
func TestPoolHandsConnectionToWaiter(t *testing.T) {
	_, addr := startServerH(t, map[string][]rel.Tuple{"A.r": {{"1", "a"}}})
	ctrs := &Counters{}
	p := newPool(addr, ctrs, nil, 0, 1)
	t.Cleanup(func() { p.close() })

	c, reused, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("first borrow reported reused")
	}
	type borrow struct {
		c      *Client
		reused bool
		err    error
	}
	got := make(chan borrow, 1)
	go func() {
		c2, r2, err2 := p.get()
		got <- borrow{c2, r2, err2}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		n := len(p.waiters)
		p.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("borrower never queued at the cap")
		}
		time.Sleep(time.Millisecond)
	}
	p.put(c)
	b := <-got
	if b.err != nil {
		t.Fatal(b.err)
	}
	if b.c != c {
		t.Fatal("waiter got a different connection: returned one was not handed off")
	}
	if !b.reused {
		t.Fatal("handed-off connection not reported as reused")
	}
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle != 0 {
		t.Fatalf("idle list holds %d connections during a handoff, want 0", idle)
	}
	if got := ctrs.poolWaits.Load(); got != 1 {
		t.Fatalf("poolWaits = %d for one blocked borrow, want 1", got)
	}
	p.put(b.c)
}

// TestRedialWaitHandsOffAndCountsOnce covers the broken-connection retry
// path waiting at the cap: a healthy connection returned meanwhile is
// handed to the waiting redial, which must close it (it specifically needs
// a fresh dial), reuse its slot, and count exactly one pool wait for the
// whole call.
func TestRedialWaitHandsOffAndCountsOnce(t *testing.T) {
	_, addr := startServerH(t, map[string][]rel.Tuple{"A.r": {{"1", "a"}}})
	ctrs := &Counters{}
	p := newPool(addr, ctrs, nil, 0, 1)
	t.Cleanup(func() { p.close() })

	c, _, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	type redialed struct {
		c   *Client
		err error
	}
	got := make(chan redialed, 1)
	go func() {
		c2, err2 := p.redial()
		got <- redialed{c2, err2}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		n := len(p.waiters)
		p.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("redial never queued at the cap")
		}
		time.Sleep(time.Millisecond)
	}
	p.put(c)
	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.c == c {
		t.Fatal("redial reused the pooled connection instead of dialing fresh")
	}
	if got := ctrs.poolWaits.Load(); got != 1 {
		t.Fatalf("poolWaits = %d for one blocked redial, want 1", got)
	}
	p.mu.Lock()
	active := p.active
	p.mu.Unlock()
	if active != 1 {
		t.Fatalf("active = %d after handoff redial, want 1 (slot accounting drifted)", active)
	}
	p.put(r.c)
}

// TestCloseAbortsBusyBackoff pins the only admission slot with a slow
// consumer so a concurrent request is shed and enters the busy-retry
// backoff loop, then closes the executor: the sleeper must surface its
// busy error promptly instead of retrying against the pinned slot for the
// rest of its (effectively unbounded) retry budget.
func TestCloseAbortsBusyBackoff(t *testing.T) {
	data := rel.NewInstance()
	// Enough bytes that streaming the scan overflows the loopback socket
	// buffers: the unread response blocks the server mid-stream, holding
	// the admission slot for as long as the consumer stalls.
	row := make(rel.Tuple, 2)
	row[1] = string(make([]byte, 256))
	for i := 0; i < 40000; i++ {
		row[0] = fmt.Sprintf("k%06d", i)
		if _, err := data.Add("A.big", row); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(data)
	srv.MaxInflight = 1
	srv.MaxQueue = 0
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	b, _ := json.Marshal(wire.Request{Op: "scan", Pred: "A.big"})
	if _, err := slow.Write(append(b, '\n')); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Inflight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow consumer never occupied the slot")
		}
		time.Sleep(time.Millisecond)
	}

	ex := NewExecutor()
	t.Cleanup(func() { ex.Close() })
	ex.BusyRetries = 1 << 20 // never exhausted while the slot stays pinned
	ex.BusyBackoff = maxBusyBackoff
	ex.Route("A.big", addr)
	errCh := make(chan error, 1)
	go func() {
		errCh <- ex.withClient(addr, func(c *Client) error { return c.Ping() })
	}()
	// Wait until the caller is inside the retry loop (the counter bumps
	// just before each backoff sleep), then close under it.
	for ex.WireStats().BusyRetries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never shed into the retry loop")
		}
		time.Sleep(time.Millisecond)
	}
	ex.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrBusy) {
			t.Fatalf("aborted retry returned %v, want ErrBusy", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("withClient still retrying after Close: backoff sleep not aborted")
	}
	go io.Copy(io.Discard, slow)
}
