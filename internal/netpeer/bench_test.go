package netpeer

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/store"
)

// BenchmarkBindJoin compares bind-join against legacy fetch-and-join on a
// skewed cross-peer join: the bound side holds 8 keys, the remote relation
// holds 20k rows of which only ~160 join. Bind-join ships the 8 keys and
// receives ~160 rows; fetch-and-join pulls all 20k. The reported
// rows-fetched/op and bytes-recv/op metrics make the shipping gap visible
// next to the wall-clock difference.
func BenchmarkBindJoin(b *testing.B) {
	const (
		bigRows   = 20000
		distinct  = 1000 // distinct join keys on the big side
		boundKeys = 8
	)
	small := map[string][]rel.Tuple{"S.keys": nil}
	large := map[string][]rel.Tuple{"L.rows": nil}
	for i := 0; i < boundKeys; i++ {
		small["S.keys"] = append(small["S.keys"], rel.Tuple{fmt.Sprintf("k%d", i)})
	}
	for i := 0; i < bigRows; i++ {
		large["L.rows"] = append(large["L.rows"],
			rel.Tuple{fmt.Sprintf("k%d", i%distinct), fmt.Sprintf("p%d", i)})
	}
	addr1 := startServer(b, small)
	addr2 := startServer(b, large)
	q, err := parser.ParseQuery(`q(x, y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		b.Fatal(err)
	}

	for _, mode := range []struct {
		name     string
		fetchAll bool
		pipeline int
	}{
		{"bindjoin", false, 0},     // streaming, pipelined (default depth)
		{"bindjoin-seq", false, 1}, // streaming, sequential batch round trips
		{"fetchall", true, 0},      // legacy whole-relation fetch baseline
	} {
		b.Run(mode.name, func(b *testing.B) {
			ex := NewExecutor()
			ex.FetchAll = mode.fetchAll
			ex.BindPipeline = mode.pipeline
			// This benchmark measures the wire path itself; the cross-query
			// fragment cache would serve every iteration after the first
			// (see BenchmarkFragmentCacheRepeat for that).
			ex.FragmentCacheOff = true
			defer ex.Close()
			for _, a := range []string{addr1, addr2} {
				if err := ex.Discover(a); err != nil {
					b.Fatal(err)
				}
			}
			base := ex.WireStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := ex.EvalCQ(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != boundKeys*bigRows/distinct {
					b.Fatalf("rows = %d", len(rows))
				}
			}
			b.StopTimer()
			reportWireDeltas(b, ex.WireStats(), base)
		})
	}
}

// reportWireDeltas reports per-op wire metrics between two counter
// snapshots: the shipping savings (rows/bytes) and the sequential
// round-trip stalls paid on the bind path (batches minus the batches that
// overlapped an in-flight response).
func reportWireDeltas(b *testing.B, st, base WireStats) {
	b.ReportMetric(float64(st.RowsFetched-base.RowsFetched)/float64(b.N), "rows-fetched/op")
	b.ReportMetric(float64(st.BytesRecv-base.BytesRecv)/float64(b.N), "bytes-recv/op")
	stalls := (st.BindBatches - st.BindBatchesPipelined) - (base.BindBatches - base.BindBatchesPipelined)
	b.ReportMetric(float64(stalls)/float64(b.N), "seq-stalls/op")
	b.ReportMetric(float64(st.MaxFrameBytes), "max-frame-bytes")
}

// BenchmarkBindJoinPipelined isolates the pipelining win: the bound side
// spans several bind batches (4096 keys, 4 batches of 1024), so the
// sequential protocol pays one full round-trip stall per batch while the
// pipelined one ships batch i+1 during batch i's response stream. The
// seq-stalls/op metric is the machine-readable difference (1 vs 4); over
// loopback the wall-clock gap is noise, but on a real link each avoided
// stall saves one RTT.
func BenchmarkBindJoinPipelined(b *testing.B) {
	const (
		bigRows   = 20000
		distinct  = 8000
		boundKeys = 4096
	)
	small := map[string][]rel.Tuple{"S.keys": nil}
	large := map[string][]rel.Tuple{"L.rows": nil}
	for i := 0; i < boundKeys; i++ {
		small["S.keys"] = append(small["S.keys"], rel.Tuple{fmt.Sprintf("k%d", i)})
	}
	for i := 0; i < bigRows; i++ {
		large["L.rows"] = append(large["L.rows"],
			rel.Tuple{fmt.Sprintf("k%d", i%distinct), fmt.Sprintf("p%d", i)})
	}
	addr1 := startServer(b, small)
	addr2 := startServer(b, large)
	q, err := parser.ParseQuery(`q(x, y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		pipeline int
	}{
		{"pipelined", 0},
		{"sequential", 1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ex := NewExecutor()
			ex.BindPipeline = mode.pipeline
			ex.FragmentCacheOff = true // isolate the pipelining effect
			defer ex.Close()
			for _, a := range []string{addr1, addr2} {
				if err := ex.Discover(a); err != nil {
					b.Fatal(err)
				}
			}
			base := ex.WireStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := ex.EvalCQ(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) == 0 {
					b.Fatal("no rows")
				}
			}
			b.StopTimer()
			reportWireDeltas(b, ex.WireStats(), base)
		})
	}
}

// BenchmarkStreamLargeResult pins the frame-ceiling fix in benchmark form:
// one op scans a relation whose ~20MB one-shot JSON frame used to kill the
// connection at the 16MiB scanner cap. It now streams in bounded chunks —
// max-frame-bytes stays near wire.ChunkMaxBytes while bytes-recv/op
// crosses the old ceiling.
func BenchmarkStreamLargeResult(b *testing.B) {
	const (
		rows    = 2500
		valSize = 8 * 1024
	)
	pad := strings.Repeat("x", valSize)
	data := map[string][]rel.Tuple{"L.big": nil}
	for i := 0; i < rows; i++ {
		data["L.big"] = append(data["L.big"], rel.Tuple{fmt.Sprintf("k%06d", i), pad})
	}
	addr := startServer(b, data)
	ex := NewExecutor()
	defer ex.Close()
	if err := ex.Discover(addr); err != nil {
		b.Fatal(err)
	}
	q, err := parser.ParseQuery(`q(x, y) :- L.big(x, y)`)
	if err != nil {
		b.Fatal(err)
	}
	base := ex.WireStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := ex.EvalCQ(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(ans) != rows {
			b.Fatalf("rows = %d", len(ans))
		}
	}
	b.StopTimer()
	reportWireDeltas(b, ex.WireStats(), base)
}

// BenchmarkBindJoinUCQFanout measures the parallel disjunct fan-out: eight
// cross-peer disjuncts that each bind-join a distinct key range, evaluated
// through one Executor (which multiplexes over the per-address pools).
func BenchmarkBindJoinUCQFanout(b *testing.B) {
	const bigRows = 20000
	small := map[string][]rel.Tuple{}
	large := map[string][]rel.Tuple{"L.rows": nil}
	for d := 0; d < 8; d++ {
		pred := fmt.Sprintf("S.k%d", d)
		small[pred] = []rel.Tuple{{fmt.Sprintf("k%d", d*100)}}
	}
	for i := 0; i < bigRows; i++ {
		large["L.rows"] = append(large["L.rows"],
			rel.Tuple{fmt.Sprintf("k%d", i%1000), fmt.Sprintf("p%d", i)})
	}
	addr1 := startServer(b, small)
	addr2 := startServer(b, large)

	var u lang.UCQ
	for d := 0; d < 8; d++ {
		q, err := parser.ParseQuery(fmt.Sprintf(`q(x, y) :- S.k%d(x), L.rows(x, y)`, d))
		if err != nil {
			b.Fatal(err)
		}
		u.Add(q)
	}
	ex := NewExecutor()
	ex.FragmentCacheOff = true // measure the fan-out, not the cache
	defer ex.Close()
	for _, a := range []string{addr1, addr2} {
		if err := ex.Discover(a); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := ex.EvalUCQ(u)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFragmentCacheRepeat is the repeated-bind-join headline: the
// same skewed cross-peer join as BenchmarkBindJoin, issued repeatedly
// through one executor. "off" refetches every fragment per query; "reval"
// (the default FragmentTrust=0 mode) serves cached fragments after one
// row-free gens round trip per atom; "trusted" (FragmentTrust well above
// the benchmark duration) answers repeats with zero network traffic. The
// rows-fetched/op and bytes-recv/op metrics show the second and later
// identical queries shipping (near) zero.
func BenchmarkFragmentCacheRepeat(b *testing.B) {
	const (
		bigRows   = 20000
		distinct  = 1000
		boundKeys = 8
	)
	small := map[string][]rel.Tuple{"S.keys": nil}
	large := map[string][]rel.Tuple{"L.rows": nil}
	for i := 0; i < boundKeys; i++ {
		small["S.keys"] = append(small["S.keys"], rel.Tuple{fmt.Sprintf("k%d", i)})
	}
	for i := 0; i < bigRows; i++ {
		large["L.rows"] = append(large["L.rows"],
			rel.Tuple{fmt.Sprintf("k%d", i%distinct), fmt.Sprintf("p%d", i)})
	}
	addr1 := startServer(b, small)
	addr2 := startServer(b, large)
	q, err := parser.ParseQuery(`q(x, y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name  string
		off   bool
		trust time.Duration
	}{
		{"off", true, 0},
		{"reval", false, 0},
		{"trusted", false, time.Hour},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ex := NewExecutor()
			ex.FragmentCacheOff = mode.off
			ex.FragmentTrust = mode.trust
			defer ex.Close()
			for _, a := range []string{addr1, addr2} {
				if err := ex.Discover(a); err != nil {
					b.Fatal(err)
				}
			}
			// Warm run: every mode pays the first fetch; the benchmark
			// then measures the steady repeat.
			if _, err := ex.EvalCQ(q); err != nil {
				b.Fatal(err)
			}
			base := ex.WireStats()
			fragBase := ex.FragmentStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := ex.EvalCQ(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != boundKeys*bigRows/distinct {
					b.Fatalf("rows = %d", len(rows))
				}
			}
			b.StopTimer()
			reportWireDeltas(b, ex.WireStats(), base)
			frag := ex.FragmentStats()
			if n := frag.Hits + frag.Misses - fragBase.Hits - fragBase.Misses; n > 0 {
				b.ReportMetric(float64(frag.Hits-fragBase.Hits)/float64(n), "frag-hit-rate")
			}
			b.ReportMetric(float64(frag.Revalidations-fragBase.Revalidations)/float64(b.N), "revalidations/op")
		})
	}
}

// BenchmarkFragmentCacheUnderMutation measures the bind-join workload with
// a mutation interleaved every iteration: "touched" mutates the probed
// relation (every fragment invalidates, the cache can only pay overhead),
// "unrelated" mutates a different relation on the same peer (per-relation
// generations keep every fragment valid).
func BenchmarkFragmentCacheUnderMutation(b *testing.B) {
	const (
		bigRows   = 20000
		distinct  = 1000
		boundKeys = 8
	)
	small := map[string][]rel.Tuple{"S.keys": nil}
	large := map[string][]rel.Tuple{"L.rows": nil, "L.noise": {{"0"}}}
	for i := 0; i < boundKeys; i++ {
		small["S.keys"] = append(small["S.keys"], rel.Tuple{fmt.Sprintf("k%d", i)})
	}
	for i := 0; i < bigRows; i++ {
		large["L.rows"] = append(large["L.rows"],
			rel.Tuple{fmt.Sprintf("k%d", i%distinct), fmt.Sprintf("p%d", i)})
	}
	addr1 := startServer(b, small)
	srvLarge, addr2 := startServerH(b, large)
	q, err := parser.ParseQuery(`q(x, y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		pred string
	}{
		{"unrelated", "L.noise"},
		{"touched", "L.rows"},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ex := NewExecutor()
			defer ex.Close()
			for _, a := range []string{addr1, addr2} {
				if err := ex.Discover(a); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := ex.EvalCQ(q); err != nil {
				b.Fatal(err)
			}
			base := ex.WireStats()
			fragBase := ex.FragmentStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tu := rel.Tuple{fmt.Sprintf("m%d", i)}
				if mode.pred == "L.rows" {
					tu = rel.Tuple{fmt.Sprintf("k%d", i%distinct), fmt.Sprintf("m%d", i)}
				}
				if err := srvLarge.AddFact(mode.pred, tu); err != nil {
					b.Fatal(err)
				}
				if _, err := ex.EvalCQ(q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportWireDeltas(b, ex.WireStats(), base)
			frag := ex.FragmentStats()
			if n := frag.Hits + frag.Misses - fragBase.Hits - fragBase.Misses; n > 0 {
				b.ReportMetric(float64(frag.Hits-fragBase.Hits)/float64(n), "frag-hit-rate")
			}
			b.ReportMetric(float64(frag.Invalidations-fragBase.Invalidations)/float64(b.N), "invalidations/op")
		})
	}
}

// BenchmarkTraceOverhead measures the cost of the tracing instrumentation
// on the cross-peer bind-join path. "sampling-off" runs with the tracer's
// knob at 0 — StartTrace returns nil and every span operation along the
// executor, client, and server paths reduces to a nil check, which is the
// default production state and must stay within noise (<5%) of the
// pre-instrumentation path. "sampling-on" traces every query: the full
// span tree is built, shipped back from the serving peers, and adopted.
func BenchmarkTraceOverhead(b *testing.B) {
	const (
		bigRows  = 4000
		distinct = 200
		keys     = 8
	)
	small := map[string][]rel.Tuple{"S.keys": nil}
	large := map[string][]rel.Tuple{"L.rows": nil}
	for i := 0; i < keys; i++ {
		small["S.keys"] = append(small["S.keys"], rel.Tuple{fmt.Sprintf("k%d", i)})
	}
	for i := 0; i < bigRows; i++ {
		large["L.rows"] = append(large["L.rows"],
			rel.Tuple{fmt.Sprintf("k%d", i%distinct), fmt.Sprintf("p%d", i)})
	}
	addr1 := startServer(b, small)
	addr2 := startServer(b, large)
	q, err := parser.ParseQuery(`q(x, y) :- S.keys(x), L.rows(x, y)`)
	if err != nil {
		b.Fatal(err)
	}
	u := lang.UCQ{Disjuncts: []lang.CQ{q}}

	for _, mode := range []struct {
		name   string
		sample int
	}{
		{"sampling-off", 0},
		{"sampling-on", 1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ex := NewExecutor()
			ex.FragmentCacheOff = true // measure the wire path every iteration
			defer ex.Close()
			for _, a := range []string{addr1, addr2} {
				if err := ex.Discover(a); err != nil {
					b.Fatal(err)
				}
			}
			tr := obs.NewTracer(8)
			tr.SetSampleEvery(mode.sample)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				root := tr.StartTrace("query")
				rows, err := ex.EvalUCQSpan(u, root)
				root.End()
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != keys*bigRows/distinct {
					b.Fatalf("rows = %d", len(rows))
				}
			}
		})
	}
}

// BenchmarkSpilledJoinOverBudget is the larger-than-RAM-budget join at
// smoke scale: the materialized partial join is ~100x the executor's spill
// budget, so nearly all of it must flow through spill segments while the
// resident tail stays within the budget. The spilled-bytes/op and
// join-bytes metrics make the ratio visible next to the wall-clock cost;
// the inmemory mode is the same join with spilling disabled, pinning the
// overhead the durable path pays.
func BenchmarkSpilledJoinOverBudget(b *testing.B) {
	const (
		nKeys  = 400
		fanout = 8
		budget = 16 << 10
	)
	left := map[string][]rel.Tuple{"SB.left": nil}
	right := map[string][]rel.Tuple{"SB.right": nil}
	for i := 0; i < nKeys; i++ {
		left["SB.left"] = append(left["SB.left"],
			rel.Tuple{fmt.Sprintf("k%d", i), fmt.Sprintf("left-payload-%06d", i)})
		for j := 0; j < fanout; j++ {
			right["SB.right"] = append(right["SB.right"],
				rel.Tuple{fmt.Sprintf("k%d", i), fmt.Sprintf("right-payload-%06d-%02d", i, j)})
		}
	}
	addr1 := startServer(b, left)
	addr2 := startServer(b, right)
	q, err := parser.ParseQuery(`q(x, p, r) :- SB.left(x, p), SB.right(x, r)`)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		budget int64
	}{
		{"spilled", budget},
		{"inmemory", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ex := NewExecutor()
			defer ex.Close()
			ex.FragmentCacheOff = true // measure the join path, not the cache
			if mode.budget > 0 {
				ex.SpillDir, ex.SpillBudget = b.TempDir(), mode.budget
			}
			for _, a := range []string{addr1, addr2} {
				if err := ex.Discover(a); err != nil {
					b.Fatal(err)
				}
			}
			var joinBytes int64
			base := store.SpillStatsSnapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := ex.EvalCQ(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != nKeys*fanout {
					b.Fatalf("rows = %d", len(rows))
				}
				if joinBytes == 0 {
					for _, t := range rows {
						joinBytes += store.TupleBytes(t)
					}
				}
			}
			b.StopTimer()
			st := store.SpillStatsSnapshot()
			b.ReportMetric(float64(joinBytes), "join-bytes")
			b.ReportMetric(float64(st.Bytes-base.Bytes)/float64(b.N), "spilled-bytes/op")
			b.ReportMetric(float64(st.Loads-base.Loads)/float64(b.N), "spill-loads/op")
			if mode.budget > 0 {
				if spilled := int64(st.Bytes-base.Bytes) / int64(b.N); spilled < joinBytes/2 {
					b.Fatalf("join stayed in memory: %dB spilled of %dB (budget %d)", spilled, joinBytes, mode.budget)
				}
			}
		})
	}
}
