package netpeer

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rel"
	"repro/internal/wire"
)

// pinServerSlots occupies n admission slots of the server at addr with
// slow consumers: each sends a scan of bigPred and reads nothing, so the
// server blocks streaming the response and the slot stays held. It returns
// a release function that drains the consumers (freeing the slots) and
// waits for them to finish.
func pinServerSlots(t *testing.T, srv *Server, addr, bigPred string, n int) (release func()) {
	t.Helper()
	conns := make([]net.Conn, n)
	for i := range conns {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		b, _ := json.Marshal(wire.Request{Op: "scan", Pred: bigPred})
		if _, err := conn.Write(append(b, '\n')); err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Inflight != n {
		if time.Now().After(deadline) {
			t.Fatalf("pinners occupied %d slots, want %d", srv.Stats().Inflight, n)
		}
		time.Sleep(time.Millisecond)
	}
	return func() {
		var wg sync.WaitGroup
		for _, conn := range conns {
			conn := conn
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Drain exactly one response stream: readStream returns at
				// the scan's final frame, at which point the server has
				// released the slot.
				c := &Client{conn: conn, br: bufio.NewReaderSize(conn, 64*1024), maxFrame: wire.DefaultMaxFrame}
				if _, err := c.readStream(nil); err != nil {
					t.Errorf("draining pinned scan: %v", err)
				}
			}()
		}
		wg.Wait()
	}
}

// TestHammerThousandClients is the admission-control acceptance hammer:
// 1000 concurrent clients against a server whose two execution slots are
// initially pinned by slow consumers (on this box fast handlers never hold
// a slot across a scheduling point, so saturation must be forced, exactly
// as a production slow consumer would). It asserts the shed-not-collapse
// contract end to end:
//
//	(a) totality — every request either succeeds or fails with the in-band
//	    busy error; nothing is dropped silently and no connection breaks
//	    (each client keeps using its connection after a shed),
//	(b) accounting — the server's shed counter equals the busy errors the
//	    clients collectively observed,
//	(c) monotonicity — a sampler taking registry snapshots throughout never
//	    sees a counter regress (torn reads would also trip -race).
//
// FIFO grant order and the queue-wait bound are asserted deterministically
// in TestAdmissionGateFIFO/TestAdmissionGateWaitBound; here the queue runs
// under real contention.
func TestHammerThousandClients(t *testing.T) {
	data := rel.NewInstance()
	for i := 0; i < 64; i++ {
		if _, err := data.Add("A.r", rel.Tuple{fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A relation big enough that its scan overflows the loopback socket
	// buffers when the client stops reading — the pinners' lever.
	big := make(rel.Tuple, 2)
	big[1] = string(make([]byte, 256))
	for i := 0; i < 40000; i++ {
		big[0] = fmt.Sprintf("b%06d", i)
		if _, err := data.Add("A.big", big); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(data)
	srv.MaxInflight = 2
	srv.MaxQueue = 8
	srv.QueueWait = 10 * time.Millisecond
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg)
	stopSnap := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		prev := map[string]uint64{}
		for {
			select {
			case <-stopSnap:
				return
			default:
			}
			snap := reg.Snapshot()
			for k, v := range snap.Counters {
				if v < prev[k] {
					t.Errorf("counter %s went backwards: %d -> %d", k, prev[k], v)
					return
				}
				prev[k] = v
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	const clients = 1000
	const opsPerClient = 2
	var ok, busy atomic.Uint64
	runWave := func(from, to int) {
		var wg sync.WaitGroup
		for i := from; i < to; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := Dial(addr)
				if err != nil {
					t.Errorf("client %d: dial: %v", i, err)
					return
				}
				defer c.Close()
				for op := 0; op < opsPerClient; op++ {
					// Mixed traffic: mostly reads, some mutations, all
					// through the admission gate.
					var err error
					if (i+op)%10 == 0 {
						_, err = c.Add("A.w", [][]string{{fmt.Sprintf("c%d", i), fmt.Sprintf("o%d", op)}})
					} else {
						_, err = c.Scan("A.r")
					}
					switch {
					case err == nil:
						ok.Add(1)
					case errors.Is(err, ErrBusy):
						busy.Add(1)
						// The connection must survive a shed: the next op
						// on this client proves it.
					default:
						t.Errorf("client %d op %d: non-busy failure: %v", i, op, err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}

	// Wave 1 runs with both execution slots pinned: requests can only
	// queue (and time out) or shed, so this wave drives the busy path hard.
	release := pinServerSlots(t, srv, addr, "A.big", 2)
	runWave(0, clients/2)
	shedPinned := srv.Stats().Shed
	if shedPinned < 100 {
		t.Errorf("shed = %d while slots were pinned, want >= 100", shedPinned)
	}
	// Wave 2 runs after the slots are freed: the same gate now admits.
	release()
	runWave(clients/2, clients)
	close(stopSnap)
	<-snapDone

	st := srv.Stats()
	total := ok.Load() + busy.Load()
	if total != clients*opsPerClient {
		t.Fatalf("accounted %d outcomes, want %d (a request vanished without a busy error)", total, clients*opsPerClient)
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded after the slots were released")
	}
	if st.Shed != busy.Load() {
		t.Fatalf("server shed %d, clients observed %d busy errors", st.Shed, busy.Load())
	}
	// The two pinner scans ride on top of the hammer's requests.
	if st.Requests != clients*opsPerClient+2 {
		t.Fatalf("server requests = %d, want %d", st.Requests, clients*opsPerClient+2)
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("gate not drained after hammer: inflight=%d queued=%d", st.Inflight, st.Queued)
	}
	t.Logf("hammer: %d ok, %d busy, shed=%d, accept_retries=%d",
		ok.Load(), busy.Load(), st.Shed, st.AcceptRetries)
}
