package netpeer

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/rel"
)

// TestPlanOrderUsesDistinctAndFallsBack pins the two halves of the Distinct
// piggyback contract on the executor's join-order heuristic. With per-column
// distinct estimates, a bound position's selectivity is 1/distinct — so a
// low-distinct column stops masquerading as selective and the order flips.
// Without them (a peer predating the extension), planOrder must degrade to
// exactly the cardinality-only order of engine.OrderBody.
func TestPlanOrderUsesDistinctAndFallsBack(t *testing.T) {
	q := lang.CQ{
		Head: lang.Atom{Pred: "q", Args: []lang.Term{lang.Var("x"), lang.Var("y")}},
		Body: []lang.Atom{
			{Pred: "A.r", Args: []lang.Term{lang.Const("c"), lang.Var("x")}},
			{Pred: "B.s", Args: []lang.Term{lang.Var("x"), lang.Var("y")}},
		},
	}
	e := NewExecutor()
	defer e.Close()
	e.card["A.r"], e.card["B.s"] = 100, 40

	// Cardinality only: A.r's constant earns the uniform 1/8 discount
	// (cost ~12.6 < 41), so A.r leads — and the order must equal the shared
	// cardinality-only cost model's.
	got := e.planOrder(q)
	want := engine.OrderBody(q.Body, func(pred string) int { return e.card[pred] }, -1)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("fallback order %v, cardinality-only model says %v", got, want)
	}
	if got[0] != 0 {
		t.Fatalf("cardinality-only order should lead with A.r: %v", got)
	}

	// A piggybacked distinct estimate of 2 for A.r's constant column makes
	// the selection nearly worthless (cost ~50 > 41): B.s must lead now.
	e.dist["A.r"] = []float64{2, 100}
	if got := e.planOrder(q); got[0] != 1 {
		t.Fatalf("distinct-aware order should lead with B.s: %v", got)
	}
}

// TestDiscoverSeedsDistinctEstimates boots a real server and checks Discover
// lands per-column distinct estimates the plan can use, refreshed from the
// catalog op's piggyback.
func TestDiscoverSeedsDistinctEstimates(t *testing.T) {
	addr := startServer(t, map[string][]rel.Tuple{
		"A.r": {{"1", "x"}, {"2", "x"}, {"3", "x"}},
	})
	e := NewExecutor()
	defer e.Close()
	if err := e.Discover(addr); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	d := e.dist["A.r"]
	e.mu.Unlock()
	if len(d) != 2 {
		t.Fatalf("discover recorded no distinct estimates: %v", d)
	}
	// HLL estimates are approximate but 3-vs-1 on tiny sets is exact.
	if d[0] < 2.5 || d[0] > 3.5 || d[1] < 0.5 || d[1] > 1.5 {
		t.Fatalf("distinct estimates off: %v (want ≈[3 1])", d)
	}
}
