package netpeer

import (
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/rel"
	"repro/internal/wire"
)

// TestSlowStreamDoesNotConvoyServer is the regression test for a convoy
// the open-loop load generator flushed out: response streams hold the
// server's read lock end to end, and mutations used to take the write
// lock — so one slow consumer (stream write-blocked on a full socket
// buffer) plus one pending add left every later request stuck behind the
// write-preferring RWMutex until the stall resolved, bounded only by
// WriteTimeout (60s by default). The admission gate cannot help: the
// convoyed requests already hold their slots.
//
// With inserts moved to the read side (shards self-synchronize), a stalled
// stream costs only its own connection. The test pins a stream, then
// requires a mutation and an unrelated scan to complete promptly.
func TestSlowStreamDoesNotConvoyServer(t *testing.T) {
	data := rel.NewInstance()
	for i := 0; i < 16; i++ {
		if _, err := data.Add("A.r", rel.Tuple{fmt.Sprintf("k%d", i), "v"}); err != nil {
			t.Fatal(err)
		}
	}
	// Big enough that streaming it write-blocks once the reader stalls.
	big := rel.Tuple{"", string(make([]byte, 256))}
	for i := 0; i < 40000; i++ {
		big[0] = fmt.Sprintf("b%06d", i)
		if _, err := data.Add("A.big", big); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(data)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// The slow consumer: request the big scan, read nothing. The server's
	// stream stalls once the socket buffers fill — detected as bytes_sent
	// going flat while the response is still unfinished.
	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { slow.Close() })
	b, _ := json.Marshal(wire.Request{Op: "scan", Pred: "A.big"})
	if _, err := slow.Write(append(b, '\n')); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var prev uint64
	for {
		cur := srv.Stats().BytesSent
		if cur > 0 && cur == prev {
			break // stream started and has stopped making progress
		}
		if time.Now().After(deadline) {
			t.Fatal("big scan never write-blocked")
		}
		prev = cur
		time.Sleep(50 * time.Millisecond)
	}

	// A mutation and an unrelated read must both complete while the stream
	// stays stalled. Before the fix the add blocked on the write lock and
	// the scan blocked behind the add.
	done := make(chan error, 1)
	go func() {
		c, err := Dial(addr)
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		if _, err := c.Add("A.w", [][]string{{"x", "y"}}); err != nil {
			done <- fmt.Errorf("add: %w", err)
			return
		}
		rows, err := c.Scan("A.r")
		if err != nil {
			done <- fmt.Errorf("scan: %w", err)
			return
		}
		if len(rows) != 16 {
			done <- fmt.Errorf("scan: got %d rows, want 16", len(rows))
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("add+scan convoyed behind the stalled stream")
	}
}
